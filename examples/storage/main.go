// Out-of-core storage walkthrough: generate the sensor-dedup workload
// corpus as pdbstore files (the columnar on-disk format specified in
// docs/STORAGE.md), load it through the public pdb facade by content
// sniffing, and run the scenario's repair-key + conf query three ways:
//
//  1. unconstrained — the in-memory reference answer;
//  2. under a memory cap (WithMaxMemory) — the evaluation aborts with a
//     typed *pdb.LimitError once intermediates exceed the budget;
//  3. under the same cap plus a spill directory (WithSpillDir) — the
//     evaluation sheds over-budget intermediates to disk and completes
//     out-of-core, byte-identical to the unconstrained run, with
//     Stats().SpilledBytes reporting the traffic.
//
// The corpus generator (internal/workload) streams pdbstore files in
// bounded memory, so the same program scales to 10⁶–10⁸ tuples by
// raising `rows` — see docs/BENCHMARKS.md for the methodology.
//
// Run with: go run ./examples/storage
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"repro/internal/workload"
	"repro/pdb"
)

const rows = 40000

func main() {
	dir, err := os.MkdirTemp("", "pdb-storage-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate the sensor-dedup scenario: duplicate sensor readings with
	// per-duplicate confidences, written as pdbstore columnar files.
	sc, err := workload.ScenarioByName("sensor-dedup")
	if err != nil {
		log.Fatal(err)
	}
	sources, err := sc.Generate(dir, rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	for name, path := range sources {
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %s: %d tuples of %s in %s (%d bytes)\n",
			path, rows, name, sc.Name, info.Size())
	}

	// pdb.Open sniffs file contents, so pdbstore and CSV sources load
	// through the same call.
	db, err := pdb.Open(sources)
	if err != nil {
		log.Fatal(err)
	}
	q, err := db.Prepare(sc.Query)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. Unconstrained: the in-memory reference answer.
	ref, err := q.EvalExact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference answer (%d hot sensors):\n", ref.Len())
	printed := 0
	for row := range ref.Rows() {
		if printed++; printed > 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  sensor %d: P = %.4f\n", row.Int("Sensor"), row.Float("P"))
	}

	// 2. A memory cap without a spill directory is a hard limit: the
	// evaluation aborts with a typed *pdb.LimitError.
	const budget = 1 << 20
	_, err = q.EvalExact(ctx, pdb.WithMaxMemory(budget))
	var lim *pdb.LimitError
	if !errors.As(err, &lim) {
		log.Fatalf("expected *pdb.LimitError under a %d-byte cap, got %v", budget, err)
	}
	fmt.Printf("\ncapped at %d bytes: %v\n", budget, lim)

	// 3. The same cap with a spill directory completes out-of-core: the
	// cap becomes a high-water mark and over-budget intermediates go to
	// disk, without changing a single output byte.
	spilled, err := q.EvalExact(ctx,
		pdb.WithMaxMemory(budget), pdb.WithSpillDir(dir))
	if err != nil {
		log.Fatal(err)
	}
	st := spilled.Stats()
	fmt.Printf("with a spill dir: completed, %d bytes spilled across %d files\n",
		st.SpilledBytes, st.SpillFiles)
	if !sameRows(ref, spilled) {
		log.Fatal("spilled result differs from the in-memory reference")
	}
	fmt.Println("spilled result is identical to the in-memory reference")
}

// sameRows compares two results row by row (values and order).
func sameRows(a, b *pdb.Result) bool {
	if a.Len() != b.Len() {
		return false
	}
	fp := func(r *pdb.Result) string {
		s := ""
		for row := range r.Rows() {
			s += fmt.Sprintf("%d|%x;", row.Int("Sensor"), row.Float("P"))
		}
		return s
	}
	return fp(a) == fp(b)
}
