// Serviceclient: a minimal HTTP client for the pdbserve query service.
//
// It speaks the service's wire protocol — POST /v1/query with a JSON
// request, an NDJSON response streamed back (schema header, one object per
// row with its error bound, a stats trailer), and GET /v1/stats for the
// engine's cache effectiveness. To stay runnable without orchestration,
// the example boots the same handler pdbserve serves in-process on a
// loopback listener; point baseURL at a real `pdbserve -datadir
// examples/data` instead and the client code is unchanged.
//
// Run with: go run ./examples/serviceclient
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/server"
	"repro/pdb"
)

// query is the service's request body (the subset this client uses).
type query struct {
	Program string `json:"program"`
	Seed    int64  `json:"seed,omitempty"`
	// Per-request guard rails: the service aborts with a typed error
	// instead of letting one query monopolize the engine.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	MaxTrials int64 `json:"max_trials,omitempty"`
}

func main() {
	baseURL := startInProcessService()

	// The posterior probability that each sensor reads ≥ 21 degrees,
	// with the sensor's reading drawn from its weighted alternatives.
	program := `conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));`

	fmt.Println("First request (cold cache):")
	ask(baseURL, query{Program: program, Seed: 42, TimeoutMS: 10000})

	fmt.Println("\nSecond request (same program — served from the engine's content-keyed cache):")
	ask(baseURL, query{Program: program, Seed: 42, TimeoutMS: 10000})

	var stats struct {
		Engine struct {
			Evals        int64 `json:"evals"`
			ReusedTrials int64 `json:"reused_trials"`
			CacheHits    int64 `json:"cache_hits"`
			CacheEntries int   `json:"cache_entries"`
		} `json:"engine"`
	}
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEngine after two requests: %d evals, %d cached tasks, %d hits, %d trials reused\n",
		stats.Engine.Evals, stats.Engine.CacheEntries, stats.Engine.CacheHits, stats.Engine.ReusedTrials)
}

// ask posts one query and prints the streamed NDJSON result as it
// arrives. The stream is framed as one JSON object per line (see
// docs/API.md):
//
//	{"columns":[...],"complete":true}            — schema header, first line
//	{"row":{...},"error_bound":0.003,...}        — one line per result row
//	{"stats":{"rows":3,"max_error_bound":...,    — trailer, last line:
//	          "sampled_trials":N,"reused_trials":N,
//	          "cache_hits":N,"elapsed_ms":N}}      evaluation accounting
//
// A warm request shows up in the trailer as sampled_trials=0 with
// reused_trials>0 and cache_hits>0: the engine replayed its cached
// estimator state instead of re-sampling.
func ask(baseURL string, q query) {
	body, err := json.Marshal(q)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Non-200 responses carry one JSON error object; 429s also set a
		// Retry-After header telling the client when to come back.
		var e struct{ Error, Kind string }
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			log.Fatalf("query rejected (%d, %s, retry after %ss): %s", resp.StatusCode, e.Kind, ra, e.Error)
		}
		log.Fatalf("query failed (%d, %s): %s", resp.StatusCode, e.Kind, e.Error)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var msg struct {
			Columns []string       `json:"columns"`
			Row     map[string]any `json:"row"`
			Bound   float64        `json:"error_bound"`
			Stats   *struct {
				Rows     int     `json:"rows"`
				MaxBound float64 `json:"max_error_bound"`
				Sampled  int64   `json:"sampled_trials"`
				Reused   int64   `json:"reused_trials"`
				Hits     int64   `json:"cache_hits"`
				Elapsed  int64   `json:"elapsed_ms"`
			} `json:"stats"`
		}
		if err := json.Unmarshal(line, &msg); err != nil {
			log.Fatal(err)
		}
		switch {
		case msg.Columns != nil:
			fmt.Printf("  columns: %v\n", msg.Columns)
		case msg.Stats != nil:
			fmt.Printf("  stats: rows=%d max-err=%.4g sampled=%d reused=%d cache-hits=%d elapsed=%dms\n",
				msg.Stats.Rows, msg.Stats.MaxBound, msg.Stats.Sampled, msg.Stats.Reused,
				msg.Stats.Hits, msg.Stats.Elapsed)
		default:
			fmt.Printf("  %v=%.4f (±err ≤ %.4g)\n", msg.Row["sensor"], msg.Row["P"], msg.Bound)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// startInProcessService boots the pdbserve handler on a loopback listener
// — a stand-in for a separately-running `pdbserve -datadir examples/data`.
func startInProcessService() string {
	db, err := pdb.Open(map[string]string{
		"sensors": "examples/data/sensors.csv",
		"rooms":   "examples/data/rooms.csv",
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := db.Engine()
	if err != nil {
		log.Fatal(err)
	}
	h, err := server.New(server.Config{Engine: eng})
	if err != nil {
		log.Fatal(err)
	}
	return httptest.NewServer(h).URL
}
