// Quickstart: the paper's Example 2.2 end to end on the public pdb API —
// build a probabilistic database with repair-key, compute a conditional
// probability with compositional conf, and compare exact #P evaluation
// against the Karp–Luby-based approximate engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pdb"
)

func main() {
	// A bag with two fair coins and one double-headed coin (Example 2.2).
	db, err := pdb.NewBuilder().
		Table("Coins", []string{"CoinType", "Count"},
			[]any{"fair", 2},
			[]any{"2headed", 1}).
		Table("Faces", []string{"CoinType", "Face", "FProb"},
			[]any{"fair", "H", 0.5},
			[]any{"fair", "T", 0.5},
			[]any{"2headed", "H", 1.0}).
		Table("Tosses", []string{"Toss"}, []any{1}, []any{2}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// R: draw a coin. S: toss it twice. T: coin types consistent with two
	// observed heads. Final query: the posterior P(CoinType | HH) as a
	// ratio of confidences.
	q, err := db.Prepare(`
		R := project[CoinType](repairkey[@Count](Coins));
		S := project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)));
		T := join(join(R, project[CoinType](select[Toss = 1 and Face = 'H'](S))),
		          project[CoinType](select[Toss = 2 and Face = 'H'](S)));
		project[CoinType, P1/P2 as P](product(conf as P1 (T), conf as P2 (project[](T))));
	`)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Exact evaluation (#P confidence computation on U-relations).
	exact, err := q.EvalExact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Posterior P(CoinType | two heads), exact:")
	for row := range exact.Rows() {
		fmt.Printf("  %-10s %.5f\n", row.Str("CoinType"), row.Float("P"))
	}

	// Approximate evaluation (Karp–Luby FPRAS, Corollary 4.3).
	approx, err := q.Eval(ctx, pdb.WithConfBudget(0.01, 0.01), pdb.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPosterior, approximated with conf_{ε=0.01, δ=0.01}:")
	for row := range approx.Rows() {
		fmt.Printf("  %-10s %.5f\n", row.Str("CoinType"), row.Float("P"))
	}
	s := approx.Stats()
	fmt.Printf("\n(sampled trials: %d, reused: %d)\n", s.SampledTrials, s.ReusedTrials)
	fmt.Println("\nThe paper's answer: P(fair | HH) = 1/3 — the prior 2/3 flipped by the evidence.")
}
