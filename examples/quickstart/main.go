// Quickstart: the paper's Example 2.2 end to end — build a probabilistic
// database with repair-key, compute a conditional probability with
// compositional conf, and compare exact #P evaluation against the
// Karp–Luby-based approximate engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
)

func main() {
	// A bag with two fair coins and one double-headed coin (Example 2.2).
	db := urel.NewDatabase()
	db.AddComplete("Coins", rel.FromRows(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(2)},
		rel.Tuple{rel.String("2headed"), rel.Int(1)},
	))
	db.AddComplete("Faces", rel.FromRows(rel.NewSchema("CoinType", "Face", "FProb"),
		rel.Tuple{rel.String("fair"), rel.String("H"), rel.Float(0.5)},
		rel.Tuple{rel.String("fair"), rel.String("T"), rel.Float(0.5)},
		rel.Tuple{rel.String("2headed"), rel.String("H"), rel.Float(1)},
	))
	db.AddComplete("Tosses", rel.FromRows(rel.NewSchema("Toss"),
		rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)},
	))

	// R: draw a coin. S: toss it twice. T: coin types consistent with two
	// observed heads. U: the posterior P(CoinType | HH).
	r := algebra.Project{
		In:      algebra.RepairKey{In: algebra.Base{Name: "Coins"}, Weight: "Count"},
		Targets: []expr.Target{expr.Keep("CoinType")},
	}
	s := algebra.Project{
		In: algebra.RepairKey{
			In:     algebra.Product{L: algebra.Base{Name: "Faces"}, R: algebra.Base{Name: "Tosses"}},
			Key:    []string{"CoinType", "Toss"},
			Weight: "FProb",
		},
		Targets: []expr.Target{expr.Keep("CoinType"), expr.Keep("Toss"), expr.Keep("Face")},
	}
	headsAt := func(toss int64) algebra.Query {
		return algebra.Project{
			In: algebra.Select{
				In: algebra.Base{Name: "S"},
				Pred: expr.AndOf(
					expr.Eq(expr.A("Toss"), expr.CInt(toss)),
					expr.Eq(expr.A("Face"), expr.CStr("H")),
				),
			},
			Targets: []expr.Target{expr.Keep("CoinType")},
		}
	}
	t := algebra.Join{L: algebra.Join{L: algebra.Base{Name: "R"}, R: headsAt(1)}, R: headsAt(2)}
	u := algebra.Project{
		In: algebra.Product{
			L: algebra.Conf{In: algebra.Base{Name: "T"}, As: "P1"},
			R: algebra.Conf{In: algebra.Project{In: algebra.Base{Name: "T"}}, As: "P2"},
		},
		Targets: []expr.Target{
			expr.Keep("CoinType"),
			expr.As("P", expr.Div(expr.A("P1"), expr.A("P2"))),
		},
	}
	query := algebra.Let{Name: "R", Def: r,
		In: algebra.Let{Name: "S", Def: s,
			In: algebra.Let{Name: "T", Def: t, In: u}}}

	// Exact evaluation (#P confidence computation on U-relations).
	exact, err := algebra.NewURelEvaluator(db).Eval(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Posterior P(CoinType | two heads), exact:")
	printRel(urel.Poss(exact.Rel))

	// Approximate evaluation (Karp–Luby FPRAS, Corollary 4.3).
	eng := core.NewEngine(db, core.Options{Eps0: 0.05, Delta: 0.05, ConfEps: 0.01, ConfDelta: 0.01, Seed: 42})
	approx, err := eng.EvalApprox(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPosterior, approximated with conf_{ε=0.01, δ=0.01}:")
	printRel(urel.Poss(approx.Rel))
	fmt.Printf("\n(sampled trials: %d, reused: %d)\n", approx.Stats.EstimatorTrials, approx.Stats.ReusedTrials)
	fmt.Println("\nThe paper's answer: P(fair | HH) = 1/3 — the prior 2/3 flipped by the evidence.")
}

func printRel(r *rel.Relation) {
	for _, tp := range r.Sorted() {
		fmt.Printf("  %-10s %.5f\n", r.Value(tp, "CoinType").AsString(), r.Value(tp, "P").AsFloat())
	}
}
