// Data cleaning with probabilistic repairs on the public pdb API — the use
// case the paper's introduction motivates. Duplicate-record clusters carry
// weighted candidate resolutions; repair-key turns them into a
// probabilistic database of possible clean instances, and an approximate
// selection keeps only the clusters whose most likely resolution has
// confidence ≥ 0.6 — a predicate over approximated marginal probabilities
// (σ̂, Section 6). The -timeout-style context support bounds the
// evaluation, and a progress hook observes the doubling loop.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/pdb"
)

func main() {
	// Candidate resolutions per duplicate cluster with match weights.
	// Clusters 0, 2, and 5 have a dominant candidate (cleanly resolvable);
	// the others are ambiguous.
	candidates := [][]any{
		{0, "Acme Corp", 2.8}, {0, "Acme Co", 0.4}, {0, "ACME", 0.3},
		{1, "Globex", 0.9}, {1, "Globex Inc", 0.8}, {1, "Globex LLC", 0.7},
		{2, "Initech", 2.5}, {2, "Intech", 0.5},
		{3, "Umbrella", 0.6}, {3, "Umbrela", 0.6}, {3, "Umbrello", 0.5},
		{4, "Stark Ind", 1.1}, {4, "Stark Industries", 0.9},
		{5, "Wayne Ent", 3.0}, {5, "Wayne Enterprises", 0.4},
	}
	db, err := pdb.NewBuilder().
		Table("Candidates", []string{"Cluster", "Name", "Weight"}, candidates...).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Candidates (cluster, candidate name, match weight):")
	for _, c := range candidates {
		fmt.Printf("  %v\n", c)
	}

	// Clean := repair-key_{Cluster}@Weight(Candidates): one candidate per
	// cluster, weighted; then σ̂ keeps (Cluster, Name) pairs whose marginal
	// confidence is at least 0.6 — confidently resolved records.
	q, err := db.Prepare(`
		Clean := repairkey[Cluster @ Weight](Candidates);
		aselect[p1 >= 0.6 over conf[Cluster, Name]](Clean);
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Exact reference.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	exact, err := q.EvalExact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nConfidently resolved records (exact confidence ≥ 0.6):")
	printResolved(exact, false)

	// Approximate engine with per-tuple error bounds and an observer on
	// the doubling loop.
	approx, err := q.Eval(ctx,
		pdb.WithEpsilon(0.05), pdb.WithDelta(0.05), pdb.WithSeed(99),
		pdb.WithProgress(func(ev pdb.ProgressEvent) {
			fmt.Printf("  [progress] pass %d: rounds=%d worst-bound=%.4g sampled=%d reused=%d\n",
				ev.Restart, ev.Rounds, ev.WorstBound, ev.SampledTrials, ev.ReusedTrials)
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSame query, approximate (Karp–Luby + Figure 3), with error bounds:")
	printResolved(approx, true)
	s := approx.Stats()
	fmt.Printf("\nstats: rounds=%d restarts=%d decisions=%d sampled-trials=%d reused-trials=%d\n",
		s.FinalRounds, s.Restarts, s.Decisions, s.SampledTrials, s.ReusedTrials)
	fmt.Println("\nClusters without a dominant candidate stay unresolved — downstream")
	fmt.Println("processing sees only records cleaned with quantified reliability.")
}

func printResolved(res *pdb.Result, withBounds bool) {
	for row := range res.Rows() {
		line := fmt.Sprintf("  cluster %d → %-18s conf %.3f",
			row.Int("Cluster"), row.Str("Name"), row.Float("P1"))
		if withBounds {
			line += fmt.Sprintf("  (err ≤ %.4f)", row.ErrorBound())
			if row.Singular() {
				line += " SINGULAR"
			}
		}
		fmt.Println(line)
	}
	if res.Len() == 0 {
		fmt.Println("  (none)")
	}
}
