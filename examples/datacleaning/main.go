// Data cleaning with probabilistic repairs — the use case the paper's
// introduction motivates. Duplicate-record clusters carry weighted
// candidate resolutions; repair-key turns them into a probabilistic
// database of possible clean instances, and an approximate selection keeps
// only the clusters whose most likely resolution has confidence ≥ 0.6 —
// a predicate over approximated marginal probabilities (σ̂, Section 6).
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/predapprox"
	"repro/internal/urel"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	db := workload.DirtyCustomers(rng, 8, 3)

	fmt.Println("Candidates (cluster, candidate name, match weight):")
	for _, ut := range db.Rels["Candidates"].Tuples() {
		fmt.Printf("  %v\n", ut.Row)
	}

	// Clean := repair-key_{Cluster}@Weight(Candidates): one candidate per
	// cluster, weighted; then σ̂ keeps (Cluster, Name) pairs whose
	// marginal confidence is at least 0.6 — confidently resolved records.
	clean := algebra.RepairKey{
		In:     algebra.Base{Name: "Candidates"},
		Key:    []string{"Cluster"},
		Weight: "Weight",
	}
	confident := algebra.ApproxSelect{
		In:   clean,
		Args: []algebra.ConfArg{{Attrs: []string{"Cluster", "Name"}}},
		Pred: predapprox.Linear([]float64{1}, 0.6),
	}

	// Exact reference.
	exact, err := algebra.NewURelEvaluator(db).Eval(confident)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nConfidently resolved records (exact confidence ≥ 0.6):")
	printResolved(exact.Rel, nil)

	// Approximate engine with per-tuple error bounds.
	eng := core.NewEngine(db, core.Options{Eps0: 0.05, Delta: 0.05, Seed: 99})
	approx, err := eng.EvalApprox(confident)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSame query, approximate (Karp–Luby + Figure 3), with error bounds:")
	printResolved(approx.Rel, approx)
	fmt.Printf("\nstats: rounds=%d restarts=%d decisions=%d sampled-trials=%d reused-trials=%d\n",
		approx.Stats.FinalRounds, approx.Stats.Restarts, approx.Stats.Decisions, approx.Stats.EstimatorTrials, approx.Stats.ReusedTrials)
	fmt.Println("\nClusters without a dominant candidate stay unresolved — downstream")
	fmt.Println("processing sees only records cleaned with quantified reliability.")
}

func printResolved(r *urel.Relation, res *core.Result) {
	out := urel.Poss(r)
	for _, tp := range out.Sorted() {
		line := fmt.Sprintf("  cluster %v → %-10v conf %.3f",
			out.Value(tp, "Cluster"), out.Value(tp, "Name"), out.Value(tp, "P1").AsFloat())
		if res != nil {
			line += fmt.Sprintf("  (err ≤ %.4f)", res.TupleError(tp))
			if res.IsSingular(tp) {
				line += " SINGULAR"
			}
		}
		fmt.Println(line)
	}
	if out.Len() == 0 {
		fmt.Println("  (none)")
	}
}
