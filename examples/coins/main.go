// Generalized Bayesian coin inference: Example 2.2 scaled to arbitrary
// bags and toss counts. For each number of observed all-heads tosses, the
// posterior P(fair | all heads) is computed through the algebra (exact and
// approximate) and compared with the analytic value — showing that the
// compositional conf operator really computes conditional probabilities.
//
// Run with: go run ./examples/coins
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/workload"
)

func main() {
	bag := workload.CoinBag{FairCount: 3, BiasedCount: 2, Bias: 0.9}
	fmt.Printf("Bag: %d fair coins, %d biased coins with P(H) = %.2f\n\n",
		bag.FairCount, bag.BiasedCount, bag.Bias)
	fmt.Println("tosses  analytic   exact algebra  approx algebra  |exact−analytic|")
	fmt.Println("------  ---------  -------------  --------------  ----------------")

	for tosses := 1; tosses <= 4; tosses++ {
		bag.Tosses = tosses
		db := bag.Database()
		query := posteriorQuery(tosses)

		exact, err := algebra.NewURelEvaluator(db).Eval(query)
		if err != nil {
			log.Fatal(err)
		}
		pExact, ok := fairPosterior(urel.Poss(exact.Rel))
		if !ok {
			log.Fatalf("missing fair tuple at %d tosses", tosses)
		}

		eng := core.NewEngine(db, core.Options{
			Eps0: 0.05, Delta: 0.05, ConfEps: 0.02, ConfDelta: 0.02, Seed: int64(tosses),
		})
		approx, err := eng.EvalApprox(query)
		if err != nil {
			log.Fatal(err)
		}
		pApprox, _ := fairPosterior(urel.Poss(approx.Rel))

		analytic := bag.PosteriorFairAllHeads()
		fmt.Printf("%6d  %9.5f  %13.5f  %14.5f  %16.2e\n",
			tosses, analytic, pExact, pApprox, abs(pExact-analytic))
	}
	fmt.Println("\nEach added head shifts belief toward the biased coin, exactly as")
	fmt.Println("Bayes' rule dictates — computed purely with repair-key, join and conf.")
}

// posteriorQuery builds U for the given number of tosses: draw a coin,
// toss it n times, condition on all heads.
func posteriorQuery(tosses int) algebra.Query {
	r := algebra.Project{
		In:      algebra.RepairKey{In: algebra.Base{Name: "Coins"}, Weight: "Count"},
		Targets: []expr.Target{expr.Keep("CoinType")},
	}
	s := algebra.Project{
		In: algebra.RepairKey{
			In:     algebra.Product{L: algebra.Base{Name: "Faces"}, R: algebra.Base{Name: "Tosses"}},
			Key:    []string{"CoinType", "Toss"},
			Weight: "FProb",
		},
		Targets: []expr.Target{expr.Keep("CoinType"), expr.Keep("Toss"), expr.Keep("Face")},
	}
	t := algebra.Query(algebra.Base{Name: "R"})
	for i := 1; i <= tosses; i++ {
		heads := algebra.Project{
			In: algebra.Select{
				In: algebra.Base{Name: "S"},
				Pred: expr.AndOf(
					expr.Eq(expr.A("Toss"), expr.CInt(int64(i))),
					expr.Eq(expr.A("Face"), expr.CStr("H")),
				),
			},
			Targets: []expr.Target{expr.Keep("CoinType")},
		}
		t = algebra.Join{L: t, R: heads}
	}
	u := algebra.Project{
		In: algebra.Product{
			L: algebra.Conf{In: algebra.Base{Name: "T"}, As: "P1"},
			R: algebra.Conf{In: algebra.Project{In: algebra.Base{Name: "T"}}, As: "P2"},
		},
		Targets: []expr.Target{
			expr.Keep("CoinType"),
			expr.As("P", expr.Div(expr.A("P1"), expr.A("P2"))),
		},
	}
	return algebra.Let{Name: "R", Def: r,
		In: algebra.Let{Name: "S", Def: s,
			In: algebra.Let{Name: "T", Def: t, In: u}}}
}

// fairPosterior extracts the P value of the CoinType = "fair" tuple.
func fairPosterior(r *rel.Relation) (float64, bool) {
	for _, tp := range r.Tuples() {
		if r.Value(tp, "CoinType").AsString() == "fair" {
			return r.Value(tp, "P").AsFloat(), true
		}
	}
	return 0, false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
