// Generalized Bayesian coin inference on the public pdb API: Example 2.2
// scaled to arbitrary bags and toss counts. For each number of observed
// all-heads tosses, the posterior P(fair | all heads) is computed through
// the algebra (exact and approximate) and compared with the analytic
// value — showing that the compositional conf operator really computes
// conditional probabilities.
//
// Run with: go run ./examples/coins
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"

	"repro/pdb"
)

const (
	fairCount   = 3
	biasedCount = 2
	bias        = 0.9 // P(H) of the biased coin type
)

func main() {
	fmt.Printf("Bag: %d fair coins, %d biased coins with P(H) = %.2f\n\n",
		fairCount, biasedCount, bias)
	fmt.Println("tosses  analytic   exact algebra  approx algebra  |exact−analytic|")
	fmt.Println("------  ---------  -------------  --------------  ----------------")

	ctx := context.Background()
	for tosses := 1; tosses <= 4; tosses++ {
		db := bagDatabase(tosses)
		q, err := db.Prepare(posteriorProgram(tosses))
		if err != nil {
			log.Fatal(err)
		}

		exact, err := q.EvalExact(ctx)
		if err != nil {
			log.Fatal(err)
		}
		pExact, ok := fairPosterior(exact)
		if !ok {
			log.Fatalf("missing fair tuple at %d tosses", tosses)
		}

		approx, err := q.Eval(ctx, pdb.WithConfBudget(0.02, 0.02), pdb.WithSeed(int64(tosses)))
		if err != nil {
			log.Fatal(err)
		}
		pApprox, _ := fairPosterior(approx)

		analytic := posteriorFairAllHeads(tosses)
		fmt.Printf("%6d  %9.5f  %13.5f  %14.5f  %16.2e\n",
			tosses, analytic, pExact, pApprox, math.Abs(pExact-analytic))
	}
	fmt.Println("\nEach added head shifts belief toward the biased coin, exactly as")
	fmt.Println("Bayes' rule dictates — computed purely with repair-key, join and conf.")
}

// bagDatabase builds the complete relations for the bag with the given
// number of tosses.
func bagDatabase(tosses int) *pdb.DB {
	b := pdb.NewBuilder().
		Table("Coins", []string{"CoinType", "Count"},
			[]any{"fair", fairCount},
			[]any{"biased", biasedCount}).
		Table("Faces", []string{"CoinType", "Face", "FProb"},
			[]any{"fair", "H", 0.5},
			[]any{"fair", "T", 0.5},
			[]any{"biased", "H", bias},
			[]any{"biased", "T", 1 - bias})
	rows := make([][]any, tosses)
	for i := range rows {
		rows[i] = []any{i + 1}
	}
	b.Table("Tosses", []string{"Toss"}, rows...)
	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return db
}

// posteriorProgram builds the UA program for the given number of tosses:
// draw a coin, toss it n times, condition on all heads.
func posteriorProgram(tosses int) string {
	var sb strings.Builder
	sb.WriteString("R := project[CoinType](repairkey[@Count](Coins));\n")
	sb.WriteString("S := project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)));\n")
	t := "R"
	for i := 1; i <= tosses; i++ {
		t = fmt.Sprintf("join(%s, project[CoinType](select[Toss = %d and Face = 'H'](S)))", t, i)
	}
	fmt.Fprintf(&sb, "T := %s;\n", t)
	sb.WriteString("project[CoinType, P1/P2 as P](product(conf as P1 (T), conf as P2 (project[](T))));\n")
	return sb.String()
}

// fairPosterior extracts the P value of the CoinType = "fair" row.
func fairPosterior(res *pdb.Result) (float64, bool) {
	for row := range res.Rows() {
		if row.Str("CoinType") == "fair" {
			return row.Float("P"), true
		}
	}
	return 0, false
}

// posteriorFairAllHeads is the analytic ground truth: Bayes' rule over the
// two coin types with an all-heads likelihood.
func posteriorFairAllHeads(tosses int) float64 {
	total := float64(fairCount + biasedCount)
	pFair, pBiased := float64(fairCount)/total, float64(biasedCount)/total
	likeFair, likeBiased := math.Pow(0.5, float64(tosses)), math.Pow(bias, float64(tosses))
	return pFair * likeFair / (pFair*likeFair + pBiased*likeBiased)
}
