// Attribute-level uncertainty via vertical decomposition on the public pdb
// API (Section 3 of the paper, following [1]): a customer table whose Name
// and City attributes are independently uncertain is stored as one
// U-relation per attribute — linear in the number of alternatives — while
// representing the full cartesian product of possibilities. Queries then
// run on the joined view: here, the marginal distribution of each full
// record and a selection of records that live in 'NYC' with confidence
// ≥ 0.5.
//
// Run with: go run ./examples/attributes
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pdb"
)

func main() {
	db, err := pdb.NewBuilder().
		AttributeUncertain("Customers", []string{"Name", "City"},
			[]pdb.Alt{
				pdb.Choice("Ann", 0.7, "Anna", 0.3),
				pdb.Choice("NYC", 0.8, "Newark", 0.2),
			},
			[]pdb.Alt{
				pdb.Certain("Bob"),
				pdb.Choice("LA", 0.4, "NYC", 0.6),
			},
			[]pdb.Alt{
				pdb.Choice("Cy", 0.5, "Cyrus", 0.3, "Ciro", 0.2),
				pdb.Certain("NYC"),
			}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Joined U-relational representation: %d U-tuples\n\n", db.NumTuples("Customers"))
	ctx := context.Background()

	// Marginal distribution of full records.
	confQ, err := db.Prepare(`conf(Customers)`)
	if err != nil {
		log.Fatal(err)
	}
	conf, err := confQ.EvalExact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Record marginals:")
	for row := range conf.Rows() {
		fmt.Printf("  %-7s %-8s %.3f\n", row.Str("Name"), row.Str("City"), row.Float("P"))
	}

	// σ̂: (Name) groups whose probability of living in NYC is ≥ 0.5.
	q, err := db.Prepare(`aselect[p1 >= 0.5 over conf[Name]](select[City = 'NYC'](Customers))`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Eval(ctx, pdb.WithEpsilon(0.05), pdb.WithDelta(0.05), pdb.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNames that are in NYC with probability ≥ 0.5 (σ̂, with bounds):")
	for row := range res.Rows() {
		fmt.Printf("  %-7s P̂ = %.3f  (err ≤ %.4f)\n",
			row.Str("Name"), row.Float("P1"), row.ErrorBound())
	}
	if res.Len() == 0 {
		fmt.Println("  (none)")
	}
}
