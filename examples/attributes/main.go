// Attribute-level uncertainty via vertical decomposition (Section 3 of the
// paper, following [1]): a customer table whose Name and City attributes
// are independently uncertain is stored as one U-relation per attribute —
// linear in the number of alternatives — while representing the full
// cartesian product of possibilities. Queries then run on the joined view:
// here, the marginal distribution of each full record and a selection of
// records that live in 'NYC' with confidence ≥ 0.5.
//
// Run with: go run ./examples/attributes
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
)

func main() {
	db := urel.NewDatabase()
	schema := rel.NewSchema("Name", "City")
	rows := [][]urel.AttrAlternatives{
		{
			{Values: []rel.Value{rel.String("Ann"), rel.String("Anna")}, Probs: []float64{0.7, 0.3}},
			{Values: []rel.Value{rel.String("NYC"), rel.String("Newark")}, Probs: []float64{0.8, 0.2}},
		},
		{
			urel.Certain(rel.String("Bob")),
			{Values: []rel.Value{rel.String("LA"), rel.String("NYC")}, Probs: []float64{0.4, 0.6}},
		},
		{
			{Values: []rel.Value{rel.String("Cy"), rel.String("Cyrus"), rel.String("Ciro")}, Probs: []float64{0.5, 0.3, 0.2}},
			urel.Certain(rel.String("NYC")),
		},
	}
	vd, err := urel.BuildAttributeUncertainty(db.Vars, schema, rows, "TID", "attr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Vertical representation: %d U-tuples across %d parts\n", vd.Size(), len(vd.Parts))
	joined := vd.Joined()
	fmt.Printf("Represented (joined) relation: %d U-tuples\n\n", joined.Len())
	db.AddURelation("Customers", joined, false)

	// Marginal distribution of full records.
	conf, err := algebra.NewURelEvaluator(db).Eval(algebra.Conf{In: algebra.Base{Name: "Customers"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Record marginals:")
	cp := urel.Poss(conf.Rel)
	for _, tp := range cp.Sorted() {
		fmt.Printf("  %-7s %-8s %.3f\n",
			cp.Value(tp, "Name").AsString(), cp.Value(tp, "City").AsString(),
			cp.Value(tp, "P").AsFloat())
	}

	// σ̂: (Name) groups whose probability of living in NYC is ≥ 0.5.
	q := algebra.ApproxSelect{
		In: algebra.Select{
			In:   algebra.Base{Name: "Customers"},
			Pred: cityIs("NYC"),
		},
		Args: []algebra.ConfArg{{Attrs: []string{"Name"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
	eng := core.NewEngine(db, core.Options{Eps0: 0.05, Delta: 0.05, Seed: 31})
	res, err := eng.EvalApprox(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNames that are in NYC with probability ≥ 0.5 (σ̂, with bounds):")
	out := urel.Poss(res.Rel)
	for _, tp := range out.Sorted() {
		fmt.Printf("  %-7s P̂ = %.3f  (err ≤ %.4f)\n",
			out.Value(tp, "Name").AsString(), out.Value(tp, "P1").AsFloat(), res.TupleError(tp))
	}
	if out.Len() == 0 {
		fmt.Println("  (none)")
	}
}

func cityIs(c string) expr.Pred {
	return expr.Eq(expr.A("City"), expr.CStr(c))
}
