// Sensor-data processing with probability predicates on the public pdb
// API — the second application area the paper's introduction highlights.
// Readings arrive as a tuple-independent probabilistic relation (each
// reading present with a sensor-noise confidence). Three queries:
//
//  1. per-reading confidences (conf);
//  2. a conditional probability per sensor, P(live in both epochs | live
//     in some epoch), computed compositionally like Example 2.2;
//  3. an approximate selection σ̂ in the shape of Example 6.1:
//     conf[Sensor]/conf[∅] ≥ 0.3 over the both-epochs relation — sensors
//     that account for a substantial share of the network's both-epochs
//     liveness, decided by the Figure 3 algorithm with error bounds.
//
// Run with: go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pdb"
)

func main() {
	// Six sensors, two epochs; each reading carries the probability that
	// the sensor was actually live (sensor noise).
	var rows [][]any
	var probs []float64
	reliability := []float64{0.95, 0.85, 0.72, 0.61, 0.48, 0.35}
	values := []float64{20.4, 21.1, 19.7, 22.3, 18.9, 20.0}
	for s, rel := range reliability {
		for e := 0; e < 2; e++ {
			rows = append(rows, []any{s, e, values[s] + 0.3*float64(e)})
			probs = append(probs, rel*(0.9+0.05*float64(e)))
		}
	}
	db, err := pdb.NewBuilder().
		Independent("Readings", []string{"Sensor", "Epoch", "Value"}, rows, probs).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. Per-reading confidences.
	fmt.Println("Per-reading confidences (sensor, epoch → P):")
	conf, err := mustPrepare(db, `conf(project[Sensor, Epoch](Readings))`).EvalExact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for row := range conf.Rows() {
		fmt.Printf("  sensor %d epoch %d: %.3f\n",
			row.Int("Sensor"), row.Int("Epoch"), row.Float("P"))
	}

	// 2. Conditional probability per sensor via compositional conf (the
	// Example 2.2 pattern), then an ordinary selection on the ratio.
	cond, err := mustPrepare(db, `
		Both := join(project[Sensor](select[Epoch = 0](Readings)),
		             project[Sensor](select[Epoch = 1](Readings)));
		Any := union(project[Sensor](select[Epoch = 0](Readings)),
		             project[Sensor](select[Epoch = 1](Readings)));
		select[PCond >= 0.5](project[Sensor, PBoth/PAny as PCond](
			join(conf as PBoth (Both), conf as PAny (Any))));
	`).EvalExact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSensors with P(live in both epochs | live in some epoch) ≥ 0.5 (exact):")
	for row := range cond.Rows() {
		fmt.Printf("  sensor %d: %.3f\n", row.Int("Sensor"), row.Float("PCond"))
	}
	if cond.Len() == 0 {
		fmt.Println("  (none)")
	}

	// 3. σ̂ in the Example 6.1 shape over the both-epochs relation:
	// conf[Sensor] ≥ 0.3 · conf[∅], linearized as p1 − 0.3·p2 ≥ 0, decided
	// by the Figure 3 algorithm on Karp–Luby estimates with error bounds.
	shat := mustPrepare(db, `
		Both := join(project[Sensor](select[Epoch = 0](Readings)),
		             project[Sensor](select[Epoch = 1](Readings)));
		aselect[p1 - 0.3 * p2 >= 0 over conf[Sensor], conf[]](Both);
	`)
	approx, err := shat.Eval(ctx, pdb.WithEpsilon(0.05), pdb.WithDelta(0.1), pdb.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nσ̂: sensors with conf[Sensor] ≥ 0.3 · conf[∅] on the both-epochs relation,")
	fmt.Println("decided by the Figure 3 algorithm on Karp–Luby estimates:")
	for row := range approx.Rows() {
		fmt.Printf("  sensor %d: P̂sensor %.3f, P̂network %.3f  (err ≤ %.4f)\n",
			row.Int("Sensor"), row.Float("P1"), row.Float("P2"), row.ErrorBound())
	}
	if approx.Len() == 0 {
		fmt.Println("  (none)")
	}
	s := approx.Stats()
	fmt.Printf("\nstats: rounds=%d decisions=%d sampled-trials=%d singular-drops=%d\n",
		s.FinalRounds, s.Decisions, s.SampledTrials, s.SingularDrops)
}

func mustPrepare(db *pdb.DB, src string) *pdb.Query {
	q, err := db.Prepare(src)
	if err != nil {
		log.Fatal(err)
	}
	return q
}
