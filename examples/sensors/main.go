// Sensor-data processing with probability predicates — the second
// application area the paper's introduction highlights. Readings arrive as
// a tuple-independent probabilistic relation (each reading present with a
// sensor-noise confidence). Three queries:
//
//  1. per-reading confidences (conf);
//  2. a conditional probability per sensor, P(live in both epochs | live
//     in some epoch), computed compositionally like Example 2.2;
//  3. an approximate selection σ̂ in the shape of Example 6.1:
//     conf[Sensor]/conf[∅] ≥ 0.3 over the both-epochs relation — sensors
//     that account for a substantial share of the network's both-epochs
//     liveness, decided by the Figure 3 algorithm with error bounds.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/urel"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	db := workload.SensorReadings(rng, 6, 2)

	// 1. Per-reading confidences.
	fmt.Println("Per-reading confidences (sensor, epoch → P):")
	conf, err := algebra.NewURelEvaluator(db).Eval(algebra.Conf{
		In: algebra.Project{
			In:      algebra.Base{Name: "Readings"},
			Targets: []expr.Target{expr.Keep("Sensor"), expr.Keep("Epoch")},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	cp := urel.Poss(conf.Rel)
	for _, tp := range cp.Sorted() {
		fmt.Printf("  sensor %v epoch %v: %.3f\n",
			cp.Value(tp, "Sensor"), cp.Value(tp, "Epoch"), cp.Value(tp, "P").AsFloat())
	}

	epoch := func(e int64) algebra.Query {
		return algebra.Project{
			In: algebra.Select{
				In:   algebra.Base{Name: "Readings"},
				Pred: expr.Eq(expr.A("Epoch"), expr.CInt(e)),
			},
			Targets: []expr.Target{expr.Keep("Sensor")},
		}
	}
	both := algebra.Join{L: epoch(0), R: epoch(1)}
	any := algebra.Union{L: epoch(0), R: epoch(1)}

	// 2. Conditional probability per sensor via compositional conf (the
	// Example 2.2 pattern), then an ordinary selection on the ratio.
	ratio := algebra.Project{
		In: algebra.Join{
			L: algebra.Conf{In: both, As: "PBoth"},
			R: algebra.Conf{In: any, As: "PAny"},
		},
		Targets: []expr.Target{
			expr.Keep("Sensor"),
			expr.As("PCond", expr.Div(expr.A("PBoth"), expr.A("PAny"))),
		},
	}
	sel := algebra.Select{In: ratio, Pred: expr.Ge(expr.A("PCond"), expr.CFloat(0.5))}
	exact, err := algebra.NewURelEvaluator(db).Eval(sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSensors with P(live in both epochs | live in some epoch) ≥ 0.5 (exact):")
	ep := urel.Poss(exact.Rel)
	for _, tp := range ep.Sorted() {
		fmt.Printf("  sensor %v: %.3f\n", ep.Value(tp, "Sensor"), ep.Value(tp, "PCond").AsFloat())
	}
	if ep.Len() == 0 {
		fmt.Println("  (none)")
	}

	// 3. σ̂ in the Example 6.1 shape over the both-epochs relation:
	// p1/p2 ≥ 0.3 with p1 = conf[Sensor] and p2 = conf[∅] (the
	// probability that any sensor is live in both epochs). Linearized:
	// p1 − 0.3·p2 ≥ 0.
	shat := algebra.ApproxSelect{
		In:   both,
		Args: []algebra.ConfArg{{Attrs: []string{"Sensor"}}, {Attrs: nil}},
		Pred: predapprox.Linear([]float64{1, -0.3}, 0),
	}
	eng := core.NewEngine(db, core.Options{Eps0: 0.05, Delta: 0.1, Seed: 23})
	approx, err := eng.EvalApprox(shat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nσ̂: sensors with conf[Sensor] ≥ 0.3 · conf[∅] on the both-epochs relation,")
	fmt.Println("decided by the Figure 3 algorithm on Karp–Luby estimates:")
	ap := urel.Poss(approx.Rel)
	for _, tp := range ap.Sorted() {
		fmt.Printf("  sensor %v: P̂sensor %.3f, P̂network %.3f  (err ≤ %.4f)\n",
			ap.Value(tp, "Sensor"), ap.Value(tp, "P1").AsFloat(), ap.Value(tp, "P2").AsFloat(),
			approx.TupleError(tp))
	}
	if ap.Len() == 0 {
		fmt.Println("  (none)")
	}
	fmt.Printf("\nstats: rounds=%d decisions=%d sampled-trials=%d singular-drops=%d\n",
		approx.Stats.FinalRounds, approx.Stats.Decisions, approx.Stats.EstimatorTrials, approx.Stats.SingularDrops)
}
