package pdb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
)

// ClusterOptions configures horizontal sharding for an Engine: the shard
// peer set and the failure-handling envelope. Estimation chunk batches
// scatter across the peers (consistent-hash placement by lineage-content
// fingerprint, chunks round-robin from the owner); exact algebra,
// planning, caching, tenancy, and the HTTP surface all stay on the
// coordinator process. Results are bit-identical to single-node
// execution for any peer count under one seed — a property the failure
// machinery preserves: a chunk re-dispatched to a different shard (or
// sampled by the coordinator itself) replays the same fixed PRNG stream
// and contributes the same counts.
type ClusterOptions struct {
	// Peers are shard server addresses (host:port), as served by
	// `pdbserve -shard`.
	Peers []string
	// DialTimeout bounds connection establishment per attempt
	// (0 = 5s).
	DialTimeout time.Duration
	// RequestTimeout is the per-shard, per-attempt RPC deadline
	// (0 = 2m). A shard that exceeds it is retried, failed over to the
	// surviving shards, and only then reported via *ClusterError —
	// evaluations never hang on a dead shard.
	RequestTimeout time.Duration
	// Retries is how many times a failed shard RPC is retried on a fresh
	// connection before its chunk ranges fail over (default 2).
	Retries int
	// RetryBackoff is the base backoff before a retry, doubling per
	// attempt (0 = 100ms).
	RetryBackoff time.Duration

	// BreakerThreshold is how many consecutive exhausted-retry failures
	// trip a shard's circuit breaker. A tripped shard is skipped at plan
	// time — queries stop paying its timeouts — until a background probe
	// re-admits it. 0 = 3; negative disables the breaker.
	BreakerThreshold int
	// ProbeInterval is how often tripped shards are pinged for
	// re-admission (0 = 2s; negative disables background probing).
	ProbeInterval time.Duration
	// HedgeAfter enables hedged requests for stragglers: a shard RPC
	// still unanswered after this delay is duplicated to a second shard
	// and the first complete response wins (the duplicate is discarded —
	// deterministic chunk counts make the race bit-neutral). 0 adapts
	// the delay from observed latencies (1.5 × p95); negative disables
	// hedging.
	HedgeAfter time.Duration
	// LocalFallback lets the coordinator sample chunk ranges in-process
	// when no shard is available, so evaluations degrade to single-node
	// speed instead of failing when the whole shard fleet is down.
	LocalFallback bool
}

// WithEngineCluster attaches a shard cluster to the engine: every
// evaluation's sampling work is scattered across the peers instead of the
// local worker pool. The bit-identity contract holds: a clustered
// evaluation returns exactly the bytes a single-node one would, for any
// peer count, under one seed — including runs where shards fail, recover,
// or straggle mid-query.
func WithEngineCluster(o ClusterOptions) EngineOption {
	return EngineOption{func(e *Engine) error {
		if len(o.Peers) == 0 {
			return optionErr("WithEngineCluster", o.Peers, "needs at least one peer")
		}
		coord, err := cluster.New(cluster.Config{
			Peers:            o.Peers,
			DialTimeout:      o.DialTimeout,
			RequestTimeout:   o.RequestTimeout,
			Retries:          o.Retries,
			RetryBackoff:     o.RetryBackoff,
			BreakerThreshold: o.BreakerThreshold,
			ProbeInterval:    o.ProbeInterval,
			HedgeAfter:       o.HedgeAfter,
			LocalFallback:    o.LocalFallback,
		})
		if err != nil {
			return optionErr("WithEngineCluster", o.Peers, err.Error())
		}
		e.coord = coord
		return nil
	}}
}

// ClusterError reports a failed shard interaction: which shard, how many
// attempts were made, and the final transport or protocol error. It is
// returned (wrapped) by Eval on a clustered engine when a shard stays
// unreachable past its retry budget and no failover target remains — a
// typed, bounded-time failure, never a hang. Shard is "cluster" when the
// failure is cluster-wide (no healthy shard left) rather than one peer's.
type ClusterError struct {
	// Shard is the peer address that failed ("cluster" for cluster-wide
	// failures, "local" for coordinator-local fallback failures).
	Shard string
	// Attempts is the number of RPC attempts made against it.
	Attempts int
	// Err is the final underlying error.
	Err error
}

func (e *ClusterError) Error() string {
	return fmt.Sprintf("pdb: cluster shard %s failed after %d attempt(s): %v", e.Shard, e.Attempts, e.Err)
}

// Unwrap returns the underlying transport or protocol error.
func (e *ClusterError) Unwrap() error { return e.Err }

// ErrNoHealthyShards is wrapped by the *ClusterError an evaluation
// returns when every shard is unavailable and LocalFallback is off.
var ErrNoHealthyShards = cluster.ErrNoHealthyShards

// translateClusterError rewraps the internal cluster error type into the
// public one; other errors pass through.
func translateClusterError(err error) error {
	var ce *cluster.Error
	if errors.As(err, &ce) {
		return &ClusterError{Shard: ce.Shard, Attempts: ce.Attempts, Err: ce.Err}
	}
	return err
}

// ClusterShardStatus is one shard's health and traffic counters, as seen
// from the coordinator.
type ClusterShardStatus struct {
	// Addr is the shard's address.
	Addr string
	// Healthy reports whether the shard's most recent RPC succeeded.
	Healthy bool
	// Breaker is the shard's circuit-breaker state: "closed" (admitting
	// work), "half-open" (a re-admission probe is in flight), or "open"
	// (skipped at plan time).
	Breaker string
	// RPCs, Failures, and Retries count RPC attempts against the shard,
	// RPCs that exhausted every retry, and individual retry attempts.
	RPCs     int64
	Failures int64
	Retries  int64
	// BytesSent and BytesRecv count wire traffic to and from the shard.
	BytesSent int64
	BytesRecv int64
	// LastError is the most recent RPC error message (empty when none).
	LastError string
}

// ClusterStats is a snapshot of a clustered engine's scatter-gather
// activity.
type ClusterStats struct {
	// Batches counts scatter-gather round trips.
	Batches int64
	// MergeNanos is the cumulative time spent merging gathered counts.
	MergeNanos int64
	// Failovers counts chunk-range re-dispatches to a surviving shard
	// after a peer exhausted its retry budget.
	Failovers int64
	// Hedges and HedgeWins count straggler hedges issued and hedges
	// whose duplicate finished first.
	Hedges    int64
	HedgeWins int64
	// LocalFallbacks counts dispatches the coordinator sampled itself
	// because no shard was available.
	LocalFallbacks int64
	// Probes and ProbeFailures count breaker re-admission probes.
	Probes        int64
	ProbeFailures int64
	// LocalFallback reports whether coordinator-local sampling is
	// enabled.
	LocalFallback bool
	// Shards holds one entry per configured peer.
	Shards []ClusterShardStatus
}

// ClusterStats returns per-shard coordinator statistics, or nil when the
// engine is not clustered.
func (e *Engine) ClusterStats() *ClusterStats {
	if e.coord == nil {
		return nil
	}
	cs := e.coord.Stats()
	out := &ClusterStats{
		Batches:        cs.Batches,
		MergeNanos:     cs.MergeNanos,
		Failovers:      cs.Failovers,
		Hedges:         cs.Hedges,
		HedgeWins:      cs.HedgeWins,
		LocalFallbacks: cs.LocalFallbacks,
		Probes:         cs.Probes,
		ProbeFailures:  cs.ProbeFailures,
		LocalFallback:  cs.LocalFallback,
	}
	for _, s := range cs.Shards {
		out.Shards = append(out.Shards, ClusterShardStatus{
			Addr:      s.Addr,
			Healthy:   s.Healthy,
			Breaker:   s.Breaker,
			RPCs:      s.RPCs,
			Failures:  s.Failures,
			Retries:   s.Retries,
			BytesSent: s.BytesSent,
			BytesRecv: s.BytesRecv,
			LastError: s.LastError,
		})
	}
	return out
}

// ClusterBreakerStates returns each peer's numeric breaker state in peer
// order (0 closed, 1 half-open, 2 open), or nil when the engine is not
// clustered. The metrics layer exposes it as a per-shard gauge.
func (e *Engine) ClusterBreakerStates() []int {
	if e.coord == nil {
		return nil
	}
	return e.coord.BreakerStates()
}

// PingCluster round-trips every shard once, returning the first typed
// failure as a *ClusterError. It is a no-op on a non-clustered engine.
func (e *Engine) PingCluster(ctx context.Context) error {
	if e.coord == nil {
		return nil
	}
	return translateClusterError(e.coord.Ping(ctx))
}

// ProbeCluster pings every shard once and seeds the breaker state from
// the outcome: unreachable shards trip open immediately (skipped from
// the first plan, re-admitted by background probes when they return).
// It returns the healthy and total shard counts; (0, 0) on a
// non-clustered engine. pdbserve calls it at boot so a partially-dead
// peer set degrades instead of failing.
func (e *Engine) ProbeCluster(ctx context.Context) (healthy, total int) {
	if e.coord == nil {
		return 0, 0
	}
	return e.coord.Probe(ctx), len(e.ClusterStats().Shards)
}

// ClusterReady reports whether the engine can make progress on sampling
// work: true on a non-clustered engine, on a clustered engine with local
// fallback enabled, and whenever at least one shard's breaker admits
// work. The server's /readyz endpoint is backed by it.
func (e *Engine) ClusterReady() bool {
	if e.coord == nil {
		return true
	}
	cs := e.coord.Stats()
	if cs.LocalFallback {
		return true
	}
	for _, s := range cs.Shards {
		if s.Breaker != "open" {
			return true
		}
	}
	return false
}

// Close releases the engine's external resources (pooled shard
// connections and the background health prober). It is a no-op on a
// non-clustered engine; an Engine without a cluster holds no goroutines
// or file handles.
func (e *Engine) Close() error {
	if e.coord == nil {
		return nil
	}
	return e.coord.Close()
}
