package pdb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
)

// ClusterOptions configures horizontal sharding for an Engine: the shard
// peer set and the failure-handling envelope. Estimation chunk batches
// scatter across the peers (consistent-hash placement by lineage-content
// fingerprint, chunks round-robin from the owner); exact algebra,
// planning, caching, tenancy, and the HTTP surface all stay on the
// coordinator process. Results are bit-identical to single-node
// execution for any peer count under one seed.
type ClusterOptions struct {
	// Peers are shard server addresses (host:port), as served by
	// `pdbserve -shard`.
	Peers []string
	// DialTimeout bounds connection establishment per attempt
	// (0 = 5s).
	DialTimeout time.Duration
	// RequestTimeout is the per-shard, per-attempt RPC deadline
	// (0 = 2m). A shard that exceeds it is retried and then reported via
	// *ClusterError — evaluations never hang on a dead shard.
	RequestTimeout time.Duration
	// Retries is how many times a failed shard RPC is retried on a fresh
	// connection before the evaluation fails (default 2).
	Retries int
	// RetryBackoff is the base backoff before a retry, doubling per
	// attempt (0 = 100ms).
	RetryBackoff time.Duration
}

// WithEngineCluster attaches a shard cluster to the engine: every
// evaluation's sampling work is scattered across the peers instead of the
// local worker pool. The bit-identity contract holds: a clustered
// evaluation returns exactly the bytes a single-node one would, for any
// peer count, under one seed.
func WithEngineCluster(o ClusterOptions) EngineOption {
	return EngineOption{func(e *Engine) error {
		if len(o.Peers) == 0 {
			return optionErr("WithEngineCluster", o.Peers, "needs at least one peer")
		}
		coord, err := cluster.New(cluster.Config{
			Peers:          o.Peers,
			DialTimeout:    o.DialTimeout,
			RequestTimeout: o.RequestTimeout,
			Retries:        o.Retries,
			RetryBackoff:   o.RetryBackoff,
		})
		if err != nil {
			return optionErr("WithEngineCluster", o.Peers, err.Error())
		}
		e.coord = coord
		return nil
	}}
}

// ClusterError reports a failed shard interaction: which shard, how many
// attempts were made, and the final transport or protocol error. It is
// returned (wrapped) by Eval on a clustered engine when a shard stays
// unreachable past its retry budget — a typed, bounded-time failure, never
// a hang.
type ClusterError struct {
	// Shard is the peer address that failed.
	Shard string
	// Attempts is the number of RPC attempts made against it.
	Attempts int
	// Err is the final underlying error.
	Err error
}

func (e *ClusterError) Error() string {
	return fmt.Sprintf("pdb: cluster shard %s failed after %d attempt(s): %v", e.Shard, e.Attempts, e.Err)
}

// Unwrap returns the underlying transport or protocol error.
func (e *ClusterError) Unwrap() error { return e.Err }

// translateClusterError rewraps the internal cluster error type into the
// public one; other errors pass through.
func translateClusterError(err error) error {
	var ce *cluster.Error
	if errors.As(err, &ce) {
		return &ClusterError{Shard: ce.Shard, Attempts: ce.Attempts, Err: ce.Err}
	}
	return err
}

// ClusterShardStatus is one shard's health and traffic counters, as seen
// from the coordinator.
type ClusterShardStatus struct {
	// Addr is the shard's address.
	Addr string
	// Healthy reports whether the shard's most recent RPC succeeded.
	Healthy bool
	// RPCs, Failures, and Retries count RPC attempts against the shard,
	// RPCs that exhausted every retry, and individual retry attempts.
	RPCs     int64
	Failures int64
	Retries  int64
	// BytesSent and BytesRecv count wire traffic to and from the shard.
	BytesSent int64
	BytesRecv int64
	// LastError is the most recent RPC error message (empty when none).
	LastError string
}

// ClusterStats is a snapshot of a clustered engine's scatter-gather
// activity.
type ClusterStats struct {
	// Batches counts scatter-gather round trips.
	Batches int64
	// MergeNanos is the cumulative time spent merging gathered counts.
	MergeNanos int64
	// Shards holds one entry per configured peer.
	Shards []ClusterShardStatus
}

// ClusterStats returns per-shard coordinator statistics, or nil when the
// engine is not clustered.
func (e *Engine) ClusterStats() *ClusterStats {
	if e.coord == nil {
		return nil
	}
	cs := e.coord.Stats()
	out := &ClusterStats{Batches: cs.Batches, MergeNanos: cs.MergeNanos}
	for _, s := range cs.Shards {
		out.Shards = append(out.Shards, ClusterShardStatus{
			Addr:      s.Addr,
			Healthy:   s.Healthy,
			RPCs:      s.RPCs,
			Failures:  s.Failures,
			Retries:   s.Retries,
			BytesSent: s.BytesSent,
			BytesRecv: s.BytesRecv,
			LastError: s.LastError,
		})
	}
	return out
}

// PingCluster round-trips every shard once, returning the first typed
// failure as a *ClusterError. It is a no-op on a non-clustered engine.
// pdbserve calls it at boot so a bad -peers list fails fast.
func (e *Engine) PingCluster(ctx context.Context) error {
	if e.coord == nil {
		return nil
	}
	return translateClusterError(e.coord.Ping(ctx))
}

// Close releases the engine's external resources (pooled shard
// connections). It is a no-op on a non-clustered engine; an Engine
// without a cluster holds no goroutines or file handles.
func (e *Engine) Close() error {
	if e.coord == nil {
		return nil
	}
	return e.coord.Close()
}
