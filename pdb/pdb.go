package pdb

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/urel"
	"repro/internal/vars"
)

// DB is a probabilistic database: named relations (complete or
// U-relational) over one shared table of independent random variables.
// A DB is immutable once built — evaluation always works on a clone — and
// safe for concurrent use by any number of prepared queries.
type DB struct {
	udb *urel.Database
}

// Open loads a database of complete relations from files, one relation per
// entry of sources (name → path). Each file's format is detected by
// content: pdbstore columnar files (see docs/STORAGE.md) load through the
// storage layer, anything else parses as CSV — the first record is the
// header, fields are typed by parsing (int, float, bool, string; empty →
// NULL). A relation loads to bit-identical content from either format of
// the same data. Probabilistic data is introduced at query time with
// repairkey, or programmatically with NewBuilder.
func Open(sources map[string]string) (*DB, error) {
	b := NewBuilder()
	// Deterministic load order so databases built from equal sources are
	// identical (variable tables grow in registration order).
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if store.Sniff(sources[name]) {
			b.Store(name, sources[name])
			continue
		}
		f, err := os.Open(sources[name])
		if err != nil {
			return nil, fmt.Errorf("pdb: opening relation %q: %w", name, err)
		}
		b.CSV(name, f)
		f.Close()
	}
	return b.Build()
}

// Builder constructs a database programmatically. Methods chain and record
// the first error; Build returns it. The zero Builder is not usable — use
// NewBuilder.
type Builder struct {
	udb *urel.Database
	err error
}

// NewBuilder returns an empty database builder.
func NewBuilder() *Builder {
	return &Builder{udb: urel.NewDatabase()}
}

// fail records the builder's first error.
func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// claim reserves a relation name, failing on duplicates (which would
// otherwise collide in the shared variable table and panic deep inside
// the representation layer).
func (b *Builder) claim(name string) bool {
	if _, dup := b.udb.Rels[name]; dup {
		b.fail(fmt.Errorf("pdb: relation %q added twice", name))
		return false
	}
	return true
}

// Table adds a complete relation with the given columns; each row's values
// must be Go scalars (string, bool, int/int64, float64, or nil for NULL)
// matching the column count.
func (b *Builder) Table(name string, columns []string, rows ...[]any) *Builder {
	if b.err != nil || !b.claim(name) {
		return b
	}
	r := rel.NewRelation(rel.NewSchema(columns...))
	for _, row := range rows {
		t, err := toTuple(name, columns, row)
		if err != nil {
			return b.fail(err)
		}
		r.Add(t)
	}
	b.udb.AddComplete(name, r)
	return b
}

// CSV adds a complete relation read from CSV data (header row first).
func (b *Builder) CSV(name string, src io.Reader) *Builder {
	if b.err != nil || !b.claim(name) {
		return b
	}
	r, err := parser.LoadCSV(src)
	if err != nil {
		return b.fail(fmt.Errorf("pdb: loading relation %q: %w", name, err))
	}
	b.udb.AddComplete(name, r)
	return b
}

// Store adds a complete relation read from a pdbstore columnar file (the
// repository's typed on-disk format — see docs/STORAGE.md; produce files
// with `pdbcli convert`). Loading the pdbstore conversion of a CSV file
// yields content bit-identical to loading the CSV itself.
func (b *Builder) Store(name, path string) *Builder {
	if b.err != nil || !b.claim(name) {
		return b
	}
	r, err := store.ReadRelation(path, rel.NewInterner())
	if err != nil {
		return b.fail(fmt.Errorf("pdb: loading relation %q: %w", name, err))
	}
	b.udb.AddComplete(name, r)
	return b
}

// Independent adds a tuple-independent probabilistic relation: row i is
// present with probability probs[i], independently of every other row.
// Probabilities must lie in (0, 1]; a probability of exactly 1 makes the
// row certain.
func (b *Builder) Independent(name string, columns []string, rows [][]any, probs []float64) *Builder {
	if b.err != nil || !b.claim(name) {
		return b
	}
	if len(rows) != len(probs) {
		return b.fail(fmt.Errorf("pdb: relation %q has %d rows but %d probabilities", name, len(rows), len(probs)))
	}
	r := urel.NewRelation(rel.NewSchema(columns...))
	for i, row := range rows {
		t, err := toTuple(name, columns, row)
		if err != nil {
			return b.fail(err)
		}
		p := probs[i]
		if p <= 0 || p > 1 {
			return b.fail(fmt.Errorf("pdb: relation %q row %d: probability %v outside (0,1]", name, i, p))
		}
		if p == 1 {
			r.Add(nil, t)
			continue
		}
		v := b.udb.Vars.Add(fmt.Sprintf("%s_t%d", name, i), []float64{p, 1 - p}, []string{"in", "out"})
		r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), t)
	}
	b.udb.AddURelation(name, r, false)
	return b
}

// Alt is the set of alternatives of one uncertain attribute of one row:
// values with probabilities summing to 1. Use Certain for attributes
// without uncertainty.
type Alt struct {
	Values []any
	Probs  []float64

	// invalid carries a construction error from Choice, reported when the
	// Alt is used in a builder call.
	invalid error
}

// Certain wraps a single certain attribute value.
func Certain(v any) Alt { return Alt{Values: []any{v}, Probs: []float64{1}} }

// Choice builds an Alt from alternating value, probability pairs:
// Choice("NYC", 0.8, "Newark", 0.2). Probabilities must be float64 and
// the pair list must be even; malformed calls are reported as an error by
// the Build that consumes the Alt.
func Choice(pairs ...any) Alt {
	a := Alt{}
	if len(pairs)%2 != 0 {
		a.invalid = fmt.Errorf("Choice needs value, probability pairs; got %d arguments", len(pairs))
		return a
	}
	for i := 0; i < len(pairs); i += 2 {
		p, ok := pairs[i+1].(float64)
		if !ok {
			a.invalid = fmt.Errorf("Choice probability for value %v is %T, want float64", pairs[i], pairs[i+1])
			return a
		}
		a.Values = append(a.Values, pairs[i])
		a.Probs = append(a.Probs, p)
	}
	return a
}

// AttributeUncertain adds a relation with attribute-level uncertainty via
// the paper's vertical decomposition (Section 3): each row gives one Alt
// per column, attributes vary independently, and the stored size is linear
// in the number of alternatives while the represented relation is their
// cartesian product.
func (b *Builder) AttributeUncertain(name string, columns []string, rows ...[]Alt) *Builder {
	if b.err != nil || !b.claim(name) {
		return b
	}
	schema := rel.NewSchema(columns...)
	conv := make([][]urel.AttrAlternatives, len(rows))
	for i, row := range rows {
		if len(row) != len(columns) {
			return b.fail(fmt.Errorf("pdb: relation %q row %d has %d attributes, want %d", name, i, len(row), len(columns)))
		}
		conv[i] = make([]urel.AttrAlternatives, len(row))
		for j, alt := range row {
			where := fmt.Sprintf("pdb: relation %q row %d column %q", name, i, columns[j])
			if alt.invalid != nil {
				return b.fail(fmt.Errorf("%s: %w", where, alt.invalid))
			}
			if len(alt.Values) == 0 || len(alt.Values) != len(alt.Probs) {
				return b.fail(fmt.Errorf("%s: %d values with %d probabilities", where, len(alt.Values), len(alt.Probs)))
			}
			aa := urel.AttrAlternatives{Probs: alt.Probs}
			for _, v := range alt.Values {
				rv, err := toValue(v)
				if err != nil {
					return b.fail(fmt.Errorf("%s: %w", where, err))
				}
				aa.Values = append(aa.Values, rv)
			}
			sum := 0.0
			for _, p := range alt.Probs {
				if p <= 0 || p > 1 {
					return b.fail(fmt.Errorf("%s: probability %v outside (0,1]", where, p))
				}
				sum += p
			}
			// The variable table renormalizes within ±1e-9 and panics
			// beyond; reject anything off 1 here with a caller-level error.
			if sum < 1-1e-9 || sum > 1+1e-9 {
				return b.fail(fmt.Errorf("%s: probabilities sum to %v, want 1", where, sum))
			}
			conv[i][j] = aa
		}
	}
	vd, err := urel.BuildAttributeUncertainty(b.udb.Vars, schema, conv, "TID_"+name, name)
	if err != nil {
		return b.fail(fmt.Errorf("pdb: relation %q: %w", name, err))
	}
	b.udb.AddURelation(name, vd.Joined(), false)
	return b
}

// Build finalizes the database, returning the first error any builder call
// recorded.
func (b *Builder) Build() (*DB, error) {
	if b.err != nil {
		return nil, b.err
	}
	return &DB{udb: b.udb}, nil
}

// Relations returns the database's relation names, sorted.
func (db *DB) Relations() []string {
	names := make([]string, 0, len(db.udb.Rels))
	for n := range db.udb.Rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumTuples returns the number of stored (condition, tuple) pairs of the
// named relation, or 0 if it does not exist. For probabilistic relations
// this is the size of the succinct U-relational representation, not the
// number of possible worlds.
func (db *DB) NumTuples(name string) int {
	if r, ok := db.udb.Rels[name]; ok {
		return r.Len()
	}
	return 0
}

// toTuple converts one row of Go scalars.
func toTuple(name string, columns []string, row []any) (rel.Tuple, error) {
	if len(row) != len(columns) {
		return nil, fmt.Errorf("pdb: relation %q row %v has %d values, want %d", name, row, len(row), len(columns))
	}
	t := make(rel.Tuple, len(row))
	for i, v := range row {
		rv, err := toValue(v)
		if err != nil {
			return nil, fmt.Errorf("pdb: relation %q column %q: %w", name, columns[i], err)
		}
		t[i] = rv
	}
	return t, nil
}

// toValue converts a Go scalar to an engine value.
func toValue(v any) (rel.Value, error) {
	switch x := v.(type) {
	case nil:
		return rel.Null(), nil
	case bool:
		return rel.Bool(x), nil
	case int:
		return rel.Int(int64(x)), nil
	case int64:
		return rel.Int(x), nil
	case float64:
		return rel.Float(x), nil
	case string:
		return rel.String(x), nil
	default:
		return rel.Value{}, fmt.Errorf("unsupported value %v of type %T (want string, bool, int, int64, float64, or nil)", v, v)
	}
}
