package pdb

import (
	"context"
	"math"
	"testing"
)

// Spec scenarios for stratified estimation and its effort knobs, written
// SHALL / WHEN / THEN against the public API. The fixture is built so the
// conf lineages form one hard connected component per output tuple
// (clauses share variables through the product), keeping the factoring
// pre-pass from collapsing everything to exact arithmetic: the scenarios
// genuinely exercise the sampling path.

// skewDB builds two independent relations whose product has strongly
// skewed clause weights — the shape stratification exists for. Grp splits
// R's rows into three groups of two, so conf over Grp yields three tuples
// with well-separated probabilities, each backed by one connected
// 12-clause component (too large for the exact-factoring limits).
func skewDB(t *testing.T) *DB {
	t.Helper()
	probsR := []float64{0.9, 0.6, 0.05, 0.02, 0.002, 0.0005}
	rowsR := make([][]any, len(probsR))
	for i := range probsR {
		rowsR[i] = []any{int64(i), int64(i / 2)}
	}
	db, err := NewBuilder().
		Independent("R", []string{"ID", "Grp"}, rowsR, probsR).
		Independent("S", []string{"SID"},
			[][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}, {int64(5)}, {int64(6)}},
			[]float64{0.8, 0.3, 0.04, 0.01, 0.002, 0.001}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// exactByGrp evaluates the program exactly and returns Grp → P.
func exactByGrp(t *testing.T, db *DB, program string) map[int64]float64 {
	t.Helper()
	q, err := db.Prepare(program)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvalExact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64]float64{}
	for row := range res.Rows() {
		out[row.Int("Grp")] = row.Float("P")
	}
	return out
}

const grpConfProgram = `conf(project[Grp](product(R, S)))`

// SHALL: conf under WithStrata meets its (ε, δ) budget on skewed-weight
// lineage, reports stratification statistics, and stays deterministic.
// WHEN a conf query over a hard multi-clause lineage runs with
// stratification enabled. THEN every estimate is within the relative ε
// of the exact probability, Stats exposes strata and sampling work, and
// repeated/worker-varied evaluations are bit-identical.
func TestScenarioStratifiedConfAccuracy(t *testing.T) {
	db := skewDB(t)
	want := exactByGrp(t, db, grpConfProgram)
	q, err := db.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithStrata(8), WithConfBudget(0.05, 0.05), WithSeed(11)}
	res, err := q.Eval(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(want) {
		t.Fatalf("got %d rows, want %d", res.Len(), len(want))
	}
	for row := range res.Rows() {
		g, p := row.Int("Grp"), row.Float("P")
		if w := want[g]; math.Abs(p-w) > 0.1*w {
			t.Errorf("conf(Grp=%d) = %v, want %v ± 10%%", g, p, w)
		}
	}
	st := res.Stats()
	if st.Strata == 0 {
		t.Error("stratified evaluation should report Stats.Strata > 0")
	}
	if st.SampledTrials == 0 {
		t.Error("stratified evaluation should have sampled trials")
	}
	base := fingerprint(res)
	for _, workers := range []int{1, 4, 8} {
		again, err := q.Eval(context.Background(), append(opts, WithWorkers(workers))...)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(again) != base {
			t.Errorf("stratified result differs with %d workers", workers)
		}
	}
}

// SHALL: WithThreshold is an effort knob, not a filter. WHEN a conf
// query runs with a threshold between the groups' probabilities. THEN
// the result still contains every tuple, every estimate lands on the
// correct side of the threshold, sampling effort does not exceed the
// plain stratified run's, and at least one task stops early.
func TestScenarioThresholdEffortKnob(t *testing.T) {
	db := skewDB(t)
	want := exactByGrp(t, db, grpConfProgram)
	q, err := db.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	full, err := q.Eval(context.Background(), WithStrata(4), WithConfBudget(0.02, 0.02), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const tau = 0.5
	res, err := q.Eval(context.Background(), WithStrata(4), WithConfBudget(0.02, 0.02), WithSeed(5), WithThreshold(tau))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(want) {
		t.Fatalf("threshold filtered the result: got %d rows, want %d", res.Len(), len(want))
	}
	for row := range res.Rows() {
		g, p := row.Int("Grp"), row.Float("P")
		if w := want[g]; math.Abs(w-tau) > 0.1 && (p > tau) != (w > tau) {
			t.Errorf("Grp=%d: estimate %v on wrong side of τ=%v (exact %v)", g, p, tau, w)
		}
	}
	if got, fullT := res.Stats().SampledTrials, full.Stats().SampledTrials; got > fullT {
		t.Errorf("threshold run sampled %d trials, more than the full run's %d", got, fullT)
	}
	if res.Stats().EarlyStops == 0 {
		t.Error("well-separated threshold query should settle at least one task early")
	}
}

// SHALL: WithTopK settles ranking membership early without dropping
// rows. WHEN a conf query runs with k = 1 over groups with separated
// probabilities. THEN all tuples are still emitted and the estimated
// top-1 tuple is the exact top-1 tuple.
func TestScenarioTopKEffortKnob(t *testing.T) {
	db := skewDB(t)
	want := exactByGrp(t, db, grpConfProgram)
	q, err := db.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), WithTopK(1), WithConfBudget(0.05, 0.05), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(want) {
		t.Fatalf("top-k filtered the result: got %d rows, want %d", res.Len(), len(want))
	}
	var bestGrp int64
	best := -1.0
	for row := range res.Rows() {
		if p := row.Float("P"); p > best {
			best, bestGrp = p, row.Int("Grp")
		}
	}
	var wantGrp int64
	bestW := -1.0
	for g, w := range want {
		if w > bestW {
			bestW, wantGrp = w, g
		}
	}
	if bestGrp != wantGrp {
		t.Errorf("estimated top-1 is Grp=%d, exact top-1 is Grp=%d", bestGrp, wantGrp)
	}
}

// SHALL: stratified σ̂ selection decides predicates like the flat path.
// WHEN an aselect over conf arguments runs with stratification. THEN
// the emitted tuple set matches the exact evaluation's and repeated runs
// are deterministic.
func TestScenarioStratifiedSelect(t *testing.T) {
	db := skewDB(t)
	const program = `aselect[p1 >= 0.3 over conf[Grp]](project[Grp](product(R, S)))`
	q, err := db.Prepare(program)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := q.EvalExact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), WithStrata(4), WithSeed(9), WithEpsilon(0.02), WithDelta(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != exact.Len() {
		t.Errorf("stratified σ̂ emitted %d tuples, exact emits %d", res.Len(), exact.Len())
	}
	again, err := q.Eval(context.Background(), WithStrata(4), WithSeed(9), WithEpsilon(0.02), WithDelta(0.02), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(again) != fingerprint(res) {
		t.Error("stratified σ̂ is not deterministic across runs/workers")
	}
}

// SHALL: the stratified options validate their domains. WHEN out-of-range
// values are supplied. THEN evaluation fails with a typed *OptionError
// before any work happens.
func TestScenarioStratifiedOptionValidation(t *testing.T) {
	db := skewDB(t)
	q, err := db.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]Option{
		"WithStrata zero":        WithStrata(0),
		"WithStrata huge":        WithStrata(5000),
		"WithThreshold zero":     WithThreshold(0),
		"WithThreshold one":      WithThreshold(1),
		"WithThreshold negative": WithThreshold(-0.2),
		"WithTopK zero":          WithTopK(0),
		"WithTopK negative":      WithTopK(-3),
	} {
		if _, err := q.Eval(context.Background(), opt); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// SHALL: stratified σ̂ budgets are allocated variance-aware in doubling
// waves — each wave's per-stratum split decided on the merged counts so
// far — and the trajectory is a pure function of the seed.
// WHEN the same stratified aselect runs with 1, 4, and 8 workers. THEN
// every run's rows are bit-identical, and the decisions match the exact
// evaluation.
func TestScenarioSigmaHatVarianceAwareWorkerParity(t *testing.T) {
	db := skewDB(t)
	const program = `aselect[p1 >= 0.3 over conf[Grp]](project[Grp](product(R, S)))`
	q, err := db.Prepare(program)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := q.EvalExact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, workers := range []int{1, 4, 8} {
		res, err := q.Eval(context.Background(),
			WithStrata(4), WithSeed(11), WithEpsilon(0.02), WithDelta(0.02),
			WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != exact.Len() {
			t.Errorf("workers=%d: σ̂ emitted %d tuples, exact emits %d", workers, res.Len(), exact.Len())
		}
		got := fingerprint(res)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: rows diverge from workers=1 run", workers)
		}
	}
}
