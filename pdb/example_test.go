package pdb_test

import (
	"context"
	"fmt"
	"log"

	"repro/pdb"
)

// Example runs the paper's Example 2.2 end to end on the public API: build
// a probabilistic database of coins with repair-key, condition on two
// observed heads, and read the posterior off a prepared query — exactly
// and approximately.
func Example() {
	db, err := pdb.NewBuilder().
		Table("Coins", []string{"CoinType", "Count"},
			[]any{"fair", 2},
			[]any{"2headed", 1}).
		Table("Faces", []string{"CoinType", "Face", "FProb"},
			[]any{"fair", "H", 0.5},
			[]any{"fair", "T", 0.5},
			[]any{"2headed", "H", 1.0}).
		Table("Tosses", []string{"Toss"}, []any{1}, []any{2}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	q, err := db.Prepare(`
		R := project[CoinType](repairkey[@Count](Coins));
		S := project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)));
		T := join(join(R, project[CoinType](select[Toss = 1 and Face = 'H'](S))),
		          project[CoinType](select[Toss = 2 and Face = 'H'](S)));
		project[CoinType, P1/P2 as P](product(conf as P1 (T), conf as P2 (project[](T))));
	`)
	if err != nil {
		log.Fatal(err)
	}

	exact, err := q.EvalExact(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for row := range exact.Rows() {
		fmt.Printf("exact  %-8s %.4f\n", row.Str("CoinType"), row.Float("P"))
	}

	approx, err := q.Eval(context.Background(),
		pdb.WithConfBudget(0.005, 0.01), pdb.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	for row := range approx.Rows() {
		fmt.Printf("approx %-8s %.2f\n", row.Str("CoinType"), row.Float("P"))
	}

	// Output:
	// exact  2headed  0.6667
	// exact  fair     0.3333
	// approx 2headed  0.67
	// approx fair     0.33
}

// ExampleQuery_Eval evaluates an approximate selection (σ̂) with validated
// options and reads per-row error bounds off the result.
func ExampleQuery_Eval() {
	db, err := pdb.NewBuilder().
		Independent("Readings", []string{"Sensor"},
			[][]any{{"s1"}, {"s2"}, {"s3"}},
			[]float64{0.9, 0.6, 0.2}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Sensors that are live with probability at least 0.5, decided on
	// Karp–Luby estimates with per-tuple error bounds.
	q, err := db.Prepare(`aselect[p1 >= 0.5 over conf[Sensor]](Readings)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Eval(context.Background(),
		pdb.WithEpsilon(0.05), pdb.WithDelta(0.01), pdb.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	for row := range res.Rows() {
		fmt.Printf("%s live with P̂ = %.2f (err ≤ %.3g)\n",
			row.Str("Sensor"), row.Float("P1"), row.ErrorBound())
	}

	// Output:
	// s1 live with P̂ = 0.90 (err ≤ 0)
	// s2 live with P̂ = 0.60 (err ≤ 0)
}

// ExampleOptionError shows the typed rejection of invalid options.
func ExampleOptionError() {
	db, err := pdb.NewBuilder().
		Table("R", []string{"A"}, []any{1}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	q, err := db.Prepare(`conf(R)`)
	if err != nil {
		log.Fatal(err)
	}
	_, err = q.Eval(context.Background(), pdb.WithDelta(2))
	fmt.Println(err)

	// Output:
	// pdb: WithDelta(2): δ must be in (0,1)
}
