package pdb_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/pdb"
)

// engineDB builds a tuple-independent database with multi-clause lineage
// after projection: Obs(Sensor, Reading) rows collapse per sensor, so each
// sensor's confidence needs the Karp–Luby estimator.
func engineDB(t *testing.T) *pdb.DB {
	t.Helper()
	rows := [][]any{}
	probs := []float64{}
	for s := 0; s < 4; s++ {
		for r := 0; r < 4; r++ {
			rows = append(rows, []any{fmt.Sprintf("s%d", s), r})
			probs = append(probs, 0.3)
		}
	}
	db, err := pdb.NewBuilder().
		Independent("Obs", []string{"Sensor", "Reading"}, rows, probs).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const sensorConfProgram = `conf as P (project[Sensor](Obs));`

// fingerprintRows captures a result's rows with exact float bit patterns.
func fingerprintRows(res *pdb.Result) []string {
	var out []string
	for row := range res.Rows() {
		out = append(out, fmt.Sprintf("%s|%x|%x|%v",
			row.Str("Sensor"), math.Float64bits(row.Float("P")),
			math.Float64bits(row.ErrorBound()), row.Singular()))
	}
	return out
}

// TestEngineCrossQueryReuse is the public-API acceptance contract: a
// repeated identical query against one pdb.Engine reports ReusedTrials
// and CacheHits > 0 while its rows stay bit-identical to a cold run, for
// workers 1, 4, and 8; and a *different* program with the same lineage
// content hits the same cache entries.
func TestEngineCrossQueryReuse(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4, 8} {
		db := engineDB(t)
		opts := []pdb.Option{pdb.WithSeed(9), pdb.WithWorkers(workers), pdb.WithConfBudget(0.05, 0.05)}

		coldQ, err := db.Prepare(sensorConfProgram)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := coldQ.Eval(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}

		eng, err := db.Engine()
		if err != nil {
			t.Fatal(err)
		}
		q, err := eng.Prepare(sensorConfProgram)
		if err != nil {
			t.Fatal(err)
		}
		first, err := q.Eval(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		second, err := q.Eval(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if second.Stats().ReusedTrials == 0 || second.Stats().CacheHits == 0 {
			t.Errorf("workers=%d: repeated query reused=%d hits=%d, want both > 0",
				workers, second.Stats().ReusedTrials, second.Stats().CacheHits)
		}
		if second.Stats().SampledTrials != 0 {
			t.Errorf("workers=%d: repeated fixed-budget query sampled %d trials, want 0 (exact replay)",
				workers, second.Stats().SampledTrials)
		}
		want := fingerprintRows(cold)
		for name, res := range map[string]*pdb.Result{"warm-1st": first, "warm-2nd": second} {
			got := fingerprintRows(res)
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: %d rows, want %d", workers, name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("workers=%d %s row %d: %s != cold %s", workers, name, i, got[i], want[i])
				}
			}
		}

		// A differently-written program with the same lineage content
		// (redundant selection that keeps every row) shares the cache.
		q2, err := eng.Prepare(`conf as P (project[Sensor](select[Reading >= 0](Obs)));`)
		if err != nil {
			t.Fatal(err)
		}
		other, err := q2.Eval(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if other.Stats().CacheHits == 0 || other.Stats().SampledTrials != 0 {
			t.Errorf("workers=%d: lineage-sharing query hits=%d sampled=%d, want hits>0 sampled=0",
				workers, other.Stats().CacheHits, other.Stats().SampledTrials)
		}
		got := fingerprintRows(other)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d cross-query row %d: %s != cold %s", workers, i, got[i], want[i])
			}
		}

		// Engine statistics aggregate across all of the above.
		es := eng.Stats()
		if es.Evals != 3 || es.CacheHits == 0 || es.ReusedTrials == 0 {
			t.Errorf("workers=%d: engine stats %+v, want 3 evals with hits and reuse", workers, es)
		}
	}
}

// TestEngineOptionValidation covers the engine constructor's option
// errors.
func TestEngineOptionValidation(t *testing.T) {
	db := engineDB(t)
	if _, err := db.Engine(pdb.WithEngineCacheSize(0)); err == nil {
		t.Error("WithEngineCacheSize(0) accepted")
	} else {
		var oe *pdb.OptionError
		if !errors.As(err, &oe) || oe.Option != "WithEngineCacheSize" {
			t.Errorf("unexpected error %v", err)
		}
	}
	if _, err := db.Engine(pdb.WithEngineCacheSize(16)); err != nil {
		t.Errorf("valid cache size rejected: %v", err)
	}
}

// TestLimitErrors covers the typed limit failures end to end through the
// public API: trial and memory limits abort with *pdb.LimitError naming
// the resource, invalid limit values are rejected up front, and a
// limit-aborted engine keeps serving.
func TestLimitErrors(t *testing.T) {
	ctx := context.Background()
	db := engineDB(t)
	eng, err := db.Engine()
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.Prepare(sensorConfProgram)
	if err != nil {
		t.Fatal(err)
	}

	_, err = q.Eval(ctx, pdb.WithMaxTrials(100), pdb.WithConfBudget(0.01, 0.01))
	var le *pdb.LimitError
	if !errors.As(err, &le) || le.Resource != "trials" {
		t.Fatalf("tight trial limit: err=%v, want *LimitError{trials}", err)
	}
	if le.Limit != 100 || le.Used <= le.Limit {
		t.Errorf("trial limit error fields: %+v", le)
	}

	big, err := db.Prepare(`conf as P (product(project[Sensor as A](Obs), project[Sensor as B, Reading](Obs)));`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = big.Eval(ctx, pdb.WithMaxMemory(2048))
	if !errors.As(err, &le) || le.Resource != "memory" {
		t.Fatalf("tight memory limit: err=%v, want *LimitError{memory}", err)
	}

	// The memory limit guards the exact path too (a service must not be
	// OOM-able through {"exact": true}).
	_, err = big.EvalExact(ctx, pdb.WithMaxMemory(2048))
	if !errors.As(err, &le) || le.Resource != "memory" {
		t.Fatalf("exact-path memory limit: err=%v, want *LimitError{memory}", err)
	}
	if res, err := big.EvalExact(ctx, pdb.WithMaxMemory(1<<30)); err != nil || res.Len() == 0 {
		t.Fatalf("generous exact-path memory limit: res=%v err=%v", res, err)
	}

	for _, bad := range []pdb.Option{pdb.WithMaxTrials(0), pdb.WithMaxTrials(-1), pdb.WithMaxMemory(0), pdb.WithMaxMemory(-5)} {
		var oe *pdb.OptionError
		if _, err := q.Eval(ctx, bad); !errors.As(err, &oe) {
			t.Errorf("invalid limit option accepted: %v", err)
		}
	}

	// The engine survives aborted evaluations.
	res, err := q.Eval(ctx, pdb.WithSeed(3))
	if err != nil || res.Len() == 0 {
		t.Fatalf("post-abort eval: res=%v err=%v", res, err)
	}
}

// TestEngineConcurrentEvalRace hammers one Engine from many goroutines —
// the shape a network front-end produces — mixing identical and
// lineage-sharing queries. Run under -race this vets the shared cache's
// locking end to end; results must also all agree bit-for-bit with a cold
// run.
func TestEngineConcurrentEvalRace(t *testing.T) {
	ctx := context.Background()
	db := engineDB(t)
	opts := []pdb.Option{pdb.WithSeed(5), pdb.WithWorkers(4)}

	coldQ, err := db.Prepare(sensorConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldQ.Eval(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintRows(cold)

	eng, err := db.Engine(pdb.WithEngineCacheSize(64))
	if err != nil {
		t.Fatal(err)
	}
	programs := []string{
		sensorConfProgram,
		`conf as P (project[Sensor](select[Reading >= 0](Obs)));`,
	}
	const goroutines, iters = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q, err := eng.Prepare(programs[(g+i)%len(programs)])
				if err != nil {
					errs <- err
					return
				}
				res, err := q.Eval(ctx, opts...)
				if err != nil {
					errs <- err
					return
				}
				got := fingerprintRows(res)
				if len(got) != len(want) {
					errs <- fmt.Errorf("goroutine %d iter %d: %d rows, want %d", g, i, len(got), len(want))
					return
				}
				for j := range got {
					if got[j] != want[j] {
						errs <- fmt.Errorf("goroutine %d iter %d row %d: %s != %s", g, i, j, got[j], want[j])
						return
					}
				}
				_ = eng.Stats()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if es := eng.Stats(); es.Evals != goroutines*iters || es.CacheHits == 0 {
		t.Errorf("engine stats after hammer: %+v", es)
	}
}

// TestEngineOperabilityStats covers the stats a service exports for
// operations: the in-flight gauge (observed mid-evaluation through the
// progress hook), the cache capacity, and the limit-trip counter.
func TestEngineOperabilityStats(t *testing.T) {
	db := engineDB(t)
	eng, err := db.Engine(pdb.WithEngineCacheSize(128))
	if err != nil {
		t.Fatal(err)
	}
	if es := eng.Stats(); es.CacheCapacity != 128 || es.InFlight != 0 || es.LimitTrips != 0 {
		t.Fatalf("fresh engine stats: %+v", es)
	}
	q, err := eng.Prepare(sensorConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	var during int64
	_, err = q.Eval(context.Background(), pdb.WithSeed(5),
		pdb.WithProgress(func(pdb.ProgressEvent) { during = eng.Stats().InFlight }))
	if err != nil {
		t.Fatal(err)
	}
	if during != 1 {
		t.Errorf("InFlight during evaluation = %d, want 1", during)
	}
	if es := eng.Stats(); es.InFlight != 0 {
		t.Errorf("InFlight after evaluation = %d, want 0", es.InFlight)
	}

	// A limit abort increments LimitTrips and surfaces as *LimitError.
	_, err = q.Eval(context.Background(), pdb.WithSeed(6),
		pdb.WithMaxTrials(10), pdb.WithConfBudget(0.01, 0.01))
	var le *pdb.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("expected LimitError, got %v", err)
	}
	if es := eng.Stats(); es.LimitTrips != 1 || es.InFlight != 0 {
		t.Errorf("stats after limit trip: %+v", es)
	}
}
