package pdb

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/parser"
)

// Query is a prepared UA query: parsed, statically validated, and
// schema-checked against its database once, then evaluable many times.
// A Query is immutable and safe for concurrent use.
type Query struct {
	db   *DB
	plan algebra.Query
	src  string
	// eng, when non-nil, is the long-lived Engine the query was prepared
	// on: Eval resumes estimator state from its cross-query cache.
	eng *Engine
}

// Prepare parses a UA program (zero or more `Name := query;` bindings and
// a final query), validates it, and infers its schema against the
// database, so malformed programs fail here rather than mid-evaluation.
func (db *DB) Prepare(src string) (*Query, error) {
	plan, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("pdb: %w", err)
	}
	if err := algebra.Validate(plan); err != nil {
		return nil, fmt.Errorf("pdb: %w", err)
	}
	if _, err := algebra.InferSchema(plan, db.udb); err != nil {
		return nil, fmt.Errorf("pdb: %w", err)
	}
	return &Query{db: db, plan: plan, src: src}, nil
}

// Text returns the source text the query was prepared from.
func (q *Query) Text() string { return q.src }

// Explain renders the query plan with inferred schemas, without
// evaluating.
func (q *Query) Explain() string { return algebra.Explain(q.plan, q.db.udb) }

// Eval evaluates the query approximately with per-tuple error bounds
// (Theorem 6.7): confidence computations use the Karp–Luby FPRAS and σ̂
// predicates are decided on estimates, with the round budget doubled until
// every non-singular bound is below δ. Options configure accuracy, seed,
// parallelism, and observability; invalid options are rejected with a
// typed *OptionError before any work starts.
//
// Cancelling ctx aborts the evaluation cooperatively — between plan
// operators, doubling restarts, and estimation chunks — and returns
// ctx.Err(). A cancelled evaluation leaves no goroutines behind, and a
// later Eval on the same Query is bit-identical to one on a fresh
// database.
//
// A query prepared through Engine.Prepare evaluates against the engine's
// persistent content-keyed estimator cache: repeated or lineage-sharing
// evaluations resume sampled trials (visible as Stats.ReusedTrials /
// Stats.CacheHits) with results bit-identical to a cold run. Resource
// limits (WithMaxTrials, WithMaxMemory) abort the evaluation with a
// typed *LimitError.
func (q *Query) Eval(ctx context.Context, opts ...Option) (*Result, error) {
	copts, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	eng := core.NewEngine(q.db.udb, copts)
	if q.eng != nil {
		eng.SetCache(q.eng.cache)
		if q.eng.coord != nil {
			// Clustered engine: sampling scatters to the shard peers; the
			// trajectory — and every output bit — matches local execution.
			eng.SetDistributor(q.eng.coord)
		}
		defer q.eng.beginEval()()
	}
	res, err := eng.EvalApproxContext(ctx, q.plan)
	if err != nil {
		err = translateClusterError(translateLimitError(err))
		if q.eng != nil {
			q.eng.recordFailure(err)
		}
		return nil, err
	}
	out := newApproxResult(res)
	if q.eng != nil {
		q.eng.record(out.stats)
	}
	return out, nil
}

// EvalExact evaluates the query with exact confidence computation (#P in
// general — use Eval for large lineages). The context is checked between
// plan operators.
//
// Exact evaluation honours WithWorkers — partitioned operators, exact
// per-tuple confidence computations, and independent plan branches run
// across the worker pool, with results bit-identical for any worker
// count — and reports per-operator work in Result.Stats().Ops. It also
// honours WithMaxMemory (a tripped budget aborts with a typed
// *LimitError, exactly like Eval). Accuracy and sampling options (ε, δ,
// seed, rounds, resume, WithMaxTrials — exact evaluation samples
// nothing) do not apply to the exact path and are validated but
// otherwise ignored.
func (q *Query) EvalExact(ctx context.Context, opts ...Option) (*Result, error) {
	copts, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if q.eng != nil {
		defer q.eng.beginEval()()
	}
	res, err := core.NewEngine(q.db.udb, copts).EvalExactContext(ctx, q.plan)
	if err != nil {
		err = translateLimitError(err)
		if q.eng != nil {
			q.eng.recordFailure(err)
		}
		return nil, err
	}
	return newExactResult(res), nil
}

// translateLimitError maps the engine's limit error to the public typed
// *LimitError; any other error passes through unchanged.
func translateLimitError(err error) error {
	var le *core.LimitError
	if errors.As(err, &le) {
		return &LimitError{Resource: le.Resource, Limit: le.Limit, Used: le.Used}
	}
	return err
}
