package pdb

import (
	"fmt"

	"repro/internal/core"
)

// LimitError reports an evaluation aborted because it exceeded one of its
// per-query resource limits (WithMaxTrials / WithMaxMemory). Enforcement
// is cooperative — between operators and between estimation chunks — so
// Used may exceed Limit by one scheduling granule. An aborted evaluation
// leaves engines, caches, and queries fully usable.
type LimitError struct {
	// Resource names the exhausted limit: "trials" or "memory".
	Resource string
	// Limit is the configured bound; Used is the consumption observed
	// when the limit tripped (sampled trials, or estimated bytes).
	Limit int64
	Used  int64
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	return fmt.Sprintf("pdb: %s limit exceeded: %d > %d", e.Resource, e.Used, e.Limit)
}

// OptionError reports an evaluation option that was rejected at
// construction, before any evaluation work started.
type OptionError struct {
	// Option is the name of the offending option, e.g. "WithEpsilon".
	Option string
	// Value renders the rejected value.
	Value string
	// Reason says what a valid value looks like.
	Reason string
}

// Error implements the error interface.
func (e *OptionError) Error() string {
	return fmt.Sprintf("pdb: %s(%s): %s", e.Option, e.Value, e.Reason)
}

// Option configures one evaluation. Options are validated when applied (at
// the start of Eval); invalid settings surface as a *OptionError.
type Option struct {
	apply func(*core.Options) error
}

func optionErr(option string, value any, reason string) error {
	return &OptionError{Option: option, Value: fmt.Sprint(value), Reason: reason}
}

// WithEpsilon sets ε₀, the smallest relative half-width the σ̂ predicate
// approximation aims for (points closer than ε₀ to a decision boundary are
// treated as singularities). Must lie in (0, 1). Default 0.05.
func WithEpsilon(eps float64) Option {
	return Option{func(o *core.Options) error {
		if eps <= 0 || eps >= 1 {
			return optionErr("WithEpsilon", eps, "ε₀ must be in (0,1)")
		}
		o.Eps0 = eps
		return nil
	}}
}

// WithDelta sets δ, the target per-tuple error probability the doubling
// loop drives every non-singular bound below. Must lie in (0, 1).
// Default 0.05.
func WithDelta(delta float64) Option {
	return Option{func(o *core.Options) error {
		if delta <= 0 || delta >= 1 {
			return optionErr("WithDelta", delta, "δ must be in (0,1)")
		}
		o.Delta = delta
		return nil
	}}
}

// WithConfBudget sets the (ε, δ) accuracy of standalone conf operators
// (Corollary 4.3): the estimated probability is within relative error ε
// with probability at least 1−δ, per tuple. Both must lie in (0, 1). They
// default to the WithEpsilon / WithDelta values.
func WithConfBudget(eps, delta float64) Option {
	return Option{func(o *core.Options) error {
		if eps <= 0 || eps >= 1 {
			return optionErr("WithConfBudget", eps, "conf ε must be in (0,1)")
		}
		if delta <= 0 || delta >= 1 {
			return optionErr("WithConfBudget", delta, "conf δ must be in (0,1)")
		}
		o.ConfEps, o.ConfDelta = eps, delta
		return nil
	}}
}

// WithInitialRounds sets the starting round budget l of the doubling loop.
// Must be positive. Default 1.
func WithInitialRounds(l int64) Option {
	return Option{func(o *core.Options) error {
		if l <= 0 {
			return optionErr("WithInitialRounds", l, "initial rounds must be positive")
		}
		o.InitialRounds = l
		return nil
	}}
}

// WithMaxRounds caps the round budget. Must be positive; when unset the
// engine derives the Theorem 6.7 bound l₀ from the query and database, so
// termination in polynomial time is guaranteed either way.
func WithMaxRounds(l int64) Option {
	return Option{func(o *core.Options) error {
		if l <= 0 {
			return optionErr("WithMaxRounds", l, "round cap must be positive")
		}
		o.MaxRounds = l
		return nil
	}}
}

// WithSeed seeds the engine's deterministic random source. Equal seeds
// give bit-identical results for any worker count. Default 1.
func WithSeed(seed int64) Option {
	return Option{func(o *core.Options) error {
		o.Seed = seed
		return nil
	}}
}

// WithWorkers sets the number of goroutines estimation fans out across;
// 0 selects GOMAXPROCS. Must not be negative. Results are independent of
// the value — it only changes wall-clock time.
func WithWorkers(n int) Option {
	return Option{func(o *core.Options) error {
		if n < 0 {
			return optionErr("WithWorkers", n, "worker count must not be negative")
		}
		o.Workers = n
		return nil
	}}
}

// WithMaxTrials caps the number of Karp–Luby trials one evaluation may
// sample, cumulatively across every pass of the doubling loop. Exceeding
// the cap aborts the evaluation with a typed *LimitError. Must be
// positive; trials resumed from cached estimator state are free, and the
// cap does not apply to EvalExact (exact evaluation samples nothing —
// bound it with WithMaxMemory and the context deadline instead).
// Default: unlimited.
func WithMaxTrials(n int64) Option {
	return Option{func(o *core.Options) error {
		if n <= 0 {
			return optionErr("WithMaxTrials", n, "trial limit must be positive")
		}
		o.MaxTrials = n
		return nil
	}}
}

// WithMaxMemory caps the evaluation's estimated working-set growth: the
// running bytes estimate the engine keeps for materialized operator
// outputs (the same estimate Stats.Ops reports, cumulative across
// evaluation passes — not an allocator measurement). Exceeding the cap
// aborts the evaluation with a typed *LimitError; the partitioned
// operators stop producing mid-range once it trips. Applies to Eval and
// EvalExact alike. Must be positive. Default: unlimited.
func WithMaxMemory(bytes int64) Option {
	return Option{func(o *core.Options) error {
		if bytes <= 0 {
			return optionErr("WithMaxMemory", bytes, "memory limit must be positive")
		}
		o.MaxMemory = bytes
		return nil
	}}
}

// WithSpillDir enables out-of-core execution for evaluations bounded by
// WithMaxMemory: intermediate relations whose estimated footprint pushes
// the running total over the memory limit are shed to temp files under dir
// (a fresh pdb-spill-* subdirectory, removed when the evaluation returns)
// and transparently reloaded when a later operator needs them, so the
// evaluation completes instead of aborting with a *LimitError. The memory
// limit then acts as a high-water mark for the in-memory live set — any
// single operator's working set still peaks in memory. Results are
// bit-identical to an unspilled run; Stats reports the spill volume. dir
// must be non-empty ("." spills under the working directory); without
// WithMaxMemory the option has no effect.
func WithSpillDir(dir string) Option {
	return Option{func(o *core.Options) error {
		if dir == "" {
			return optionErr("WithSpillDir", dir, "spill directory must be non-empty")
		}
		o.SpillDir = dir
		return nil
	}}
}

// WithStrata enables stratified Karp–Luby estimation: each conf lineage
// is factored (independent easy subformulas computed exactly) and the
// hard residue is partitioned into at most n clause-weight strata sampled
// under Neyman allocation with empirical-Bernstein stopping. Results stay
// deterministic and worker-count independent, and typically need far
// fewer trials on skewed clause weights. n must lie in [1, 4096]; n = 1
// keeps a single stratum (factoring pre-pass only). Implied with its
// default stratum count by WithThreshold and WithTopK.
func WithStrata(n int) Option {
	return Option{func(o *core.Options) error {
		if n < 1 || n > 4096 {
			return optionErr("WithStrata", n, "stratum count must be in [1, 4096]")
		}
		o.Strata = n
		return nil
	}}
}

// WithThreshold makes conf operators stop sampling a tuple as soon as its
// confidence interval falls entirely above or below tau — an effort knob,
// not a filter: every tuple still appears in the result with its
// estimate, but tuples whose comparison against tau is settled early
// receive only the trials that settling took. tau must lie in (0, 1).
// Implies stratified estimation.
func WithThreshold(tau float64) Option {
	return Option{func(o *core.Options) error {
		if tau <= 0 || tau >= 1 {
			return optionErr("WithThreshold", tau, "threshold must be in (0,1)")
		}
		o.ConfThreshold = tau
		return nil
	}}
}

// WithTopK makes conf operators stop sampling a tuple once its membership
// in the k highest-confidence tuples of its operator is settled either
// way (interval separation against the other tuples). Like WithThreshold
// this is an effort knob, not a filter — the result still contains every
// tuple. k must be positive. Implies stratified estimation.
func WithTopK(k int) Option {
	return Option{func(o *core.Options) error {
		if k <= 0 {
			return optionErr("WithTopK", k, "k must be positive")
		}
		o.ConfTopK = k
		return nil
	}}
}

// WithNoResume disables cross-restart estimator reuse: every doubling
// restart samples from scratch instead of resuming the previous restart's
// snapshots. Results are bit-identical either way; this is an ablation /
// paper-literal mode that roughly doubles sampled trials.
func WithNoResume() Option {
	return Option{func(o *core.Options) error {
		o.NoResume = true
		return nil
	}}
}

// ProgressEvent is one observation of a running evaluation, delivered to
// the WithProgress hook after every pass of the doubling loop: the restart
// count, the pass's round budget and cap, cumulative sampled/reused trial
// counts, the worst non-singular error bound, and whether the loop stops
// here.
type ProgressEvent = core.Progress

// WithProgress registers a hook observing the evaluation: it is called
// synchronously after every pass of the doubling loop (including the final
// one, flagged Done). The hook must be non-nil and fast, and must not call
// back into the query or database.
func WithProgress(fn func(ProgressEvent)) Option {
	return Option{func(o *core.Options) error {
		if fn == nil {
			return optionErr("WithProgress", "nil", "progress hook must be non-nil")
		}
		o.Progress = fn
		return nil
	}}
}

// defaultOptions is the baseline configuration Eval starts from.
func defaultOptions() core.Options {
	return core.Options{Eps0: 0.05, Delta: 0.05, Seed: 1}
}

// buildOptions applies opts over the defaults, returning the first
// validation error.
func buildOptions(opts []Option) (core.Options, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if opt.apply == nil {
			continue
		}
		if err := opt.apply(&o); err != nil {
			return core.Options{}, err
		}
	}
	return o, nil
}
