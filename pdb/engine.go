package pdb

import (
	"errors"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Engine is a long-lived evaluation handle over one database. Unlike a
// bare Query — whose estimator state lives only for a single Eval call —
// an Engine owns a content-keyed Karp–Luby cache that persists across Eval
// calls: a repeated query resumes its sampled trials instead of re-drawing
// them, and *different* queries that share lineage content (the common
// case for repeated analytics over one uncertain database) reuse each
// other's estimation work. Results are unaffected: a warm evaluation is
// bit-identical to a cold one under the same seed, for any worker count.
//
// The cache is bounded (least-recently-used eviction, see
// WithEngineCacheSize) and safe for concurrent use: any number of
// goroutines may Eval queries prepared on one Engine simultaneously —
// the intended shape for a network service front-end.
//
// An Engine holds no goroutines; a non-clustered Engine holds no file
// handles either, so dropping it releases everything. A clustered Engine
// (WithEngineCluster) pools shard connections — call Close to release
// them.
type Engine struct {
	db    *DB
	cache *core.Cache
	// coord, when non-nil, scatters estimation work across shard
	// processes (see WithEngineCluster); it implements core.Distributor.
	coord *cluster.Coordinator

	evals         atomic.Int64
	sampledTrials atomic.Int64
	reusedTrials  atomic.Int64
	cacheHits     atomic.Int64
	inFlight      atomic.Int64
	limitTrips    atomic.Int64
	earlyStops    atomic.Int64
	exactFactored atomic.Int64
}

// defaultEngineCacheSize bounds the estimator cache of an Engine built
// without WithEngineCacheSize. Entries are small (a few hundred bytes of
// counters plus one PRNG), so the default admits substantial cross-query
// reuse while keeping the cache's footprint in the low megabytes.
const defaultEngineCacheSize = 4096

// EngineOption configures an Engine at construction.
type EngineOption struct {
	apply func(*Engine) error
}

// WithEngineCacheSize bounds the engine's estimator cache to n cached
// tasks (LRU eviction beyond it). n must be positive; eviction only costs
// future reuse, never correctness. Default 4096.
func WithEngineCacheSize(n int) EngineOption {
	return EngineOption{func(e *Engine) error {
		if n <= 0 {
			return optionErr("WithEngineCacheSize", n, "cache size must be positive")
		}
		e.cache = core.NewCache(n)
		return nil
	}}
}

// Engine builds a long-lived evaluation handle whose estimator cache
// persists across Eval calls. Queries prepared through Engine.Prepare are
// bound to it; queries prepared directly on the DB keep the per-call
// cache.
func (db *DB) Engine(opts ...EngineOption) (*Engine, error) {
	e := &Engine{db: db, cache: core.NewCache(defaultEngineCacheSize)}
	for _, opt := range opts {
		if opt.apply == nil {
			continue
		}
		if err := opt.apply(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// DB returns the engine's database.
func (e *Engine) DB() *DB { return e.db }

// Prepare parses and validates a UA program like DB.Prepare, binding the
// resulting query to the engine: its Eval calls resume estimator state
// from — and publish state to — the engine's cache.
func (e *Engine) Prepare(src string) (*Query, error) {
	q, err := e.db.Prepare(src)
	if err != nil {
		return nil, err
	}
	q.eng = e
	return q, nil
}

// EngineStats is a point-in-time snapshot of an engine's cumulative work
// and the effectiveness of its cross-query estimator cache.
type EngineStats struct {
	// Evals counts completed approximate evaluations (failed or cancelled
	// evaluations are not counted).
	Evals int64
	// SampledTrials and ReusedTrials aggregate the per-evaluation
	// Stats.SampledTrials / Stats.ReusedTrials over all completed
	// evaluations: reused trials were served from the engine cache (or
	// from a restart's own snapshots) instead of being re-sampled.
	SampledTrials int64
	ReusedTrials  int64
	// CacheHits counts estimation tasks (across all evaluations) that
	// resumed from a cached snapshot.
	CacheHits int64
	// CacheEntries / CacheEvictions / CacheMisses describe the engine
	// cache itself; CacheCapacity is its configured entry bound (entries
	// pinned at capacity with rising evictions means the working set no
	// longer fits).
	CacheEntries   int
	CacheCapacity  int
	CacheMisses    int64
	CacheEvictions int64
	// InFlight is the number of evaluations running on the engine right
	// now (admitted but not yet completed, failed, or cancelled).
	InFlight int64
	// LimitTrips counts evaluations aborted by a per-query resource limit
	// (WithMaxTrials / WithMaxMemory) — the service's 422/overload signal.
	LimitTrips int64
	// EarlyStops aggregates Stats.EarlyStops over completed evaluations:
	// estimation tasks settled before their full trial budget by
	// threshold/top-k decisions or empirical-Bernstein convergence.
	EarlyStops int64
	// ExactFactored aggregates Stats.ExactFactored: independent lineage
	// subformulas the factoring pre-pass computed exactly instead of
	// sampling.
	ExactFactored int64
	// Cluster holds per-shard scatter-gather statistics on a clustered
	// engine (WithEngineCluster); nil on a single-node engine.
	Cluster *ClusterStats
}

// Stats returns the engine's cumulative statistics. Safe to call
// concurrently with evaluations.
func (e *Engine) Stats() EngineStats {
	cs := e.cache.Stats()
	return EngineStats{
		Cluster:        e.ClusterStats(),
		Evals:          e.evals.Load(),
		SampledTrials:  e.sampledTrials.Load(),
		ReusedTrials:   e.reusedTrials.Load(),
		CacheHits:      e.cacheHits.Load(),
		CacheEntries:   cs.Entries,
		CacheCapacity:  e.cache.Cap(),
		CacheMisses:    cs.Misses,
		CacheEvictions: cs.Evictions,
		InFlight:       e.inFlight.Load(),
		LimitTrips:     e.limitTrips.Load(),
		EarlyStops:     e.earlyStops.Load(),
		ExactFactored:  e.exactFactored.Load(),
	}
}

// record folds one completed evaluation's statistics into the engine's
// cumulative counters.
func (e *Engine) record(s Stats) {
	e.evals.Add(1)
	e.sampledTrials.Add(s.SampledTrials)
	e.reusedTrials.Add(s.ReusedTrials)
	e.cacheHits.Add(s.CacheHits)
	e.earlyStops.Add(s.EarlyStops)
	e.exactFactored.Add(s.ExactFactored)
}

// beginEval marks an evaluation in flight on the engine; the returned
// function ends it. Stats().InFlight is the live gauge a service exports.
func (e *Engine) beginEval() func() {
	e.inFlight.Add(1)
	return func() { e.inFlight.Add(-1) }
}

// recordFailure classifies a failed evaluation (currently: count limit
// aborts, the signal admission control and alerting key on).
func (e *Engine) recordFailure(err error) {
	var le *LimitError
	if errors.As(err, &le) {
		e.limitTrips.Add(1)
	}
}
