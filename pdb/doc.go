// Package pdb is the public, supported API of the probabilistic-database
// engine: a facade over the internal U-relational representation, the
// exact evaluators, and the Karp–Luby / Theorem 6.7 approximation engine.
// Everything under internal/ is an implementation detail; programs should
// depend on this package only.
//
// The shape of the API follows the prepare/execute pattern of database
// drivers:
//
//	db, err := pdb.Open(map[string]string{"Coins": "coins.csv"})
//	q, err := db.Prepare(`conf(project[CoinType](repairkey[@Count](Coins)))`)
//	res, err := q.Eval(ctx, pdb.WithEpsilon(0.05), pdb.WithDelta(0.1))
//	for row := range res.Rows() {
//	    fmt.Println(row.Str("CoinType"), row.Float("P"), row.ErrorBound())
//	}
//
// Databases are built either from CSV files (Open) or programmatically
// (NewBuilder): complete relations, tuple-independent probabilistic
// relations, and attribute-level uncertainty via vertical decomposition.
// Queries are written in the UA query language of internal/parser
// (select, project, join, product, union, diff, repairkey, conf, poss,
// cert, aselect, and `Name := query;` bindings) and parsed once by
// Prepare; a prepared Query can be evaluated many times.
//
// Every blocking call takes a context.Context. Cancellation is
// cooperative and prompt: the engine checks the context between plan
// operators, between doubling restarts, and between Monte-Carlo estimation
// chunks inside the worker pool, so Eval returns ctx.Err() within one
// chunk boundary without leaking goroutines or corrupting the engine's
// cross-restart resume cache.
//
// Evaluation is configured with validated functional options (WithEpsilon,
// WithDelta, WithWorkers, WithSeed, WithNoResume, …); invalid settings are
// rejected with a typed *OptionError before any work starts. Long-running
// evaluations can be observed with WithProgress, which reports every pass
// of the doubling loop (restart count, round budget, trial counts, worst
// error bound).
//
// Results are deterministic: equal databases, query text, seed, and
// accuracy targets produce bit-identical results for any worker count and
// whether or not an earlier evaluation was cancelled.
package pdb
