package pdb_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/workload"

	"repro/pdb"
)

// storeFingerprint captures a result's rows with exact float bit patterns
// and world conditions, schema-generically.
func storeFingerprint(res *pdb.Result) []string {
	cols := res.Columns()
	var out []string
	for row := range res.Rows() {
		s := ""
		for _, c := range cols {
			switch v := row.Value(c).(type) {
			case float64:
				s += fmt.Sprintf("|%x", math.Float64bits(v))
			default:
				s += fmt.Sprintf("|%v", v)
			}
		}
		out = append(out, s+"|"+row.Condition())
	}
	return out
}

// TestStoreCSVBitIdentity is the storage acceptance contract: for every
// corpus scenario, the same query over a pdbstore-backed database and
// over its CSV conversion produces bit-identical results, at workers 1,
// 4, and 8.
func TestStoreCSVBitIdentity(t *testing.T) {
	ctx := context.Background()
	for _, sc := range workload.Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			dir := t.TempDir()
			stored, err := sc.Generate(dir, 500, 11)
			if err != nil {
				t.Fatal(err)
			}
			// Convert each pdbstore relation to CSV — the same path
			// `pdbcli convert` takes.
			csvs := map[string]string{}
			for name, path := range stored {
				r, err := store.ReadRelation(path, rel.NewInterner())
				if err != nil {
					t.Fatal(err)
				}
				out := filepath.Join(dir, name+".csv")
				f, err := os.Create(out)
				if err != nil {
					t.Fatal(err)
				}
				if err := parser.SaveCSV(f, r); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
				csvs[name] = out
			}

			fromStore, err := pdb.Open(stored)
			if err != nil {
				t.Fatal(err)
			}
			fromCSV, err := pdb.Open(csvs)
			if err != nil {
				t.Fatal(err)
			}
			var want []string
			for _, workers := range []int{1, 4, 8} {
				for _, db := range []*pdb.DB{fromStore, fromCSV} {
					q, err := db.Prepare(sc.Query)
					if err != nil {
						t.Fatal(err)
					}
					res, err := q.EvalExact(ctx, pdb.WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					got := storeFingerprint(res)
					if len(got) == 0 {
						t.Fatal("query produced no rows")
					}
					if want == nil {
						want = got
					} else if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("workers=%d: result diverges from the workers=1 pdbstore run", workers)
					}
				}
			}
		})
	}
}

// spillDB builds complete relations whose join output is far larger than
// the small memory budgets the spill tests use.
func spillDB(t *testing.T) *pdb.DB {
	t.Helper()
	var a, b [][]any
	for i := 0; i < 400; i++ {
		a = append(a, []any{i % 40, i})
		b = append(b, []any{i % 40, i, float64(i)/7 + 0.5})
	}
	db, err := pdb.NewBuilder().
		Table("A", []string{"K", "X"}, a...).
		Table("B", []string{"K", "J", "Y"}, b...).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// spillProgram joins twice so an older intermediate exists to shed: the
// residency manager never evicts the running operator's own inputs and
// output, so a plan needs at least three live intermediates to spill.
const spillProgram = `project[K, X, Y](union(join(A, B), join(A, B)));`

// TestSpillCompletesOverBudget is the out-of-core acceptance contract: a
// join whose output exceeds WithMaxMemory aborts with a *LimitError
// without a spill directory, and with one it completes, reports spill
// activity, and returns rows bit-identical to an unlimited run.
func TestSpillCompletesOverBudget(t *testing.T) {
	ctx := context.Background()
	db := spillDB(t)
	const budget = 1 << 14 // 16 KiB; the join materializes ~4000 tuples

	q, err := db.Prepare(spillProgram)
	if err != nil {
		t.Fatal(err)
	}
	free, err := q.EvalExact(ctx)
	if err != nil {
		t.Fatal(err)
	}

	_, err = q.EvalExact(ctx, pdb.WithMaxMemory(budget))
	var lim *pdb.LimitError
	if !errors.As(err, &lim) || lim.Resource != "memory" {
		t.Fatalf("without a spill dir the budget should abort with a memory LimitError, got %v", err)
	}

	spilled, err := q.EvalExact(ctx,
		pdb.WithMaxMemory(budget), pdb.WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatalf("spilling evaluation should complete, got %v", err)
	}
	if st := spilled.Stats(); st.SpilledBytes == 0 || st.SpillFiles == 0 {
		t.Errorf("expected spill activity, got %+v", st)
	}
	if fmt.Sprint(storeFingerprint(spilled)) != fmt.Sprint(storeFingerprint(free)) {
		t.Error("spilled result differs from the unlimited run")
	}
}

// TestSpillApproxParity checks the approximate path end to end: a conf
// query under a tight budget plus spill dir matches the unlimited run
// bit-for-bit and reports spill stats through Result.Stats.
func TestSpillApproxParity(t *testing.T) {
	ctx := context.Background()
	db := spillDB(t)
	q, err := db.Prepare(`conf as P (project[K](join(A, repairkey[K @ Y](B))));`)
	if err != nil {
		t.Fatal(err)
	}
	opts := []pdb.Option{pdb.WithSeed(5), pdb.WithConfBudget(0.1, 0.1)}
	free, err := q.Eval(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := q.Eval(ctx, append(opts,
		pdb.WithMaxMemory(1<<14), pdb.WithSpillDir(t.TempDir()))...)
	if err != nil {
		t.Fatalf("spilling evaluation should complete, got %v", err)
	}
	if st := spilled.Stats(); st.SpilledBytes == 0 {
		t.Errorf("expected spill activity, got %+v", st)
	}
	if fmt.Sprint(storeFingerprint(spilled)) != fmt.Sprint(storeFingerprint(free)) {
		t.Error("spilled approximate result differs from the unlimited run")
	}
}
