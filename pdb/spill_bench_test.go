package pdb_test

import (
	"context"
	"testing"

	"repro/pdb"
)

// spillBenchDB builds the join workload the spill benchmarks share: two
// 2000-row relations whose join materializes 100k tuples.
func spillBenchDB(b *testing.B) *pdb.DB {
	b.Helper()
	var a, bb [][]any
	for i := 0; i < 2000; i++ {
		a = append(a, []any{i % 40, i})
		bb = append(bb, []any{i % 40, float64(i)/7 + 0.5})
	}
	db, err := pdb.NewBuilder().
		Table("A", []string{"K", "X"}, a...).
		Table("B", []string{"K", "Y"}, bb...).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	return db
}

const spillBenchProgram = `project[K, X, Y](union(join(A, B), join(A, B)));`

func benchSpillJoin(b *testing.B, opts ...pdb.Option) {
	db := spillBenchDB(b)
	q, err := db.Prepare(spillBenchProgram)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.EvalExact(ctx, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkJoinInMemory is the unlimited baseline for the spilled run
// below: the same double join with every intermediate resident.
func BenchmarkJoinInMemory(b *testing.B) { benchSpillJoin(b) }

// BenchmarkJoinSpilled runs the same join out-of-core: a budget far
// below the materialized size plus a spill directory, so intermediates
// shed to disk and hydrate back. The gap to BenchmarkJoinInMemory is the
// documented cost of completing instead of aborting (docs/BENCHMARKS.md).
func BenchmarkJoinSpilled(b *testing.B) {
	benchSpillJoin(b,
		pdb.WithMaxMemory(1<<20), pdb.WithSpillDir(b.TempDir()))
}
