package pdb

import (
	"fmt"
	"iter"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/urel"
)

// OpStats reports one relational operator's aggregate work across an
// evaluation: how many times it ran, how many tuples it consumed and
// produced, and an estimate of the bytes materialized for its outputs
// (value and condition payloads plus per-tuple bookkeeping — an estimate
// of working-set size, not an allocator measurement).
type OpStats struct {
	Calls     int64
	TuplesIn  int64
	TuplesOut int64
	Bytes     int64
}

// Stats reports the work an evaluation did. For approximate evaluation all
// fields are populated; exact evaluation fills only Ops and the spill
// fields.
type Stats struct {
	// FinalRounds is the round budget l the doubling loop stopped at.
	FinalRounds int64
	// Restarts is the number of doubling restarts.
	Restarts int
	// SampledTrials is the number of Karp–Luby trials actually sampled;
	// ReusedTrials counts trials resumed from estimator snapshots instead
	// — snapshots of this evaluation's earlier restarts, or of earlier
	// evaluations when the query is bound to an Engine cache.
	SampledTrials int64
	ReusedTrials  int64
	// CacheHits is the number of estimation tasks that resumed from a
	// cached snapshot (cross-restart, and cross-query on an Engine).
	CacheHits int64
	// Decisions is the number of σ̂ predicate decisions in the final pass.
	Decisions int
	// SingularDrops counts negative σ̂ decisions flagged as potential
	// ε₀-singularities (their absence is not covered by the δ guarantee).
	SingularDrops int
	// Strata is the number of sampling strata active in the final pass
	// (0 unless stratified estimation — WithStrata / WithThreshold /
	// WithTopK — was used).
	Strata int64
	// EarlyStops counts estimation tasks of the final pass that settled
	// before spending their full trial budget (threshold/top-k decisions
	// or empirical-Bernstein convergence).
	EarlyStops int64
	// ExactFactored counts independent lineage subformulas the factoring
	// pre-pass computed exactly instead of sampling (final pass).
	ExactFactored int64
	// Ops maps operator names (join, product, select, project, union,
	// diffc, repairkey, lineage, conf, cert, poss) to their aggregate
	// work, summed over every pass of the evaluation. It makes operator
	// throughput — and the effect of WithWorkers on the exact-algebra
	// path — observable from the public API.
	Ops map[string]OpStats
	// SpilledBytes and SpillFiles report out-of-core activity
	// (WithSpillDir): total bytes written to spill files and the number of
	// spill files created across the evaluation. Zero without spilling.
	SpilledBytes int64
	SpillFiles   int
}

// Result is the outcome of one evaluation: a deterministic ordered set of
// rows with optional per-row conditions (for probabilistic results) and,
// after approximate evaluation, per-row error bounds and statistics.
type Result struct {
	cols     []string
	rows     []Row
	complete bool
	stats    Stats
}

// Row is one result row with typed column access.
type Row struct {
	res      *Result
	vals     rel.Tuple
	cond     string
	errBound float64
	singular bool
}

// opStatsFrom converts the engine's operator statistics to the public
// mirror type.
func opStatsFrom(m urel.StatsMap) map[string]OpStats {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]OpStats, len(m))
	for op, s := range m {
		out[op] = OpStats{Calls: s.Calls, TuplesIn: s.TuplesIn, TuplesOut: s.TuplesOut, Bytes: s.Bytes}
	}
	return out
}

func newApproxResult(r *core.Result) *Result {
	out := &Result{cols: append([]string(nil), r.Rel.Schema()...), complete: r.Complete}
	out.stats = Stats{
		FinalRounds:   r.Stats.FinalRounds,
		Restarts:      r.Stats.Restarts,
		SampledTrials: r.Stats.EstimatorTrials,
		ReusedTrials:  r.Stats.ReusedTrials,
		CacheHits:     r.Stats.CacheHits,
		Decisions:     r.Stats.Decisions,
		SingularDrops: r.Stats.SingularDrops,
		Strata:        r.Stats.Strata,
		EarlyStops:    r.Stats.EarlyStops,
		ExactFactored: r.Stats.ExactFactored,
		Ops:           opStatsFrom(r.Stats.Ops),
		SpilledBytes:  r.Stats.SpilledBytes,
		SpillFiles:    r.Stats.SpillFiles,
	}
	for _, ut := range r.Rel.Tuples() {
		out.rows = append(out.rows, Row{
			res:      out,
			vals:     ut.Row,
			cond:     ut.D.Key(),
			errBound: r.TupleError(ut.Row),
			singular: r.IsSingular(ut.Row),
		})
	}
	out.sortRows()
	return out
}

func newExactResult(r algebra.URelResult) *Result {
	out := &Result{cols: append([]string(nil), r.Rel.Schema()...), complete: r.Complete}
	out.stats = Stats{Ops: opStatsFrom(r.Ops), SpilledBytes: r.SpilledBytes, SpillFiles: r.SpillFiles}
	for _, ut := range r.Rel.Tuples() {
		out.rows = append(out.rows, Row{res: out, vals: ut.Row, cond: ut.D.Key()})
	}
	out.sortRows()
	return out
}

// sortRows fixes a deterministic, content-based row order (conditions
// first, then values) independent of evaluation order.
func (r *Result) sortRows() {
	sort.Slice(r.rows, func(i, j int) bool {
		if r.rows[i].cond != r.rows[j].cond {
			return r.rows[i].cond < r.rows[j].cond
		}
		return r.rows[i].vals.Key() < r.rows[j].vals.Key()
	})
}

// Columns returns the result schema in order.
func (r *Result) Columns() []string { return append([]string(nil), r.cols...) }

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.rows) }

// Complete reports whether the result is a complete (non-probabilistic)
// relation. Incomplete results carry per-row conditions (Row.Condition).
func (r *Result) Complete() bool { return r.complete }

// Stats returns evaluation statistics (zero for EvalExact results).
func (r *Result) Stats() Stats { return r.stats }

// MaxErrorBound returns the worst per-row membership-error bound over
// non-singular rows (0 for exact results).
func (r *Result) MaxErrorBound() float64 {
	worst := 0.0
	for _, row := range r.rows {
		if !row.singular && row.errBound > worst {
			worst = row.errBound
		}
	}
	return worst
}

// Rows iterates the rows in the result's deterministic order:
//
//	for row := range res.Rows() { ... }
func (r *Result) Rows() iter.Seq[Row] {
	return func(yield func(Row) bool) {
		for _, row := range r.rows {
			if !yield(row) {
				return
			}
		}
	}
}

// index returns the position of col, panicking on unknown columns (a typo
// in a column name is a programming error, not a data condition).
func (row Row) index(col string) int {
	for i, c := range row.res.cols {
		if c == col {
			return i
		}
	}
	panic(fmt.Sprintf("pdb: no column %q in result schema %v", col, row.res.cols))
}

// Value returns the column's value as a Go scalar: string, bool, int64,
// float64, or nil for NULL. It panics on unknown column names.
func (row Row) Value(col string) any {
	v := row.vals[row.index(col)]
	switch v.Kind() {
	case rel.BoolKind:
		return v.AsBool()
	case rel.IntKind:
		return v.AsInt()
	case rel.FloatKind:
		return v.AsFloat()
	case rel.StringKind:
		return v.AsString()
	default:
		return nil
	}
}

// Float returns the column as float64 (ints convert; other kinds are 0).
func (row Row) Float(col string) float64 { return row.vals[row.index(col)].AsFloat() }

// Int returns the column as int64 (floats truncate; other kinds are 0).
func (row Row) Int(col string) int64 { return row.vals[row.index(col)].AsInt() }

// Str returns the column as a string ("" for non-strings).
func (row Row) Str(col string) string { return row.vals[row.index(col)].AsString() }

// ErrorBound returns the row's membership-error bound µ: the probability
// that the row's presence in the result is wrong is at most µ (0 for
// exact results and reliable rows).
func (row Row) ErrorBound() float64 { return row.errBound }

// Singular reports whether the row's σ̂ decisions hit the ε₀ floor: the
// predicate point may be an ε₀-singularity, and the δ guarantee does not
// cover this row.
func (row Row) Singular() bool { return row.singular }

// Condition returns the row's world condition in compact form ("" when
// the row is unconditional, i.e. present in every world the result
// describes). Conditions name the engine's internal random variables; they
// are stable identifiers for comparing rows, not user-assigned names.
func (row Row) Condition() string { return row.cond }

// String renders the row tab-separated in column order, with condition,
// error bound, and singularity markers appended when present.
func (row Row) String() string {
	parts := make([]string, 0, len(row.vals)+3)
	for _, v := range row.vals {
		parts = append(parts, v.String())
	}
	if row.cond != "" {
		parts = append(parts, "D="+row.cond)
	}
	if row.errBound > 0 {
		parts = append(parts, fmt.Sprintf("±err≤%.4g", row.errBound))
	}
	if row.singular {
		parts = append(parts, "SINGULAR")
	}
	return strings.Join(parts, "\t")
}
