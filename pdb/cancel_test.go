package pdb

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// heavyDB is a tuple-independent relation whose conf[∅] lineage has 40
// clauses — genuine Karp–Luby work.
func heavyDB(t *testing.T) *DB {
	t.Helper()
	rows := make([][]any, 40)
	probs := make([]float64, 40)
	for i := range rows {
		rows[i] = []any{i}
		probs[i] = 0.5
	}
	db, err := NewBuilder().Independent("R", []string{"ID"}, rows, probs).Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// heavyOptions drive the σ̂ doubling loop to an enormous budget: the
// predicate threshold sits 0.01 from the true probability, so the bound
// only converges after ~250k rounds — tens of millions of trials.
func heavyOptions() []Option {
	return []Option{
		WithEpsilon(0.001), WithDelta(0.0005),
		WithMaxRounds(1 << 40), WithSeed(3), WithWorkers(2),
	}
}

const heavyQuery = `aselect[p1 >= 0.99 over conf[]](R)`

func TestEvalCancelReturnsContextError(t *testing.T) {
	db := heavyDB(t)
	q, err := db.Prepare(heavyQuery)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := q.Eval(ctx, heavyOptions()...)
		done <- outcome{res, err}
	}()

	time.Sleep(50 * time.Millisecond)
	cancelled := time.Now()
	cancel()

	select {
	case out := <-done:
		latency := time.Since(cancelled)
		if out.err == nil {
			t.Fatal("cancelled Eval returned no error")
		}
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("cancelled Eval returned %v, want context.Canceled", out.err)
		}
		if out.res != nil {
			t.Error("cancelled Eval should not return a result")
		}
		// Cooperative checks sit between operators, restarts, and 4096-trial
		// estimation chunks, so the abort must be prompt — far below the
		// seconds the full evaluation would need.
		if latency > 2*time.Second {
			t.Errorf("cancellation took %v, want well under 2s", latency)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Eval did not return")
	}

	// goleak-style check: every worker goroutine must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEvalAfterCancelBitIdentical(t *testing.T) {
	db := heavyDB(t)
	q, err := db.Prepare(heavyQuery)
	if err != nil {
		t.Fatal(err)
	}

	// Abort a huge evaluation mid-doubling.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(30 * time.Millisecond); cancel() }()
	if _, err := q.Eval(ctx, heavyOptions()...); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}

	// A subsequent uncancelled evaluation on the same query (moderate
	// budget so it terminates) must match a run on a fresh database and
	// query bit for bit — the abort left no state behind.
	moderate := []Option{WithEpsilon(0.05), WithDelta(0.05), WithSeed(3), WithWorkers(2)}
	after, err := q.Eval(context.Background(), moderate...)
	if err != nil {
		t.Fatal(err)
	}

	freshQ, err := heavyDB(t).Prepare(heavyQuery)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := freshQ.Eval(context.Background(), moderate...)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(after) != fingerprint(fresh) {
		t.Errorf("post-cancel run differs from fresh run:\n%s\nvs\n%s",
			fingerprint(after), fingerprint(fresh))
	}
	if !reflect.DeepEqual(after.Stats(), fresh.Stats()) {
		t.Errorf("post-cancel stats differ: %+v vs %+v", after.Stats(), fresh.Stats())
	}
}

func TestEvalExactCancel(t *testing.T) {
	db := heavyDB(t)
	q, err := db.Prepare(`conf(R)`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.EvalExact(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalExact on a cancelled context returned %v, want context.Canceled", err)
	}
}

func TestEvalDeadline(t *testing.T) {
	db := heavyDB(t)
	q, err := db.Prepare(heavyQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	if _, err := q.Eval(ctx, heavyOptions()...); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline-bounded Eval returned %v, want context.DeadlineExceeded", err)
	}
}
