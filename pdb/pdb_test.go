package pdb

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// coinDB builds the Example 2.2 database (two fair coins, one double-headed
// coin, two tosses) on the public builder.
func coinDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewBuilder().
		Table("Coins", []string{"CoinType", "Count"},
			[]any{"fair", 2},
			[]any{"2headed", 1}).
		Table("Faces", []string{"CoinType", "Face", "FProb"},
			[]any{"fair", "H", 0.5},
			[]any{"fair", "T", 0.5},
			[]any{"2headed", "H", 1.0}).
		Table("Tosses", []string{"Toss"}, []any{1}, []any{2}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// posteriorProgram is Example 2.2: P(CoinType | two observed heads).
const posteriorProgram = `
R := project[CoinType](repairkey[@Count](Coins));
S := project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)));
T := join(join(R, project[CoinType](select[Toss = 1 and Face = 'H'](S))),
          project[CoinType](select[Toss = 2 and Face = 'H'](S)));
project[CoinType, P1/P2 as P](product(conf as P1 (T), conf as P2 (project[](T))));
`

func fingerprint(res *Result) string {
	var sb strings.Builder
	for row := range res.Rows() {
		sb.WriteString(row.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestPosteriorExactAndApprox(t *testing.T) {
	db := coinDB(t)
	q, err := db.Prepare(posteriorProgram)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := q.EvalExact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Complete() {
		t.Error("posterior result should be complete")
	}
	var pFair float64
	found := false
	for row := range exact.Rows() {
		if row.Str("CoinType") == "fair" {
			pFair, found = row.Float("P"), true
		}
	}
	if !found {
		t.Fatal("no fair row in exact result")
	}
	if math.Abs(pFair-1.0/3) > 1e-12 {
		t.Errorf("exact P(fair | HH) = %v, want 1/3", pFair)
	}

	approx, err := q.Eval(context.Background(), WithConfBudget(0.01, 0.01), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for row := range approx.Rows() {
		if row.Str("CoinType") == "fair" {
			if math.Abs(row.Float("P")-1.0/3) > 0.05 {
				t.Errorf("approx P(fair | HH) = %v, too far from 1/3", row.Float("P"))
			}
		}
	}
	if approx.Stats().SampledTrials == 0 {
		t.Error("approximate evaluation should have sampled trials")
	}
}

func TestEvalDeterministicAcrossWorkersAndRuns(t *testing.T) {
	db := coinDB(t)
	q, err := db.Prepare(posteriorProgram)
	if err != nil {
		t.Fatal(err)
	}
	var prints []string
	for _, workers := range []int{1, 4, 8} {
		res, err := q.Eval(context.Background(), WithSeed(7), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		prints = append(prints, fingerprint(res))
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Errorf("workers variant %d differs from reference:\n%s\nvs\n%s", i, prints[i], prints[0])
		}
	}
	// Same query object, evaluated again: bit-identical.
	again, err := q.Eval(context.Background(), WithSeed(7), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(again) != prints[0] {
		t.Error("repeated Eval on one Query is not deterministic")
	}
}

func TestOptionValidation(t *testing.T) {
	db := coinDB(t)
	q, err := db.Prepare(`conf(repairkey[@Count](Coins))`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  Option
	}{
		{"WithEpsilon zero", WithEpsilon(0)},
		{"WithEpsilon negative", WithEpsilon(-0.1)},
		{"WithEpsilon one", WithEpsilon(1)},
		{"WithDelta zero", WithDelta(0)},
		{"WithDelta one", WithDelta(1)},
		{"WithDelta above one", WithDelta(1.5)},
		{"WithConfBudget bad eps", WithConfBudget(0, 0.1)},
		{"WithConfBudget bad delta", WithConfBudget(0.1, -1)},
		{"WithInitialRounds zero", WithInitialRounds(0)},
		{"WithInitialRounds negative", WithInitialRounds(-5)},
		{"WithMaxRounds negative", WithMaxRounds(-1)},
		{"WithWorkers negative", WithWorkers(-2)},
		{"WithProgress nil", WithProgress(nil)},
	}
	for _, c := range cases {
		_, err := q.Eval(context.Background(), c.opt)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v is not a *OptionError", c.name, err)
			continue
		}
		if oe.Option == "" || oe.Reason == "" {
			t.Errorf("%s: OptionError missing fields: %+v", c.name, oe)
		}
	}
	// Valid options still work after the rejects.
	if _, err := q.Eval(context.Background(), WithEpsilon(0.1), WithDelta(0.1), WithWorkers(2)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestProgressHook(t *testing.T) {
	db := coinDB(t)
	q, err := db.Prepare(`aselect[p1 >= 0.25 over conf[CoinType]](project[CoinType](repairkey[@Count](Coins)))`)
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	_, err = q.Eval(context.Background(),
		WithDelta(0.01), WithEpsilon(0.01),
		WithProgress(func(ev ProgressEvent) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("progress hook never called")
	}
	last := events[len(events)-1]
	if !last.Done {
		t.Error("last progress event should be flagged Done")
	}
	for i, ev := range events {
		if ev.Restart != i {
			t.Errorf("event %d has Restart %d", i, ev.Restart)
		}
		if ev.Rounds <= 0 || ev.MaxRounds < ev.Rounds {
			t.Errorf("event %d has bad budget: rounds=%d max=%d", i, ev.Rounds, ev.MaxRounds)
		}
	}
	for i := 1; i < len(events); i++ {
		if events[i].Rounds <= events[i-1].Rounds {
			t.Errorf("round budgets should double: %d then %d", events[i-1].Rounds, events[i].Rounds)
		}
	}
}

func TestOpenCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coins.csv")
	if err := os.WriteFile(path, []byte("CoinType,Count\nfair,2\n2headed,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(map[string]string{"Coins": path})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Relations(); len(got) != 1 || got[0] != "Coins" {
		t.Fatalf("Relations() = %v", got)
	}
	if db.NumTuples("Coins") != 2 {
		t.Errorf("NumTuples(Coins) = %d, want 2", db.NumTuples("Coins"))
	}
	q, err := db.Prepare(`conf(project[CoinType](repairkey[@Count](Coins)))`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), WithConfBudget(0.05, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for row := range res.Rows() {
		p := row.Float("P")
		want := 2.0 / 3
		if row.Str("CoinType") == "2headed" {
			want = 1.0 / 3
		}
		if math.Abs(p-want) > 0.1 {
			t.Errorf("conf(%s) = %v, want ≈ %v", row.Str("CoinType"), p, want)
		}
	}

	if _, err := Open(map[string]string{"Nope": filepath.Join(dir, "missing.csv")}); err == nil {
		t.Error("Open should fail on a missing file")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Table("R", []string{"A"}, []any{1, 2}).Build(); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := NewBuilder().Table("R", []string{"A"}, []any{struct{}{}}).Build(); err == nil {
		t.Error("unsupported value type should fail")
	}
	if _, err := NewBuilder().Independent("R", []string{"A"}, [][]any{{1}}, []float64{1.5}).Build(); err == nil {
		t.Error("probability outside (0,1] should fail")
	}
	if _, err := NewBuilder().Independent("R", []string{"A"}, [][]any{{1}, {2}}, []float64{0.5}).Build(); err == nil {
		t.Error("rows/probs length mismatch should fail")
	}
	if _, err := NewBuilder().AttributeUncertain("R", []string{"A", "B"}, []Alt{Certain(1)}).Build(); err == nil {
		t.Error("attribute count mismatch should fail")
	}
	if _, err := NewBuilder().
		AttributeUncertain("R", []string{"A"}, []Alt{Choice("x", 0.5, "y", 0.4)}).
		Build(); err == nil || !strings.Contains(err.Error(), "sum to") {
		t.Errorf("probabilities not summing to 1 should fail with a sum error, got %v", err)
	}
	if _, err := NewBuilder().
		AttributeUncertain("R", []string{"A"}, []Alt{Choice("x", 0.5, "y")}).
		Build(); err == nil || !strings.Contains(err.Error(), "pairs") {
		t.Errorf("odd Choice arguments should fail, got %v", err)
	}
	if _, err := NewBuilder().
		AttributeUncertain("R", []string{"A"}, []Alt{Choice("x", 1)}).
		Build(); err == nil || !strings.Contains(err.Error(), "float64") {
		t.Errorf("non-float64 Choice probability should fail, got %v", err)
	}
	if _, err := NewBuilder().
		AttributeUncertain("R", []string{"A"}, []Alt{{Values: []any{"x", "y"}, Probs: []float64{1}}}).
		Build(); err == nil {
		t.Error("values/probs length mismatch should fail")
	}
	if _, err := NewBuilder().
		Table("R", []string{"A"}, []any{1}).
		Independent("R", []string{"A"}, [][]any{{1}}, []float64{0.5}).
		Build(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate relation name should fail, got %v", err)
	}
	if _, err := NewBuilder().
		Independent("R", []string{"A"}, [][]any{{1}}, []float64{0.5}).
		Independent("R", []string{"A"}, [][]any{{2}}, []float64{0.5}).
		Build(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate Independent relation should fail, got %v", err)
	}
}

func TestPrepareErrors(t *testing.T) {
	db := coinDB(t)
	if _, err := db.Prepare("select["); err == nil {
		t.Error("syntax error should fail at Prepare")
	}
	if _, err := db.Prepare("Nope"); err == nil {
		t.Error("unknown relation should fail at Prepare")
	}
	if _, err := db.Prepare("select[Nope = 1](Coins)"); err == nil {
		t.Error("unknown attribute should fail at Prepare")
	}
}

func TestIndependentRelation(t *testing.T) {
	db, err := NewBuilder().
		Independent("R", []string{"ID"},
			[][]any{{1}, {2}, {3}},
			[]float64{0.5, 0.25, 1.0}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.Prepare(`conf(R)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvalExact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{1: 0.5, 2: 0.25, 3: 1.0}
	n := 0
	for row := range res.Rows() {
		n++
		if p := row.Float("P"); math.Abs(p-want[row.Int("ID")]) > 1e-12 {
			t.Errorf("conf(ID=%d) = %v, want %v", row.Int("ID"), p, want[row.Int("ID")])
		}
	}
	if n != 3 {
		t.Errorf("got %d rows, want 3", n)
	}
}

func TestAttributeUncertain(t *testing.T) {
	db, err := NewBuilder().
		AttributeUncertain("Customers", []string{"Name", "City"},
			[]Alt{Choice("Ann", 0.7, "Anna", 0.3), Choice("NYC", 0.8, "Newark", 0.2)},
			[]Alt{Certain("Bob"), Choice("LA", 0.4, "NYC", 0.6)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.Prepare(`conf(Customers)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvalExact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	total := map[string]float64{}
	for row := range res.Rows() {
		total[row.Str("Name")] += row.Float("P")
	}
	// Marginals per original row must sum to 1 over the alternatives.
	if math.Abs(total["Ann"]+total["Anna"]-1) > 1e-12 {
		t.Errorf("Ann/Anna marginals sum to %v, want 1", total["Ann"]+total["Anna"])
	}
	if math.Abs(total["Bob"]-1) > 1e-12 {
		t.Errorf("Bob marginal sums to %v, want 1", total["Bob"])
	}
}
