#!/usr/bin/env bash
# End-to-end smoke of the pdbstore storage layer: convert the examples/
# CSV data to pdbstore with `pdbcli convert`, assert the CSV ↔ pdbstore
# round trip is byte-stable, require bit-identical query output from
# pdbcli on both formats, exercise out-of-core execution (-max-memory
# plus -spill-dir completes where -max-memory alone aborts, with
# identical rows), and boot pdbserve -format pdbstore to byte-compare
# its NDJSON rows against the CSV-backed server. CI's `storage` job runs
# exactly this script (via `make storage-smoke`).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cli="$tmp/pdbcli"
srv="$tmp/pdbserve"
go build -o "$cli" ./cmd/pdbcli
go build -o "$srv" ./cmd/pdbserve

echo "== convert examples/data to pdbstore"
data="$tmp/data"
mkdir "$data"
for f in examples/data/*.csv; do
  name="$(basename "$f" .csv)"
  "$cli" convert "$f" "$data/$name.pdbs"
  [ "$(head -c 8 "$data/$name.pdbs")" = "PDBSTOR1" ]
done

echo "== CSV -> pdbstore -> CSV -> pdbstore is byte-stable"
"$cli" convert "$data/sensors.pdbs" "$tmp/sensors-rt.csv"
"$cli" convert "$tmp/sensors-rt.csv" "$tmp/sensors-rt.pdbs"
cmp "$data/sensors.pdbs" "$tmp/sensors-rt.pdbs"

query='conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));'

echo "== pdbcli output is bit-identical across formats"
"$cli" -rel sensors=examples/data/sensors.csv -query "$query" > "$tmp/out-csv.txt"
"$cli" -rel sensors="$data/sensors.pdbs" -query "$query" > "$tmp/out-store.txt"
cmp "$tmp/out-csv.txt" "$tmp/out-store.txt"
grep -q 's1' "$tmp/out-csv.txt"

echo "== -format pdbstore rejects a CSV source"
if "$cli" -format pdbstore -rel sensors=examples/data/sensors.csv \
    -query "$query" >/dev/null 2>&1; then
  echo "expected -format pdbstore to reject a CSV file"; exit 1
fi

echo "== an over-budget join aborts without a spill dir..."
joinq='project[sensor, room](union(join(sensors, rooms), join(sensors, rooms)));'
rels=(-rel sensors=examples/data/sensors.csv -rel rooms=examples/data/rooms.csv)
"$cli" "${rels[@]}" -query "$joinq" > "$tmp/join-free.txt"
if "$cli" "${rels[@]}" -max-memory 300 -query "$joinq" > /dev/null 2> "$tmp/limit-err.txt"; then
  echo "expected a memory limit error"; exit 1
fi
grep -q 'memory limit exceeded' "$tmp/limit-err.txt"

echo "== ...and completes bit-identically with one"
"$cli" "${rels[@]}" -max-memory 300 -spill-dir "$tmp" -query "$joinq" > "$tmp/join-spill.txt"
cmp "$tmp/join-free.txt" "$tmp/join-spill.txt"

echo "== pdbserve -format pdbstore serves rows byte-identical to CSV mode"
req='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":7}'
serve_rows() { # serve_rows <datadir> <format> <addr> <out>
  "$srv" -addr "$3" -datadir "$1" -format "$2" &
  local pid=$!
  for _ in $(seq 1 50); do
    curl -sf "http://$3/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -sf "http://$3/v1/query" -d "$req" | grep '"row"' > "$4"
  kill "$pid"
  wait "$pid" 2>/dev/null || true
}
serve_rows examples/data csv 127.0.0.1:18098 "$tmp/rows-csv.txt"
serve_rows "$data" pdbstore 127.0.0.1:18099 "$tmp/rows-store.txt"
[ -s "$tmp/rows-csv.txt" ]
cmp "$tmp/rows-csv.txt" "$tmp/rows-store.txt"

echo "storage smoke OK"
