#!/usr/bin/env bash
# End-to-end smoke of horizontal sharding: build pdbserve, boot two shard
# processes and a coordinator over them plus a single-node comparison
# server, and assert (1) the coordinator's NDJSON query output is
# byte-identical to the single-node server's under one seed — the
# bit-identity contract across process boundaries — (2) the per-shard
# pdb_cluster_* metric series move, (3) killing a shard does NOT fail
# queries: the breaker trips, chunk ranges fail over to the survivor, and
# the rows stay byte-identical to the single-node answer, (4) killing the
# last shard yields a fast typed error (and /readyz goes 503) rather than
# a hang, (5) a SIGHUP quota reload takes effect without a restart, and
# (6) everything shuts down gracefully. CI's `cluster` job runs exactly
# this script (via `make cluster-smoke`), so a local pass means a green
# job. Deterministic fault shapes beyond a clean kill (resets, latency,
# truncated frames) live in scripts/chaos-smoke.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

shard1=127.0.0.1:19101
shard2=127.0.0.1:19102
coord=127.0.0.1:19103
single=127.0.0.1:19104
tmp="$(mktemp -d)"
bin="$tmp/pdbserve"
go build -o "$bin" ./cmd/pdbserve

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== boot two shards, the coordinator, and a single-node comparison server"
"$bin" -shard -addr "$shard1" & pids+=($!)
shard1_pid=$!
"$bin" -shard -addr "$shard2" & pids+=($!)
shard2_pid=$!
sleep 0.5

# Initially the bursty tenant is unlimited; the file is tightened and
# reloaded via SIGHUP further down.
cat > "$tmp/quotas.conf" <<'EOF'
# cluster-smoke quotas
bursty =
EOF

"$bin" -addr "$coord" -datadir examples/data \
  -coordinator -peers "$shard1,$shard2" \
  -tenant-header X-Pdb-Tenant -quota-file "$tmp/quotas.conf" & pids+=($!)
coord_pid=$!
"$bin" -addr "$single" -datadir examples/data & pids+=($!)

for a in "$coord" "$single"; do
  for _ in $(seq 1 50); do
    curl -sf "http://$a/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -sf "http://$a/healthz" | grep '"ok":true' >/dev/null
done

req='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":7}'

echo "== clustered rows are byte-identical to single-node rows"
cl="$(curl -sf "http://$coord/v1/query" -d "$req" | grep '"row"')"
sn="$(curl -sf "http://$single/v1/query" -d "$req" | grep '"row"')"
echo "$cl"
[ -n "$cl" ]
[ "$cl" = "$sn" ]

echo "== coordinator stats and metrics report per-shard activity"
stats="$(curl -sf "http://$coord/v1/stats")"
echo "$stats" | grep -q '"cluster"'
echo "$stats" | grep -q '"shards_total":2'
echo "$stats" | grep -qE '"batches":[1-9]'
metrics="$(curl -sf "http://$coord/metrics")"
echo "$metrics" | grep -q '^# TYPE pdb_cluster_shard_rpcs_total counter$'
echo "$metrics" | grep -qE "^pdb_cluster_shard_rpcs_total\{shard=\"$shard1\"\} [1-9]"
echo "$metrics" | grep -qE "^pdb_cluster_shard_rpcs_total\{shard=\"$shard2\"\} [1-9]"
echo "$metrics" | grep -q "^pdb_cluster_shard_healthy{shard=\"$shard1\"} 1$"
echo "$metrics" | grep -qE '^pdb_cluster_batches_total [1-9]'

echo "== SIGHUP quota reload tightens a tenant without a restart"
# Tighten the file, reload, then overdraw: the first sampling query is
# admitted (one overdraw allowed) and leaves the tenant in deep rate
# debt, so the next query is shed with 429 — all without a restart.
cat > "$tmp/quotas.conf" <<'EOF'
bursty = trials_per_sec:1, burst:1
EOF
kill -HUP "$coord_pid"
sleep 0.5
treq='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":11}'
code="$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Pdb-Tenant: bursty' "http://$coord/v1/query" -d "$treq")"
[ "$code" = "200" ]
code="$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Pdb-Tenant: bursty' "http://$coord/v1/query" -d "$treq")"
[ "$code" = "429" ]
curl -sf "http://$coord/metrics" | grep -E '^pdb_quota_reloads_total\{outcome="ok"\} [1-9]' >/dev/null

echo "== killing a shard fails over: queries still succeed, bit-identically"
curl -sf "http://$coord/readyz" | grep '"ready":true' >/dev/null
kill "$shard2_pid"
wait "$shard2_pid" 2>/dev/null || true
# A fresh seed forces sampling (and with it shard RPCs); the victim's
# chunk ranges are re-dispatched to the survivor, so the rows match the
# single-node answer byte for byte.
freq='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":23}'
fcl="$(curl -sf -m 120 "http://$coord/v1/query" -d "$freq" | grep '"row"')"
fsn="$(curl -sf "http://$single/v1/query" -d "$freq" | grep '"row"')"
echo "$fcl"
[ -n "$fcl" ]
[ "$fcl" = "$fsn" ]
metrics="$(curl -sf "http://$coord/metrics")"
echo "$metrics" | grep -q "^pdb_cluster_shard_healthy{shard=\"$shard2\"} 0$"
echo "$metrics" | grep -qE "^pdb_cluster_shard_failures_total\{shard=\"$shard2\"\} [1-9]"
echo "$metrics" | grep -qE '^pdb_cluster_failovers_total [1-9]'
# Degraded but serving: the node stays ready while one shard survives.
curl -sf "http://$coord/readyz" | grep '"ready":true' >/dev/null

echo "== warm queries (cached, no sampling) still succeed with a shard down"
out="$(curl -sf "http://$coord/v1/query" -d "$req")"
echo "$out" | grep -q '"sampled_trials":0'
[ "$(echo "$out" | grep '"row"')" = "$cl" ]

echo "== killing the last shard yields a fast typed error and a 503 readyz"
kill "$shard1_pid"
wait "$shard1_pid" 2>/dev/null || true
dreq='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":31}'
body="$(curl -s -m 120 "http://$coord/v1/query" -d "$dreq")"
echo "$body"
echo "$body" | grep -q '"kind":"internal"'
echo "$body" | grep -qE 'cluster shard|no healthy shard'
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$coord/readyz")"
[ "$code" = "503" ]
# Liveness is about the process, not the cluster.
curl -sf "http://$coord/healthz" | grep '"ok":true' >/dev/null

echo "== graceful shutdown exits 0 everywhere"
kill -TERM "$coord_pid"
wait "$coord_pid"
for pid in "${pids[@]}"; do
  [ "$pid" = "$shard2_pid" ] && continue
  [ "$pid" = "$coord_pid" ] && continue
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
done
trap - EXIT
echo "cluster smoke OK"
