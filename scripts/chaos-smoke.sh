#!/usr/bin/env bash
# Deterministic chaos smoke of the fault-tolerant scatter-gather path:
# boot three shard processes, put each behind a seeded faultproxy (one of
# them injecting 300ms of per-frame latency to provoke hedging), and run
# a coordinator over the proxies plus a single-node comparison server.
# Then (1) assert clustered NDJSON output is byte-identical to the
# single-node answer, (2) kill one shard mid-sweep (SIGUSR1 makes its
# proxy reset live connections and refuse new ones) and assert queries
# STILL succeed byte-identically while the breaker trips and
# pdb_cluster_failovers_total moves, (3) restore the shard (SIGUSR2) and
# watch the background probe re-admit it (breaker state back to closed),
# (4) assert the straggling shard provoked hedged dispatches, and (5)
# shut everything down cleanly. CI's `chaos` job runs exactly this script
# (via `make chaos-smoke`), so a local pass means a green job.
set -euo pipefail
cd "$(dirname "$0")/.."

shard1=127.0.0.1:19301
shard2=127.0.0.1:19302
shard3=127.0.0.1:19303
proxy1=127.0.0.1:19311
proxy2=127.0.0.1:19312
proxy3=127.0.0.1:19313
coord=127.0.0.1:19321
single=127.0.0.1:19322
tmp="$(mktemp -d)"
go build -o "$tmp/pdbserve" ./cmd/pdbserve
go build -o "$tmp/faultproxy" ./cmd/faultproxy

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== boot three shards, three fault proxies, coordinator, single-node"
"$tmp/pdbserve" -shard -addr "$shard1" & pids+=($!)
"$tmp/pdbserve" -shard -addr "$shard2" & pids+=($!)
"$tmp/pdbserve" -shard -addr "$shard3" & pids+=($!)
sleep 0.5
"$tmp/faultproxy" -listen "$proxy1" -backend "$shard1" -seed 7 & pids+=($!)
"$tmp/faultproxy" -listen "$proxy2" -backend "$shard2" -seed 7 & pids+=($!)
proxy2_pid=$!
# The third shard is a permanent straggler: every frame through its proxy
# is delayed 300ms (seeded ±20% jitter), far past the 100ms hedge delay.
"$tmp/faultproxy" -listen "$proxy3" -backend "$shard3" -seed 7 \
  -fault "default=delay,latency=300ms" & pids+=($!)
sleep 0.5

"$tmp/pdbserve" -addr "$coord" -datadir examples/data \
  -coordinator -peers "$proxy1,$proxy2,$proxy3" \
  -cluster-retries 1 -breaker-threshold 1 -probe-interval 200ms \
  -hedge-after 100ms & pids+=($!)
coord_pid=$!
"$tmp/pdbserve" -addr "$single" -datadir examples/data & pids+=($!)

for a in "$coord" "$single"; do
  for _ in $(seq 1 50); do
    curl -sf "http://$a/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -sf "http://$a/healthz" | grep '"ok":true' >/dev/null
done

q() { # q SEED HOST -> row lines
  curl -sf -m 120 "http://$2/v1/query" \
    -d '{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":'"$1"'}' \
    | grep '"row"'
}

echo "== healthy cluster: rows byte-identical to single-node"
cl="$(q 7 "$coord")"
sn="$(q 7 "$single")"
echo "$cl"
[ -n "$cl" ]
[ "$cl" = "$sn" ]
curl -sf "http://$coord/readyz" | grep '"ready":true' >/dev/null

echo "== kill shard 2 (proxy resets + refuses): queries fail over, bits unchanged"
kill -USR1 "$proxy2_pid"
sleep 0.2
[ "$(q 23 "$coord")" = "$(q 23 "$single")" ]
metrics="$(curl -sf "http://$coord/metrics")"
echo "$metrics" | grep -qE '^pdb_cluster_failovers_total [1-9]'
echo "$metrics" | grep -q "^pdb_cluster_shard_breaker_state{shard=\"$proxy2\"} 2$"
echo "$metrics" | grep -q "^pdb_cluster_shard_healthy{shard=\"$proxy2\"} 0$"
# Two of three shards remain: degraded but ready.
curl -sf "http://$coord/readyz" | grep '"ready":true' >/dev/null
curl -sf "http://$coord/readyz" | grep '"degraded":true' >/dev/null

echo "== restore shard 2: the background probe re-admits it"
kill -USR2 "$proxy2_pid"
ok=""
for _ in $(seq 1 50); do
  if curl -sf "http://$coord/metrics" | grep "^pdb_cluster_shard_breaker_state{shard=\"$proxy2\"} 0$" >/dev/null; then
    ok=1; break
  fi
  sleep 0.2
done
[ -n "$ok" ]
curl -sf "http://$coord/metrics" | grep -E '^pdb_cluster_probes_total [1-9]' >/dev/null
[ "$(q 31 "$coord")" = "$(q 31 "$single")" ]
curl -sf "http://$coord/readyz" | grep '"ready":true' >/dev/null

echo "== the straggling shard provoked hedged dispatches"
curl -sf "http://$coord/metrics" | grep -E '^pdb_cluster_hedges_total [1-9]' >/dev/null

echo "== /v1/stats carries the failover accounting"
stats="$(curl -sf "http://$coord/v1/stats")"
echo "$stats" | grep -qE '"failovers":[1-9]'
echo "$stats" | grep -q '"breaker":"closed"'

echo "== graceful shutdown exits 0 everywhere"
kill -TERM "$coord_pid"
wait "$coord_pid"
for pid in "${pids[@]}"; do
  [ "$pid" = "$coord_pid" ] && continue
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
done
trap - EXIT
echo "chaos smoke OK"
