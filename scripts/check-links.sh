#!/usr/bin/env bash
# Check that every relative Markdown link in the repo's docs resolves to
# an existing file. External (http/https/mailto) and pure-anchor links
# are skipped; a `path#anchor` link is checked for the path part only.
# Run by `make links-check` (part of `make ci`), so a renamed or deleted
# doc breaks the build instead of silently 404ing readers.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
  # Pull out every (target) of an inline [text](target) link, after
  # dropping fenced code blocks and inline code spans — UA query syntax
  # like `repairkey[@Count](Coins)` would otherwise read as a link.
  prose="$(awk '/^[[:space:]]*```/ {fence = !fence; next} !fence' "$file" | sed -E 's/`[^`]*`//g')"
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$(dirname "$file")/$path" ]; then
      echo "$file: broken link: $target"
      fail=1
    fi
  done < <(grep -oE '\[[^][]*\]\([^()[:space:]]+\)' <<<"$prose" | sed -E 's/^\[[^][]*\]\(([^()]+)\)$/\1/')
done < <(git ls-files '*.md' ':!:.claude/**')

if [ "$fail" -ne 0 ]; then
  echo "docs link check failed"
  exit 1
fi
echo "docs link check OK"
