#!/usr/bin/env bash
# End-to-end smoke of the pdbserve query service: build the binary, boot
# it against the examples/ CSV data, drive it with curl — JSON rows, a
# stats trailer, cross-request estimator-cache reuse, the typed limit
# error — and assert a graceful SIGTERM shutdown exits 0. CI's `service`
# job runs exactly this script (via `make service-smoke`), so a local pass
# means a green job.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18097
bin="$(mktemp -d)/pdbserve"
go build -o "$bin" ./cmd/pdbserve

"$bin" -addr "$addr" -datadir examples/data &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$addr/healthz" | grep -q '"ok":true'

req='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":7}'

echo "== cold query"
out1="$(curl -sf "http://$addr/v1/query" -d "$req")"
echo "$out1"
echo "$out1" | grep -q '"columns":\["sensor","P"\]'
echo "$out1" | grep -q '"row":{.*"sensor":"s1"'
echo "$out1" | grep -q '"stats":{'
echo "$out1" | grep -qE '"sampled_trials":[1-9]'

echo "== warm query (content-keyed cache must replay, sampling nothing)"
out2="$(curl -sf "http://$addr/v1/query" -d "$req")"
echo "$out2"
echo "$out2" | grep -q '"sampled_trials":0'
echo "$out2" | grep -qE '"reused_trials":[1-9]'
echo "$out2" | grep -qE '"cache_hits":[1-9]'
# The rows themselves must be identical to the cold run.
[ "$(echo "$out1" | grep '"row"')" = "$(echo "$out2" | grep '"row"')" ]

echo "== stats endpoint"
stats="$(curl -sf "http://$addr/v1/stats")"
echo "$stats"
echo "$stats" | grep -qE '"cache_hits":[1-9]'
echo "$stats" | grep -q '"requests":2'

echo "== per-request trial limit maps to 422"
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/query" \
  -d '{"program":"conf as P (project[sensor](repairkey[sensor @ w](sensors)));","max_trials":10,"conf_epsilon":0.01,"conf_delta":0.01}')"
[ "$code" = "422" ]

echo "== graceful shutdown exits 0"
kill -TERM "$pid"
wait "$pid"
trap - EXIT
echo "service smoke OK"
