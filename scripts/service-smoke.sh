#!/usr/bin/env bash
# End-to-end smoke of the pdbserve query service: build the binary, boot
# it against the examples/ CSV data with tenant quotas configured, drive
# it with curl — JSON rows, a stats trailer, cross-request
# estimator-cache reuse, the /metrics exposition, an over-quota tenant's
# 429 + Retry-After, the typed limit error — and assert a graceful
# SIGTERM shutdown exits 0. CI's `service` job runs exactly this script
# (via `make service-smoke`), so a local pass means a green job.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18097
bin="$(mktemp -d)/pdbserve"
go build -o "$bin" ./cmd/pdbserve

# Tenant scoping on (header X-Pdb-Tenant), one deliberately tiny quota
# for the 429 assertion; untenanted requests fall back to the unlimited
# default quota, so the protocol assertions below are unaffected.
"$bin" -addr "$addr" -datadir examples/data \
  -tenant-header X-Pdb-Tenant \
  -tenant bursty=trials_per_sec:1,burst:1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$addr/healthz" | grep '"ok":true' >/dev/null

req='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":7}'

echo "== cold query"
out1="$(curl -sf "http://$addr/v1/query" -d "$req")"
echo "$out1"
echo "$out1" | grep -q '"columns":\["sensor","P"\]'
echo "$out1" | grep -q '"row":{.*"sensor":"s1"'
echo "$out1" | grep -q '"stats":{'
echo "$out1" | grep -qE '"sampled_trials":[1-9]'

echo "== warm query (content-keyed cache must replay, sampling nothing)"
out2="$(curl -sf "http://$addr/v1/query" -d "$req")"
echo "$out2"
echo "$out2" | grep -q '"sampled_trials":0'
echo "$out2" | grep -qE '"reused_trials":[1-9]'
echo "$out2" | grep -qE '"cache_hits":[1-9]'
# The rows themselves must be identical to the cold run.
[ "$(echo "$out1" | grep '"row"')" = "$(echo "$out2" | grep '"row"')" ]

echo "== stats endpoint"
stats="$(curl -sf "http://$addr/v1/stats")"
echo "$stats"
echo "$stats" | grep -qE '"cache_hits":[1-9]'
echo "$stats" | grep -q '"requests":2'

echo "== /metrics serves Prometheus text exposition with moving counters"
ctype="$(curl -sf -o /dev/null -w '%{content_type}' "http://$addr/metrics")"
case "$ctype" in text/plain*version=0.0.4*) ;; *) echo "bad content type: $ctype"; exit 1;; esac
metrics="$(curl -sf "http://$addr/metrics")"
echo "$metrics" | grep -q '^# TYPE pdb_http_requests_total counter$'
echo "$metrics" | grep -q '^pdb_http_requests_total{route="/v1/query",status="200"} 2$'
echo "$metrics" | grep -qE '^pdb_engine_sampled_trials_total [1-9]'
echo "$metrics" | grep -qE '^pdb_engine_reused_trials_total [1-9]'
echo "$metrics" | grep -qE '^pdb_engine_cache_hits_total [1-9]'
echo "$metrics" | grep -qE '^pdb_http_request_duration_seconds_count\{route="/v1/query"\} 2$'

echo "== over-quota tenant gets 429 + Retry-After; other traffic unaffected"
# A fresh seed: cached estimator state is seed-guarded, so the bursty
# tenant's first query re-samples every trial (reused trials are free
# and would not overdraw the 1-trial/sec bucket). The second query must
# then be rejected while untenanted requests keep succeeding.
treq='{"program":"conf as P (project[sensor](select[temp >= 21](repairkey[sensor @ w](sensors))));","seed":11}'
code="$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Pdb-Tenant: bursty' "http://$addr/v1/query" -d "$treq")"
[ "$code" = "200" ]
hdrs="$(mktemp)"
body="$(curl -s -D "$hdrs" -H 'X-Pdb-Tenant: bursty' "http://$addr/v1/query" -d "$treq")"
echo "$body"
grep -i '^HTTP/' "$hdrs" | grep -q 429
grep -iqE '^Retry-After: [1-9]' "$hdrs"
echo "$body" | grep -q '"kind":"overloaded"'
curl -sf "http://$addr/v1/query" -d "$req" >/dev/null   # untenanted: still 200
curl -sf "http://$addr/metrics" | grep '^pdb_tenant_rejections_total{tenant="bursty",reason="rate"} 1$' >/dev/null

echo "== per-request trial limit maps to 422"
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/query" \
  -d '{"program":"conf as P (project[sensor](repairkey[sensor @ w](sensors)));","max_trials":10,"conf_epsilon":0.01,"conf_delta":0.01}')"
[ "$code" = "422" ]

echo "== graceful shutdown exits 0"
kill -TERM "$pid"
wait "$pid"
trap - EXIT
echo "service smoke OK"
