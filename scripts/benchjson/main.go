// Command benchjson renders `go test -bench` output as structured JSON.
// It reads the benchmark text from stdin and writes one JSON document to
// stdout: the run's environment header (goos, goarch, cpu, package) and
// every benchmark line with its iteration count and all reported metrics
// (ns/op, B/op, allocs/op, and any b.ReportMetric custom units). The
// bench-json make target pipes the full benchmark sweep through it to
// produce BENCH_koch08.json, the repo's committed benchmark snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	doc := document{Benchmarks: []benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line:
//
//	BenchmarkName/sub-8   123   456.7 ns/op   89 B/op   1 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBench(line, pkg string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{
		Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
		Package:    pkg,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS marker of a benchmark
// name, or "" when the name has none.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
