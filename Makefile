# Single source of truth for build/verify commands: CI invokes these same
# targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench bench-json conformance fuzz vet fmt-check docs-check links-check examples service-smoke cluster-smoke chaos-smoke storage-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Build and run every examples/ program: the examples are executable
# documentation of the public pdb API, so a pass means the documented
# usage actually works end to end.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		[ -f "$$d/main.go" ] || continue; \
		echo "== running $$d"; \
		$(GO) run ./$$d > /dev/null; \
	done

# Race-check everything: the scheduler, the mergeable estimator, the
# parallel engine, the shared cross-query engine cache, and the HTTP
# service (whose tests hammer one engine from many goroutines).
race:
	$(GO) test -race ./...

# Build pdbserve, boot it on the examples/ data, and drive it end to end
# with curl (JSON rows, cache reuse, limit errors, graceful shutdown).
service-smoke:
	./scripts/service-smoke.sh

# Boot two shard processes and a coordinator, assert the coordinator's
# query output is byte-identical to a single-node server's, reload quotas
# via SIGHUP, kill a shard and require bit-identical failover (and a fast
# typed error only once every shard is gone).
cluster-smoke:
	./scripts/cluster-smoke.sh

# Deterministic chaos: three shards behind seeded fault proxies (resets,
# latency), kill and restore one mid-sweep, assert byte-identical output,
# breaker trip + probe re-admission, and hedging — all via /metrics.
chaos-smoke:
	./scripts/chaos-smoke.sh

# Storage-layer smoke: pdbcli convert over the examples/ data, byte-stable
# CSV ↔ pdbstore round trip, bit-identical query output across formats
# (CLI and pdbserve NDJSON), and out-of-core -spill-dir completion of an
# over-budget join.
storage-smoke:
	./scripts/storage-smoke.sh

# One pass over every benchmark — the trajectory baseline CI uploads as an
# artifact; not a statistically stable measurement. -benchmem puts B/op
# and allocs/op into the baseline so the benchstat gate can flag
# allocation regressions on the exact-algebra hot path, not just time.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

# Render the full benchmark sweep as BENCH_koch08.json — the committed
# structured snapshot (and a CI artifact). Includes the stratified
# Karp-Luby trial-savings numbers reported via b.ReportMetric.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./... > bench-json.tmp
	$(GO) run ./scripts/benchjson < bench-json.tmp > BENCH_koch08.json
	@rm -f bench-json.tmp

# Exhaustive statistical conformance sweep: many seeds through the
# workload corpus on both estimation paths, asserting empirical (ε, δ)
# coverage. The quick form already runs inside `make test`; this form is
# behind a build tag purely for time.
conformance:
	$(GO) test -tags conformance -v ./internal/conformance/

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/parser
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=10s ./internal/cluster
	$(GO) test -fuzz=FuzzClientHandshake -fuzztime=10s ./internal/cluster
	$(GO) test -fuzz=FuzzDecodeSampleResult -fuzztime=10s ./internal/cluster
	$(GO) test -fuzz=FuzzStore -fuzztime=10s ./internal/store

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Every package (internal, cmd, examples, root) must carry a package-level
# godoc comment; `go list`'s .Doc field is empty when one is missing.
docs-check:
	@missing="$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)"; \
	if [ -n "$$missing" ]; then \
		echo "packages missing a godoc package comment:"; \
		echo "$$missing"; exit 1; fi

# Every relative Markdown link must resolve to an existing file, so the
# docs set (README, docs/*, examples/README) cannot silently rot.
links-check:
	./scripts/check-links.sh

ci: vet fmt-check docs-check links-check build test race fuzz examples service-smoke cluster-smoke chaos-smoke storage-smoke
