package cluster

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// Connection-pool hygiene: a connection that produced any error — a
// half-read frame, a deadline expiry, a malformed response — must be
// closed and dropped, never returned to the idle pool, because its
// stream position is unknown and the next RPC would read leftover bytes
// as its own response.

// evilShard is a protocol double that handshakes correctly, then
// misbehaves on the first connection per the mode and behaves on later
// ones — so a test can assert the poisoned connection was abandoned and
// the next call dialed fresh.
type evilShard struct {
	ln    net.Listener
	conns atomic.Int64
	mode  string // "halfframe" (write a partial frame, stall) | "garbage"
}

func startEvilShard(t *testing.T, mode string) *evilShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ev := &evilShard{ln: ln, mode: mode}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := ev.conns.Add(1)
			go ev.serve(conn, n)
		}
	}()
	return ev
}

func (ev *evilShard) serve(conn net.Conn, n int64) {
	defer conn.Close()
	typ, payload, err := readFrame(conn)
	if err != nil || checkHello(typ, payload) != nil {
		return
	}
	var ack enc
	ack.uv(protocolVersion)
	if writeFrame(conn, msgHelloAck, ack.b) != nil {
		return
	}
	for {
		typ, _, err := readFrame(conn)
		if err != nil {
			return
		}
		if n == 1 {
			switch ev.mode {
			case "halfframe":
				// Claim a 64-byte frame, deliver 10 bytes, stall: the
				// client's deadline fires mid-frame.
				conn.Write([]byte{0, 0, 0, 64, msgPong, 1, 2, 3, 4, 5, 6, 7, 8, 9})
				time.Sleep(10 * time.Second)
				return
			case "garbage":
				// A complete frame of an unexpected type.
				_ = writeFrame(conn, msgHello, []byte("surprise"))
				continue
			}
		}
		if typ == msgPing {
			if writeFrame(conn, msgPong, nil) != nil {
				return
			}
		}
	}
}

func poolTestCoordinator(t *testing.T, addr string) *Coordinator {
	t.Helper()
	c, err := New(Config{
		Peers:            []string{addr},
		DialTimeout:      time.Second,
		RequestTimeout:   300 * time.Millisecond,
		Retries:          0,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: -1, // keep admitting; this test is about the pool
		ProbeInterval:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// SHALL: a connection poisoned mid-frame (deadline expiry while a frame
// is half-read) is closed and dropped; the next RPC dials fresh and
// succeeds.
func TestPoolDropsConnectionPoisonedMidFrame(t *testing.T) {
	ev := startEvilShard(t, "halfframe")
	c := poolTestCoordinator(t, ev.ln.Addr().String())
	p := c.peer[0]

	if _, err := c.rpc(context.Background(), p, msgPing, nil); err == nil {
		t.Fatal("RPC against a stalling half-frame peer succeeded")
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 0 {
		t.Fatalf("poisoned connection returned to the pool (%d idle)", idle)
	}
	if _, err := c.rpc(context.Background(), p, msgPing, nil); err != nil {
		t.Fatalf("fresh RPC after poisoning failed: %v", err)
	}
	if n := ev.conns.Load(); n != 2 {
		t.Errorf("server saw %d connections, want 2 (poisoned one abandoned, second dialed fresh)", n)
	}
}

// SHALL: a complete but ill-typed response also poisons the connection —
// the stream may hold more unexpected bytes.
func TestPoolDropsConnectionAfterUnexpectedFrame(t *testing.T) {
	ev := startEvilShard(t, "garbage")
	c := poolTestCoordinator(t, ev.ln.Addr().String())
	p := c.peer[0]

	if _, err := c.rpc(context.Background(), p, msgPing, nil); err == nil {
		t.Fatal("RPC answered with a wrong-typed frame succeeded")
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 0 {
		t.Fatalf("connection with an ill-typed response returned to the pool (%d idle)", idle)
	}
	if _, err := c.rpc(context.Background(), p, msgPing, nil); err != nil {
		t.Fatalf("fresh RPC after ill-typed response failed: %v", err)
	}
	if n := ev.conns.Load(); n != 2 {
		t.Errorf("server saw %d connections, want 2", n)
	}
}

// SHALL: a healthy round trip does pool its connection (the hygiene rule
// drops only poisoned ones).
func TestPoolReusesHealthyConnection(t *testing.T) {
	ev := startEvilShard(t, "") // always well-behaved
	c := poolTestCoordinator(t, ev.ln.Addr().String())
	p := c.peer[0]
	for i := 0; i < 3; i++ {
		if _, err := c.rpc(context.Background(), p, msgPing, nil); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if n := ev.conns.Load(); n != 1 {
		t.Errorf("server saw %d connections for 3 healthy pings, want 1 (pooled reuse)", n)
	}
}
