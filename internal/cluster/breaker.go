package cluster

import "sync"

// Breaker states. A peer starts closed (admitting work). Exhausting the
// retry budget on Threshold consecutive RPCs trips it open: the planner
// skips it and no query pays its deadline again. The background prober
// moves an open breaker to half-open while a hello/ping probe is in
// flight; a successful probe closes it (automatic re-admission), a failed
// one re-opens it. Any successful RPC also closes the breaker directly —
// a peer that recovers mid-batch re-admits itself without waiting for a
// probe.
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// breakerStateNames renders states for stats, metrics, and the runbook.
var breakerStateNames = [...]string{"closed", "half-open", "open"}

// breaker is one peer's health automaton. Threshold <= 0 disables
// tripping entirely (the breaker stays closed forever).
type breaker struct {
	mu        sync.Mutex
	threshold int
	state     int
	consec    int // consecutive exhausted-retry failures while closed
}

func newBreaker(threshold int) *breaker {
	return &breaker{threshold: threshold}
}

// admit reports whether the planner may assign work to this peer.
func (b *breaker) admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// snapshot returns the state name for stats.
func (b *breaker) snapshot() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateNames[b.state]
}

// stateCode returns the numeric state (for the metrics gauge:
// 0 closed, 1 half-open, 2 open).
func (b *breaker) stateCode() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// recordSuccess resets the failure streak and closes the breaker: a peer
// that answered is healthy no matter what state the automaton was in.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	b.consec = 0
	b.state = breakerClosed
	b.mu.Unlock()
}

// recordFailure counts one exhausted-retry RPC failure and trips the
// breaker at the threshold. Returns true when this call tripped it.
func (b *breaker) recordFailure() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		return false
	}
	// A failure during half-open (a racing RPC, not the probe) re-opens.
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		return true
	}
	b.consec++
	if b.consec >= b.threshold {
		b.state = breakerOpen
		return true
	}
	return false
}

// forceOpen trips the breaker immediately (boot probe found the peer
// unreachable: skip it from the first plan, let probes re-admit it).
func (b *breaker) forceOpen() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerOpen
	b.mu.Unlock()
}

// probeBegin moves an open breaker to half-open and reports whether a
// probe should be sent; an already-probing or closed breaker declines.
func (b *breaker) probeBegin() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return false
	}
	b.state = breakerHalfOpen
	return true
}

// probeResult resolves a half-open probe: success re-admits the peer,
// failure re-opens the breaker.
func (b *breaker) probeResult(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerHalfOpen {
		return
	}
	if ok {
		b.state = breakerClosed
		b.consec = 0
	} else {
		b.state = breakerOpen
	}
}
