package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// Dispatch engine. SampleChunks plans one work unit per (task, peer)
// pair, fires one RPC per involved peer, and then runs a single-threaded
// event loop over completion/hedge events. Three recovery layers stack
// under it, all bit-neutral because any executor samples a chunk's fixed
// PRNG stream identically:
//
//  1. rpc() retries with backoff on fresh connections (transient faults);
//  2. a unit whose peer exhausted its retry budget fails over — it is
//     re-dispatched to a surviving peer the unit hasn't tried yet, then
//     to the coordinator-local sampler when LocalFallback is on;
//  3. a straggling dispatch is hedged after hedgeDelay to a second peer;
//     whichever response completes first is absorbed and the loser is
//     discarded by per-unit dedupe.
//
// Every chunk is absorbed exactly once: a unit flips done on its first
// complete, validated response and every later copy is dropped.

// unit is the failover/hedge granule: one task's chunk subset as planned
// for (or re-dispatched from) one executor.
type unit struct {
	task   int
	chunks []sched.Chunk
	trials int64 // expected Σ chunk.N — response validation

	done       bool
	inflight   int          // dispatches currently carrying this unit
	tried      map[int]bool // peer indexes already attempted
	triedLocal bool
}

// dispatch is one in-flight executor call carrying one or more units.
type dispatch struct {
	peerIdx int // index into c.peer, or -1 for coordinator-local
	units   []*unit
	hedge   bool // this dispatch is a hedge duplicate
	hedged  bool // this dispatch has already been hedged
}

// outcome is a finished dispatch: counts (one per unit, in unit order)
// or a typed error.
type outcome struct {
	d      *dispatch
	counts []core.RemoteCounts
	err    error
}

// event is what the gather loop consumes: a completed dispatch or a
// hedge timer firing for a straggler.
type event struct {
	out      *outcome
	hedgeFor *dispatch
}

// SampleChunks distributes the chunk lists of tasks across the cluster
// and returns merged per-task counts, implementing core.Distributor.
// The contract holds under failure: either every chunk of every task is
// counted exactly once (possibly by a non-owner shard or the coordinator
// itself), or a typed *Error is returned in bounded time.
func (c *Coordinator) SampleChunks(ctx context.Context, tasks []core.RemoteTask) ([]core.RemoteCounts, error) {
	c.batches.Add(1)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Plan: place every chunk on the ring, remapping chunks owned by
	// tripped peers onto admitting ones deterministically.
	avail := c.admitting()
	if len(avail) == 0 {
		return c.sampleAllLocal(tasks)
	}
	admits := make(map[int]bool, len(avail))
	for _, pi := range avail {
		admits[pi] = true
	}
	perPeer := make(map[int]map[int][]sched.Chunk) // peer -> task -> chunks
	for ti, t := range tasks {
		if len(t.Chunks) == 0 {
			continue
		}
		for _, ch := range t.Chunks {
			pi := c.ring.place(t.KeyHi, t.KeyLo, ch.Index)
			if !admits[pi] {
				pi = avail[pi%len(avail)]
			}
			m := perPeer[pi]
			if m == nil {
				m = map[int][]sched.Chunk{}
				perPeer[pi] = m
			}
			m[ti] = append(m[ti], ch)
		}
	}

	out := make([]core.RemoteCounts, len(tasks))
	units := make([]*unit, 0, len(tasks))
	events := make(chan event)
	batchDone := make(chan struct{})
	defer close(batchDone)
	var timers []*time.Timer
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	hedgeDelay, hedgeOK := c.hedgeDelay()

	// launch fires one dispatch asynchronously; its outcome (or the
	// batch ending first) is the only way the goroutine exits.
	launch := func(d *dispatch) {
		for _, u := range d.units {
			u.inflight++
			if d.peerIdx >= 0 {
				u.tried[d.peerIdx] = true
			} else {
				u.triedLocal = true
			}
		}
		reqTasks := make([]core.RemoteTask, len(d.units))
		for i, u := range d.units {
			rt := tasks[u.task]
			rt.Chunks = u.chunks
			reqTasks[i] = rt
		}
		if d.peerIdx < 0 {
			c.localFallbacks.Add(1)
			go func() {
				counts, err := c.sampleLocal(reqTasks)
				select {
				case events <- event{out: &outcome{d: d, counts: counts, err: err}}:
				case <-batchDone:
				}
			}()
			return
		}
		p := c.peer[d.peerIdx]
		payload := encodeSampleRequest(reqTasks)
		go func() {
			resp, err := c.rpc(ctx, p, msgSample, payload)
			var counts []core.RemoteCounts
			if err == nil {
				counts, err = decodeSampleResult(resp)
				if err == nil && len(counts) != len(d.units) {
					err = fmt.Errorf("cluster: shard returned %d results for %d tasks", len(counts), len(d.units))
				}
				if err != nil {
					err = &Error{Shard: p.addr, Attempts: 1, Err: err}
				}
			}
			select {
			case events <- event{out: &outcome{d: d, counts: counts, err: err}}:
			case <-batchDone:
			}
		}()
		if hedgeOK && !d.hedge && !d.hedged && len(c.peer) > 1 {
			d.hedged = true
			timers = append(timers, time.AfterFunc(hedgeDelay, func() {
				select {
				case events <- event{hedgeFor: d}:
				case <-batchDone:
				}
			}))
		}
	}

	// Initial dispatches: one RPC per involved peer, peers in index
	// order (determinism of the plan, not of the results, which merge
	// commutatively anyway).
	for pi := 0; pi < len(c.peer); pi++ {
		m, ok := perPeer[pi]
		if !ok {
			continue
		}
		d := &dispatch{peerIdx: pi}
		for ti := 0; ti < len(tasks); ti++ {
			chunks, ok := m[ti]
			if !ok {
				continue
			}
			u := &unit{task: ti, chunks: chunks, tried: map[int]bool{}}
			for _, ch := range chunks {
				u.trials += ch.N
			}
			units = append(units, u)
			d.units = append(d.units, u)
		}
		launch(d)
	}

	// redispatch re-scatters an orphaned unit (no copies in flight,
	// not done) after its carrier failed: next untried admitting peer,
	// then the local sampler. Returns the terminal error when the unit
	// has nowhere left to go.
	redispatch := func(u *unit, cause error) error {
		var target = -2 // -2 none, -1 local, >=0 peer
		for _, pi := range c.admitting() {
			if !u.tried[pi] {
				target = pi
				break
			}
		}
		if target == -2 && c.cfg.LocalFallback && !u.triedLocal {
			target = -1
		}
		if target == -2 {
			if cause == nil {
				cause = &Error{Shard: "cluster", Attempts: 1, Err: ErrNoHealthyShards}
			}
			return cause
		}
		launch(&dispatch{peerIdx: target, units: []*unit{u}})
		return nil
	}

	pending := len(units)
	for pending > 0 {
		var ev event
		select {
		case ev = <-events:
		case <-ctx.Done():
			return nil, &Error{Shard: "cluster", Attempts: 1, Err: ctx.Err()}
		}

		if ev.hedgeFor != nil {
			d := ev.hedgeFor
			var slow []*unit
			for _, u := range d.units {
				if !u.done {
					slow = append(slow, u)
				}
			}
			if len(slow) == 0 {
				continue
			}
			target := -1
			for _, pi := range c.admitting() {
				if pi != d.peerIdx {
					target = pi
					break
				}
			}
			if target < 0 {
				continue // nowhere to hedge to; the retry ladder still applies
			}
			c.hedges.Add(1)
			launch(&dispatch{peerIdx: target, units: slow, hedge: true})
			continue
		}

		o := ev.out
		if o.err != nil {
			// One failover per failed dispatch that still owed work —
			// whether an in-flight hedge already covers the units or
			// redispatch re-scatters them now.
			orphaned := false
			for _, u := range o.d.units {
				u.inflight--
				if u.done {
					continue
				}
				orphaned = true
				if u.inflight > 0 {
					continue // a hedge copy still carries this unit
				}
				if err := redispatch(u, o.err); err != nil {
					return nil, err
				}
			}
			if orphaned {
				c.failovers.Add(1)
			}
			continue
		}
		won := false
		start := time.Now()
		for i, u := range o.d.units {
			u.inflight--
			if u.done {
				continue // dedupe: an earlier copy already counted
			}
			rc := o.counts[i]
			if rc.Trials != u.trials {
				// A malformed count must not poison the estimate;
				// treat it as that unit failing and fail over.
				mis := &Error{
					Shard:    o.d.executor(c),
					Attempts: 1,
					Err:      fmt.Errorf("shard returned %d trials for a task assigned %d", rc.Trials, u.trials),
				}
				c.failovers.Add(1)
				if u.inflight > 0 {
					continue
				}
				if err := redispatch(u, mis); err != nil {
					return nil, err
				}
				continue
			}
			t := &out[u.task]
			t.Hits += rc.Hits
			t.Trials += rc.Trials
			t.PartialHits += rc.PartialHits
			t.PartialTrials += rc.PartialTrials
			t.ReusedTrials += rc.ReusedTrials
			u.done = true
			pending--
			won = true
		}
		c.mergeNanos.Add(time.Since(start).Nanoseconds())
		if won && o.d.hedge {
			c.hedgeWins.Add(1)
		}
	}
	return out, nil
}

// executor names a dispatch's target for error messages.
func (d *dispatch) executor(c *Coordinator) string {
	if d.peerIdx < 0 {
		return "local"
	}
	return c.peer[d.peerIdx].addr
}

// sampleAllLocal handles the no-healthy-shards plan: every task is
// sampled by the coordinator itself when LocalFallback allows it.
func (c *Coordinator) sampleAllLocal(tasks []core.RemoteTask) ([]core.RemoteCounts, error) {
	if !c.cfg.LocalFallback {
		return nil, &Error{Shard: "cluster", Attempts: 1, Err: ErrNoHealthyShards}
	}
	c.localFallbacks.Add(1)
	return c.sampleLocal(tasks)
}

// sampleLocal samples tasks on the coordinator's in-process fallback
// shard. Tasks round-trip through the wire codec first, so the
// variable-id remap — and with it every PRNG draw — is exactly what a
// real shard would have executed: the fallback is bit-identical, not
// merely approximately equal.
func (c *Coordinator) sampleLocal(tasks []core.RemoteTask) ([]core.RemoteCounts, error) {
	wt, err := decodeSampleRequest(encodeSampleRequest(tasks))
	if err != nil {
		return nil, &Error{Shard: "local", Attempts: 1, Err: err}
	}
	counts, err := c.localShard().sample(wt)
	if err != nil {
		return nil, &Error{Shard: "local", Attempts: 1, Err: err}
	}
	return counts, nil
}
