// Package cluster distributes Karp–Luby estimation across processes: a
// coordinator plans queries once and scatters typed chunk work units to
// shard servers over a length-prefixed binary framing on TCP (stdlib
// only), then gathers and merges the per-shard integer counts. Because a
// chunk's PRNG stream is fixed by (task seed, plan index) and merged
// counts are commutative sums, results are bit-identical to single-node
// execution for any shard count under one seed — the engine's
// worker-count determinism contract generalized to shard count.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dnf"
	"repro/internal/sched"
	"repro/internal/vars"
)

// Wire format. Every message is one frame:
//
//	[4-byte big-endian length][1-byte message type][payload]
//
// where length covers the type byte plus the payload. Integers inside
// payloads are unsigned varints unless noted; 64-bit hashes, seeds, and
// float bit patterns are fixed 8-byte big-endian words. Probabilities
// travel as math.Float64bits so they reconstruct bit-exactly — the
// determinism contract depends on it. A connection opens with
// hello/helloAck (magic + protocol version) and then carries synchronous
// request/response pairs: sample→sampleResult|error, ping→pong.
const (
	msgHello byte = iota + 1
	msgHelloAck
	msgSample
	msgSampleResult
	msgError
	msgPing
	msgPong
)

const (
	protocolMagic   uint32 = 0x70646263 // "pdbc"
	protocolVersion        = 1
	// maxFrame bounds a frame; a sample batch over a large clause set is
	// the biggest legitimate message.
	maxFrame = 1 << 28
)

// writeFrame sends one typed frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one typed frame.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: invalid frame length %d", n)
	}
	payload, err := readBounded(r, int(n-1))
	if err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// readChunk bounds each allocation step while reading a frame body.
const readChunk = 64 << 10

// readBounded reads exactly n bytes, but allocates in readChunk steps as
// the bytes actually arrive: a forged length prefix near maxFrame from an
// untrusted peer costs one 64KB buffer and a read error, not a 256MB
// up-front allocation.
func readBounded(r io.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	payload := make([]byte, 0, readChunk)
	for len(payload) < n {
		step := n - len(payload)
		if step > readChunk {
			step = readChunk
		}
		off := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// frameSize reports the on-wire size of a frame with the given payload.
func frameSize(payload []byte) int64 { return int64(5 + len(payload)) }

// checkHello validates the server half of the handshake: the first frame
// of a connection must be a hello carrying the magic and a matching
// protocol version. Malformed magic, version skew, and truncated
// payloads each yield a typed error (and never a panic), so the shard
// can answer with msgError before dropping the connection.
func checkHello(typ byte, payload []byte) error {
	if typ != msgHello {
		return fmt.Errorf("cluster: first frame is message type %d, want hello", typ)
	}
	d := dec{b: payload}
	if magic := d.u32(); d.err == nil && magic != protocolMagic {
		return fmt.Errorf("cluster: bad magic %#x", magic)
	}
	if v := d.uv(); d.err == nil && v != protocolVersion {
		return fmt.Errorf("cluster: client speaks protocol version %d, want %d", v, protocolVersion)
	}
	return d.err
}

// handshake performs the client half of hello/helloAck on a fresh
// connection. It takes the bare stream so tests can drive it against
// arbitrary (including adversarial) server bytes.
func handshake(conn io.ReadWriter) error {
	var e enc
	e.u32(protocolMagic)
	e.uv(protocolVersion)
	if err := writeFrame(conn, msgHello, e.b); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ == msgError {
		d := dec{b: payload}
		return fmt.Errorf("cluster: shard rejected handshake: %s", d.str())
	}
	if typ != msgHelloAck {
		return fmt.Errorf("cluster: handshake got message type %d", typ)
	}
	d := dec{b: payload}
	if v := d.uv(); d.err == nil && v != protocolVersion {
		return fmt.Errorf("cluster: shard speaks protocol version %d, want %d", v, protocolVersion)
	}
	return d.err
}

// enc is an append-only payload builder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32)  { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) uv(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string)  { e.uv(uint64(len(s))); e.b = append(e.b, s...) }

// dec is the matching cursor-based reader; the first malformed field
// poisons it and every later read returns zero values.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() { d.err = errors.New("cluster: truncated or malformed message") }

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		if d.err == nil {
			d.fail()
		}
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		if d.err == nil {
			d.fail()
		}
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) str() string {
	n := d.uv()
	if d.err != nil || d.off+int(n) > len(d.b) || n > uint64(len(d.b)) {
		if d.err == nil {
			d.fail()
		}
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// encodeTask serializes one RemoteTask. Variable ids are remapped to a
// dense local space in ascending original-id order — an order-preserving
// remap, so clause binding order (and with it the multiplication order of
// clause weights) is untouched and every derived float is bit-identical
// on the shard.
func encodeTask(e *enc, t core.RemoteTask) {
	e.u64(t.KeyHi)
	e.u64(t.KeyLo)
	e.i64(t.Seed)
	e.uv(uint64(t.ChunkSize))
	e.uv(uint64(t.MaxStrata))
	e.uv(uint64(t.Stratum))
	// Referenced variables, ascending by original id.
	seen := map[vars.Var]bool{}
	var used []vars.Var
	for _, a := range t.Clauses {
		for _, b := range a {
			if !seen[b.Var] {
				seen[b.Var] = true
				used = append(used, b.Var)
			}
		}
	}
	// Clause bindings are sorted by var id, but different clauses
	// interleave ids arbitrarily — sort the union once.
	sortVars(used)
	local := make(map[vars.Var]uint64, len(used))
	for i, v := range used {
		local[v] = uint64(i)
	}
	e.uv(uint64(len(used)))
	for _, v := range used {
		in := t.Vars.Info(v)
		e.str(in.Name)
		e.uv(uint64(len(in.Probs)))
		for _, p := range in.Probs {
			e.f64(p)
		}
	}
	e.uv(uint64(len(t.Clauses)))
	for _, a := range t.Clauses {
		e.uv(uint64(len(a)))
		for _, b := range a {
			e.uv(local[b.Var])
			e.uv(uint64(b.Alt))
		}
	}
	e.uv(uint64(len(t.Chunks)))
	for _, c := range t.Chunks {
		e.uv(uint64(c.Index))
		e.uv(uint64(c.N))
	}
}

func sortVars(vs []vars.Var) {
	// Insertion sort: clause sets reference their vars nearly in order
	// already and the slices are small relative to sampling cost.
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// wireTask is a decoded RemoteTask on the shard side: a self-contained
// clause set over a freshly restored variable table.
type wireTask struct {
	keyHi, keyLo uint64
	seed         int64
	chunkSize    int64
	maxStrata    int
	stratum      int
	clauses      dnf.F
	table        *vars.Table
	chunks       []sched.Chunk
}

// decodeTask parses one task payload section.
func decodeTask(d *dec) (wireTask, error) {
	var t wireTask
	t.keyHi = d.u64()
	t.keyLo = d.u64()
	t.seed = d.i64()
	t.chunkSize = int64(d.uv())
	t.maxStrata = int(d.uv())
	t.stratum = int(d.uv())
	nvars := d.uv()
	if d.err != nil || nvars > uint64(len(d.b)) {
		return t, errTrunc(d)
	}
	infos := make([]vars.Info, nvars)
	for i := range infos {
		name := d.str()
		nprobs := d.uv()
		if d.err != nil || nprobs == 0 || nprobs > uint64(len(d.b)) {
			return t, errTrunc(d)
		}
		probs := make([]float64, nprobs)
		for j := range probs {
			probs[j] = d.f64()
		}
		infos[i] = vars.Info{Name: name, Probs: probs}
	}
	t.table = vars.RestoreTable(infos)
	nclauses := d.uv()
	if d.err != nil || nclauses > uint64(len(d.b)) {
		return t, errTrunc(d)
	}
	t.clauses = make(dnf.F, nclauses)
	for i := range t.clauses {
		nb := d.uv()
		if d.err != nil || nb > uint64(len(d.b)) {
			return t, errTrunc(d)
		}
		a := make(vars.Assignment, nb)
		for j := range a {
			v := d.uv()
			alt := d.uv()
			if v >= nvars {
				d.fail()
				return t, errTrunc(d)
			}
			a[j] = vars.Binding{Var: vars.Var(v), Alt: int32(alt)}
		}
		t.clauses[i] = a
	}
	nchunks := d.uv()
	if d.err != nil || nchunks > uint64(len(d.b)) {
		return t, errTrunc(d)
	}
	t.chunks = make([]sched.Chunk, nchunks)
	for i := range t.chunks {
		t.chunks[i] = sched.Chunk{Index: int(d.uv()), N: int64(d.uv())}
	}
	if t.chunkSize <= 0 || t.stratum < 0 || t.maxStrata < 0 {
		d.fail()
	}
	return t, d.err
}

func errTrunc(d *dec) error {
	if d.err == nil {
		d.fail()
	}
	return d.err
}

// encodeSampleRequest builds a msgSample payload from a task batch.
func encodeSampleRequest(tasks []core.RemoteTask) []byte {
	var e enc
	e.uv(uint64(len(tasks)))
	for _, t := range tasks {
		encodeTask(&e, t)
	}
	return e.b
}

// decodeSampleRequest parses a msgSample payload.
func decodeSampleRequest(payload []byte) ([]wireTask, error) {
	d := &dec{b: payload}
	n := d.uv()
	if d.err != nil || n > uint64(len(payload)) {
		return nil, errTrunc(d)
	}
	tasks := make([]wireTask, n)
	for i := range tasks {
		t, err := decodeTask(d)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	return tasks, nil
}

// encodeSampleResult builds a msgSampleResult payload: one integer count
// record per task, in request order.
func encodeSampleResult(counts []core.RemoteCounts) []byte {
	var e enc
	e.uv(uint64(len(counts)))
	for _, c := range counts {
		e.uv(uint64(c.Hits))
		e.uv(uint64(c.Trials))
		e.uv(uint64(c.PartialHits))
		e.uv(uint64(c.PartialTrials))
		e.uv(uint64(c.ReusedTrials))
	}
	return e.b
}

// decodeSampleResult parses a msgSampleResult payload.
func decodeSampleResult(payload []byte) ([]core.RemoteCounts, error) {
	d := &dec{b: payload}
	n := d.uv()
	if d.err != nil || n > uint64(len(payload))+1 {
		return nil, errTrunc(d)
	}
	counts := make([]core.RemoteCounts, n)
	for i := range counts {
		counts[i] = core.RemoteCounts{
			Hits:          int64(d.uv()),
			Trials:        int64(d.uv()),
			PartialHits:   int64(d.uv()),
			PartialTrials: int64(d.uv()),
			ReusedTrials:  int64(d.uv()),
		}
	}
	return counts, d.err
}
