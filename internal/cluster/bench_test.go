package cluster_test

import (
	"context"
	"fmt"
	"testing"

	"repro/pdb"
)

// BenchmarkClusterScatterGather measures one fixed-budget clustered
// evaluation end to end — planning, scatter over loopback TCP, shard-side
// sampling, gather, merge — at 1, 2, and 4 in-process shards, with the
// single-node engine as the zero-RPC baseline. The seed varies per
// iteration so every run genuinely samples instead of replaying shard
// chunk caches.
func BenchmarkClusterScatterGather(b *testing.B) {
	db := skewDB(b)
	for _, shards := range []int{0, 1, 2, 4} {
		name := "local"
		if shards > 0 {
			name = fmt.Sprintf("shards=%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			var engOpts []pdb.EngineOption
			if shards > 0 {
				engOpts = append(engOpts, pdb.WithEngineCluster(pdb.ClusterOptions{
					Peers: startShards(b, shards),
				}))
			}
			eng, err := db.Engine(engOpts...)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			q, err := eng.Prepare(grpConfProgram)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := q.Eval(context.Background(),
					pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(int64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
