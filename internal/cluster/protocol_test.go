package cluster

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dnf"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/vars"
)

// testTask builds a RemoteTask with awkward content: sparse var ids,
// subnormal and near-one probabilities, and a partial chunk.
func testTask(t *testing.T) core.RemoteTask {
	t.Helper()
	table := vars.NewTable()
	var ids []vars.Var
	for _, n := range []string{"x0", "x1", "x2", "x3", "x4"} {
		ids = append(ids, table.Add(n, []float64{0.25, 0.5, 0.25}, nil))
	}
	f := dnf.F{
		{{Var: ids[4], Alt: 0}},
		{{Var: ids[1], Alt: 2}, {Var: ids[3], Alt: 1}},
		{{Var: ids[0], Alt: 1}, {Var: ids[2], Alt: 0}, {Var: ids[4], Alt: 2}},
	}
	return core.RemoteTask{
		KeyHi:     0xdeadbeefcafef00d,
		KeyLo:     0x0123456789abcdef,
		Seed:      -7,
		ChunkSize: 4096,
		MaxStrata: 4,
		Stratum:   2,
		Clauses:   f,
		Vars:      table,
		Chunks:    []sched.Chunk{{Index: 0, N: 4096}, {Index: 3, N: 100}},
	}
}

func TestSampleRequestRoundTrip(t *testing.T) {
	orig := testTask(t)
	payload := encodeSampleRequest([]core.RemoteTask{orig})
	got, err := decodeSampleRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d tasks, want 1", len(got))
	}
	w := got[0]
	if w.keyHi != orig.KeyHi || w.keyLo != orig.KeyLo || w.seed != orig.Seed ||
		w.chunkSize != orig.ChunkSize || w.maxStrata != orig.MaxStrata || w.stratum != orig.Stratum {
		t.Errorf("scalar fields diverge: %+v", w)
	}
	if len(w.clauses) != len(orig.Clauses) {
		t.Fatalf("decoded %d clauses, want %d", len(w.clauses), len(orig.Clauses))
	}
	// The remap is order-preserving: binding j of clause i names the same
	// variable (by name) with the same bit-exact probabilities.
	for i, a := range orig.Clauses {
		if len(w.clauses[i]) != len(a) {
			t.Fatalf("clause %d: %d bindings, want %d", i, len(w.clauses[i]), len(a))
		}
		for j, b := range a {
			wb := w.clauses[i][j]
			if wb.Alt != b.Alt {
				t.Errorf("clause %d binding %d: alt %d, want %d", i, j, wb.Alt, b.Alt)
			}
			oin, win := orig.Vars.Info(b.Var), w.table.Info(wb.Var)
			if win.Name != oin.Name {
				t.Errorf("clause %d binding %d: var %q, want %q", i, j, win.Name, oin.Name)
			}
			for k := range oin.Probs {
				if math.Float64bits(win.Probs[k]) != math.Float64bits(oin.Probs[k]) {
					t.Errorf("var %q prob %d not bit-exact", oin.Name, k)
				}
			}
		}
	}
	if len(w.chunks) != 2 || w.chunks[1] != (sched.Chunk{Index: 3, N: 100}) {
		t.Errorf("chunks diverge: %+v", w.chunks)
	}
}

func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	payload := encodeSampleRequest([]core.RemoteTask{testTask(t)})
	// Every truncation point must fail cleanly, never panic.
	for n := 0; n < len(payload); n++ {
		if _, err := decodeSampleRequest(payload[:n]); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", n)
		}
	}
	if _, err := decodeSampleResult([]byte{0xff}); err == nil {
		t.Error("corrupt result payload decoded successfully")
	}
}

func TestSampleResultRoundTrip(t *testing.T) {
	in := []core.RemoteCounts{
		{Hits: 1, Trials: 4096, PartialHits: 0, PartialTrials: 0, ReusedTrials: 4096},
		{Hits: 12345, Trials: 1 << 40, PartialHits: 7, PartialTrials: 100},
	}
	out, err := decodeSampleResult(encodeSampleResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d: %+v, want %+v", i, out[i], in[i])
		}
	}
}

// Placement SHALL be a pure function of (peer set, content key, chunk
// index): the same inputs place identically across coordinators, and
// every peer owns a reasonable share of a large chunk population.
func TestPlacementDeterministicAndSpread(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	r1, r2 := newRing(addrs, 64), newRing(addrs, 64)
	counts := make(map[int]int)
	for i := 0; i < 3000; i++ {
		hi := rel.Mix64(uint64(i) * 0x9e3779b97f4a7c15)
		lo := rel.Mix64(hi + 1)
		p := r1.place(hi, lo, i%7)
		if q := r2.place(hi, lo, i%7); q != p {
			t.Fatalf("placement not deterministic: %d vs %d", p, q)
		}
		counts[p]++
	}
	for p, n := range counts {
		if n < 500 {
			t.Errorf("peer %d owns only %d/3000 placements", p, n)
		}
	}
	// Chunk indexes round-robin away from the owner: consecutive chunks of
	// one task land on different peers.
	if a, b := r1.place(1, 2, 0), r1.place(1, 2, 1); a == b {
		t.Error("consecutive chunks placed on the same peer in a 3-peer ring")
	}
}
