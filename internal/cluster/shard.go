package cluster

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/karpluby"
	"repro/internal/sched"
)

// ShardConfig configures a shard server.
type ShardConfig struct {
	// Workers sizes the sampling pool (0 = GOMAXPROCS, like the engine).
	Workers int
	// CacheChunks bounds the shard-local chunk-count cache (entries;
	// 0 = DefaultCacheChunks, negative disables caching).
	CacheChunks int
	// Logger receives connection-level diagnostics; nil disables them.
	Logger *log.Logger
}

// DefaultCacheChunks is the default chunk-count cache bound.
const DefaultCacheChunks = 1 << 16

// Shard is a sampling server: it owns no data and no query planning —
// it receives self-contained estimation tasks (clause set, bit-exact
// probabilities, seed, chunk list), samples the assigned chunk streams on
// a local worker pool, and returns integer counts. A chunk's result is a
// pure function of (content key, seed, plan index, trial count), so the
// shard memoizes chunk counts in a bounded LRU: a re-scattered chunk —
// after a coordinator restart or cache eviction — is served without
// re-sampling and reported as reused.
type Shard struct {
	cfg  ShardConfig
	pool *sched.Pool

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]bool
	closed  bool
	lru     *list.List // of *chunkEntry, front = most recent
	entries map[chunkKey]*list.Element

	wg sync.WaitGroup

	requests      atomic.Int64
	tasks         atomic.Int64
	chunksSampled atomic.Int64
	trialsSampled atomic.Int64
	trialsReused  atomic.Int64
}

// chunkKey identifies one sampled chunk: the task's content fingerprint,
// its (stratum-resolved) seed and stratification coordinates, and the
// chunk's plan index and trial count.
type chunkKey struct {
	hi, lo    uint64
	seed      int64
	maxStrata int32
	stratum   int32
	index     int32
	n         int64
}

type chunkEntry struct {
	key     chunkKey
	clauses int // collision guard: |F| of the task that produced it
	hits    int64
}

// ShardStats is a snapshot of a shard's counters.
type ShardStats struct {
	Requests      int64 // sample RPCs served
	Tasks         int64 // estimation tasks across all RPCs
	ChunksSampled int64 // chunks actually sampled
	TrialsSampled int64 // trials actually sampled
	TrialsReused  int64 // trials served from the chunk cache
	CacheEntries  int   // chunk cache occupancy
}

// NewShard builds a shard server.
func NewShard(cfg ShardConfig) *Shard {
	if cfg.CacheChunks == 0 {
		cfg.CacheChunks = DefaultCacheChunks
	}
	return &Shard{
		cfg:     cfg,
		pool:    sched.New(cfg.Workers),
		conns:   map[net.Conn]bool{},
		lru:     list.New(),
		entries: map[chunkKey]*list.Element{},
	}
}

// Stats returns a snapshot of the shard's counters.
func (s *Shard) Stats() ShardStats {
	s.mu.Lock()
	entries := len(s.entries)
	s.mu.Unlock()
	return ShardStats{
		Requests:      s.requests.Load(),
		Tasks:         s.tasks.Load(),
		ChunksSampled: s.chunksSampled.Load(),
		TrialsSampled: s.trialsSampled.Load(),
		TrialsReused:  s.trialsReused.Load(),
		CacheEntries:  entries,
	}
}

// Serve accepts connections on ln until Close. Each connection carries
// synchronous request/response pairs; a malformed frame closes the
// connection (never the server).
func (s *Shard) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("cluster: shard is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for
// in-flight handlers to drain.
func (s *Shard) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Shard) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	logf := func(format string, args ...any) {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf(format, args...)
		}
	}
	// Handshake.
	typ, payload, err := readFrame(conn)
	if err != nil {
		return
	}
	if err := checkHello(typ, payload); err != nil {
		logf("cluster: %s: %v", conn.RemoteAddr(), err)
		var e enc
		e.str(err.Error())
		_ = writeFrame(conn, msgError, e.b)
		return
	}
	var ack enc
	ack.uv(protocolVersion)
	if err := writeFrame(conn, msgHelloAck, ack.b); err != nil {
		return
	}
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return // EOF or closed
		}
		switch typ {
		case msgPing:
			if err := writeFrame(conn, msgPong, nil); err != nil {
				return
			}
		case msgSample:
			tasks, err := decodeSampleRequest(payload)
			if err != nil {
				logf("cluster: %s: %v", conn.RemoteAddr(), err)
				var e enc
				e.str(err.Error())
				_ = writeFrame(conn, msgError, e.b)
				return
			}
			counts, err := s.sample(tasks)
			if err != nil {
				logf("cluster: %s: %v", conn.RemoteAddr(), err)
				var e enc
				e.str(err.Error())
				if writeFrame(conn, msgError, e.b) != nil {
					return
				}
				continue
			}
			if err := writeFrame(conn, msgSampleResult, encodeSampleResult(counts)); err != nil {
				return
			}
		default:
			logf("cluster: %s: unexpected message type %d", conn.RemoteAddr(), typ)
			return
		}
	}
}

// sampler abstracts the flat/stratified shard estimator for one task.
type sampler interface {
	sampleChunk(rng *rand.Rand, n int64) (hits int64)
}

type flatSampler struct{ est *karpluby.Estimator }

func (f flatSampler) sampleChunk(rng *rand.Rand, n int64) int64 {
	sh := f.est.Shard(rng)
	sh.Add(int(n))
	return sh.Hits()
}

type stratSampler struct {
	est     *karpluby.Stratified
	stratum int
}

func (s stratSampler) sampleChunk(rng *rand.Rand, n int64) int64 {
	sh := s.est.Shard(s.stratum, rng)
	sh.Add(int(n))
	return sh.Hits()
}

// build reconstructs the estimator for one wire task. The restored table
// carries the coordinator's probabilities bit-for-bit and the clause set
// arrives in canonical order, so every derived quantity — clause weights,
// the cumulative distribution, the name-sorted variable order that drives
// PRNG consumption — matches the coordinator's exactly.
func (t *wireTask) build() (sampler, error) {
	if t.maxStrata > 0 {
		plan := karpluby.PlanStrata(t.clauses, t.table, t.maxStrata)
		est, err := karpluby.NewStratified(t.clauses, t.table, plan)
		if err != nil {
			return nil, fmt.Errorf("cluster: rebuilding stratified estimator: %w", err)
		}
		if t.stratum >= est.StratumCount() {
			return nil, fmt.Errorf("cluster: stratum %d out of %d", t.stratum, est.StratumCount())
		}
		return stratSampler{est: est, stratum: t.stratum}, nil
	}
	est, err := karpluby.NewEstimator(t.clauses, t.table, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebuilding estimator: %w", err)
	}
	return flatSampler{est: est}, nil
}

// sample executes one task batch: every (task, chunk) pair fans out
// across the shard's worker pool, chunk counts come from the LRU cache
// when a previous scatter already sampled them, and per-task sums are
// returned in request order.
func (s *Shard) sample(tasks []wireTask) ([]core.RemoteCounts, error) {
	s.requests.Add(1)
	s.tasks.Add(int64(len(tasks)))
	samplers := make([]sampler, len(tasks))
	for i := range tasks {
		sm, err := tasks[i].build()
		if err != nil {
			return nil, err
		}
		samplers[i] = sm
	}
	type unit struct {
		task  int
		chunk sched.Chunk
	}
	var units []unit
	for i, t := range tasks {
		for _, c := range t.chunks {
			if c.N <= 0 || c.Index < 0 {
				return nil, errors.New("cluster: invalid chunk assignment")
			}
			units = append(units, unit{task: i, chunk: c})
		}
	}
	counts := make([]core.RemoteCounts, len(tasks))
	var mu sync.Mutex
	err := s.pool.ForEachCtx(context.Background(), len(units), func(i int) error {
		u := units[i]
		t := &tasks[u.task]
		key := chunkKey{
			hi: t.keyHi, lo: t.keyLo,
			seed:      t.seed,
			maxStrata: int32(t.maxStrata),
			stratum:   int32(t.stratum),
			index:     int32(u.chunk.Index),
			n:         u.chunk.N,
		}
		hits, reused := s.cachedHits(key, len(t.clauses))
		if !reused {
			rng := rand.New(rand.NewSource(sched.ChunkSeed(t.seed, u.chunk.Index)))
			hits = samplers[u.task].sampleChunk(rng, u.chunk.N)
			s.chunksSampled.Add(1)
			s.trialsSampled.Add(u.chunk.N)
			s.storeHits(key, len(t.clauses), hits)
		} else {
			s.trialsReused.Add(u.chunk.N)
		}
		mu.Lock()
		c := &counts[u.task]
		c.Hits += hits
		c.Trials += u.chunk.N
		if u.chunk.N < t.chunkSize {
			c.PartialHits += hits
			c.PartialTrials += u.chunk.N
		}
		if reused {
			c.ReusedTrials += u.chunk.N
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// cachedHits looks a chunk up in the LRU; the clause count guards against
// fingerprint collisions, as in the engine's estimator cache.
func (s *Shard) cachedHits(key chunkKey, clauses int) (int64, bool) {
	if s.cfg.CacheChunks < 0 {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return 0, false
	}
	ent := el.Value.(*chunkEntry)
	if ent.clauses != clauses {
		return 0, false
	}
	s.lru.MoveToFront(el)
	return ent.hits, true
}

func (s *Shard) storeHits(key chunkKey, clauses int, hits int64) {
	if s.cfg.CacheChunks < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*chunkEntry).hits = hits
		el.Value.(*chunkEntry).clauses = clauses
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&chunkEntry{key: key, clauses: clauses, hits: hits})
	for len(s.entries) > s.cfg.CacheChunks {
		back := s.lru.Back()
		ent := back.Value.(*chunkEntry)
		s.lru.Remove(back)
		delete(s.entries, ent.key)
	}
}
