package cluster

import (
	"hash/fnv"
	"sort"

	"repro/internal/rel"
)

// Placement. Estimation tasks are placed on the ring by their 64-bit
// lineage-content fingerprint — the same hashed keys that index the
// engine's estimator cache — so a task's chunks land on the same shards
// across queries and coordinator restarts, keeping shard-local chunk
// caches warm. A task's chunks spread from its owner round-robin
// (owner+Index mod n), so one heavy tuple still saturates the whole
// cluster instead of one box.
//
// The ring hashes peer addresses (not list positions) onto vnode points,
// so adding or removing a peer moves only the keyspace fraction touching
// its points — standard consistent hashing.
type ring struct {
	points []ringPoint // sorted by hash
	peers  int
}

type ringPoint struct {
	hash uint64
	peer int // index into the coordinator's peer list
}

// newRing builds a ring with vnodes points per peer.
func newRing(addrs []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*vnodes), peers: len(addrs)}
	for i, addr := range addrs {
		h := fnv.New64a()
		_, _ = h.Write([]byte(addr))
		base := h.Sum64()
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: rel.Mix64(base + uint64(v)*0x9e3779b97f4a7c15),
				peer: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// owner returns the peer index owning hash h: the first ring point at or
// clockwise after h.
func (r *ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// place returns the peer carrying chunk index ci of the task keyed
// (hi, lo): chunks fan out round-robin from the owning peer.
func (r *ring) place(hi, lo uint64, ci int) int {
	owner := r.owner(rel.HashCombine(hi, rel.Mix64(lo)))
	return (owner + ci) % r.peers
}
