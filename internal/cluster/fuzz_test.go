package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
)

// Adversarial-input hardening for the wire protocol: the handshake and
// response paths must return typed errors — never panic, never hang,
// never allocate proportionally to a forged length prefix — for any
// byte stream an attacker (or a corrupted peer) can produce.

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, msgPing})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0})
	var e enc
	e.u32(protocolMagic)
	e.uv(protocolVersion)
	var buf bytes.Buffer
	_ = writeFrame(&buf, msgHello, e.b)
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; a bounded reader also cannot hang or balloon.
		_, _, _ = readFrame(bytes.NewReader(data))
	})
}

func FuzzCheckHello(f *testing.F) {
	var e enc
	e.u32(protocolMagic)
	e.uv(protocolVersion)
	f.Add(uint8(msgHello), e.b)
	f.Add(uint8(msgSample), []byte{})
	f.Add(uint8(msgHello), []byte{0x70, 0x64})
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		_ = checkHello(typ, payload) // must not panic
	})
}

func FuzzClientHandshake(f *testing.F) {
	var good bytes.Buffer
	var ack enc
	ack.uv(protocolVersion)
	_ = writeFrame(&good, msgHelloAck, ack.b)
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, msgError, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		rw := struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard}
		_ = handshake(rw) // must not panic; reads are finite
	})
}

func FuzzDecodeSampleRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(encodeSampleRequest([]core.RemoteTask{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeSampleRequest(data) // must not panic
	})
}

func FuzzDecodeSampleResult(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeSampleResult([]core.RemoteCounts{{Hits: 1, Trials: 2}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeSampleResult(data) // must not panic
	})
}

// SHALL: every malformed handshake variant yields a typed error.
func TestCheckHelloRejects(t *testing.T) {
	goodPayload := func() []byte {
		var e enc
		e.u32(protocolMagic)
		e.uv(protocolVersion)
		return e.b
	}
	if err := checkHello(msgHello, goodPayload()); err != nil {
		t.Fatalf("valid hello rejected: %v", err)
	}
	cases := []struct {
		name    string
		typ     byte
		payload []byte
		want    string
	}{
		{"wrong type", msgSample, goodPayload(), "want hello"},
		{"bad magic", msgHello, func() []byte {
			var e enc
			e.u32(0xdeadbeef)
			e.uv(protocolVersion)
			return e.b
		}(), "bad magic"},
		{"version skew", msgHello, func() []byte {
			var e enc
			e.u32(protocolMagic)
			e.uv(protocolVersion + 1)
			return e.b
		}(), "protocol version"},
		{"truncated", msgHello, []byte{0x70, 0x64}, "truncated"},
		{"empty", msgHello, nil, "truncated"},
	}
	for _, tc := range cases {
		err := checkHello(tc.typ, tc.payload)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// SHALL: version skew is typed in the other direction too — a client
// talking to a future shard learns the versions, not a mystery error.
func TestHandshakeRejectsServerVersionSkew(t *testing.T) {
	var resp bytes.Buffer
	var ack enc
	ack.uv(protocolVersion + 5)
	_ = writeFrame(&resp, msgHelloAck, ack.b)
	rw := struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(resp.Bytes()), io.Discard}
	err := handshake(rw)
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Errorf("skewed ack: err = %v, want version mismatch", err)
	}
}

// SHALL: a shard-side msgError during handshake surfaces its message.
func TestHandshakeSurfacesShardError(t *testing.T) {
	var resp bytes.Buffer
	var e enc
	e.str("cluster: bad magic 0xdeadbeef")
	_ = writeFrame(&resp, msgError, e.b)
	rw := struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(resp.Bytes()), io.Discard}
	err := handshake(rw)
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("err = %v, want the shard's message", err)
	}
}

// SHALL: an oversized length prefix costs a bounded allocation, not a
// prefix-sized one.
//
// WHEN a frame header claims maxFrame bytes but the stream ends after a
// few THEN readFrame errors and total allocation stays near one
// readChunk, far below the claimed size.
func TestReadFrameOversizedPrefixBoundedAllocation(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame)
	hdr[4] = msgSample
	data := append(hdr[:], make([]byte, 1024)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, err := readFrame(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated oversized frame decoded successfully")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Errorf("readFrame allocated %d bytes against a forged %d-byte prefix; want bounded chunks", grew, maxFrame)
	}
}

// SHALL: out-of-range lengths are rejected before any read.
func TestReadFrameRejectsInvalidLength(t *testing.T) {
	for _, n := range []uint32{0, maxFrame + 1, 0xffffffff} {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], n)
		_, _, err := readFrame(bytes.NewReader(hdr[:]))
		if err == nil || !strings.Contains(err.Error(), "invalid frame length") {
			t.Errorf("length %d: err = %v, want invalid-frame-length", n, err)
		}
	}
}

// SHALL: a well-formed frame still round-trips through the bounded
// reader, including bodies larger than one read chunk.
func TestReadFrameLargeBodyRoundTrip(t *testing.T) {
	body := make([]byte, readChunk*3+17)
	for i := range body {
		body[i] = byte(i * 31)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgSampleResult, body); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgSampleResult || !bytes.Equal(payload, body) {
		t.Error("large frame did not round-trip")
	}
}
