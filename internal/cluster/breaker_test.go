package cluster

import "testing"

// The breaker automaton drives the live placement view; its transitions
// are load-bearing for both availability (skip dead shards) and
// re-admission (stop skipping recovered ones).

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := newBreaker(3)
	if !b.admit() {
		t.Fatal("fresh breaker not admitting")
	}
	if b.recordFailure() || b.recordFailure() {
		t.Fatal("tripped before the threshold")
	}
	if !b.admit() {
		t.Fatal("stopped admitting below the threshold")
	}
	if !b.recordFailure() {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.admit() {
		t.Fatal("open breaker admitting")
	}
	if b.snapshot() != "open" {
		t.Fatalf("snapshot = %q, want open", b.snapshot())
	}
	// Further failures while open neither re-trip nor panic.
	if b.recordFailure() {
		t.Error("failure while open reported a fresh trip")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(2)
	b.recordFailure()
	b.recordSuccess()
	if b.recordFailure() {
		t.Fatal("tripped after an interleaved success; the streak must reset")
	}
	if !b.recordFailure() {
		t.Fatal("two consecutive failures after the reset did not trip")
	}
	// A racing successful RPC re-admits from any state.
	b.recordSuccess()
	if !b.admit() || b.snapshot() != "closed" {
		t.Fatal("success did not close an open breaker")
	}
}

func TestBreakerProbeCycle(t *testing.T) {
	b := newBreaker(1)
	b.recordFailure()
	if !b.probeBegin() {
		t.Fatal("open breaker declined a probe")
	}
	if b.snapshot() != "half-open" {
		t.Fatalf("snapshot = %q, want half-open", b.snapshot())
	}
	if b.admit() {
		t.Fatal("half-open breaker admitting planner work")
	}
	if b.probeBegin() {
		t.Fatal("second concurrent probe admitted while one is in flight")
	}
	b.probeResult(false)
	if b.snapshot() != "open" {
		t.Fatal("failed probe did not re-open")
	}
	if !b.probeBegin() {
		t.Fatal("re-opened breaker declined the next probe")
	}
	b.probeResult(true)
	if !b.admit() || b.snapshot() != "closed" {
		t.Fatal("successful probe did not re-admit")
	}
	// A stale probe result after the breaker already closed is a no-op.
	b.probeResult(false)
	if !b.admit() {
		t.Fatal("stale probe result mutated a closed breaker")
	}
}

func TestBreakerHalfOpenRacingFailureReopens(t *testing.T) {
	b := newBreaker(1)
	b.recordFailure()
	b.probeBegin()
	if !b.recordFailure() {
		t.Fatal("racing failure during half-open did not re-open")
	}
	if b.snapshot() != "open" {
		t.Fatalf("snapshot = %q, want open", b.snapshot())
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0)
	for i := 0; i < 100; i++ {
		if b.recordFailure() {
			t.Fatal("disabled breaker tripped")
		}
	}
	b.forceOpen()
	if !b.admit() {
		t.Fatal("disabled breaker stopped admitting")
	}
}

func TestBreakerForceOpen(t *testing.T) {
	b := newBreaker(3)
	b.forceOpen()
	if b.admit() {
		t.Fatal("forced-open breaker admitting")
	}
	if !b.probeBegin() {
		t.Fatal("forced-open breaker declined a probe")
	}
	b.probeResult(true)
	if !b.admit() {
		t.Fatal("probe did not recover a forced-open breaker")
	}
}
