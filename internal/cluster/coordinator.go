package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a coordinator.
type Config struct {
	// Peers are the shard addresses (host:port). Order matters only for
	// chunk round-robin spreading; ring placement hashes the addresses.
	Peers []string
	// DialTimeout bounds connection establishment per attempt
	// (0 = 5s).
	DialTimeout time.Duration
	// RequestTimeout is the per-shard, per-attempt deadline covering
	// write + remote sampling + read (0 = 2m). A shard that blows it is
	// retried, then failed over — the coordinator never hangs on it.
	RequestTimeout time.Duration
	// Retries is how many times a failed shard RPC is retried on a fresh
	// connection before its work fails over to the surviving shards
	// (negative = 0; default 2).
	Retries int
	// RetryBackoff is the base delay before a retry, doubling per
	// attempt (0 = 100ms).
	RetryBackoff time.Duration
	// VNodes is the number of ring points per peer (0 = 64).
	VNodes int

	// BreakerThreshold is how many consecutive exhausted-retry failures
	// trip a shard's circuit breaker; a tripped shard is skipped at plan
	// time until a background probe re-admits it (0 = 3, negative
	// disables the breaker).
	BreakerThreshold int
	// ProbeInterval is how often the background prober pings tripped
	// shards for re-admission (0 = 2s, negative disables probing —
	// tripped shards then re-admit only via a successful racing RPC or
	// an explicit Probe call).
	ProbeInterval time.Duration
	// HedgeAfter controls straggler hedging: after this delay a slow
	// shard's in-flight work unit is re-issued to a second shard and the
	// first complete response wins (duplicates are discarded by
	// chunk-range dedupe, which is safe because chunk counts are
	// deterministic). 0 derives the delay from a p95 of observed RPC
	// latencies; negative disables hedging.
	HedgeAfter time.Duration
	// LocalFallback lets the coordinator sample chunk ranges itself when
	// no shard is healthy (or every shard failed mid-batch), so a query
	// succeeds as long as the coordinator lives. Results stay
	// bit-identical — local sampling round-trips tasks through the wire
	// codec so it replays exactly what a shard would.
	LocalFallback bool
	// LocalWorkers sizes the local-fallback sampling pool
	// (0 = GOMAXPROCS). Ignored unless LocalFallback is set.
	LocalWorkers int
}

// Error is the typed failure of a shard RPC: which shard, how many
// attempts, and the final underlying error. The pdb layer surfaces it as
// *pdb.ClusterError.
type Error struct {
	Shard    string
	Attempts int
	Err      error
}

func (e *Error) Error() string {
	return fmt.Sprintf("cluster: shard %s failed after %d attempt(s): %v", e.Shard, e.Attempts, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// ErrNoHealthyShards is the terminal failure of a batch that ran out of
// shards: every peer is tripped or failed and local fallback is off.
var ErrNoHealthyShards = errors.New("no healthy shards and local fallback is disabled")

// Coordinator scatters estimation batches across shard servers and
// gathers their counts. It implements core.Distributor. Connections are
// pooled per peer and re-established transparently. Failure handling is
// layered: per-RPC retries with backoff, then chunk-range failover to
// surviving shards, then (optionally) coordinator-local sampling — all
// without changing a single output bit, because any executor samples a
// chunk's fixed PRNG stream identically.
type Coordinator struct {
	cfg  Config
	ring *ring
	peer []*peer

	// local is the fallback sampler (an in-process Shard with no
	// listener), built lazily when LocalFallback work first arrives.
	localOnce sync.Once
	local     *Shard

	// stop/probeDone bound the background prober's lifetime.
	stop      chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	lat latencyWindow

	batches        atomic.Int64
	mergeNanos     atomic.Int64
	failovers      atomic.Int64
	hedges         atomic.Int64
	hedgeWins      atomic.Int64
	localFallbacks atomic.Int64
	probes         atomic.Int64
	probeFailures  atomic.Int64
}

// peer is one shard endpoint: its connection pool, breaker, and counters.
type peer struct {
	addr string
	brk  *breaker

	mu   sync.Mutex
	idle []net.Conn

	rpcs      atomic.Int64
	failures  atomic.Int64
	retries   atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	healthy   atomic.Bool
	lastErr   atomic.Value // string
}

// maxIdleConns bounds each peer's idle-connection pool.
const maxIdleConns = 4

// New builds a coordinator over the given shard set.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one peer")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 3
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // breaker disabled
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	c := &Coordinator{
		cfg:       cfg,
		ring:      newRing(cfg.Peers, cfg.VNodes),
		stop:      make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for _, addr := range cfg.Peers {
		p := &peer{addr: addr, brk: newBreaker(cfg.BreakerThreshold)}
		p.healthy.Store(true)
		c.peer = append(c.peer, p)
	}
	if cfg.BreakerThreshold > 0 && cfg.ProbeInterval > 0 {
		go c.probeLoop()
	} else {
		close(c.probeDone)
	}
	return c, nil
}

// Close stops the background prober and drops every pooled connection.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() { close(c.stop) })
	<-c.probeDone
	for _, p := range c.peer {
		p.mu.Lock()
		for _, conn := range p.idle {
			conn.Close()
		}
		p.idle = nil
		p.mu.Unlock()
	}
	return nil
}

// Ping round-trips every shard once, returning the first typed failure.
func (c *Coordinator) Ping(ctx context.Context) error {
	for _, p := range c.peer {
		if _, err := c.rpc(ctx, p, msgPing, nil); err != nil {
			return err
		}
	}
	return nil
}

// Probe pings every shard once and folds the result straight into the
// breaker state: an unreachable shard trips open immediately (so the
// first plan already skips it) and a reachable one closes. It returns the
// number of healthy shards. pdbserve calls it at boot: a partially-dead
// peer set degrades instead of failing, and the background prober
// re-admits shards as they come back.
func (c *Coordinator) Probe(ctx context.Context) (healthy int) {
	for _, p := range c.peer {
		c.probes.Add(1)
		if _, err := c.attempt(ctx, p, msgPing, nil); err != nil {
			c.probeFailures.Add(1)
			p.brk.forceOpen()
			p.healthy.Store(false)
			p.lastErr.Store(err.Error())
			continue
		}
		p.brk.recordSuccess()
		p.healthy.Store(true)
		healthy++
	}
	return healthy
}

// probeLoop is the background half-open prober: every ProbeInterval it
// pings each open-breaker peer once with a short deadline; success
// re-admits the peer into the placement view.
func (c *Coordinator) probeLoop() {
	defer close(c.probeDone)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, p := range c.peer {
			if !p.brk.probeBegin() {
				continue
			}
			c.probePeer(p)
		}
	}
}

// probePeer sends one half-open probe ping (single attempt, bounded by
// the dial timeout) and resolves the breaker with the outcome.
func (c *Coordinator) probePeer(p *peer) {
	c.probes.Add(1)
	timeout := c.cfg.DialTimeout
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, err := c.attempt(ctx, p, msgPing, nil)
	if err != nil {
		c.probeFailures.Add(1)
		p.brk.probeResult(false)
		p.lastErr.Store(err.Error())
		return
	}
	p.brk.probeResult(true)
	p.healthy.Store(true)
}

// admitting returns the peer indexes whose breakers admit work, in peer
// order (deterministic).
func (c *Coordinator) admitting() []int {
	out := make([]int, 0, len(c.peer))
	for i, p := range c.peer {
		if p.brk.admit() {
			out = append(out, i)
		}
	}
	return out
}

// rpc performs one request/response on a pooled connection to p, retrying
// transient transport failures with exponential backoff on fresh
// connections. Every failure path is bounded: dial and request deadlines
// come from the config, and ctx cancellation aborts between attempts.
// Success and exhausted-retry failure both feed the peer's breaker.
func (c *Coordinator) rpc(ctx context.Context, p *peer, typ byte, payload []byte) ([]byte, error) {
	attempts := c.cfg.Retries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			backoff := c.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return nil, &Error{Shard: p.addr, Attempts: attempt, Err: ctx.Err()}
			case <-time.After(backoff):
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, &Error{Shard: p.addr, Attempts: attempt + 1, Err: err}
		}
		start := time.Now()
		resp, err := c.attempt(ctx, p, typ, payload)
		if err == nil {
			if typ == msgSample {
				c.lat.observe(time.Since(start))
			}
			p.healthy.Store(true)
			p.brk.recordSuccess()
			return resp, nil
		}
		lastErr = err
		p.lastErr.Store(err.Error())
	}
	p.failures.Add(1)
	p.healthy.Store(false)
	p.brk.recordFailure()
	return nil, &Error{Shard: p.addr, Attempts: attempts, Err: lastErr}
}

// attempt runs one RPC attempt on one connection (pooled or fresh).
//
// Connection-pool hygiene invariant: a connection returns to the pool
// only after a complete, well-typed response frame — every other path
// (write error, deadline expiry, mid-frame read error, decode failure,
// error frame, unexpected type) closes and drops it. A half-read stream
// must never be reused: the next request would read the remainder of the
// poisoned frame as its own response.
func (c *Coordinator) attempt(ctx context.Context, p *peer, typ byte, payload []byte) ([]byte, error) {
	conn, err := p.get(ctx, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			conn.Close()
		}
	}()
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if d, has := ctx.Deadline(); has && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	p.rpcs.Add(1)
	if err := writeFrame(conn, typ, payload); err != nil {
		return nil, err
	}
	p.bytesSent.Add(frameSize(payload))
	rtyp, resp, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	p.bytesRecv.Add(frameSize(resp))
	switch {
	case typ == msgPing && rtyp == msgPong,
		typ == msgSample && rtyp == msgSampleResult:
		_ = conn.SetDeadline(time.Time{})
		p.put(conn)
		ok = true
		return resp, nil
	case rtyp == msgError:
		d := dec{b: resp}
		return nil, fmt.Errorf("cluster: shard error: %s", d.str())
	default:
		return nil, fmt.Errorf("cluster: unexpected response type %d", rtyp)
	}
}

// get returns a pooled connection or dials and handshakes a fresh one.
func (p *peer) get(ctx context.Context, dialTimeout time.Duration) (net.Conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		conn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(dialTimeout)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := handshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// put returns a healthy connection to the pool.
func (p *peer) put(conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle) >= maxIdleConns {
		conn.Close()
		return
	}
	p.idle = append(p.idle, conn)
}

// latencyWindow tracks recent successful sample-RPC latencies for the
// adaptive hedge delay. Fixed-size ring, coarse by design: hedging only
// needs "clearly slower than its cohort", not a precise percentile.
type latencyWindow struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // observations recorded (saturates at len(buf) for reads)
	idx int
}

// minHedgeObservations gates adaptive hedging until the window has
// enough samples to call something a straggler.
const minHedgeObservations = 8

func (l *latencyWindow) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.idx] = d
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p95 returns the 95th-percentile latency of the window, or ok=false
// when there are too few observations to hedge on.
func (l *latencyWindow) p95() (time.Duration, bool) {
	l.mu.Lock()
	n := l.n
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n < minHedgeObservations {
		return 0, false
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[(n*95+99)/100-1], true
}

// hedgeDelay resolves the straggler delay: a fixed HedgeAfter wins,
// 0 adapts from the latency window (1.5 × p95, floored at 25ms), and a
// negative setting — or a window still warming up — disables hedging.
func (c *Coordinator) hedgeDelay() (time.Duration, bool) {
	switch {
	case c.cfg.HedgeAfter > 0:
		return c.cfg.HedgeAfter, true
	case c.cfg.HedgeAfter < 0:
		return 0, false
	}
	p95, ok := c.lat.p95()
	if !ok {
		return 0, false
	}
	d := p95 + p95/2
	if d < 25*time.Millisecond {
		d = 25 * time.Millisecond
	}
	return d, true
}

// localShard returns the coordinator-local fallback sampler, building it
// on first use.
func (c *Coordinator) localShard() *Shard {
	c.localOnce.Do(func() {
		c.local = NewShard(ShardConfig{Workers: c.cfg.LocalWorkers})
	})
	return c.local
}

// ShardStatus is one peer's health and traffic counters.
type ShardStatus struct {
	Addr      string
	Healthy   bool   // last RPC (if any) succeeded
	Breaker   string // circuit-breaker state: closed, half-open, open
	RPCs      int64
	Failures  int64 // RPCs that exhausted all retries
	Retries   int64
	BytesSent int64
	BytesRecv int64
	LastError string
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	Batches        int64 // scatter-gather batches dispatched
	MergeNanos     int64 // cumulative time merging gathered counts
	Failovers      int64 // chunk-range re-dispatches after a shard failed
	Hedges         int64 // hedged duplicate dispatches issued
	HedgeWins      int64 // hedged dispatches that finished first
	LocalFallbacks int64 // dispatches sampled coordinator-locally
	Probes         int64 // breaker re-admission probes sent
	ProbeFailures  int64 // probes that failed
	LocalFallback  bool  // whether coordinator-local sampling is enabled
	Shards         []ShardStatus
}

// Stats returns a snapshot of coordinator and per-shard counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Batches:        c.batches.Load(),
		MergeNanos:     c.mergeNanos.Load(),
		Failovers:      c.failovers.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		LocalFallbacks: c.localFallbacks.Load(),
		Probes:         c.probes.Load(),
		ProbeFailures:  c.probeFailures.Load(),
		LocalFallback:  c.cfg.LocalFallback,
	}
	for _, p := range c.peer {
		s := ShardStatus{
			Addr:      p.addr,
			Healthy:   p.healthy.Load(),
			Breaker:   p.brk.snapshot(),
			RPCs:      p.rpcs.Load(),
			Failures:  p.failures.Load(),
			Retries:   p.retries.Load(),
			BytesSent: p.bytesSent.Load(),
			BytesRecv: p.bytesRecv.Load(),
		}
		if v, ok := p.lastErr.Load().(string); ok {
			s.LastError = v
		}
		st.Shards = append(st.Shards, s)
	}
	return st
}

// BreakerStates returns each peer's numeric breaker state in peer order
// (0 closed, 1 half-open, 2 open) — the metrics gauge source.
func (c *Coordinator) BreakerStates() []int {
	out := make([]int, len(c.peer))
	for i, p := range c.peer {
		out[i] = p.brk.stateCode()
	}
	return out
}
