package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// Config configures a coordinator.
type Config struct {
	// Peers are the shard addresses (host:port). Order matters only for
	// chunk round-robin spreading; ring placement hashes the addresses.
	Peers []string
	// DialTimeout bounds connection establishment per attempt
	// (0 = 5s).
	DialTimeout time.Duration
	// RequestTimeout is the per-shard, per-attempt deadline covering
	// write + remote sampling + read (0 = 2m). A shard that blows it is
	// retried, then reported dead — the coordinator never hangs on it.
	RequestTimeout time.Duration
	// Retries is how many times a failed shard RPC is retried on a fresh
	// connection before the batch fails (negative = 0; default 2).
	Retries int
	// RetryBackoff is the base delay before a retry, doubling per
	// attempt (0 = 100ms).
	RetryBackoff time.Duration
	// VNodes is the number of ring points per peer (0 = 64).
	VNodes int
}

// Error is the typed failure of a shard RPC: which shard, how many
// attempts, and the final underlying error. The pdb layer surfaces it as
// *pdb.ClusterError.
type Error struct {
	Shard    string
	Attempts int
	Err      error
}

func (e *Error) Error() string {
	return fmt.Sprintf("cluster: shard %s failed after %d attempt(s): %v", e.Shard, e.Attempts, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Coordinator scatters estimation batches across shard servers and
// gathers their counts. It implements core.Distributor. Connections are
// pooled per peer and re-established transparently; a batch makes one
// RPC per involved shard.
type Coordinator struct {
	cfg  Config
	ring *ring
	peer []*peer

	batches    atomic.Int64
	mergeNanos atomic.Int64
}

// peer is one shard endpoint: its connection pool and counters.
type peer struct {
	addr string

	mu   sync.Mutex
	idle []net.Conn

	rpcs      atomic.Int64
	failures  atomic.Int64
	retries   atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	healthy   atomic.Bool
	lastErr   atomic.Value // string
}

// maxIdleConns bounds each peer's idle-connection pool.
const maxIdleConns = 4

// New builds a coordinator over the given shard set.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one peer")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	c := &Coordinator{cfg: cfg, ring: newRing(cfg.Peers, cfg.VNodes)}
	for _, addr := range cfg.Peers {
		p := &peer{addr: addr}
		p.healthy.Store(true)
		c.peer = append(c.peer, p)
	}
	return c, nil
}

// Close drops every pooled connection.
func (c *Coordinator) Close() error {
	for _, p := range c.peer {
		p.mu.Lock()
		for _, conn := range p.idle {
			conn.Close()
		}
		p.idle = nil
		p.mu.Unlock()
	}
	return nil
}

// Ping round-trips every shard once, returning the first typed failure.
// pdbserve calls it at boot so a misconfigured peer list fails fast.
func (c *Coordinator) Ping(ctx context.Context) error {
	for _, p := range c.peer {
		if _, err := c.rpc(ctx, p, msgPing, nil); err != nil {
			return err
		}
	}
	return nil
}

// SampleChunks implements core.Distributor: place every task's chunks on
// the ring, make one RPC per involved shard (all its sub-tasks batched),
// and merge the returned counts back into per-task sums. Failed shards
// are retried with backoff on fresh connections; a shard that stays down
// fails the batch with a typed *Error — chunks are never silently
// re-routed, because the caller's accounting assumes every assigned chunk
// was sampled exactly once.
func (c *Coordinator) SampleChunks(ctx context.Context, tasks []core.RemoteTask) ([]core.RemoteCounts, error) {
	c.batches.Add(1)
	// Scatter plan: per shard, a list of (task index, chunk subset).
	type subtask struct {
		task   int
		chunks []sched.Chunk
	}
	plans := make([][]subtask, len(c.peer))
	for ti := range tasks {
		t := &tasks[ti]
		per := make(map[int]*subtask)
		var order []int
		for _, ch := range t.Chunks {
			pi := c.ring.place(t.KeyHi, t.KeyLo, ch.Index)
			st, ok := per[pi]
			if !ok {
				st = &subtask{task: ti}
				per[pi] = st
				order = append(order, pi)
			}
			st.chunks = append(st.chunks, ch)
		}
		for _, pi := range order {
			plans[pi] = append(plans[pi], *per[pi])
		}
	}
	// One RPC per involved shard, in parallel; first failure cancels the
	// rest.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type shardResult struct {
		peer   int
		subs   []subtask
		counts []core.RemoteCounts
		err    error
	}
	var wg sync.WaitGroup
	results := make([]shardResult, 0, len(c.peer))
	resCh := make(chan shardResult, len(c.peer))
	for pi, subs := range plans {
		if len(subs) == 0 {
			continue
		}
		wg.Add(1)
		go func(pi int, subs []subtask) {
			defer wg.Done()
			req := make([]core.RemoteTask, len(subs))
			for i, st := range subs {
				rt := tasks[st.task]
				rt.Chunks = st.chunks
				req[i] = rt
			}
			payload, err := c.rpc(gctx, c.peer[pi], msgSample, encodeSampleRequest(req))
			if err != nil {
				cancel()
				resCh <- shardResult{peer: pi, err: err}
				return
			}
			counts, err := decodeSampleResult(payload)
			if err == nil && len(counts) != len(subs) {
				err = fmt.Errorf("cluster: shard %s returned %d results for %d tasks", c.peer[pi].addr, len(counts), len(subs))
			}
			if err != nil {
				cancel()
				resCh <- shardResult{peer: pi, err: &Error{Shard: c.peer[pi].addr, Attempts: 1, Err: err}}
				return
			}
			resCh <- shardResult{peer: pi, subs: subs, counts: counts}
		}(pi, subs)
	}
	wg.Wait()
	close(resCh)
	for r := range resCh {
		results = append(results, r)
	}
	var firstErr error
	for _, r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Gather: sum each shard's sub-task counts into the task totals.
	start := time.Now()
	out := make([]core.RemoteCounts, len(tasks))
	for _, r := range results {
		for i, st := range r.subs {
			rc := r.counts[i]
			var want int64
			for _, ch := range st.chunks {
				want += ch.N
			}
			if rc.Trials != want {
				return nil, &Error{Shard: c.peer[r.peer].addr, Attempts: 1,
					Err: fmt.Errorf("cluster: shard returned %d trials for a sub-task assigned %d", rc.Trials, want)}
			}
			o := &out[st.task]
			o.Hits += rc.Hits
			o.Trials += rc.Trials
			o.PartialHits += rc.PartialHits
			o.PartialTrials += rc.PartialTrials
			o.ReusedTrials += rc.ReusedTrials
		}
	}
	c.mergeNanos.Add(time.Since(start).Nanoseconds())
	return out, nil
}

// rpc performs one request/response on a pooled connection to p, retrying
// transient transport failures with exponential backoff on fresh
// connections. Every failure path is bounded: dial and request deadlines
// come from the config, and ctx cancellation aborts between attempts.
func (c *Coordinator) rpc(ctx context.Context, p *peer, typ byte, payload []byte) ([]byte, error) {
	attempts := c.cfg.Retries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			backoff := c.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return nil, &Error{Shard: p.addr, Attempts: attempt, Err: ctx.Err()}
			case <-time.After(backoff):
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, &Error{Shard: p.addr, Attempts: attempt + 1, Err: err}
		}
		resp, err := c.attempt(ctx, p, typ, payload)
		if err == nil {
			p.healthy.Store(true)
			return resp, nil
		}
		lastErr = err
		p.lastErr.Store(err.Error())
	}
	p.failures.Add(1)
	p.healthy.Store(false)
	return nil, &Error{Shard: p.addr, Attempts: attempts, Err: lastErr}
}

// attempt runs one RPC attempt on one connection (pooled or fresh).
func (c *Coordinator) attempt(ctx context.Context, p *peer, typ byte, payload []byte) ([]byte, error) {
	conn, err := p.get(ctx, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			conn.Close()
		}
	}()
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if d, has := ctx.Deadline(); has && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	p.rpcs.Add(1)
	if err := writeFrame(conn, typ, payload); err != nil {
		return nil, err
	}
	p.bytesSent.Add(frameSize(payload))
	rtyp, resp, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	p.bytesRecv.Add(frameSize(resp))
	switch {
	case typ == msgPing && rtyp == msgPong,
		typ == msgSample && rtyp == msgSampleResult:
		_ = conn.SetDeadline(time.Time{})
		p.put(conn)
		ok = true
		return resp, nil
	case rtyp == msgError:
		d := dec{b: resp}
		return nil, fmt.Errorf("cluster: shard error: %s", d.str())
	default:
		return nil, fmt.Errorf("cluster: unexpected response type %d", rtyp)
	}
}

// get returns a pooled connection or dials and handshakes a fresh one.
func (p *peer) get(ctx context.Context, dialTimeout time.Duration) (net.Conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		conn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(dialTimeout)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := handshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// put returns a healthy connection to the pool.
func (p *peer) put(conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle) >= maxIdleConns {
		conn.Close()
		return
	}
	p.idle = append(p.idle, conn)
}

// ShardStatus is one peer's health and traffic counters.
type ShardStatus struct {
	Addr      string
	Healthy   bool // last RPC (if any) succeeded
	RPCs      int64
	Failures  int64 // RPCs that exhausted all retries
	Retries   int64
	BytesSent int64
	BytesRecv int64
	LastError string
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	Batches    int64 // scatter-gather batches dispatched
	MergeNanos int64 // cumulative time merging gathered counts
	Shards     []ShardStatus
}

// Stats returns a snapshot of coordinator and per-shard counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{Batches: c.batches.Load(), MergeNanos: c.mergeNanos.Load()}
	for _, p := range c.peer {
		s := ShardStatus{
			Addr:      p.addr,
			Healthy:   p.healthy.Load(),
			RPCs:      p.rpcs.Load(),
			Failures:  p.failures.Load(),
			Retries:   p.retries.Load(),
			BytesSent: p.bytesSent.Load(),
			BytesRecv: p.bytesRecv.Load(),
		}
		if v, ok := p.lastErr.Load().(string); ok {
			s.LastError = v
		}
		st.Shards = append(st.Shards, s)
	}
	return st
}
