package cluster_test

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/pdb"
)

// Spec scenarios for the horizontal-sharding surface, written
// SHALL / WHEN / THEN against the public pdb API with real shard servers
// on loopback TCP. The fixture mirrors the stratified scenario suite: two
// independent relations whose product yields skewed, connected clause
// components, so both the flat and the stratified estimation paths
// genuinely sample.

// skewDB builds the fixture database.
func skewDB(t testing.TB) *pdb.DB {
	t.Helper()
	probsR := []float64{0.9, 0.6, 0.05, 0.02, 0.002, 0.0005}
	rowsR := make([][]any, len(probsR))
	for i := range probsR {
		rowsR[i] = []any{int64(i), int64(i / 2)}
	}
	db, err := pdb.NewBuilder().
		Independent("R", []string{"ID", "Grp"}, rowsR, probsR).
		Independent("S", []string{"SID"},
			[][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}, {int64(5)}, {int64(6)}},
			[]float64{0.8, 0.3, 0.04, 0.01, 0.002, 0.001}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const grpConfProgram = `conf(project[Grp](product(R, S)))`

// startShards boots n in-process shard servers on loopback and returns
// their addresses. Cleanup closes them.
func startShards(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		sh := cluster.NewShard(cluster.ShardConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go sh.Serve(ln)
		t.Cleanup(func() { sh.Close() })
	}
	return addrs
}

// fingerprint renders every result row, in order, as the service would.
func fingerprint(t testing.TB, res *pdb.Result) string {
	t.Helper()
	var sb strings.Builder
	for row := range res.Rows() {
		sb.WriteString(row.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// evalClustered evaluates the program on a fresh engine backed by the
// given peers (nil peers = single-node) and returns the row fingerprint.
func evalClustered(t testing.TB, db *pdb.DB, program string, peers []string, opts ...pdb.Option) string {
	t.Helper()
	var engOpts []pdb.EngineOption
	if peers != nil {
		engOpts = append(engOpts, pdb.WithEngineCluster(pdb.ClusterOptions{Peers: peers}))
	}
	eng, err := db.Engine(engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(program)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(t, res)
}

// SHALL: a fixed-seed evaluation returns bit-identical rows on 1, 2, and
// 4 shards and on a single node — the worker-count determinism contract
// generalized to shard count — on both estimation paths.
//
// WHEN the same program runs single-node and clustered at several shard
// counts THEN every fingerprint matches byte for byte.
func TestClusterShardCountBitParity(t *testing.T) {
	db := skewDB(t)
	for _, tc := range []struct {
		name string
		opts []pdb.Option
	}{
		{"flat", []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}},
		{"stratified", []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42), pdb.WithStrata(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := evalClustered(t, db, grpConfProgram, nil, tc.opts...)
			for _, shards := range []int{1, 2, 4} {
				peers := startShards(t, shards)
				got := evalClustered(t, db, grpConfProgram, peers, tc.opts...)
				if got != want {
					t.Errorf("%d shards: rows diverge from single-node\n got: %q\nwant: %q", shards, got, want)
				}
			}
		})
	}
}

// SHALL: σ̂ evaluations distribute too, bit-identically.
//
// WHEN an approximate-select program runs on 2 shards THEN its rows match
// the single-node run byte for byte.
func TestClusterSigmaHatBitParity(t *testing.T) {
	db := skewDB(t)
	program := `aselect[p1 >= 0.05 over conf[Grp]](project[Grp](product(R, S)))`
	opts := []pdb.Option{pdb.WithEpsilon(0.1), pdb.WithDelta(0.1), pdb.WithSeed(7)}
	want := evalClustered(t, db, program, nil, opts...)
	peers := startShards(t, 2)
	got := evalClustered(t, db, program, peers, opts...)
	if got != want {
		t.Errorf("σ̂ rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
	// And on the stratified σ̂ path.
	sopts := append(opts, pdb.WithStrata(4))
	want = evalClustered(t, db, program, nil, sopts...)
	got = evalClustered(t, db, program, startShards(t, 4), sopts...)
	if got != want {
		t.Errorf("stratified σ̂ rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
}

// SHALL: a dead shard yields a typed *pdb.ClusterError within the retry
// budget — never a hang, never a silent single-node fallback.
//
// WHEN one of two shards is killed before evaluation THEN Eval returns a
// *pdb.ClusterError naming the dead peer and the attempt count.
func TestClusterKilledShardTypedError(t *testing.T) {
	db := skewDB(t)
	peers := startShards(t, 1)
	// Second peer: a listener that is closed immediately — connections are
	// refused from the start.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	eng, err := db.Engine(pdb.WithEngineCluster(pdb.ClusterOptions{
		Peers:          append(peers, deadAddr),
		DialTimeout:    500 * time.Millisecond,
		RequestTimeout: time.Second,
		Retries:        1,
		RetryBackoff:   10 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = q.Eval(context.Background(), pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(1))
	if err == nil {
		t.Fatal("Eval on a half-dead cluster succeeded; want *pdb.ClusterError")
	}
	var ce *pdb.ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("Eval error = %v (%T), want *pdb.ClusterError", err, err)
	}
	if ce.Shard != deadAddr {
		t.Errorf("ClusterError.Shard = %q, want %q", ce.Shard, deadAddr)
	}
	if ce.Attempts != 2 {
		t.Errorf("ClusterError.Attempts = %d, want 2 (1 try + 1 retry)", ce.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("failure took %v; the deadline/retry envelope should bound it to seconds", elapsed)
	}
	// The engine's stats surface the failure per shard.
	cs := eng.ClusterStats()
	if cs == nil {
		t.Fatal("ClusterStats() = nil on a clustered engine")
	}
	var deadSeen bool
	for _, s := range cs.Shards {
		if s.Addr == deadAddr {
			deadSeen = true
			if s.Healthy {
				t.Error("dead shard reported healthy")
			}
			if s.Failures == 0 {
				t.Error("dead shard reported zero failures")
			}
			if s.LastError == "" {
				t.Error("dead shard reported no last error")
			}
		}
	}
	if !deadSeen {
		t.Error("dead shard missing from ClusterStats")
	}
}

// flakyProxy fronts a live shard but kills the first `drops` accepted
// connections before any bytes flow — a transient network failure.
func flakyProxy(t *testing.T, backend string, drops int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var dropped atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if dropped.Add(1) <= int64(drops) {
				conn.Close()
				continue
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); io.Copy(up, conn); up.Close() }()
			go func() { defer wg.Done(); io.Copy(conn, up); conn.Close() }()
			go func() { wg.Wait() }()
		}
	}()
	return ln.Addr().String()
}

// SHALL: a transient shard failure is retried with backoff and the
// evaluation succeeds — bit-identically to an unperturbed run.
//
// WHEN the first connection to a shard is dropped THEN the retry lands
// and the rows match the single-node fingerprint.
func TestClusterTransientFailureRetried(t *testing.T) {
	db := skewDB(t)
	opts := []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}
	want := evalClustered(t, db, grpConfProgram, nil, opts...)
	backend := startShards(t, 1)[0]
	proxy := flakyProxy(t, backend, 1)
	eng, err := db.Engine(pdb.WithEngineCluster(pdb.ClusterOptions{
		Peers:        []string{proxy},
		Retries:      2,
		RetryBackoff: 10 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), opts...)
	if err != nil {
		t.Fatalf("Eval through flaky proxy: %v", err)
	}
	if got := fingerprint(t, res); got != want {
		t.Errorf("retried rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
	cs := eng.ClusterStats()
	if cs == nil || len(cs.Shards) != 1 {
		t.Fatalf("ClusterStats = %+v, want one shard", cs)
	}
	if cs.Shards[0].Retries == 0 {
		t.Error("transient failure recorded no retries")
	}
	if !cs.Shards[0].Healthy {
		t.Error("recovered shard reported unhealthy")
	}
}

// SHALL: shard-side chunk caches serve repeated scatters without
// re-sampling, and the coordinator reports the reuse.
//
// WHEN the same fixed-budget query evaluates twice on fresh engines
// against the same shards THEN the second run's shard stats show reused
// trials and unchanged sampled-trial counts.
func TestClusterShardCacheReuse(t *testing.T) {
	db := skewDB(t)
	sh := cluster.NewShard(cluster.ShardConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sh.Serve(ln)
	defer sh.Close()
	peers := []string{ln.Addr().String()}
	opts := []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}

	first := evalClustered(t, db, grpConfProgram, peers, opts...)
	sampledAfterFirst := sh.Stats().TrialsSampled
	if sampledAfterFirst == 0 {
		t.Fatal("first clustered run sampled nothing on the shard")
	}
	second := evalClustered(t, db, grpConfProgram, peers, opts...)
	if first != second {
		t.Errorf("repeated run diverges:\n got: %q\nwant: %q", second, first)
	}
	st := sh.Stats()
	if st.TrialsSampled != sampledAfterFirst {
		t.Errorf("second run re-sampled: %d → %d trials", sampledAfterFirst, st.TrialsSampled)
	}
	if st.TrialsReused == 0 {
		t.Error("second run reported no reused trials")
	}
}
