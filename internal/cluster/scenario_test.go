package cluster_test

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultproxy"
	"repro/pdb"
)

// Spec scenarios for the horizontal-sharding surface, written
// SHALL / WHEN / THEN against the public pdb API with real shard servers
// on loopback TCP. The fixture mirrors the stratified scenario suite: two
// independent relations whose product yields skewed, connected clause
// components, so both the flat and the stratified estimation paths
// genuinely sample.

// skewDB builds the fixture database.
func skewDB(t testing.TB) *pdb.DB {
	t.Helper()
	probsR := []float64{0.9, 0.6, 0.05, 0.02, 0.002, 0.0005}
	rowsR := make([][]any, len(probsR))
	for i := range probsR {
		rowsR[i] = []any{int64(i), int64(i / 2)}
	}
	db, err := pdb.NewBuilder().
		Independent("R", []string{"ID", "Grp"}, rowsR, probsR).
		Independent("S", []string{"SID"},
			[][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}, {int64(5)}, {int64(6)}},
			[]float64{0.8, 0.3, 0.04, 0.01, 0.002, 0.001}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const grpConfProgram = `conf(project[Grp](product(R, S)))`

// startShards boots n in-process shard servers on loopback and returns
// their addresses. Cleanup closes them.
func startShards(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		sh := cluster.NewShard(cluster.ShardConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go sh.Serve(ln)
		t.Cleanup(func() { sh.Close() })
	}
	return addrs
}

// fingerprint renders every result row, in order, as the service would.
func fingerprint(t testing.TB, res *pdb.Result) string {
	t.Helper()
	var sb strings.Builder
	for row := range res.Rows() {
		sb.WriteString(row.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// evalClustered evaluates the program on a fresh engine backed by the
// given peers (nil peers = single-node) and returns the row fingerprint.
func evalClustered(t testing.TB, db *pdb.DB, program string, peers []string, opts ...pdb.Option) string {
	t.Helper()
	var engOpts []pdb.EngineOption
	if peers != nil {
		engOpts = append(engOpts, pdb.WithEngineCluster(pdb.ClusterOptions{Peers: peers}))
	}
	eng, err := db.Engine(engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(program)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(t, res)
}

// SHALL: a fixed-seed evaluation returns bit-identical rows on 1, 2, and
// 4 shards and on a single node — the worker-count determinism contract
// generalized to shard count — on both estimation paths.
//
// WHEN the same program runs single-node and clustered at several shard
// counts THEN every fingerprint matches byte for byte.
func TestClusterShardCountBitParity(t *testing.T) {
	db := skewDB(t)
	for _, tc := range []struct {
		name string
		opts []pdb.Option
	}{
		{"flat", []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}},
		{"stratified", []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42), pdb.WithStrata(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := evalClustered(t, db, grpConfProgram, nil, tc.opts...)
			for _, shards := range []int{1, 2, 4} {
				peers := startShards(t, shards)
				got := evalClustered(t, db, grpConfProgram, peers, tc.opts...)
				if got != want {
					t.Errorf("%d shards: rows diverge from single-node\n got: %q\nwant: %q", shards, got, want)
				}
			}
		})
	}
}

// SHALL: σ̂ evaluations distribute too, bit-identically.
//
// WHEN an approximate-select program runs on 2 shards THEN its rows match
// the single-node run byte for byte.
func TestClusterSigmaHatBitParity(t *testing.T) {
	db := skewDB(t)
	program := `aselect[p1 >= 0.05 over conf[Grp]](project[Grp](product(R, S)))`
	opts := []pdb.Option{pdb.WithEpsilon(0.1), pdb.WithDelta(0.1), pdb.WithSeed(7)}
	want := evalClustered(t, db, program, nil, opts...)
	peers := startShards(t, 2)
	got := evalClustered(t, db, program, peers, opts...)
	if got != want {
		t.Errorf("σ̂ rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
	// And on the stratified σ̂ path.
	sopts := append(opts, pdb.WithStrata(4))
	want = evalClustered(t, db, program, nil, sopts...)
	got = evalClustered(t, db, program, startShards(t, 4), sopts...)
	if got != want {
		t.Errorf("stratified σ̂ rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
}

// evalOn evaluates the program on an engine built with the given cluster
// options and returns the row fingerprint plus the final cluster stats.
// A nil error is asserted — these are the zero-client-visible-errors
// scenarios.
func evalOn(t testing.TB, db *pdb.DB, program string, copts pdb.ClusterOptions, opts ...pdb.Option) (string, *pdb.ClusterStats) {
	t.Helper()
	eng, err := db.Engine(pdb.WithEngineCluster(copts))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(program)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), opts...)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return fingerprint(t, res), eng.ClusterStats()
}

// SHALL: killing any single shard mid-query fails its chunk ranges over
// to the survivors — zero client-visible errors, rows bit-identical to
// single-node, on the flat, stratified, and σ̂ paths.
//
// WHEN one of four shards dies mid-response (deterministic frame-aware
// cut via faultproxy, then refused reconnects) THEN Eval succeeds with
// the single-node fingerprint and the stats record failovers.
func TestClusterShardFailoverBitParity(t *testing.T) {
	db := skewDB(t)
	paths := []struct {
		name    string
		program string
		opts    []pdb.Option
	}{
		{"flat", grpConfProgram, []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}},
		{"stratified", grpConfProgram, []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42), pdb.WithStrata(4)}},
		{"sigma-hat", `aselect[p1 >= 0.05 over conf[Grp]](project[Grp](product(R, S)))`,
			[]pdb.Option{pdb.WithEpsilon(0.1), pdb.WithDelta(0.1), pdb.WithSeed(7)}},
	}
	for _, path := range paths {
		t.Run(path.name, func(t *testing.T) {
			want := evalClustered(t, db, path.program, nil, path.opts...)
			var totalFailovers, victimsHit int64
			for victim := 0; victim < 4; victim++ {
				// Three healthy shards plus one behind a chaos proxy that
				// lets the handshake through, cuts the first sample
				// response mid-frame, and refuses every reconnect.
				backends := startShards(t, 4)
				peers := make([]string, 4)
				copy(peers, backends)
				fp := faultproxy.New(backends[victim], faultproxy.Script{
					Conns:   map[int]faultproxy.Policy{1: {Action: faultproxy.Truncate, CutFrames: 1, CutBytes: 3}},
					Default: faultproxy.Policy{Action: faultproxy.Refuse},
				}, 42)
				if err := fp.Start("127.0.0.1:0"); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { fp.Close() })
				peers[victim] = fp.Addr()
				got, cs := evalOn(t, db, path.program, pdb.ClusterOptions{
					Peers:            peers,
					DialTimeout:      time.Second,
					Retries:          1,
					RetryBackoff:     5 * time.Millisecond,
					BreakerThreshold: 2,
					ProbeInterval:    -1, // victim never comes back; don't probe
					// Hedging off: an adaptive hedge can cover the victim's
					// units and finish the batch before its retries exhaust,
					// leaving the failure unrecorded — this scenario is about
					// re-dispatch, and hedging has its own test below.
					HedgeAfter: -1,
				}, path.opts...)
				if got != want {
					t.Errorf("victim %d: rows diverge from single-node\n got: %q\nwant: %q", victim, got, want)
				}
				// A small wave may not place any chunk on the victim
				// (placement hashes its address); the kill only proves
				// failover when the victim actually carried traffic.
				if fp.Stats().Conns > 0 {
					victimsHit++
					if cs.Failovers == 0 {
						t.Errorf("victim %d: carried traffic and died, but no failovers recorded", victim)
					}
					for _, s := range cs.Shards {
						if s.Addr == peers[victim] && s.Healthy {
							t.Errorf("victim %d: killed shard reported healthy", victim)
						}
					}
				}
				totalFailovers += cs.Failovers
			}
			if victimsHit == 0 {
				t.Error("no victim received any traffic across 4 kills; the scenario proved nothing")
			}
			if totalFailovers == 0 {
				t.Error("no failovers recorded across 4 kills")
			}
		})
	}
}

// SHALL: when every shard is gone and local fallback is off, Eval
// returns a typed *pdb.ClusterError in bounded time — never a hang —
// and once the breakers trip the failure is immediate and names the
// cluster, not one peer.
//
// WHEN both shards refuse connections THEN the first Eval surfaces a
// *pdb.ClusterError for a dead peer and the second (breakers now open)
// wraps pdb.ErrNoHealthyShards.
func TestClusterAllShardsDeadTypedError(t *testing.T) {
	db := skewDB(t)
	var peers []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, ln.Addr().String())
		ln.Close() // refused from the start
	}
	eng, err := db.Engine(pdb.WithEngineCluster(pdb.ClusterOptions{
		Peers:            peers,
		DialTimeout:      500 * time.Millisecond,
		RequestTimeout:   time.Second,
		Retries:          1,
		RetryBackoff:     10 * time.Millisecond,
		BreakerThreshold: 1,
		ProbeInterval:    -1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = q.Eval(context.Background(), pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(1))
	var ce *pdb.ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("Eval error = %v (%T), want *pdb.ClusterError", err, err)
	}
	if ce.Shard != peers[0] && ce.Shard != peers[1] {
		t.Errorf("ClusterError.Shard = %q, want one of %v", ce.Shard, peers)
	}
	if ce.Attempts != 2 {
		t.Errorf("ClusterError.Attempts = %d, want 2 (1 try + 1 retry)", ce.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("failure took %v; the deadline/retry envelope should bound it to seconds", elapsed)
	}
	// Breakers tripped at threshold 1: the next evaluation is refused at
	// plan time with the cluster-wide sentinel.
	_, err = q.Eval(context.Background(), pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(1))
	if !errors.As(err, &ce) {
		t.Fatalf("second Eval error = %v (%T), want *pdb.ClusterError", err, err)
	}
	if !errors.Is(err, pdb.ErrNoHealthyShards) {
		t.Errorf("second Eval error = %v, want wrapped pdb.ErrNoHealthyShards", err)
	}
	cs := eng.ClusterStats()
	for _, s := range cs.Shards {
		if s.Breaker != "open" {
			t.Errorf("shard %s breaker = %q, want open", s.Addr, s.Breaker)
		}
		if s.Healthy {
			t.Errorf("dead shard %s reported healthy", s.Addr)
		}
		if s.LastError == "" {
			t.Errorf("dead shard %s reported no last error", s.Addr)
		}
	}
}

// SHALL: with LocalFallback enabled the coordinator degrades to sampling
// in-process when the whole fleet is down — still bit-identical, because
// the fallback replays the same wire-codec remap a shard would.
//
// WHEN both shards refuse connections and LocalFallback is on THEN Eval
// succeeds with the single-node fingerprint and records local fallbacks.
func TestClusterLocalFallbackBitParity(t *testing.T) {
	db := skewDB(t)
	opts := []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}
	want := evalClustered(t, db, grpConfProgram, nil, opts...)
	var peers []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, ln.Addr().String())
		ln.Close()
	}
	got, cs := evalOn(t, db, grpConfProgram, pdb.ClusterOptions{
		Peers:            peers,
		DialTimeout:      300 * time.Millisecond,
		Retries:          0,
		RetryBackoff:     5 * time.Millisecond,
		BreakerThreshold: 1,
		ProbeInterval:    -1,
		LocalFallback:    true,
	}, opts...)
	if got != want {
		t.Errorf("local-fallback rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
	if cs.LocalFallbacks == 0 {
		t.Error("no local fallbacks recorded")
	}
	if !cs.LocalFallback {
		t.Error("stats do not report local fallback enabled")
	}
}

// SHALL: a straggling shard is hedged — its work unit is duplicated to a
// fast shard after HedgeAfter and the first response wins, with the
// duplicate discarded. Rows stay bit-identical: the race is bit-neutral
// by construction.
//
// WHEN one of two shards delays every response far beyond the hedge
// delay THEN Eval matches single-node and the stats record hedges and
// hedge wins.
func TestClusterHedgedStragglerBitParity(t *testing.T) {
	db := skewDB(t)
	opts := []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}
	want := evalClustered(t, db, grpConfProgram, nil, opts...)
	backends := startShards(t, 2)
	fp := faultproxy.New(backends[1], faultproxy.Script{
		Default: faultproxy.Policy{Action: faultproxy.Pass, Latency: 400 * time.Millisecond},
	}, 7)
	if err := fp.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fp.Close() })
	got, cs := evalOn(t, db, grpConfProgram, pdb.ClusterOptions{
		Peers:      []string{backends[0], fp.Addr()},
		HedgeAfter: 50 * time.Millisecond,
	}, opts...)
	if got != want {
		t.Errorf("hedged rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
	if cs.Hedges == 0 {
		t.Error("no hedges recorded against a 400ms straggler with a 50ms hedge delay")
	}
	if cs.HedgeWins == 0 {
		t.Error("no hedge wins recorded")
	}
}

// SHALL: a tripped breaker re-admits the shard automatically once
// background probes see it healthy again — no operator action, no
// restart.
//
// WHEN a proxied shard goes hard-down (queries fail over and trip its
// breaker) and later comes back THEN the breaker closes within a few
// probe intervals and the shard serves RPCs again.
func TestClusterBreakerReadmission(t *testing.T) {
	db := skewDB(t)
	// Each phase evaluates under its own seed: the engine's estimator
	// cache is keyed by (content, seed), so a reused seed would replay
	// cached counts without touching the shards at all.
	seedOpts := func(seed int64) []pdb.Option {
		return []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(seed)}
	}
	backends := startShards(t, 2)
	fp := faultproxy.New(backends[1], faultproxy.Script{}, 1)
	if err := fp.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fp.Close() })
	peers := []string{backends[0], fp.Addr()}
	eng, err := db.Engine(pdb.WithEngineCluster(pdb.ClusterOptions{
		Peers:            peers,
		DialTimeout:      500 * time.Millisecond,
		Retries:          0,
		RetryBackoff:     5 * time.Millisecond,
		BreakerThreshold: 1,
		ProbeInterval:    50 * time.Millisecond,
		HedgeAfter:       -1, // deterministic failover accounting (see above)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(seed int64) string {
		t.Helper()
		res, err := q.Eval(context.Background(), seedOpts(seed)...)
		if err != nil {
			t.Fatalf("Eval(seed %d): %v", seed, err)
		}
		return fingerprint(t, res)
	}
	single := func(seed int64) string {
		t.Helper()
		return evalClustered(t, db, grpConfProgram, nil, seedOpts(seed)...)
	}
	if got, want := eval(42), single(42); got != want {
		t.Fatalf("healthy-cluster rows diverge:\n got: %q\nwant: %q", got, want)
	}
	fp.SetDown(true)
	if got, want := eval(43), single(43); got != want {
		t.Fatalf("rows diverge during outage:\n got: %q\nwant: %q", got, want)
	}
	breaker := func(addr string) string {
		for _, s := range eng.ClusterStats().Shards {
			if s.Addr == addr {
				return s.Breaker
			}
		}
		return "?"
	}
	// half-open is fine too: a background probe may already be in
	// flight — either way the shard is out of the placement view.
	if st := breaker(fp.Addr()); st == "closed" {
		t.Fatalf("downed shard breaker = %q, want open or half-open", st)
	}
	fp.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for breaker(fp.Addr()) != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker still %q 5s after the shard recovered", breaker(fp.Addr()))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got, want := eval(44), single(44); got != want {
		t.Fatalf("rows diverge after re-admission:\n got: %q\nwant: %q", got, want)
	}
	cs := eng.ClusterStats()
	if cs.Probes == 0 {
		t.Error("no probes recorded across a trip/recover cycle")
	}
	if cs.Failovers == 0 {
		t.Error("no failovers recorded for the outage query")
	}
}

// flakyProxy fronts a live shard but kills the first `drops` accepted
// connections before any bytes flow — a transient network failure.
func flakyProxy(t *testing.T, backend string, drops int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var dropped atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if dropped.Add(1) <= int64(drops) {
				conn.Close()
				continue
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); io.Copy(up, conn); up.Close() }()
			go func() { defer wg.Done(); io.Copy(conn, up); conn.Close() }()
			go func() { wg.Wait() }()
		}
	}()
	return ln.Addr().String()
}

// SHALL: a transient shard failure is retried with backoff and the
// evaluation succeeds — bit-identically to an unperturbed run.
//
// WHEN the first connection to a shard is dropped THEN the retry lands
// and the rows match the single-node fingerprint.
func TestClusterTransientFailureRetried(t *testing.T) {
	db := skewDB(t)
	opts := []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}
	want := evalClustered(t, db, grpConfProgram, nil, opts...)
	backend := startShards(t, 1)[0]
	proxy := flakyProxy(t, backend, 1)
	eng, err := db.Engine(pdb.WithEngineCluster(pdb.ClusterOptions{
		Peers:        []string{proxy},
		Retries:      2,
		RetryBackoff: 10 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.Prepare(grpConfProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(context.Background(), opts...)
	if err != nil {
		t.Fatalf("Eval through flaky proxy: %v", err)
	}
	if got := fingerprint(t, res); got != want {
		t.Errorf("retried rows diverge from single-node\n got: %q\nwant: %q", got, want)
	}
	cs := eng.ClusterStats()
	if cs == nil || len(cs.Shards) != 1 {
		t.Fatalf("ClusterStats = %+v, want one shard", cs)
	}
	if cs.Shards[0].Retries == 0 {
		t.Error("transient failure recorded no retries")
	}
	if !cs.Shards[0].Healthy {
		t.Error("recovered shard reported unhealthy")
	}
}

// SHALL: shard-side chunk caches serve repeated scatters without
// re-sampling, and the coordinator reports the reuse.
//
// WHEN the same fixed-budget query evaluates twice on fresh engines
// against the same shards THEN the second run's shard stats show reused
// trials and unchanged sampled-trial counts.
func TestClusterShardCacheReuse(t *testing.T) {
	db := skewDB(t)
	sh := cluster.NewShard(cluster.ShardConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sh.Serve(ln)
	defer sh.Close()
	peers := []string{ln.Addr().String()}
	opts := []pdb.Option{pdb.WithConfBudget(0.05, 0.05), pdb.WithSeed(42)}

	first := evalClustered(t, db, grpConfProgram, peers, opts...)
	sampledAfterFirst := sh.Stats().TrialsSampled
	if sampledAfterFirst == 0 {
		t.Fatal("first clustered run sampled nothing on the shard")
	}
	second := evalClustered(t, db, grpConfProgram, peers, opts...)
	if first != second {
		t.Errorf("repeated run diverges:\n got: %q\nwant: %q", second, first)
	}
	st := sh.Stats()
	if st.TrialsSampled != sampledAfterFirst {
		t.Errorf("second run re-sampled: %d → %d trials", sampledAfterFirst, st.TrialsSampled)
	}
	if st.TrialsReused == 0 {
		t.Error("second run reported no reused trials")
	}
}
