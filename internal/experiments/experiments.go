// Package experiments contains one driver per reproducible artifact of the
// paper — its three figures, its worked examples, and its quantitative
// theorems (see DESIGN.md's experiment index E1–E10). Each driver prints a
// paper-style table and returns the key measured quantities so golden
// tests and EXPERIMENTS.md can assert the paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Seed drives all randomness; equal seeds give equal tables.
	Seed int64
	// Quick shrinks trial counts for use in tests and benchmarks.
	Quick bool
	// Workers sets the engine's estimation parallelism for the
	// engine-backed experiments (E9/E10); 0 selects GOMAXPROCS. Tables
	// are worker-count-independent by the engine's determinism contract.
	Workers int
	// NoResume disables cross-restart estimator reuse in the
	// engine-backed experiments (core.Options.NoResume). All
	// result-quality columns (estimates, error rates, bounds, final l)
	// are resume-independent by the engine's bit-identity contract; only
	// the sampled/reused trial-accounting columns change, which is what
	// the knob exists to measure.
	NoResume bool
	// Ctx, when non-nil, cancels the engine-backed experiments (E9/E10)
	// cooperatively: an expired deadline aborts evaluation between
	// estimation chunks with ctx.Err(). Nil means context.Background().
	Ctx context.Context
}

// ctx returns the configured context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Summary carries an experiment's headline measurements.
type Summary struct {
	Name   string
	Values map[string]float64
}

func newSummary(name string) Summary {
	return Summary{Name: name, Values: map[string]float64{}}
}

// Print renders the summary's key/value pairs sorted by key.
func (s Summary) Print(w io.Writer) {
	keys := make([]string, 0, len(s.Values))
	for k := range s.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-40s %.6g\n", k, s.Values[k])
	}
}

// Runner is an experiment entry point.
type Runner func(w io.Writer, cfg Config) (Summary, error)

// All lists the experiments in order, keyed by their DESIGN.md ids.
func All() []struct {
	ID, Title string
	Run       Runner
} {
	return []struct {
		ID, Title string
		Run       Runner
	}{
		{"E1", "Figure 1 / Example 2.2: coin tossing, U-relations and the posterior table U", E1CoinExample},
		{"E2", "Figure 2 / Example 5.4: ε-maximization geometry", E2EpsilonGeometry},
		{"E3", "Figure 3 / Theorem 5.8: adaptive predicate approximation", E3AdaptivePredicate},
		{"E4", "Section 4 / Proposition 4.2: Karp–Luby FPRAS guarantee", E4KarpLubyFPRAS},
		{"E5", "Theorem 3.4 vs Corollary 4.3: exact #P vs FPRAS crossover", E5ExactVsApprox},
		{"E6", "Theorem 5.2: closed-form ε vs brute-force orthotopes", E6LinearEpsilon},
		{"E7", "Theorem 5.5: corner-point criterion for algebraic predicates", E7CornerPoint},
		{"E8", "Definition 5.6 / Example 5.7: singularities", E8Singularity},
		{"E9", "Lemma 6.4 / Example 6.5: provenance error bounds", E9ProvenanceBounds},
		{"E10", "Theorem 6.7: end-to-end approximate query evaluation", E10QueryApprox},
	}
}

// Lookup finds an experiment by id (e.g. "E4").
func Lookup(id string) (Runner, string, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, e.Title, true
		}
	}
	return nil, "", false
}
