package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/predapprox"
	"repro/internal/stats"
	"repro/internal/vars"
)

// E6LinearEpsilon validates Theorem 5.2: the closed-form ε for random
// linear inequalities coincides with the brute-force maximal homogeneous
// orthotope, and the Boolean-combination rules stay sound.
func E6LinearEpsilon(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E6")
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := cfg.scale(400, 80)

	var diffs []float64
	clamped := 0
	for i := 0; i < trials; i++ {
		k := 1 + rng.Intn(3)
		coef := make([]float64, k)
		for j := range coef {
			coef[j] = rng.Float64()*4 - 2
		}
		phi := predapprox.Linear(coef, rng.Float64()*1.2-0.6)
		p := make([]float64, k)
		for j := range p {
			p[j] = 0.1 + 0.8*rng.Float64()
		}
		got := phi.Margin(p)
		if got >= predapprox.EpsMax-1e-6 {
			clamped++
			continue
		}
		bf := predapprox.BruteForceMargin(phi, p, 0.004, 6)
		diffs = append(diffs, math.Abs(got-bf))
	}
	fmt.Fprintf(w, "Theorem 5.2 closed form vs brute force (%d random linear atoms, %d clamped at ε≈1):\n", trials, clamped)
	tbl := stats.NewTable(w, "mean |diff|", "p95 |diff|", "max |diff|", "grid step")
	tbl.Row(stats.Mean(diffs), stats.Quantile(diffs, 0.95), stats.Max(diffs), 0.004)
	tbl.Flush()
	s.Values["max_diff"] = stats.Max(diffs)
	s.Values["mean_diff"] = stats.Mean(diffs)

	// Boolean combinations: soundness rate of the composed margin.
	unsound := 0
	boolTrials := cfg.scale(300, 60)
	for i := 0; i < boolTrials; i++ {
		mk := func() predapprox.Pred {
			coef := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
			return predapprox.Linear(coef, rng.Float64()*1.2-0.6)
		}
		var phi predapprox.Pred
		if rng.Intn(2) == 0 {
			phi = predapprox.AndOf(mk(), mk())
		} else {
			phi = predapprox.OrOf(mk(), predapprox.NotOf(mk()))
		}
		p := []float64{0.1 + 0.8*rng.Float64(), 0.1 + 0.8*rng.Float64()}
		m := phi.Margin(p)
		if m <= 1e-9 {
			continue
		}
		bf := predapprox.BruteForceMargin(phi, p, 0.004, 8)
		if m > bf+0.012 && m < predapprox.EpsMax-1e-6 {
			unsound++
		}
	}
	fmt.Fprintf(w, "\nBoolean combinations (min/max rules): %d/%d margins exceeded the brute-force radius.\n", unsound, boolTrials)
	s.Values["bool_unsound"] = float64(unsound)
	return s, nil
}

// E7CornerPoint validates Theorem 5.5: for single-occurrence algebraic
// predicates, corner agreement implies orthotope homogeneity; the
// binary-search margin is both sound (grid-verified) and maximal.
func E7CornerPoint(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E7")
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := cfg.scale(250, 50)

	mk := []func() (predapprox.AExpr, int){
		func() (predapprox.AExpr, int) {
			return predapprox.Sub(predapprox.Mul(predapprox.Slot(0), predapprox.Slot(1)), predapprox.Num(0.05+0.3*rng.Float64())), 2
		},
		func() (predapprox.AExpr, int) {
			return predapprox.Sub(predapprox.Div(predapprox.Slot(0), predapprox.Slot(1)), predapprox.Num(0.3+rng.Float64())), 2
		},
		func() (predapprox.AExpr, int) {
			return predapprox.Sub(predapprox.Add(predapprox.Mul(predapprox.Slot(0), predapprox.Slot(1)), predapprox.Slot(2)), predapprox.Num(0.2+0.6*rng.Float64())), 3
		},
	}
	unsound, nontrivial := 0, 0
	var margins []float64
	for i := 0; i < trials; i++ {
		f, k := mk[rng.Intn(len(mk))]()
		atom, err := predapprox.NewAlgAtom(f, k)
		if err != nil {
			return s, err
		}
		p := make([]float64, k)
		for j := range p {
			p[j] = 0.15 + 0.7*rng.Float64()
		}
		m := atom.Margin(p)
		margins = append(margins, m)
		if m <= 1e-6 || m >= predapprox.EpsMax-1e-6 {
			continue
		}
		nontrivial++
		if !predapprox.OrthotopeHomogeneous(atom, p, m*0.98, 7) {
			unsound++
		}
	}
	fmt.Fprintf(w, "Theorem 5.5 corner-point margins (%d random algebraic atoms):\n", trials)
	tbl := stats.NewTable(w, "nontrivial margins", "grid-verified unsound", "mean margin", "median margin")
	tbl.Row(nontrivial, unsound, stats.Mean(margins), stats.Quantile(margins, 0.5))
	tbl.Flush()
	s.Values["unsound"] = float64(unsound)
	s.Values["nontrivial"] = float64(nontrivial)
	return s, nil
}

// E8Singularity reproduces the singularity discussion (Definition 5.6,
// Example 5.7, Remark 5.3): the cost of the Figure 3 algorithm blows up as
// the true value approaches the decision boundary until the ε₀ floor
// bounds it, and the certainty test conf = 1 is never positively
// decidable.
func E8Singularity(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E8")
	rng := rand.New(rand.NewSource(cfg.Seed))
	const eps0, delta = 0.02, 0.1
	reps := cfg.scale(25, 8)

	fmt.Fprintf(w, "Figure 3 cost vs distance to the boundary (φ: p ≥ 0.5, ε₀=%.2f, δ=%.2f):\n", eps0, delta)
	tbl := stats.NewTable(w, "p − c", "singular (ε₀)?", "mean rounds", "mean trials", "flag rate")
	var roundsAtBoundary float64
	for _, gap := range []float64{0.2, 0.1, 0.05, 0.02, 0.005, 0.0} {
		p := 0.5 + gap
		phi := predapprox.Linear([]float64{1}, 0.5)
		sing := predapprox.IsSingular(phi, []float64{p}, eps0)
		var rounds, flags, trials []float64
		for r := 0; r < reps; r++ {
			tab := vars.NewTable()
			f := calibratedDNF(tab, p)
			est, err := karpluby.NewEstimator(f, tab, rng)
			if err != nil {
				return s, err
			}
			d, err := predapprox.Decide(phi, []predapprox.Approximable{est}, predapprox.Options{Eps0: eps0, Delta: delta})
			if err != nil {
				return s, err
			}
			rounds = append(rounds, float64(d.Rounds))
			trials = append(trials, float64(est.Trials()))
			if d.HitEpsilonFloor {
				flags = append(flags, 1)
			} else {
				flags = append(flags, 0)
			}
		}
		tbl.Row(gap, sing, stats.Mean(rounds), stats.Mean(trials), stats.Mean(flags))
		if gap == 0 {
			roundsAtBoundary = stats.Mean(rounds)
			s.Values["flag_rate_at_boundary"] = stats.Mean(flags)
		}
	}
	tbl.Flush()
	s.Values["rounds_at_boundary"] = roundsAtBoundary

	// Example 5.7: conf = 1 is a singularity for every ε₀.
	one := predapprox.Linear([]float64{1}, 1)
	all := true
	for _, e := range []float64{0.001, 0.01, 0.1} {
		if !predapprox.IsSingular(one, []float64{1}, e) {
			all = false
		}
	}
	fmt.Fprintf(w, "\nExample 5.7: p = 1 under φ: p ≥ 1 is an ε₀-singularity for all tested ε₀: %v\n", all)
	if all {
		s.Values["certainty_always_singular"] = 1
	}
	return s, nil
}

// calibratedDNF builds a 2-clause DNF over fresh variables whose exact
// confidence is target: clauses x=0 and y=0, each of probability
// a = 1−sqrt(1−target), give p = 1−(1−a)² = target.
func calibratedDNF(tab *vars.Table, target float64) dnf.F {
	a := 1 - math.Sqrt(1-target)
	base := tab.Len()
	tab.Add(fmt.Sprintf("c%d_x", base), []float64{a, 1 - a}, nil)
	tab.Add(fmt.Sprintf("c%d_y", base), []float64{a, 1 - a}, nil)
	return dnf.F{
		vars.MustAssignment(vars.Binding{Var: vars.Var(base), Alt: 0}),
		vars.MustAssignment(vars.Binding{Var: vars.Var(base + 1), Alt: 0}),
	}
}
