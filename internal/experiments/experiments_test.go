package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func run(t *testing.T, r Runner) (Summary, string) {
	t.Helper()
	var buf bytes.Buffer
	s, err := r(&buf, Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatalf("experiment failed: %v\noutput:\n%s", err, buf.String())
	}
	return s, buf.String()
}

func TestE1GoldenPosterior(t *testing.T) {
	s, out := run(t, E1CoinExample)
	if math.Abs(s.Values["posterior_fair"]-1.0/3) > 1e-9 {
		t.Errorf("posterior fair = %v, want 1/3", s.Values["posterior_fair"])
	}
	if math.Abs(s.Values["posterior_2headed"]-2.0/3) > 1e-9 {
		t.Errorf("posterior 2headed = %v, want 2/3", s.Values["posterior_2headed"])
	}
	if !strings.Contains(out, "Figure 1(a)") || !strings.Contains(out, "W:") {
		t.Error("missing Figure 1(a) rendering")
	}
	// Figure 1(b) structure: U_S has 6 U-tuples, U_T has 2.
	if s.Values["us_tuples"] != 6 {
		t.Errorf("U_S tuples = %v, want 6 (Figure 1(b))", s.Values["us_tuples"])
	}
	if s.Values["ut_tuples"] != 2 {
		t.Errorf("U_T tuples = %v, want 2 (Figure 1(b))", s.Values["ut_tuples"])
	}
}

func TestE2GoldenEpsilon(t *testing.T) {
	s, _ := run(t, E2EpsilonGeometry)
	if math.Abs(s.Values["epsilon"]-1.0/3) > 1e-9 {
		t.Errorf("ε = %v, want 1/3", s.Values["epsilon"])
	}
	if math.Abs(s.Values["orthotope_lo"]-3.0/8) > 1e-9 || math.Abs(s.Values["orthotope_hi"]-3.0/4) > 1e-9 {
		t.Error("orthotope wrong")
	}
	if s.Values["max_closed_vs_bruteforce_diff"] > 0.02 {
		t.Errorf("closed form deviates from brute force by %v", s.Values["max_closed_vs_bruteforce_diff"])
	}
}

func TestE3ErrorWithinDelta(t *testing.T) {
	s, _ := run(t, E3AdaptivePredicate)
	for _, band := range []string{"wide", "medium", "narrow"} {
		if got := s.Values["err_rate_"+band]; got > s.Values["delta"] {
			t.Errorf("%s band error rate %v exceeds δ", band, got)
		}
	}
	if s.Values["speedup_wide"] <= 1 {
		t.Errorf("adaptive speedup on wide margins should exceed 1, got %v", s.Values["speedup_wide"])
	}
}

func TestE4FPRASWithinDelta(t *testing.T) {
	s, _ := run(t, E4KarpLubyFPRAS)
	if s.Values["worst_violation_over_delta"] > 1 {
		t.Errorf("FPRAS violation rate exceeded δ: ratio %v", s.Values["worst_violation_over_delta"])
	}
}

func TestE5ExactVsApprox(t *testing.T) {
	s, out := run(t, E5ExactVsApprox)
	if !strings.Contains(out, "karp-luby") {
		t.Error("table missing")
	}
	_ = s
}

func TestE6ClosedFormMatches(t *testing.T) {
	s, _ := run(t, E6LinearEpsilon)
	if s.Values["max_diff"] > 0.02 {
		t.Errorf("Theorem 5.2 closed form deviates: max diff %v", s.Values["max_diff"])
	}
	if s.Values["bool_unsound"] > 0 {
		t.Errorf("%v unsound Boolean-combination margins", s.Values["bool_unsound"])
	}
}

func TestE7CornerPointSound(t *testing.T) {
	s, _ := run(t, E7CornerPoint)
	if s.Values["unsound"] > 0 {
		t.Errorf("%v unsound corner-point margins", s.Values["unsound"])
	}
	if s.Values["nontrivial"] == 0 {
		t.Error("no nontrivial margins exercised")
	}
}

func TestE8SingularityBehaviour(t *testing.T) {
	s, _ := run(t, E8Singularity)
	if s.Values["certainty_always_singular"] != 1 {
		t.Error("conf=1 must be singular for every ε₀ (Example 5.7)")
	}
	if s.Values["flag_rate_at_boundary"] < 0.5 {
		t.Errorf("boundary instances flagged only %v of the time", s.Values["flag_rate_at_boundary"])
	}
}

func TestE9BoundsDominateFlips(t *testing.T) {
	s, _ := run(t, E9ProvenanceBounds)
	for _, n := range []int{1, 2, 4, 8} {
		bound := s.Values[sprintfKey("fanin_bound_n%d", n)]
		flips := s.Values[sprintfKey("flip_rate_n%d", n)]
		// Reported bounds must dominate measured flip rates (allowing the
		// statistical noise of quick mode: compare against bound + slack).
		if flips > bound+0.25 {
			t.Errorf("n=%d: flip rate %v far above bound %v", n, flips, bound)
		}
	}
}

func TestE10ErrorWithinDelta(t *testing.T) {
	s, _ := run(t, E10QueryApprox)
	for _, n := range []int{4, 8, 16} {
		if got := s.Values[sprintfKey("err_rate_n%d", n)]; got > s.Values["delta"]+0.15 {
			t.Errorf("n=%d membership error rate %v well above δ", n, got)
		}
		if got := s.Values[sprintfKey("max_bound_n%d", n)]; got > s.Values["delta"]+1e-9 {
			t.Errorf("n=%d reported bound %v above δ", n, got)
		}
	}
	if s.Values["cond_prob_selected"] != 1 || s.Values["cond_prob_is_fair"] != 1 {
		t.Error("conditional-probability σ̂ did not select exactly the fair coin")
	}
}

func sprintfKey(format string, n int) string {
	return strings.ReplaceAll(format, "%d", itoa(n))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestAllAndLookup(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(all))
	}
	for _, e := range all {
		if _, _, ok := Lookup(e.ID); !ok {
			t.Errorf("Lookup(%s) failed", e.ID)
		}
	}
	if _, _, ok := Lookup("E99"); ok {
		t.Error("Lookup of unknown id should fail")
	}
}

func TestSummaryPrint(t *testing.T) {
	s := newSummary("x")
	s.Values["b"] = 2
	s.Values["a"] = 1
	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Error("summary keys not sorted")
	}
	var _ io.Writer = &buf
}
