package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/provenance"
	"repro/internal/stats"
	"repro/internal/urel"
	"repro/internal/workload"
)

// E9ProvenanceBounds validates Lemma 6.4 and Example 6.5: membership
// errors of σ̂ outputs propagate through positive relational algebra by
// summation over provenance, so a projection with fan-in n carries a bound
// ≈ n·µ, and measured flip rates stay below the reported bounds.
func E9ProvenanceBounds(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E9")
	rng := rand.New(rand.NewSource(cfg.Seed))
	reps := cfg.scale(40, 10)
	const eps0, delta = 0.05, 0.1

	fmt.Fprintln(w, "Example 6.5 fan-in: π_C(σ̂_{conf ≥ 0.5}(R)) over n multi-clause tuples")
	fmt.Fprintf(w, "(ε₀=%.2f, per-query δ=%.2f; bounds are per result tuple)\n", eps0, delta)
	tbl := stats.NewTable(w, "n", "mean per-tuple bound µ", "fan-in bound", "≈ n·µ", "measured flip rate")
	for _, n := range []int{1, 2, 4, 8} {
		var fanIn, perTuple, flips []float64
		for r := 0; r < reps; r++ {
			seed := rng.Int63()
			db := workload.MultiClause(rand.New(rand.NewSource(seed)), "R", n, 3, 4, 2)
			sel := algebra.ApproxSelect{
				In:   algebra.Base{Name: "R"},
				Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
				Pred: predapprox.Linear([]float64{1}, 0.5),
			}
			proj := algebra.Project{In: sel, Targets: []expr.Target{expr.As("C", expr.CInt(1))}}

			// Fix the round budget so bounds are comparable across runs.
			opts := core.Options{Eps0: eps0, Delta: delta, Seed: seed, Workers: cfg.Workers, NoResume: cfg.NoResume, InitialRounds: 256, MaxRounds: 256}
			selRes, err := core.NewEngine(db, opts).EvalApproxContext(cfg.ctx(), sel)
			if err != nil {
				return s, err
			}
			for _, v := range selRes.Errors {
				perTuple = append(perTuple, v)
			}
			projRes, err := core.NewEngine(db, opts).EvalApproxContext(cfg.ctx(), proj)
			if err != nil {
				return s, err
			}
			var pb float64
			for _, v := range projRes.Errors {
				pb = v
			}
			fanIn = append(fanIn, pb)

			// Measured flip: does the approximate projected result differ
			// from the exact one?
			exact, err := algebra.NewURelEvaluator(db).Eval(proj)
			if err != nil {
				return s, err
			}
			if urel.Poss(exact.Rel).Equal(urel.Poss(projRes.Rel)) {
				flips = append(flips, 0)
			} else {
				flips = append(flips, 1)
			}
		}
		mu := stats.Mean(perTuple)
		tbl.Row(n, mu, stats.Mean(fanIn), float64(n)*mu, stats.Mean(flips))
		s.Values[fmt.Sprintf("fanin_bound_n%d", n)] = stats.Mean(fanIn)
		s.Values[fmt.Sprintf("flip_rate_n%d", n)] = stats.Mean(flips)
	}
	tbl.Flush()

	// Proposition 6.6 closed form for this query shape.
	l := provenance.RoundsForProposition66(1, 1, 8, eps0, delta)
	fmt.Fprintf(w, "\nProposition 6.6: l₀ = %d rounds guarantee the overall bound %.3g ≤ δ for k=1, d=1, n=8.\n",
		l, provenance.Proposition66Bound(1, 1, 8, eps0, l))
	s.Values["prop66_rounds"] = float64(l)
	return s, nil
}

// E10QueryApprox is the end-to-end Theorem 6.7 experiment: approximate
// evaluation of a σ̂ query with the doubling-l loop achieves per-tuple
// error ≤ δ on non-singular tuples, in time polynomial in the database
// size, and the adaptive margin-based ε saves work against running
// directly at the Proposition 6.6 round bound l₀.
func E10QueryApprox(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E10")
	rng := rand.New(rand.NewSource(cfg.Seed))
	const eps0, delta = 0.05, 0.1
	reps := cfg.scale(12, 4)
	sizes := []int{4, 8, 16, 32}
	if cfg.Quick {
		sizes = []int{4, 8, 16}
	}

	fmt.Fprintf(w, "σ̂_{conf[ID] ≥ 0.5}(R) over multi-clause databases (ε₀=%.2f, δ=%.2f):\n", eps0, delta)
	tbl := stats.NewTable(w, "n tuples", "ms/query", "final l", "sampled trials", "reused trials", "membership err rate", "max bound", "naive l₀ trials ×")
	var msPerN []float64
	for _, n := range sizes {
		var ms, finalL, trials, reused, errRate, bounds, naiveRatio []float64
		for r := 0; r < reps; r++ {
			seed := rng.Int63()
			db := workload.MultiClause(rand.New(rand.NewSource(seed)), "R", n, 3, 4, 2)
			q := algebra.ApproxSelect{
				In:   algebra.Base{Name: "R"},
				Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
				Pred: predapprox.Linear([]float64{1}, 0.5),
			}
			exact, err := algebra.NewURelEvaluator(db).EvalContext(cfg.ctx(), q)
			if err != nil {
				return s, err
			}
			exactIDs := urel.Poss(exact.Rel).Project("ID")

			eng := core.NewEngine(db, core.Options{Eps0: eps0, Delta: delta, Seed: seed, Workers: cfg.Workers, NoResume: cfg.NoResume})
			t0 := time.Now()
			res, err := eng.EvalApproxContext(cfg.ctx(), q)
			if err != nil {
				return s, err
			}
			ms = append(ms, float64(time.Since(t0).Microseconds())/1000)
			finalL = append(finalL, float64(res.Stats.FinalRounds))
			trials = append(trials, float64(res.Stats.EstimatorTrials))
			reused = append(reused, float64(res.Stats.ReusedTrials))
			bounds = append(bounds, res.MaxNonSingularError())

			// Membership error rate over non-singular decisions: compare
			// ID sets, ignoring tuples flagged singular.
			approxIDs := urel.Poss(res.Rel).Project("ID")
			wrong := 0.0
			if !approxIDs.Equal(exactIDs) {
				wrong = 1
			}
			if len(res.Singular) > 0 || res.Stats.SingularDrops > 0 {
				wrong = 0 // excluded by Theorem 6.7's non-singularity premise
			}
			errRate = append(errRate, wrong)

			// Naive cost: running every estimator at the Proposition 6.6
			// round bound l₀ directly. The adaptive side counts sampled +
			// reused trials — the paper-literal doubling-loop cost — so
			// the ratio is resume-independent.
			l0 := provenance.RoundsForProposition66(1, 1, n, eps0, delta)
			approxTrials := res.Stats.EstimatorTrials + res.Stats.ReusedTrials
			if approxTrials > 0 {
				naiveTrials := float64(l0) * float64(4*n) // 4 clauses per tuple
				naiveRatio = append(naiveRatio, naiveTrials/float64(approxTrials))
			}
		}
		tbl.Row(n, stats.Mean(ms), stats.Mean(finalL), stats.Mean(trials), stats.Mean(reused), stats.Mean(errRate), stats.Max(bounds), stats.Mean(naiveRatio))
		msPerN = append(msPerN, stats.Mean(ms))
		s.Values[fmt.Sprintf("err_rate_n%d", n)] = stats.Mean(errRate)
		s.Values[fmt.Sprintf("max_bound_n%d", n)] = stats.Max(bounds)
	}
	tbl.Flush()
	s.Values["delta"] = delta

	// Polynomial-shape check: time ratio between the largest and smallest
	// instance should be far below the exponential ratio 2^(Δn).
	if len(msPerN) >= 2 && msPerN[0] > 0 {
		ratio := msPerN[len(msPerN)-1] / msPerN[0]
		s.Values["time_ratio_largest_over_smallest"] = ratio
		fmt.Fprintf(w, "\nRuntime grew %.1f× from n=%d to n=%d (size grew %d×): polynomial shape, per Theorem 6.7.\n",
			ratio, sizes[0], sizes[len(sizes)-1], sizes[len(sizes)-1]/sizes[0])
	}

	// Conditional-probability σ̂ (Example 6.1 shape) end to end on the
	// coin database.
	db := CoinDatabase()
	q := condProbQuery()
	eng := core.NewEngine(db, core.Options{Eps0: 0.05, Delta: 0.1, Seed: 1, Workers: cfg.Workers, NoResume: cfg.NoResume})
	res, err := eng.EvalApproxContext(cfg.ctx(), q)
	if err != nil {
		return s, err
	}
	out := urel.Poss(res.Rel)
	fmt.Fprintln(w, "\nExample 6.1: σ̂_{conf[CoinType]/conf[∅] ≤ 0.5}(T) on the coin database:")
	for _, tp := range out.Sorted() {
		fmt.Fprintf(w, "  %s  (bound %.4f)\n", tp, res.TupleError(tp))
	}
	s.Values["cond_prob_selected"] = float64(out.Len())
	if out.Len() == 1 {
		s.Values["cond_prob_is_fair"] = boolToF(out.Value(out.Tuples()[0], "CoinType").AsString() == "fair")
	}
	return s, nil
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// condProbQuery builds σ̂_{conf[CoinType]/conf[∅] ≤ 0.5}(T) with T from
// Example 2.2.
func condProbQuery() algebra.Query {
	u := CoinQueryU()
	// Rebuild the Let chain with an ApproxSelect body over T.
	letR := u.(algebra.Let)
	letS := letR.In.(algebra.Let)
	letT := letS.In.(algebra.Let)
	body := algebra.ApproxSelect{
		In:   algebra.Base{Name: "T"},
		Args: []algebra.ConfArg{{Attrs: []string{"CoinType"}}, {Attrs: nil}},
		Pred: predapprox.Linear([]float64{-1, 0.5}, 0), // P1/P2 ≤ 0.5
	}
	return algebra.Let{Name: letR.Name, Def: letR.Def,
		In: algebra.Let{Name: letS.Name, Def: letS.Def,
			In: algebra.Let{Name: letT.Name, Def: letT.Def, In: body}}}
}
