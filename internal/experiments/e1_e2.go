package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/stats"
	"repro/internal/urel"
)

// CoinDatabase builds the complete database of Example 2.2.
func CoinDatabase() *urel.Database {
	db := urel.NewDatabase()
	db.AddComplete("Coins", rel.FromRows(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(2)},
		rel.Tuple{rel.String("2headed"), rel.Int(1)},
	))
	db.AddComplete("Faces", rel.FromRows(rel.NewSchema("CoinType", "Face", "FProb"),
		rel.Tuple{rel.String("fair"), rel.String("H"), rel.Float(0.5)},
		rel.Tuple{rel.String("fair"), rel.String("T"), rel.Float(0.5)},
		rel.Tuple{rel.String("2headed"), rel.String("H"), rel.Float(1)},
	))
	db.AddComplete("Tosses", rel.FromRows(rel.NewSchema("Toss"),
		rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)},
	))
	return db
}

// CoinQueryR is R := π_CoinType(repair-key_∅@Count(Coins)).
func CoinQueryR() algebra.Query {
	return algebra.Project{
		In:      algebra.RepairKey{In: algebra.Base{Name: "Coins"}, Weight: "Count"},
		Targets: []expr.Target{expr.Keep("CoinType")},
	}
}

// CoinQueryU builds the full U query of Example 2.2 with Let bindings for
// R, S, T; body selects the final posterior relation.
func CoinQueryU() algebra.Query {
	sDef := algebra.Project{
		In: algebra.RepairKey{
			In:     algebra.Product{L: algebra.Base{Name: "Faces"}, R: algebra.Base{Name: "Tosses"}},
			Key:    []string{"CoinType", "Toss"},
			Weight: "FProb",
		},
		Targets: []expr.Target{expr.Keep("CoinType"), expr.Keep("Toss"), expr.Keep("Face")},
	}
	headsAt := func(toss int64) algebra.Query {
		return algebra.Project{
			In: algebra.Select{
				In: algebra.Base{Name: "S"},
				Pred: expr.AndOf(
					expr.Eq(expr.A("Toss"), expr.CInt(toss)),
					expr.Eq(expr.A("Face"), expr.CStr("H")),
				),
			},
			Targets: []expr.Target{expr.Keep("CoinType")},
		}
	}
	tDef := algebra.Join{
		L: algebra.Join{L: algebra.Base{Name: "R"}, R: headsAt(1)},
		R: headsAt(2),
	}
	uDef := algebra.Project{
		In: algebra.Product{
			L: algebra.Conf{In: algebra.Base{Name: "T"}, As: "P1"},
			R: algebra.Conf{In: algebra.Project{In: algebra.Base{Name: "T"}, Targets: nil}, As: "P2"},
		},
		Targets: []expr.Target{
			expr.Keep("CoinType"),
			expr.As("P", expr.Div(expr.A("P1"), expr.A("P2"))),
		},
	}
	return algebra.Let{Name: "R", Def: CoinQueryR(),
		In: algebra.Let{Name: "S", Def: sDef,
			In: algebra.Let{Name: "T", Def: tDef, In: uDef}}}
}

// E1CoinExample reproduces Figure 1 and the tables of Examples 2.2/3.2:
// the U-relational database after R, the conf table of T, and the
// conditional-probability table U (posterior 1/3 vs prior 2/3).
func E1CoinExample(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E1")
	db := CoinDatabase()

	// Figure 1(a): the database after computing R.
	ev := algebra.NewURelEvaluator(db)
	rRes, err := ev.Eval(CoinQueryR())
	if err != nil {
		return s, err
	}
	fmt.Fprintln(w, "U_R after R := π_CoinType(repair-key_∅@Count(Coins))  [Figure 1(a)]")
	for _, ut := range rRes.Rel.Tuples() {
		fmt.Fprintf(w, "  %s  %s\n", ut.D.Format(ev.DB().Vars), ut.Row)
	}
	fmt.Fprintln(w, "W:")
	fmt.Fprint(w, ev.DB().Vars.String())

	// Figure 1(b): the structure of U_S and U_T. U_S holds six U-tuples
	// (four fair ones bound to the per-toss variables, two 2headed ones);
	// U_T holds two (the fair one over three variables, the 2headed one
	// over the coin variable alone).
	evB := algebra.NewURelEvaluator(db)
	uq := CoinQueryU()
	letR := uq.(algebra.Let)
	letS := letR.In.(algebra.Let)
	letT := letS.In.(algebra.Let)
	sRes, err := evB.Eval(algebra.Let{Name: letR.Name, Def: letR.Def, In: letS.Def})
	if err != nil {
		return s, err
	}
	tRes, err := evB.Eval(algebra.Let{Name: letR.Name, Def: letR.Def,
		In: algebra.Let{Name: letS.Name, Def: letS.Def, In: letT.Def}})
	if err != nil {
		return s, err
	}
	fmt.Fprintf(w, "\nU_S has %d U-tuples (Figure 1(b): 6), U_T has %d (Figure 1(b): 2)\n",
		sRes.Rel.Len(), tRes.Rel.Len())
	s.Values["us_tuples"] = float64(sRes.Rel.Len())
	s.Values["ut_tuples"] = float64(tRes.Rel.Len())

	// conf(T): the joint table of Figure 1(b)'s represented worlds.
	ev2 := algebra.NewURelEvaluator(db)
	uRes, err := ev2.Eval(uq)
	if err != nil {
		return s, err
	}
	fmt.Fprintln(w, "\nU (posterior given two heads)  [Example 2.2]")
	tbl := stats.NewTable(w, "CoinType", "P")
	out := urel.Poss(uRes.Rel)
	for _, tp := range out.Sorted() {
		tbl.Row(out.Value(tp, "CoinType").AsString(), out.Value(tp, "P").AsFloat())
		switch out.Value(tp, "CoinType").AsString() {
		case "fair":
			s.Values["posterior_fair"] = out.Value(tp, "P").AsFloat()
		case "2headed":
			s.Values["posterior_2headed"] = out.Value(tp, "P").AsFloat()
		}
	}
	tbl.Flush()
	s.Values["paper_posterior_fair"] = 1.0 / 3
	s.Values["paper_posterior_2headed"] = 2.0 / 3
	s.Values["prior_fair"] = 2.0 / 3
	return s, nil
}

// E2EpsilonGeometry reproduces Figure 2 / Example 5.4: for
// φ(x₁,x₂) = (x₁/x₂ ≥ 1/2) at p̂ = (1/2, 1/2), the maximal ε is 1/3, the
// orthotope is [3/8, 3/4]², and it touches the hyperplane 2x₁ = x₂ at
// (3/8, 3/4). A sweep over thresholds compares the closed form with
// brute-force orthotope scans.
func E2EpsilonGeometry(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E2")
	phi := predapprox.RatioAtom(0, 1, 0.5, 2)
	p := []float64{0.5, 0.5}
	eps := phi.Margin(p)
	lo, hi := p[0]/(1+eps), p[0]/(1-eps)
	fmt.Fprintf(w, "φ(x1,x2) = x1/x2 ≥ 1/2 at p̂ = (1/2, 1/2)   [Example 5.4 / Figure 2]\n")
	fmt.Fprintf(w, "  ε = %.6f (paper: 1/3)\n", eps)
	fmt.Fprintf(w, "  orthotope = [%.4f, %.4f]² (paper: [3/8, 3/4]²)\n", lo, hi)
	fmt.Fprintf(w, "  touch point = (%.4f, %.4f) on 2x1 = x2 (paper: (3/8, 3/4))\n",
		p[0]/(1+eps), p[1]/(1-eps))
	s.Values["epsilon"] = eps
	s.Values["paper_epsilon"] = 1.0 / 3
	s.Values["orthotope_lo"] = lo
	s.Values["orthotope_hi"] = hi

	// Sweep: closed form vs brute force across thresholds c.
	fmt.Fprintln(w, "\nSweep over c for φ = x1/x2 ≥ c at p̂ = (1/2, 1/2):")
	tbl := stats.NewTable(w, "c", "ε (Thm 5.2)", "ε (brute force)", "|diff|")
	worst := 0.0
	for _, c := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		atom := predapprox.RatioAtom(0, 1, c, 2)
		got := atom.Margin(p)
		bf := predapprox.BruteForceMargin(atom, p, 0.002, 8)
		diff := math.Abs(got - bf)
		if got >= predapprox.EpsMax-1e-6 {
			diff = 0 // clamped margin: brute force saturates differently
		}
		if diff > worst {
			worst = diff
		}
		tbl.Row(c, got, bf, diff)
	}
	tbl.Flush()
	s.Values["max_closed_vs_bruteforce_diff"] = worst
	return s, nil
}
