package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/predapprox"
	"repro/internal/stats"
	"repro/internal/vars"
	"repro/internal/workload"
	"repro/internal/worlds"
)

// E3AdaptivePredicate reproduces the behaviour of the Figure 3 algorithm
// (Theorem 5.8): on non-singular inputs the decision error stays within δ,
// and the adaptive round count beats the naive bound
// ⌈3·log(2k/δ)/ε₀²⌉ by roughly the paper's (ε²_φ − ε²₀)/ε²_φ factor.
func E3AdaptivePredicate(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E3")
	rng := rand.New(rand.NewSource(cfg.Seed))
	const eps0, delta = 0.05, 0.1
	trialsPer := cfg.scale(120, 30)

	fmt.Fprintf(w, "Figure 3 algorithm on φ: p ≥ c, Karp–Luby approximables (ε₀=%.2f, δ=%.2f)\n", eps0, delta)
	tbl := stats.NewTable(w, "true margin", "err rate", "δ", "adaptive rounds (mean)", "naive rounds", "speedup", "paper speedup ≈")

	type band struct {
		name    string
		loP     float64
		hiP     float64
		cOffset float64
	}
	// Bands of distance between the true confidence and the threshold.
	bands := []band{
		{"wide", 0.65, 0.8, -0.35},
		{"medium", 0.55, 0.7, -0.2},
		{"narrow", 0.5, 0.6, -0.1},
	}
	naiveRounds := float64(int(math.Ceil(3 * math.Log(2/delta) / (eps0 * eps0))))
	for _, b := range bands {
		var errs, rounds, speedups []float64
		done := 0
		for done < trialsPer {
			tab := vars.NewTable()
			f := workload.RandomDNF(rng, tab, 4, 5, 2)
			p := dnf.Confidence(f, tab)
			if p < b.loP || p > b.hiP {
				continue
			}
			c := p + b.cOffset
			phi := predapprox.Linear([]float64{1}, c)
			if predapprox.IsSingular(phi, []float64{p}, 2*eps0) {
				continue
			}
			est, err := karpluby.NewEstimator(f, tab, rng)
			if err != nil {
				return s, err
			}
			d, err := predapprox.Decide(phi, []predapprox.Approximable{est}, predapprox.Options{Eps0: eps0, Delta: delta})
			if err != nil {
				return s, err
			}
			done++
			truth := phi.Eval([]float64{p})
			if d.Value != truth {
				errs = append(errs, 1)
			} else {
				errs = append(errs, 0)
			}
			rounds = append(rounds, float64(d.Rounds))
			speedups = append(speedups, naiveRounds/float64(d.Rounds))
			// The paper's predicted improvement factor uses the margin at
			// the true point.
			_ = phi
		}
		errRate := stats.Mean(errs)
		meanRounds := stats.Mean(rounds)
		// Paper's predicted improvement ≈ ε²_φ/(ε²_φ − ε₀²) slowdown
		// avoided; report the ideal-round ratio for the band's midpoint.
		midP := (b.loP + b.hiP) / 2
		epsPhi := predapprox.Linear([]float64{1}, midP+b.cOffset).Margin([]float64{midP})
		paperSpeedup := (epsPhi * epsPhi) / (eps0 * eps0)
		tbl.Row(b.name, errRate, delta, meanRounds, naiveRounds, stats.Mean(speedups), paperSpeedup)
		s.Values["err_rate_"+b.name] = errRate
		s.Values["mean_rounds_"+b.name] = meanRounds
		s.Values["speedup_"+b.name] = stats.Mean(speedups)
	}
	tbl.Flush()
	s.Values["delta"] = delta
	s.Values["naive_rounds"] = naiveRounds
	return s, nil
}

// E4KarpLubyFPRAS validates Proposition 4.2: over a grid of (ε, δ), the
// measured frequency of |p̂−p| ≥ ε·p stays below δ, and the prescribed
// trial count scales linearly in |F| and 1/ε².
func E4KarpLubyFPRAS(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E4")
	rng := rand.New(rand.NewSource(cfg.Seed))
	runs := cfg.scale(300, 60)

	tab := vars.NewTable()
	f := workload.RandomDNF(rng, tab, 6, 8, 3)
	exact := dnf.Confidence(f, tab)
	fmt.Fprintf(w, "Karp–Luby FPRAS on a %d-clause DNF, exact p = %.5f\n", len(f), exact)
	tbl := stats.NewTable(w, "ε", "δ", "trials m", "violation rate", "within δ?")
	worstRatio := 0.0
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		for _, delta := range []float64{0.2, 0.05} {
			m := karpluby.TrialsFor(eps, delta, len(f))
			bad := 0
			for r := 0; r < runs; r++ {
				est, err := karpluby.NewEstimator(f, tab, rng)
				if err != nil {
					return s, err
				}
				est.Add(int(m))
				if math.Abs(est.Estimate()-exact) >= eps*exact {
					bad++
				}
			}
			rate := float64(bad) / float64(runs)
			tbl.Row(eps, delta, m, rate, rate <= delta)
			if r := rate / delta; r > worstRatio {
				worstRatio = r
			}
		}
	}
	tbl.Flush()
	s.Values["worst_violation_over_delta"] = worstRatio

	// Cost scaling: m = ⌈3|F|·log(2/δ)/ε²⌉ is linear in |F|.
	fmt.Fprintln(w, "\nPrescribed trials vs clause count (ε=0.1, δ=0.05):")
	tbl2 := stats.NewTable(w, "|F|", "m", "m/|F|")
	base := float64(karpluby.TrialsFor(0.1, 0.05, 1))
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		m := karpluby.TrialsFor(0.1, 0.05, n)
		tbl2.Row(n, m, float64(m)/float64(n))
	}
	tbl2.Flush()
	s.Values["per_clause_trials"] = base
	return s, nil
}

// E5ExactVsApprox measures the Theorem 3.4 / Corollary 4.3 contrast: exact
// confidence computation (#P: Shannon expansion, world enumeration) grows
// exponentially with the instance while the FPRAS stays polynomial; the
// table shows the crossover.
func E5ExactVsApprox(w io.Writer, cfg Config) (Summary, error) {
	s := newSummary("E5")
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{8, 12, 16, 20}
	if cfg.Quick {
		sizes = []int{8, 12, 16}
	}
	fmt.Fprintln(w, "Exact vs approximate confidence (random DNFs, clauses = vars, ε=0.1, δ=0.05):")
	tbl := stats.NewTable(w, "vars", "clauses", "exact enum (ms)", "exact shannon (ms)", "karp-luby (ms)", "KL trials")
	var lastEnum, lastKL float64
	for _, n := range sizes {
		tab := vars.NewTable()
		f := workload.RandomDNF(rng, tab, n, n, 3)

		t0 := time.Now()
		pEnum := dnf.ConfidenceByEnumeration(f, tab)
		enumMS := float64(time.Since(t0).Microseconds()) / 1000

		t1 := time.Now()
		pShan := dnf.Confidence(f, tab)
		shanMS := float64(time.Since(t1).Microseconds()) / 1000

		t2 := time.Now()
		est, err := karpluby.NewEstimator(f, tab, rng)
		if err != nil {
			return s, err
		}
		m := karpluby.TrialsFor(0.1, 0.05, len(f))
		est.Add(int(m))
		pKL := est.Estimate()
		klMS := float64(time.Since(t2).Microseconds()) / 1000

		if math.Abs(pEnum-pShan) > 1e-9 {
			return s, fmt.Errorf("exact evaluators disagree: %v vs %v", pEnum, pShan)
		}
		if exactErr := math.Abs(pKL - pEnum); exactErr > 0.25*pEnum {
			fmt.Fprintf(w, "  (note: KL estimate off by %.3f at n=%d)\n", exactErr, n)
		}
		tbl.Row(n, n, enumMS, shanMS, klMS, m)
		lastEnum, lastKL = enumMS, klMS
	}
	tbl.Flush()
	s.Values["largest_enum_ms"] = lastEnum
	s.Values["largest_kl_ms"] = lastKL
	if lastKL > 0 {
		s.Values["enum_over_kl_at_largest"] = lastEnum / lastKL
	}
	fmt.Fprintln(w, "\nShape check (paper): exact is #P-hard — enumeration cost doubles per added variable;")
	fmt.Fprintln(w, "the FPRAS cost grows linearly in |F| (Corollary 4.3) and wins beyond the crossover.")

	// Succinctness: the hardness of Theorem 3.4 versus the LOGSPACE bound
	// of Proposition 3.5 comes from the representation gap — n binary
	// variables are 2n U-tuples but 2^n possible worlds.
	fmt.Fprintln(w, "\nRepresentation gap (tuple-independent relation of n tuples):")
	tbl3 := stats.NewTable(w, "n", "U-tuples", "worlds", "expand (ms)")
	expandSizes := []int{6, 10, 14}
	if !cfg.Quick {
		expandSizes = append(expandSizes, 18)
	}
	var lastGap float64
	for _, n := range expandSizes {
		db := workload.TupleIndependent("R", workload.UniformProbs(rng, n, 0.2, 0.8))
		t0 := time.Now()
		wdb, err := worlds.Expand(db, 1<<22)
		if err != nil {
			return s, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		tbl3.Row(n, db.Rels["R"].Len(), len(wdb.Worlds), ms)
		lastGap = float64(len(wdb.Worlds)) / float64(db.Rels["R"].Len())
	}
	tbl3.Flush()
	s.Values["worlds_per_utuple_at_largest"] = lastGap
	return s, nil
}
