package karpluby

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dnf"
	"repro/internal/sched"
	"repro/internal/vars"
)

// skewTable builds a table of binary variables whose "true" probabilities
// span several orders of magnitude — the weight profile stratification
// is designed for.
func skewTable(rng *rand.Rand, n int) *vars.Table {
	t := vars.NewTable()
	for i := 0; i < n; i++ {
		p := math.Pow(10, -3*rng.Float64()) // (0.001, 1]
		if p >= 1 {
			p = 0.999
		}
		t.Add("v"+string(rune('a'+i%26))+string(rune('0'+i/26)), []float64{p, 1 - p}, nil)
	}
	return t
}

// randSkewF draws nc random clauses over the table's variables.
func randSkewF(rng *rand.Rand, tab *vars.Table, nVars, nc int) dnf.F {
	var f dnf.F
	for c := 0; c < nc; c++ {
		nl := 1 + rng.Intn(3)
		var bs []vars.Binding
		for l := 0; l < nl; l++ {
			bs = append(bs, vars.Binding{Var: vars.Var(rng.Intn(nVars)), Alt: int32(rng.Intn(2))})
		}
		if a, err := vars.NewAssignment(bs...); err == nil {
			f = append(f, a)
		}
	}
	return f.Dedup()
}

// checkPlan asserts the stratification-plan invariants: the strata
// exactly partition the clause indices, no stratum is empty, the stratum
// count respects the bound, and clause weights are non-increasing across
// stratum boundaries (band order).
func checkPlan(t *testing.T, f dnf.F, tab *vars.Table, maxStrata int, plan [][]int) {
	t.Helper()
	if len(f) == 0 {
		return
	}
	bound := maxStrata
	if bound < 1 {
		bound = 1
	}
	if len(plan) > bound {
		t.Fatalf("plan has %d strata, bound is %d", len(plan), bound)
	}
	seen := make([]bool, len(f))
	total := 0
	for j, idx := range plan {
		if len(idx) == 0 {
			t.Fatalf("stratum %d is empty", j)
		}
		for _, i := range idx {
			if i < 0 || i >= len(f) {
				t.Fatalf("stratum %d has out-of-range clause %d", j, i)
			}
			if seen[i] {
				t.Fatalf("clause %d appears in two strata", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != len(f) {
		t.Fatalf("plan covers %d of %d clauses", total, len(f))
	}
	for j := 1; j < len(plan); j++ {
		maxNext := 0.0
		for _, i := range plan[j] {
			if w := f[i].Weight(tab); w > maxNext {
				maxNext = w
			}
		}
		for _, i := range plan[j-1] {
			if w := f[i].Weight(tab); w < maxNext {
				t.Fatalf("stratum %d clause weight %v below stratum %d max %v", j-1, w, j, maxNext)
			}
		}
	}
}

func TestPlanStrataPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nVars := 4 + rng.Intn(10)
		tab := skewTable(rng, nVars)
		f := randSkewF(rng, tab, nVars, 1+rng.Intn(40))
		if len(f) == 0 {
			continue
		}
		for _, maxStrata := range []int{1, 2, 4, 8, 64} {
			checkPlan(t, f, tab, maxStrata, PlanStrata(f, tab, maxStrata))
		}
	}
}

// FuzzPlanStrata drives the planner with arbitrary clause-set shapes and
// stratum bounds, asserting the partition invariants hold for every
// input the fuzzer finds.
func FuzzPlanStrata(f *testing.F) {
	f.Add(int64(1), 8, 3, 16)
	f.Add(int64(99), 1, 12, 1)
	f.Add(int64(7), 4096, 6, 64)
	f.Fuzz(func(t *testing.T, seed int64, maxStrata, nVars, nc int) {
		if nVars < 1 || nVars > 32 || nc < 1 || nc > 256 {
			t.Skip()
		}
		if maxStrata < -4 || maxStrata > 1<<20 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		tab := skewTable(rng, nVars)
		df := randSkewF(rng, tab, nVars, nc)
		if len(df) == 0 || len(df[0]) == 0 {
			t.Skip()
		}
		checkPlan(t, df, tab, maxStrata, PlanStrata(df, tab, maxStrata))
	})
}

// A single-stratum plan must consume the identical PRNG stream as the
// flat estimator: same chunk schedule in, bit-identical counts out. This
// is the parity contract that lets cached flat snapshots and stratified
// runs coexist on one seed derivation.
func TestSingleStratumBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		nVars := 5 + rng.Intn(6)
		tab := skewTable(rng, nVars)
		f := randSkewF(rng, tab, nVars, 8+rng.Intn(12))
		if len(f) < 2 || len(f[0]) == 0 {
			continue
		}
		plan := PlanStrata(f, tab, 1)
		if len(plan) != 1 {
			t.Fatalf("maxStrata=1 produced %d strata", len(plan))
		}
		s, err := NewStratified(f, tab, plan)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := NewEstimator(f, tab, nil)
		if err != nil {
			t.Fatal(err)
		}
		taskSeed := int64(1000 + trial)
		if got := StratumSeed(taskSeed, 0); got != taskSeed {
			t.Fatalf("StratumSeed(seed, 0) = %d, want the task seed %d", got, taskSeed)
		}
		const chunk = 512
		for c := 0; c < 4; c++ {
			cseed := sched.ChunkSeed(taskSeed, c)
			sh := s.Shard(0, rand.New(rand.NewSource(cseed)))
			sh.Add(chunk)
			s.MergeShard(0, sh)

			fsh := flat.Shard(rand.New(rand.NewSource(cseed)))
			fsh.Add(chunk)
			flat.Merge(fsh)
		}
		if s.Hits() != flat.Hits() || s.Trials() != flat.Trials() {
			t.Fatalf("trial %d: stratified (%d/%d) != flat (%d/%d)",
				trial, s.Hits(), s.Trials(), flat.Hits(), flat.Trials())
		}
		if s.Estimate() != flat.Estimate() {
			t.Fatalf("trial %d: estimates differ: %v vs %v", trial, s.Estimate(), flat.Estimate())
		}
	}
}

// The stratified estimate p̂ = Σ M_j·θ̂_j must converge to the exact
// confidence under the adaptive loop, within the requested relative ε.
func TestEstimateAdaptiveConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		nVars := 5 + rng.Intn(6)
		tab := skewTable(rng, nVars)
		f := randSkewF(rng, tab, nVars, 6+rng.Intn(20))
		if len(f) == 0 || len(f[0]) == 0 {
			continue
		}
		exact := dnf.Confidence(f, tab)
		res, err := EstimateAdaptive(f, tab, AdaptiveOptions{
			MaxStrata: 8, Eps: 0.05, Delta: 0.01, Seed: int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.P-exact) > 0.05*exact+1e-9 {
			t.Errorf("trial %d: estimate %v vs exact %v beyond ε=5%%", trial, res.P, exact)
		}
		if res.Sampled > res.Budget+int64(res.Strata)*DefaultChunk(len(f)) {
			t.Errorf("trial %d: sampled %d beyond budget %d + one chunk per stratum", trial, res.Sampled, res.Budget)
		}
	}
}

// Merged counts must not depend on the order shards are merged in — the
// property that makes worker-count independence possible.
func TestStratifiedMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nVars := 8
	tab := skewTable(rng, nVars)
	f := randSkewF(rng, tab, nVars, 24)
	plan := PlanStrata(f, tab, 4)
	run := func(order []int) (int64, int64) {
		s, err := NewStratified(f, tab, plan)
		if err != nil {
			t.Fatal(err)
		}
		type task struct{ j, c int }
		var tasks []task
		for j := 0; j < s.StratumCount(); j++ {
			for c := 0; c < 3; c++ {
				tasks = append(tasks, task{j, c})
			}
		}
		for _, i := range order {
			tk := tasks[i%len(tasks)]
			sh := s.Shard(tk.j, rand.New(rand.NewSource(sched.ChunkSeed(StratumSeed(7, tk.j), tk.c))))
			sh.Add(256)
			s.MergeShard(tk.j, sh)
		}
		return s.Hits(), s.Trials()
	}
	n := 4 * 3
	fwd := make([]int, n)
	rev := make([]int, n)
	for i := range fwd {
		fwd[i], rev[i] = i, n-1-i
	}
	h1, t1 := run(fwd)
	h2, t2 := run(rev)
	if h1 != h2 || t1 != t2 {
		t.Errorf("merge order changed counts: (%d,%d) vs (%d,%d)", h1, t1, h2, t2)
	}
}

// Snapshot / resume must continue the exact trajectory: resuming a
// partial run and finishing the chunk schedule yields the same counts as
// the uninterrupted run.
func TestStratumStateResumeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	nVars := 7
	tab := skewTable(rng, nVars)
	f := randSkewF(rng, tab, nVars, 18)
	plan := PlanStrata(f, tab, 4)
	const chunk, total = 512, 5
	sample := func(s *Stratified, j, from, to int) {
		for c := from; c < to; c++ {
			sh := s.Shard(j, rand.New(rand.NewSource(sched.ChunkSeed(StratumSeed(3, j), c))))
			sh.Add(chunk)
			s.MergeShard(j, sh)
		}
		s.AdvanceStratum(j, to)
	}
	full, err := NewStratified(f, tab, plan)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewStratified(f, tab, plan)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < full.StratumCount(); j++ {
		sample(full, j, 0, total)
		sample(part, j, 0, 2)
	}
	resumed, err := NewStratified(f, tab, plan)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < part.StratumCount(); j++ {
		if err := resumed.ResumeStratum(j, part.StratumState(j)); err != nil {
			t.Fatal(err)
		}
		sample(resumed, j, resumed.StratumChunks(j), total)
	}
	if resumed.Hits() != full.Hits() || resumed.Trials() != full.Trials() {
		t.Errorf("resumed run (%d/%d) differs from uninterrupted (%d/%d)",
			resumed.Hits(), resumed.Trials(), full.Hits(), full.Trials())
	}
	if resumed.Estimate() != full.Estimate() {
		t.Errorf("resumed estimate %v differs from uninterrupted %v", resumed.Estimate(), full.Estimate())
	}
}

// Allocate must split exactly the requested trials across active strata;
// NextWave must hand every active stratum work on a fresh estimator and
// return nil once the cap is spent.
func TestAllocateAndNextWaveInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	nVars := 8
	tab := skewTable(rng, nVars)
	f := randSkewF(rng, tab, nVars, 30)
	s, err := NewStratified(f, tab, PlanStrata(f, tab, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, need := range []int64{1, 7, 100, 4096, 123457} {
		var sum int64
		for _, a := range s.Allocate(need) {
			if a < 0 {
				t.Fatalf("Allocate(%d) returned a negative share", need)
			}
			sum += a
		}
		if sum != need {
			t.Errorf("Allocate(%d) sums to %d", need, sum)
		}
	}
	sizes := make([]int64, s.StratumCount())
	for j := range sizes {
		sizes[j] = 64
	}
	wave := s.NextWave(sizes, 1<<40)
	if wave == nil {
		t.Fatal("NextWave on a fresh estimator returned nil")
	}
	for j, c := range wave {
		if s.StratumM(j) > 0 && c < 1 {
			t.Errorf("fresh wave gave active stratum %d no chunks", j)
		}
	}
	// Spend beyond a small cap, then the wave must stop.
	for j, c := range wave {
		for i := 0; i < c; i++ {
			sh := s.Shard(j, rand.New(rand.NewSource(int64(j*100+i))))
			sh.Add(int(sizes[j]))
			s.MergeShard(j, sh)
		}
		s.AdvanceStratum(j, c)
	}
	if w := s.NextWave(sizes, s.Trials()); w != nil {
		t.Errorf("NextWave with spent cap returned %v, want nil", w)
	}
}

// Bounds must bracket the exact confidence (the run is deterministic, so
// this single check is stable; the level is generous).
func TestStratifiedBoundsCoverExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	nVars := 8
	tab := skewTable(rng, nVars)
	f := randSkewF(rng, tab, nVars, 20)
	exact := dnf.Confidence(f, tab)
	s, err := NewStratified(f, tab, PlanStrata(f, tab, 4))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Bounds(0.05)
	if lo != 0 {
		t.Errorf("zero-trial lower bound = %v, want 0", lo)
	}
	for j := 0; j < s.StratumCount(); j++ {
		for c := 0; c < 8; c++ {
			sh := s.Shard(j, rand.New(rand.NewSource(sched.ChunkSeed(StratumSeed(5, j), c))))
			sh.Add(1024)
			s.MergeShard(j, sh)
		}
		s.AdvanceStratum(j, 8)
	}
	lo, hi = s.Bounds(0.05)
	if !(lo <= exact && exact <= hi) {
		t.Errorf("Bounds(0.05) = [%v, %v] does not cover exact %v", lo, hi, exact)
	}
	if hi-lo >= 1 {
		t.Errorf("interval [%v, %v] is vacuous after sampling", lo, hi)
	}
}
