package karpluby

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dnf"
	"repro/internal/vars"
)

func binTable(probs ...float64) *vars.Table {
	t := vars.NewTable()
	for i, p := range probs {
		t.Add("v"+string(rune('a'+i)), []float64{p, 1 - p}, nil)
	}
	return t
}

func clause(bs ...vars.Binding) vars.Assignment { return vars.MustAssignment(bs...) }

func TestEstimatorSingleClauseIsExact(t *testing.T) {
	// With a single clause the estimator always returns 1, so p̂ = M = p_f
	// exactly, regardless of trial count.
	tab := binTable(0.3, 0.6)
	f := dnf.F{clause(vars.Binding{Var: 0, Alt: 0}, vars.Binding{Var: 1, Alt: 0})}
	e, err := NewEstimator(f, tab, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	e.Add(100)
	want := 0.3 * 0.6
	if got := e.Estimate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Estimate = %v, want exactly %v", got, want)
	}
}

func TestEstimatorEmpty(t *testing.T) {
	tab := binTable(0.5)
	if _, err := NewEstimator(nil, tab, rand.New(rand.NewSource(1))); err != ErrEmpty {
		t.Errorf("expected ErrEmpty, got %v", err)
	}
	p, err := Confidence(nil, tab, 0.1, 0.1, rand.New(rand.NewSource(1)))
	if err != nil || p != 0 {
		t.Errorf("Confidence(empty) = %v, %v", p, err)
	}
}

func TestConfidenceCertain(t *testing.T) {
	tab := binTable(0.5)
	f := dnf.F{vars.Assignment{}}
	p, err := Confidence(f, tab, 0.1, 0.1, rand.New(rand.NewSource(1)))
	if err != nil || p != 1 {
		t.Errorf("certain clause set: %v, %v", p, err)
	}
}

func TestEstimatorConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		tab := vars.NewTable()
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			p := 0.1 + 0.8*rng.Float64()
			tab.Add("v"+string(rune('a'+i)), []float64{p, 1 - p}, nil)
		}
		var f dnf.F
		nc := 2 + rng.Intn(5)
		for c := 0; c < nc; c++ {
			var bs []vars.Binding
			nl := 1 + rng.Intn(3)
			for l := 0; l < nl; l++ {
				bs = append(bs, vars.Binding{Var: vars.Var(rng.Intn(n)), Alt: int32(rng.Intn(2))})
			}
			if a, err := vars.NewAssignment(bs...); err == nil {
				f = append(f, a)
			}
		}
		if len(f) == 0 {
			continue
		}
		exact := dnf.Confidence(f, tab)
		got, err := Confidence(f, tab, 0.05, 0.01, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact) > 0.05*exact+1e-9 {
			t.Errorf("trial %d: estimate %v vs exact %v beyond 5%%", trial, got, exact)
		}
	}
}

// The (ε,δ) guarantee: the fraction of runs with relative error > ε must
// not exceed δ (allowing generous statistical slack since we measure the
// frequency itself).
func TestFPRASGuarantee(t *testing.T) {
	tab := binTable(0.4, 0.3, 0.7, 0.5)
	f := dnf.F{
		clause(vars.Binding{Var: 0, Alt: 0}, vars.Binding{Var: 1, Alt: 0}),
		clause(vars.Binding{Var: 1, Alt: 1}, vars.Binding{Var: 2, Alt: 0}),
		clause(vars.Binding{Var: 3, Alt: 0}),
	}
	exact := dnf.Confidence(f, tab)
	eps, delta := 0.1, 0.2
	rng := rand.New(rand.NewSource(5))
	runs, bad := 200, 0
	for i := 0; i < runs; i++ {
		got, err := Confidence(f, tab, eps, delta, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact) >= eps*exact {
			bad++
		}
	}
	// Chernoff bounds are loose; the observed failure rate should be far
	// below δ. Allow up to δ itself.
	if frac := float64(bad) / float64(runs); frac > delta {
		t.Errorf("failure rate %v exceeds δ=%v", frac, delta)
	}
}

func TestEstimatorUnbiased(t *testing.T) {
	// E[X_i] = p/M: across many single trials the mean of p̂ approaches p.
	tab := binTable(0.5, 0.5)
	f := dnf.F{
		clause(vars.Binding{Var: 0, Alt: 0}),
		clause(vars.Binding{Var: 1, Alt: 0}),
	}
	exact := dnf.Confidence(f, tab) // 0.75
	rng := rand.New(rand.NewSource(9))
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		e, err := NewEstimator(f, tab, rng)
		if err != nil {
			t.Fatal(err)
		}
		e.Add(1)
		sum += e.Estimate()
	}
	mean := sum / float64(n)
	if math.Abs(mean-exact) > 0.02 {
		t.Errorf("single-trial mean %v far from exact %v (bias)", mean, exact)
	}
}

func TestDeltaBoundAndTrialsFor(t *testing.T) {
	if DeltaBound(0.1, 0, 5) != 1 {
		t.Error("zero trials must give trivial bound 1")
	}
	// TrialsFor inverts DeltaBound (up to ceiling).
	eps, delta := 0.05, 0.01
	m := TrialsFor(eps, delta, 7)
	if got := DeltaBound(eps, m, 7); got > delta+1e-12 {
		t.Errorf("DeltaBound(TrialsFor) = %v > δ=%v", got, delta)
	}
	if got := DeltaBound(eps, m-1, 7); got < delta-delta*1e-6 {
		t.Errorf("TrialsFor not tight: m-1 already gives %v < %v", got, delta)
	}
	// Monotonicity (away from the clamp-to-1 region).
	if DeltaBound(0.1, 10000, 5) <= DeltaBound(0.2, 10000, 5) {
		t.Error("larger ε must give smaller δ")
	}
	if DeltaBound(0.1, 10000, 5) >= DeltaBound(0.1, 5000, 5) {
		t.Error("more trials must give smaller δ")
	}
	// The clamp: trivial bounds never exceed 1.
	if DeltaBound(0.01, 1, 100) != 1 {
		t.Error("bound must clamp to 1")
	}
}

func TestEstimatorIncremental(t *testing.T) {
	tab := binTable(0.5, 0.5, 0.5)
	f := dnf.F{
		clause(vars.Binding{Var: 0, Alt: 0}),
		clause(vars.Binding{Var: 1, Alt: 0}),
		clause(vars.Binding{Var: 2, Alt: 0}),
	}
	e, err := NewEstimator(f, tab, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if e.Trials() != 0 {
		t.Error("fresh estimator should have 0 trials")
	}
	if e.Estimate() > 1 {
		t.Error("zero-trial estimate should be clamped to ≤ 1")
	}
	e.Add(10)
	e.Add(90)
	if e.Trials() != 100 {
		t.Errorf("Trials = %d", e.Trials())
	}
	if e.ClauseCount() != 3 {
		t.Errorf("ClauseCount = %d", e.ClauseCount())
	}
	if math.Abs(e.M()-1.5) > 1e-12 {
		t.Errorf("M = %v, want 1.5", e.M())
	}
}

func TestEstimatorDedupsClauses(t *testing.T) {
	tab := binTable(0.5)
	c := clause(vars.Binding{Var: 0, Alt: 0})
	f := dnf.F{c, c, c}
	e, err := NewEstimator(f, tab, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if e.ClauseCount() != 1 {
		t.Errorf("duplicates not removed: %d", e.ClauseCount())
	}
	e.Add(50)
	if got := e.Estimate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Estimate = %v, want 0.5 exactly (single clause)", got)
	}
}

func TestMultiValuedVariables(t *testing.T) {
	tab := vars.NewTable()
	tab.Add("coin", []float64{2.0 / 3, 1.0 / 3}, []string{"fair", "2headed"})
	tab.Add("t1", []float64{0.5, 0.5}, nil)
	tab.Add("t2", []float64{0.5, 0.5}, nil)
	f := dnf.F{
		clause(vars.Binding{Var: 0, Alt: 0}, vars.Binding{Var: 1, Alt: 0}, vars.Binding{Var: 2, Alt: 0}),
		clause(vars.Binding{Var: 0, Alt: 1}),
	}
	exact := dnf.Confidence(f, tab) // 1/6 + 1/3 = 1/2
	got, err := Confidence(f, tab, 0.03, 0.01, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact) > 0.03*exact {
		t.Errorf("estimate %v vs exact %v", got, exact)
	}
}

func BenchmarkEstimatorTrial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := vars.NewTable()
	for i := 0; i < 20; i++ {
		tab.Add("v"+string(rune('a'+i)), []float64{0.5, 0.5}, nil)
	}
	var f dnf.F
	for c := 0; c < 30; c++ {
		var bs []vars.Binding
		for l := 0; l < 4; l++ {
			bs = append(bs, vars.Binding{Var: vars.Var(rng.Intn(20)), Alt: int32(rng.Intn(2))})
		}
		if a, err := vars.NewAssignment(bs...); err == nil {
			f = append(f, a)
		}
	}
	e, err := NewEstimator(f, tab, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Add(1)
	}
}
