package karpluby

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dnf"
	"repro/internal/vars"
)

// benchSkewF draws nc distinct positive-literal clauses over nVars
// variables whose presence probabilities span four decades. Positive
// literals keep the clause-weight skew real (a negated rare literal has
// weight ≈ 1, which flattens the mass distribution): total clause mass
// concentrates in a few heavy clauses, the regime stratification and
// empirical-Bernstein stopping exist for.
func benchSkewF(rng *rand.Rand, nVars, nc int) (dnf.F, *vars.Table) {
	tab := vars.NewTable()
	for i := 0; i < nVars; i++ {
		p := math.Pow(10, -4*rng.Float64())
		if p >= 1 {
			p = 0.999
		}
		tab.Add(fmt.Sprintf("b%d", i), []float64{p, 1 - p}, nil)
	}
	f := make(dnf.F, 0, nc)
	seen := map[string]bool{}
	for len(f) < nc {
		nl := 1 + rng.Intn(3)
		var bs []vars.Binding
		for l := 0; l < nl; l++ {
			bs = append(bs, vars.Binding{Var: vars.Var(rng.Intn(nVars)), Alt: 0})
		}
		a, err := vars.NewAssignment(bs...)
		if err != nil {
			continue
		}
		if k := a.Key(); !seen[k] {
			seen[k] = true
			f = append(f, a)
		}
	}
	return f, tab
}

// BenchmarkStratifiedLargeF runs the full adaptive stratified loop on
// large skewed clause sets at a fixed (ε, δ). Budget is the stratum-blind
// Chernoff trial count the flat FPRAS would spend on the same input —
// the flat estimator's stopping rule is exactly that bound, so
// budget/sampled is the trial savings of stratification. The savings
// floor itself is asserted by TestStratifiedTrialSavings; the benchmark
// records the numbers for the trajectory baseline.
func BenchmarkStratifiedLargeF(b *testing.B) {
	for _, nc := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("clauses=%d", nc), func(b *testing.B) {
			nVars := 64
			if nc > 40_000 {
				nVars = 256 // enough distinct ≤3-literal clauses
			}
			f, tab := benchSkewF(rand.New(rand.NewSource(17)), nVars, nc)
			b.ResetTimer()
			var last AdaptiveResult
			for i := 0; i < b.N; i++ {
				res, err := EstimateAdaptive(f, tab, AdaptiveOptions{
					MaxStrata: 16, Eps: 0.1, Delta: 0.05, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Sampled), "trials")
			b.ReportMetric(float64(last.Budget), "flat-trials")
			if last.Sampled > 0 {
				b.ReportMetric(float64(last.Budget)/float64(last.Sampled), "savings-x")
			}
		})
	}
}

// BenchmarkStratifiedVsFlat compares both estimators end to end on an
// input small enough that the flat path finishes live: the flat
// estimator steps to its Chernoff bound, the stratified loop to the
// empirical-Bernstein one, both at the same (ε, δ).
func BenchmarkStratifiedVsFlat(b *testing.B) {
	const nc, eps, delta = 512, 0.1, 0.05
	f, tab := benchSkewF(rand.New(rand.NewSource(23)), 48, nc)

	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Confidence(f, tab, eps, delta, rand.New(rand.NewSource(int64(i)))); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(TrialsFor(eps, delta, len(f))), "trials")
	})
	b.Run("stratified", func(b *testing.B) {
		var last AdaptiveResult
		for i := 0; i < b.N; i++ {
			res, err := EstimateAdaptive(f, tab, AdaptiveOptions{
				MaxStrata: 16, Eps: eps, Delta: delta, Seed: int64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.Sampled), "trials")
	})
}

// TestStratifiedTrialSavings is the acceptance check behind
// BenchmarkStratifiedLargeF: on 10⁴ skewed clauses at (ε=0.1, δ=0.05),
// the stratified adaptive loop must finish with at least 2× fewer trials
// than the flat FPRAS budget for the same guarantee.
func TestStratifiedTrialSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("samples tens of thousands of trials")
	}
	f, tab := benchSkewF(rand.New(rand.NewSource(17)), 64, 10_000)
	res, err := EstimateAdaptive(f, tab, AdaptiveOptions{
		MaxStrata: 16, Eps: 0.1, Delta: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == 0 {
		t.Fatal("adaptive loop sampled nothing")
	}
	savings := float64(res.Budget) / float64(res.Sampled)
	t.Logf("clauses=%d strata=%d sampled=%d flat budget=%d savings=%.1fx waves=%d",
		len(f), res.Strata, res.Sampled, res.Budget, savings, res.Waves)
	if savings < 2 {
		t.Errorf("stratified loop sampled %d trials vs flat budget %d — %.2fx savings, want ≥ 2x",
			res.Sampled, res.Budget, savings)
	}
}
