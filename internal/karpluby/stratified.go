package karpluby

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dnf"
	"repro/internal/sched"
	"repro/internal/vars"
)

// Clause-stratified Karp–Luby.
//
// The plain estimator draws a clause from all of F with probability p_f/M
// and needs m = 3|F|·ln(2/δ)/ε² trials regardless of how the success
// probability is distributed over clauses. Stratification partitions F
// into strata F = F₁ ⊎ … ⊎ F_K (by clause weight, deterministically given
// the canonical clause order) and runs one Karp–Luby estimator per
// stratum: stratum j draws a clause from F_j with probability p_f/M_j and
// still tests minimality against all of F, so its trials are unbiased for
// θ_j = p_j/M_j where p_j is the probability mass claimed by F_j under
// the smallest-index rule. Since the p_j partition p,
//
//	p = Σ_j M_j·θ_j,   p̂ = Σ_j M_j·θ̂_j
//
// is unbiased, and per-stratum (hits, trials) counts remain mergeable
// integer sums — any partition of a stratum's trials into shards or
// chunks yields bit-identical results, exactly as for the flat estimator.
//
// The payoff is adaptive: per-stratum empirical-Bernstein bounds
// (Maurer–Pontil) expose which strata still dominate the error, and
// Neyman allocation sends new trials where σ̂_j·M_j is largest. On skewed
// clause sets (few heavy clauses, many light ones) the loop converges
// with far fewer trials than the stratum-blind Chernoff budget.

// PlanStrata partitions the clauses of f into weight bands: stratum 0
// holds clauses with weight in (wmax/2, wmax], stratum 1 those in
// (wmax/4, wmax/2], and so on, with everything below wmax/2^(maxStrata−1)
// — including zero-weight clauses — clamped into the last band. Empty
// bands are dropped. The result is a partition of [0, len(f)): every
// clause index appears exactly once, indices within a stratum ascend, and
// heavier strata come first.
//
// The plan depends only on the clause weights and maxStrata — never on
// sampling state or worker count — so given the canonical clause order it
// is deterministic, and cached per-stratum snapshots remain valid across
// restarts and processes.
func PlanStrata(f dnf.F, table *vars.Table, maxStrata int) [][]int {
	n := len(f)
	if n == 0 {
		return nil
	}
	single := func() [][]int {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	if maxStrata <= 1 || n == 1 {
		return single()
	}
	w := make([]float64, n)
	wmax := 0.0
	for i, a := range f {
		w[i] = a.Weight(table)
		if w[i] > wmax {
			wmax = w[i]
		}
	}
	if wmax <= 0 {
		return single()
	}
	bands := make([][]int, maxStrata)
	for i := range f {
		b := 0
		bound := wmax / 2
		for b < maxStrata-1 && w[i] < bound {
			b++
			bound /= 2
		}
		bands[b] = append(bands[b], i)
	}
	out := make([][]int, 0, maxStrata)
	for _, b := range bands {
		if len(b) > 0 {
			out = append(out, b)
		}
	}
	return out
}

// stratum is one clause band of a Stratified estimator: its global clause
// indices, stratum-local cumulative weights, and mergeable counts.
type stratum struct {
	idx []int     // global clause indices, ascending
	cum []float64 // cumulative weights of f[idx[0..k]]
	m   float64   // M_j = Σ_{f∈F_j} p_f

	hits   int64
	trials int64
	// chunks is the stratum's round-aligned chunk-plan cursor, exactly as
	// for Estimator.chunks: the counts cover plan chunks [0, chunks) of
	// the stratum's deterministic chunk plan.
	chunks int
}

// Stratified is a clause-stratified Karp–Luby estimator for a single
// clause set F. Like Estimator it is not safe for concurrent use; for
// parallel sampling derive per-goroutine StratumShards with Shard and
// fold their counts back with MergeShard.
type Stratified struct {
	f      dnf.F
	table  *vars.Table
	vars   []vars.Var // content-canonical order (sorted by name), as in Estimator
	m      float64    // M = Σ_j M_j
	strata []stratum
}

// NewStratified builds a stratified estimator for clause set f under the
// given partition plan (normally PlanStrata's output). f must already be
// deduplicated — the plan indexes into it, so NewStratified must not
// reorder or drop clauses. The plan must cover every clause index exactly
// once with no empty stratum. ErrEmpty is returned when f is empty or has
// zero total weight.
func NewStratified(f dnf.F, table *vars.Table, plan [][]int) (*Stratified, error) {
	if len(f) == 0 {
		return nil, ErrEmpty
	}
	seen := make([]bool, len(f))
	covered := 0
	for _, str := range plan {
		if len(str) == 0 {
			return nil, errors.New("karpluby: stratification plan has an empty stratum")
		}
		for _, i := range str {
			if i < 0 || i >= len(f) || seen[i] {
				return nil, fmt.Errorf("karpluby: stratification plan is not a partition of %d clauses", len(f))
			}
			seen[i] = true
			covered++
		}
	}
	if covered != len(f) {
		return nil, fmt.Errorf("karpluby: stratification plan covers %d of %d clauses", covered, len(f))
	}
	s := &Stratified{
		f:     f,
		table: table,
		vars:  f.Vars(),
	}
	// Content-canonical variable order: world extension consumes the PRNG
	// in this order, so trial streams depend only on clause-set content —
	// the same invariant Estimator maintains (see its vars field).
	sort.Slice(s.vars, func(i, j int) bool {
		return table.Info(s.vars[i]).Name < table.Info(s.vars[j]).Name
	})
	s.strata = make([]stratum, len(plan))
	for j, str := range plan {
		st := &s.strata[j]
		st.idx = str
		st.cum = make([]float64, len(str))
		total := 0.0
		for k, gi := range str {
			total += f[gi].Weight(table)
			st.cum[k] = total
		}
		st.m = total
		s.m += total
	}
	if s.m <= 0 {
		return nil, ErrEmpty
	}
	return s, nil
}

// ClauseCount returns |F|.
func (s *Stratified) ClauseCount() int { return len(s.f) }

// StratumCount returns the number of strata K.
func (s *Stratified) StratumCount() int { return len(s.strata) }

// StratumClauses returns |F_j|.
func (s *Stratified) StratumClauses(j int) int { return len(s.strata[j].idx) }

// StratumM returns M_j, stratum j's total clause weight. A stratum with
// M_j = 0 contributes exactly 0 to the estimate and is never sampled
// ("inactive").
func (s *Stratified) StratumM(j int) float64 { return s.strata[j].m }

// M returns the total clause weight Σ p_f.
func (s *Stratified) M() float64 { return s.m }

// Trials returns the total trials across all strata.
func (s *Stratified) Trials() int64 {
	var t int64
	for j := range s.strata {
		t += s.strata[j].trials
	}
	return t
}

// Hits returns the total hits across all strata.
func (s *Stratified) Hits() int64 {
	var h int64
	for j := range s.strata {
		h += s.strata[j].hits
	}
	return h
}

// StratumTrials returns stratum j's trial count.
func (s *Stratified) StratumTrials(j int) int64 { return s.strata[j].trials }

// StratumHits returns stratum j's hit count.
func (s *Stratified) StratumHits(j int) int64 { return s.strata[j].hits }

// StratumChunks returns stratum j's chunk-plan cursor.
func (s *Stratified) StratumChunks(j int) int { return s.strata[j].chunks }

// AdvanceStratum raises stratum j's chunk cursor to chunk (no-op when the
// cursor is already past it); see Estimator.AdvanceTo.
func (s *Stratified) AdvanceStratum(j, chunk int) {
	if chunk > s.strata[j].chunks {
		s.strata[j].chunks = chunk
	}
}

// StratumState is a resumable snapshot of one stratum's counts. The
// clause set, the partition plan, and the PRNG streams are all derived
// deterministically elsewhere, so (Hits, Trials, Chunks) suffices —
// exactly the contract of the flat estimator's State, minus mid-chunk
// tails (the stratified scheduler only publishes chunk-aligned counts).
type StratumState struct {
	Hits   int64
	Trials int64
	Chunks int
}

// StratumState snapshots stratum j.
func (s *Stratified) StratumState(j int) StratumState {
	st := &s.strata[j]
	return StratumState{Hits: st.hits, Trials: st.trials, Chunks: st.chunks}
}

// ResumeStratum loads a snapshot into stratum j, which must not have
// sampled yet. The snapshot must come from the same canonical clause set,
// the same partition plan, and the same seed scheme — the caller's
// contract, as with Estimator.Resume.
func (s *Stratified) ResumeStratum(j int, st StratumState) error {
	if st.Hits < 0 || st.Trials < st.Hits || st.Chunks < 0 {
		return errors.New("karpluby: invalid stratum resume state")
	}
	sj := &s.strata[j]
	if sj.trials != 0 || sj.hits != 0 {
		return errors.New("karpluby: ResumeStratum on a stratum that already sampled")
	}
	sj.hits, sj.trials, sj.chunks = st.Hits, st.Trials, st.Chunks
	return nil
}

// StratumShard samples trials for one stratum of a Stratified estimator
// on its own PRNG and scratch space, so shards of one estimator may run
// on separate goroutines concurrently. Fold a finished shard's counts
// back with MergeShard.
type StratumShard struct {
	par *Stratified
	s   *stratum
	rng *rand.Rand

	hits   int64
	trials int64
	world  map[vars.Var]int32
}

// Shard returns a sampling shard for stratum j drawing from rng. The
// stratum must be active (M_j > 0).
func (s *Stratified) Shard(j int, rng *rand.Rand) *StratumShard {
	st := &s.strata[j]
	if st.m <= 0 {
		panic("karpluby: Shard on an inactive stratum")
	}
	return &StratumShard{
		par:   s,
		s:     st,
		rng:   rng,
		world: make(map[vars.Var]int32, len(s.vars)),
	}
}

// Hits returns the shard's hit count.
func (sh *StratumShard) Hits() int64 { return sh.hits }

// Trials returns the shard's trial count.
func (sh *StratumShard) Trials() int64 { return sh.trials }

// Add runs n more trials on the shard.
func (sh *StratumShard) Add(n int) {
	for i := 0; i < n; i++ {
		sh.hits += int64(sh.sampleOnce())
	}
	sh.trials += int64(n)
}

// sampleOnce runs one stratified Karp–Luby trial: draw a clause from this
// stratum with probability p_f/M_j, extend it to a total assignment over
// vars(F), and return 1 iff the drawn clause is the smallest-index clause
// of all of F consistent with the extension. The draw sequence replicates
// Estimator.sampleOnce exactly — one Float64 for the clause, then one per
// unbound variable in canonical order — so a single-stratum plan consumes
// the identical PRNG stream and produces bit-identical counts to the flat
// estimator.
func (sh *StratumShard) sampleOnce() int {
	u := sh.rng.Float64() * sh.s.m
	k := sort.SearchFloat64s(sh.s.cum, u)
	if k == len(sh.s.cum) {
		k = len(sh.s.cum) - 1
	}
	gi := sh.s.idx[k]
	chosen := sh.par.f[gi]

	for v := range sh.world {
		delete(sh.world, v)
	}
	for _, b := range chosen {
		sh.world[b.Var] = b.Alt
	}
	for _, v := range sh.par.vars {
		if _, ok := sh.world[v]; ok {
			continue
		}
		sh.world[v] = sh.sampleAlt(v)
	}

	// Minimality against ALL of F, not just this stratum: that is what
	// makes the stratum masses p_j partition p.
	for i := 0; i < gi; i++ {
		if sh.consistent(sh.par.f[i]) {
			return 0
		}
	}
	return 1
}

// sampleAlt draws an alternative of v according to its probabilities,
// consuming the PRNG identically to Estimator.sampleAlt.
func (sh *StratumShard) sampleAlt(v vars.Var) int32 {
	u := sh.rng.Float64()
	probs := sh.par.table.Info(v).Probs
	acc := 0.0
	for alt, p := range probs {
		acc += p
		if u < acc {
			return int32(alt)
		}
	}
	return int32(len(probs) - 1)
}

// consistent reports whether the current sampled world extends clause a.
func (sh *StratumShard) consistent(a vars.Assignment) bool {
	for _, b := range a {
		if got, ok := sh.world[b.Var]; !ok || got != b.Alt {
			return false
		}
	}
	return true
}

// MergeShard folds shard sh's counts into stratum j. Merging is exact and
// order-independent (integer sums), so any partition of a stratum's
// trials into shards yields bit-identical estimates.
func (s *Stratified) MergeShard(j int, sh *StratumShard) {
	if sh.s != &s.strata[j] {
		panic("karpluby: merging a shard into the wrong stratum")
	}
	s.strata[j].hits += sh.hits
	s.strata[j].trials += sh.trials
}

// AbsorbStratum folds raw remote trial counts into stratum j — the
// cross-process form of MergeShard, mirroring Estimator.Absorb: a shard
// rebuilt the same stratification plan from the same canonical clause set
// and bit-exact probabilities, sampled the assigned chunks of stratum j,
// and shipped back the integer sums, which combine exactly.
func (s *Stratified) AbsorbStratum(j int, hits, trials int64) {
	if hits < 0 || trials < 0 || hits > trials {
		panic("karpluby: absorbing invalid remote stratum counts")
	}
	s.strata[j].hits += hits
	s.strata[j].trials += trials
}

// Estimate returns p̂ = Σ_j M_j·θ̂_j. A stratum with no trials yet
// contributes its mass M_j as a safe upper bound (θ_j ≤ 1), mirroring the
// flat estimator's zero-trial convention; with no trials at all the
// estimate is min(M, 1).
func (s *Stratified) Estimate() float64 {
	if s.Trials() == 0 {
		return math.Min(s.m, 1)
	}
	p := 0.0
	for j := range s.strata {
		st := &s.strata[j]
		if st.m <= 0 {
			continue
		}
		if st.trials == 0 {
			p += st.m
			continue
		}
		p += st.m * float64(st.hits) / float64(st.trials)
	}
	return p
}

// activeStrata counts strata with positive mass.
func (s *Stratified) activeStrata() int {
	n := 0
	for j := range s.strata {
		if s.strata[j].m > 0 {
			n++
		}
	}
	return n
}

// AdditiveBound returns a width W such that Pr[|p̂−p| ≥ W] ≤ delta, from
// per-stratum empirical-Bernstein bounds (Maurer & Pontil, "Empirical
// Bernstein bounds and sample variance penalization"): with probability
// 1−δ_j,
//
//	|θ̂_j−θ_j| ≤ √(2·V̂_j·L_j/n_j) + 7·L_j/(3(n_j−1)),  L_j = ln(4/δ_j),
//
// where V̂_j is the sample variance of the stratum's Bernoulli trials.
// The failure probability delta is split evenly over the active strata
// (δ_j = delta/K) and the widths combine as W = Σ_j M_j·w_j. A stratum
// with fewer than two trials contributes the vacuous width M_j·1.
//
// Unlike the Chernoff budget TrialsFor, this bound adapts to the observed
// variance: a stratum whose trials are nearly deterministic (θ̂_j near 0
// or 1) tightens much faster than 1/√n, which is what lets skewed clause
// sets converge early.
func (s *Stratified) AdditiveBound(delta float64) float64 {
	if delta <= 0 {
		return math.Inf(1)
	}
	k := s.activeStrata()
	if k == 0 {
		return 0
	}
	dj := delta / float64(k)
	l := math.Log(4 / dj)
	w := 0.0
	for j := range s.strata {
		st := &s.strata[j]
		if st.m <= 0 {
			continue
		}
		wj := 1.0
		if st.trials >= 2 {
			n := float64(st.trials)
			h := float64(st.hits)
			// Unbiased sample variance of 0/1 trials: h(n−h)/(n(n−1)).
			v := h * (n - h) / (n * (n - 1))
			wj = math.Sqrt(2*v*l/n) + 7*l/(3*(n-1))
			if wj > 1 {
				wj = 1
			}
		}
		w += st.m * wj
	}
	return w
}

// Delta returns the smallest failure probability δ for which the current
// counts certify the relative guarantee Pr[|p̂−p| ≥ ε·p] ≤ δ: it inverts
// AdditiveBound by binary search, using the sound sufficient condition
//
//	W(δ)·(1+ε) ≤ ε·p̂   ⟹   W(δ) ≤ ε·(p̂−W(δ)) ≤ ε·p  (w.p. 1−δ),
//
// since |p̂−p| ≤ W implies p ≥ p̂−W. With no trials (or p̂ = 0) it
// returns 1, like the flat estimator before its first round.
func (s *Stratified) Delta(eps float64) float64 {
	if s.Trials() == 0 {
		return 1
	}
	p := s.Estimate()
	if p <= 0 || eps <= 0 {
		return 1
	}
	ok := func(delta float64) bool {
		return s.AdditiveBound(delta)*(1+eps) <= eps*p
	}
	if !ok(1) {
		return 1
	}
	lo, hi := math.Log(1e-18), 0.0 // log-δ bracket: [1e-18, 1]
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if ok(math.Exp(mid)) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Exp(hi)
}

// Bounds returns a confidence interval [lo, hi] for p at failure
// probability delta: p̂ ± AdditiveBound(delta), clamped to [0, min(M, 1)].
// It is the hook threshold/top-k early stopping decides on.
func (s *Stratified) Bounds(delta float64) (lo, hi float64) {
	cap := math.Min(s.m, 1)
	if s.Trials() == 0 {
		return 0, cap
	}
	p := s.Estimate()
	w := s.AdditiveBound(delta)
	lo = p - w
	if lo < 0 {
		lo = 0
	}
	hi = p + w
	if hi > cap {
		hi = cap
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// neymanWeights returns the allocation weight u_j = M_j·σ̃_j per stratum,
// with σ̃_j derived from the Laplace-smoothed hit rate
// θ̃_j = (hits+1)/(trials+2). The smoothing keeps every active stratum's
// weight strictly positive, so a stratum that has only seen misses (or
// only hits) so far is never starved forever on an early zero-variance
// reading.
func (s *Stratified) neymanWeights() []float64 {
	u := make([]float64, len(s.strata))
	for j := range s.strata {
		st := &s.strata[j]
		if st.m <= 0 {
			continue
		}
		th := (float64(st.hits) + 1) / (float64(st.trials) + 2)
		u[j] = st.m * math.Sqrt(th*(1-th))
	}
	return u
}

// NextWave returns the per-stratum chunk counts of the next sampling wave
// of the adaptive loop, or nil when the cap is exhausted. It is a pure
// function of the merged counts, the chunk sizes, and the cap — never of
// worker count or scheduling order — which is what makes the adaptive
// trajectory deterministic and resumable.
//
// The first wave gives every active stratum one chunk (bounds are vacuous
// until each stratum has data). Every later wave doubles the work so far
// (budget = min(spent, cap−spent)) and splits it across strata in
// proportion to the Neyman weights M_j·σ̃_j, rounded down to whole
// chunks; when rounding leaves nothing, the highest-weight stratum gets
// one chunk so progress is always made.
func (s *Stratified) NextWave(chunkSize []int64, cap int64) []int {
	spent := s.Trials()
	if cap > 0 && spent >= cap {
		return nil
	}
	out := make([]int, len(s.strata))
	fresh := false
	for j := range s.strata {
		if s.strata[j].m > 0 && s.strata[j].trials == 0 {
			out[j] = 1
			fresh = true
		}
	}
	if fresh {
		return out
	}
	budget := spent
	if cap > 0 && cap-spent < budget {
		budget = cap - spent
	}
	u := s.neymanWeights()
	total := 0.0
	for _, w := range u {
		total += w
	}
	if total <= 0 {
		return nil
	}
	allocated := 0
	for j, w := range u {
		if w <= 0 || chunkSize[j] <= 0 {
			continue
		}
		c := int(float64(budget) * w / total / float64(chunkSize[j]))
		out[j] = c
		allocated += c
	}
	if allocated == 0 {
		best, bw := -1, 0.0
		for j, w := range u {
			if w > bw {
				best, bw = j, w
			}
		}
		if best < 0 {
			return nil
		}
		out[best] = 1
	}
	return out
}

// Allocate splits need trials across the active strata in proportion to
// the Neyman weights, by largest remainder (ties to the lower stratum
// index), so the returned counts sum to exactly need. Like NextWave it is
// a pure function of the merged counts, hence deterministic. It is the
// fixed-budget allocation used inside the σ̂ doubling loop, where the
// pass's budget is set by the round count rather than by convergence.
func (s *Stratified) Allocate(need int64) []int64 {
	out := make([]int64, len(s.strata))
	if need <= 0 {
		return out
	}
	u := s.neymanWeights()
	total := 0.0
	for _, w := range u {
		total += w
	}
	if total <= 0 {
		return out
	}
	type frac struct {
		j int
		f float64
	}
	var rem []frac
	var given int64
	for j, w := range u {
		if w <= 0 {
			continue
		}
		raw := float64(need) * w / total
		fl := math.Floor(raw)
		out[j] = int64(fl)
		given += int64(fl)
		rem = append(rem, frac{j: j, f: raw - fl})
	}
	sort.SliceStable(rem, func(a, b int) bool { return rem[a].f > rem[b].f })
	for i := 0; given < need && len(rem) > 0; i = (i + 1) % len(rem) {
		out[rem[i].j]++
		given++
	}
	return out
}

// StratumSeed derives the per-stratum task seed the stratum's chunk
// streams hang off (sched.ChunkSeed(StratumSeed(task, j), chunkIndex)).
// Stratum 0 keeps the task seed unchanged so a single-stratum plan
// samples the exact chunk streams of the flat scheduler — the
// bit-parity contract tested by the scenario suite; higher strata get
// decorrelated seeds.
func StratumSeed(taskSeed int64, j int) int64 {
	if j == 0 {
		return taskSeed
	}
	return sched.TaskSeedWords(taskSeed, 0x9e3779b97f4a7c15*uint64(j+1), 0xc2b2ae3d27d4eb4f)
}

// DefaultChunk is the scheduler's chunk sizing — a whole number of
// Figure-3 rounds (k trials each) totalling at least 4096 trials —
// exposed so the sequential reference driver and benchmarks plan the
// same chunks as the engine.
func DefaultChunk(clauses int) int64 {
	const minChunkTrials = 4096
	rounds := (minChunkTrials + clauses - 1) / clauses
	return int64(rounds) * int64(clauses)
}

// AdaptiveOptions parameterizes EstimateAdaptive.
type AdaptiveOptions struct {
	// MaxStrata bounds the number of weight bands (PlanStrata); values
	// ≤ 1 select a single stratum.
	MaxStrata int
	// Eps, Delta are the target relative (ε,δ) guarantee.
	Eps, Delta float64
	// Seed is the task-level seed; per-stratum chunk streams derive from
	// it via StratumSeed and sched.ChunkSeed.
	Seed int64
	// ChunkFor overrides the chunk sizing (nil selects DefaultChunk).
	ChunkFor func(clauses int) int64
	// Cap bounds total trials; 0 selects TrialsFor(Eps, Delta, |F|) — the
	// stratum-blind Chernoff budget, so adaptive estimation never costs
	// more than the flat FPRAS (modulo one chunk of rounding).
	Cap int64
}

// AdaptiveResult reports an EstimateAdaptive run.
type AdaptiveResult struct {
	P       float64 // the estimate p̂
	Sampled int64   // trials actually drawn
	Budget  int64   // the stratum-blind cap the loop ran under
	Waves   int     // sampling waves executed
	Strata  int     // strata in the plan
}

// EstimateAdaptive runs the full stratified adaptive loop sequentially:
// plan strata, then alternate convergence checks (Delta(eps) ≤ delta)
// with NextWave sampling until the bound holds or the cap is spent. It is
// the single-threaded reference implementation of the loop the core
// engine runs across its worker pool — same plan, same chunk streams,
// same wave schedule — used by benchmarks and parity tests.
func EstimateAdaptive(f dnf.F, table *vars.Table, o AdaptiveOptions) (AdaptiveResult, error) {
	f = f.Dedup()
	if len(f) == 0 {
		return AdaptiveResult{}, nil
	}
	if len(f[0]) == 0 {
		return AdaptiveResult{P: 1}, nil
	}
	plan := PlanStrata(f, table, o.MaxStrata)
	s, err := NewStratified(f, table, plan)
	if err != nil {
		return AdaptiveResult{}, err
	}
	chunkFor := o.ChunkFor
	if chunkFor == nil {
		chunkFor = DefaultChunk
	}
	sizes := make([]int64, s.StratumCount())
	for j := range sizes {
		sizes[j] = chunkFor(s.StratumClauses(j))
	}
	cap := o.Cap
	if cap <= 0 {
		cap = TrialsFor(o.Eps, o.Delta, len(f))
	}
	res := AdaptiveResult{Budget: cap, Strata: s.StratumCount()}
	for {
		if s.Delta(o.Eps) <= o.Delta {
			break
		}
		wave := s.NextWave(sizes, cap)
		if wave == nil {
			break
		}
		for j, c := range wave {
			if c == 0 {
				continue
			}
			seed := StratumSeed(o.Seed, j)
			start := s.StratumChunks(j)
			for i := 0; i < c; i++ {
				rng := rand.New(rand.NewSource(sched.ChunkSeed(seed, start+i)))
				sh := s.Shard(j, rng)
				sh.Add(int(sizes[j]))
				s.MergeShard(j, sh)
			}
			s.AdvanceStratum(j, start+c)
		}
		res.Waves++
	}
	res.P = s.Estimate()
	res.Sampled = s.Trials()
	return res, nil
}
