package karpluby

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dnf"
	"repro/internal/sched"
	"repro/internal/vars"
)

// chainF builds the clause set of a 1-of-n "at least one sensor fires"
// tuple: n binary variables, clause i asserting var i = 1.
func chainF(n int, p float64) (dnf.F, *vars.Table) {
	tab := vars.NewTable()
	f := make(dnf.F, n)
	for i := 0; i < n; i++ {
		v := tab.Add("x"+string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune('0'+i/260)), []float64{1 - p, p}, nil)
		f[i] = vars.Assignment{{Var: v, Alt: 1}}
	}
	return f, tab
}

// TestMergePartitionInvariant: splitting a trial budget into chunks, each
// with its own deterministically seeded stream, yields bit-identical
// (hits, trials) no matter how the chunks are grouped into shards — the
// property the parallel engine relies on for worker-count independence.
func TestMergePartitionInvariant(t *testing.T) {
	f, tab := chainF(12, 0.3)
	const taskSeed, total, chunkSize = 12345, 9000, 1000

	runPlan := func(group int) (int64, int64) {
		tmpl, err := NewEstimator(f, tab, nil)
		if err != nil {
			t.Fatal(err)
		}
		chunks := sched.Chunks(total, chunkSize)
		// Process chunks in round-robin groups to simulate different
		// worker interleavings.
		for g := 0; g < group; g++ {
			for i := g; i < len(chunks); i += group {
				sh := tmpl.Shard(rand.New(rand.NewSource(sched.ChunkSeed(taskSeed, chunks[i].Index))))
				sh.Add(int(chunks[i].N))
				tmpl.Merge(sh)
			}
		}
		return tmpl.Hits(), tmpl.Trials()
	}

	h1, m1 := runPlan(1)
	for _, group := range []int{2, 3, 7} {
		h, m := runPlan(group)
		if h != h1 || m != m1 {
			t.Errorf("grouping %d: (hits,trials)=(%d,%d), want (%d,%d)", group, h, m, h1, m1)
		}
	}
	if m1 != total {
		t.Errorf("merged trials = %d, want %d", m1, total)
	}
}

// TestShardConcurrentMatchesSequential: shards running on real goroutines
// produce the same merged counts as the same chunks run sequentially, and
// the merged estimate agrees with the exact confidence.
func TestShardConcurrentMatchesSequential(t *testing.T) {
	f, tab := chainF(20, 0.15)
	const taskSeed, total, chunkSize = 99, 40000, 2500
	chunks := sched.Chunks(total, chunkSize)

	seq, err := NewEstimator(f, tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		sh := seq.Shard(rand.New(rand.NewSource(sched.ChunkSeed(taskSeed, c.Index))))
		sh.Add(int(c.N))
		seq.Merge(sh)
	}

	par, err := NewEstimator(f, tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, c := range chunks {
		wg.Add(1)
		go func(c sched.Chunk) {
			defer wg.Done()
			sh := par.Shard(rand.New(rand.NewSource(sched.ChunkSeed(taskSeed, c.Index))))
			sh.Add(int(c.N))
			mu.Lock()
			par.Merge(sh)
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	if par.Hits() != seq.Hits() || par.Trials() != seq.Trials() {
		t.Fatalf("concurrent (hits,trials)=(%d,%d), sequential (%d,%d)",
			par.Hits(), par.Trials(), seq.Hits(), seq.Trials())
	}
	exact := dnf.Confidence(f, tab)
	if got := par.Estimate(); math.Abs(got-exact) > 0.05*exact {
		t.Errorf("merged estimate %v too far from exact %v", got, exact)
	}
}

// TestMergeRejectsForeignEstimator: merging across different clause sets
// is a programming error and must panic.
func TestMergeRejectsForeignEstimator(t *testing.T) {
	f1, tab1 := chainF(3, 0.5)
	f2, tab2 := chainF(5, 0.5)
	a, err := NewEstimator(f1, tab1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEstimator(f2, tab2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Merge across clause sets did not panic")
		}
	}()
	a.Merge(b)
}
