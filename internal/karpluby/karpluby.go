// Package karpluby implements the Karp–Luby Monte Carlo algorithm in the
// version for approximating tuple confidence given in Section 4 of the
// paper (Definition 4.1), together with the Chernoff-bound bookkeeping
// that turns it into an (ε,δ) FPRAS (Proposition 4.2).
//
// The estimator draws a clause f ∈ F with probability p_f/M (where
// M = Σ p_f), extends it to a total assignment f* over the variables of F,
// and returns 1 iff f is the smallest-index clause consistent with f*. The
// estimator is unbiased for p/M, so p̂ = X·M/m after m trials.
//
// The Estimator is incremental: Figure 3's adaptive algorithm adds batches
// of |F| trials per round and re-derives the current error bound
// δ(ε) = 2·exp(−m·ε²/(3·|F|)) after each round.
package karpluby

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dnf"
	"repro/internal/vars"
)

// Estimator is an incremental Karp–Luby confidence estimator for a single
// clause set F. It is not safe for concurrent use; for parallel sampling,
// derive per-goroutine shards with Shard and fold their counts back with
// Merge.
type Estimator struct {
	f     dnf.F
	table *vars.Table
	// vars holds the variables mentioned by F in content-canonical order
	// (sorted by registered name, not by id): world extension consumes the
	// PRNG in this order, so the trial stream — and hence the estimate —
	// depends only on the clause-set content and the table's
	// distributions, never on the order variables happened to be
	// registered in. This is what lets content-keyed caches share state
	// across databases built in different orders.
	vars   []vars.Var
	m      float64   // M = Σ p_f
	cum    []float64 // cumulative clause weights for sampling
	rng    *rand.Rand
	hits   int64 // Σ X_i
	trials int64 // m

	// chunks is the round-aligned chunk-plan cursor: the counts above are
	// known to cover plan chunks [0, chunks) of the scheduling layer's
	// deterministic chunk plan. The estimator itself never derives it —
	// it is carried by State/Resume and advanced by the scheduler so a
	// snapshot can be extended with only the delta chunks of a larger
	// budget.
	chunks int

	// scratch buffers reused across trials to avoid allocation
	world map[vars.Var]int32
}

// ErrEmpty is returned when the clause set has zero total weight (no
// clauses): the confidence is exactly 0 and needs no estimation.
var ErrEmpty = errors.New("karpluby: empty clause set")

// NewEstimator builds an estimator for clause set f. Duplicate clauses are
// removed first (they would bias M but not p). A clause set containing the
// empty assignment has confidence exactly 1; the estimator handles it by
// construction (single clause, always minimal).
//
// rng may be nil for an estimator used only as a merge target (a
// "template" whose trials all come from shards); calling Step, Add, or
// Confidence-style sampling on a nil-rng estimator panics.
func NewEstimator(f dnf.F, table *vars.Table, rng *rand.Rand) (*Estimator, error) {
	f = f.Dedup()
	if len(f) == 0 {
		return nil, ErrEmpty
	}
	e := &Estimator{
		f:     f,
		table: table,
		vars:  f.Vars(),
		rng:   rng,
		world: make(map[vars.Var]int32),
	}
	// Content-canonical variable order; see the field comment.
	sort.Slice(e.vars, func(i, j int) bool {
		return table.Info(e.vars[i]).Name < table.Info(e.vars[j]).Name
	})
	e.cum = make([]float64, len(f))
	total := 0.0
	for i, a := range f {
		total += a.Weight(table)
		e.cum[i] = total
	}
	e.m = total
	if total <= 0 {
		return nil, ErrEmpty
	}
	return e, nil
}

// ClauseCount returns |F| after deduplication.
func (e *Estimator) ClauseCount() int { return len(e.f) }

// M returns the total clause weight Σ p_f.
func (e *Estimator) M() float64 { return e.m }

// Trials returns the number of estimator invocations so far.
func (e *Estimator) Trials() int64 { return e.trials }

// Hits returns the number of successful trials Σ X_i so far.
func (e *Estimator) Hits() int64 { return e.hits }

// Shard returns a fresh estimator over the same clause set that samples
// from rng. The shard shares the parent's immutable clause data (clauses,
// cumulative weights, variable list) but has its own trial counters and
// scratch space, so shards of one estimator may run on separate goroutines
// concurrently. Fold a finished shard's counts back with Merge.
func (e *Estimator) Shard(rng *rand.Rand) *Estimator {
	return &Estimator{
		f:     e.f,
		table: e.table,
		vars:  e.vars,
		m:     e.m,
		cum:   e.cum,
		rng:   rng,
		world: make(map[vars.Var]int32, len(e.vars)),
	}
}

// State is a resumable snapshot of an estimator's trial counts. It is the
// whole mutable state of an Estimator: the clause set, weights, and PRNG
// streams are all derived deterministically elsewhere (from the clause set
// and the scheduler's seed scheme), so (Hits, Trials, Chunks) suffices to
// continue an estimation exactly where a previous — possibly smaller —
// budget left off.
//
// Chunks is the scheduler's round-aligned chunk-plan cursor: the counts
// cover at least plan chunks [0, Chunks) of the deterministic chunk plan
// for the budget that produced the snapshot. Because chunk plans for
// nested budgets share their full-size prefix, a chunk-aligned snapshot
// (Trials == Chunks·chunkSize) can seed a run at any larger budget: only
// chunks ≥ Chunks need sampling, and the merged counts are bit-identical
// to a from-scratch run.
//
// A budget that is not chunk-aligned ends in a trailing partial chunk,
// which sampled a strict prefix of the chunk stream at plan index Chunks.
// The Partial fields snapshot that chunk mid-stream: its counts
// (PartialHits over PartialTrials, both already included in Hits/Trials)
// and the live PRNG positioned exactly after trial PartialTrials of the
// chunk's stream. A resumed run completes the chunk by drawing its
// remaining trials from PartialRNG — continuing the identical stream the
// from-scratch run would sample — instead of re-sampling the chunk, so
// restart-heavy plans replay trailing partial chunks rather than re-spend
// them. A snapshot with PartialRNG nil and Trials beyond the cursor's
// coverage (the pre-snapshot format) remains valid only for exact replay
// at the producing budget.
type State struct {
	Hits   int64
	Trials int64
	Chunks int

	PartialHits   int64
	PartialTrials int64
	PartialRNG    *rand.Rand
}

// Valid reports whether the snapshot is internally consistent.
func (s State) Valid() bool {
	if s.Hits < 0 || s.Trials < s.Hits || s.Chunks < 0 {
		return false
	}
	if s.PartialTrials < 0 || s.PartialHits < 0 || s.PartialHits > s.PartialTrials {
		return false
	}
	if s.PartialTrials > 0 && s.PartialRNG == nil {
		return false
	}
	return true
}

// State returns a snapshot of the estimator's counts and chunk cursor.
// Snapshots taken after all chunks of a budget merged (see AdvanceTo) are
// resumable into any run whose chunk plan extends this one's.
func (e *Estimator) State() State {
	return State{Hits: e.hits, Trials: e.trials, Chunks: e.chunks}
}

// Resume loads a snapshot into a fresh estimator, so that subsequent
// sampling extends the snapshotted run instead of restarting it. The
// estimator must not have sampled yet (Resume replaces, not merges), the
// snapshot must be valid, and — for the bit-identity guarantee — it must
// have been produced over the same clause set under the same seed scheme;
// the latter is the caller's contract, since a State carries no clause
// identity.
func (e *Estimator) Resume(st State) error {
	if !st.Valid() {
		return errors.New("karpluby: invalid resume state")
	}
	if e.trials != 0 || e.hits != 0 {
		return errors.New("karpluby: Resume on an estimator that already sampled")
	}
	e.hits, e.trials, e.chunks = st.Hits, st.Trials, st.Chunks
	return nil
}

// AdvanceTo raises the chunk-plan cursor to chunk (a no-op when the cursor
// is already past it). The scheduling layer calls it after every plan
// chunk below the mark has merged, making the estimator's State resumable
// at that boundary.
func (e *Estimator) AdvanceTo(chunk int) {
	if chunk > e.chunks {
		e.chunks = chunk
	}
}

// Merge folds shard o's trial counts into e. Both estimators must be over
// the same clause set (normally o was created by e.Shard). Because the
// estimate p̂ = X·M/m and the bound δ(ε) depend only on the integer sums
// X and m, merging is exact and order-independent: any partition of m
// trials into shards yields bit-identical results. The (ε,δ) guarantee of
// Proposition 4.2 is preserved — it is a statement about m independent
// trials regardless of which PRNG stream produced each one, provided the
// shard streams are independent.
func (e *Estimator) Merge(o *Estimator) {
	if len(o.f) != len(e.f) || o.m != e.m {
		panic("karpluby: merging estimators over different clause sets")
	}
	e.hits += o.hits
	e.trials += o.trials
}

// Absorb folds raw remote trial counts into e. It is Merge for counts
// that crossed a process boundary: a shard rebuilt an estimator over the
// same clause set (same canonical order, same bit-exact probabilities,
// same seed scheme), sampled the assigned chunks, and shipped back the
// integer (hits, trials) sums. Because the estimate and bounds depend
// only on those sums, absorbing is exact and order-independent just like
// Merge; the same-clause-set contract is the caller's to uphold.
func (e *Estimator) Absorb(hits, trials int64) {
	if hits < 0 || trials < 0 || hits > trials {
		panic("karpluby: absorbing invalid remote counts")
	}
	e.hits += hits
	e.trials += trials
}

// sampleOnce runs one Karp–Luby trial (Definition 4.1) and returns 0 or 1.
func (e *Estimator) sampleOnce() int {
	// Step 1: choose f with probability p_f/M.
	u := e.rng.Float64() * e.m
	idx := sort.SearchFloat64s(e.cum, u)
	if idx == len(e.cum) {
		idx = len(e.cum) - 1
	}
	chosen := e.f[idx]

	// Step 2: extend to a total assignment f* over vars(F): keep the
	// chosen clause's bindings, sample every other variable per W.
	for k := range e.world {
		delete(e.world, k)
	}
	for _, b := range chosen {
		e.world[b.Var] = b.Alt
	}
	for _, v := range e.vars {
		if _, ok := e.world[v]; ok {
			continue
		}
		e.world[v] = e.sampleAlt(v)
	}

	// Step 3: return 1 iff chosen is the smallest-index clause consistent
	// with f*.
	for i := 0; i < idx; i++ {
		if e.consistent(e.f[i]) {
			return 0
		}
	}
	return 1
}

// sampleAlt draws an alternative of v according to its probabilities.
func (e *Estimator) sampleAlt(v vars.Var) int32 {
	u := e.rng.Float64()
	probs := e.table.Info(v).Probs
	acc := 0.0
	for alt, p := range probs {
		acc += p
		if u < acc {
			return int32(alt)
		}
	}
	return int32(len(probs) - 1)
}

// consistent reports whether the current sampled world extends clause a.
func (e *Estimator) consistent(a vars.Assignment) bool {
	for _, b := range a {
		if got, ok := e.world[b.Var]; !ok || got != b.Alt {
			return false
		}
	}
	return true
}

// Step runs |F| more trials — one round of the inner loop of the paper's
// Figure 3 algorithm. It makes Estimator satisfy the Approximable
// interface of the predapprox package.
func (e *Estimator) Step() { e.Add(len(e.f)) }

// Add runs n more trials.
func (e *Estimator) Add(n int) {
	for i := 0; i < n; i++ {
		e.hits += int64(e.sampleOnce())
	}
	e.trials += int64(n)
}

// Estimate returns the current estimate p̂ = X·M/m. With zero trials it
// returns M as a safe upper bound (p ≤ M always).
func (e *Estimator) Estimate() float64 {
	if e.trials == 0 {
		return math.Min(e.m, 1)
	}
	return float64(e.hits) * e.m / float64(e.trials)
}

// Delta returns the paper's error bound for the current trial count:
// δ(ε) = 2·exp(−m·ε²/(3·|F|)), i.e. Pr[|p̂−p| ≥ ε·p] ≤ Delta(ε).
func (e *Estimator) Delta(eps float64) float64 {
	return DeltaBound(eps, e.trials, len(e.f))
}

// Bounds returns a confidence interval [lo, hi] for p at failure
// probability delta, by inverting DeltaBound: at the current trial count
// the relative half-width ε(δ) = √(3·|F|·ln(2/δ)/m) satisfies
// Pr[|p̂−p| ≥ ε·p] ≤ δ, so p ∈ [p̂/(1+ε), p̂/(1−ε)] with probability
// 1−δ (the upper end is min(M, 1) when ε ≥ 1). It makes Estimator
// satisfy the predapprox.Bounded interface for threshold decisions.
func (e *Estimator) Bounds(delta float64) (lo, hi float64) {
	max := math.Min(e.m, 1)
	if e.trials == 0 || delta <= 0 || delta >= 1 {
		return 0, max
	}
	eps := math.Sqrt(3 * float64(len(e.f)) * math.Log(2/delta) / float64(e.trials))
	p := e.Estimate()
	lo = p / (1 + eps)
	if eps >= 1 {
		return lo, max
	}
	hi = p / (1 - eps)
	if hi > max {
		hi = max
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// DeltaBound is the Chernoff-derived bound δ(ε) = 2·exp(−m·ε²/(3·|F|)).
func DeltaBound(eps float64, trials int64, clauses int) float64 {
	if trials == 0 {
		return 1
	}
	d := 2 * math.Exp(-float64(trials)*eps*eps/(3*float64(clauses)))
	return math.Min(d, 1)
}

// TrialsFor returns the paper's sample count m = ⌈3·|F|·log(2/δ)/ε²⌉
// that guarantees an (ε,δ) approximation.
func TrialsFor(eps, delta float64, clauses int) int64 {
	return int64(math.Ceil(3 * float64(clauses) * math.Log(2/delta) / (eps * eps)))
}

// Confidence runs the full FPRAS: it draws TrialsFor(eps, delta, |F|)
// samples and returns p̂ with Pr[|p̂−p| ≥ ε·p] ≤ δ.
func Confidence(f dnf.F, table *vars.Table, eps, delta float64, rng *rand.Rand) (float64, error) {
	f = f.Dedup()
	if len(f) == 0 {
		return 0, nil
	}
	if len(f[0]) == 0 {
		return 1, nil
	}
	e, err := NewEstimator(f, table, rng)
	if err != nil {
		return 0, err
	}
	e.Add(int(TrialsFor(eps, delta, e.ClauseCount())))
	return e.Estimate(), nil
}
