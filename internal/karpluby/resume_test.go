package karpluby

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/dnf"
	"repro/internal/sched"
	"repro/internal/vars"
)

// resumeClauseSet builds a k-clause DNF over k independent binary
// variables (clause i asserts v_i = 0 with probability 0.3).
func resumeClauseSet(t testing.TB, k int) (dnf.F, *vars.Table) {
	t.Helper()
	table := vars.NewTable()
	f := make(dnf.F, k)
	for i := 0; i < k; i++ {
		v := table.Add("v"+strconv.Itoa(i), []float64{0.3, 0.7}, nil)
		f[i] = vars.MustAssignment(vars.Binding{Var: v, Alt: 0})
	}
	return f, table
}

func TestStateResumeRoundTrip(t *testing.T) {
	f, table := resumeClauseSet(t, 5)
	e, err := NewEstimator(f, table, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	e.Add(1234)
	e.AdvanceTo(3)
	st := e.State()
	if st.Trials != 1234 || st.Hits != e.Hits() || st.Chunks != 3 {
		t.Fatalf("snapshot %+v does not reflect estimator (hits=%d trials=%d)", st, e.Hits(), e.Trials())
	}
	if !st.Valid() {
		t.Fatalf("snapshot %+v should be valid", st)
	}

	r, err := NewEstimator(f, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Resume(st); err != nil {
		t.Fatal(err)
	}
	if r.Hits() != e.Hits() || r.Trials() != e.Trials() || r.State() != st {
		t.Errorf("resumed estimator state %+v, want %+v", r.State(), st)
	}
	if r.Estimate() != e.Estimate() {
		t.Errorf("resumed estimate %v, want %v", r.Estimate(), e.Estimate())
	}
	if r.Delta(0.1) != e.Delta(0.1) {
		t.Errorf("resumed delta %v, want %v", r.Delta(0.1), e.Delta(0.1))
	}
}

func TestResumeRejectsBadStates(t *testing.T) {
	f, table := resumeClauseSet(t, 3)
	for _, st := range []State{
		{Hits: -1, Trials: 0, Chunks: 0},
		{Hits: 5, Trials: 4, Chunks: 0},
		{Hits: 0, Trials: 0, Chunks: -1},
	} {
		e, err := NewEstimator(f, table, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Resume(st); err == nil {
			t.Errorf("Resume(%+v) accepted an invalid state", st)
		}
	}
	// Resume must not overwrite counts an estimator already accumulated.
	e, err := NewEstimator(f, table, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	e.Add(10)
	if err := e.Resume(State{Hits: 0, Trials: 100, Chunks: 1}); err == nil {
		t.Error("Resume on a sampled estimator should fail")
	}
}

func TestAdvanceToIsMonotone(t *testing.T) {
	f, table := resumeClauseSet(t, 3)
	e, err := NewEstimator(f, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceTo(4)
	e.AdvanceTo(2) // must not regress
	if got := e.State().Chunks; got != 4 {
		t.Errorf("cursor = %d after AdvanceTo(4) then AdvanceTo(2), want 4", got)
	}
}

// TestResumeExtendsMatchScratch is the primitive-level statement of the
// engine's resume invariant: running the chunk plan of budget T₁, then
// resuming the snapshot and running only the delta chunks of T₂ > T₁,
// yields counts bit-identical to running T₂'s full plan from scratch —
// because plans are prefix-compatible and chunk streams depend only on
// (task seed, plan index).
func TestResumeExtendsMatchScratch(t *testing.T) {
	f, table := resumeClauseSet(t, 4)
	const (
		taskSeed = 99
		size     = 512
		t1       = int64(3 * size) // chunk-aligned first budget
		t2       = int64(7*size + 123)
	)
	runPlan := func(e *Estimator, chunks []sched.Chunk) {
		for _, c := range chunks {
			sh := e.Shard(rand.New(rand.NewSource(sched.ChunkSeed(taskSeed, c.Index))))
			sh.Add(int(c.N))
			e.Merge(sh)
		}
	}

	first, err := NewEstimator(f, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	runPlan(first, sched.Chunks(t1, size))
	first.AdvanceTo(sched.FullChunks(t1, size))
	st := first.State()
	if st.Chunks != 3 || st.Trials != t1 {
		t.Fatalf("first budget snapshot %+v, want 3 chunks / %d trials", st, t1)
	}

	resumed, err := NewEstimator(f, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Resume(st); err != nil {
		t.Fatal(err)
	}
	runPlan(resumed, sched.ChunksFrom(t2, size, st.Chunks))

	scratch, err := NewEstimator(f, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	runPlan(scratch, sched.Chunks(t2, size))

	if resumed.Hits() != scratch.Hits() || resumed.Trials() != scratch.Trials() {
		t.Errorf("resumed (hits=%d trials=%d) differs from scratch (hits=%d trials=%d)",
			resumed.Hits(), resumed.Trials(), scratch.Hits(), scratch.Trials())
	}
	if resumed.Estimate() != scratch.Estimate() {
		t.Errorf("resumed estimate %v differs from scratch %v", resumed.Estimate(), scratch.Estimate())
	}
}

// Shards of a resumed estimator must not inherit the resumed counts —
// merging would then double-count the snapshot.
func TestShardOfResumedEstimatorIsFresh(t *testing.T) {
	f, table := resumeClauseSet(t, 3)
	e, err := NewEstimator(f, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Resume(State{Hits: 7, Trials: 30, Chunks: 1}); err != nil {
		t.Fatal(err)
	}
	sh := e.Shard(rand.New(rand.NewSource(3)))
	if sh.Hits() != 0 || sh.Trials() != 0 {
		t.Fatalf("shard starts with hits=%d trials=%d, want zeros", sh.Hits(), sh.Trials())
	}
	sh.Add(10)
	e.Merge(sh)
	if e.Trials() != 40 {
		t.Errorf("merge after resume: trials=%d, want 40", e.Trials())
	}
}
