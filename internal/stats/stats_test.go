package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Error("empty-input conventions broken")
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(Stddev(xs)-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", Stddev(xs), want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile convention broken")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestMax(t *testing.T) {
	if Max([]float64{-3, -1, -2}) != -1 {
		t.Error("Max wrong")
	}
	if Max(nil) != 0 {
		t.Error("Max of empty should be 0")
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	tab := NewTable(&b, "name", "value")
	tab.Row("pi", 3.14159)
	tab.Row("n", 42)
	tab.Flush()
	out := b.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "3.142") || !strings.Contains(out, "42") {
		t.Errorf("table output:\n%s", out)
	}
	if !strings.Contains(out, "----") {
		t.Error("missing separator row")
	}
}
