// Package stats provides the small statistics and table-rendering helpers
// used by the experiment harness: means, standard deviations, quantiles,
// and aligned text tables in the style of the paper's figures.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation (0 for fewer than two
// values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	worst := math.Inf(-1)
	for _, x := range xs {
		if x > worst {
			worst = x
		}
	}
	if math.IsInf(worst, -1) {
		return 0
	}
	return worst
}

// Table renders aligned text tables.
type Table struct {
	w *tabwriter.Writer
}

// NewTable creates a table with a header row and a separator.
func NewTable(out io.Writer, headers ...string) *Table {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	t := &Table{w: w}
	cells := make([]interface{}, len(headers))
	seps := make([]interface{}, len(headers))
	for i, h := range headers {
		cells[i] = h
		seps[i] = dashes(len(h))
	}
	t.Row(cells...)
	t.Row(seps...)
	return t
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// Row appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) Row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.4g", v)
		default:
			fmt.Fprintf(t.w, "%v", c)
		}
	}
	fmt.Fprintln(t.w)
}

// Flush writes the buffered table.
func (t *Table) Flush() { t.w.Flush() }
