package core

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// resumeDB builds the canonical resume workload: R(ID) has nShat tuples
// whose confidence 1−0.7⁴ ≈ 0.76 sits close to (but a non-singular margin
// away from) the σ̂ threshold 0.7, so the doubling loop needs many
// restarts to push δᵢ below δ; S(SID) has nConf tuples with 4-clause
// lineages whose conf estimation spends a full fixed (ε,δ) budget — which
// a restart re-requests identically, the exact-replay case of the cache.
func resumeDB(nShat, nConf int) *urel.Database {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i := 0; i < nShat; i++ {
		for j := 0; j < 4; j++ {
			v := db.Vars.Add("r"+strconv.Itoa(i)+"_"+strconv.Itoa(j), []float64{0.3, 0.7}, nil)
			r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
		}
	}
	db.AddURelation("R", r, false)
	s := urel.NewRelation(rel.NewSchema("SID"))
	for i := 0; i < nConf; i++ {
		for j := 0; j < 4; j++ {
			v := db.Vars.Add("s"+strconv.Itoa(i)+"_"+strconv.Itoa(j), []float64{0.3, 0.7}, nil)
			s.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
		}
	}
	db.AddURelation("S", s, false)
	return db
}

// resumeQuery pairs a restart-hungry σ̂ with a fixed-budget conf in one
// plan, exercising both cache modes (prefix resume and exact replay).
func resumeQuery() algebra.Query {
	return algebra.Product{
		L: algebra.ApproxSelect{
			In:   algebra.Base{Name: "R"},
			Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
			Pred: predapprox.Linear([]float64{1}, 0.7),
		},
		R: algebra.Conf{In: algebra.Base{Name: "S"}, As: "PC"},
	}
}

func resumeOpts(seed int64, workers int, noResume bool) Options {
	return Options{
		Eps0: 0.05, Delta: 0.1, Seed: seed, Workers: workers,
		NoResume: noResume, MaxRounds: 1 << 13,
	}
}

// TestResumeBitIdentical is the tentpole's correctness contract: a
// doubling loop that resumes estimator state across restarts produces
// results bit-identical to from-scratch re-estimation at every budget —
// same data rows, same float bit patterns, same error bounds, same
// singularity flags, same doubling trajectory — for any worker count
// under one seed. The (ε,δ) guarantee is therefore untouched by reuse:
// the final estimates ARE the from-scratch estimates.
func TestResumeBitIdentical(t *testing.T) {
	db := resumeDB(3, 2)
	q := resumeQuery()
	var want []string
	var wantRounds int64
	var wantRestarts int
	for _, noResume := range []bool{false, true} {
		for _, workers := range []int{1, 4, 8} {
			eng := NewEngine(db, resumeOpts(20080609, workers, noResume))
			res, err := eng.EvalApprox(q)
			if err != nil {
				t.Fatalf("noResume=%v workers=%d: %v", noResume, workers, err)
			}
			if res.Stats.Restarts < 3 {
				t.Fatalf("noResume=%v workers=%d: only %d restarts; workload too easy to exercise resume",
					noResume, workers, res.Stats.Restarts)
			}
			got := resultFingerprint(t, res)
			if want == nil {
				want, wantRounds, wantRestarts = got, res.Stats.FinalRounds, res.Stats.Restarts
				continue
			}
			if res.Stats.FinalRounds != wantRounds || res.Stats.Restarts != wantRestarts {
				t.Errorf("noResume=%v workers=%d: trajectory (l=%d, restarts=%d) differs from reference (l=%d, restarts=%d)",
					noResume, workers, res.Stats.FinalRounds, res.Stats.Restarts, wantRounds, wantRestarts)
			}
			if len(got) != len(want) {
				t.Fatalf("noResume=%v workers=%d: %d tuples, want %d", noResume, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("noResume=%v workers=%d: tuple %d differs from reference:\n got %s\nwant %s",
						noResume, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestResumeSavesTrials pins the tentpole's point: with resume on, the
// doubling loop samples at least 1.5× fewer trials than from-scratch
// re-estimation (in this workload the conf budget replays exactly on
// every restart and the σ̂ budgets resume their full-chunk prefixes, so
// the real ratio is far higher).
func TestResumeSavesTrials(t *testing.T) {
	db := resumeDB(3, 2)
	q := resumeQuery()
	on, err := NewEngine(db, resumeOpts(7, 1, false)).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewEngine(db, resumeOpts(7, 1, true)).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.ReusedTrials != 0 {
		t.Errorf("NoResume run reports %d reused trials, want 0", off.Stats.ReusedTrials)
	}
	if on.Stats.ReusedTrials == 0 {
		t.Error("resume run reused no trials despite restarts")
	}
	if on.Stats.EstimatorTrials <= 0 || off.Stats.EstimatorTrials <= 0 {
		t.Fatalf("degenerate trial counts: on=%d off=%d", on.Stats.EstimatorTrials, off.Stats.EstimatorTrials)
	}
	ratio := float64(off.Stats.EstimatorTrials) / float64(on.Stats.EstimatorTrials)
	if ratio < 1.5 {
		t.Errorf("resume sampled %d trials vs %d from scratch (%.2f× saving), want ≥ 1.5×",
			on.Stats.EstimatorTrials, off.Stats.EstimatorTrials, ratio)
	}
	t.Logf("sampled trials: resume=%d scratch=%d (%.1f× fewer), reused=%d",
		on.Stats.EstimatorTrials, off.Stats.EstimatorTrials, ratio, on.Stats.ReusedTrials)
}

// TestEstimatorCacheRace hammers the cache with the access pattern
// runEstimates produces — concurrent stores from workers finishing jobs,
// interleaved with lookups — so the race detector can vet the locking.
func TestEstimatorCacheRace(t *testing.T) {
	c := NewCache(0)
	const goroutines, keys, rounds = 8, 16, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := contentKey{hi: uint64((g + i) % keys), lo: 99}
				total := int64(4096 * (1 + i%4))
				c.store(key, 4, 4096, total, total/3, int64(i%7), int64(i%7)*3, nil, 1)
				if st, ok := c.lookup(key, 4, 4096, total*2, 1); ok && !st.Valid() {
					t.Errorf("cache returned invalid state %+v", st)
				}
				// Mismatched clause counts, chunk sizes, and seeds must
				// never resolve (key-stability guards).
				if _, ok := c.lookup(key, 5, 4096, total, 1); ok {
					t.Error("lookup matched across clause-count mismatch")
				}
				if _, ok := c.lookup(key, 4, 2048, total, 1); ok {
					t.Error("lookup matched across chunk-size mismatch")
				}
				if _, ok := c.lookup(key, 4, 4096, total, 2); ok {
					t.Error("lookup matched across seed mismatch")
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() == 0 || c.len() > keys {
		t.Errorf("cache holds %d entries, want 1..%d", c.len(), keys)
	}
	if s := c.Stats(); s.Hits == 0 || s.Misses == 0 || s.Entries != c.len() {
		t.Errorf("implausible cache stats %+v", s)
	}
}

// TestCacheLRUEviction pins the size bound: a cache of N entries never
// holds more than N, evicts in least-recently-used order, and counts
// evictions. Eviction only costs reuse — a re-store after eviction works.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	k := func(i uint64) contentKey { return contentKey{hi: i, lo: i} }
	c.store(k(1), 4, 4096, 4096, 10, 0, 0, nil, 1)
	c.store(k(2), 4, 4096, 4096, 20, 0, 0, nil, 1)
	// Touch k(1) so k(2) is the LRU victim when k(3) arrives.
	if _, ok := c.lookup(k(1), 4, 4096, 4096, 1); !ok {
		t.Fatal("warm entry k(1) missing")
	}
	c.store(k(3), 4, 4096, 4096, 30, 0, 0, nil, 1)
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	if _, ok := c.lookup(k(2), 4, 4096, 4096, 1); ok {
		t.Error("LRU entry k(2) survived eviction")
	}
	for _, key := range []contentKey{k(1), k(3)} {
		if _, ok := c.lookup(key, 4, 4096, 4096, 1); !ok {
			t.Errorf("entry %v evicted out of LRU order", key)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	// Updating an existing key must not evict (no growth).
	c.store(k(1), 4, 4096, 8192, 40, 0, 0, nil, 1)
	if c.len() != 2 || c.Stats().Evictions != 1 {
		t.Errorf("in-place update changed size/evictions: len=%d stats=%+v", c.len(), c.Stats())
	}
	// A store under a new seed is a separate entry (mixed-seed clients of
	// one shared cache must not clobber each other); it competes for
	// space like any other, evicting the LRU entry k(3).
	c.store(k(1), 4, 4096, 4096, 7, 0, 0, nil, 2)
	if st, ok := c.lookup(k(1), 4, 4096, 4096, 2); !ok || st.Hits != 7 {
		t.Errorf("second-seed store not visible: %+v ok=%v", st, ok)
	}
	if st, ok := c.lookup(k(1), 4, 4096, 8192, 1); !ok || st.Hits != 40 {
		t.Errorf("first-seed counts clobbered by a second-seed store: %+v ok=%v", st, ok)
	}
	if c.len() != 2 || c.Stats().Evictions != 2 {
		t.Errorf("after mixed-seed store: len=%d stats=%+v, want 2 entries / 2 evictions", c.len(), c.Stats())
	}
}

// TestResumeStressRace runs the full engine with a worker complement and
// forced restarts so cache stores (from pool workers merging final
// chunks) and lookups (from the next restart's plan construction) overlap
// under the race detector.
func TestResumeStressRace(t *testing.T) {
	db := resumeDB(64, 32)
	eng := NewEngine(db, Options{
		Eps0: 0.05, Delta: 0.2, ConfEps: 0.2, ConfDelta: 0.2,
		Seed: 13, Workers: 8, MaxRounds: 64,
	})
	res, err := eng.EvalApprox(resumeQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Restarts == 0 {
		t.Error("stress run never restarted; cache reuse not exercised")
	}
}

// TestResumeCacheMonotone checks the stale-store guard: a smaller budget
// must not clobber a cached larger one.
func TestResumeCacheMonotone(t *testing.T) {
	c := NewCache(0)
	k := contentKey{hi: 11, lo: 13}
	c.store(k, 4, 4096, 8192, 100, 0, 0, nil, 1)
	c.store(k, 4, 4096, 4096, 40, 0, 0, nil, 1) // stale: must be dropped
	st, ok := c.lookup(k, 4, 4096, 8192, 1)
	if !ok || st.Trials != 8192 || st.Hits != 100 {
		t.Fatalf("stale store clobbered cache: got %+v ok=%v", st, ok)
	}
	// Prefix lookup at a doubled budget resumes the full-chunk prefix.
	st, ok = c.lookup(k, 4, 4096, 16384, 1)
	if !ok || st.Trials != 8192 || st.Chunks != 2 {
		t.Fatalf("prefix lookup: got %+v ok=%v, want 8192 trials over 2 chunks", st, ok)
	}
}

// TestResumeCacheUnalignedBudget pins the partial-chunk bookkeeping: an
// exact replay of an unaligned budget returns the full counts with the
// cursor at the full-chunk boundary; a prefix lookup at a larger budget
// excludes the partial counts when no mid-chunk PRNG was stored, and
// carries them (with the PRNG, for mid-chunk continuation) when one was.
func TestResumeCacheUnalignedBudget(t *testing.T) {
	c := NewCache(0)
	p := contentKey{hi: 1, lo: 2}
	q := contentKey{hi: 3, lo: 4}
	// 2 full chunks + a 1808-trial partial, no saved PRNG (replay-only tail).
	c.store(p, 4, 4096, 10000, 77, 5, 1808, nil, 1)
	st, ok := c.lookup(p, 4, 4096, 10000, 1)
	if !ok || st.Trials != 10000 || st.Hits != 77 || st.Chunks != 2 {
		t.Fatalf("exact replay: got %+v ok=%v, want 10000 trials / 77 hits / cursor 2", st, ok)
	}
	st, ok = c.lookup(p, 4, 4096, 20000, 1)
	if !ok || st.Trials != 8192 || st.Hits != 72 || st.Chunks != 2 || st.PartialRNG != nil {
		t.Fatalf("prefix resume: got %+v ok=%v, want 8192 trials / 72 hits / cursor 2, no tail", st, ok)
	}
	// Same shape with the partial chunk's PRNG saved: the larger budget
	// resumes the full counts and receives the tail for continuation.
	rng := rand.New(rand.NewSource(99))
	c.store(q, 4, 4096, 10000, 77, 5, 1808, rng, 1)
	st, ok = c.lookup(q, 4, 4096, 20000, 1)
	if !ok || st.Trials != 10000 || st.Hits != 77 || st.Chunks != 2 {
		t.Fatalf("mid-chunk resume: got %+v ok=%v, want full 10000 trials / 77 hits / cursor 2", st, ok)
	}
	if st.PartialTrials != 1808 || st.PartialHits != 5 || st.PartialRNG != rng {
		t.Fatalf("mid-chunk resume tail: got %+v, want 1808 trials / 5 hits / saved rng", st)
	}
	if !st.Valid() {
		t.Fatalf("mid-chunk resume state invalid: %+v", st)
	}
	// The tail is handed out with ownership (the scheduler advances the
	// PRNG in place): a second lookup degrades to the full-chunk prefix,
	// so an aborted batch can never leave stale counts paired with an
	// advanced PRNG in the cache.
	st, ok = c.lookup(q, 4, 4096, 20000, 1)
	if !ok || st.Trials != 8192 || st.Hits != 72 || st.PartialRNG != nil {
		t.Fatalf("post-handout lookup: got %+v ok=%v, want prefix-only 8192 trials / 72 hits", st, ok)
	}
	// Ownership transfers only on an accepted lookup that carries the
	// tail: refused lookups (wrong seed, clause count, or an overlapping
	// smaller budget) and exact replays must leave the tail in place for
	// the next larger budget.
	r := contentKey{hi: 5, lo: 6}
	rng2 := rand.New(rand.NewSource(7))
	c.store(r, 4, 4096, 10000, 77, 5, 1808, rng2, 1)
	if _, ok := c.lookup(r, 4, 4096, 20000, 99); ok {
		t.Fatal("seed-mismatch lookup resolved")
	}
	if _, ok := c.lookup(r, 4, 4096, 4096, 1); ok {
		t.Fatal("overlapping smaller-budget lookup resolved")
	}
	if st, ok := c.lookup(r, 4, 4096, 10000, 1); !ok || st.Trials != 10000 {
		t.Fatalf("exact replay after refusals: got %+v ok=%v", st, ok)
	}
	st, ok = c.lookup(r, 4, 4096, 20000, 1)
	if !ok || st.PartialRNG != rng2 || st.PartialTrials != 1808 {
		t.Fatalf("tail lost to a refused or replay lookup: got %+v ok=%v", st, ok)
	}
}

// BenchmarkConfDoublingResume measures the tentpole end to end: the same
// restart-heavy plan (near-threshold σ̂ + fixed-budget conf) with
// estimator resumption on and off. The reported sampled-trials/op metric
// is the paper-relevant cost driver — resume must sample ≥1.5× fewer
// trials (see TestResumeSavesTrials for the hard assertion); wall-clock
// follows it.
func BenchmarkConfDoublingResume(b *testing.B) {
	db := resumeDB(3, 2)
	q := resumeQuery()
	for _, mode := range []struct {
		name     string
		noResume bool
	}{{"resume", false}, {"scratch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := NewEngine(db, resumeOpts(7, 0, mode.noResume))
			b.ReportAllocs()
			var sampled, reused int64
			for i := 0; i < b.N; i++ {
				res, err := eng.EvalApprox(q)
				if err != nil {
					b.Fatal(err)
				}
				sampled += res.Stats.EstimatorTrials
				reused += res.Stats.ReusedTrials
			}
			b.ReportMetric(float64(sampled)/float64(b.N), "sampled-trials/op")
			b.ReportMetric(float64(reused)/float64(b.N), "reused-trials/op")
		})
	}
}
