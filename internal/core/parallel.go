package core

import (
	"math/rand"
	"sync"

	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/sched"
)

// minChunkTrials is the smallest trial chunk the scheduler hands a worker.
// Large enough to amortize per-chunk setup (one PRNG + one estimator
// shard), small enough that a single heavy tuple still splits into many
// chunks and saturates the pool.
const minChunkTrials = 4096

// chunkTrials returns the chunk size for a clause set of k clauses: a
// whole number of Figure-3 rounds (k trials each) totalling at least
// minChunkTrials trials. Round-aligned chunks keep the paper's
// per-round error bookkeeping intact, and the size depends only on k —
// never on the worker count — so the chunk plan (and therefore every
// chunk's PRNG stream) is identical no matter how many workers run it.
func chunkTrials(k int) int64 {
	rounds := (minChunkTrials + k - 1) / k
	return int64(rounds) * int64(k)
}

// estimateJob is one pending Karp–Luby estimation: a merge-target
// estimator, the deterministic per-task seed its chunk streams derive
// from, and the total trial budget to spend.
type estimateJob struct {
	est   *karpluby.Estimator
	seed  int64
	total int64
	mu    sync.Mutex
}

// newJob classifies one clause set as an exact confidence value (empty,
// tautological, or — when shortcutSingleton — single-clause lineage) or
// an estimation job with the trial budget given by trials(|F|). The job's
// seed is derived from Options.Seed and the caller's task key, so equal
// seeds give bit-identical estimates for any worker count.
func (run *evalRun) newJob(f dnf.F, key string, trials func(clauses int) int64, shortcutSingleton bool) (*confValue, *estimateJob, error) {
	f = f.Dedup()
	switch {
	case len(f) == 0:
		return &confValue{exact: true, value: 0}, nil, nil
	case len(f[0]) == 0:
		return &confValue{exact: true, value: 1}, nil, nil
	case len(f) == 1 && shortcutSingleton:
		return &confValue{exact: true, value: f[0].Weight(run.db.Vars)}, nil, nil
	}
	est, err := karpluby.NewEstimator(f, run.db.Vars, nil)
	if err != nil {
		return nil, nil, err
	}
	job := &estimateJob{
		est:   est,
		seed:  sched.TaskSeed(run.engine.opts.Seed, key),
		total: trials(est.ClauseCount()),
	}
	return &confValue{est: est}, job, nil
}

// runEstimates spends every job's trial budget across the engine's worker
// pool. All jobs' chunk plans are flattened into one task list, so the
// pool load-balances across tuples and within a single large tuple alike.
// Each chunk samples on a shard estimator whose PRNG stream is fixed by
// (job seed, chunk index); merged hit/trial counts are integer sums, hence
// independent of scheduling order and worker count.
func (run *evalRun) runEstimates(jobs []*estimateJob) {
	type chunkTask struct {
		job *estimateJob
		c   sched.Chunk
	}
	var tasks []chunkTask
	for _, j := range jobs {
		for _, c := range sched.Chunks(j.total, chunkTrials(j.est.ClauseCount())) {
			tasks = append(tasks, chunkTask{job: j, c: c})
		}
	}
	// fn never fails; ForEach's error is structurally nil.
	_ = run.engine.pool.ForEach(len(tasks), func(i int) error {
		t := tasks[i]
		sh := t.job.est.Shard(rand.New(rand.NewSource(sched.ChunkSeed(t.job.seed, t.c.Index))))
		sh.Add(int(t.c.N))
		t.job.mu.Lock()
		t.job.est.Merge(sh)
		t.job.mu.Unlock()
		return nil
	})
	for _, j := range jobs {
		run.trials += j.est.Trials()
	}
}
