package core

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/sched"
)

// minChunkTrials is the smallest trial chunk the scheduler hands a worker.
// Large enough to amortize per-chunk setup (one PRNG + one estimator
// shard), small enough that a single heavy tuple still splits into many
// chunks and saturates the pool.
const minChunkTrials = 4096

// chunkTrials returns the chunk size for a clause set of k clauses: a
// whole number of Figure-3 rounds (k trials each) totalling at least
// minChunkTrials trials. Round-aligned chunks keep the paper's
// per-round error bookkeeping intact, and the size depends only on k —
// never on the worker count — so the chunk plan (and therefore every
// chunk's PRNG stream) is identical no matter how many workers run it.
func chunkTrials(k int) int64 {
	rounds := (minChunkTrials + k - 1) / k
	return int64(rounds) * int64(k)
}

// estimateJob is one pending Karp–Luby estimation: a merge-target
// estimator, the deterministic per-task seed its chunk streams derive
// from (rooted in the task's lineage-content fingerprint), and the total
// trial budget to spend. When the run carries an estimator cache, the job
// may start from a resumed snapshot covering startChunk plan chunks
// (startTrials trials), so only the delta chunks are sampled.
type estimateJob struct {
	est       *karpluby.Estimator
	key       contentKey
	f         dnf.F // canonical clause set, shipped to shards in remote mode
	seed      int64
	total     int64
	chunkSize int64

	// Resumed-prefix coverage (zero when starting from scratch). When the
	// previous budget ended mid-chunk, startTrials includes the tail
	// counts below and the chunk at plan index startChunk is continued
	// from tailRNG instead of sampled from its seed.
	startChunk  int
	startTrials int64

	// Mid-chunk continuation of the previous budget's trailing partial
	// chunk (karpluby.State's Partial fields): counts already drawn from
	// chunk startChunk's stream, and the PRNG positioned right after
	// them.
	tailHits   int64
	tailTrials int64
	tailRNG    *rand.Rand

	mu sync.Mutex
	// partial* record the budget's trailing partial chunk (if any): its
	// counts and the PRNG that sampled it, which the cache carries to the
	// next run for mid-chunk continuation; see Cache.
	partialHits   int64
	partialTrials int64
	partialRNG    *rand.Rand
	// remaining counts unmerged chunks; the worker that merges the last
	// one publishes the job's state to the run's cache.
	remaining atomic.Int64
}

// newJob classifies one clause set as an exact confidence value (empty,
// tautological, or — when shortcutSingleton — single-clause lineage) or
// an estimation job with the trial budget given by trials(|F|). The clause
// set is canonicalized first (content order — see content.go) and the
// job's seed is derived from Options.Seed and the content fingerprint, so
// equal seeds give bit-identical estimates for any worker count, and
// content-equal tasks sample identical streams wherever they appear. When
// the run has an estimator cache (Options resume, the default), the job
// resumes from the snapshot left under the same content key — by an
// earlier restart, an earlier Eval call on a shared engine cache, or a
// different query over the same lineage.
//
// Within one batch (one conf or σ̂ operator), content-equal tasks share a
// single job: the second and later sightings return a confValue bound to
// the first job's estimator, so duplicated lineage is estimated once.
func (run *evalRun) newJob(f dnf.F, trials func(clauses int) int64, shortcutSingleton bool) (*confValue, *estimateJob, error) {
	f = f.Dedup()
	switch {
	case len(f) == 0:
		return &confValue{exact: true, value: 0}, nil, nil
	case len(f[0]) == 0:
		return &confValue{exact: true, value: 1}, nil, nil
	case len(f) == 1 && shortcutSingleton:
		return &confValue{exact: true, value: f[0].Weight(run.db.Vars)}, nil, nil
	}
	if run.fper == nil {
		run.fper = newFingerprinter(run.db.Vars)
	}
	f, key := run.fper.canonicalF(f)
	if shared, ok := run.batch[key]; ok {
		// Content-equal task already scheduled in this batch: share its
		// estimator (same canonical clause set, same budget function →
		// same total), estimate once.
		return &confValue{est: shared.est}, nil, nil
	}
	est, err := karpluby.NewEstimator(f, run.db.Vars, nil)
	if err != nil {
		return nil, nil, err
	}
	job := &estimateJob{
		est:       est,
		key:       key,
		f:         f,
		seed:      sched.TaskSeedWords(run.engine.opts.Seed, key.hi, key.lo),
		total:     trials(est.ClauseCount()),
		chunkSize: chunkTrials(est.ClauseCount()),
	}
	if run.cache != nil {
		if st, ok := run.cache.lookup(key, est.ClauseCount(), job.chunkSize, job.total, run.engine.opts.Seed); ok {
			if run.engine.dist != nil && st.PartialRNG != nil && st.Trials < job.total {
				// Remote mode cannot continue a mid-chunk PRNG tail across
				// the wire: drop the tail and let the shard re-sample that
				// chunk in full from its seed — still bit-identical, at one
				// chunk of extra sampling.
				st.Hits -= st.PartialHits
				st.Trials -= st.PartialTrials
				st.PartialHits, st.PartialTrials, st.PartialRNG = 0, 0, nil
			}
			if err := est.Resume(st); err == nil {
				run.cacheHits++
				job.startChunk = st.Chunks
				job.startTrials = st.Trials
				job.tailHits = st.PartialHits
				job.tailTrials = st.PartialTrials
				job.tailRNG = st.PartialRNG
				if st.Trials == job.total {
					// Exact replay: the snapshot already covers the whole
					// budget (including any trailing partial chunk), so no
					// plan chunk — not even the partial one past the
					// cursor — may run again.
					job.startChunk = sched.PlanChunks(job.total, job.chunkSize)
				}
			}
		}
	}
	if run.batch != nil {
		run.batch[key] = job
	}
	return &confValue{est: est}, job, nil
}

// runEstimates spends every job's remaining trial budget across the
// engine's worker pool. All jobs' delta-chunk plans are flattened into one
// task list, so the pool load-balances across tuples and within a single
// large tuple alike. Each chunk samples on a shard estimator whose PRNG
// stream is fixed by (job seed, chunk plan index); merged hit/trial counts
// are integer sums, hence independent of scheduling order and worker
// count — and, with resumption, of how the total budget was split across
// restarts.
//
// Cancelling the run's context aborts the batch between chunks and returns
// ctx.Err(). An aborted batch never publishes estimator snapshots for
// unfinished jobs (a job's state is stored only when its last chunk
// merges), so the cross-run cache only ever holds complete, valid
// snapshots. The same holds when the run's sampled-trials limit trips:
// the batch aborts with a *LimitError before the over-budget chunk
// samples.
func (run *evalRun) runEstimates(jobs []*estimateJob) error {
	if run.engine.dist != nil {
		return run.runEstimatesRemote(jobs)
	}
	defer func() { run.batch = nil }()
	type chunkTask struct {
		job *estimateJob
		c   sched.Chunk
	}
	var tasks []chunkTask
	for _, j := range jobs {
		chunks := sched.ChunksFrom(j.total, j.chunkSize, j.startChunk)
		j.remaining.Store(int64(len(chunks)))
		for _, c := range chunks {
			tasks = append(tasks, chunkTask{job: j, c: c})
		}
	}
	ctx := run.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// fn only fails on a tripped resource limit, so the possible errors are
	// *LimitError and ctx.Err().
	err := run.engine.pool.ForEachCtx(ctx, len(tasks), func(i int) error {
		t := tasks[i]
		j := t.job
		var (
			sh          *karpluby.Estimator
			rng         *rand.Rand
			chunkHits   int64
			chunkTrials int64
		)
		continued := j.tailRNG != nil && t.c.Index == j.startChunk
		draw := t.c.N
		if continued {
			draw -= j.tailTrials
		}
		if err := run.chargeTrials(draw); err != nil {
			return err
		}
		if continued {
			// Mid-chunk continuation: the previous budget already drew the
			// first tailTrials trials of this chunk's stream; continue the
			// saved PRNG for the remainder. The drawn sequence is
			// bit-identical to sampling the whole chunk from its seed, at
			// tailTrials fewer sampled trials (those counts arrived via
			// the resumed snapshot).
			sh = j.est.Shard(j.tailRNG)
			sh.Add(int(draw))
			rng = j.tailRNG
			chunkHits = j.tailHits + sh.Hits()
			chunkTrials = t.c.N
		} else {
			rng = rand.New(rand.NewSource(sched.ChunkSeed(j.seed, t.c.Index)))
			sh = j.est.Shard(rng)
			sh.Add(int(t.c.N))
			chunkHits = sh.Hits()
			chunkTrials = t.c.N
		}
		j.mu.Lock()
		j.est.Merge(sh)
		if t.c.N < j.chunkSize {
			// Only the plan's trailing chunk can be undersized; its counts
			// stay out of the next run's resumable prefix, but travel
			// with their PRNG so the next run can finish the chunk
			// mid-stream.
			j.partialHits = chunkHits
			j.partialTrials = chunkTrials
			j.partialRNG = rng
		}
		j.mu.Unlock()
		if j.remaining.Add(-1) == 0 {
			// Last chunk of this job: all merges happened-before this
			// atomic observation, so the totals are final. The cursor
			// marks the resumable boundary — full-size chunks only; a
			// trailing partial chunk's counts live in the partial fields
			// (see Cache) and stay outside it.
			j.est.AdvanceTo(sched.FullChunks(j.total, j.chunkSize))
			if run.cache != nil {
				run.cache.store(j.key, j.est.ClauseCount(), j.chunkSize,
					j.total, j.est.Hits(), j.partialHits, j.partialTrials, j.partialRNG,
					run.engine.opts.Seed)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, j := range jobs {
		run.trials += j.est.Trials() - j.startTrials
		run.reused += j.startTrials
	}
	return nil
}
