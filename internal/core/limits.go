package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/urel"
)

// LimitError reports that an evaluation exceeded one of its per-query
// resource limits (Options.MaxTrials / Options.MaxMemory). The evaluation
// is aborted cooperatively — between operators, and between estimation
// chunks inside the worker pool — so Used may exceed Limit by at most the
// granularity of one chunk or one operator's output range.
type LimitError struct {
	// Resource names the exhausted limit: "trials" or "memory".
	Resource string
	// Limit is the configured bound; Used is the consumption observed when
	// the limit tripped (trials sampled, or estimated bytes materialized).
	Limit int64
	Used  int64
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	switch e.Resource {
	case "trials":
		return fmt.Sprintf("core: sampled-trials limit exceeded: %d > %d", e.Used, e.Limit)
	case "memory":
		return fmt.Sprintf("core: memory limit exceeded: ~%d bytes materialized > %d", e.Used, e.Limit)
	default:
		return fmt.Sprintf("core: %s limit exceeded: %d > %d", e.Resource, e.Used, e.Limit)
	}
}

// evalLimits carries one evaluation's resource accounting across every pass
// of the doubling loop. The zero-limit fields disable their checks.
type evalLimits struct {
	maxTrials int64
	sampled   atomic.Int64
	mem       *urel.MemBudget
}

func newEvalLimits(opts Options) *evalLimits {
	if opts.MaxTrials <= 0 && opts.MaxMemory <= 0 {
		return nil
	}
	l := &evalLimits{maxTrials: opts.MaxTrials}
	if opts.MaxMemory > 0 {
		l.mem = urel.NewMemBudget(opts.MaxMemory)
	}
	return l
}

// chargeTrials reserves n sampled trials against the evaluation's budget,
// returning a *LimitError once the cumulative count (across all restarts)
// would exceed Options.MaxTrials. Called by pool workers immediately
// before sampling a chunk, so enforcement latency is bounded by the
// in-flight chunks of the other workers.
func (run *evalRun) chargeTrials(n int64) error {
	lim := run.limits
	if lim == nil || lim.maxTrials <= 0 {
		return nil
	}
	if used := lim.sampled.Add(n); used > lim.maxTrials {
		return &LimitError{Resource: "trials", Limit: lim.maxTrials, Used: used}
	}
	return nil
}

// memoryErr reports the evaluation's memory limit as a *LimitError once
// the running bytes estimate trips it; nil otherwise. Checked between
// operators (the partitioned operators additionally stop producing output
// mid-range once the budget trips — see urel.MemBudget).
func (run *evalRun) memoryErr() error {
	if run.limits == nil || run.limits.mem == nil || !run.limits.mem.Exceeded() {
		return nil
	}
	if run.spill != nil {
		// Out-of-core execution: the budget is a residency high-water mark,
		// never an abort — shedding happens inside the Exec.
		return nil
	}
	return &LimitError{
		Resource: "memory",
		Limit:    run.limits.mem.Limit(),
		Used:     run.limits.mem.Used(),
	}
}
