// Package core is the paper's primary contribution assembled into a usable
// engine: approximate evaluation of UA[conf, repair-key, σ̂] queries on
// U-relational databases with per-tuple error bounds.
//
// The engine evaluates positive relational algebra and repair-key exactly
// on the U-relational representation (they are cheap — Proposition 3.3),
// approximates confidence with the Karp–Luby FPRAS (Section 4), decides σ̂
// predicates with the margin machinery of Section 5, and accounts
// membership-error bounds through provenance per Lemma 6.4. The top-level
// EvalApprox implements Theorem 6.7's strategy: evaluate with a round
// budget l, record per-tuple error bounds, and double l until every
// non-singular output tuple's bound is below the target δ.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/urel"
)

// Options configures approximate evaluation.
type Options struct {
	// Eps0 is ε₀, the smallest relative half-width the predicate
	// approximation goes for; points closer than ε₀ to a decision
	// boundary are singularities (Definition 5.6). Required > 0.
	Eps0 float64
	// Delta is the target per-tuple error probability δ.
	Delta float64
	// InitialRounds is the starting l of the doubling loop (default 1).
	InitialRounds int64
	// MaxRounds caps l; 0 means the Theorem 6.7 bound l₀ derived from the
	// query and database (so termination is guaranteed in polynomial
	// time).
	MaxRounds int64
	// ConfEps/ConfDelta parameterize standalone conf_{ε,δ} operators
	// (Corollary 4.3). Zero values default to Eps0 and Delta.
	ConfEps   float64
	ConfDelta float64
	// Seed seeds the engine's deterministic random source. Every
	// estimation task derives its own PRNG streams from Seed plus a
	// stable task key, so equal seeds give bit-identical results for any
	// Workers value.
	Seed int64
	// Workers is the number of goroutines the engine fans Karp–Luby
	// estimation out across; 0 (the default) selects GOMAXPROCS. Results
	// are independent of the value — it only changes wall-clock time.
	Workers int
	// NoResume disables cross-restart estimator reuse. By default the
	// doubling loop of EvalApprox snapshots every Karp–Luby task's
	// (hits, trials, chunk-cursor) state and resumes it on the next
	// restart, sampling only the delta chunks of the enlarged budget:
	// the per-task seed scheme guarantees the first chunks of a doubled
	// budget reproduce the previous restart's trials exactly, so resumed
	// results are bit-identical to a from-scratch run at the final budget
	// (for any Workers value) while total sampled trials roughly halve.
	// Set NoResume to force every restart to sample from scratch
	// (ablation / paper-literal mode).
	NoResume bool
	// MaxTrials caps the number of Karp–Luby trials one evaluation may
	// sample, cumulatively across every pass of the doubling loop. The
	// check is cooperative (pool workers charge each chunk before
	// sampling it), so an evaluation overshoots by at most the in-flight
	// chunks. 0 disables the limit. Exceeding it aborts the evaluation
	// with a *LimitError; trials replayed from estimator snapshots are
	// free — they were paid for when first sampled.
	MaxTrials int64
	// MaxMemory caps the evaluation's estimated bytes materialized by the
	// exact-algebra operators (the same running estimate Stats.Ops
	// reports), cumulatively across passes. Enforcement is cooperative:
	// the partitioned blow-up operators stop producing mid-range once the
	// budget trips, and the evaluation aborts with a *LimitError at the
	// next operator boundary. 0 disables the limit.
	MaxMemory int64
	// SpillDir, when non-empty alongside MaxMemory, switches the memory
	// limit from a hard abort to out-of-core execution: intermediate
	// relations whose footprint pushes the running estimate over MaxMemory
	// are shed to temp files under SpillDir (a fresh pdb-spill-*
	// subdirectory, removed when the evaluation finishes) and transparently
	// reloaded when a later operator needs them. MaxMemory then acts as a
	// high-water mark for the live set — any single operator's working set
	// still peaks in memory — and the evaluation completes instead of
	// returning a memory *LimitError. Results are bit-identical to an
	// unspilled run. Ignored when MaxMemory is 0.
	SpillDir string
	// NoSingletonShortcut disables the optimization that treats
	// single-clause lineages as exact values (δᵢ = 0) in σ̂ decisions:
	// with it set, every σ̂ confidence goes through the Karp–Luby
	// estimator. Standalone conf operators always shortcut singletons
	// (the estimator would return the clause weight deterministically
	// anyway). Ablation knob for the benchmark suite.
	NoSingletonShortcut bool
	// Strata enables clause-stratified Karp–Luby estimation with at most
	// Strata weight bands per clause set (see karpluby.PlanStrata): conf
	// operators switch to the adaptive loop — Neyman allocation of
	// sampling waves across strata, empirical-Bernstein stopping, and a
	// factoring pre-pass that computes independent easy subformulas
	// exactly — and σ̂ operators Neyman-allocate each pass's round budget
	// across strata. 0 (the default) keeps the flat estimator. Results
	// remain bit-identical for any Workers value under one seed;
	// stratified estimates differ numerically from flat ones (different
	// trial streams) while carrying the same (ε,δ) target.
	Strata int
	// ConfThreshold, when in (0,1), lets conf operators stop sampling a
	// tuple as soon as its confidence interval clears the threshold from
	// either side (the tuple's P column then carries the cruder estimate
	// at that stopping point). It implies the stratified conf path even
	// when Strata is 0 (using a default band count). 0 disables.
	ConfThreshold float64
	// ConfTopK, when > 0, lets conf operators stop sampling a tuple as
	// soon as its membership in the top-K confidences is decided either
	// way (interval separation against the other tuples of the same
	// operator). Like ConfThreshold it implies the stratified conf path.
	// 0 disables.
	ConfTopK int
	// IndependentBounds combines per-decision error bounds with the
	// independence form 1 − Π(1−δᵢ) of Lemma 5.1 instead of the union
	// bound Σδᵢ. Valid because the estimators of one decision are
	// independently seeded runs; kept off by default to match the
	// algorithm as printed in Figure 3.
	IndependentBounds bool
	// Progress, when non-nil, is called synchronously after every pass of
	// the doubling loop with a snapshot of the evaluation's progress. The
	// hook must be fast and must not call back into the engine.
	Progress func(Progress)
}

// Progress is one observation of EvalApprox's doubling loop, delivered to
// Options.Progress after each pass (including the final one, flagged Done).
type Progress struct {
	// Restart is the number of restarts before this pass (0 = first pass).
	Restart int
	// Rounds is the round budget l the pass ran with.
	Rounds int64
	// MaxRounds is the cap on l (the Theorem 6.7 bound when Options left
	// it 0).
	MaxRounds int64
	// WorstBound is the largest non-singular per-tuple/per-decision error
	// bound after the pass — the value the loop compares against δ.
	WorstBound float64
	// SampledTrials and ReusedTrials are cumulative Karp–Luby trial counts
	// across all passes so far (see Stats).
	SampledTrials int64
	ReusedTrials  int64
	// Decisions is the number of σ̂ decisions taken in this pass.
	Decisions int
	// Done reports whether the loop terminates with this pass.
	Done bool
}

// Validate checks the option values an evaluation relies on, returning a
// descriptive error for out-of-range settings: ε₀ and δ must lie in (0,1),
// and round budgets/worker counts must not be negative.
func (o Options) Validate() error {
	if o.Eps0 <= 0 || o.Eps0 >= 1 {
		return fmt.Errorf("core: ε₀ must be in (0,1), got %v", o.Eps0)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("core: δ must be in (0,1), got %v", o.Delta)
	}
	if o.ConfEps < 0 || o.ConfEps >= 1 {
		return fmt.Errorf("core: conf ε must be in (0,1) (or 0 to inherit ε₀), got %v", o.ConfEps)
	}
	if o.ConfDelta < 0 || o.ConfDelta >= 1 {
		return fmt.Errorf("core: conf δ must be in (0,1) (or 0 to inherit δ), got %v", o.ConfDelta)
	}
	if o.InitialRounds < 0 {
		return fmt.Errorf("core: InitialRounds must not be negative, got %d", o.InitialRounds)
	}
	if o.MaxRounds < 0 {
		return fmt.Errorf("core: MaxRounds must not be negative, got %d", o.MaxRounds)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers must not be negative, got %d", o.Workers)
	}
	if o.MaxTrials < 0 {
		return fmt.Errorf("core: MaxTrials must not be negative, got %d", o.MaxTrials)
	}
	if o.MaxMemory < 0 {
		return fmt.Errorf("core: MaxMemory must not be negative, got %d", o.MaxMemory)
	}
	if o.Strata < 0 || o.Strata > 4096 {
		return fmt.Errorf("core: Strata must be in [0, 4096], got %d", o.Strata)
	}
	if o.ConfThreshold < 0 || o.ConfThreshold >= 1 {
		return fmt.Errorf("core: ConfThreshold must be in [0,1), got %v", o.ConfThreshold)
	}
	if o.ConfTopK < 0 {
		return fmt.Errorf("core: ConfTopK must not be negative, got %d", o.ConfTopK)
	}
	return nil
}

// defaultStrata is the band count used when a threshold/top-k option
// forces the stratified conf path but Options.Strata was left 0.
const defaultStrata = 4

// stratifiedConf reports whether conf operators take the stratified
// adaptive path.
func (o Options) stratifiedConf() bool {
	return o.Strata > 0 || o.ConfThreshold > 0 || o.ConfTopK > 0
}

// strataCount returns the effective band bound for stratification plans.
func (o Options) strataCount() int {
	if o.Strata > 0 {
		return o.Strata
	}
	return defaultStrata
}

func (o Options) confEps() float64 {
	if o.ConfEps > 0 {
		return o.ConfEps
	}
	return o.Eps0
}

func (o Options) confDelta() float64 {
	if o.ConfDelta > 0 {
		return o.ConfDelta
	}
	return o.Delta
}

// Stats reports work done by an approximate evaluation.
type Stats struct {
	// FinalRounds is the l at which the doubling loop stopped.
	FinalRounds int64
	// Restarts is the number of times evaluation was restarted with a
	// doubled l.
	Restarts int
	// EstimatorTrials is the total number of Karp–Luby trials actually
	// sampled across all restarts. With resume enabled (Options.NoResume
	// false) this excludes trials replayed from estimator snapshots.
	EstimatorTrials int64
	// ReusedTrials is the total number of trials whose counts were
	// carried over from estimator snapshots instead of being re-sampled —
	// snapshots of a previous restart of this evaluation, or, on an
	// engine with a shared cache, of any earlier evaluation that
	// estimated the same lineage content. Zero when Options.NoResume is
	// set (or when nothing was reusable).
	ReusedTrials int64
	// CacheHits is the number of estimation tasks that resumed from a
	// cached snapshot (each hit contributes its snapshot's trials to
	// ReusedTrials). With a shared engine cache this counts cross-query
	// reuse as well as cross-restart reuse.
	CacheHits int64
	// Decisions is the number of σ̂ predicate decisions taken in the
	// final evaluation.
	Decisions int
	// SingularDrops counts σ̂ decisions that came out negative while
	// flagged as potential ε₀-singularities: the dropped tuple's absence
	// is not covered by the δ guarantee.
	SingularDrops int
	// Strata is the total number of clause strata across the stratified
	// estimation tasks of the final pass (0 on the unstratified path).
	Strata int64
	// EarlyStops counts stratified estimation tasks of the final pass
	// that stopped before spending their trial cap — a threshold/top-k
	// decision settled, or the empirical-Bernstein bound converged below
	// δ ahead of the Chernoff budget.
	EarlyStops int64
	// ExactFactored counts independent lineage subformulas the factoring
	// pre-pass of the final pass computed exactly instead of sampling
	// (the distinction between sampled and exact-factored confidence
	// mass).
	ExactFactored int64
	// Ops aggregates per-operator work (tuple counts, estimated bytes
	// materialized) across every pass of the evaluation, including
	// restarted passes.
	Ops urel.StatsMap
	// SpilledBytes and SpillFiles report out-of-core activity
	// (Options.SpillDir): total bytes written to spill files and the number
	// of spill files created, across every pass. Zero without spilling.
	SpilledBytes int64
	SpillFiles   int
}

// Result is the outcome of an (approximate) query evaluation.
type Result struct {
	// Rel is the result as a U-relation (complete results have empty D
	// columns).
	Rel *urel.Relation
	// Complete reports c(result).
	Complete bool
	// Errors maps a data tuple's key (rel.Tuple.Key) to its
	// membership-error bound µ; missing keys mean 0. Bounds are clamped
	// to [0,1] for reporting.
	Errors provenance.ErrMap
	// Singular holds the keys of tuples whose σ̂ decisions hit the ε₀
	// floor: the point may be an ε₀-singularity and Theorem 6.7's
	// guarantee does not cover it.
	Singular map[string]bool
	// Stats reports evaluation effort.
	Stats Stats
}

// TupleError returns the clamped error bound of tuple t.
func (r *Result) TupleError(t rel.Tuple) float64 {
	return math.Min(1, r.Errors.Get(t.Key()))
}

// IsSingular reports whether t depends on a (potential) singularity.
func (r *Result) IsSingular(t rel.Tuple) bool { return r.Singular[t.Key()] }

// MaxNonSingularError returns the worst clamped bound over non-singular
// tuples.
func (r *Result) MaxNonSingularError() float64 {
	worst := 0.0
	for k, v := range r.Errors {
		if r.Singular[k] {
			continue
		}
		if v > worst {
			worst = v
		}
	}
	return math.Min(1, worst)
}

// Engine evaluates UA queries against a U-relational database.
type Engine struct {
	db   *urel.Database
	opts Options
	pool *sched.Pool
	// shared, when non-nil, is an estimator cache that outlives this
	// engine's evaluations (see SetCache).
	shared *Cache
	// dist, when non-nil, scatters estimation batches to remote shards
	// (see SetDistributor).
	dist Distributor
}

// NewEngine builds an engine over db. The database is cloned per
// evaluation, never mutated.
func NewEngine(db *urel.Database, opts Options) *Engine {
	return &Engine{db: db, opts: opts, pool: sched.New(opts.Workers)}
}

// SetCache attaches a long-lived estimator cache: EvalApprox resumes
// Karp–Luby state from it and publishes new state to it, so estimation
// work survives across Eval calls — and across engines sharing the cache —
// for any tasks with equal lineage content under one seed. The cache may
// be shared by concurrent evaluations. A nil cache (the default) restores
// the per-call cache that lives only for one doubling loop.
func (e *Engine) SetCache(c *Cache) { e.shared = c }

// DB returns the engine's database.
func (e *Engine) DB() *urel.Database { return e.db }

// EvalExact evaluates the query with exact confidence computation
// (delegating to the algebra package's U-relational evaluator). The
// evaluator runs its partitioned operators — and independent plan
// branches — across the engine's worker pool (Options.Workers); results
// are bit-identical for any worker count.
func (e *Engine) EvalExact(q algebra.Query) (algebra.URelResult, error) {
	return e.EvalExactContext(context.Background(), q)
}

// EvalExactContext is EvalExact with cooperative cancellation between plan
// operators. Options.MaxMemory bounds the evaluation's materialized bytes
// exactly like the approximate path (a trip aborts with a *LimitError —
// unless Options.SpillDir enables out-of-core execution, in which case
// over-budget intermediates spill to disk and the evaluation completes);
// Options.MaxTrials does not apply — exact evaluation samples nothing.
func (e *Engine) EvalExactContext(ctx context.Context, q algebra.Query) (algebra.URelResult, error) {
	mem := urel.NewMemBudget(e.opts.MaxMemory)
	ev := algebra.NewParallelURelEvaluator(e.db, e.pool).WithBudget(mem)
	spill, err := e.newSpill()
	if err != nil {
		return algebra.URelResult{}, err
	}
	if spill != nil {
		defer spill.Close()
		ev.WithSpill(spill)
	}
	res, err := ev.EvalContext(ctx, q)
	if err != nil {
		var me *urel.MemLimitError
		if errors.As(err, &me) {
			return res, &LimitError{Resource: "memory", Limit: me.Limit, Used: me.Used}
		}
	}
	return res, err
}

// newSpill creates the evaluation's spill manager when out-of-core
// execution is configured (Options.SpillDir set alongside a MaxMemory
// budget), nil otherwise.
func (e *Engine) newSpill() (*urel.Spill, error) {
	if e.opts.SpillDir == "" || e.opts.MaxMemory <= 0 {
		return nil, nil
	}
	return urel.NewSpill(e.opts.SpillDir)
}

// EvalApprox evaluates the query approximately per Theorem 6.7: it runs
// the plan with round budget l, doubling l until every non-singular output
// tuple's error bound is ≤ δ (or the round cap is reached).
func (e *Engine) EvalApprox(q algebra.Query) (*Result, error) {
	return e.EvalApproxContext(context.Background(), q)
}

// EvalApproxContext is EvalApprox with cooperative cancellation: the
// context is checked between operators of each pass and between estimation
// chunks inside the worker pool, so cancelling ctx aborts the evaluation
// within one chunk boundary and returns ctx.Err(). Cancellation never
// corrupts the cross-restart estimator cache — a task's snapshot is only
// published once every chunk of its budget has merged — so the engine (and
// its resume machinery) remains fully usable after an aborted call.
func (e *Engine) EvalApproxContext(ctx context.Context, q algebra.Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := algebra.Validate(q); err != nil {
		return nil, err
	}
	if err := e.opts.Validate(); err != nil {
		return nil, err
	}
	l := e.opts.InitialRounds
	if l <= 0 {
		l = 1
	}
	maxL := e.opts.MaxRounds
	if maxL <= 0 {
		maxL = e.theorem67Cap(q)
	}
	var trials, reused, cacheHits int64
	restarts := 0
	// The estimator cache persists across the loop's restarts: each
	// restart resumes the previous restart's per-task snapshots and
	// samples only the delta chunks of its enlarged budgets. With a
	// shared cache attached (SetCache), snapshots additionally persist
	// across Eval calls and across queries — task keys are
	// lineage-content fingerprints, meaningful wherever the same clause
	// set is estimated under the same seed.
	var cache *Cache
	if !e.opts.NoResume {
		if e.shared != nil {
			cache = e.shared
		} else {
			cache = NewCache(0)
		}
	}
	// Resource limits span all restarts too: trials and bytes accumulate
	// over the whole evaluation, not per pass.
	limits := newEvalLimits(e.opts)
	// So does the spill manager (Options.SpillDir): one directory serves
	// every pass, removed when the evaluation returns.
	spill, err := e.newSpill()
	if err != nil {
		return nil, err
	}
	if spill != nil {
		defer spill.Close()
	}
	// One operator-statistics collector spans all restarts, so Stats.Ops
	// reports the evaluation's total exact-algebra work.
	ctrs := urel.NewCounters()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run := &evalRun{engine: e, ctx: ctx, db: e.db.Clone(), rounds: l, cache: cache,
			limits: limits, spill: spill, exec: urel.NewExec(e.pool, ctrs)}
		if limits != nil {
			run.exec.WithBudget(limits.mem).WithSpill(spill)
		}
		res, err := run.eval(q)
		if err != nil {
			return nil, err
		}
		trials += run.trials
		reused += run.reused
		cacheHits += run.cacheHits
		// Termination criterion of Theorem 6.7: every non-singular
		// decision (positive or negative) and every non-singular result
		// tuple's accumulated bound must be ≤ δ. Singular tuples never
		// converge and are excluded (the theorem only covers tuples
		// without singularities in their provenance).
		worst := run.worstDecision
		for k, v := range res.errs {
			if res.singular[k] {
				continue
			}
			if v > worst {
				worst = v
			}
		}
		done := worst <= e.opts.Delta || l >= maxL
		if e.opts.Progress != nil {
			e.opts.Progress(Progress{
				Restart:       restarts,
				Rounds:        l,
				MaxRounds:     maxL,
				WorstBound:    worst,
				SampledTrials: trials,
				ReusedTrials:  reused,
				Decisions:     run.decisions,
				Done:          done,
			})
		}
		if done {
			stats := Stats{
				FinalRounds:     l,
				Restarts:        restarts,
				EstimatorTrials: trials,
				ReusedTrials:    reused,
				CacheHits:       cacheHits,
				Decisions:       run.decisions,
				SingularDrops:   run.singularDrops,
				Strata:          run.strata,
				EarlyStops:      run.earlyStops,
				ExactFactored:   run.exactFactored,
				Ops:             ctrs.Snapshot(),
			}
			if spill != nil {
				stats.SpilledBytes = spill.Bytes()
				stats.SpillFiles = spill.Files()
			}
			// The result relation may itself have been shed; callers read
			// it directly once the spill directory is gone.
			run.exec.Ensure(res.rel)
			if err := run.exec.Err(); err != nil {
				return nil, err
			}
			return finishResult(res, stats), nil
		}
		l *= 2
		if l > maxL {
			l = maxL
		}
		restarts++
	}
}

// theorem67Cap computes the l₀ of Theorem 6.7's proof from the query's
// σ̂ structure and the database size: l₀ ≥ 3·log(2·k·d·n^{k·d}/δ)/ε₀².
func (e *Engine) theorem67Cap(q algebra.Query) int64 {
	k, d := 1, 0
	algebra.Walk(q, func(n algebra.Query) {
		if as, ok := n.(algebra.ApproxSelect); ok {
			d++
			if len(as.Args) > k {
				k = len(as.Args)
			}
		}
	})
	if d == 0 {
		return 1
	}
	n := 1
	for _, r := range e.db.Rels {
		n += r.Len() * len(r.Schema())
	}
	cap66 := provenance.RoundsForProposition66(k, d, n, e.opts.Eps0, e.opts.Delta)
	if cap66 < 1 {
		return 1
	}
	return cap66
}

func finishResult(r *evalResult, stats Stats) *Result {
	clamped := provenance.ErrMap{}
	for k, v := range r.errs {
		clamped[k] = math.Min(1, v)
	}
	return &Result{
		Rel:      r.rel,
		Complete: r.complete,
		Errors:   clamped,
		Singular: r.singular,
		Stats:    stats,
	}
}

// evalRun is one pass of approximate evaluation at a fixed round budget.
type evalRun struct {
	engine *Engine
	// ctx is checked at every operator of the pass and between estimation
	// chunks (sched.Pool.ForEachCtx), bounding cancellation latency.
	ctx    context.Context
	db     *urel.Database
	rounds int64
	nextRK int
	// cache, when non-nil, resumes estimation tasks from snapshots stored
	// under the same lineage-content keys — by a previous restart of this
	// EvalApprox, or by any earlier evaluation when the engine carries a
	// shared cache (Options.NoResume disables it).
	cache *Cache
	// limits carries the evaluation's resource accounting (nil when no
	// limit is configured); see limits.go.
	limits *evalLimits
	// spill, when non-nil, is the evaluation's out-of-core manager
	// (Options.SpillDir): the memory budget sheds intermediates to it
	// instead of aborting.
	spill *urel.Spill
	// exec runs the exact-algebra operators of this pass across the
	// engine's worker pool, recording per-operator statistics.
	exec *urel.Exec
	// fper fingerprints lineage content against this pass's variable
	// table (lazily built — plan construction is sequential).
	fper *fingerprinter
	// batch dedups content-equal estimation tasks within one operator's
	// job batch; see newJob.
	batch map[contentKey]*estimateJob
	// sbatch is batch's counterpart for stratified jobs; see newStratJob.
	sbatch map[contentKey]*stratJob
	// trials counts trials sampled this pass; reused counts trials whose
	// integer sums were carried over from cache snapshots instead;
	// cacheHits counts tasks that resumed from a snapshot.
	trials    int64
	reused    int64
	cacheHits int64
	decisions int
	// strata / earlyStops / exactFactored feed the Stats fields of the
	// same names (final-pass values, like decisions); see stratified.go.
	strata        int64
	earlyStops    int64
	exactFactored int64
	// worstDecision is the largest non-singular per-decision error bound
	// seen, including negative decisions (whose tuples do not appear in
	// the result and so carry no entry in the error map). The doubling
	// loop must not terminate while any decision — positive or negative —
	// is still unreliable.
	worstDecision float64
	singularDrops int
}

// evalResult carries a relation plus its unreliability metadata.
type evalResult struct {
	rel      *urel.Relation
	complete bool
	errs     provenance.ErrMap
	singular map[string]bool
}

func reliableResult(r *urel.Relation, complete bool) *evalResult {
	return &evalResult{rel: r, complete: complete, errs: provenance.Reliable(), singular: map[string]bool{}}
}

// eval evaluates one plan node, bracketing it with the cooperative
// checks: cancellation before the node runs, and the memory limit after —
// a budget tripped mid-operator must surface before the parent operator
// consumes the (partial) output, so e.g. a conf over a tripped join never
// spends its estimation budget on a result that would be discarded.
func (run *evalRun) eval(q algebra.Query) (*evalResult, error) {
	if run.ctx != nil {
		if err := run.ctx.Err(); err != nil {
			return nil, err
		}
	}
	res, err := run.evalNode(q)
	if err != nil {
		return nil, err
	}
	if err := run.exec.Err(); err != nil {
		// A spill I/O failure means some operator saw incomplete inputs;
		// the pass is abandoned, never silently wrong.
		return nil, err
	}
	if err := run.memoryErr(); err != nil {
		return nil, err
	}
	return res, nil
}

func (run *evalRun) evalNode(q algebra.Query) (*evalResult, error) {
	switch n := q.(type) {
	case algebra.Base:
		r, ok := run.db.Rels[n.Name]
		if !ok {
			return nil, fmt.Errorf("core: unknown relation %q", n.Name)
		}
		return reliableResult(r, run.db.Complete[n.Name]), nil

	case algebra.Select:
		in, err := run.eval(n.In)
		if err != nil {
			return nil, err
		}
		out := run.exec.Select(in.rel, n.Pred)
		// (t, σ_φ(R)) ≺ (t, R): bounds carry over for surviving tuples.
		errs := provenance.Reliable()
		sing := map[string]bool{}
		for _, ut := range out.Tuples() {
			k := ut.Row.Key()
			if v := in.errs.Get(k); v > 0 {
				errs.Set(k, v)
			}
			if in.singular[k] {
				sing[k] = true
			}
		}
		return &evalResult{rel: out, complete: in.complete, errs: errs, singular: sing}, nil

	case algebra.Project:
		in, err := run.eval(n.In)
		if err != nil {
			return nil, err
		}
		out := run.exec.Project(in.rel, n.Targets)
		// (t.Ā, π_Ā(R)) ≺ (t, R): each output tuple accumulates the
		// bounds of every input tuple projecting onto it (Example 6.5's
		// fan-in sum). Distinct (D, row) pairs of the input can collapse
		// to one output pair; sum over distinct input data tuples.
		errs := provenance.Reliable()
		sing := map[string]bool{}
		seen := map[string]map[string]bool{}
		for _, ut := range in.rel.Tuples() {
			inKey := ut.Row.Key()
			outRow := projectRow(in.rel, ut.Row, n.Targets)
			outKey := outRow.Key()
			if seen[outKey] == nil {
				seen[outKey] = map[string]bool{}
			}
			if seen[outKey][inKey] {
				continue
			}
			seen[outKey][inKey] = true
			if v := in.errs.Get(inKey); v > 0 {
				errs.Add(outKey, v)
			}
			if in.singular[inKey] {
				sing[outKey] = true
			}
		}
		return &evalResult{rel: out, complete: in.complete, errs: errs, singular: sing}, nil

	case algebra.Product:
		l, err := run.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := run.eval(n.R)
		if err != nil {
			return nil, err
		}
		out, err := run.exec.Product(l.rel, r.rel)
		if err != nil {
			return nil, err
		}
		return combineBinary(out, l, r, func(row rel.Tuple) (rel.Tuple, rel.Tuple) {
			return row[:len(l.rel.Schema())], row[len(l.rel.Schema()):]
		}), nil

	case algebra.Join:
		l, err := run.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := run.eval(n.R)
		if err != nil {
			return nil, err
		}
		out := run.exec.Join(l.rel, r.rel)
		lSchema, rSchema := l.rel.Schema(), r.rel.Schema()
		outSchema := out.Schema()
		rIdx := make([]int, len(rSchema))
		for i, a := range rSchema {
			rIdx[i] = outSchema.Index(a)
		}
		return combineBinary(out, l, r, func(row rel.Tuple) (rel.Tuple, rel.Tuple) {
			lrow := row[:len(lSchema)]
			rrow := make(rel.Tuple, len(rSchema))
			for i, j := range rIdx {
				rrow[i] = row[j]
			}
			return lrow, rrow
		}), nil

	case algebra.Union:
		l, err := run.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := run.eval(n.R)
		if err != nil {
			return nil, err
		}
		out, err := run.exec.Union(l.rel, r.rel)
		if err != nil {
			return nil, err
		}
		errs := provenance.Reliable()
		sing := map[string]bool{}
		for _, ut := range out.Tuples() {
			k := ut.Row.Key()
			if v := l.errs.Get(k) + r.errs.Get(k); v > 0 {
				errs.Set(k, v)
			}
			if l.singular[k] || r.singular[k] {
				sing[k] = true
			}
		}
		return &evalResult{rel: out, complete: l.complete && r.complete, errs: errs, singular: sing}, nil

	case algebra.DiffC:
		l, err := run.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := run.eval(n.R)
		if err != nil {
			return nil, err
		}
		if !l.complete || !r.complete {
			return nil, fmt.Errorf("core: −c requires inputs complete by c")
		}
		out, err := run.exec.DiffComplete(l.rel, r.rel)
		if err != nil {
			return nil, err
		}
		// Difference is not in the positive fragment of Lemma 6.4; the
		// conservative bound adds the right side's worst tuple error for
		// each left tuple (a right tuple wrongly present/absent can flip
		// a left tuple's membership in the result).
		rWorst := r.errs.Max()
		errs := provenance.Reliable()
		sing := map[string]bool{}
		rSingular := len(r.singular) > 0
		for _, ut := range out.Tuples() {
			k := ut.Row.Key()
			if v := l.errs.Get(k) + rWorst; v > 0 {
				errs.Set(k, v)
			}
			if l.singular[k] || rSingular {
				sing[k] = true
			}
		}
		return &evalResult{rel: out, complete: true, errs: errs, singular: sing}, nil

	case algebra.RepairKey:
		in, err := run.eval(n.In)
		if err != nil {
			return nil, err
		}
		if !in.errs.IsReliable() {
			return nil, fmt.Errorf("core: repair-key over unreliable input is not supported (paper footnote 3)")
		}
		run.nextRK++
		rk, err := run.exec.RepairKey(in.rel, n.Key, n.Weight, run.db.Vars, "rk"+strconv.Itoa(run.nextRK))
		if err != nil {
			return nil, err
		}
		return reliableResult(rk, false), nil

	case algebra.Conf:
		in, err := run.eval(n.In)
		if err != nil {
			return nil, err
		}
		return run.approxConf(in, n.PCol())

	case algebra.Poss:
		in, err := run.eval(n.In)
		if err != nil {
			return nil, err
		}
		out := urel.FromComplete(run.exec.Poss(in.rel))
		return &evalResult{rel: out, complete: true, errs: in.errs.Clone(), singular: in.singular}, nil

	case algebra.Cert:
		in, err := run.eval(n.In)
		if err != nil {
			return nil, err
		}
		// cert is a conf = 1 test: a singularity for approximation
		// (Example 5.7). The engine computes it exactly.
		out := urel.FromComplete(run.exec.CertExact(in.rel, run.db.Vars))
		return &evalResult{rel: out, complete: true, errs: in.errs.Clone(), singular: in.singular}, nil

	case algebra.Let:
		def, err := run.eval(n.Def)
		if err != nil {
			return nil, err
		}
		oldRel, hadRel := run.db.Rels[n.Name]
		oldC := run.db.Complete[n.Name]
		run.db.Rels[n.Name] = def.rel
		run.db.Complete[n.Name] = def.complete
		// The binding's unreliability must flow to Base references; keep
		// it in a side table.
		if !def.errs.IsReliable() || len(def.singular) > 0 {
			return nil, fmt.Errorf("core: let-binding %q of an unreliable relation is not supported; apply σ̂ in the body", n.Name)
		}
		res, err := run.eval(n.In)
		if hadRel {
			run.db.Rels[n.Name] = oldRel
			run.db.Complete[n.Name] = oldC
		} else {
			delete(run.db.Rels, n.Name)
			delete(run.db.Complete, n.Name)
		}
		return res, err

	case algebra.ApproxSelect:
		in, err := run.eval(n.In)
		if err != nil {
			return nil, err
		}
		return run.approxSelect(in, n)

	default:
		return nil, fmt.Errorf("core: unknown query node %T", q)
	}
}

// projectRow applies projection targets to one row of r.
func projectRow(r *urel.Relation, row rel.Tuple, targets []expr.Target) rel.Tuple {
	env := expr.Env{Schema: r.Schema(), Tuple: row}
	out := make(rel.Tuple, len(targets))
	for i, tg := range targets {
		out[i] = tg.Expr.Eval(env)
	}
	return out
}

// combineBinary builds the error/singularity maps of a product or join
// result: µ(⟨r,s⟩) = µ(r) + µ(s), per the ≺ cases for ×.
func combineBinary(out *urel.Relation, l, r *evalResult, split func(rel.Tuple) (rel.Tuple, rel.Tuple)) *evalResult {
	errs := provenance.Reliable()
	sing := map[string]bool{}
	for _, ut := range out.Tuples() {
		lrow, rrow := split(ut.Row)
		k := ut.Row.Key()
		if v := l.errs.Get(lrow.Key()) + r.errs.Get(rrow.Key()); v > 0 {
			errs.Set(k, v)
		}
		if l.singular[lrow.Key()] || r.singular[rrow.Key()] {
			sing[k] = true
		}
	}
	return &evalResult{rel: out, complete: l.complete && r.complete, errs: errs, singular: sing}
}
