package core

import (
	"math"
	"sort"

	"repro/internal/dnf"
	"repro/internal/rel"
	"repro/internal/vars"
)

// Lineage-content task keys.
//
// Estimation tasks used to be keyed by evaluation order (operator index +
// lineage row key). Those keys are stable across the restarts of one
// doubling loop — the original cache contract — but meaningless outside it:
// a different query, or even the same query prepared twice, shares no keys,
// so no Karp–Luby state can survive an Eval call.
//
// A content key instead fingerprints what the estimator actually depends
// on: the clause set itself. Two tasks with the same canonical clause set
// have the same true confidence, the same clause count (hence chunk plan),
// the same total weight M, and — once the clause order is canonicalized and
// the PRNG streams are derived from the fingerprint — bit-identical
// estimates under one engine seed. That makes cached state reusable across
// restarts, across Eval calls, and across *different* queries that share
// lineage, with results indistinguishable from a cold run.
//
// Variable identity. Clause fingerprints cannot use raw variable ids:
// repair-key registers fresh variables per evaluation, so the same id can
// name different variables in different queries. Each variable is instead
// fingerprinted by its observable identity — registered name plus the
// probability vector. Names are deterministic per (database, program):
// base-table variables keep whatever the builder registered, and
// repair-key names embed the group's key values under an
// evaluation-order "rkN" prefix, so the repeated-query case always keys
// identically. Across *different* programs, sharing reaches as far as
// the names do: base-table lineage and repair-keys at the same plan
// position share; a repair-key at a different rkN position (or an
// Independent/row-indexed variable registered in a different order) gets
// a different name, which costs the reuse — a cache miss — but never
// correctness.
//
// Canonical clause order. The Karp–Luby estimator is order-sensitive
// (cumulative weights and the smallest-index rule), so content-equal tasks
// must feed the estimator the same clause order to sample identical
// streams. canonicalF sorts clauses by their (order-independent)
// fingerprints; binding order within a clause never matters because
// clause fingerprints combine bindings commutatively.

// contentKey is the 128-bit canonical fingerprint of a clause set — the
// estimator cache key and the root of the task's PRNG seed derivation.
type contentKey struct{ hi, lo uint64 }

// fingerprinter computes content fingerprints against one variable table,
// memoizing per-variable identity hashes. It is not safe for concurrent
// use; each evaluation pass owns one (plan construction is sequential).
type fingerprinter struct {
	table *vars.Table
	varFP map[vars.Var]uint64
}

func newFingerprinter(table *vars.Table) *fingerprinter {
	return &fingerprinter{table: table, varFP: make(map[vars.Var]uint64)}
}

// varID fingerprints one random variable by name and distribution.
func (fp *fingerprinter) varID(v vars.Var) uint64 {
	if id, ok := fp.varFP[v]; ok {
		return id
	}
	in := fp.table.Info(v)
	h := rel.HashString(rel.HashSeed, in.Name)
	for _, p := range in.Probs {
		h = rel.HashCombine(h, math.Float64bits(p))
	}
	fp.varFP[v] = h
	return h
}

// clauseFP fingerprints one clause. Bindings combine commutatively (summed
// mixes), so the fingerprint does not depend on variable-id order — which
// is not content-stable across queries when repair-key assigned the ids.
func (fp *fingerprinter) clauseFP(a vars.Assignment) uint64 {
	h := uint64(len(a))
	for _, b := range a {
		h += rel.Mix64(fp.varID(b.Var) ^ rel.Mix64(uint64(uint32(b.Alt))+0x9e3779b97f4a7c15))
	}
	return rel.Mix64(h)
}

// canonicalF sorts the (deduplicated) clause set into canonical content
// order and returns its 128-bit fingerprint. The sort key is each clause's
// content fingerprint, so content-equal sets arrive at the same order no
// matter how their clauses were enumerated; the fingerprint then folds the
// sorted clause hashes under two different seeds.
func (fp *fingerprinter) canonicalF(f dnf.F) (dnf.F, contentKey) {
	fps := make([]uint64, len(f))
	for i, a := range f {
		fps[i] = fp.clauseFP(a)
	}
	sort.Sort(&clausesByFP{f: f, fps: fps})
	hi := rel.HashCombine(rel.HashSeed, uint64(len(f)))
	lo := rel.HashCombine(rel.HashSeed, ^uint64(len(f)))
	for _, h := range fps {
		hi = rel.HashCombine(hi, h)
		lo = rel.HashCombine(lo, rel.Mix64(h))
	}
	return f, contentKey{hi: hi, lo: lo}
}

// clausesByFP sorts a clause set and its fingerprints in lock-step.
type clausesByFP struct {
	f   dnf.F
	fps []uint64
}

func (s *clausesByFP) Len() int           { return len(s.f) }
func (s *clausesByFP) Less(i, j int) bool { return s.fps[i] < s.fps[j] }
func (s *clausesByFP) Swap(i, j int) {
	s.f[i], s.f[j] = s.f[j], s.f[i]
	s.fps[i], s.fps[j] = s.fps[j], s.fps[i]
}
