package core

import (
	"context"

	"repro/internal/dnf"
	"repro/internal/sched"
	"repro/internal/vars"
)

// A Distributor executes estimation chunk batches remotely. It is the
// seam the cluster layer plugs into: when an engine carries one, every
// runEstimates / stratified-wave batch is handed to it as typed work
// units instead of the local worker pool, and the returned integer counts
// are absorbed into the same merge targets. Because a chunk's PRNG stream
// is fixed by (task seed, plan index) and merged counts are commutative
// integer sums, results are bit-identical to local execution for any
// placement of chunks onto shards — which also licenses implementations
// to re-place chunks mid-batch (failover to a surviving shard, hedged
// duplicates, coordinator-local fallback) without changing a bit, as
// long as each chunk's counts are merged exactly once.
//
// The contract per task: for every listed chunk, sample exactly Chunk.N
// trials from the stream seeded by sched.ChunkSeed(Seed, Chunk.Index)
// over the shipped clause set and variable table (probabilities bit-exact,
// clause order preserved), and return the summed counts. A task with
// MaxStrata > 0 is stratified: the executor re-derives the deterministic
// karpluby.PlanStrata partition and samples the Stratum-th band.
type Distributor interface {
	// SampleChunks executes every task and returns one RemoteCounts per
	// task, in task order. An error aborts the batch; implementations
	// must return typed, bounded-time errors (no hangs) and must not
	// return partial results.
	SampleChunks(ctx context.Context, tasks []RemoteTask) ([]RemoteCounts, error)
}

// RemoteTask is one typed unit of scatterable estimation work: a content
// identity, the deterministic seed its chunk streams derive from, and the
// plan chunks to sample.
type RemoteTask struct {
	// KeyHi/KeyLo are the task's lineage-content fingerprint — the same
	// 64-bit words that key the engine's estimator cache. Shards use them
	// as cache and placement keys.
	KeyHi, KeyLo uint64
	// Seed is the task seed chunk streams derive from. On the stratified
	// path it is already the stratum-resolved seed
	// (karpluby.StratumSeed(taskSeed, Stratum)).
	Seed int64
	// ChunkSize is the full plan chunk size (round-aligned; only a
	// trailing chunk may be smaller).
	ChunkSize int64
	// MaxStrata and Stratum select the stratified path: with MaxStrata
	// > 0 the executor rebuilds PlanStrata(Clauses, table, MaxStrata) and
	// samples stratum Stratum; with MaxStrata == 0 the flat estimator
	// samples the whole clause set.
	MaxStrata int
	Stratum   int
	// Clauses is the canonical (content-ordered, deduplicated) clause
	// set; Vars the variable table its bindings index into. Both must
	// cross the wire bit-exact for the determinism contract to hold.
	Clauses dnf.F
	Vars    *vars.Table
	// Chunks are the plan chunks to sample, by plan index.
	Chunks []sched.Chunk
}

// RemoteCounts is the merged result of one RemoteTask: plain integer sums
// that absorb exactly into the coordinator's estimator.
type RemoteCounts struct {
	// Hits and Trials sum over every assigned chunk (partial included).
	Hits, Trials int64
	// PartialHits/PartialTrials are the contribution of the trailing
	// undersized chunk, if one was assigned — the coordinator subtracts
	// them when publishing chunk-aligned cache snapshots.
	PartialHits, PartialTrials int64
	// ReusedTrials counts trials served from a shard-local chunk cache
	// instead of being sampled (a subset of Trials); the coordinator
	// reports them as reused, not sampled.
	ReusedTrials int64
}

// SetDistributor attaches a distributor: estimation batches scatter to it
// instead of running on the local pool. Exact algebra, planning, and
// result assembly stay local. A nil distributor (the default) restores
// single-process execution.
func (e *Engine) SetDistributor(d Distributor) { e.dist = d }
