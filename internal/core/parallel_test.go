package core

import (
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/karpluby"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/urel"
	"repro/internal/vars"
)

// clusterDB builds a database whose relation R(ID) has n tuples, each with
// a width-wide multi-clause lineage (clause j of tuple i asserts the j-th
// of the tuple's private variables is 0), so every tuple goes through the
// Karp–Luby estimator rather than a singleton shortcut.
func clusterDB(n, width int) *urel.Database {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i := 0; i < n; i++ {
		for j := 0; j < width; j++ {
			v := db.Vars.Add("v"+strconv.Itoa(i)+"_"+strconv.Itoa(j), []float64{0.3, 0.7}, nil)
			r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
		}
	}
	db.AddURelation("R", r, false)
	return db
}

// resultFingerprint captures every bit of an approximate result that the
// determinism contract covers: data rows with their exact float P values,
// error bounds, and singularity flags.
func resultFingerprint(t *testing.T, r *Result) []string {
	t.Helper()
	var out []string
	for _, ut := range r.Rel.Tuples() {
		line := ut.Row.Key()
		for _, v := range ut.Row {
			if v.IsNumeric() {
				// Exact bit pattern, not a rounded rendering.
				line += "|" + strconv.FormatFloat(v.AsFloat(), 'x', -1, 64)
			}
		}
		line += "|err=" + strconv.FormatFloat(r.Errors.Get(ut.Row.Key()), 'x', -1, 64)
		line += "|sing=" + strconv.FormatBool(r.Singular[ut.Row.Key()])
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

// Determinism contract: the same Options.Seed yields bit-identical results
// for every worker count, on both conf and σ̂ plans.
func TestWorkersBitIdentical(t *testing.T) {
	db := clusterDB(12, 4)
	queries := map[string]algebra.Query{
		"conf": algebra.Conf{In: algebra.Base{Name: "R"}},
		"shat": algebra.ApproxSelect{
			In:   algebra.Base{Name: "R"},
			Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
			Pred: predapprox.Linear([]float64{1}, 0.5),
		},
	}
	for name, q := range queries {
		var want []string
		for _, workers := range []int{1, 2, 8} {
			eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 42, Workers: workers})
			res, err := eng.EvalApprox(q)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			got := resultFingerprint(t, res)
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d tuples, want %d", name, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s workers=%d: tuple %d differs from workers=1:\n got %s\nwant %s",
						name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// The engine's Workers=1 path is the sequential reference: this pins the
// task-key and chunk-seed scheme by recomputing one tuple's estimate with
// the karpluby primitives directly and requiring exact agreement.
func TestSequentialChunkReferenceMatch(t *testing.T) {
	db := clusterDB(3, 5)
	const seed = 7
	eng := NewEngine(db, Options{Eps0: 0.1, Delta: 0.1, Seed: seed, Workers: 1})
	res, err := eng.EvalApprox(algebra.Conf{In: algebra.Base{Name: "R"}})
	if err != nil {
		t.Fatal(err)
	}

	fper := newFingerprinter(db.Vars)
	for _, tc := range urel.Lineage(db.Rels["R"]) {
		f, key := fper.canonicalF(tc.F.Dedup())
		est, err := karpluby.NewEstimator(f, db.Vars, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Reproduce the engine's derivation: canonical (content-ordered)
		// clause set, task seed from the content fingerprint,
		// round-aligned chunks of the FPRAS budget.
		taskSeed := sched.TaskSeedWords(seed, key.hi, key.lo)
		total := karpluby.TrialsFor(0.1, 0.1, est.ClauseCount())
		for _, c := range sched.Chunks(total, chunkTrials(est.ClauseCount())) {
			sh := est.Shard(rand.New(rand.NewSource(sched.ChunkSeed(taskSeed, c.Index))))
			sh.Add(int(c.N))
			est.Merge(sh)
		}
		want := est.Estimate()

		found := false
		pIdx := res.Rel.Schema().Index("P")
		for _, ut := range res.Rel.Tuples() {
			if ut.Row[0].Key() == tc.Row[0].Key() {
				found = true
				if got := ut.Row[pIdx].AsFloat(); got != want {
					t.Errorf("tuple %s: engine %v, reference %v", tc.Row.Key(), got, want)
				}
			}
		}
		if !found {
			t.Errorf("tuple %s missing from result", tc.Row.Key())
		}
	}
}

// Stress for the race detector: a 1k-tuple relation estimated with a full
// worker complement, conf and σ̂ back to back. Loose (ε,δ) keeps the trial
// counts small; the point is scheduler and merge contention, not accuracy.
func TestParallelStressRace(t *testing.T) {
	db := clusterDB(1000, 2)
	eng := NewEngine(db, Options{
		Eps0: 0.3, Delta: 0.3, ConfEps: 0.3, ConfDelta: 0.3,
		Seed: 11, Workers: 8,
		InitialRounds: 4, MaxRounds: 4,
	})
	res, err := eng.EvalApprox(algebra.Conf{In: algebra.Base{Name: "R"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 1000 {
		t.Fatalf("conf produced %d tuples, want 1000", res.Rel.Len())
	}
	sel, err := eng.EvalApprox(algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each tuple's confidence is 1−0.7² = 0.51; the threshold 0.5 is close
	// enough that membership may wobble, but the evaluation itself must be
	// race-free and produce some output with bounded errors.
	for _, ut := range sel.Rel.Tuples() {
		if e := sel.Errors.Get(ut.Row.Key()); e < 0 || e > 1 {
			t.Errorf("tuple %s has error bound %v outside [0,1]", ut.Row.Key(), e)
		}
	}
}
