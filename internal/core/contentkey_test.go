package core

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// TestCrossEvalCacheReuse is the engine-level acceptance contract of the
// content-keyed cache: with a shared cache attached, a repeated identical
// evaluation resumes its Karp–Luby state (ReusedTrials > 0, CacheHits > 0,
// the fixed-budget conf arm replays entirely) and its results are
// bit-identical to a cold run — for every worker count.
func TestCrossEvalCacheReuse(t *testing.T) {
	q := resumeQuery()
	var want []string
	for _, workers := range []int{1, 4, 8} {
		db := resumeDB(3, 2)
		cold := NewEngine(db, resumeOpts(101, workers, false))
		ref, err := cold.EvalApprox(q)
		if err != nil {
			t.Fatalf("workers=%d cold: %v", workers, err)
		}
		warmEng := NewEngine(db, resumeOpts(101, workers, false))
		warmEng.SetCache(NewCache(1024))
		first, err := warmEng.EvalApprox(q)
		if err != nil {
			t.Fatalf("workers=%d first: %v", workers, err)
		}
		second, err := warmEng.EvalApprox(q)
		if err != nil {
			t.Fatalf("workers=%d second: %v", workers, err)
		}
		if second.Stats.ReusedTrials <= first.Stats.ReusedTrials {
			t.Errorf("workers=%d: second eval reused %d trials, first %d — cross-eval reuse missing",
				workers, second.Stats.ReusedTrials, first.Stats.ReusedTrials)
		}
		if second.Stats.CacheHits == 0 {
			t.Errorf("workers=%d: second eval reports no cache hits", workers)
		}
		if second.Stats.EstimatorTrials >= first.Stats.EstimatorTrials {
			t.Errorf("workers=%d: second eval sampled %d trials, first %d — warm run should sample fewer",
				workers, second.Stats.EstimatorTrials, first.Stats.EstimatorTrials)
		}
		for name, res := range map[string]*Result{"cold-ref": ref, "warm-1st": first, "warm-2nd": second} {
			got := resultFingerprint(t, res)
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: %d tuples, want %d", workers, name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("workers=%d %s: tuple %d differs from reference:\n got %s\nwant %s",
						workers, name, i, got[i], want[i])
				}
			}
		}
	}
}

// shuffledCloneDB rebuilds resumeDB-style content with variables registered
// and tuples inserted in a different order, so raw variable ids and lineage
// enumeration order both differ while the lineage *content* (variable
// names, distributions, clause sets) is identical.
func shuffledCloneDB(nShat, nConf int) *urel.Database {
	db := urel.NewDatabase()
	// Register the S-variables first and iterate tuples backwards: every
	// vars.Var id differs from resumeDB's and every clause list is built
	// in reversed order.
	s := urel.NewRelation(rel.NewSchema("SID"))
	for i := nConf - 1; i >= 0; i-- {
		for j := 3; j >= 0; j-- {
			v := db.Vars.Add("s"+strconv.Itoa(i)+"_"+strconv.Itoa(j), []float64{0.3, 0.7}, nil)
			s.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
		}
	}
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i := nShat - 1; i >= 0; i-- {
		for j := 3; j >= 0; j-- {
			v := db.Vars.Add("r"+strconv.Itoa(i)+"_"+strconv.Itoa(j), []float64{0.3, 0.7}, nil)
			r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
		}
	}
	db.AddURelation("R", r, false)
	db.AddURelation("S", s, false)
	return db
}

// TestContentKeysSurviveReordering pins what makes the keys *content* keys:
// a database holding the same lineage content under different variable ids,
// clause orders, and tuple orders hits the same cache entries (content
// fingerprints canonicalize all three away) and produces bit-identical
// estimates.
func TestContentKeysSurviveReordering(t *testing.T) {
	q := resumeQuery()
	cache := NewCache(1024)

	eng1 := NewEngine(resumeDB(3, 2), resumeOpts(77, 2, false))
	eng1.SetCache(cache)
	res1, err := eng1.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}

	eng2 := NewEngine(shuffledCloneDB(3, 2), resumeOpts(77, 2, false))
	eng2.SetCache(cache)
	res2, err := eng2.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}

	if res2.Stats.CacheHits == 0 || res2.Stats.ReusedTrials == 0 {
		t.Errorf("reordered database missed the shared cache: hits=%d reused=%d",
			res2.Stats.CacheHits, res2.Stats.ReusedTrials)
	}
	got1, got2 := resultFingerprint(t, res1), resultFingerprint(t, res2)
	if len(got1) != len(got2) {
		t.Fatalf("result sizes differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Errorf("tuple %d differs across content-equal databases:\n got %s\nwant %s",
				i, got2[i], got1[i])
		}
	}
	// And independently of any cache: content-equal databases evaluated
	// cold must agree bit-for-bit, because the PRNG streams derive from
	// content fingerprints rather than variable ids.
	cold, err := NewEngine(shuffledCloneDB(3, 2), resumeOpts(77, 2, false)).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	gotCold := resultFingerprint(t, cold)
	for i := range got1 {
		if got1[i] != gotCold[i] {
			t.Errorf("cold tuple %d differs across content-equal databases:\n got %s\nwant %s",
				i, gotCold[i], got1[i])
		}
	}
}

// TestSeedIsolation: a shared cache must never leak counts between engine
// seeds — the streams differ, so reuse would break bit-identity with a
// cold run.
func TestSeedIsolation(t *testing.T) {
	q := resumeQuery()
	db := resumeDB(2, 1)
	cache := NewCache(1024)
	engA := NewEngine(db, resumeOpts(1, 1, false))
	engA.SetCache(cache)
	if _, err := engA.EvalApprox(q); err != nil {
		t.Fatal(err)
	}
	engB := NewEngine(db, resumeOpts(2, 1, false))
	engB.SetCache(cache)
	warm, err := engB.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEngine(db, resumeOpts(2, 1, false)).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	got, want := resultFingerprint(t, warm), resultFingerprint(t, cold)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tuple %d: seed-2 run over a seed-1 cache differs from a cold seed-2 run:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
}

// TestTrialsLimit pins the sampled-trials limit: a tight MaxTrials aborts
// the evaluation with a typed *LimitError naming the resource, and a
// generous one stays silent.
func TestTrialsLimit(t *testing.T) {
	db := resumeDB(3, 2)
	q := resumeQuery()
	opts := resumeOpts(7, 4, false)
	opts.MaxTrials = 1000
	_, err := NewEngine(db, opts).EvalApprox(q)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("EvalApprox error = %v, want *LimitError", err)
	}
	if le.Resource != "trials" || le.Limit != 1000 || le.Used <= le.Limit {
		t.Errorf("unexpected limit error %+v", le)
	}
	opts.MaxTrials = 1 << 40
	if _, err := NewEngine(db, opts).EvalApprox(q); err != nil {
		t.Errorf("generous trials limit still errored: %v", err)
	}
}

// TestMemoryLimit pins the memory limit on a product blow-up: the
// partitioned operator's running bytes estimate trips the budget and the
// evaluation aborts with a typed *LimitError.
func TestMemoryLimit(t *testing.T) {
	db := urel.NewDatabase()
	mk := func(name, col string, n int) {
		r := urel.NewRelation(rel.NewSchema(col))
		for i := 0; i < n; i++ {
			r.Add(nil, rel.Tuple{rel.Int(int64(i))})
		}
		db.AddURelation(name, r, true)
	}
	mk("L", "A", 300)
	mk("R", "B", 300)
	q := algebra.Product{L: algebra.Base{Name: "L"}, R: algebra.Base{Name: "R"}}
	opts := Options{Eps0: 0.05, Delta: 0.1, Seed: 1, MaxMemory: 64 << 10}
	_, err := NewEngine(db, opts).EvalApprox(q)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("EvalApprox error = %v, want *LimitError", err)
	}
	if le.Resource != "memory" || le.Limit != 64<<10 {
		t.Errorf("unexpected limit error %+v", le)
	}
	// The same product fits a generous budget (90k pairs ≈ a few MB).
	opts.MaxMemory = 1 << 30
	res, err := NewEngine(db, opts).EvalApprox(q)
	if err != nil {
		t.Fatalf("generous memory limit errored: %v", err)
	}
	if res.Rel.Len() != 300*300 {
		t.Errorf("product produced %d tuples, want %d", res.Rel.Len(), 300*300)
	}
}
