package core

import (
	"math"
	"testing"

	"repro/internal/dnf"
	"repro/internal/urel"
	"repro/internal/vars"
)

// partialFixture is a 2-clause set (chunk size 4096) so small budgets end
// in a trailing partial chunk.
func partialFixture() (*urel.Database, dnf.F) {
	db := urel.NewDatabase()
	x := db.Vars.Add("x", []float64{0.4, 0.6}, nil)
	y := db.Vars.Add("y", []float64{0.5, 0.5}, nil)
	f := dnf.F{
		vars.MustAssignment(vars.Binding{Var: x, Alt: 0}),
		vars.MustAssignment(vars.Binding{Var: y, Alt: 1}),
	}
	return db, f
}

// estimateOnce spends one job's budget through the run machinery and
// returns the run and the job's estimator value.
func estimateOnce(t *testing.T, eng *Engine, cache *Cache, budget int64) (*evalRun, float64, int64) {
	t.Helper()
	_, f := partialFixture()
	run := &evalRun{engine: eng, db: eng.db.Clone(), rounds: 1, cache: cache}
	cv, job, err := run.newJob(f, func(int) int64 { return budget }, false)
	if err != nil {
		t.Fatal(err)
	}
	if job == nil {
		t.Fatal("fixture unexpectedly classified as exact")
	}
	if err := run.runEstimates([]*estimateJob{job}); err != nil {
		t.Fatal(err)
	}
	if got := job.est.Trials(); got != budget {
		t.Fatalf("estimator covers %d trials, want %d", got, budget)
	}
	return run, cv.estimate(), job.est.Hits()
}

// TestPartialChunkReplay pins the mid-chunk resume contract: growing a
// budget that ended inside a chunk replays the trailing partial chunk from
// its snapshotted PRNG instead of re-sampling it, so a restart samples
// exactly the delta budget — while every estimate stays bit-identical to a
// from-scratch run at the full budget, for any worker count.
//
// The budgets are chosen against chunk size 4096 (2 clauses) to cover the
// three resume shapes: 1000 → partial chunk only (no full-chunk prefix —
// resumable at all only via the saved PRNG), 5000 → one full chunk plus a
// partial, 10000 → continuation across both.
func TestPartialChunkReplay(t *testing.T) {
	db, _ := partialFixture()
	budgets := []int64{1000, 5000, 10000}
	for _, workers := range []int{1, 4, 8} {
		// From-scratch reference estimates at every budget.
		scratch := make(map[int64]float64)
		for _, b := range budgets {
			eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 42, Workers: workers})
			_, est, _ := estimateOnce(t, eng, nil, b)
			scratch[b] = est
		}
		// One cache across the growing budgets: each step must sample
		// exactly the delta and reuse everything before it.
		eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 42, Workers: workers})
		cache := NewCache(0)
		var prev int64
		for _, b := range budgets {
			run, est, _ := estimateOnce(t, eng, cache, b)
			if math.Float64bits(est) != math.Float64bits(scratch[b]) {
				t.Errorf("workers=%d budget=%d: resumed estimate %v != scratch %v",
					workers, b, est, scratch[b])
			}
			if wantSampled := b - prev; run.trials != wantSampled {
				t.Errorf("workers=%d budget=%d: sampled %d trials, want exactly the delta %d (reused=%d)",
					workers, b, run.trials, wantSampled, run.reused)
			}
			if run.reused != prev {
				t.Errorf("workers=%d budget=%d: reused %d trials, want %d", workers, b, run.reused, prev)
			}
			prev = b
		}
	}
}

// TestPartialChunkReplayMatchesWorkers cross-checks that the mid-chunk
// continuation path yields the same hit counts no matter which worker
// complement executed the earlier budgets.
func TestPartialChunkReplayMatchesWorkers(t *testing.T) {
	db, _ := partialFixture()
	var wantHits int64 = -1
	for _, workers := range []int{1, 4, 8} {
		eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 7, Workers: workers})
		cache := NewCache(0)
		estimateOnce(t, eng, cache, 3000)
		_, _, hits := estimateOnce(t, eng, cache, 9000)
		if wantHits < 0 {
			wantHits = hits
			continue
		}
		if hits != wantHits {
			t.Errorf("workers=%d: %d hits after resume, want %d", workers, hits, wantHits)
		}
	}
}
