package core

import (
	"context"
	"fmt"

	"repro/internal/sched"
)

// Remote execution: when the engine carries a Distributor, estimation
// batches are shipped to shard processes instead of the local pool. The
// coordinator keeps everything else — exact algebra, factoring, chunk
// planning, wave allocation, stopping decisions, cache publication — so a
// remote run takes exactly the trajectory a local run would, absorbing
// the same integer counts from the wire that local workers would have
// merged from shard estimators.

// runEstimatesRemote is runEstimates for a distributed engine: one
// RemoteTask per job carrying its delta chunks, one round trip, absorb,
// publish. The whole batch's assigned trials are charged against the
// trial limit before dispatch (conservatively including any trials a
// shard may end up serving from its local chunk cache).
func (run *evalRun) runEstimatesRemote(jobs []*estimateJob) error {
	defer func() { run.batch = nil }()
	ctx := run.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var tasks []RemoteTask
	var active []*estimateJob
	var assigned []int64
	for _, j := range jobs {
		chunks := sched.ChunksFrom(j.total, j.chunkSize, j.startChunk)
		if len(chunks) == 0 {
			continue
		}
		var n int64
		for _, c := range chunks {
			n += c.N
		}
		tasks = append(tasks, RemoteTask{
			KeyHi: j.key.hi, KeyLo: j.key.lo,
			Seed:      j.seed,
			ChunkSize: j.chunkSize,
			Clauses:   j.f,
			Vars:      run.db.Vars,
			Chunks:    chunks,
		})
		active = append(active, j)
		assigned = append(assigned, n)
	}
	if len(tasks) > 0 {
		var total int64
		for _, n := range assigned {
			total += n
		}
		if err := run.chargeTrials(total); err != nil {
			return err
		}
		counts, err := run.engine.dist.SampleChunks(ctx, tasks)
		if err != nil {
			return err
		}
		if len(counts) != len(tasks) {
			return fmt.Errorf("core: distributor returned %d results for %d tasks", len(counts), len(tasks))
		}
		for i, j := range active {
			rc := counts[i]
			if rc.Trials != assigned[i] {
				return fmt.Errorf("core: distributor returned %d trials for a task assigned %d", rc.Trials, assigned[i])
			}
			j.est.Absorb(rc.Hits, rc.Trials)
			j.est.AdvanceTo(sched.FullChunks(j.total, j.chunkSize))
			// Shard-cache-served trials count as reused, not sampled; the
			// generic accounting below adds the full delta to run.trials,
			// so shift the reused share over here.
			run.trials -= rc.ReusedTrials
			run.reused += rc.ReusedTrials
			if run.cache != nil {
				// No PRNG tail crosses the wire: the snapshot's trailing
				// partial counts are replay-only (an exact replay returns
				// them; a larger budget re-samples that chunk from its
				// seed — still bit-identical).
				run.cache.store(j.key, j.est.ClauseCount(), j.chunkSize,
					j.total, j.est.Hits(), rc.PartialHits, rc.PartialTrials, nil,
					run.engine.opts.Seed)
			}
		}
	}
	for _, j := range jobs {
		run.trials += j.est.Trials() - j.startTrials
		run.reused += j.startTrials
	}
	return nil
}

// remoteStratWave executes one stratified wave remotely: the wave's
// (job, stratum, chunk) tasks are grouped into one RemoteTask per
// (job, stratum) and scattered; the returned counts absorb into the
// stratum merge targets exactly as local shard estimators would.
func (run *evalRun) remoteStratWave(ctx context.Context, tasks []stratTask) error {
	type group struct {
		j *stratJob
		s int
	}
	var order []group
	chunks := map[group][]sched.Chunk{}
	var total int64
	for _, t := range tasks {
		g := group{t.j, t.s}
		if _, ok := chunks[g]; !ok {
			order = append(order, g)
		}
		chunks[g] = append(chunks[g], sched.Chunk{Index: t.chunk, N: t.n})
		total += t.n
	}
	if err := run.chargeTrials(total); err != nil {
		return err
	}
	rts := make([]RemoteTask, len(order))
	for i, g := range order {
		rts[i] = RemoteTask{
			KeyHi: g.j.key.hi, KeyLo: g.j.key.lo,
			Seed:      g.j.seeds[g.s],
			ChunkSize: g.j.sizes[g.s],
			MaxStrata: g.j.maxStrata,
			Stratum:   g.s,
			Clauses:   g.j.f,
			Vars:      run.db.Vars,
			Chunks:    chunks[g],
		}
	}
	counts, err := run.engine.dist.SampleChunks(ctx, rts)
	if err != nil {
		return err
	}
	if len(counts) != len(rts) {
		return fmt.Errorf("core: distributor returned %d results for %d tasks", len(counts), len(rts))
	}
	for i, g := range order {
		rc := counts[i]
		var want int64
		for _, c := range chunks[g] {
			want += c.N
		}
		if rc.Trials != want {
			return fmt.Errorf("core: distributor returned %d trials for a stratum wave assigned %d", rc.Trials, want)
		}
		g.j.est.AbsorbStratum(g.s, rc.Hits, rc.Trials)
		g.j.partialHits[g.s] += rc.PartialHits
		g.j.partialTrials[g.s] += rc.PartialTrials
		// As on the flat path: the final accounting adds the full trial
		// delta, so move the shard-cache-reused share to reused here.
		run.trials -= rc.ReusedTrials
		run.reused += rc.ReusedTrials
	}
	return nil
}
