package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// coinDB is the Example 2.2 database.
func coinDB() *urel.Database {
	db := urel.NewDatabase()
	db.AddComplete("Coins", rel.FromRows(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(2)},
		rel.Tuple{rel.String("2headed"), rel.Int(1)},
	))
	db.AddComplete("Faces", rel.FromRows(rel.NewSchema("CoinType", "Face", "FProb"),
		rel.Tuple{rel.String("fair"), rel.String("H"), rel.Float(0.5)},
		rel.Tuple{rel.String("fair"), rel.String("T"), rel.Float(0.5)},
		rel.Tuple{rel.String("2headed"), rel.String("H"), rel.Float(1)},
	))
	db.AddComplete("Tosses", rel.FromRows(rel.NewSchema("Toss"),
		rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)},
	))
	return db
}

// coinT builds the query T of Example 2.2 with Let bindings.
func coinT() algebra.Query {
	rDef := algebra.Project{
		In:      algebra.RepairKey{In: algebra.Base{Name: "Coins"}, Weight: "Count"},
		Targets: []expr.Target{expr.Keep("CoinType")},
	}
	sDef := algebra.Project{
		In: algebra.RepairKey{
			In:     algebra.Product{L: algebra.Base{Name: "Faces"}, R: algebra.Base{Name: "Tosses"}},
			Key:    []string{"CoinType", "Toss"},
			Weight: "FProb",
		},
		Targets: []expr.Target{expr.Keep("CoinType"), expr.Keep("Toss"), expr.Keep("Face")},
	}
	headsAt := func(toss int64) algebra.Query {
		return algebra.Project{
			In: algebra.Select{
				In: algebra.Base{Name: "S"},
				Pred: expr.AndOf(
					expr.Eq(expr.A("Toss"), expr.CInt(toss)),
					expr.Eq(expr.A("Face"), expr.CStr("H")),
				),
			},
			Targets: []expr.Target{expr.Keep("CoinType")},
		}
	}
	tDef := algebra.Join{
		L: algebra.Join{L: algebra.Base{Name: "R"}, R: headsAt(1)},
		R: headsAt(2),
	}
	return algebra.Let{Name: "R", Def: rDef,
		In: algebra.Let{Name: "S", Def: sDef, In: tDef}}
}

func TestEvalExactDelegates(t *testing.T) {
	eng := NewEngine(coinDB(), Options{Eps0: 0.05, Delta: 0.1})
	res, err := eng.EvalExact(algebra.Conf{In: coinT()})
	if err != nil {
		t.Fatal(err)
	}
	p := urel.Poss(res.Rel)
	for _, tp := range p.Tuples() {
		ct := p.Value(tp, "CoinType").AsString()
		want := 1.0 / 6
		if ct == "2headed" {
			want = 1.0 / 3
		}
		if got := p.Value(tp, "P").AsFloat(); math.Abs(got-want) > 1e-9 {
			t.Errorf("conf(T)[%s] = %v, want %v", ct, got, want)
		}
	}
}

// Approximate conf on the coin example: the posterior computed from
// estimated confidences is within the FPRAS tolerance of 1/3 and 2/3.
func TestApproxConfCoinPosterior(t *testing.T) {
	eng := NewEngine(coinDB(), Options{Eps0: 0.05, Delta: 0.05, ConfEps: 0.02, ConfDelta: 0.01, Seed: 7})
	u := algebra.Project{
		In: algebra.Product{
			L: algebra.Conf{In: coinT(), As: "P1"},
			R: algebra.Conf{In: algebra.Project{In: coinT(), Targets: nil}, As: "P2"},
		},
		Targets: []expr.Target{
			expr.Keep("CoinType"),
			expr.As("P", expr.Div(expr.A("P1"), expr.A("P2"))),
		},
	}
	res, err := eng.EvalApprox(u)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Error("U should be complete")
	}
	p := urel.Poss(res.Rel)
	if p.Len() != 2 {
		t.Fatalf("U has %d tuples, want 2:\n%s", p.Len(), p)
	}
	for _, tp := range p.Tuples() {
		ct := p.Value(tp, "CoinType").AsString()
		want := 1.0 / 3
		if ct == "2headed" {
			want = 2.0 / 3
		}
		got := p.Value(tp, "P").AsFloat()
		// Two ε=2% estimates composed: allow ~3x tolerance.
		if math.Abs(got-want) > 0.06*want {
			t.Errorf("posterior[%s] = %v, want ≈%v", ct, got, want)
		}
	}
}

// sensorDB builds a tuple-independent relation R(ID) where tuple i has
// confidence pi, via one repair-key per tuple on an auxiliary relation.
func sensorDB(probs []float64) (*urel.Database, *urel.Relation) {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i, p := range probs {
		v := db.Vars.Add("t"+strconv.Itoa(i), []float64{p, 1 - p}, []string{"in", "out"})
		r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
	}
	db.AddURelation("R", r, false)
	return db, r
}

// Theorem 6.7 / σ̂: across repeated approximate evaluations, membership
// decisions for non-singular tuples are wrong at most a δ fraction of the
// time, and reported bounds are ≤ δ.
func TestApproxSelectErrorRate(t *testing.T) {
	// Confidences comfortably away from the threshold 0.5, plus shared
	// variables to make lineages multi-clause (so real estimation runs).
	db := urel.NewDatabase()
	x := db.Vars.Add("x", []float64{0.6, 0.4}, nil)
	y := db.Vars.Add("y", []float64{0.7, 0.3}, nil)
	z := db.Vars.Add("z", []float64{0.25, 0.75}, nil)
	r := urel.NewRelation(rel.NewSchema("ID"))
	// Tuple 0: x=0 ∨ y=0 → p = 1−0.4·0.3 = 0.88 (above 0.5).
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(0)})
	r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(0)})
	// Tuple 1: z=0 ∧ x=0, or z=0 ∧ y=0 → p = 0.25·(1−0.4·0.3) = 0.22.
	r.Add(vars.MustAssignment(vars.Binding{Var: z, Alt: 0}, vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(1)})
	r.Add(vars.MustAssignment(vars.Binding{Var: z, Alt: 0}, vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(1)})
	db.AddURelation("R", r, false)

	q := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
	// Exact answer: only tuple 0 qualifies.
	const delta = 0.1
	wrong, runs := 0, 60
	for i := 0; i < runs; i++ {
		eng := NewEngine(db, Options{Eps0: 0.05, Delta: delta, Seed: int64(i)})
		res, err := eng.EvalApprox(q)
		if err != nil {
			t.Fatal(err)
		}
		poss := urel.Poss(res.Rel)
		ok := poss.Len() == 1 && rel.Equal(poss.Tuples()[0][0], rel.Int(0))
		if !ok {
			wrong++
		}
		if b := res.MaxNonSingularError(); b > delta+1e-9 {
			t.Errorf("run %d: reported bound %v > δ", i, b)
		}
		if res.Stats.FinalRounds <= 0 || res.Stats.Decisions != 2 {
			t.Errorf("run %d: odd stats %+v", i, res.Stats)
		}
	}
	if frac := float64(wrong) / float64(runs); frac > delta {
		t.Errorf("σ̂ error rate %v exceeds δ=%v", frac, delta)
	}
}

// A predicate boundary exactly at a tuple's true confidence is flagged as
// singular rather than silently decided.
func TestApproxSelectSingularFlagged(t *testing.T) {
	db := urel.NewDatabase()
	x := db.Vars.Add("x", []float64{0.5, 0.5}, nil)
	y := db.Vars.Add("y", []float64{0.5, 0.5}, nil)
	r := urel.NewRelation(rel.NewSchema("ID"))
	// p(0) = 1 − 0.25 = 0.75: exactly on the threshold below.
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(0)})
	r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(0)})
	db.AddURelation("R", r, false)

	q := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.75),
	}
	flagged := 0
	for i := 0; i < 10; i++ {
		eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: int64(100 + i)})
		res, err := eng.EvalApprox(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Singular) > 0 || res.Stats.SingularDrops > 0 {
			flagged++
		}
	}
	if flagged < 8 {
		t.Errorf("singular boundary flagged in only %d/10 runs", flagged)
	}
}

// Example 6.5 fan-in: projecting n unreliable tuples onto one value sums
// their error bounds.
func TestProjectionFanInErrors(t *testing.T) {
	const n = 5
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.9
	}
	db, _ := sensorDB(probs)
	// σ̂ keeps every tuple (threshold 0.5 ≪ 0.9), then project all IDs to
	// a single constant column.
	q := algebra.Project{
		In: algebra.ApproxSelect{
			In:   algebra.Base{Name: "R"},
			Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
			Pred: predapprox.Linear([]float64{1}, 0.5),
		},
		Targets: []expr.Target{expr.As("C", expr.CInt(1))},
	}
	eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 5})
	res, err := eng.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	poss := urel.Poss(res.Rel)
	if poss.Len() != 1 {
		t.Fatalf("projection result = %d tuples", poss.Len())
	}
	// Singleton-lineage tuples are exact (δᵢ=0), so per-tuple σ̂ errors
	// are 0 here and the fan-in sum is 0 — the bound must still be ≤ δ
	// and the evaluation must not have flagged singularities.
	if res.MaxNonSingularError() > 0.1 {
		t.Errorf("fan-in bound %v > δ", res.MaxNonSingularError())
	}
	if len(res.Singular) != 0 {
		t.Errorf("unexpected singular flags: %v", res.Singular)
	}
}

// The fan-in sum with genuinely noisy tuples: per-tuple bounds add up
// across a projection.
func TestProjectionFanInSumsBounds(t *testing.T) {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i := 0; i < 4; i++ {
		x := db.Vars.Add("x"+strconv.Itoa(i), []float64{0.8, 0.2}, nil)
		y := db.Vars.Add("y"+strconv.Itoa(i), []float64{0.8, 0.2}, nil)
		// Two clauses: p = 1 − 0.2·0.2 = 0.96.
		r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
		r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
	}
	db.AddURelation("R", r, false)
	sel := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
	proj := algebra.Project{In: sel, Targets: []expr.Target{expr.As("C", expr.CInt(1))}}

	eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.2, Seed: 11, InitialRounds: 64, MaxRounds: 64})
	selRes, err := eng.EvalApprox(sel)
	if err != nil {
		t.Fatal(err)
	}
	perTuple := selRes.Errors
	eng2 := NewEngine(db, Options{Eps0: 0.05, Delta: 0.2, Seed: 11, InitialRounds: 64, MaxRounds: 64})
	projRes, err := eng2.EvalApprox(proj)
	if err != nil {
		t.Fatal(err)
	}
	if urel.Poss(projRes.Rel).Len() != 1 {
		t.Fatal("expected single projected tuple")
	}
	var projErr float64
	for _, v := range projRes.Errors {
		projErr = v
	}
	sum := 0.0
	for _, v := range perTuple {
		sum += v
	}
	if sum == 0 {
		t.Fatal("expected nonzero per-tuple bounds (multi-clause lineage)")
	}
	// Same seed/rounds → same estimates; the projected bound is the sum.
	if math.Abs(projErr-sum) > 1e-9 {
		t.Errorf("fan-in bound %v != sum of per-tuple bounds %v", projErr, sum)
	}
}

func TestDoublingLoopRestartsOnTightMargin(t *testing.T) {
	db := urel.NewDatabase()
	x := db.Vars.Add("x", []float64{0.5, 0.5}, nil)
	y := db.Vars.Add("y", []float64{0.5, 0.5}, nil)
	r := urel.NewRelation(rel.NewSchema("ID"))
	// p = 0.75; threshold 0.7 → margin ~0.07: needs many rounds.
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(0)})
	r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(0)})
	db.AddURelation("R", r, false)
	q := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.7),
	}
	eng := NewEngine(db, Options{Eps0: 0.02, Delta: 0.05, Seed: 3})
	res, err := eng.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Restarts == 0 {
		t.Error("tight margin should force at least one doubling restart")
	}
	if res.Stats.FinalRounds < 2 {
		t.Errorf("final rounds = %d", res.Stats.FinalRounds)
	}
}

func TestOptionValidation(t *testing.T) {
	eng := NewEngine(coinDB(), Options{Eps0: 0, Delta: 0.1})
	if _, err := eng.EvalApprox(algebra.Base{Name: "Coins"}); err == nil {
		t.Error("ε₀=0 must be rejected")
	}
	eng2 := NewEngine(coinDB(), Options{Eps0: 0.1, Delta: 1.5})
	if _, err := eng2.EvalApprox(algebra.Base{Name: "Coins"}); err == nil {
		t.Error("δ≥1 must be rejected")
	}
}

func TestRepairKeyOverUnreliableRejected(t *testing.T) {
	db, _ := sensorDB([]float64{0.9})
	q := algebra.RepairKey{
		In: algebra.ApproxSelect{
			In:   algebra.Base{Name: "R"},
			Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
			Pred: predapprox.Linear([]float64{1}, 0.5),
		},
		Weight: "P1",
	}
	eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1})
	if _, err := eng.EvalApprox(q); err == nil {
		t.Error("repair-key above σ̂ must be rejected")
	}
}

// Determinism: same seed, same result.
func TestEngineDeterministic(t *testing.T) {
	db, _ := sensorDB([]float64{0.9, 0.4, 0.7})
	q := algebra.Conf{In: algebra.Base{Name: "R"}}
	r1, err := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 42}).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 42}).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if !urel.Poss(r1.Rel).Equal(urel.Poss(r2.Rel)) {
		t.Error("same seed produced different results")
	}
}

// Randomized agreement: approximate σ̂ vs exact σ̂ on random
// tuple-independent databases with comfortable thresholds.
func TestApproxMatchesExactOnComfortableInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		probs := make([]float64, n)
		for i := range probs {
			if rng.Intn(2) == 0 {
				probs[i] = 0.05 + 0.2*rng.Float64() // well below 0.5
			} else {
				probs[i] = 0.75 + 0.2*rng.Float64() // well above 0.5
			}
		}
		db, _ := sensorDB(probs)
		q := algebra.ApproxSelect{
			In:   algebra.Base{Name: "R"},
			Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
			Pred: predapprox.Linear([]float64{1}, 0.5),
		}
		exact, err := algebra.NewURelEvaluator(db).Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.05, Seed: int64(trial)})
		approx, err := eng.EvalApprox(q)
		if err != nil {
			t.Fatal(err)
		}
		ep, ap := urel.Poss(exact.Rel), urel.Poss(approx.Rel)
		if ep.Len() != ap.Len() {
			t.Fatalf("trial %d: exact %d vs approx %d tuples", trial, ep.Len(), ap.Len())
		}
		// Compare ID columns (P values are estimates).
		eIDs, aIDs := ep.Project("ID"), ap.Project("ID")
		if !eIDs.Equal(aIDs) {
			t.Fatalf("trial %d: membership mismatch\nexact:\n%s\napprox:\n%s", trial, eIDs, aIDs)
		}
	}
}
