package core

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/urel"
	"repro/internal/vars"
)

// hardChainDB builds a database whose single conf tuple carries one
// connected chain of n clauses over n skewed variables (clause i binds
// x_i ∧ x_{i+1}) — one hard component, too large for the exact-factoring
// limits, so the stratified sampler genuinely runs. perm reorders clause
// insertion; dup repeats every third clause (both must be invisible to
// canonicalized estimation).
func hardChainDB(n int, perm bool, dup bool) *urel.Database {
	db := urel.NewDatabase()
	vs := make([]vars.Var, n+1)
	for i := range vs {
		p := math.Pow(0.5, float64(1+i%8)) // weights spanning 2^-1 .. 2^-8
		vs[i] = db.Vars.Add("x"+strconv.Itoa(i), []float64{p, 1 - p}, nil)
	}
	clauses := make([]vars.Assignment, n)
	for i := range clauses {
		clauses[i] = vars.MustAssignment(
			vars.Binding{Var: vs[i], Alt: 0},
			vars.Binding{Var: vs[i+1], Alt: 0},
		)
	}
	r := urel.NewRelation(rel.NewSchema("ID"))
	add := func(i int) {
		r.Add(clauses[i], rel.Tuple{rel.Int(0)})
		if dup && i%3 == 0 {
			r.Add(clauses[i], rel.Tuple{rel.Int(0)})
		}
	}
	if perm {
		for i := n - 1; i >= 0; i-- {
			add(i)
		}
	} else {
		for i := 0; i < n; i++ {
			add(i)
		}
	}
	db.AddURelation("R", r, false)
	return db
}

func confP(t *testing.T, db *urel.Database, opts Options) (float64, Stats) {
	t.Helper()
	res, err := NewEngine(db, opts).EvalApprox(algebra.Conf{In: algebra.Base{Name: "R"}})
	if err != nil {
		t.Fatal(err)
	}
	p := urel.Poss(res.Rel)
	if p.Len() != 1 {
		t.Fatalf("got %d conf tuples, want 1", p.Len())
	}
	for _, tp := range p.Tuples() {
		return p.Value(tp, "P").AsFloat(), res.Stats
	}
	return 0, res.Stats
}

// Metamorphic: permuting clause insertion order and duplicating clauses
// must not change a stratified estimate at all — canonicalization and
// dedup make the PRNG streams a function of clause content only.
func TestStratifiedPermutationAndDuplicateInvariance(t *testing.T) {
	opts := Options{Eps0: 0.05, Delta: 0.05, Seed: 19, Strata: 4}
	base, st := confP(t, hardChainDB(14, false, false), opts)
	if st.Strata == 0 {
		t.Fatal("fixture did not reach the stratified sampler")
	}
	for name, db := range map[string]*urel.Database{
		"permuted":   hardChainDB(14, true, false),
		"duplicated": hardChainDB(14, false, true),
		"both":       hardChainDB(14, true, true),
	} {
		if got, _ := confP(t, db, opts); got != base {
			t.Errorf("%s clauses changed the estimate: %v vs %v", name, got, base)
		}
	}
}

// Metamorphic: the worker count must never change a stratified result,
// for any stratum count; the stratum count may (different plans are
// different estimators), but each plan must be internally deterministic.
func TestStratifiedWorkerInvariance(t *testing.T) {
	for _, strata := range []int{1, 4, 8} {
		var base float64
		for wi, workers := range []int{1, 4, 8} {
			opts := Options{Eps0: 0.05, Delta: 0.05, Seed: 7, Strata: strata, Workers: workers}
			got, st := confP(t, hardChainDB(16, false, false), opts)
			if st.EstimatorTrials == 0 {
				t.Fatalf("strata=%d workers=%d sampled nothing", strata, workers)
			}
			if wi == 0 {
				base = got
				continue
			}
			if got != base {
				t.Errorf("strata=%d: %d workers gave %v, 1 worker gave %v", strata, workers, got, base)
			}
		}
	}
}

// The engine's pooled wave loop must reproduce the sequential reference
// loop (karpluby.EstimateAdaptive) bit-for-bit: same canonical residue,
// same task seed, same plan, same chunk streams, same wave schedule.
func TestStratifiedEngineMatchesReferenceLoop(t *testing.T) {
	db := hardChainDB(12, false, false)
	const seed = 5
	eps, delta := 0.1, 0.1
	opts := Options{Eps0: 0.05, Delta: 0.05, ConfEps: eps, ConfDelta: delta, Seed: seed, Strata: 4, Workers: 4}
	got, _ := confP(t, db, opts)

	// Rebuild the residue exactly as newStratJob does: dedup, factor,
	// canonicalize. The chain is one hard component, so the residue is the
	// full clause set and there is no exact part.
	var f dnf.F
	for _, ut := range db.Rels["R"].Tuples() {
		f = append(f, ut.D)
	}
	f = f.Dedup()
	fac := dnf.Factor(f, db.Vars, dnf.DefaultFactorLimits)
	if fac.ExactComponents != 0 || len(fac.Residue) != len(f) {
		t.Fatalf("fixture factored unexpectedly: %+v", fac)
	}
	res, key := newFingerprinter(db.Vars).canonicalF(fac.Residue)
	ref, err := karpluby.EstimateAdaptive(res, db.Vars, karpluby.AdaptiveOptions{
		MaxStrata: 4, Eps: eps, Delta: delta,
		Seed:     sched.TaskSeedWords(seed, key.hi, key.lo),
		ChunkFor: chunkTrials,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Min(1, math.Max(0, ref.P))
	if got != want {
		t.Errorf("engine estimate %v != reference loop %v", got, want)
	}
}

// A warm stratified evaluation on a shared cache must reuse the cold
// run's per-stratum snapshots and produce the identical result.
func TestStratifiedCacheResumeDeterminism(t *testing.T) {
	db := hardChainDB(16, false, false)
	q := algebra.Conf{In: algebra.Base{Name: "R"}}
	opts := Options{Eps0: 0.05, Delta: 0.05, Seed: 3, Strata: 4}
	cache := NewCache(0)

	cold := NewEngine(db, opts)
	cold.SetCache(cache)
	r1, err := cold.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewEngine(db, opts)
	warm.SetCache(cache)
	r2, err := warm.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if !urel.Poss(r1.Rel).Equal(urel.Poss(r2.Rel)) {
		t.Error("warm stratified run differs from cold run")
	}
	if r2.Stats.CacheHits == 0 || r2.Stats.ReusedTrials == 0 {
		t.Errorf("warm run resumed nothing: hits=%d reused=%d",
			r2.Stats.CacheHits, r2.Stats.ReusedTrials)
	}
	if r2.Stats.EstimatorTrials >= r1.Stats.EstimatorTrials {
		t.Errorf("warm run sampled %d trials, cold sampled %d — no reuse benefit",
			r2.Stats.EstimatorTrials, r1.Stats.EstimatorTrials)
	}
}

// Factoring pre-pass: a lineage of independent single-clause components
// must be computed exactly — zero sampling, exact result, and the
// ExactFactored counter visible in Stats.
func TestStratifiedFactorsIndependentLineage(t *testing.T) {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	probs := []float64{0.3, 0.04, 0.0017}
	for i, p := range probs {
		v := db.Vars.Add("y"+strconv.Itoa(i), []float64{p, 1 - p}, nil)
		r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(0)})
	}
	db.AddURelation("R", r, false)
	got, st := confP(t, db, Options{Eps0: 0.05, Delta: 0.05, Seed: 1, Strata: 4})
	want := 1 - (1-probs[0])*(1-probs[1])*(1-probs[2])
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("factored conf = %v, want exactly %v", got, want)
	}
	if st.EstimatorTrials != 0 {
		t.Errorf("fully-factorable lineage sampled %d trials", st.EstimatorTrials)
	}
	if st.ExactFactored == 0 {
		t.Error("Stats.ExactFactored not reported")
	}
}
