package core

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/karpluby"
	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/urel"
)

// approxConf implements conf_{ε,δ} (Section 4 / Corollary 4.3): the output
// is a complete relation with an estimated P column; per-tuple membership
// bounds are inherited from the input (the P value itself carries the
// (ε,δ) relative-error guarantee). Estimation is fanned out across the
// engine's worker pool: every tuple becomes a job keyed by its lineage
// row, so its PRNG streams — and hence its estimate — depend only on
// Options.Seed, not on the worker count or on other tuples.
func (run *evalRun) approxConf(in *evalResult, pcol string) (*evalResult, error) {
	if run.engine.opts.stratifiedConf() {
		return run.approxConfStrat(in, pcol)
	}
	if in.rel.Schema().Has(pcol) {
		return nil, fmt.Errorf("core: conf column %q already in schema %v", pcol, in.rel.Schema())
	}
	eps, delta := run.engine.opts.confEps(), run.engine.opts.confDelta()
	// Stream the lineage groups: one pass builds the estimation jobs and
	// keeps only (row, value) per distinct tuple — the clause sets flow
	// straight into the estimators instead of surviving in a second
	// materialized []TupleConf. Jobs are keyed by lineage content, so
	// tuples sharing a clause set — within this operator, elsewhere in the
	// plan, or in an earlier query against a shared engine cache — share
	// one estimation.
	type rowConf struct {
		row rel.Tuple
		cv  *confValue
	}
	var tuples []rowConf
	var jobs []*estimateJob
	var jobErr error
	run.batch = make(map[contentKey]*estimateJob)
	budget := func(clauses int) int64 { return karpluby.TrialsFor(eps, delta, clauses) }
	for tc := range run.exec.LineageSeq(in.rel) {
		// The singleton shortcut is always on here: a single clause's
		// weight is its exact probability (the estimator would return it
		// deterministically anyway).
		cv, job, err := run.newJob(tc.F, budget, true)
		if err != nil {
			jobErr = err
			break
		}
		if job != nil {
			jobs = append(jobs, job)
		}
		tuples = append(tuples, rowConf{row: tc.Row, cv: cv})
	}
	if jobErr != nil {
		return nil, jobErr
	}
	if err := run.runEstimates(jobs); err != nil {
		return nil, err
	}
	out := urel.NewRelation(rel.NewSchema(append(in.rel.Schema().Clone(), pcol)...))
	errs := provenance.Reliable()
	sing := map[string]bool{}
	for _, t := range tuples {
		outRow := make(rel.Tuple, len(t.row)+1)
		copy(outRow, t.row)
		outRow[len(t.row)] = rel.Float(t.cv.estimate())
		out.AddOwned(nil, outRow)
		inKey := t.row.Key()
		outKey := outRow.Key()
		if v := in.errs.Get(inKey); v > 0 {
			errs.Set(outKey, v)
		}
		if in.singular[inKey] {
			sing[outKey] = true
		}
	}
	return &evalResult{rel: out, complete: true, errs: errs, singular: sing}, nil
}

// confValue is one approximable conf[Āᵢ] term of a σ̂ group: either an
// exact probability (empty or singleton lineage), a live flat Karp–Luby
// estimator, or — on the stratified path — a stratified estimator over
// the factored residue plus the exactly-computed part of the lineage
// (combined as p = exactPart + (1−exactPart)·p_R, see dnf.Factor).
type confValue struct {
	exact     bool
	value     float64
	est       *karpluby.Estimator
	strat     *karpluby.Stratified
	exactPart float64 // exact factored part, stratified path only
	provErr   float64 // Σ µ over the input tuples in this term's provenance
	singular  bool
}

func (cv *confValue) estimate() float64 {
	if cv.exact {
		return cv.value
	}
	if cv.strat != nil {
		r := math.Min(1, math.Max(0, cv.strat.Estimate()))
		return cv.exactPart + (1-cv.exactPart)*r
	}
	return cv.est.Estimate()
}

// delta returns the per-value error bound δᵢ(ε) after the run's rounds.
// On the stratified path the residue's relative-error bound carries to
// the combined value unchanged (factor.go), so no adjustment is needed.
func (cv *confValue) delta(eps float64) float64 {
	if cv.exact {
		return 0
	}
	if cv.strat != nil {
		return cv.strat.Delta(eps)
	}
	return cv.est.Delta(eps)
}

// bounds returns a 1−delta confidence interval for the combined value,
// used by threshold/top-k early stopping.
func (cv *confValue) bounds(delta float64) (lo, hi float64) {
	if cv.exact {
		return cv.value, cv.value
	}
	if cv.strat != nil {
		lo, hi = cv.strat.Bounds(delta)
		e := cv.exactPart
		return e + (1-e)*lo, e + (1-e)*hi
	}
	return cv.est.Bounds(delta)
}

// approxSelect implements σ̂ under approximation (Definition 6.2): for
// every joined combination of the conf arguments' possible tuples, the
// clause sets are estimated for `rounds` Karp–Luby rounds, the predicate
// is decided on the estimates with ε = max(ε₀, ε_ψ(p̂)), and the
// membership error of an emitted tuple is bounded per Lemma 6.4(2) by
// Σᵢ δᵢ(ε) plus the provenance error of the conf inputs.
func (run *evalRun) approxSelect(in *evalResult, n algebra.ApproxSelect) (*evalResult, error) {
	roundBudget := func(clauses int) int64 { return run.rounds * int64(clauses) }
	var jobs []*estimateJob
	var sjobs []*stratJob
	// One batch spans every argument: content-equal lineages across (and
	// within) arguments share a single estimation job. With Strata set,
	// σ̂ estimations run on the stratified path (factoring pre-pass +
	// Neyman allocation of the same per-pass trial budget).
	strat := run.engine.opts.Strata > 0
	if strat {
		run.sbatch = make(map[contentKey]*stratJob)
	} else {
		run.batch = make(map[contentKey]*estimateJob)
	}
	// Build each argument's projected lineage with provenance errors.
	argTuples := make([][]argTuple, len(n.Args))
	argSchemas := make([]rel.Schema, len(n.Args))
	for i, a := range n.Args {
		for _, attr := range a.Attrs {
			if !in.rel.Schema().Has(attr) {
				return nil, fmt.Errorf("core: σ̂ conf attribute %q not in schema %v", attr, in.rel.Schema())
			}
		}
		proj := run.exec.Project(in.rel, keepTargets(a.Attrs))
		// Provenance error of each projected tuple: sum over distinct
		// input data tuples projecting onto it.
		provErr := map[string]float64{}
		provSing := map[string]bool{}
		seen := map[string]map[string]bool{}
		attrIdx := make([]int, len(a.Attrs))
		for j, attr := range a.Attrs {
			attrIdx[j] = in.rel.Schema().Index(attr)
		}
		for _, ut := range in.rel.Tuples() {
			outRow := make(rel.Tuple, len(attrIdx))
			for j, idx := range attrIdx {
				outRow[j] = ut.Row[idx]
			}
			ok, ik := outRow.Key(), ut.Row.Key()
			if seen[ok] == nil {
				seen[ok] = map[string]bool{}
			}
			if seen[ok][ik] {
				continue
			}
			seen[ok][ik] = true
			provErr[ok] += in.errs.Get(ik)
			if in.singular[ik] {
				provSing[ok] = true
			}
		}
		var tuples []argTuple
		var jobErr error
		for tc := range run.exec.LineageSeq(proj) {
			// The balanced refinement scheme of the end of Section 5:
			// run.rounds rounds of |F| trials each. NoSingletonShortcut
			// forces even single-clause lineages through the estimator
			// (ablation knob).
			var cv *confValue
			var err error
			if strat {
				var sj *stratJob
				cv, sj, err = run.newStratJob(tc.F,
					roundBudget, !run.engine.opts.NoSingletonShortcut)
				if sj != nil {
					sjobs = append(sjobs, sj)
				}
			} else {
				var job *estimateJob
				cv, job, err = run.newJob(tc.F,
					roundBudget, !run.engine.opts.NoSingletonShortcut)
				if job != nil {
					jobs = append(jobs, job)
				}
			}
			if err != nil {
				jobErr = err
				break
			}
			cv.provErr = provErr[tc.Row.Key()]
			cv.singular = provSing[tc.Row.Key()]
			tuples = append(tuples, argTuple{row: tc.Row, cv: cv, attr: proj.Schema()})
		}
		if jobErr != nil {
			return nil, jobErr
		}
		argTuples[i] = tuples
		argSchemas[i] = proj.Schema()
	}
	// Spend every argument tuple's trial budget in one pooled batch: the
	// scheduler sees all (tuple, chunk) tasks at once and keeps every
	// worker busy across argument boundaries.
	if strat {
		if err := run.runStratEstimates(sjobs, stratTarget{adaptive: false}); err != nil {
			return nil, err
		}
	} else if err := run.runEstimates(jobs); err != nil {
		return nil, err
	}

	// Output schema: union of argument attributes in order of first
	// appearance, then P1..Pk.
	var outAttrs []string
	seenAttr := map[string]bool{}
	for _, s := range argSchemas {
		for _, a := range s {
			if !seenAttr[a] {
				seenAttr[a] = true
				outAttrs = append(outAttrs, a)
			}
		}
	}
	outSchema := make(rel.Schema, 0, len(outAttrs)+len(n.Args))
	outSchema = append(outSchema, outAttrs...)
	for i := range n.Args {
		outSchema = append(outSchema, algebra.PColName(i))
	}
	out := urel.NewRelation(rel.NewSchema(outSchema...))
	errs := provenance.Reliable()
	sing := map[string]bool{}

	// Enumerate natural-join combinations of the argument tuples.
	combo := make([]argTuple, len(n.Args))
	var emit func(i int, bound map[string]rel.Value) error
	emit = func(i int, bound map[string]rel.Value) error {
		if i == len(n.Args) {
			return run.decideCombo(n, combo, outAttrs, bound, out, errs, sing)
		}
		for _, at := range argTuples[i] {
			merged, ok := mergeBindings(bound, at.attr, at.row)
			if !ok {
				continue
			}
			combo[i] = at
			if err := emit(i+1, merged); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(0, map[string]rel.Value{}); err != nil {
		return nil, err
	}
	return &evalResult{rel: out, complete: true, errs: errs, singular: sing}, nil
}

// argTuple is one possible tuple of a σ̂ conf argument together with its
// (approximable) confidence value.
type argTuple struct {
	row  rel.Tuple
	cv   *confValue
	attr rel.Schema
}

// keepTargets builds identity projection targets for the named attributes.
func keepTargets(attrs []string) []expr.Target {
	out := make([]expr.Target, len(attrs))
	for i, a := range attrs {
		out[i] = expr.Keep(a)
	}
	return out
}

// mergeBindings extends the attribute bindings with a tuple's values,
// failing when a shared attribute disagrees (natural-join semantics).
func mergeBindings(bound map[string]rel.Value, schema rel.Schema, row rel.Tuple) (map[string]rel.Value, bool) {
	merged := make(map[string]rel.Value, len(bound)+len(schema))
	for k, v := range bound {
		merged[k] = v
	}
	for i, a := range schema {
		if prev, ok := merged[a]; ok {
			if !rel.Equal(prev, row[i]) {
				return nil, false
			}
			continue
		}
		merged[a] = row[i]
	}
	return merged, true
}

// decideCombo decides the σ̂ predicate for one joined combination and
// emits the tuple when the decision is positive, recording its error
// bound: Σᵢ δᵢ(max(ε_φ, ε₀)) + Σᵢ provenance errors (Lemma 6.4(2)).
func (run *evalRun) decideCombo(n algebra.ApproxSelect, combo []argTuple, outAttrs []string, bound map[string]rel.Value, out *urel.Relation, errs provenance.ErrMap, sing map[string]bool) error {
	run.decisions++
	k := len(combo)
	est := make([]float64, k)
	for i, at := range combo {
		est[i] = at.cv.estimate()
	}
	margin := n.Pred.Margin(est)
	eps := math.Max(run.engine.opts.Eps0, margin)
	decisionErr, provErr := 0.0, 0.0
	indep := 1.0
	singular := margin < run.engine.opts.Eps0
	for _, at := range combo {
		d := at.cv.delta(eps)
		decisionErr += d
		indep *= 1 - math.Min(1, d)
		provErr += at.cv.provErr
		if at.cv.singular {
			singular = true
		}
	}
	if run.engine.opts.IndependentBounds {
		// Lemma 5.1's sharper combination for independent estimators.
		decisionErr = 1 - indep
	}
	tupleBound := decisionErr + provErr
	if !singular && tupleBound > run.worstDecision {
		run.worstDecision = tupleBound
	}
	if !n.Pred.Eval(est) {
		if singular {
			run.singularDrops++
		}
		return nil
	}
	row := make(rel.Tuple, 0, len(outAttrs)+k)
	for _, a := range outAttrs {
		row = append(row, bound[a])
	}
	for i := range combo {
		row = append(row, rel.Float(est[i]))
	}
	out.Add(nil, row)
	key := row.Key()
	if tupleBound > 0 {
		errs.Set(key, tupleBound)
	}
	if singular {
		sing[key] = true
	}
	return nil
}
