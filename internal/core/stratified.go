package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/urel"
)

// Stratified estimation path (Options.Strata / ConfThreshold / ConfTopK).
//
// Each estimation task is first run through the dnf.Factor pre-pass:
// independent easy subformulas are computed exactly and only the hard
// residue is sampled, with the exact part folded back in as
// p = E + (1−E)·p_R (the relative (ε,δ) guarantee on p_R carries to p —
// see factor.go). The residue is canonicalized, partitioned into weight
// strata (karpluby.PlanStrata, a deterministic function of the canonical
// clause set and the band bound), and estimated by sampling waves:
//
//	sweep:  on merged counts only — settle tasks whose threshold/top-k
//	        decision, empirical-Bernstein (ε,δ) bound, or trial cap is
//	        reached;
//	wave:   Neyman-allocate the next batch of chunks across the strata of
//	        every unsettled task, flatten all (task, stratum, chunk)
//	        triples into one pool batch, sample, merge.
//
// Determinism: every chunk's PRNG stream is fixed by (engine seed,
// residue content key, stratum index, chunk plan index); allocation and
// stopping decisions are pure functions of the merged integer counts and
// happen only at wave boundaries, after all of a wave's chunks merged.
// Results are therefore bit-identical for any worker count, and a run
// resumed from cached per-stratum snapshots continues exactly the
// trajectory the interrupted run would have taken.
//
// Caching: each stratum gets its own content-keyed cache entry (the key
// mixes the residue fingerprint with the band bound and stratum index, so
// plans under different Strata settings never collide). Only chunk-
// aligned counts are published — a fixed-budget pass's trailing partial
// chunk is dropped from the snapshot rather than carried as a mid-chunk
// tail, costing at most one chunk of re-sampling per stratum per restart.

// stratKey derives the cache key of one stratum of a stratified task. It
// mixes the residue's content key with the band bound and the stratum
// index: the stratification plan is a deterministic function of
// (canonical residue, maxStrata), so this triple uniquely identifies the
// stratum's clause subset — two plans with different band bounds can
// never alias each other's entries.
func stratKey(key contentKey, maxStrata, j int) contentKey {
	salt := rel.Mix64(uint64(maxStrata)*0x9e3779b97f4a7c15 + uint64(j) + 1)
	return contentKey{
		hi: rel.HashCombine(key.hi, salt),
		lo: rel.HashCombine(key.lo, rel.Mix64(salt)),
	}
}

// stratJob is one pending stratified estimation: a stratified merge
// target, per-stratum seeds/chunk sizes/cache keys, and the task's trial
// cap. The confValues of every tuple sharing this job's residue (same
// canonical clause set, possibly different exact-factored parts) are
// attached for threshold/top-k decisions.
type stratJob struct {
	est       *karpluby.Stratified
	key       contentKey
	f         dnf.F // canonical residue, shipped to shards in remote mode
	maxStrata int
	taskSeed  int64
	seeds     []int64      // per-stratum task seeds (karpluby.StratumSeed)
	sizes     []int64      // per-stratum chunk sizes (chunkTrials of |F_j|)
	keys      []contentKey // per-stratum cache keys

	budget      int64 // trial cap (adaptive) or pass target (fixed)
	startTrials int64 // trials resumed from cache across strata
	cvs         []*confValue

	done  bool
	early bool

	// wave bookkeeping, rewritten at each wave boundary by the
	// coordinator (never touched by pool workers).
	waveStart []int
	waveFull  []int

	mu sync.Mutex
	// partial* accumulate the counts contributed by undersized trailing
	// chunks (fixed-budget mode only); they are merged into est's totals
	// but subtracted again when publishing the chunk-aligned snapshot.
	partialHits   []int64
	partialTrials []int64
}

// newStratJob is newJob's counterpart for the stratified path: it factors
// the clause set, classifies trivial cases as exact confidence values,
// canonicalizes the residue, builds the stratified estimator with its
// deterministic plan/seeds/keys, and resumes per-stratum counts from the
// cache. Content-equal residues within one batch share a single job (each
// sighting keeps its own exact-factored part).
func (run *evalRun) newStratJob(f dnf.F, trials func(clauses int) int64, shortcutSingleton bool) (*confValue, *stratJob, error) {
	f = f.Dedup()
	switch {
	case len(f) == 0:
		return &confValue{exact: true, value: 0}, nil, nil
	case len(f[0]) == 0:
		return &confValue{exact: true, value: 1}, nil, nil
	}
	fac := dnf.Factor(f, run.db.Vars, dnf.DefaultFactorLimits)
	run.exactFactored += int64(fac.ExactComponents)
	res := fac.Residue
	switch {
	case len(res) == 0:
		return &confValue{exact: true, value: fac.Exact}, nil, nil
	case len(res) == 1 && shortcutSingleton:
		v := fac.Exact + (1-fac.Exact)*res[0].Weight(run.db.Vars)
		return &confValue{exact: true, value: v}, nil, nil
	}
	if run.fper == nil {
		run.fper = newFingerprinter(run.db.Vars)
	}
	res, key := run.fper.canonicalF(res)
	if shared, ok := run.sbatch[key]; ok {
		cv := &confValue{strat: shared.est, exactPart: fac.Exact}
		shared.cvs = append(shared.cvs, cv)
		return cv, nil, nil
	}
	maxStrata := run.engine.opts.strataCount()
	plan := karpluby.PlanStrata(res, run.db.Vars, maxStrata)
	est, err := karpluby.NewStratified(res, run.db.Vars, plan)
	if err != nil {
		if errors.Is(err, karpluby.ErrEmpty) {
			// Zero-weight residue: its confidence is exactly 0.
			return &confValue{exact: true, value: fac.Exact}, nil, nil
		}
		return nil, nil, err
	}
	run.strata += int64(est.StratumCount())
	job := &stratJob{
		est:       est,
		key:       key,
		f:         res,
		maxStrata: maxStrata,
		taskSeed:  sched.TaskSeedWords(run.engine.opts.Seed, key.hi, key.lo),
		budget:    trials(est.ClauseCount()),
	}
	k := est.StratumCount()
	job.seeds = make([]int64, k)
	job.sizes = make([]int64, k)
	job.keys = make([]contentKey, k)
	job.partialHits = make([]int64, k)
	job.partialTrials = make([]int64, k)
	job.waveStart = make([]int, k)
	job.waveFull = make([]int, k)
	for j := 0; j < k; j++ {
		job.seeds[j] = karpluby.StratumSeed(job.taskSeed, j)
		job.sizes[j] = chunkTrials(est.StratumClauses(j))
		job.keys[j] = stratKey(key, maxStrata, j)
	}
	if run.cache != nil {
		resumed := false
		for j := 0; j < k; j++ {
			if est.StratumM(j) <= 0 {
				continue
			}
			st, ok := run.cache.lookup(job.keys[j], est.StratumClauses(j), job.sizes[j], math.MaxInt64, run.engine.opts.Seed)
			if !ok {
				continue
			}
			// Stratified entries are always chunk-aligned; if a tail ever
			// appears (it should not), drop it rather than continue it.
			if st.PartialRNG != nil {
				st.Hits -= st.PartialHits
				st.Trials -= st.PartialTrials
			}
			ss := karpluby.StratumState{Hits: st.Hits, Trials: st.Trials, Chunks: st.Chunks}
			if err := est.ResumeStratum(j, ss); err == nil && st.Trials > 0 {
				job.startTrials += st.Trials
				resumed = true
			}
		}
		if resumed {
			run.cacheHits++
		}
	}
	cv := &confValue{strat: est, exactPart: fac.Exact}
	job.cvs = append(job.cvs, cv)
	if run.sbatch != nil {
		run.sbatch[key] = job
	}
	return cv, job, nil
}

// stratTarget parameterizes one stratified batch.
type stratTarget struct {
	// adaptive selects the convergence-driven loop (conf operators):
	// sample waves until the empirical Delta(eps) ≤ delta or the budget
	// cap is spent. With adaptive false (σ̂ passes), exactly the
	// remaining budget is Neyman-allocated in one wave.
	adaptive   bool
	eps, delta float64
	// decided, when non-nil, is the threshold/top-k early-stopping hook,
	// called on merged counts at wave boundaries only (so its verdicts
	// are deterministic for any worker count).
	decided func(*stratJob) bool
}

// runStratEstimates drives every job to its stopping condition with
// Neyman-allocated sampling waves across the engine's worker pool, then
// publishes chunk-aligned per-stratum snapshots to the run's cache. Like
// runEstimates, an aborted batch (context cancellation, tripped trial
// limit) publishes nothing — the cache only ever holds complete wave
// boundaries.
// stratTask is one (job, stratum, chunk) sampling unit of a wave.
type stratTask struct {
	j     *stratJob
	s     int
	chunk int
	n     int64
}

func (run *evalRun) runStratEstimates(jobs []*stratJob, tgt stratTarget) error {
	defer func() { run.sbatch = nil }()
	pending := make([]*stratJob, 0, len(jobs))
	for _, j := range jobs {
		if j != nil {
			pending = append(pending, j)
		}
	}
	for len(pending) > 0 {
		// Sweep: settle jobs on merged, deterministic state.
		var still []*stratJob
		for _, j := range pending {
			spent := j.est.Trials()
			switch {
			case tgt.decided != nil && tgt.decided(j):
				j.done, j.early = true, true
			case tgt.adaptive && j.est.Delta(tgt.eps) <= tgt.delta:
				j.done = true
			case spent >= j.budget:
				j.done = true
			default:
				still = append(still, j)
				continue
			}
			if spent < j.budget {
				run.earlyStops++
			}
		}
		pending = still
		if len(pending) == 0 {
			break
		}
		// Allocate the next wave for every unsettled job.
		var tasks []stratTask
		for _, j := range pending {
			for s := range j.waveFull {
				j.waveStart[s] = j.est.StratumChunks(s)
				j.waveFull[s] = 0
			}
			if tgt.adaptive {
				for s, c := range j.est.NextWave(j.sizes, j.budget) {
					j.waveFull[s] = c
					for i := 0; i < c; i++ {
						tasks = append(tasks, stratTask{j: j, s: s, chunk: j.waveStart[s] + i, n: j.sizes[s]})
					}
				}
			} else {
				// σ̂ fixed-budget passes are variance-aware too: instead of
				// Neyman-splitting the whole remainder on the (possibly
				// uniform-prior) θ̂ estimates in one shot, spend it in
				// doubling waves — each intermediate wave doubles the
				// cumulative spend and re-allocates on the counts merged so
				// far, so the split sharpens as variance estimates tighten.
				// Intermediate waves emit whole chunks only (a partial chunk
				// does not advance the stratum cursor, so re-allocating at
				// its index would re-sample a prefix of its stream); the
				// final wave spends exactly the remainder and may end on one
				// partial chunk per stratum. (A probe wave that cannot be
				// tiled by whole chunks falls back to one chunk, which can
				// overshoot the pass target by at most one chunk — the sweep
				// then settles the job.) All decisions read merged counts
				// at wave boundaries, so the trajectory — and the exact pass
				// total — is bit-identical for any worker count.
				spent := j.est.Trials()
				remaining := j.budget - spent
				wave := spent
				if min := minActiveChunk(j); wave < min {
					wave = min
				}
				if wave >= remaining {
					// Final wave: exactly the remainder.
					for s, a := range j.est.Allocate(remaining) {
						if a <= 0 {
							continue
						}
						full := int(a / j.sizes[s])
						j.waveFull[s] = full
						for i := 0; i < full; i++ {
							tasks = append(tasks, stratTask{j: j, s: s, chunk: j.waveStart[s] + i, n: j.sizes[s]})
						}
						if rem := a % j.sizes[s]; rem > 0 {
							tasks = append(tasks, stratTask{j: j, s: s, chunk: j.waveStart[s] + full, n: rem})
						}
					}
				} else {
					alloc := j.est.Allocate(wave)
					added := 0
					for s, a := range alloc {
						full := int(a / j.sizes[s])
						if full <= 0 {
							continue
						}
						j.waveFull[s] = full
						added += full
						for i := 0; i < full; i++ {
							tasks = append(tasks, stratTask{j: j, s: s, chunk: j.waveStart[s] + i, n: j.sizes[s]})
						}
					}
					if added == 0 {
						// Every share rounded below one chunk: probe the
						// stratum with the largest share (ties to the lowest
						// index) so the wave always makes progress.
						best, bestA := -1, int64(-1)
						for s, a := range alloc {
							if a > bestA {
								best, bestA = s, a
							}
						}
						j.waveFull[best] = 1
						tasks = append(tasks, stratTask{j: j, s: best, chunk: j.waveStart[best], n: j.sizes[best]})
					}
				}
			}
		}
		if len(tasks) == 0 {
			// Caps exhausted below chunk granularity: stop cleanly.
			for _, j := range pending {
				j.done = true
			}
			break
		}
		// Run the wave. Every task's stream is fixed by (stratum seed,
		// plan index); merges are commutative integer sums.
		ctx := run.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		if run.engine.dist != nil {
			if err := run.remoteStratWave(ctx, tasks); err != nil {
				return err
			}
			for _, j := range pending {
				for s, c := range j.waveFull {
					if c > 0 {
						j.est.AdvanceStratum(s, j.waveStart[s]+c)
					}
				}
			}
			continue
		}
		err := run.engine.pool.ForEachCtx(ctx, len(tasks), func(i int) error {
			t := tasks[i]
			if err := run.chargeTrials(t.n); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(sched.ChunkSeed(t.j.seeds[t.s], t.chunk)))
			sh := t.j.est.Shard(t.s, rng)
			sh.Add(int(t.n))
			t.j.mu.Lock()
			t.j.est.MergeShard(t.s, sh)
			if t.n < t.j.sizes[t.s] {
				t.j.partialHits[t.s] += sh.Hits()
				t.j.partialTrials[t.s] += t.n
			}
			t.j.mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}
		// Advance cursors past the wave's full chunks: the wave barrier
		// guarantees every chunk below the new cursor has merged.
		for _, j := range pending {
			for s, c := range j.waveFull {
				if c > 0 {
					j.est.AdvanceStratum(s, j.waveStart[s]+c)
				}
			}
		}
	}
	// Publish chunk-aligned snapshots and account trials.
	for _, j := range jobs {
		if j == nil {
			continue
		}
		run.trials += j.est.Trials() - j.startTrials
		run.reused += j.startTrials
		if run.cache == nil {
			continue
		}
		for s := 0; s < j.est.StratumCount(); s++ {
			if j.est.StratumM(s) <= 0 {
				continue
			}
			aligned := j.est.StratumTrials(s) - j.partialTrials[s]
			hits := j.est.StratumHits(s) - j.partialHits[s]
			if aligned <= 0 {
				continue
			}
			run.cache.store(j.keys[s], j.est.StratumClauses(s), j.sizes[s],
				aligned, hits, 0, 0, nil, run.engine.opts.Seed)
		}
	}
	return nil
}

// minActiveChunk returns the smallest chunk size among strata with
// positive mass — the floor of an intermediate σ̂ wave, so the doubling
// schedule always starts with at least one whole chunk of probing.
func minActiveChunk(j *stratJob) int64 {
	min := int64(0)
	for s, size := range j.sizes {
		if j.est.StratumM(s) <= 0 {
			continue
		}
		if min == 0 || size < min {
			min = size
		}
	}
	return min
}

// approxConfStrat is approxConf on the stratified path: same contract
// (complete output relation with an estimated P column), different
// estimation machinery — factoring pre-pass, per-stratum Neyman waves,
// empirical-Bernstein stopping, and optional threshold/top-k early
// stopping. Threshold/top-k never filter the output: every tuple still
// appears with its estimate; the options only govern how much sampling
// effort a tuple receives once its decision is settled.
func (run *evalRun) approxConfStrat(in *evalResult, pcol string) (*evalResult, error) {
	if in.rel.Schema().Has(pcol) {
		return nil, fmt.Errorf("core: conf column %q already in schema %v", pcol, in.rel.Schema())
	}
	opts := run.engine.opts
	eps, delta := opts.confEps(), opts.confDelta()
	type rowConf struct {
		row rel.Tuple
		cv  *confValue
	}
	var tuples []rowConf
	var jobs []*stratJob
	var jobErr error
	run.sbatch = make(map[contentKey]*stratJob)
	budget := func(clauses int) int64 { return karpluby.TrialsFor(eps, delta, clauses) }
	for tc := range run.exec.LineageSeq(in.rel) {
		cv, job, err := run.newStratJob(tc.F, budget, true)
		if err != nil {
			jobErr = err
			break
		}
		if job != nil {
			jobs = append(jobs, job)
		}
		tuples = append(tuples, rowConf{row: tc.Row, cv: cv})
	}
	if jobErr != nil {
		return nil, jobErr
	}
	tgt := stratTarget{adaptive: true, eps: eps, delta: delta}
	if opts.ConfThreshold > 0 || opts.ConfTopK > 0 {
		all := make([]*confValue, len(tuples))
		for i, t := range tuples {
			all[i] = t.cv
		}
		tgt.decided = confDecider(all, opts.ConfThreshold, opts.ConfTopK, delta)
	}
	if err := run.runStratEstimates(jobs, tgt); err != nil {
		return nil, err
	}
	out := urel.NewRelation(rel.NewSchema(append(in.rel.Schema().Clone(), pcol)...))
	errs := provenance.Reliable()
	sing := map[string]bool{}
	for _, t := range tuples {
		outRow := make(rel.Tuple, len(t.row)+1)
		copy(outRow, t.row)
		outRow[len(t.row)] = rel.Float(t.cv.estimate())
		out.AddOwned(nil, outRow)
		inKey := t.row.Key()
		outKey := outRow.Key()
		if v := in.errs.Get(inKey); v > 0 {
			errs.Set(outKey, v)
		}
		if in.singular[inKey] {
			sing[outKey] = true
		}
	}
	return &evalResult{rel: out, complete: true, errs: errs, singular: sing}, nil
}

// confDecider builds the wave-boundary early-stopping hook for threshold
// and top-k conf queries. A job settles when every tuple sharing its
// residue is decided under every enabled criterion:
//
//   - threshold τ: the tuple's confidence interval at level delta lies
//     entirely above or entirely below τ;
//   - top-k: interval separation against the other tuples of the same
//     operator — the tuple is definitely in the top k (at most k−1 other
//     intervals reach above its lower bound) or definitely out (at least
//     k other lower bounds lie at or above its upper bound).
//
// The hook reads only merged counts and is called only at wave
// boundaries, so its verdicts are deterministic for any worker count.
func confDecider(all []*confValue, tau float64, topk int, delta float64) func(*stratJob) bool {
	decidedCV := func(cv *confValue) bool {
		lo, hi := cv.bounds(delta)
		if tau > 0 && !(lo > tau || hi < tau) {
			return false
		}
		if topk > 0 {
			above, reach := 0, 0
			for _, o := range all {
				if o == cv {
					continue
				}
				olo, ohi := o.bounds(delta)
				if ohi > lo {
					reach++ // could still outrank cv
				}
				if olo >= hi {
					above++ // definitely outranks cv
				}
			}
			in := reach <= topk-1
			out := above >= topk
			if !in && !out {
				return false
			}
		}
		return true
	}
	return func(j *stratJob) bool {
		if len(j.cvs) == 0 {
			return false
		}
		for _, cv := range j.cvs {
			if !decidedCV(cv) {
				return false
			}
		}
		return true
	}
}
