package core

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/urel"
	"repro/internal/workload"
)

// posteriorQuery builds the P(CoinType | all heads) query for a bag with
// the given number of tosses (the generalized Example 2.2).
func posteriorQuery(tosses int) algebra.Query {
	r := algebra.Project{
		In:      algebra.RepairKey{In: algebra.Base{Name: "Coins"}, Weight: "Count"},
		Targets: []expr.Target{expr.Keep("CoinType")},
	}
	s := algebra.Project{
		In: algebra.RepairKey{
			In:     algebra.Product{L: algebra.Base{Name: "Faces"}, R: algebra.Base{Name: "Tosses"}},
			Key:    []string{"CoinType", "Toss"},
			Weight: "FProb",
		},
		Targets: []expr.Target{expr.Keep("CoinType"), expr.Keep("Toss"), expr.Keep("Face")},
	}
	t := algebra.Query(algebra.Base{Name: "R"})
	for i := 1; i <= tosses; i++ {
		t = algebra.Join{L: t, R: algebra.Project{
			In: algebra.Select{
				In: algebra.Base{Name: "S"},
				Pred: expr.AndOf(
					expr.Eq(expr.A("Toss"), expr.CInt(int64(i))),
					expr.Eq(expr.A("Face"), expr.CStr("H")),
				),
			},
			Targets: []expr.Target{expr.Keep("CoinType")},
		}}
	}
	u := algebra.Project{
		In: algebra.Product{
			L: algebra.Conf{In: algebra.Base{Name: "T"}, As: "P1"},
			R: algebra.Conf{In: algebra.Project{In: algebra.Base{Name: "T"}}, As: "P2"},
		},
		Targets: []expr.Target{
			expr.Keep("CoinType"),
			expr.As("P", expr.Div(expr.A("P1"), expr.A("P2"))),
		},
	}
	return algebra.Let{Name: "R", Def: r,
		In: algebra.Let{Name: "S", Def: s,
			In: algebra.Let{Name: "T", Def: t, In: u}}}
}

// The algebra's posterior matches Bayes' rule analytically for a grid of
// bags and evidence lengths — exactly via the #P evaluator and within
// FPRAS tolerance via the approximate engine.
func TestCoinBagPosteriorMatchesAnalytic(t *testing.T) {
	bags := []workload.CoinBag{
		{FairCount: 2, BiasedCount: 1, Bias: 1}, // the paper's bag
		{FairCount: 3, BiasedCount: 2, Bias: 0.9},
		{FairCount: 1, BiasedCount: 4, Bias: 0.7},
	}
	for _, bag := range bags {
		for tosses := 1; tosses <= 3; tosses++ {
			bag.Tosses = tosses
			db := bag.Database()
			q := posteriorQuery(tosses)
			analytic := bag.PosteriorFairAllHeads()

			exact, err := algebra.NewURelEvaluator(db).Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			pExact, ok := lookupFair(exact.Rel)
			if !ok {
				t.Fatalf("bag %+v: fair tuple missing", bag)
			}
			if math.Abs(pExact-analytic) > 1e-9 {
				t.Errorf("bag %+v: exact posterior %v, analytic %v", bag, pExact, analytic)
			}

			eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.05, ConfEps: 0.03, ConfDelta: 0.02, Seed: int64(tosses)})
			approx, err := eng.EvalApprox(q)
			if err != nil {
				t.Fatal(err)
			}
			pApprox, ok := lookupFair(approx.Rel)
			if !ok {
				t.Fatalf("bag %+v: approximate fair tuple missing", bag)
			}
			// The ratio of two ε=3% estimates is within ~3·ε of the truth
			// with high probability.
			if math.Abs(pApprox-analytic) > 0.1*analytic+0.01 {
				t.Errorf("bag %+v: approx posterior %v, analytic %v", bag, pApprox, analytic)
			}
		}
	}
}

func lookupFair(r *urel.Relation) (float64, bool) {
	out := urel.Poss(r)
	for _, tp := range out.Tuples() {
		if out.Value(tp, "CoinType").AsString() == "fair" {
			return out.Value(tp, "P").AsFloat(), true
		}
	}
	return 0, false
}
