package core

import (
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// gridDB builds a relation whose single data tuple carries an nx·ny-clause
// DNF lineage: clause (i,j) asserts x_i = 0 ∧ y_j = 0 over nx+ny shared
// binary variables. Shared variables keep vars(F) small (so per-trial cost
// is dominated by clause sampling and the minimality scan, as in the
// paper's hard instances) while the clause count — the FPRAS's m = O(|F|)
// driver — is large.
func gridDB(nx, ny int) *urel.Database {
	db := urel.NewDatabase()
	xs := make([]vars.Var, nx)
	ys := make([]vars.Var, ny)
	for i := range xs {
		xs[i] = db.Vars.Add("x"+strconv.Itoa(i), []float64{0.05, 0.95}, nil)
	}
	for j := range ys {
		ys[j] = db.Vars.Add("y"+strconv.Itoa(j), []float64{0.05, 0.95}, nil)
	}
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i := range xs {
		for j := range ys {
			r.Add(vars.MustAssignment(
				vars.Binding{Var: xs[i], Alt: 0},
				vars.Binding{Var: ys[j], Alt: 0},
			), rel.Tuple{rel.Int(0)})
		}
	}
	db.AddURelation("R", r, false)
	return db
}

// BenchmarkConfParallel measures the parallel confidence engine on a
// single tuple with a 10,000-clause DNF lineage — the shape where one
// heavy tuple must be split across workers (chunk-level parallelism, not
// just tuple-level). The round cap fixes the trial budget so all worker
// counts do identical work; on multi-core hardware workers=4 should run
// ≥ 2× faster than workers=1 (on a single-core machine the variants tie).
func BenchmarkConfParallel(b *testing.B) {
	db := gridDB(100, 100)
	q := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
	for _, w := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			eng := NewEngine(db, Options{
				Eps0: 0.05, Delta: 0.1, Seed: 1, Workers: w,
				InitialRounds: 8, MaxRounds: 8,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvalApprox(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConfManyTuples measures tuple-level fan-out: 512 independent
// tuples with small multi-clause lineages, the common shape of conf over a
// repair-key query.
func BenchmarkConfManyTuples(b *testing.B) {
	db := clusterDB(512, 4)
	q := algebra.Conf{In: algebra.Base{Name: "R"}}
	for _, w := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			eng := NewEngine(db, Options{
				Eps0: 0.1, Delta: 0.1, ConfEps: 0.1, ConfDelta: 0.1,
				Seed: 1, Workers: w,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvalApprox(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
