package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/predapprox"
	"repro/internal/urel"
	"repro/internal/workload"
)

// ablationQuery is the standard σ̂ workload the ablation benchmarks run.
func ablationQuery() algebra.Query {
	return algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
}

// The singleton short-circuit changes cost, never results: on a
// tuple-independent database both settings select the same tuples.
func TestAblationSingletonShortcutSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	probs := workload.UniformProbs(rng, 6, 0.05, 0.95)
	// Keep probabilities away from the 0.5 threshold for stable selection.
	for i := range probs {
		if probs[i] > 0.35 && probs[i] < 0.65 {
			probs[i] = 0.8
		}
	}
	db := workload.TupleIndependent("R", probs)
	q := ablationQuery()
	base, err := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 4}).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 4, NoSingletonShortcut: true}).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if !urel.Poss(base.Rel).Project("ID").Equal(urel.Poss(abl.Rel).Project("ID")) {
		t.Error("ablation changed σ̂ membership")
	}
	// The shortcut makes singleton confidences free; the ablation runs
	// real estimator trials.
	if base.Stats.EstimatorTrials != 0 {
		t.Errorf("shortcut run should use 0 trials on singleton lineages, used %d", base.Stats.EstimatorTrials)
	}
	if abl.Stats.EstimatorTrials == 0 {
		t.Error("ablation run should have spent estimator trials")
	}
}

// Independent bounds are sharper: the run reaches δ in at most as many
// rounds as the union bound (equal only for single-argument predicates
// where the two coincide).
func TestAblationIndependentBoundsTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := workload.MultiClause(rng, "R", 2, 3, 4, 2)
	q := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}, {Attrs: nil}},
		Pred: predapprox.Linear([]float64{1, -0.3}, 0),
	}
	union, err := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 2}).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 2, IndependentBounds: true}).EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if indep.Stats.FinalRounds > union.Stats.FinalRounds {
		t.Errorf("independent bounds needed more rounds (%d) than union (%d)",
			indep.Stats.FinalRounds, union.Stats.FinalRounds)
	}
	if indep.MaxNonSingularError() > 0.1+1e-9 {
		t.Errorf("independent bound %v above δ", indep.MaxNonSingularError())
	}
}

func BenchmarkSigmaHatSingletonShortcut(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := workload.TupleIndependent("R", workload.UniformProbs(rng, 32, 0.05, 0.95))
	q := ablationQuery()
	b.Run("shortcut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: int64(i)})
			if _, err := eng.EvalApprox(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ablated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: int64(i), NoSingletonShortcut: true})
			if _, err := eng.EvalApprox(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSigmaHatBoundCombination(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := workload.MultiClause(rng, "R", 4, 3, 4, 2)
	q := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}, {Attrs: nil}},
		Pred: predapprox.Linear([]float64{1, -0.3}, 0),
	}
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: int64(i)})
			if _, err := eng.EvalApprox(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: int64(i), IndependentBounds: true})
			if _, err := eng.EvalApprox(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
