package core

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// multiClauseDB builds R(ID) with n tuples of two-clause lineage
// p = 1 − (1−a)² each.
func multiClauseDB(n int, a float64) *urel.Database {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i := 0; i < n; i++ {
		x := db.Vars.Add("x"+strconv.Itoa(i), []float64{a, 1 - a}, nil)
		y := db.Vars.Add("y"+strconv.Itoa(i), []float64{a, 1 - a}, nil)
		r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
		r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
	}
	db.AddURelation("R", r, false)
	return db
}

// Lemma 6.4(2) path: conf applied above σ̂ — the conf tuples inherit the
// unreliability of their σ̂ provenance.
func TestConfOverApproxSelectPropagatesErrors(t *testing.T) {
	db := multiClauseDB(3, 0.8) // p = 0.96 per tuple, threshold 0.5
	q := algebra.Conf{
		In: algebra.Project{
			In: algebra.ApproxSelect{
				In:   algebra.Base{Name: "R"},
				Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
				Pred: predapprox.Linear([]float64{1}, 0.5),
			},
			Targets: []expr.Target{expr.Keep("ID")},
		},
		As: "PC",
	}
	eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 17, InitialRounds: 64, MaxRounds: 64})
	res, err := eng.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Error("conf output must be complete")
	}
	out := urel.Poss(res.Rel)
	if out.Len() != 3 {
		t.Fatalf("conf rows = %d, want 3", out.Len())
	}
	// σ̂ output is complete, so conf over it gives P = 1 per surviving
	// tuple; the interesting part is the inherited error bound.
	anyErr := false
	for _, tp := range out.Tuples() {
		if p := out.Value(tp, "PC").AsFloat(); math.Abs(p-1) > 1e-12 {
			t.Errorf("conf of complete tuple = %v, want 1", p)
		}
		if res.TupleError(tp) > 0 {
			anyErr = true
		}
	}
	if !anyErr {
		t.Error("conf tuples should inherit σ̂ unreliability bounds")
	}
}

// Poss and Cert above σ̂ keep the unreliability maps keyed correctly.
func TestPossCertOverApproxSelect(t *testing.T) {
	db := multiClauseDB(2, 0.8)
	shat := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
	eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.1, Seed: 5, InitialRounds: 64, MaxRounds: 64})
	poss, err := eng.EvalApprox(algebra.Poss{In: shat})
	if err != nil {
		t.Fatal(err)
	}
	if poss.Rel.Len() != 2 || !poss.Complete {
		t.Errorf("poss over σ̂: len=%d complete=%v", poss.Rel.Len(), poss.Complete)
	}
	if poss.Errors.Max() == 0 {
		t.Error("poss should carry σ̂ bounds")
	}
	cert, err := eng.EvalApprox(algebra.Cert{In: shat})
	if err != nil {
		t.Fatal(err)
	}
	// σ̂ output is complete, so all its tuples are certain.
	if cert.Rel.Len() != 2 {
		t.Errorf("cert over σ̂: len=%d, want 2", cert.Rel.Len())
	}
}

// Select and Join over σ̂ outputs preserve per-tuple bounds per the ≺
// rules.
func TestSelectJoinOverApproxSelect(t *testing.T) {
	db := multiClauseDB(4, 0.8)
	shat := algebra.ApproxSelect{
		In:   algebra.Base{Name: "R"},
		Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
	opts := Options{Eps0: 0.05, Delta: 0.2, Seed: 8, InitialRounds: 64, MaxRounds: 64}

	base, err := NewEngine(db, opts).EvalApprox(shat)
	if err != nil {
		t.Fatal(err)
	}
	sel := algebra.Select{In: shat, Pred: expr.Le(expr.A("ID"), expr.CInt(1))}
	selRes, err := NewEngine(db, opts).EvalApprox(sel)
	if err != nil {
		t.Fatal(err)
	}
	if selRes.Rel.Len() != 2 {
		t.Fatalf("selection kept %d tuples, want 2", selRes.Rel.Len())
	}
	// Same seed and rounds → identical estimates, so the surviving
	// tuples' bounds match the unfiltered run's.
	for _, ut := range selRes.Rel.Tuples() {
		if math.Abs(selRes.TupleError(ut.Row)-base.TupleError(ut.Row)) > 1e-12 {
			t.Errorf("selection changed bound for %v", ut.Row)
		}
	}

	// Join of the σ̂ output with a complete relation adds bounds (the
	// complete side contributes 0).
	names := rel.FromRows(rel.NewSchema("ID", "Label"),
		rel.Tuple{rel.Int(0), rel.String("a")},
		rel.Tuple{rel.Int(1), rel.String("b")},
	)
	db2 := multiClauseDB(4, 0.8)
	db2.AddComplete("Names", names)
	join := algebra.Join{L: shat, R: algebra.Base{Name: "Names"}}
	joinRes, err := NewEngine(db2, opts).EvalApprox(join)
	if err != nil {
		t.Fatal(err)
	}
	if joinRes.Rel.Len() != 2 {
		t.Fatalf("join kept %d tuples, want 2", joinRes.Rel.Len())
	}
	for _, ut := range joinRes.Rel.Tuples() {
		if joinRes.TupleError(ut.Row) <= 0 {
			t.Errorf("join output lost σ̂ bound for %v", ut.Row)
		}
	}
}

// DiffC over unreliable complete relations uses the conservative bound.
func TestDiffOverApproxSelect(t *testing.T) {
	db := multiClauseDB(3, 0.8)
	shat := algebra.Project{
		In: algebra.ApproxSelect{
			In:   algebra.Base{Name: "R"},
			Args: []algebra.ConfArg{{Attrs: []string{"ID"}}},
			Pred: predapprox.Linear([]float64{1}, 0.5),
		},
		Targets: []expr.Target{expr.Keep("ID")},
	}
	keep := rel.FromRows(rel.NewSchema("ID"), rel.Tuple{rel.Int(0)})
	db.AddComplete("Drop", keep)
	diff := algebra.DiffC{L: shat, R: algebra.Base{Name: "Drop"}}
	eng := NewEngine(db, Options{Eps0: 0.05, Delta: 0.2, Seed: 9, InitialRounds: 64, MaxRounds: 64})
	res, err := eng.EvalApprox(diff)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("diff kept %d tuples, want 2", res.Rel.Len())
	}
	for _, ut := range res.Rel.Tuples() {
		if res.TupleError(ut.Row) <= 0 {
			t.Errorf("diff output lost bound for %v", ut.Row)
		}
	}
}
