package core

import (
	"container/list"
	"math/rand"
	"sync"

	"repro/internal/karpluby"
	"repro/internal/sched"
)

// Cache carries Karp–Luby estimator state across evaluations. Entries are
// keyed by lineage-content fingerprints (see content.go), which are
// identical wherever the same canonical clause set is estimated: across
// the restarts of one doubling loop, across successive EvalApprox calls on
// a long-lived engine, and across different queries that share lineage.
//
// Two reuse modes fall out of the prefix-compatible chunk plans
// (sched.Chunks):
//
//   - exact replay — the cached entry covers exactly the requested budget:
//     the snapshot IS the final count, nothing is sampled.
//   - prefix resume — the requested budget grew: the snapshot's full-chunk
//     prefix seeds the estimator and only the delta chunks are sampled.
//
// Full-size chunks enter the resumable prefix unconditionally. A budget's
// trailing partial chunk samples a strict prefix of its chunk stream;
// under a larger budget that same chunk index draws more trials from the
// same stream. Its counts are carried over together with the live PRNG
// that sampled them (karpluby.State's Partial fields): the next run
// completes the chunk by continuing the saved stream from exactly where
// it stopped, so no cached trial is ever re-sampled and the merged counts
// stay bit-identical to a from-scratch run.
//
// Entries are keyed by (content, engine seed): counts sampled under one
// seed scheme are useless to another, and clients of a shared engine may
// pick different seeds without evicting each other's snapshots. Guard
// fields (clause count, chunk size, seed) are additionally cross-checked
// on every hit: a fingerprint collision must degrade to a miss, never
// corrupt an estimate.
//
// The cache is size-bounded: with maxEntries > 0, least-recently-used
// entries are evicted once the bound is exceeded. Eviction only ever costs
// future reuse — a missing entry means sampling from scratch, which is
// always correct.
//
// A Cache is safe for concurrent use: it is written by pool workers (the
// worker that merges a task's last chunk publishes the task's new state),
// read during plan construction, and — when owned by a long-lived engine —
// shared by any number of concurrent evaluations.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	m          map[cacheKey]*list.Element
	lru        list.List // front = most recently used

	hits, misses, evictions int64
}

// cacheKey is the cache's map key: the lineage-content fingerprint plus
// the engine seed the counts were sampled under.
type cacheKey struct {
	content contentKey
	seed    int64
}

// cacheEntry is one task's cached estimation state.
type cacheEntry struct {
	key       cacheKey
	clauses   int   // |F| after dedup — guard against fingerprint collisions
	chunkSize int64 // chunk plan granularity (chunkTrials(clauses))
	seed      int64 // engine seed the counts were sampled under

	// Full coverage of the last completed budget: hits over exactly
	// total trials.
	total int64
	hits  int64

	// Resumable prefix: counts restricted to the plan's full-size chunks
	// [0, fullChunks), i.e. the first fullChunks·chunkSize trials.
	fullChunks int
	fullHits   int64

	// Trailing partial chunk (plan index fullChunks), when the budget was
	// not chunk-aligned: its counts and the live PRNG positioned right
	// after its last sampled trial, for mid-chunk continuation.
	partialHits   int64
	partialTrials int64
	partialRNG    *rand.Rand
}

// NewCache returns an empty estimator cache holding at most maxEntries
// tasks (maxEntries <= 0 means unbounded — the per-call configuration,
// where the cache lives only as long as one doubling loop).
func NewCache(maxEntries int) *Cache {
	return &Cache{maxEntries: maxEntries, m: make(map[cacheKey]*list.Element)}
}

// CacheStats is a point-in-time snapshot of a cache's effectiveness.
type CacheStats struct {
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// Cap returns the configured entry bound (0 means unbounded). It lets
// operators alert on cache pressure: Entries at Cap with a rising
// eviction count means the working set no longer fits.
func (c *Cache) Cap() int { return c.maxEntries }

// Stats returns the cache's current statistics.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.m), Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// lookup returns a resumable snapshot for the task, if one exists, along
// with how many trials of the requested budget it already covers. The
// guard fields (clause count, chunk size, seed) must match the cached
// entry exactly — a mismatch means a fingerprint collision or a different
// sampling scheme, and the cache refuses rather than corrupt the estimate.
//
// A mid-chunk tail is handed out with *ownership*: the entry's partial
// fields are cleared under the lock, because the scheduler will advance
// the returned PRNG in place. If the batch then aborts before store()
// republishes the grown state, the entry has simply degraded to its
// full-chunk prefix — still valid — rather than silently pairing stale
// partial counts with an advanced PRNG. (The normal path re-stores the
// new tail when the job's last chunk merges.)
func (c *Cache) lookup(key contentKey, clauses int, chunkSize, total, seed int64) (karpluby.State, bool) {
	c.mu.Lock()
	var st karpluby.State
	var ok bool
	if el, found := c.m[cacheKey{content: key, seed: seed}]; found {
		e := el.Value.(*cacheEntry)
		st, ok = resumeState(*e, clauses, chunkSize, total, seed)
		if st.PartialRNG != nil {
			// The tail leaves with this caller (who will advance the PRNG
			// in place); refused or tail-less lookups leave the entry —
			// and its resumable tail — untouched.
			e.partialHits, e.partialTrials, e.partialRNG = 0, 0, nil
		}
		c.lru.MoveToFront(el)
	}
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return st, ok
}

// resumeState classifies a cached entry against a requested budget.
func resumeState(e cacheEntry, clauses int, chunkSize, total, seed int64) (karpluby.State, bool) {
	if e.clauses != clauses || e.chunkSize != chunkSize || e.seed != seed {
		return karpluby.State{}, false
	}
	if e.total == total {
		// Exact replay: the identical budget was already spent under the
		// identical seeds. Trials == total tells the caller nothing is
		// left to sample; the cursor still marks only the full-chunk
		// boundary, and the partial fields stay unset — there is no chunk
		// left to continue.
		return karpluby.State{Hits: e.hits, Trials: e.total, Chunks: e.fullChunks}, true
	}
	covered := int64(e.fullChunks) * chunkSize
	if covered+e.partialTrials > total {
		// The cached budget overlaps the requested plan's trailing partial
		// chunk beyond its end (the cached budget is larger and not
		// chunk-aligned against the request): a bit-identical resume is
		// impossible without per-chunk counts; refuse rather than
		// mis-resume.
		return karpluby.State{}, false
	}
	if e.fullChunks == 0 && e.partialRNG == nil {
		return karpluby.State{}, false
	}
	st := karpluby.State{Hits: e.fullHits, Trials: covered, Chunks: e.fullChunks}
	if e.partialRNG != nil {
		// Mid-chunk continuation: the partial chunk's counts join the
		// resumed totals, and the saved PRNG lets the scheduler complete
		// that chunk's stream instead of re-sampling its prefix.
		st.Hits += e.partialHits
		st.Trials += e.partialTrials
		st.PartialHits = e.partialHits
		st.PartialTrials = e.partialTrials
		st.PartialRNG = e.partialRNG
	}
	return st, true
}

// store publishes a task's state after its budget completed. partialHits
// and partialTrials are the counts contributed by the budget's trailing
// partial chunk (zero when the budget is chunk-aligned) and partialRNG is
// the PRNG that sampled it, positioned right after its last trial;
// subtracting the partial counts yields the full-chunk prefix, and the
// PRNG lets the next, larger budget continue the partial chunk mid-stream.
// Entries only ever grow: a stale store (smaller budget than what is
// cached) is dropped, which keeps the cache monotone even if callers
// race. (Stores under different engine seeds land in different entries —
// the seed is part of the map key.)
func (c *Cache) store(key contentKey, clauses int, chunkSize, total, hits, partialHits, partialTrials int64, partialRNG *rand.Rand, seed int64) {
	mk := cacheKey{content: key, seed: seed}
	entry := &cacheEntry{
		key:           mk,
		clauses:       clauses,
		chunkSize:     chunkSize,
		seed:          seed,
		total:         total,
		hits:          hits,
		fullChunks:    sched.FullChunks(total, chunkSize),
		fullHits:      hits - partialHits,
		partialHits:   partialHits,
		partialTrials: partialTrials,
		partialRNG:    partialRNG,
	}
	c.mu.Lock()
	if el, ok := c.m[mk]; ok {
		prev := el.Value.(*cacheEntry)
		if prev.total >= total {
			// Stale: a larger budget is already cached.
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return
		}
		el.Value = entry
		c.lru.MoveToFront(el)
	} else {
		c.m[mk] = c.lru.PushFront(entry)
		for c.maxEntries > 0 && len(c.m) > c.maxEntries {
			back := c.lru.Back()
			delete(c.m, back.Value.(*cacheEntry).key)
			c.lru.Remove(back)
			c.evictions++
		}
	}
	c.mu.Unlock()
}

// len reports the number of cached tasks (test hook).
func (c *Cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
