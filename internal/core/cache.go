package core

import (
	"math/rand"
	"sync"

	"repro/internal/karpluby"
	"repro/internal/sched"
)

// estimatorCache carries Karp–Luby estimator state across the restarts of
// one EvalApprox doubling loop. Entries are keyed by the stable task key
// (operator evaluation index + lineage row key), which PR 1's determinism
// contract makes identical from restart to restart: the exact algebra is
// deterministic, so a task key always names the same clause set, the same
// task seed, and the same chunk plan family.
//
// Two reuse modes fall out of the prefix-compatible chunk plans
// (sched.Chunks):
//
//   - exact replay — the cached entry covers exactly the requested budget
//     (conf operators re-evaluated on a restart re-request the same (ε,δ)
//     budget): the snapshot IS the final count, nothing is sampled.
//   - prefix resume — the requested budget grew (σ̂'s round budget
//     doubles each restart): the snapshot's full-chunk prefix seeds the
//     estimator and only the delta chunks are sampled.
//
// Full-size chunks enter the resumable prefix unconditionally. A budget's
// trailing partial chunk samples a strict prefix of its chunk stream;
// under a larger budget that same chunk index draws more trials from the
// same stream. Its counts are carried over together with the live PRNG
// that sampled them (karpluby.State's Partial fields): the next restart
// completes the chunk by continuing the saved stream from exactly where
// it stopped, so no trial of a previous restart is ever re-sampled and
// the merged counts stay bit-identical to a from-scratch run.
//
// The cache is written concurrently by pool workers (the worker that
// merges a task's last chunk publishes the task's new state) and read
// sequentially during plan construction, so all access goes through a
// mutex.
type estimatorCache struct {
	mu sync.Mutex
	m  map[string]estCacheEntry
}

// estCacheEntry is one task's cached estimation state.
type estCacheEntry struct {
	clauses   int   // |F| after dedup — sanity check for key stability
	chunkSize int64 // chunk plan granularity (chunkTrials(clauses))

	// Full coverage of the last completed budget: hits over exactly
	// total trials.
	total int64
	hits  int64

	// Resumable prefix: counts restricted to the plan's full-size chunks
	// [0, fullChunks), i.e. the first fullChunks·chunkSize trials.
	fullChunks int
	fullHits   int64

	// Trailing partial chunk (plan index fullChunks), when the budget was
	// not chunk-aligned: its counts and the live PRNG positioned right
	// after its last sampled trial, for mid-chunk continuation.
	partialHits   int64
	partialTrials int64
	partialRNG    *rand.Rand
}

func newEstimatorCache() *estimatorCache {
	return &estimatorCache{m: map[string]estCacheEntry{}}
}

// lookup returns a resumable snapshot for the task, if one exists, along
// with how many trials of the requested budget it already covers. The
// clause count and chunk size must match the cached entry exactly — a
// mismatch means the task key is not stable (a bug elsewhere), and the
// cache refuses rather than corrupt the estimate.
//
// A mid-chunk tail is handed out with *ownership*: the entry's partial
// fields are cleared under the lock, because the scheduler will advance
// the returned PRNG in place. If the batch then aborts before store()
// republishes the grown state, the entry has simply degraded to its
// full-chunk prefix — still valid — rather than silently pairing stale
// partial counts with an advanced PRNG. (The normal path re-stores the
// new tail when the job's last chunk merges.)
func (c *estimatorCache) lookup(key string, clauses int, chunkSize, total int64) (karpluby.State, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	if ok && e.partialRNG != nil && e.total != total {
		cleared := e
		cleared.partialHits, cleared.partialTrials, cleared.partialRNG = 0, 0, nil
		c.m[key] = cleared
	}
	c.mu.Unlock()
	if !ok || e.clauses != clauses || e.chunkSize != chunkSize {
		return karpluby.State{}, false
	}
	if e.total == total {
		// Exact replay: the identical budget was already spent under the
		// identical seeds. Trials == total tells the caller nothing is
		// left to sample; the cursor still marks only the full-chunk
		// boundary, and the partial fields stay unset — there is no chunk
		// left to continue.
		return karpluby.State{Hits: e.hits, Trials: e.total, Chunks: e.fullChunks}, true
	}
	covered := int64(e.fullChunks) * chunkSize
	if covered+e.partialTrials > total {
		// The cached budget overlaps the requested plan's trailing partial
		// chunk beyond its end — cannot happen for the doubling loop's
		// growing budgets; refuse rather than mis-resume.
		return karpluby.State{}, false
	}
	if e.fullChunks == 0 && e.partialRNG == nil {
		return karpluby.State{}, false
	}
	st := karpluby.State{Hits: e.fullHits, Trials: covered, Chunks: e.fullChunks}
	if e.partialRNG != nil {
		// Mid-chunk continuation: the partial chunk's counts join the
		// resumed totals, and the saved PRNG lets the scheduler complete
		// that chunk's stream instead of re-sampling its prefix.
		st.Hits += e.partialHits
		st.Trials += e.partialTrials
		st.PartialHits = e.partialHits
		st.PartialTrials = e.partialTrials
		st.PartialRNG = e.partialRNG
	}
	return st, true
}

// store publishes a task's state after its budget completed. partialHits
// and partialTrials are the counts contributed by the budget's trailing
// partial chunk (zero when the budget is chunk-aligned) and partialRNG is
// the PRNG that sampled it, positioned right after its last trial;
// subtracting the partial counts yields the full-chunk prefix, and the
// PRNG lets the next, larger budget continue the partial chunk mid-stream.
// Entries only ever grow: a stale store (smaller budget than what is
// cached) is dropped, which keeps the cache monotone even if callers race.
func (c *estimatorCache) store(key string, clauses int, chunkSize, total, hits, partialHits, partialTrials int64, partialRNG *rand.Rand) {
	full := sched.FullChunks(total, chunkSize)
	entry := estCacheEntry{
		clauses:       clauses,
		chunkSize:     chunkSize,
		total:         total,
		hits:          hits,
		fullChunks:    full,
		fullHits:      hits - partialHits,
		partialHits:   partialHits,
		partialTrials: partialTrials,
		partialRNG:    partialRNG,
	}
	c.mu.Lock()
	if prev, ok := c.m[key]; !ok || prev.total < total {
		c.m[key] = entry
	}
	c.mu.Unlock()
}

// len reports the number of cached tasks (test hook).
func (c *estimatorCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
