package core

import (
	"sync"

	"repro/internal/karpluby"
	"repro/internal/sched"
)

// estimatorCache carries Karp–Luby estimator state across the restarts of
// one EvalApprox doubling loop. Entries are keyed by the stable task key
// (operator evaluation index + lineage row key), which PR 1's determinism
// contract makes identical from restart to restart: the exact algebra is
// deterministic, so a task key always names the same clause set, the same
// task seed, and the same chunk plan family.
//
// Two reuse modes fall out of the prefix-compatible chunk plans
// (sched.Chunks):
//
//   - exact replay — the cached entry covers exactly the requested budget
//     (conf operators re-evaluated on a restart re-request the same (ε,δ)
//     budget): the snapshot IS the final count, nothing is sampled.
//   - prefix resume — the requested budget grew (σ̂'s round budget
//     doubles each restart): the snapshot's full-chunk prefix seeds the
//     estimator and only the delta chunks are sampled.
//
// Only full-size chunks enter the resumable prefix. A budget's trailing
// partial chunk samples a strict prefix of its chunk stream; under a
// larger budget that same chunk index draws more trials from the same
// stream, so its counts cannot be carried over without replaying the
// stream. runEstimates therefore records the partial chunk's counts
// separately and the cache subtracts them from the prefix snapshot —
// re-sampling at most one chunk (≤ chunkTrials(k) trials) per task per
// restart, in exchange for bit-identical results.
//
// The cache is written concurrently by pool workers (the worker that
// merges a task's last chunk publishes the task's new state) and read
// sequentially during plan construction, so all access goes through a
// mutex.
type estimatorCache struct {
	mu sync.Mutex
	m  map[string]estCacheEntry
}

// estCacheEntry is one task's cached estimation state.
type estCacheEntry struct {
	clauses   int   // |F| after dedup — sanity check for key stability
	chunkSize int64 // chunk plan granularity (chunkTrials(clauses))

	// Full coverage of the last completed budget: hits over exactly
	// total trials.
	total int64
	hits  int64

	// Resumable prefix: counts restricted to the plan's full-size chunks
	// [0, fullChunks), i.e. the first fullChunks·chunkSize trials.
	fullChunks int
	fullHits   int64
}

func newEstimatorCache() *estimatorCache {
	return &estimatorCache{m: map[string]estCacheEntry{}}
}

// lookup returns a resumable snapshot for the task, if one exists, along
// with how many trials of the requested budget it already covers. The
// clause count and chunk size must match the cached entry exactly — a
// mismatch means the task key is not stable (a bug elsewhere), and the
// cache refuses rather than corrupt the estimate.
func (c *estimatorCache) lookup(key string, clauses int, chunkSize, total int64) (karpluby.State, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if !ok || e.clauses != clauses || e.chunkSize != chunkSize {
		return karpluby.State{}, false
	}
	if e.total == total {
		// Exact replay: the identical budget was already spent under the
		// identical seeds. Trials == total tells the caller nothing is
		// left to sample; the cursor still marks only the full-chunk
		// boundary, since the trailing partial chunk's counts are not
		// extendable to larger budgets.
		return karpluby.State{Hits: e.hits, Trials: e.total, Chunks: e.fullChunks}, true
	}
	if covered := int64(e.fullChunks) * chunkSize; e.fullChunks > 0 && covered <= total {
		return karpluby.State{Hits: e.fullHits, Trials: covered, Chunks: e.fullChunks}, true
	}
	return karpluby.State{}, false
}

// store publishes a task's state after its budget completed. partialHits
// is the hit count contributed by the budget's trailing partial chunk
// (zero when the budget is chunk-aligned); subtracting it yields the
// full-chunk prefix the next, larger budget can resume from. Entries only
// ever grow: a stale store (smaller budget than what is cached) is
// dropped, which keeps the cache monotone even if callers race.
func (c *estimatorCache) store(key string, clauses int, chunkSize, total, hits, partialHits int64) {
	full := sched.FullChunks(total, chunkSize)
	entry := estCacheEntry{
		clauses:    clauses,
		chunkSize:  chunkSize,
		total:      total,
		hits:       hits,
		fullChunks: full,
		fullHits:   hits - partialHits,
	}
	c.mu.Lock()
	if prev, ok := c.m[key]; !ok || prev.total < total {
		c.m[key] = entry
	}
	c.mu.Unlock()
}

// len reports the number of cached tasks (test hook).
func (c *estimatorCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
