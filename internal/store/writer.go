package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/rel"
)

// Writer streams tuples into a pdbstore file. Rows arrive row-major but the
// file is column-major, so each column accumulates in its own temp file
// (with an incremental CRC) and Close concatenates them, appends the
// dictionary and footer, and atomically renames the result into place. RAM
// use is O(columns + distinct strings) regardless of row count, which is
// what lets internal/workload generate 10⁸-tuple relations directly to
// disk.
type Writer struct {
	path   string
	schema rel.Schema
	rows   uint64

	cols []*colWriter

	dict    map[string]uint64 // string -> dictionary index
	dictOrd []string          // index -> string, insertion order

	closed bool
}

// colWriter buffers one column segment in a temp file.
type colWriter struct {
	f   *os.File
	buf *bufio.Writer
	crc uint32
}

// NewWriter creates a writer that will produce path on Close. The temp
// files live next to path so the final rename stays on one filesystem.
func NewWriter(path string, schema rel.Schema) (*Writer, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("store: cannot write a relation with an empty schema")
	}
	w := &Writer{
		path:   path,
		schema: schema.Clone(),
		dict:   make(map[string]uint64),
	}
	dir := filepath.Dir(path)
	for range schema {
		f, err := os.CreateTemp(dir, ".pdbstore-col-*")
		if err != nil {
			w.Abort()
			return nil, err
		}
		w.cols = append(w.cols, &colWriter{f: f, buf: bufio.NewWriterSize(f, 1<<16)})
	}
	return w, nil
}

// Write appends one row. The tuple arity must match the schema.
func (w *Writer) Write(t rel.Tuple) error {
	if len(t) != len(w.schema) {
		return fmt.Errorf("store: tuple arity %d does not match schema of %d columns", len(t), len(w.schema))
	}
	var e [entrySize]byte
	for i, v := range t {
		tag, payload := valueEntry(v, w.intern)
		encodeEntry(&e, tag, payload)
		c := w.cols[i]
		if _, err := c.buf.Write(e[:]); err != nil {
			return err
		}
		c.crc = crc32.Update(c.crc, crc32.IEEETable, e[:])
	}
	w.rows++
	return nil
}

func (w *Writer) intern(s string) uint64 {
	if i, ok := w.dict[s]; ok {
		return i
	}
	i := uint64(len(w.dictOrd))
	w.dict[s] = i
	w.dictOrd = append(w.dictOrd, s)
	return i
}

// Close assembles the final file and renames it into place. The writer is
// unusable afterwards whether or not Close succeeds.
func (w *Writer) Close() (err error) {
	if w.closed {
		return fmt.Errorf("store: writer for %q already closed", w.path)
	}
	w.closed = true
	defer w.cleanup()

	out, err := os.CreateTemp(filepath.Dir(w.path), ".pdbstore-out-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			out.Close()
			os.Remove(out.Name())
		}
	}()

	bw := bufio.NewWriterSize(out, 1<<16)
	if _, err = bw.WriteString(Magic); err != nil {
		return err
	}
	off := uint64(len(Magic))

	ft := &footer{version: Version, rows: w.rows}
	for i, c := range w.cols {
		if err = c.buf.Flush(); err != nil {
			return err
		}
		if _, err = c.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		n, cerr := io.Copy(bw, c.f)
		if cerr != nil {
			return cerr
		}
		ft.cols = append(ft.cols, colMeta{
			name: w.schema[i],
			off:  off,
			len:  uint64(n),
			crc:  c.crc,
		})
		off += uint64(n)
	}

	var dictBuf []byte
	for _, s := range w.dictOrd {
		dictBuf = binary.AppendUvarint(dictBuf, uint64(len(s)))
		dictBuf = append(dictBuf, s...)
	}
	if _, err = bw.Write(dictBuf); err != nil {
		return err
	}
	ft.dictOff = off
	ft.dictLen = uint64(len(dictBuf))
	ft.dictN = uint64(len(w.dictOrd))
	ft.dictCRC = crc32.ChecksumIEEE(dictBuf)
	off += ft.dictLen

	fb := encodeFooter(ft)
	if _, err = bw.Write(fb); err != nil {
		return err
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], off)
	binary.LittleEndian.PutUint64(tr[8:16], uint64(len(fb)))
	binary.LittleEndian.PutUint32(tr[16:20], crc32.ChecksumIEEE(fb))
	copy(tr[20:28], MagicEnd)
	if _, err = bw.Write(tr[:]); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = out.Sync(); err != nil {
		return err
	}
	if err = out.Close(); err != nil {
		return err
	}
	return os.Rename(out.Name(), w.path)
}

// Abort discards everything without producing the output file. Safe to
// call after Close (it is then a no-op).
func (w *Writer) Abort() {
	w.closed = true
	w.cleanup()
}

func (w *Writer) cleanup() {
	for _, c := range w.cols {
		if c.f != nil {
			c.f.Close()
			os.Remove(c.f.Name())
			c.f = nil
		}
	}
}

// WriteRelation writes r to path in one call, preserving tuple insertion
// order (so a later Reader.Relation reproduces r exactly).
func WriteRelation(path string, r *rel.Relation) error {
	w, err := NewWriter(path, r.Schema())
	if err != nil {
		return err
	}
	for _, t := range r.Tuples() {
		if err := w.Write(t); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}
