package store

import (
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rel"
)

func sampleRelation(t *testing.T) *rel.Relation {
	t.Helper()
	r := rel.NewRelation(rel.NewSchema("id", "name", "score", "ok", "note"))
	rows := []rel.Tuple{
		{rel.Int(1), rel.String("alice"), rel.Float(0.5), rel.Bool(true), rel.Null()},
		{rel.Int(2), rel.String("bob"), rel.Float(-1.25), rel.Bool(false), rel.String("x|y")},
		{rel.Int(-3), rel.String("alice"), rel.Float(math.Inf(1)), rel.Bool(true), rel.String("")},
		{rel.Int(math.MaxInt64), rel.String("κ"), rel.Float(math.Copysign(0, -1)), rel.Bool(false), rel.Null()},
		{rel.Int(math.MinInt64), rel.String("bob"), rel.Float(1e-308), rel.Bool(true), rel.String("alice")},
	}
	for _, row := range rows {
		r.Add(row)
	}
	return r
}

// requireSameRelation asserts schema, row order, and bit-level value
// identity (stricter than rel.Equal, which is order-insensitive and
// numerically tolerant).
func requireSameRelation(t *testing.T, got, want *rel.Relation) {
	t.Helper()
	if !got.Schema().Equal(want.Schema()) {
		t.Fatalf("schema = %v, want %v", got.Schema(), want.Schema())
	}
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	gt, wt := got.Tuples(), want.Tuples()
	for i := range wt {
		for j := range wt[i] {
			g, w := gt[i][j], wt[i][j]
			if g.Kind() != w.Kind() {
				t.Fatalf("row %d col %d: kind %v, want %v", i, j, g.Kind(), w.Kind())
			}
			if g.Kind() == rel.FloatKind {
				if math.Float64bits(g.AsFloat()) != math.Float64bits(w.AsFloat()) {
					t.Fatalf("row %d col %d: float bits %x, want %x", i, j,
						math.Float64bits(g.AsFloat()), math.Float64bits(w.AsFloat()))
				}
				continue
			}
			if !rel.Equal(g, w) {
				t.Fatalf("row %d col %d: %v, want %v", i, j, g, w)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleRelation(t)
	path := filepath.Join(t.TempDir(), "sample.pdbs")
	if err := WriteRelation(path, want); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	got, err := ReadRelation(path, rel.NewInterner())
	if err != nil {
		t.Fatalf("ReadRelation: %v", err)
	}
	requireSameRelation(t, got, want)
}

func TestRoundTripNaN(t *testing.T) {
	// NaN payloads must survive bit-exactly, including non-canonical ones.
	weirdNaN := math.Float64frombits(0x7ff8000000000fff)
	r := rel.NewRelation(rel.NewSchema("x", "y"))
	r.Add(rel.Tuple{rel.Float(math.NaN()), rel.Int(1)})
	r.Add(rel.Tuple{rel.Float(weirdNaN), rel.Int(2)})

	path := filepath.Join(t.TempDir(), "nan.pdbs")
	if err := WriteRelation(path, r); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	got, err := ReadRelation(path, nil)
	if err != nil {
		t.Fatalf("ReadRelation: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d, want 2", got.Len())
	}
	if bits := math.Float64bits(got.Tuples()[1][0].AsFloat()); bits != 0x7ff8000000000fff {
		t.Fatalf("NaN payload = %x, want 7ff8000000000fff", bits)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	want := rel.NewRelation(rel.NewSchema("a", "b"))
	path := filepath.Join(t.TempDir(), "empty.pdbs")
	if err := WriteRelation(path, want); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	got, err := ReadRelation(path, nil)
	if err != nil {
		t.Fatalf("ReadRelation: %v", err)
	}
	requireSameRelation(t, got, want)
}

func TestWriterStreaming(t *testing.T) {
	// Write row by row, confirming the writer needs no materialized
	// relation and dictionary indexes dedup across rows.
	path := filepath.Join(t.TempDir(), "stream.pdbs")
	w, err := NewWriter(path, rel.NewSchema("k", "s"))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	const n = 10_000
	for i := 0; i < n; i++ {
		s := "tag-" + string(rune('a'+i%7))
		if err := w.Write(rel.Tuple{rel.Int(int64(i)), rel.String(s)}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.Rows() != n {
		t.Fatalf("Rows = %d, want %d", r.Rows(), n)
	}
	// Only 7 distinct strings should be in the dictionary.
	dict, err := r.dictionary()
	if err != nil {
		t.Fatalf("dictionary: %v", err)
	}
	if len(dict) != 7 {
		t.Fatalf("dictionary has %d entries, want 7", len(dict))
	}
	// Lazy scan of one column must see every row in order without
	// touching the other column.
	var sum int64
	err = r.ScanColumn(0, func(row int64, v rel.Value) error {
		if v.AsInt() != row {
			t.Fatalf("row %d holds %v", row, v)
		}
		sum += v.AsInt()
		return nil
	})
	if err != nil {
		t.Fatalf("ScanColumn: %v", err)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if r.cols[1] != nil {
		t.Fatal("scanning column 0 materialized column 1")
	}
}

func TestWriterArityMismatch(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "x.pdbs"), rel.NewSchema("a", "b"))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	defer w.Abort()
	if err := w.Write(rel.Tuple{rel.Int(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestWriterAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(filepath.Join(dir, "x.pdbs"), rel.NewSchema("a"))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Write(rel.Tuple{rel.Int(1)}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	w.Abort()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("abort left %d files behind", len(ents))
	}
}

func TestSniff(t *testing.T) {
	dir := t.TempDir()
	pdbs := filepath.Join(dir, "r.pdbs")
	if err := WriteRelation(pdbs, sampleRelation(t)); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	csv := filepath.Join(dir, "r.csv")
	if err := os.WriteFile(csv, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if !Sniff(pdbs) {
		t.Error("Sniff(pdbstore file) = false")
	}
	if Sniff(csv) {
		t.Error("Sniff(csv file) = true")
	}
	if Sniff(filepath.Join(dir, "missing")) {
		t.Error("Sniff(missing file) = true")
	}
}

// TestCorruption flips, truncates, and rewrites bytes all over a valid
// file and requires every damaged variant to fail with ErrFormat (never a
// panic, never silent success) — except flips confined to string bytes
// inside the dictionary, which the dictionary CRC catches.
func TestCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.pdbs")
	if err := WriteRelation(path, sampleRelation(t)); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	load := func(t *testing.T, data []byte) error {
		t.Helper()
		p := filepath.Join(t.TempDir(), "c.pdbs")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		r, err := Open(p)
		if err != nil {
			return err
		}
		defer r.Close()
		_, err = r.Relation(nil)
		return err
	}

	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 1, len(Magic), len(orig) / 2, len(orig) - trailerSize, len(orig) - 1} {
			if err := load(t, orig[:n]); err == nil {
				t.Errorf("truncation to %d bytes accepted", n)
			}
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		// Step through the file so the test stays fast but touches the
		// magic, column data, dictionary, footer, and trailer regions.
		step := len(orig)/97 + 1
		for off := 0; off < len(orig); off += step {
			mut := append([]byte(nil), orig...)
			mut[off] ^= 0x40
			if err := load(t, mut); err == nil {
				t.Errorf("bit flip at offset %d accepted", off)
			} else if !errors.Is(err, ErrFormat) {
				t.Errorf("bit flip at offset %d: error %v does not wrap ErrFormat", off, err)
			}
		}
	})

	t.Run("garbage", func(t *testing.T) {
		if err := load(t, []byte("not a store file at all, but long enough to have a trailer")); err == nil {
			t.Error("garbage accepted")
		}
	})
}

// TestForwardCompat checks the version gate: a file claiming a newer
// minor version than the reader must be rejected with a version message.
func TestForwardCompat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.pdbs")
	if err := WriteRelation(path, sampleRelation(t)); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Locate the footer via the trailer and bump its version field, then
	// refresh the footer CRC so only the version gate can object.
	tr := data[len(data)-trailerSize:]
	footOff := int64(leU64(tr[0:8]))
	footLen := int64(leU64(tr[8:16]))
	data[footOff] = byte(Version + 1)
	data[footOff+1] = byte((Version + 1) >> 8)
	refreshFooterCRC(data, footOff, footLen)

	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, err = Open(path)
	if err == nil {
		t.Fatal("newer-version file accepted")
	}
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("error %v does not wrap ErrFormat", err)
	}
}

func TestTrailingFooterBytesAccepted(t *testing.T) {
	// Minor versions may append footer fields; a version-1 reader must
	// ignore trailing footer bytes it does not understand.
	path := filepath.Join(t.TempDir(), "r.pdbs")
	want := sampleRelation(t)
	if err := WriteRelation(path, want); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	tr := data[len(data)-trailerSize:]
	footOff := int64(leU64(tr[0:8]))
	footLen := int64(leU64(tr[8:16]))
	// Splice 4 extra bytes onto the footer and grow its recorded length.
	ext := append([]byte(nil), data[:footOff+footLen]...)
	ext = append(ext, 0xde, 0xad, 0xbe, 0xef)
	ext = append(ext, data[footOff+footLen:]...)
	newTr := ext[len(ext)-trailerSize:]
	putLeU64(newTr[8:16], uint64(footLen+4))
	refreshFooterCRC(ext, footOff, footLen+4)

	if err := os.WriteFile(path, ext, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadRelation(path, nil)
	if err != nil {
		t.Fatalf("ReadRelation with extended footer: %v", err)
	}
	requireSameRelation(t, got, want)
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// refreshFooterCRC recomputes the trailer's footer checksum after a test
// mutates footer bytes in place.
func refreshFooterCRC(data []byte, footOff, footLen int64) {
	crc := crc32.ChecksumIEEE(data[footOff : footOff+footLen])
	tr := data[len(data)-trailerSize:]
	tr[16] = byte(crc)
	tr[17] = byte(crc >> 8)
	tr[18] = byte(crc >> 16)
	tr[19] = byte(crc >> 24)
}
