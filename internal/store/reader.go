package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/rel"
)

// maxFooterLen caps the footer allocation before its CRC is verified. A
// 64 MiB footer would describe ~10⁶ columns; real footers are a few KiB.
const maxFooterLen = 64 << 20

// Reader provides lazy, column-granular access to a pdbstore file. Open
// reads only the trailer and footer; column segments and the string
// dictionary are fetched and decoded on first use, and cached thereafter.
// A Reader is not safe for concurrent use.
type Reader struct {
	f      *os.File
	size   int64
	ft     *footer
	schema rel.Schema

	cols [][]rel.Value // decoded column cache, nil until first access
	dict []string      // decoded dictionary, nil until first access
}

// Open reads and validates a pdbstore file's trailer and footer. Column
// data is untouched until Column, ScanColumn, or Relation ask for it.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := newReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(f *os.File) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(Magic))+trailerSize {
		return nil, formatErr("file of %d bytes is smaller than magic plus trailer", size)
	}
	var head [len(Magic)]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if string(head[:]) != Magic {
		return nil, formatErr("bad magic %q", head[:])
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, err
	}
	if string(tr[20:28]) != MagicEnd {
		return nil, formatErr("bad end magic %q", tr[20:28])
	}
	footOff := binary.LittleEndian.Uint64(tr[0:8])
	footLen := binary.LittleEndian.Uint64(tr[8:16])
	footCRC := binary.LittleEndian.Uint32(tr[16:20])
	if footLen > maxFooterLen {
		return nil, formatErr("footer of %d bytes exceeds the %d-byte cap", footLen, maxFooterLen)
	}
	if footOff < uint64(len(Magic)) || !segmentInFile(footOff, footLen, size-trailerSize) {
		return nil, formatErr("footer segment [%d, +%d) outside file body", footOff, footLen)
	}
	fb := make([]byte, footLen)
	if _, err := f.ReadAt(fb, int64(footOff)); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(fb); got != footCRC {
		return nil, formatErr("footer checksum mismatch (got %08x, want %08x)", got, footCRC)
	}
	ft, err := decodeFooter(fb, int64(footOff))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ft.cols))
	for i, c := range ft.cols {
		names[i] = c.name
	}
	return &Reader{
		f:      f,
		size:   size,
		ft:     ft,
		schema: rel.NewSchema(names...),
		cols:   make([][]rel.Value, len(ft.cols)),
	}, nil
}

// Close releases the underlying file. Cached columns stay usable.
func (r *Reader) Close() error { return r.f.Close() }

// Schema returns the stored schema in column order.
func (r *Reader) Schema() rel.Schema { return r.schema }

// Rows returns the stored row count.
func (r *Reader) Rows() int64 { return int64(r.ft.rows) }

// dictionary loads and caches the string dictionary.
func (r *Reader) dictionary() ([]string, error) {
	if r.dict != nil || r.ft.dictN == 0 {
		return r.dict, nil
	}
	buf := make([]byte, r.ft.dictLen)
	if _, err := r.f.ReadAt(buf, int64(r.ft.dictOff)); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(buf); got != r.ft.dictCRC {
		return nil, formatErr("dictionary checksum mismatch (got %08x, want %08x)", got, r.ft.dictCRC)
	}
	dict, err := decodeDict(buf, r.ft.dictN)
	if err != nil {
		return nil, err
	}
	r.dict = dict
	return dict, nil
}

// Column decodes and caches column i (0-based, schema order). The
// returned slice is owned by the Reader and must not be modified.
func (r *Reader) Column(i int) ([]rel.Value, error) {
	if i < 0 || i >= len(r.ft.cols) {
		return nil, fmt.Errorf("store: column index %d outside schema of %d columns", i, len(r.ft.cols))
	}
	if r.cols[i] != nil || r.ft.rows == 0 {
		return r.cols[i], nil
	}
	out := make([]rel.Value, 0, r.ft.rows)
	err := r.scan(i, func(_ int64, v rel.Value) error {
		out = append(out, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.cols[i] = out
	return out, nil
}

// ScanColumn streams column i in row order without caching the decoded
// values, calling fn(row, value) for each entry. The segment checksum is
// verified over the whole stream; a mismatch is reported after the last
// callback, so callers that need integrity before acting on values should
// use Column instead.
func (r *Reader) ScanColumn(i int, fn func(row int64, v rel.Value) error) error {
	if i < 0 || i >= len(r.ft.cols) {
		return fmt.Errorf("store: column index %d outside schema of %d columns", i, len(r.ft.cols))
	}
	if cached := r.cols[i]; cached != nil {
		for row, v := range cached {
			if err := fn(int64(row), v); err != nil {
				return err
			}
		}
		return nil
	}
	return r.scan(i, fn)
}

// scan reads column i's segment sequentially, decoding entries and
// verifying the running CRC at the end.
func (r *Reader) scan(i int, fn func(row int64, v rel.Value) error) error {
	c := r.ft.cols[i]
	br := bufio.NewReaderSize(io.NewSectionReader(r.f, int64(c.off), int64(c.len)), 1<<16)
	var e [entrySize]byte
	crc := uint32(0)
	var dict []string
	dictLoaded := false
	for row := int64(0); row < int64(r.ft.rows); row++ {
		if _, err := io.ReadFull(br, e[:]); err != nil {
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, e[:])
		tag, payload := e[0], binary.LittleEndian.Uint64(e[1:])
		if tag == tagString && !dictLoaded {
			d, err := r.dictionary()
			if err != nil {
				return err
			}
			dict, dictLoaded = d, true
		}
		v, err := decodeEntry(tag, payload, dict)
		if err != nil {
			return fmt.Errorf("%w (column %q row %d)", err, c.name, row)
		}
		if err := fn(row, v); err != nil {
			return err
		}
	}
	if crc != c.crc {
		return formatErr("column %q checksum mismatch (got %08x, want %08x)", c.name, crc, c.crc)
	}
	return nil
}

// Relation materializes the full relation in stored row order, so the
// result is bit-identical (schema, tuple order, values) to the relation
// the writer was given. When in is non-nil, string payloads are
// canonicalized through it, matching how the CSV loader builds relations.
func (r *Reader) Relation(in *rel.Interner) (*rel.Relation, error) {
	cols := make([][]rel.Value, len(r.ft.cols))
	for i := range cols {
		c, err := r.Column(i)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	out := rel.NewRelation(r.schema)
	for row := int64(0); row < int64(r.ft.rows); row++ {
		t := make(rel.Tuple, len(cols))
		for i, c := range cols {
			v := c[row]
			if in != nil && v.Kind() == rel.StringKind {
				v = in.Value(v)
			}
			t[i] = v
		}
		out.AddOwned(t)
	}
	return out, nil
}

// ReadRelation opens path and materializes its relation in one call.
func ReadRelation(path string, in *rel.Interner) (*rel.Relation, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Relation(in)
}

// Sniff reports whether path begins with the pdbstore magic. It is how
// `-format auto` distinguishes pdbstore files from CSV without relying on
// file extensions.
func Sniff(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [len(Magic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return string(head[:]) == Magic
}
