// Package store implements pdbstore, the engine's columnar on-disk
// relation format: one file per relation holding fixed-width typed column
// segments, an interned string dictionary, and a versioned footer with
// per-segment offsets and checksums (see docs/STORAGE.md for the byte-level
// specification and compatibility rules).
//
// The layout is mmap-friendly: every column is a contiguous segment of
// fixed 9-byte entries (a type tag plus a 64-bit payload), so value (row,
// column) lives at a computable offset and a reader can map or fetch a
// single column without touching the others. String payloads are indexes
// into the per-relation dictionary, which stores each distinct string once
// — the on-disk mirror of rel.Interner.
//
// Writer streams rows with O(columns) buffering (column segments build in
// temp files that are concatenated on Close), so generating a 10⁸-tuple
// relation needs RAM proportional to the dictionary, not the data. Reader
// opens a file by reading only the fixed-size trailer and the footer;
// column segments decode lazily on first access, and Relation materializes
// the full rel.Relation in row order, bit-identical to the relation the
// writer saw.
package store
