package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rel"
)

// FuzzStore feeds arbitrary bytes to the full open-and-materialize path.
// The decoder must either load a relation or fail with ErrFormat (or an
// I/O error) — never panic, never allocate unboundedly from attacker
// controlled sizes. Wired into `make fuzz`.
func FuzzStore(f *testing.F) {
	// Seed with a valid file so mutations explore near-valid inputs.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.pdbs")
	r := rel.NewRelation(rel.NewSchema("id", "name", "p"))
	r.Add(rel.Tuple{rel.Int(1), rel.String("a"), rel.Float(0.5)})
	r.Add(rel.Tuple{rel.Int(2), rel.String("b"), rel.Null()})
	r.Add(rel.Tuple{rel.Int(3), rel.Bool(true), rel.Float(1)})
	if err := WriteRelation(path, r); err != nil {
		f.Fatalf("seed write: %v", err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatalf("seed read: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Add([]byte(Magic + "xxxxxxxxxxxxxxxxxxxx" + MagicEnd))

	// One scratch file per worker process: a per-exec t.TempDir() costs
	// more than the decoder under test and starves the fuzzer.
	scratch, err := os.CreateTemp("", "pdbstore-fuzz-*")
	if err != nil {
		f.Fatalf("scratch: %v", err)
	}
	scratchPath := scratch.Name()
	scratch.Close()
	f.Cleanup(func() { os.Remove(scratchPath) })

	f.Fuzz(func(t *testing.T, data []byte) {
		p := scratchPath
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		rd, err := Open(p)
		if err != nil {
			if !errors.Is(err, ErrFormat) && !isIOErr(err) {
				t.Fatalf("Open: unexpected error class: %v", err)
			}
			return
		}
		defer rd.Close()
		if _, err := rd.Relation(rel.NewInterner()); err != nil {
			if !errors.Is(err, ErrFormat) && !isIOErr(err) {
				t.Fatalf("Relation: unexpected error class: %v", err)
			}
		}
	})
}

// isIOErr matches read failures that are about the file being short, not
// about format validation (a segment read hitting EOF before validation
// can describe the damage).
func isIOErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}
