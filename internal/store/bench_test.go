package store_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/workload"
)

// benchCorpus generates the sensor-dedup corpus once per benchmark
// process and returns the pdbstore path plus a CSV conversion of it.
func benchCorpus(b *testing.B, rows int64) (pdbs, csv string) {
	b.Helper()
	dir := b.TempDir()
	sc, err := workload.ScenarioByName("sensor-dedup")
	if err != nil {
		b.Fatal(err)
	}
	sources, err := sc.Generate(dir, rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	pdbs = sources["Readings"]
	r, err := store.ReadRelation(pdbs, rel.NewInterner())
	if err != nil {
		b.Fatal(err)
	}
	csv = filepath.Join(dir, "Readings.csv")
	f, err := os.Create(csv)
	if err != nil {
		b.Fatal(err)
	}
	if err := parser.SaveCSV(f, r); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return pdbs, csv
}

// BenchmarkStoreColdLoad measures fully materializing a pdbstore
// relation from a cold Reader — the out-of-core cold-start path.
func BenchmarkStoreColdLoad(b *testing.B) {
	pdbs, _ := benchCorpus(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := store.ReadRelation(pdbs, rel.NewInterner())
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() == 0 {
			b.Fatal("empty relation")
		}
	}
}

// BenchmarkStoreLazyScan measures a single-column streaming aggregate
// over the columnar file — the access pattern the lazy layout exists
// for: one column's bytes move, the other three stay on disk.
func BenchmarkStoreLazyScan(b *testing.B) {
	pdbs, _ := benchCorpus(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := store.Open(pdbs)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		if err := r.ScanColumn(2, func(_ int64, v rel.Value) error { // Value column
			sum += v.AsFloat()
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if sum == 0 {
			b.Fatal("no data scanned")
		}
		r.Close()
	}
}

// BenchmarkCSVLoad is the row-major baseline for the two benchmarks
// above: parsing the same relation from CSV, which always pays for every
// column and re-infers value kinds from text.
func BenchmarkCSVLoad(b *testing.B) {
	_, csv := benchCorpus(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(csv)
		if err != nil {
			b.Fatal(err)
		}
		r, err := parser.LoadCSV(f)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() == 0 {
			b.Fatal("empty relation")
		}
	}
}

// BenchmarkStoreWrite measures streaming generation throughput: rows in,
// columnar file out, dictionary interning included.
func BenchmarkStoreWrite(b *testing.B) {
	dir := b.TempDir()
	schema := rel.NewSchema("ID", "Name", "Score")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("w%d.pdbs", i))
		w, err := store.NewWriter(path, schema)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 50_000; j++ {
			if err := w.Write(rel.Tuple{
				rel.Int(int64(j)),
				rel.String(fmt.Sprintf("n%d", j%100)),
				rel.Float(float64(j) / 3),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		os.Remove(path)
	}
}
