package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/rel"
)

// On-disk constants of pdbstore format version 1. The byte-level layout is
// specified in docs/STORAGE.md; this file is the single place the numbers
// live in code.
const (
	// Magic opens every pdbstore file; MagicEnd closes it (the last 8
	// bytes of the fixed-size trailer). Both carry the major version in
	// their final byte, so a breaking layout change is unreadable — not
	// misread — by old binaries.
	Magic    = "PDBSTOR1"
	MagicEnd = "PDBSEND1"

	// Version is the format's minor version. Readers accept any file whose
	// version is <= the version they were built with (additions are
	// append-only; see docs/STORAGE.md "Forward compatibility").
	Version uint16 = 1

	// entrySize is the fixed width of one column entry: a 1-byte type tag
	// followed by a 64-bit little-endian payload.
	entrySize = 9

	// trailerSize is the fixed-size trailer at the end of the file:
	// footer offset (8) + footer length (8) + footer CRC32 (4) +
	// MagicEnd (8).
	trailerSize = 28
)

// Value tags. They deliberately mirror rel.Kind but are pinned
// independently: rel.Kind is an in-memory enum free to change, the tag
// bytes are a wire contract.
const (
	tagNull   = 0
	tagBool   = 1
	tagInt    = 2
	tagFloat  = 3
	tagString = 4
)

// ErrFormat is wrapped by every error reporting a structurally invalid
// pdbstore file (bad magic, truncated or corrupt footer, checksum
// mismatch, out-of-bounds segment). I/O errors are returned unwrapped.
var ErrFormat = errors.New("invalid pdbstore file")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("store: %w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// encodeEntry writes v's fixed-width entry into e. String values must
// already be resolved to a dictionary index by the caller.
func encodeEntry(e *[entrySize]byte, tag byte, payload uint64) {
	e[0] = tag
	binary.LittleEndian.PutUint64(e[1:], payload)
}

// valueEntry maps a rel.Value onto its (tag, payload) pair, interning
// strings through dict.
func valueEntry(v rel.Value, dict func(string) uint64) (byte, uint64) {
	switch v.Kind() {
	case rel.NullKind:
		return tagNull, 0
	case rel.BoolKind:
		if v.AsBool() {
			return tagBool, 1
		}
		return tagBool, 0
	case rel.IntKind:
		return tagInt, uint64(v.AsInt())
	case rel.FloatKind:
		return tagFloat, math.Float64bits(v.AsFloat())
	default:
		return tagString, dict(v.AsString())
	}
}

// decodeEntry rebuilds a rel.Value from its on-disk entry. The dictionary
// is resolved by the caller (dict may be nil when the column is known to
// hold no strings). Unknown tags are a format error — version 1 defines
// exactly five.
func decodeEntry(tag byte, payload uint64, dict []string) (rel.Value, error) {
	switch tag {
	case tagNull:
		return rel.Null(), nil
	case tagBool:
		return rel.Bool(payload != 0), nil
	case tagInt:
		return rel.Int(int64(payload)), nil
	case tagFloat:
		return rel.Float(math.Float64frombits(payload)), nil
	case tagString:
		if payload >= uint64(len(dict)) {
			return rel.Value{}, formatErr("string index %d outside dictionary of %d entries", payload, len(dict))
		}
		return rel.String(dict[payload]), nil
	default:
		return rel.Value{}, formatErr("unknown value tag %d", tag)
	}
}

// footer is the parsed footer of a pdbstore file.
type footer struct {
	version uint16
	flags   uint16
	rows    uint64
	cols    []colMeta
	dictOff uint64
	dictLen uint64
	dictN   uint64
	dictCRC uint32
}

// colMeta locates one column segment.
type colMeta struct {
	name string
	off  uint64
	len  uint64
	crc  uint32
}

// maxColumns bounds the column count a reader will accept; far above any
// real schema, low enough that a crafted footer cannot force large
// allocations before validation.
const maxColumns = 1 << 16

// encodeFooter renders the footer bytes (excluding the trailer).
func encodeFooter(f *footer) []byte {
	var buf []byte
	var u64 [8]byte
	put16 := func(v uint16) { buf = append(buf, byte(v), byte(v>>8)) }
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u64[:4], v)
		buf = append(buf, u64[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	put16(f.version)
	put16(f.flags)
	put64(f.rows)
	put32(uint32(len(f.cols)))
	for _, c := range f.cols {
		buf = binary.AppendUvarint(buf, uint64(len(c.name)))
		buf = append(buf, c.name...)
		binary.LittleEndian.PutUint64(u64[:], c.off)
		buf = append(buf, u64[:]...)
		binary.LittleEndian.PutUint64(u64[:], c.len)
		buf = append(buf, u64[:]...)
		put32(c.crc)
	}
	put64(f.dictOff)
	put64(f.dictLen)
	put64(f.dictN)
	put32(f.dictCRC)
	return buf
}

// decodeFooter parses and validates footer bytes against the file size.
// Every offset/length is bounds-checked before any size-dependent
// allocation, so a crafted footer fails cleanly instead of forcing large
// reads (this path is fuzzed).
func decodeFooter(buf []byte, fileSize int64) (*footer, error) {
	cur := buf
	take := func(n int) ([]byte, bool) {
		if len(cur) < n {
			return nil, false
		}
		out := cur[:n]
		cur = cur[n:]
		return out, true
	}
	b, ok := take(2)
	if !ok {
		return nil, formatErr("footer truncated")
	}
	f := &footer{version: binary.LittleEndian.Uint16(b)}
	if f.version == 0 || f.version > Version {
		return nil, formatErr("unsupported format version %d (reader supports <= %d)", f.version, Version)
	}
	if b, ok = take(2); !ok {
		return nil, formatErr("footer truncated")
	}
	f.flags = binary.LittleEndian.Uint16(b)
	if f.flags != 0 {
		return nil, formatErr("unknown flag bits %#x (version-1 readers require flags == 0)", f.flags)
	}
	if b, ok = take(8); !ok {
		return nil, formatErr("footer truncated")
	}
	f.rows = binary.LittleEndian.Uint64(b)
	if f.rows > uint64(fileSize)/entrySize && f.rows > 0 {
		// With at least one column, rows*entrySize bytes must exist.
		return nil, formatErr("row count %d impossible for %d-byte file", f.rows, fileSize)
	}
	if b, ok = take(4); !ok {
		return nil, formatErr("footer truncated")
	}
	nCols := binary.LittleEndian.Uint32(b)
	if nCols == 0 || nCols > maxColumns {
		return nil, formatErr("column count %d outside [1, %d]", nCols, maxColumns)
	}
	seen := make(map[string]bool, nCols)
	f.cols = make([]colMeta, 0, min(int(nCols), 64))
	for i := uint32(0); i < nCols; i++ {
		nameLen, n := binary.Uvarint(cur)
		if n <= 0 || nameLen > uint64(len(cur)-n) {
			return nil, formatErr("column %d name truncated", i)
		}
		cur = cur[n:]
		nb, _ := take(int(nameLen))
		name := string(nb)
		if name == "" {
			return nil, formatErr("column %d has an empty name", i)
		}
		if seen[name] {
			return nil, formatErr("duplicate column name %q", name)
		}
		seen[name] = true
		if b, ok = take(20); !ok {
			return nil, formatErr("column %q metadata truncated", name)
		}
		c := colMeta{
			name: name,
			off:  binary.LittleEndian.Uint64(b[0:8]),
			len:  binary.LittleEndian.Uint64(b[8:16]),
			crc:  binary.LittleEndian.Uint32(b[16:20]),
		}
		if c.len != f.rows*entrySize {
			return nil, formatErr("column %q segment is %d bytes, want rows(%d) * %d", name, c.len, f.rows, entrySize)
		}
		if !segmentInFile(c.off, c.len, fileSize) {
			return nil, formatErr("column %q segment [%d, +%d) outside file of %d bytes", name, c.off, c.len, fileSize)
		}
		f.cols = append(f.cols, c)
	}
	if b, ok = take(28); !ok {
		return nil, formatErr("dictionary metadata truncated")
	}
	f.dictOff = binary.LittleEndian.Uint64(b[0:8])
	f.dictLen = binary.LittleEndian.Uint64(b[8:16])
	f.dictN = binary.LittleEndian.Uint64(b[16:24])
	f.dictCRC = binary.LittleEndian.Uint32(b[24:28])
	if !segmentInFile(f.dictOff, f.dictLen, fileSize) {
		return nil, formatErr("dictionary segment [%d, +%d) outside file of %d bytes", f.dictOff, f.dictLen, fileSize)
	}
	// Every dictionary entry takes at least one byte (its length prefix).
	if f.dictN > f.dictLen {
		return nil, formatErr("dictionary claims %d entries in %d bytes", f.dictN, f.dictLen)
	}
	// Trailing footer bytes beyond what this reader parses are allowed:
	// minor versions may append fields (covered by the footer CRC).
	return f, nil
}

// segmentInFile reports whether [off, off+len) lies inside a file of the
// given size without overflowing.
func segmentInFile(off, length uint64, fileSize int64) bool {
	if fileSize < 0 {
		return false
	}
	end := off + length
	return end >= off && end <= uint64(fileSize)
}

// decodeDict parses the dictionary segment: dictN entries of uvarint
// length + bytes.
func decodeDict(buf []byte, n uint64) ([]string, error) {
	out := make([]string, 0, min(int(n), 1<<16))
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(buf)
		if sz <= 0 || l > uint64(len(buf)-sz) {
			return nil, formatErr("dictionary entry %d truncated", i)
		}
		out = append(out, string(buf[sz:sz+int(l)]))
		buf = buf[sz+int(l):]
	}
	if len(buf) != 0 {
		return nil, formatErr("%d trailing bytes after dictionary", len(buf))
	}
	return out, nil
}
