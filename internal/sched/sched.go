// Package sched is the engine's parallel-execution substrate: a fixed-size
// worker pool for CPU-bound fan-out plus the deterministic seed- and
// chunk-derivation scheme that makes parallel Monte-Carlo estimation
// reproducible regardless of worker count.
//
// The design splits every estimation task's trial budget into a chunk plan
// that depends only on the budget and the task's clause count — never on
// the number of workers. Each chunk carries its own PRNG stream, seeded
// from (task seed, chunk index) alone, and chunk results are merged with
// order-independent integer sums. Workers pull chunks from a shared atomic
// cursor ("adaptive budget": fast workers take more chunks instead of
// lock-stepping), so scheduling order varies run to run while the merged
// counts are bit-identical for Workers=1 and Workers=N.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rel"
)

// Pool runs independent tasks across a fixed set of worker goroutines.
// A Pool is stateless between calls and safe for concurrent use.
type Pool struct {
	workers int
}

// New returns a pool of the given size; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), fanning the calls out across
// the pool's workers. Workers pull indices from a shared cursor, so the
// assignment of indices to workers is load-adaptive; fn must therefore not
// depend on which worker runs it. With one worker the calls run in order
// on the calling goroutine (the sequential reference path).
//
// If any call returns an error, remaining unstarted work is abandoned and
// the error with the smallest index among the calls that ran is returned.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return p.ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: every worker checks
// ctx between tasks, so after ctx is cancelled no new task starts and the
// call returns once in-flight tasks finish — cancellation latency is
// bounded by one task, and no worker goroutine outlives the call. When the
// context is cancelled and no task failed first, ctx.Err() is returned.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		first  error
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// Chunk is one slice of a task's trial budget.
type Chunk struct {
	Index int   // position in the task's chunk plan
	N     int64 // trials in this chunk
}

// Chunks splits a trial budget into chunks of the given size (the last
// chunk may be smaller). The plan depends only on (total, size), never on
// worker count — the invariant behind worker-count-independent results.
//
// Plans for nested budgets are prefix-compatible: chunk i covers trials
// [i·size, min((i+1)·size, total)), so every chunk that is full-size in
// the plan for a budget T is bit-for-bit the same chunk (same index, same
// trial count, hence same derived PRNG stream) in the plan for any budget
// T' ≥ T. Only the final, possibly-partial chunk differs between plans —
// the property ChunksFrom and the resume machinery build on.
func Chunks(total, size int64) []Chunk {
	return ChunksFrom(total, size, 0)
}

// ChunksFrom returns the suffix of Chunks(total, size) starting at plan
// index from: the delta chunks a resumed estimation still has to run when
// a snapshot already covers chunks [0, from). Indices are plan indices
// (the first returned chunk has Index == from), so chunk PRNG streams are
// unchanged by resumption. from ≤ 0 yields the full plan; from beyond the
// plan yields nil.
func ChunksFrom(total, size int64, from int) []Chunk {
	if total <= 0 {
		return nil
	}
	if size <= 0 {
		size = total
	}
	if from < 0 {
		from = 0
	}
	rest := (total+size-1)/size - int64(from)
	if rest < 0 {
		rest = 0
	}
	out := make([]Chunk, 0, rest)
	for off := int64(from) * size; off < total; off += size {
		n := size
		if rem := total - off; rem < n {
			n = rem
		}
		out = append(out, Chunk{Index: from + len(out), N: n})
	}
	return out
}

// FullChunks returns the number of full-size chunks in the plan for
// (total, size) — the largest prefix of the plan that is shared with the
// plan of every budget ≥ total, and therefore the chunk cursor a
// resumable snapshot of a finished budget may carry.
func FullChunks(total, size int64) int {
	if total <= 0 {
		return 0
	}
	if size <= 0 {
		return 1
	}
	return int(total / size)
}

// PlanChunks returns the total number of chunks in the plan for
// (total, size), counting a trailing partial chunk.
func PlanChunks(total, size int64) int {
	if total <= 0 {
		return 0
	}
	if size <= 0 {
		return 1
	}
	return int((total + size - 1) / size)
}

// splitmix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"), shared with the relational hashing
// layer (rel.Mix64 is the single implementation). It drives all seed
// derivation below; delegating keeps the derived seed streams unchanged.
func splitmix64(x uint64) uint64 { return rel.Mix64(x) }

// TaskSeed derives a per-task PRNG seed from a base seed (Options.Seed)
// and a task key (e.g. an operator index plus a tuple's lineage key). The
// derivation hashes the key with FNV-1a and mixes it with the base seed,
// so distinct tuples get decorrelated streams while equal (seed, key)
// pairs always yield the same stream.
func TaskSeed(base int64, key string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return int64(splitmix64(uint64(base) ^ h))
}

// TaskSeedWords is TaskSeed for callers whose task identity is already a
// hash (two 64-bit words, e.g. the engine's lineage-content fingerprints)
// rather than a string: it mixes the words into the base seed with the same
// SplitMix64 finalizer. Equal (base, hi, lo) triples always yield the same
// stream; distinct fingerprints get decorrelated streams.
func TaskSeedWords(base int64, hi, lo uint64) int64 {
	return int64(splitmix64(uint64(base) ^ splitmix64(hi) ^ splitmix64(lo+0x9e3779b97f4a7c15)))
}

// ChunkSeed derives the PRNG seed of one chunk of a task from the task
// seed and the chunk's plan index. Because it ignores worker identity,
// a chunk samples the same stream no matter which worker executes it.
func ChunkSeed(taskSeed int64, chunk int) int64 {
	return int64(splitmix64(uint64(taskSeed) + 0x9e3779b97f4a7c15*uint64(chunk+1)))
}
