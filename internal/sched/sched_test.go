package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		p := New(workers)
		n := 1000
		var seen sync.Map
		var count atomic.Int64
		if err := p.ForEach(n, func(i int) error {
			if _, dup := seen.LoadOrStore(i, true); dup {
				t.Errorf("workers=%d: index %d ran twice", workers, i)
			}
			count.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := count.Load(); got != int64(n) {
			t.Errorf("workers=%d: ran %d of %d indices", workers, got, n)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := New(4).ForEach(0, func(int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := New(workers).ForEach(100, func(i int) error {
			if i == 37 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: got %v, want %v", workers, err, boom)
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 || New(-3).Workers() < 1 {
		t.Error("non-positive worker counts must clamp to >= 1")
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("Workers() = %d, want 7", got)
	}
}

func TestChunksPlan(t *testing.T) {
	cases := []struct {
		total, size int64
		want        []int64
	}{
		{0, 10, nil},
		{-5, 10, nil},
		{10, 10, []int64{10}},
		{10, 0, []int64{10}},
		{25, 10, []int64{10, 10, 5}},
		{30, 10, []int64{10, 10, 10}},
		{3, 10, []int64{3}},
	}
	for _, c := range cases {
		got := Chunks(c.total, c.size)
		if len(got) != len(c.want) {
			t.Errorf("Chunks(%d,%d) = %v, want sizes %v", c.total, c.size, got, c.want)
			continue
		}
		var sum int64
		for i, ch := range got {
			if ch.Index != i {
				t.Errorf("Chunks(%d,%d)[%d].Index = %d", c.total, c.size, i, ch.Index)
			}
			if ch.N != c.want[i] {
				t.Errorf("Chunks(%d,%d)[%d].N = %d, want %d", c.total, c.size, i, ch.N, c.want[i])
			}
			sum += ch.N
		}
		if c.total > 0 && sum != c.total {
			t.Errorf("Chunks(%d,%d) covers %d trials", c.total, c.size, sum)
		}
	}
}

func TestSeedDerivationDeterministicAndDistinct(t *testing.T) {
	if TaskSeed(1, "conf:1:k") != TaskSeed(1, "conf:1:k") {
		t.Error("TaskSeed is not deterministic")
	}
	if TaskSeed(1, "a") == TaskSeed(1, "b") {
		t.Error("TaskSeed collides across keys")
	}
	if TaskSeed(1, "a") == TaskSeed(2, "a") {
		t.Error("TaskSeed ignores the base seed")
	}
	s := TaskSeed(7, "t")
	if ChunkSeed(s, 0) == ChunkSeed(s, 1) {
		t.Error("ChunkSeed collides across chunk indices")
	}
	if ChunkSeed(s, 3) != ChunkSeed(s, 3) {
		t.Error("ChunkSeed is not deterministic")
	}
}

// Chunk plans of nested budgets must share their full-size prefix, and
// ChunksFrom must return exactly the suffix of the full plan — the two
// properties the resume machinery's bit-identity rests on.
func TestChunksFromIsPlanSuffix(t *testing.T) {
	cases := []struct {
		total, size int64
	}{
		{10, 3}, {12, 3}, {1, 5}, {4096, 4096}, {10000, 4096}, {3, 0},
	}
	for _, c := range cases {
		full := Chunks(c.total, c.size)
		for from := 0; from <= len(full)+1; from++ {
			got := ChunksFrom(c.total, c.size, from)
			want := full
			if from < len(full) {
				want = full[from:]
			} else {
				want = nil
			}
			if len(got) != len(want) {
				t.Fatalf("ChunksFrom(%d,%d,%d): %d chunks, want %d", c.total, c.size, from, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("ChunksFrom(%d,%d,%d)[%d] = %+v, want %+v", c.total, c.size, from, i, got[i], want[i])
				}
			}
		}
	}
	if got := ChunksFrom(10, 3, -2); len(got) != len(Chunks(10, 3)) {
		t.Errorf("negative from should yield the full plan, got %d chunks", len(got))
	}
}

func TestChunkPlanPrefixCompatibility(t *testing.T) {
	const size = 128
	small := Chunks(5*size+17, size)
	large := Chunks(9*size+3, size)
	// Every full-size chunk of the smaller plan is bit-identical (index
	// and trial count, hence derived PRNG stream) in the larger plan.
	for i := 0; i < FullChunks(5*size+17, size); i++ {
		if small[i] != large[i] {
			t.Errorf("chunk %d differs between nested plans: %+v vs %+v", i, small[i], large[i])
		}
	}
}

func TestFullAndPlanChunkCounts(t *testing.T) {
	cases := []struct {
		total, size int64
		full, plan  int
	}{
		{0, 10, 0, 0},
		{-5, 10, 0, 0},
		{9, 10, 0, 1},
		{10, 10, 1, 1},
		{11, 10, 1, 2},
		{40, 10, 4, 4},
		{41, 10, 4, 5},
		{7, 0, 1, 1}, // size<=0 collapses to one chunk
	}
	for _, c := range cases {
		if got := FullChunks(c.total, c.size); got != c.full {
			t.Errorf("FullChunks(%d,%d) = %d, want %d", c.total, c.size, got, c.full)
		}
		if got := PlanChunks(c.total, c.size); got != c.plan {
			t.Errorf("PlanChunks(%d,%d) = %d, want %d", c.total, c.size, got, c.plan)
		}
		if got := len(Chunks(c.total, c.size)); got != c.plan {
			t.Errorf("len(Chunks(%d,%d)) = %d, want %d", c.total, c.size, got, c.plan)
		}
	}
}

func TestForEachCtxCancelStopsNewTasks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		p := New(workers)
		err := p.ForEachCtx(ctx, 1000, func(i int) error {
			if started.Add(1) == int64(workers) {
				// Cancel from inside a task: no task may start after every
				// worker observes the cancellation.
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: ForEachCtx returned %v, want context.Canceled", workers, err)
		}
		// Each worker can have at most one in-flight task when the
		// cancellation lands, so the started count is bounded by 2·workers.
		if n := started.Load(); n > int64(2*workers) {
			t.Errorf("workers=%d: %d tasks started after cancellation point", workers, n)
		}
		cancel()
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := New(4).ForEachCtx(ctx, 10, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ForEachCtx = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("no task should run on a pre-cancelled context")
	}
}

func TestForEachCtxTaskErrorWinsOverCancel(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("boom")
	err := New(4).ForEachCtx(ctx, 100, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("ForEachCtx = %v, want task error", err)
	}
}
