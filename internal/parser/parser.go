package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/predapprox"
)

// Parse parses a full program: zero or more `name := query;` bindings
// followed by a final query (with optional trailing semicolon). Bindings
// wrap the final query in algebra.Let nodes, innermost last.
func Parse(src string) (algebra.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	type binding struct {
		name string
		def  algebra.Query
	}
	var binds []binding
	var final algebra.Query
	for {
		if p.peek().kind == tokEOF {
			break
		}
		// Lookahead for `ident :=`.
		if p.peek().kind == tokIdent && p.peekAt(1).text == ":=" {
			name := p.next().text
			p.next() // :=
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			binds = append(binds, binding{name, q})
			continue
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		final = q
		if p.peek().text == ";" {
			p.next()
		}
		if p.peek().kind != tokEOF {
			return nil, fmt.Errorf("parser: trailing input at %d", p.peek().pos)
		}
		break
	}
	if final == nil {
		return nil, fmt.Errorf("parser: program has no final query")
	}
	for i := len(binds) - 1; i >= 0; i-- {
		final = algebra.Let{Name: binds[i].name, Def: binds[i].def, In: final}
	}
	return final, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("parser: expected %q at %d, got %q", text, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("parser: expected identifier at %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

// parseQuery parses one algebra term.
func (p *parser) parseQuery() (algebra.Query, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("parser: expected query at %d, got %q", t.pos, t.text)
	}
	switch strings.ToLower(t.text) {
	case "select":
		p.next()
		if err := p.expect("["); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return algebra.Select{In: in, Pred: cond}, nil

	case "project":
		p.next()
		if err := p.expect("["); err != nil {
			return nil, err
		}
		var targets []expr.Target
		if p.peek().text != "]" {
			for {
				tg, err := p.parseTarget()
				if err != nil {
					return nil, err
				}
				targets = append(targets, tg)
				if p.peek().text != "," {
					break
				}
				p.next()
			}
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return algebra.Project{In: in, Targets: targets}, nil

	case "product", "join", "union", "diff":
		op := strings.ToLower(p.next().text)
		if err := p.expect("("); err != nil {
			return nil, err
		}
		l, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		r, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch op {
		case "product":
			return algebra.Product{L: l, R: r}, nil
		case "join":
			return algebra.Join{L: l, R: r}, nil
		case "union":
			return algebra.Union{L: l, R: r}, nil
		default:
			return algebra.DiffC{L: l, R: r}, nil
		}

	case "repairkey":
		p.next()
		if err := p.expect("["); err != nil {
			return nil, err
		}
		var key []string
		for p.peek().kind == tokIdent {
			a, _ := p.expectIdent()
			key = append(key, a)
			if p.peek().text == "," {
				p.next()
			}
		}
		if err := p.expect("@"); err != nil {
			return nil, err
		}
		weight, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return algebra.RepairKey{In: in, Key: key, Weight: weight}, nil

	case "conf":
		p.next()
		as := ""
		if p.peek().kind == tokIdent && strings.ToLower(p.peek().text) == "as" {
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			as = name
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return algebra.Conf{In: in, As: as}, nil

	case "poss", "cert":
		op := strings.ToLower(p.next().text)
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		if op == "poss" {
			return algebra.Poss{In: in}, nil
		}
		return algebra.Cert{In: in}, nil

	case "aselect":
		p.next()
		return p.parseApproxSelect()

	default:
		name := p.next().text
		return algebra.Base{Name: name}, nil
	}
}

func (p *parser) parseParenQuery() (algebra.Query, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return q, nil
}

// parseTarget parses `expr as Name` or a bare attribute.
func (p *parser) parseTarget() (expr.Target, error) {
	e, err := p.parseArith()
	if err != nil {
		return expr.Target{}, err
	}
	if p.peek().kind == tokIdent && strings.ToLower(p.peek().text) == "as" {
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return expr.Target{}, err
		}
		return expr.As(name, e), nil
	}
	if a, ok := e.(expr.Attr); ok {
		return expr.Keep(a.Name), nil
	}
	return expr.Target{}, fmt.Errorf("parser: computed target needs 'as Name' at %d", p.peek().pos)
}

// parseCond parses a Boolean combination of comparisons over attributes.
func (p *parser) parseCond() (expr.Pred, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Pred, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && strings.ToLower(p.peek().text) == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.OrOf(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Pred, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && strings.ToLower(p.peek().text) == "and" {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.AndOf(l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Pred, error) {
	if p.peek().kind == tokIdent && strings.ToLower(p.peek().text) == "not" {
		p.next()
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NotOf(k), nil
	}
	if p.peek().text == "(" {
		// Could be a parenthesized condition or a parenthesized arithmetic
		// expression starting a comparison; try condition first.
		save := p.pos
		p.next()
		c, err := p.parseCond()
		if err == nil && p.peek().text == ")" {
			p.next()
			// Must not be followed by a comparison operator (then it was
			// arithmetic).
			if !isCmpTok(p.peek().text) && !isArithTok(p.peek().text) {
				return c, nil
			}
		}
		p.pos = save
	}
	return p.parseCmp()
}

func isCmpTok(t string) bool {
	switch t {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func isArithTok(t string) bool {
	switch t {
	case "+", "-", "*", "/":
		return true
	}
	return false
}

func (p *parser) parseCmp() (expr.Pred, error) {
	l, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	var op expr.CmpOp
	switch opTok.text {
	case "=":
		op = expr.CmpEq
	case "<>":
		op = expr.CmpNe
	case "<":
		op = expr.CmpLt
	case "<=":
		op = expr.CmpLe
	case ">":
		op = expr.CmpGt
	case ">=":
		op = expr.CmpGe
	default:
		return nil, fmt.Errorf("parser: expected comparison at %d, got %q", opTok.pos, opTok.text)
	}
	r, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, L: l, R: r}, nil
}

// parseArith parses + and - over terms.
func (p *parser) parseArith() (expr.Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "+" || p.peek().text == "-" {
		op := p.next().text
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			l = expr.Add(l, r)
		} else {
			l = expr.Sub(l, r)
		}
	}
	return l, nil
}

func (p *parser) parseTerm() (expr.Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "*" || p.peek().text == "/" {
		op := p.next().text
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if op == "*" {
			l = expr.Mul(l, r)
		} else {
			l = expr.Div(l, r)
		}
	}
	return l, nil
}

func (p *parser) parseFactor() (expr.Expr, error) {
	t := p.next()
	switch {
	case t.text == "(":
		e, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.text == "-":
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return expr.Sub(expr.CInt(0), e), nil
	case t.kind == tokNumber:
		if strings.ContainsAny(t.text, ".e") {
			f, _ := strconv.ParseFloat(t.text, 64)
			return expr.CFloat(f), nil
		}
		i, _ := strconv.ParseInt(t.text, 10, 64)
		return expr.CInt(i), nil
	case t.kind == tokString:
		return expr.CStr(t.text), nil
	case t.kind == tokIdent:
		return expr.A(t.text), nil
	default:
		return nil, fmt.Errorf("parser: unexpected token %q at %d", t.text, t.pos)
	}
}

// parseApproxSelect parses aselect[pred over conf[A1,..], conf[..], ...](q).
// The predicate references the confidence values as p1..pk.
func (p *parser) parseApproxSelect() (algebra.Query, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	// The predicate text runs until the keyword 'over'; parse it as a
	// condition over attributes p1..pk and convert to a predapprox.Pred.
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	kw := p.next()
	if kw.kind != tokIdent || strings.ToLower(kw.text) != "over" {
		return nil, fmt.Errorf("parser: expected 'over' at %d, got %q", kw.pos, kw.text)
	}
	var args []algebra.ConfArg
	for {
		c := p.next()
		if c.kind != tokIdent || strings.ToLower(c.text) != "conf" {
			return nil, fmt.Errorf("parser: expected conf[...] at %d", c.pos)
		}
		if err := p.expect("["); err != nil {
			return nil, err
		}
		var attrs []string
		for p.peek().kind == tokIdent {
			a, _ := p.expectIdent()
			attrs = append(attrs, a)
			if p.peek().text == "," {
				p.next()
			}
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		args = append(args, algebra.ConfArg{Attrs: attrs})
		if p.peek().text != "," {
			break
		}
		p.next()
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	in, err := p.parseParenQuery()
	if err != nil {
		return nil, err
	}
	pred, err := condToApprox(cond, len(args))
	if err != nil {
		return nil, err
	}
	return algebra.ApproxSelect{In: in, Args: args, Pred: pred}, nil
}

// condToApprox converts an attribute-level condition over p1..pk into a
// predapprox predicate over slots 0..k-1. Comparisons become algebraic
// atoms (lhs − rhs ≥ 0 and friends); equality is rejected because exact
// equality of approximated values is a singularity everywhere (Example
// 5.7 discussion).
func condToApprox(c expr.Pred, k int) (predapprox.Pred, error) {
	switch n := c.(type) {
	case expr.And:
		kids := make([]predapprox.Pred, len(n.Kids))
		for i, kid := range n.Kids {
			p, err := condToApprox(kid, k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		return predapprox.And{Kids: kids}, nil
	case expr.Or:
		kids := make([]predapprox.Pred, len(n.Kids))
		for i, kid := range n.Kids {
			p, err := condToApprox(kid, k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		return predapprox.Or{Kids: kids}, nil
	case expr.Not:
		p, err := condToApprox(n.Kid, k)
		if err != nil {
			return nil, err
		}
		return predapprox.Not{Kid: p}, nil
	case expr.Cmp:
		l, err := exprToAExpr(n.L, k)
		if err != nil {
			return nil, err
		}
		r, err := exprToAExpr(n.R, k)
		if err != nil {
			return nil, err
		}
		var f predapprox.AExpr
		switch n.Op {
		case expr.CmpGe, expr.CmpGt:
			f = predapprox.Sub(l, r)
		case expr.CmpLe, expr.CmpLt:
			f = predapprox.Sub(r, l)
		default:
			return nil, fmt.Errorf("parser: (in)equality %s over approximated values is a singularity everywhere; use <=, <, >= or >", n.Op)
		}
		atom, err := predapprox.NewAlgAtom(f, k)
		if err != nil {
			return nil, err
		}
		if n.Op == expr.CmpGt || n.Op == expr.CmpLt {
			// Strict versions share the geometry; the boundary itself is a
			// singularity either way.
			return atom, nil
		}
		return atom, nil
	default:
		return nil, fmt.Errorf("parser: unsupported σ̂ predicate node %T", c)
	}
}

// exprToAExpr maps an arithmetic expression over p1..pk to slots.
func exprToAExpr(e expr.Expr, k int) (predapprox.AExpr, error) {
	switch n := e.(type) {
	case expr.Const:
		if !n.V.IsNumeric() {
			return nil, fmt.Errorf("parser: σ̂ predicate constant %v is not numeric", n.V)
		}
		return predapprox.Num(n.V.AsFloat()), nil
	case expr.Attr:
		name := strings.ToLower(n.Name)
		if !strings.HasPrefix(name, "p") {
			return nil, fmt.Errorf("parser: σ̂ predicate variable %q must be p1..p%d", n.Name, k)
		}
		i, err := strconv.Atoi(name[1:])
		if err != nil || i < 1 || i > k {
			return nil, fmt.Errorf("parser: σ̂ predicate variable %q must be p1..p%d", n.Name, k)
		}
		return predapprox.Slot(i - 1), nil
	case expr.Arith:
		l, err := exprToAExpr(n.L, k)
		if err != nil {
			return nil, err
		}
		r, err := exprToAExpr(n.R, k)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case expr.OpAdd:
			return predapprox.Add(l, r), nil
		case expr.OpSub:
			return predapprox.Sub(l, r), nil
		case expr.OpMul:
			return predapprox.Mul(l, r), nil
		default:
			return predapprox.Div(l, r), nil
		}
	default:
		return nil, fmt.Errorf("parser: unsupported σ̂ predicate expression %T", e)
	}
}
