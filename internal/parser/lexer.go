// Package parser implements a small textual surface syntax for the
// paper's uncertainty algebra, so the CLI can run ad-hoc UA queries:
//
//	R := project[CoinType](repairkey[@Count](Coins));
//	S := project[CoinType, Toss, Face](
//	       repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)));
//	T := join(R, project[CoinType](select[Toss = 1 and Face = 'H'](S)));
//	conf(T);
//
// A program is a sequence of `name := query;` bindings followed by a final
// query; bindings become algebra.Let nodes. The operators are:
//
//	select[cond](q)             σ — cond over attributes, with arithmetic
//	project[t1, t2, ...](q)     π/ρ — targets are `expr as Name` or `Attr`
//	product(q1, q2)             ×
//	join(q1, q2)                natural ⋈
//	union(q1, q2)               ∪
//	diff(q1, q2)                −c
//	repairkey[A1, A2 @ W](q)    repair-key (key may be empty: [@W])
//	conf(q), conf as P2(q)      confidence
//	poss(q), cert(q)            possible / certain tuples
//	aselect[pred over conf[A], conf[]](q)   σ̂ — pred over p1..pk
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single punctuation or operator like := <= >= <>
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes a query program.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' ||
				(l.pos > start && (l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e'))) {
				l.pos++
			}
			text := l.src[start:l.pos]
			if _, err := strconv.ParseFloat(text, 64); err != nil {
				return nil, fmt.Errorf("parser: bad number %q at %d", text, start)
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
		case c == '\'':
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("parser: unterminated string at %d", start)
			}
			l.toks = append(l.toks, token{kind: tokString, text: l.src[start+1 : l.pos], pos: start})
			l.pos++
		default:
			// Multi-char operators first.
			rest := l.src[l.pos:]
			matched := ""
			for _, op := range []string{":=", "<=", ">=", "<>", "--"} {
				if strings.HasPrefix(rest, op) {
					matched = op
					break
				}
			}
			if matched == "--" {
				// Line comment.
				for l.pos < len(l.src) && l.src[l.pos] != '\n' {
					l.pos++
				}
				continue
			}
			if matched != "" {
				l.pos += len(matched)
				l.toks = append(l.toks, token{kind: tokPunct, text: matched, pos: start})
				continue
			}
			if strings.ContainsRune("()[],;@=<>+-*/", rune(c)) {
				l.pos++
				l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
				continue
			}
			return nil, fmt.Errorf("parser: unexpected character %q at %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
