package parser

import (
	"math"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

func TestParseBasicOps(t *testing.T) {
	cases := []string{
		"R",
		"select[A = 1](R)",
		"select[A + B >= 2 and not (C = 'x')](R)",
		"project[A, B](R)",
		"project[P1 / P2 as P, A](R)",
		"product(R, S)",
		"join(R, S)",
		"union(R, S)",
		"diff(R, S)",
		"repairkey[@W](R)",
		"repairkey[A, B @ W](R)",
		"conf(R)",
		"conf as P2(R)",
		"poss(R)",
		"cert(R)",
		"aselect[p1 >= 0.5 over conf[A]](R)",
		"aselect[p1 / p2 <= 0.5 over conf[A], conf[]](R)",
		"X := conf(R); select[P >= 0.5](X)",
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) failed: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"select[A = 1]",
		"select[A = ](R)",
		"project[A + 1](R)",                  // computed target without 'as'
		"repairkey[A](R)",                    // missing @W
		"aselect[p1 = 0.5 over conf[A]](R)",  // equality rejected
		"aselect[q1 >= 0.5 over conf[A]](R)", // bad variable
		"aselect[p2 >= 0.5 over conf[A]](R)", // out-of-range slot
		"conf(R) extra",
		"R := conf(S);", // no final query
		"select[A = 1](R",
		"'unterminated",
		"select[A ? 1](R)",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// The full coin program through the parser must reproduce the paper's
// posterior.
func TestParseCoinProgram(t *testing.T) {
	src := `
-- Example 2.2 from the paper.
R := project[CoinType](repairkey[@Count](Coins));
S := project[CoinType, Toss, Face](
       repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)));
T := join(join(R, project[CoinType](select[Toss = 1 and Face = 'H'](S))),
          project[CoinType](select[Toss = 2 and Face = 'H'](S)));
project[CoinType, P1 / P2 as P](
  product(conf as P1(T), conf as P2(project[](T))));
`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := urel.NewDatabase()
	db.AddComplete("Coins", rel.FromRows(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(2)},
		rel.Tuple{rel.String("2headed"), rel.Int(1)},
	))
	db.AddComplete("Faces", rel.FromRows(rel.NewSchema("CoinType", "Face", "FProb"),
		rel.Tuple{rel.String("fair"), rel.String("H"), rel.Float(0.5)},
		rel.Tuple{rel.String("fair"), rel.String("T"), rel.Float(0.5)},
		rel.Tuple{rel.String("2headed"), rel.String("H"), rel.Float(1)},
	))
	db.AddComplete("Tosses", rel.FromRows(rel.NewSchema("Toss"),
		rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)},
	))
	res, err := algebra.NewURelEvaluator(db).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	out := urel.Poss(res.Rel)
	if out.Len() != 2 {
		t.Fatalf("U has %d tuples:\n%s", out.Len(), out)
	}
	for _, tp := range out.Tuples() {
		ct := out.Value(tp, "CoinType").AsString()
		p := out.Value(tp, "P").AsFloat()
		want := 1.0 / 3
		if ct == "2headed" {
			want = 2.0 / 3
		}
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("U[%s] = %v, want %v", ct, p, want)
		}
	}
}

// A parsed σ̂ program runs through the approximate engine.
func TestParseApproxSelectEndToEnd(t *testing.T) {
	src := `aselect[p1 >= 0.5 over conf[ID]](R)`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	x := db.Vars.Add("x", []float64{0.9, 0.1}, nil)
	y := db.Vars.Add("y", []float64{0.9, 0.1}, nil)
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(0)})
	r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(0)})
	db.AddURelation("R", r, false)
	eng := core.NewEngine(db, core.Options{Eps0: 0.05, Delta: 0.1, Seed: 1})
	res, err := eng.EvalApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if urel.Poss(res.Rel).Len() != 1 {
		t.Errorf("σ̂ should keep the 0.99-confidence tuple")
	}
}

func TestLoadCSV(t *testing.T) {
	src := "A,B,C\n1,2.5,hello\n2,,true\n"
	r, err := LoadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Equal(rel.NewSchema("A", "B", "C")) {
		t.Fatalf("schema = %v", r.Schema())
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	row := r.Tuples()[0]
	if !rel.Equal(row[0], rel.Int(1)) || !rel.Equal(row[1], rel.Float(2.5)) || !rel.Equal(row[2], rel.String("hello")) {
		t.Errorf("row 0 = %v", row)
	}
	if !r.Tuples()[1][1].IsNull() {
		t.Error("empty field should parse as NULL")
	}
	if _, err := LoadCSV(strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("ragged CSV must fail")
	}
	if _, err := LoadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
}
