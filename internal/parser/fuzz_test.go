package parser

import (
	"testing"
)

// FuzzParse checks that the parser is total: any input either parses or
// returns an error, never panics, and parsed programs re-render through
// the algebra's String() without crashing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"R",
		"conf(R)",
		"select[A = 1](R)",
		"project[A, B as C](R)",
		"repairkey[K @ W](R)",
		"aselect[p1 / p2 <= 0.5 over conf[A], conf[]](R)",
		"X := conf(R); select[P >= 0.5](X)",
		"union(R, diff(S, T))",
		"select[not (A = 'x') and B >= -2.5e0](R)",
		"project[](R)",
		"((((",
		"select[A ? B](R)",
		"'unterminated",
		"aselect[p1 = 1 over conf[]](R)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query without error")
		}
		_ = q.String()
	})
}
