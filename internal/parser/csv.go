package parser

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/rel"
)

// LoadCSV reads a relation from CSV: the first record is the header
// (attribute names); fields are parsed with rel.Parse (int, float, bool,
// string; empty → NULL). String fields are canonicalized through a
// value-interning table, so a categorical column of n rows with k distinct
// values keeps k string payloads alive instead of n.
func LoadCSV(r io.Reader) (*rel.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true // rows are parsed to Values immediately; interning copies what survives
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("parser: reading CSV header: %w", err)
	}
	out := rel.NewRelation(rel.NewSchema(append([]string(nil), header...)...))
	intern := rel.NewInterner()
	nFields := len(out.Schema())
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("parser: reading CSV row: %w", err)
		}
		if len(rec) != nFields {
			return nil, fmt.Errorf("parser: CSV row has %d fields, header has %d", len(rec), nFields)
		}
		row := make(rel.Tuple, len(rec))
		for i, field := range rec {
			row[i] = intern.ParseInterned(field)
		}
		out.AddOwned(row)
	}
}

// SaveCSV writes r as CSV (header record first) in a form LoadCSV reads
// back to the same typed relation for CSV-representable data: NULL renders
// as the empty field, booleans as true/false, integers in decimal, and
// floats with a decimal point or exponent so integral floats stay floats
// on reload. The lossy cases are inherent to CSV's untyped fields — a
// string whose text parses as a number or boolean, or an empty string,
// re-types on reload; the pdbstore columnar format exists to avoid exactly
// this (see docs/STORAGE.md).
func SaveCSV(w io.Writer, r *rel.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema()); err != nil {
		return fmt.Errorf("parser: writing CSV header: %w", err)
	}
	fields := make([]string, len(r.Schema()))
	for _, t := range r.Tuples() {
		for i, v := range t {
			fields[i] = csvField(v)
		}
		if err := cw.Write(fields); err != nil {
			return fmt.Errorf("parser: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("parser: flushing CSV: %w", err)
	}
	return nil
}

// csvField renders one value so rel.Parse recovers the same typed value.
func csvField(v rel.Value) string {
	switch v.Kind() {
	case rel.NullKind:
		return ""
	case rel.BoolKind:
		if v.AsBool() {
			return "true"
		}
		return "false"
	case rel.IntKind:
		return strconv.FormatInt(v.AsInt(), 10)
	case rel.FloatKind:
		s := strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
		// An integral float renders without point or exponent and would
		// re-parse as an int; pin its kind.
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			s += ".0"
		}
		return s
	default:
		return v.AsString()
	}
}
