package parser

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/rel"
)

// LoadCSV reads a relation from CSV: the first record is the header
// (attribute names); fields are parsed with rel.Parse (int, float, bool,
// string; empty → NULL).
func LoadCSV(r io.Reader) (*rel.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("parser: reading CSV header: %w", err)
	}
	out := rel.NewRelation(rel.NewSchema(header...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("parser: reading CSV row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("parser: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		row := make(rel.Tuple, len(rec))
		for i, field := range rec {
			row[i] = rel.Parse(field)
		}
		out.Add(row)
	}
}
