package parser

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/rel"
)

// LoadCSV reads a relation from CSV: the first record is the header
// (attribute names); fields are parsed with rel.Parse (int, float, bool,
// string; empty → NULL). String fields are canonicalized through a
// value-interning table, so a categorical column of n rows with k distinct
// values keeps k string payloads alive instead of n.
func LoadCSV(r io.Reader) (*rel.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true // rows are parsed to Values immediately; interning copies what survives
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("parser: reading CSV header: %w", err)
	}
	out := rel.NewRelation(rel.NewSchema(append([]string(nil), header...)...))
	intern := rel.NewInterner()
	nFields := len(out.Schema())
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("parser: reading CSV row: %w", err)
		}
		if len(rec) != nFields {
			return nil, fmt.Errorf("parser: CSV row has %d fields, header has %d", len(rec), nFields)
		}
		row := make(rel.Tuple, len(rec))
		for i, field := range rec {
			row[i] = intern.ParseInterned(field)
		}
		out.AddOwned(row)
	}
}
