package parser

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
)

func TestParseNestedAndComments(t *testing.T) {
	src := `
-- a comment line
X := union(select[A >= 1](R), -- trailing comment
           select[A < 1](R));
project[A](diff(X, S))
`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	let, ok := q.(algebra.Let)
	if !ok || let.Name != "X" {
		t.Fatalf("expected Let X, got %T", q)
	}
	if _, ok := let.Def.(algebra.Union); !ok {
		t.Errorf("X should be a union, got %T", let.Def)
	}
}

func TestParseBooleanApproxPredicate(t *testing.T) {
	src := `aselect[p1 >= 0.3 and p1 <= 0.9 or not (p2 < 0.1) over conf[A], conf[]](R)`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	as, ok := q.(algebra.ApproxSelect)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if as.Pred.Arity() != 2 {
		t.Errorf("predicate arity = %d", as.Pred.Arity())
	}
	// Semantics spot checks.
	cases := []struct {
		x    []float64
		want bool
	}{
		{[]float64{0.5, 0.5}, true},  // first conjunct holds
		{[]float64{0.95, 0.5}, true}, // second disjunct: ¬(0.5 < 0.1)
		{[]float64{0.95, 0.05}, false},
		{[]float64{0.1, 0.05}, false},
	}
	for _, c := range cases {
		if got := as.Pred.Eval(c.x); got != c.want {
			t.Errorf("pred(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// * binds tighter than +; comparison binds the whole arithmetic.
	q, err := Parse("select[A + B * 2 >= 7](R)")
	if err != nil {
		t.Fatal(err)
	}
	sel := q.(algebra.Select)
	env := expr.Env{Schema: rel.NewSchema("A", "B"), Tuple: rel.Tuple{rel.Int(1), rel.Int(3)}}
	if !sel.Pred.Holds(env) { // 1 + 6 = 7 ≥ 7
		t.Error("precedence wrong: 1 + 3*2 should be 7")
	}
	env2 := expr.Env{Schema: rel.NewSchema("A", "B"), Tuple: rel.Tuple{rel.Int(1), rel.Int(2)}}
	if sel.Pred.Holds(env2) { // 1 + 4 = 5 < 7
		t.Error("precedence wrong: 1 + 2*2 should be 5")
	}
}

func TestParseUnaryMinusAndFloats(t *testing.T) {
	q, err := Parse("select[A >= -1.5e1](R)")
	if err != nil {
		t.Fatal(err)
	}
	sel := q.(algebra.Select)
	env := expr.Env{Schema: rel.NewSchema("A"), Tuple: rel.Tuple{rel.Int(-10)}}
	if !sel.Pred.Holds(env) {
		t.Error("-10 ≥ -15 should hold")
	}
	env2 := expr.Env{Schema: rel.NewSchema("A"), Tuple: rel.Tuple{rel.Int(-20)}}
	if sel.Pred.Holds(env2) {
		t.Error("-20 ≥ -15 should not hold")
	}
}

func TestParseParenthesizedConditions(t *testing.T) {
	q, err := Parse("select[(A = 1 or A = 2) and B = 3](R)")
	if err != nil {
		t.Fatal(err)
	}
	sel := q.(algebra.Select)
	schema := rel.NewSchema("A", "B")
	holds := func(a, b int64) bool {
		return sel.Pred.Holds(expr.Env{Schema: schema, Tuple: rel.Tuple{rel.Int(a), rel.Int(b)}})
	}
	if !holds(1, 3) || !holds(2, 3) || holds(1, 4) || holds(3, 3) {
		t.Error("parenthesized condition semantics wrong")
	}
	// Parenthesized arithmetic on the left of a comparison.
	q2, err := Parse("select[(A + B) / 2 >= 3](R)")
	if err != nil {
		t.Fatal(err)
	}
	sel2 := q2.(algebra.Select)
	if !sel2.Pred.Holds(expr.Env{Schema: schema, Tuple: rel.Tuple{rel.Int(4), rel.Int(2)}}) {
		t.Error("(4+2)/2 ≥ 3 should hold")
	}
}

func TestParseShadowingBindings(t *testing.T) {
	// A binding may shadow a base relation; the inner use sees the
	// binding, restored afterwards by the evaluator.
	src := "R := select[A >= 1](R); conf(R)"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	let := q.(algebra.Let)
	if let.Name != "R" {
		t.Fatalf("binding name %q", let.Name)
	}
	if _, ok := let.Def.(algebra.Select); !ok {
		t.Error("definition should reference the base R")
	}
}

func TestParseApproxSelectPredicateForms(t *testing.T) {
	// Linear and ratio forms both parse to sound predicates.
	for _, src := range []string{
		"aselect[p1 - 0.5 * p2 >= 0 over conf[A], conf[]](R)",
		"aselect[p1 / p2 <= 0.5 over conf[A], conf[]](R)",
		"aselect[0.5 <= p1 over conf[A]](R)",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		as := q.(algebra.ApproxSelect)
		x := make([]float64, len(as.Args))
		for i := range x {
			x[i] = 0.4
		}
		_ = as.Pred.Eval(x)
		if m := as.Pred.Margin(x); m < 0 || m > predapprox.EpsMax {
			t.Errorf("%s: margin out of range", src)
		}
	}
}

func TestExplainParsedProgram(t *testing.T) {
	q, err := Parse("X := conf(R); select[P >= 0.5](X)")
	if err != nil {
		t.Fatal(err)
	}
	out := algebra.Explain(q, nil)
	if !strings.Contains(out, "let X") || !strings.Contains(out, "conf → P") {
		t.Errorf("explain output:\n%s", out)
	}
}
