package urel

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/vars"
)

// This file implements attribute-level uncertainty by vertical
// decomposition, which Section 3 of the paper notes "can be realized
// succinctly ... without additional cost" [1]: a relation whose attributes
// are independently uncertain is stored as one U-relation per attribute,
// each carrying a tuple identifier, so the representation size is the SUM
// of the per-attribute alternative counts while the represented relation
// ranges over their PRODUCT. The full tuples are recovered by a natural
// join on the tuple identifier.

// AttrAlternatives lists the possible values of one attribute of one row
// with their probabilities (must sum to 1; a single certain value is
// {Values: [v], Probs: [1]}).
type AttrAlternatives struct {
	Values []rel.Value
	Probs  []float64
}

// Certain wraps a single certain value.
func Certain(v rel.Value) AttrAlternatives {
	return AttrAlternatives{Values: []rel.Value{v}, Probs: []float64{1}}
}

// VerticalDecomposition is the decomposed representation: one U-relation
// per original attribute, each with schema (TID, attr).
type VerticalDecomposition struct {
	Schema rel.Schema // the original attributes, in order
	TID    string     // the tuple-identifier attribute name
	Parts  []*Relation
}

// BuildAttributeUncertainty constructs the vertical decomposition of a
// relation with independently uncertain attributes. rows[i][j] lists the
// alternatives of attribute schema[j] in row i. One fresh random variable
// per (row, uncertain attribute) is registered in tab; attributes with a
// single alternative stay deterministic (empty D).
func BuildAttributeUncertainty(tab *vars.Table, schema rel.Schema, rows [][]AttrAlternatives, tid, prefix string) (*VerticalDecomposition, error) {
	if schema.Has(tid) {
		return nil, fmt.Errorf("urel: TID attribute %q collides with schema %v", tid, schema)
	}
	parts := make([]*Relation, len(schema))
	for j, attr := range schema {
		parts[j] = NewRelation(rel.NewSchema(tid, attr))
	}
	for i, row := range rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("urel: row %d has %d attribute specs for schema %v", i, len(row), schema)
		}
		id := rel.Int(int64(i))
		for j, alts := range row {
			if len(alts.Values) == 0 || len(alts.Values) != len(alts.Probs) {
				return nil, fmt.Errorf("urel: row %d attribute %s has malformed alternatives", i, schema[j])
			}
			if len(alts.Values) == 1 {
				parts[j].Add(nil, rel.Tuple{id, alts.Values[0]})
				continue
			}
			names := make([]string, len(alts.Values))
			for a, v := range alts.Values {
				names[a] = v.String()
			}
			v := tab.Add(fmt.Sprintf("%s[%d.%s]", prefix, i, schema[j]), alts.Probs, names)
			for a, val := range alts.Values {
				parts[j].Add(vars.MustAssignment(vars.Binding{Var: v, Alt: int32(a)}), rel.Tuple{id, val})
			}
		}
	}
	return &VerticalDecomposition{Schema: schema.Clone(), TID: tid, Parts: parts}, nil
}

// Size returns the total number of U-tuples across the parts — the
// representation cost of the decomposition.
func (v *VerticalDecomposition) Size() int {
	n := 0
	for _, p := range v.Parts {
		n += p.Len()
	}
	return n
}

// Joined materializes the represented relation as a single U-relation over
// the original schema (TID projected away): the natural join of the parts.
// Its size can be exponentially larger than Size(); it exists for
// cross-checks and for feeding operators that need the flat form.
func (v *VerticalDecomposition) Joined() *Relation {
	cur := v.Parts[0]
	for _, p := range v.Parts[1:] {
		cur = Join(cur, p)
	}
	// Project away the TID.
	out := NewRelation(v.Schema)
	idx := make([]int, len(v.Schema))
	for j, attr := range v.Schema {
		idx[j] = cur.Schema().Index(attr)
	}
	for _, ut := range cur.Tuples() {
		row := make(rel.Tuple, len(idx))
		for j, k := range idx {
			row[j] = ut.Row[k]
		}
		out.Add(ut.D, row)
	}
	return out
}

// FlatEncoding builds the non-decomposed representation of the same
// attribute-uncertain relation: one fresh variable per row ranging over
// the full cartesian product of attribute alternatives. It is the
// baseline the decomposition's succinctness is measured against.
func FlatEncoding(tab *vars.Table, schema rel.Schema, rows [][]AttrAlternatives, prefix string) (*Relation, error) {
	out := NewRelation(schema)
	for i, row := range rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("urel: row %d has %d attribute specs for schema %v", i, len(row), schema)
		}
		// Enumerate the product of alternatives.
		type combo struct {
			vals rel.Tuple
			p    float64
		}
		combos := []combo{{vals: rel.Tuple{}, p: 1}}
		for _, alts := range row {
			next := make([]combo, 0, len(combos)*len(alts.Values))
			for _, c := range combos {
				for a, v := range alts.Values {
					next = append(next, combo{
						vals: append(c.vals.Clone(), v),
						p:    c.p * alts.Probs[a],
					})
				}
			}
			combos = next
		}
		if len(combos) == 1 {
			out.Add(nil, combos[0].vals)
			continue
		}
		probs := make([]float64, len(combos))
		names := make([]string, len(combos))
		for a, c := range combos {
			probs[a] = c.p
			names[a] = c.vals.String()
		}
		v := tab.Add(fmt.Sprintf("%s[%d]", prefix, i), probs, names)
		for a, c := range combos {
			out.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: int32(a)}), c.vals)
		}
	}
	return out, nil
}
