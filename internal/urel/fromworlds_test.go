package urel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/rel"
)

func worldRels(rows ...[]int64) *rel.Relation {
	r := rel.NewRelation(rel.NewSchema("A"))
	for _, row := range rows {
		for _, v := range row {
			r.Add(rel.Tuple{rel.Int(v)})
		}
	}
	return r
}

func TestFromWorldSetBasic(t *testing.T) {
	w1 := map[string]*rel.Relation{"R": worldRels([]int64{1, 2})}
	w2 := map[string]*rel.Relation{"R": worldRels([]int64{2, 3})}
	db, err := FromWorldSet([]WorldSpec{{P: 0.25, Rels: w1}, {P: 0.75, Rels: w2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := ConfExact(db.Rels["R"], db.Vars, "P")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{1: 0.25, 2: 1.0, 3: 0.75}
	if conf.Len() != 3 {
		t.Fatalf("conf len = %d", conf.Len())
	}
	for _, tp := range conf.Tuples() {
		a := conf.Value(tp, "A").AsInt()
		p := conf.Value(tp, "P").AsFloat()
		if math.Abs(p-want[a]) > 1e-12 {
			t.Errorf("conf(%d) = %v, want %v", a, p, want[a])
		}
	}
	// Tuple 2 is in every world: stored once with empty D.
	found := false
	for _, ut := range db.Rels["R"].Tuples() {
		if rel.Equal(ut.Row[0], rel.Int(2)) {
			if len(ut.D) != 0 {
				t.Error("shared tuple should carry the empty assignment")
			}
			found = true
		}
	}
	if !found {
		t.Error("tuple 2 missing")
	}
}

func TestFromWorldSetSingleWorld(t *testing.T) {
	w := map[string]*rel.Relation{"R": worldRels([]int64{1})}
	db, err := FromWorldSet([]WorldSpec{{P: 1, Rels: w}}, map[string]bool{"R": true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Vars.Len() != 0 {
		t.Error("single world needs no selector variable")
	}
	if !db.Complete["R"] {
		t.Error("completeness flag lost")
	}
}

func TestFromWorldSetValidation(t *testing.T) {
	w := map[string]*rel.Relation{"R": worldRels([]int64{1})}
	if _, err := FromWorldSet(nil, nil); err == nil {
		t.Error("empty world set must fail")
	}
	if _, err := FromWorldSet([]WorldSpec{{P: 0.5, Rels: w}}, nil); err == nil {
		t.Error("non-unit weight sum must fail")
	}
	if _, err := FromWorldSet([]WorldSpec{{P: -1, Rels: w}, {P: 2, Rels: w}}, nil); err == nil {
		t.Error("negative weight must fail")
	}
	w2 := map[string]*rel.Relation{"R": worldRels([]int64{2})}
	if _, err := FromWorldSet([]WorldSpec{{P: 0.5, Rels: w}, {P: 0.5, Rels: w2}},
		map[string]bool{"R": true}); err == nil {
		t.Error("complete-marked relation differing across worlds must fail")
	}
	// Missing relation in one world.
	empty := map[string]*rel.Relation{}
	if _, err := FromWorldSet([]WorldSpec{{P: 0.5, Rels: w}, {P: 0.5, Rels: empty}}, nil); err == nil {
		t.Error("missing relation must fail")
	}
}

// Theorem 3.1 round trip: random weighted world sets are represented
// exactly — every tuple's confidence matches the world-weight sum.
func TestFromWorldSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		nw := 1 + rng.Intn(5)
		weights := make([]float64, nw)
		sum := 0.0
		for i := range weights {
			weights[i] = rng.Float64() + 0.05
			sum += weights[i]
		}
		specs := make([]WorldSpec, nw)
		type truth struct{ p float64 }
		want := map[int64]float64{}
		for i := range specs {
			r := rel.NewRelation(rel.NewSchema("A"))
			for v := int64(0); v < 4; v++ {
				if rng.Intn(2) == 0 {
					r.Add(rel.Tuple{rel.Int(v)})
					want[v] += weights[i] / sum
				}
			}
			specs[i] = WorldSpec{P: weights[i] / sum, Rels: map[string]*rel.Relation{"R": r}}
		}
		db, err := FromWorldSet(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		conf, err := ConfExact(db.Rels["R"], db.Vars, "P")
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range conf.Tuples() {
			a := conf.Value(tp, "A").AsInt()
			p := conf.Value(tp, "P").AsFloat()
			if math.Abs(p-want[a]) > 1e-9 {
				t.Fatalf("trial %d: conf(%d) = %v, want %v", trial, a, p, want[a])
			}
			delete(want, a)
		}
		for a, p := range want {
			if p > 1e-12 {
				t.Fatalf("trial %d: tuple %d with confidence %v missing from representation", trial, a, p)
			}
		}
	}
}
