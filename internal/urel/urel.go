// Package urel implements U-relational databases, the representation
// system of Section 3 of the paper: each represented relation R(Ā) is
// stored as a relation U_R(D, Ā) whose D column holds a partial function
// f : Var → Dom over the independent random variables of a W table
// (vars.Table). A tuple t̄ is in R in possible world f* iff some
// ⟨f, t̄⟩ ∈ U_R has f consistent with f*.
//
// The package provides the parsimonious translation of the paper's
// operations onto U-relations: positive relational algebra, repair-key
// (which introduces fresh random variables), poss, cert, the complete
// difference −c, and exact confidence via the dnf package. The translation
// is validated against the possible-worlds semantics by the worlds package
// and the algebra evaluators.
package urel

import (
	"fmt"
	"iter"
	"sort"

	"repro/internal/dnf"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/vars"
)

// UTuple is one row of a U-relation: a partial assignment (the D column)
// plus the data tuple.
type UTuple struct {
	D   vars.Assignment
	Row rel.Tuple
}

// utHash is the 64-bit dedup key of a (D, row) pair. It replaces the old
// canonical key string on every hot path; collisions are resolved by value
// equality (see Relation.find), so set semantics match the equality
// relation of rel.Compare (which, unlike the legacy key strings, also
// identifies -0.0 with +0.0 — see rel/hash.go).
func utHash(d vars.Assignment, row rel.Tuple) uint64 {
	return rel.HashCombine(row.Hash(), d.Hash())
}

// Relation is a U-relation: a schema and a set of (D, tuple) pairs with
// set semantics on the pair.
//
// The dedup index is keyed by 64-bit pair hashes with chained collision
// lists (index maps a hash to the most recent position carrying it, next
// links back to earlier ones), so inserts and membership tests allocate no
// key strings. Stored pair hashes are kept in hashes so clones, unions and
// selections never rehash.
type Relation struct {
	schema rel.Schema
	tuples []UTuple
	hashes []uint64         // utHash per tuple, aligned with tuples
	index  map[uint64]int32 // pair hash -> most recent position with it
	next   []int32          // position -> previous position with same hash, -1 ends
	bytes  int64            // running footprint estimate, maintained on insert

	// Out-of-core state (see spill.go): when spilled, the tuple storage
	// above is dropped and sp locates the file holding the pairs; bytes
	// keeps the footprint estimate for budget re-accounting.
	sp      *spillState
	spilled bool
}

// NewRelation creates an empty U-relation with the given data schema (the
// D column is implicit).
func NewRelation(schema rel.Schema) *Relation {
	return &Relation{schema: schema.Clone(), index: make(map[uint64]int32)}
}

// FromComplete lifts a classical complete relation into a U-relation where
// every tuple carries the empty assignment (the zero-column D encoding of
// Section 3).
func FromComplete(r *rel.Relation) *Relation {
	out := NewRelation(r.Schema())
	for _, t := range r.Tuples() {
		out.addPair(utHash(nil, t), nil, t, false)
	}
	return out
}

// Schema returns the data schema.
func (r *Relation) Schema() rel.Schema { return r.schema }

// Len returns the number of distinct (D, tuple) pairs (known without
// rehydration for a spilled relation).
func (r *Relation) Len() int {
	if r.spilled {
		return r.sp.n
	}
	return len(r.tuples)
}

// Tuples returns the underlying rows; the slice must not be modified. It
// panics on a spilled relation — see mustResident.
func (r *Relation) Tuples() []UTuple {
	r.mustResident("Tuples")
	return r.tuples
}

// find returns the position of the stored pair equal to (d, row) under
// hash h, or -1.
func (r *Relation) find(h uint64, d vars.Assignment, row rel.Tuple) int32 {
	head, ok := r.index[h]
	if !ok {
		return -1
	}
	for i := head; i >= 0; i = r.next[i] {
		if r.tuples[i].D.Equal(d) && r.tuples[i].Row.Equal(row) {
			return i
		}
	}
	return -1
}

// Add inserts a (D, tuple) pair under set semantics and reports whether it
// was new.
func (r *Relation) Add(d vars.Assignment, row rel.Tuple) bool {
	if len(row) != len(r.schema) {
		panic(fmt.Sprintf("urel: tuple arity %d does not match schema %v", len(row), r.schema))
	}
	return r.addPair(utHash(d, row), d, row, true)
}

// AddOwned inserts a (D, tuple) pair the caller relinquishes ownership
// of: no defensive clone is taken. Operators and evaluators that just
// built the pair use it to avoid two allocations per emitted tuple.
func (r *Relation) AddOwned(d vars.Assignment, row rel.Tuple) bool {
	if len(row) != len(r.schema) {
		panic(fmt.Sprintf("urel: tuple arity %d does not match schema %v", len(row), r.schema))
	}
	return r.addPair(utHash(d, row), d, row, false)
}

// addPair inserts under a precomputed hash. With clone set the pair is
// defensively copied (the public Add contract); operators inserting rows
// they own — or rows already owned by another relation, which are never
// mutated after insertion — pass clone=false and save two allocations per
// tuple. The duplicate probe and the chain link share one index lookup —
// this is the hottest insert path in the engine.
func (r *Relation) addPair(h uint64, d vars.Assignment, row rel.Tuple, clone bool) bool {
	head, chained := r.index[h]
	if chained {
		for j := head; j >= 0; j = r.next[j] {
			if r.tuples[j].D.Equal(d) && r.tuples[j].Row.Equal(row) {
				return false
			}
		}
	}
	pos := int32(len(r.tuples))
	if chained {
		r.next = append(r.next, head)
	} else {
		r.next = append(r.next, -1)
	}
	r.index[h] = pos
	if clone {
		d, row = d.Clone(), row.Clone()
	}
	r.tuples = append(r.tuples, UTuple{D: d, Row: row})
	r.hashes = append(r.hashes, h)
	r.bytes += pairBytes(d, row)
	return true
}

// IsComplete reports whether every tuple carries the empty assignment,
// i.e. the relation is a classical complete relation.
func (r *Relation) IsComplete() bool {
	r.mustResident("IsComplete")
	for _, t := range r.tuples {
		if len(t.D) > 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy. Stored tuples are immutable once inserted, so the
// clone shares their backing arrays and only copies the relation's own
// bookkeeping (tuple list, hashes, dedup index).
func (r *Relation) Clone() *Relation {
	r.mustResident("Clone")
	out := &Relation{
		schema: r.schema.Clone(),
		tuples: append([]UTuple(nil), r.tuples...),
		hashes: append([]uint64(nil), r.hashes...),
		next:   append([]int32(nil), r.next...),
		index:  make(map[uint64]int32, len(r.index)),
		bytes:  r.bytes,
	}
	for h, i := range r.index {
		out.index[h] = i
	}
	return out
}

// Select implements [[σ_φ R]] := σ_φ(U_R): the condition is evaluated on
// the data columns only, D is untouched.
func Select(r *Relation, pred expr.Pred) *Relation { return seqExec.Select(r, pred) }

// Project implements [[π_B̄ R]] := π_{D,B̄}(U_R), generalized to the
// paper's arithmetic/renaming targets (ρ with expressions is a special
// case of projection with targets).
func Project(r *Relation, targets []expr.Target) *Relation { return seqExec.Project(r, targets) }

// Product implements [[R × S]]: pairs of tuples with consistent D columns,
// merging the assignments. Attribute names must be disjoint; callers
// rename first otherwise.
func Product(a, b *Relation) (*Relation, error) { return seqExec.Product(a, b) }

// Join implements the natural join R ⋈ S: tuples agreeing on common
// attributes with consistent D columns. The output schema is sch(R)
// followed by the non-common attributes of S.
func Join(a, b *Relation) *Relation { return seqExec.Join(a, b) }

// Union implements [[R ∪ S]] := U_R ∪ U_S. Schemas must match.
func Union(a, b *Relation) (*Relation, error) { return seqExec.Union(a, b) }

// DiffComplete implements −c, difference applied to relations that are
// complete by c: both inputs must have empty D columns.
func DiffComplete(a, b *Relation) (*Relation, error) { return seqExec.DiffComplete(a, b) }

// Poss implements poss(R) = π_{sch(R)}(U_R): the set of tuples appearing
// in at least one world (every D has positive weight by construction).
func Poss(r *Relation) *rel.Relation { return seqExec.Poss(r) }

// TupleConf pairs a possible tuple with its clause set F = {f | ⟨f,t̄⟩ ∈
// U_R}, from which confidence is computed exactly (dnf.Confidence) or
// approximately (karpluby).
type TupleConf struct {
	Row rel.Tuple
	F   dnf.F
}

// Lineage groups the relation by data tuple and returns each possible
// tuple's clause set, in first-appearance order.
func Lineage(r *Relation) []TupleConf { return seqExec.Lineage(r) }

// LineageSeq is the streaming form of Lineage: it yields the groups in the
// same first-appearance order without handing the caller an owned slice to
// keep alive. See Exec.LineageSeq.
func LineageSeq(r *Relation) iter.Seq[TupleConf] { return seqExec.LineageSeq(r) }

// ConfExact implements the conf operation with exact probabilities: the
// result is a complete relation with schema sch(R) ∪ {pcol}.
func ConfExact(r *Relation, table *vars.Table, pcol string) (*rel.Relation, error) {
	return seqExec.ConfExact(r, table, pcol)
}

// CertExact implements cert(R) = π_{sch(R)}(σ_{P=1}(conf(R))) using exact
// confidence with a small numeric tolerance.
func CertExact(r *Relation, table *vars.Table) *rel.Relation { return seqExec.CertExact(r, table) }

// RepairKey implements repair-key_Ā@B(R) by the parsimonious translation
// of Section 3: one fresh random variable per Ā-group (keyed by the key
// attribute values), one alternative per distinct residual tuple of the
// group, with probability weight/groupTotal. Fresh variables are
// registered in table with names derived from prefix. The output keeps
// the full input schema; its D column is the input D extended with the
// fresh variable binding.
//
// The weight column must hold strictly positive numbers. Two tuples of a
// group that agree on all non-key non-weight attributes but carry
// different weights are rejected: the translated W relation would contain
// two probabilities for one (Var, Dom) pair.
func RepairKey(r *Relation, key []string, weight string, table *vars.Table, prefix string) (*Relation, error) {
	return seqExec.RepairKey(r, key, weight, table, prefix)
}

func displayKey(row rel.Tuple, idx []int) string {
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = row[j].String()
	}
	return joinStrings(parts, ",")
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// Database is a U-relational database: named U-relations over one shared
// variable table, plus the set of relations that are complete by
// definition (the function c of Section 2).
type Database struct {
	Vars     *vars.Table
	Rels     map[string]*Relation
	Complete map[string]bool
}

// NewDatabase returns an empty database with a fresh variable table.
func NewDatabase() *Database {
	return &Database{Vars: vars.NewTable(), Rels: make(map[string]*Relation), Complete: make(map[string]bool)}
}

// AddComplete registers a classical complete relation (c(R)=1).
func (db *Database) AddComplete(name string, r *rel.Relation) {
	db.Rels[name] = FromComplete(r)
	db.Complete[name] = true
}

// AddURelation registers a U-relation (c(R)=0 unless marked).
func (db *Database) AddURelation(name string, r *Relation, complete bool) {
	db.Rels[name] = r
	db.Complete[name] = complete
}

// Clone returns a deep copy, including the variable table, so query
// evaluation never mutates the input database.
func (db *Database) Clone() *Database {
	out := &Database{Vars: db.Vars.Clone(), Rels: make(map[string]*Relation, len(db.Rels)), Complete: make(map[string]bool, len(db.Complete))}
	for n, r := range db.Rels {
		out.Rels[n] = r.Clone()
	}
	for n, c := range db.Complete {
		out.Complete[n] = c
	}
	return out
}

// String renders the database: each U-relation with its D column
// formatted against the variable table, then the W table.
func (db *Database) String() string {
	names := make([]string, 0, len(db.Rels))
	for n := range db.Rels {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		r := db.Rels[n]
		out += "U_" + n + "(D; " + joinStrings(r.schema, ", ") + ")\n"
		rows := make([]string, 0, len(r.tuples))
		for _, t := range r.tuples {
			rows = append(rows, "  "+t.D.Format(db.Vars)+"  "+t.Row.String())
		}
		sort.Strings(rows)
		for _, row := range rows {
			out += row + "\n"
		}
	}
	out += "W:\n" + db.Vars.String()
	return out
}
