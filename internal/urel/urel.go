// Package urel implements U-relational databases, the representation
// system of Section 3 of the paper: each represented relation R(Ā) is
// stored as a relation U_R(D, Ā) whose D column holds a partial function
// f : Var → Dom over the independent random variables of a W table
// (vars.Table). A tuple t̄ is in R in possible world f* iff some
// ⟨f, t̄⟩ ∈ U_R has f consistent with f*.
//
// The package provides the parsimonious translation of the paper's
// operations onto U-relations: positive relational algebra, repair-key
// (which introduces fresh random variables), poss, cert, the complete
// difference −c, and exact confidence via the dnf package. The translation
// is validated against the possible-worlds semantics by the worlds package
// and the algebra evaluators.
package urel

import (
	"fmt"
	"sort"

	"repro/internal/dnf"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/vars"
)

// UTuple is one row of a U-relation: a partial assignment (the D column)
// plus the data tuple.
type UTuple struct {
	D   vars.Assignment
	Row rel.Tuple
}

func utKey(d vars.Assignment, row rel.Tuple) string { return d.Key() + "||" + row.Key() }

// Relation is a U-relation: a schema and a set of (D, tuple) pairs with
// set semantics on the pair.
type Relation struct {
	schema rel.Schema
	tuples []UTuple
	index  map[string]struct{}
}

// NewRelation creates an empty U-relation with the given data schema (the
// D column is implicit).
func NewRelation(schema rel.Schema) *Relation {
	return &Relation{schema: schema.Clone(), index: make(map[string]struct{})}
}

// FromComplete lifts a classical complete relation into a U-relation where
// every tuple carries the empty assignment (the zero-column D encoding of
// Section 3).
func FromComplete(r *rel.Relation) *Relation {
	out := NewRelation(r.Schema())
	for _, t := range r.Tuples() {
		out.Add(nil, t)
	}
	return out
}

// Schema returns the data schema.
func (r *Relation) Schema() rel.Schema { return r.schema }

// Len returns the number of distinct (D, tuple) pairs.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the underlying rows; the slice must not be modified.
func (r *Relation) Tuples() []UTuple { return r.tuples }

// Add inserts a (D, tuple) pair under set semantics and reports whether it
// was new.
func (r *Relation) Add(d vars.Assignment, row rel.Tuple) bool {
	if len(row) != len(r.schema) {
		panic(fmt.Sprintf("urel: tuple arity %d does not match schema %v", len(row), r.schema))
	}
	k := utKey(d, row)
	if _, ok := r.index[k]; ok {
		return false
	}
	r.index[k] = struct{}{}
	r.tuples = append(r.tuples, UTuple{D: d.Clone(), Row: row.Clone()})
	return true
}

// IsComplete reports whether every tuple carries the empty assignment,
// i.e. the relation is a classical complete relation.
func (r *Relation) IsComplete() bool {
	for _, t := range r.tuples {
		if len(t.D) > 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.schema)
	for _, t := range r.tuples {
		out.Add(t.D, t.Row)
	}
	return out
}

// Select implements [[σ_φ R]] := σ_φ(U_R): the condition is evaluated on
// the data columns only, D is untouched.
func Select(r *Relation, pred expr.Pred) *Relation {
	out := NewRelation(r.schema)
	for _, t := range r.tuples {
		if pred.Holds(expr.Env{Schema: r.schema, Tuple: t.Row}) {
			out.Add(t.D, t.Row)
		}
	}
	return out
}

// Project implements [[π_B̄ R]] := π_{D,B̄}(U_R), generalized to the
// paper's arithmetic/renaming targets (ρ with expressions is a special
// case of projection with targets).
func Project(r *Relation, targets []expr.Target) *Relation {
	schema := make(rel.Schema, len(targets))
	for i, tg := range targets {
		schema[i] = tg.As
	}
	out := NewRelation(rel.NewSchema(schema...))
	for _, t := range r.tuples {
		env := expr.Env{Schema: r.schema, Tuple: t.Row}
		row := make(rel.Tuple, len(targets))
		for i, tg := range targets {
			row[i] = tg.Expr.Eval(env)
		}
		out.Add(t.D, row)
	}
	return out
}

// Product implements [[R × S]]: pairs of tuples with consistent D columns,
// merging the assignments. Attribute names must be disjoint; callers
// rename first otherwise.
func Product(a, b *Relation) (*Relation, error) {
	for _, attr := range b.schema {
		if a.schema.Has(attr) {
			return nil, fmt.Errorf("urel: product schemas share attribute %q; rename first", attr)
		}
	}
	schema := append(a.schema.Clone(), b.schema...)
	out := NewRelation(rel.NewSchema(schema...))
	for _, ta := range a.tuples {
		for _, tb := range b.tuples {
			d, ok := ta.D.Union(tb.D)
			if !ok {
				continue // inconsistent worlds never co-occur
			}
			row := append(ta.Row.Clone(), tb.Row...)
			out.Add(d, row)
		}
	}
	return out, nil
}

// Join implements the natural join R ⋈ S: tuples agreeing on common
// attributes with consistent D columns. The output schema is sch(R)
// followed by the non-common attributes of S.
func Join(a, b *Relation) *Relation {
	common := a.schema.Common(b.schema)
	var bExtra []string
	for _, attr := range b.schema {
		if !a.schema.Has(attr) {
			bExtra = append(bExtra, attr)
		}
	}
	schema := append(a.schema.Clone(), bExtra...)
	out := NewRelation(rel.NewSchema(schema...))

	aIdx := make([]int, len(common))
	bIdx := make([]int, len(common))
	for i, c := range common {
		aIdx[i] = a.schema.Index(c)
		bIdx[i] = b.schema.Index(c)
	}
	bExtraIdx := make([]int, len(bExtra))
	for i, c := range bExtra {
		bExtraIdx[i] = b.schema.Index(c)
	}

	// Hash join on the common attributes.
	buckets := make(map[string][]UTuple)
	for _, tb := range b.tuples {
		key := joinKey(tb.Row, bIdx)
		buckets[key] = append(buckets[key], tb)
	}
	for _, ta := range a.tuples {
		key := joinKey(ta.Row, aIdx)
		for _, tb := range buckets[key] {
			d, ok := ta.D.Union(tb.D)
			if !ok {
				continue
			}
			row := ta.Row.Clone()
			for _, j := range bExtraIdx {
				row = append(row, tb.Row[j])
			}
			out.Add(d, row)
		}
	}
	return out
}

func joinKey(row rel.Tuple, idx []int) string {
	sub := make(rel.Tuple, len(idx))
	for i, j := range idx {
		sub[i] = row[j]
	}
	return sub.Key()
}

// Union implements [[R ∪ S]] := U_R ∪ U_S. Schemas must match.
func Union(a, b *Relation) (*Relation, error) {
	if !a.schema.Equal(b.schema) {
		return nil, fmt.Errorf("urel: union schema mismatch %v vs %v", a.schema, b.schema)
	}
	out := a.Clone()
	for _, t := range b.tuples {
		out.Add(t.D, t.Row)
	}
	return out, nil
}

// DiffComplete implements −c, difference applied to relations that are
// complete by c: both inputs must have empty D columns.
func DiffComplete(a, b *Relation) (*Relation, error) {
	if !a.IsComplete() || !b.IsComplete() {
		return nil, fmt.Errorf("urel: -c requires complete relations")
	}
	if !a.schema.Equal(b.schema) {
		return nil, fmt.Errorf("urel: difference schema mismatch %v vs %v", a.schema, b.schema)
	}
	drop := make(map[string]bool, len(b.tuples))
	for _, t := range b.tuples {
		drop[t.Row.Key()] = true
	}
	out := NewRelation(a.schema)
	for _, t := range a.tuples {
		if !drop[t.Row.Key()] {
			out.Add(nil, t.Row)
		}
	}
	return out, nil
}

// Poss implements poss(R) = π_{sch(R)}(U_R): the set of tuples appearing
// in at least one world (every D has positive weight by construction).
func Poss(r *Relation) *rel.Relation {
	out := rel.NewRelation(r.schema)
	for _, t := range r.tuples {
		out.Add(t.Row)
	}
	return out
}

// TupleConf pairs a possible tuple with its clause set F = {f | ⟨f,t̄⟩ ∈
// U_R}, from which confidence is computed exactly (dnf.Confidence) or
// approximately (karpluby).
type TupleConf struct {
	Row rel.Tuple
	F   dnf.F
}

// Lineage groups the relation by data tuple and returns each possible
// tuple's clause set, in first-appearance order.
func Lineage(r *Relation) []TupleConf {
	order := make(map[string]int)
	var out []TupleConf
	for _, t := range r.tuples {
		k := t.Row.Key()
		if i, ok := order[k]; ok {
			out[i].F = append(out[i].F, t.D)
			continue
		}
		order[k] = len(out)
		out = append(out, TupleConf{Row: t.Row.Clone(), F: dnf.F{t.D}})
	}
	return out
}

// ConfExact implements the conf operation with exact probabilities: the
// result is a complete relation with schema sch(R) ∪ {pcol}.
func ConfExact(r *Relation, table *vars.Table, pcol string) (*rel.Relation, error) {
	if r.schema.Has(pcol) {
		return nil, fmt.Errorf("urel: conf column %q already in schema %v", pcol, r.schema)
	}
	out := rel.NewRelation(rel.NewSchema(append(r.schema.Clone(), pcol)...))
	for _, tc := range Lineage(r) {
		p := dnf.Confidence(tc.F, table)
		out.Add(append(tc.Row.Clone(), rel.Float(p)))
	}
	return out, nil
}

// CertExact implements cert(R) = π_{sch(R)}(σ_{P=1}(conf(R))) using exact
// confidence with a small numeric tolerance.
func CertExact(r *Relation, table *vars.Table) *rel.Relation {
	out := rel.NewRelation(r.schema)
	for _, tc := range Lineage(r) {
		if dnf.Confidence(tc.F, table) >= 1-1e-12 {
			out.Add(tc.Row)
		}
	}
	return out
}

// RepairKey implements repair-key_Ā@B(R) by the parsimonious translation
// of Section 3: one fresh random variable per Ā-group (keyed by the key
// attribute values), one alternative per distinct residual tuple of the
// group, with probability weight/groupTotal. Fresh variables are
// registered in table with names derived from prefix. The output keeps
// the full input schema; its D column is the input D extended with the
// fresh variable binding.
//
// The weight column must hold strictly positive numbers. Two tuples of a
// group that agree on all non-key non-weight attributes but carry
// different weights are rejected: the translated W relation would contain
// two probabilities for one (Var, Dom) pair.
func RepairKey(r *Relation, key []string, weight string, table *vars.Table, prefix string) (*Relation, error) {
	keyIdx := make([]int, len(key))
	for i, a := range key {
		j := r.schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("urel: repair-key attribute %q not in schema %v", a, r.schema)
		}
		keyIdx[i] = j
	}
	wIdx := r.schema.Index(weight)
	if wIdx < 0 {
		return nil, fmt.Errorf("urel: repair-key weight %q not in schema %v", weight, r.schema)
	}
	// Residual attributes: (sch(R) − Ā) − B, the Dom of the fresh variable.
	var resIdx []int
	for j := range r.schema {
		if j == wIdx {
			continue
		}
		isKey := false
		for _, k := range keyIdx {
			if j == k {
				isKey = true
				break
			}
		}
		if !isKey {
			resIdx = append(resIdx, j)
		}
	}

	type alt struct {
		weight float64
		name   string
	}
	type group struct {
		key     string
		display string
		alts    []alt
		altIdx  map[string]int
		total   float64
	}
	groups := make(map[string]*group)
	var orderedGroups []*group
	// tupleAlt[i] is the alternative index of input tuple i in its group.
	tupleAlt := make([]int, len(r.tuples))
	tupleGroup := make([]*group, len(r.tuples))

	for i, t := range r.tuples {
		gk := joinKey(t.Row, keyIdx)
		g, ok := groups[gk]
		if !ok {
			g = &group{key: gk, display: displayKey(t.Row, keyIdx), altIdx: make(map[string]int)}
			groups[gk] = g
			orderedGroups = append(orderedGroups, g)
		}
		w := t.Row[wIdx]
		if !w.IsNumeric() || w.AsFloat() <= 0 {
			return nil, fmt.Errorf("urel: repair-key weight %v is not a positive number", w)
		}
		rk := joinKey(t.Row, resIdx)
		if ai, ok := g.altIdx[rk]; ok {
			if g.alts[ai].weight != w.AsFloat() {
				return nil, fmt.Errorf("urel: repair-key group %s has conflicting weights for one alternative", g.display)
			}
			tupleAlt[i] = ai
		} else {
			ai := len(g.alts)
			g.altIdx[rk] = ai
			g.alts = append(g.alts, alt{weight: w.AsFloat(), name: displayKey(t.Row, resIdx)})
			tupleAlt[i] = ai
		}
		tupleGroup[i] = g
	}
	for _, g := range orderedGroups {
		g.total = 0
		for _, a := range g.alts {
			g.total += a.weight
		}
	}

	// Register one fresh variable per group.
	groupVar := make(map[string]vars.Var, len(orderedGroups))
	for _, g := range orderedGroups {
		probs := make([]float64, len(g.alts))
		names := make([]string, len(g.alts))
		for i, a := range g.alts {
			probs[i] = a.weight / g.total
			names[i] = a.name
		}
		name := prefix
		if g.display != "" {
			name = prefix + "[" + g.display + "]"
		}
		groupVar[g.key] = table.Add(name, probs, names)
	}

	out := NewRelation(r.schema)
	for i, t := range r.tuples {
		g := tupleGroup[i]
		v := groupVar[g.key]
		d := t.D.With(v, int32(tupleAlt[i]))
		out.Add(d, t.Row)
	}
	return out, nil
}

func displayKey(row rel.Tuple, idx []int) string {
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = row[j].String()
	}
	return joinStrings(parts, ",")
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// Database is a U-relational database: named U-relations over one shared
// variable table, plus the set of relations that are complete by
// definition (the function c of Section 2).
type Database struct {
	Vars     *vars.Table
	Rels     map[string]*Relation
	Complete map[string]bool
}

// NewDatabase returns an empty database with a fresh variable table.
func NewDatabase() *Database {
	return &Database{Vars: vars.NewTable(), Rels: make(map[string]*Relation), Complete: make(map[string]bool)}
}

// AddComplete registers a classical complete relation (c(R)=1).
func (db *Database) AddComplete(name string, r *rel.Relation) {
	db.Rels[name] = FromComplete(r)
	db.Complete[name] = true
}

// AddURelation registers a U-relation (c(R)=0 unless marked).
func (db *Database) AddURelation(name string, r *Relation, complete bool) {
	db.Rels[name] = r
	db.Complete[name] = complete
}

// Clone returns a deep copy, including the variable table, so query
// evaluation never mutates the input database.
func (db *Database) Clone() *Database {
	out := &Database{Vars: db.Vars.Clone(), Rels: make(map[string]*Relation, len(db.Rels)), Complete: make(map[string]bool, len(db.Complete))}
	for n, r := range db.Rels {
		out.Rels[n] = r.Clone()
	}
	for n, c := range db.Complete {
		out.Complete[n] = c
	}
	return out
}

// String renders the database: each U-relation with its D column
// formatted against the variable table, then the W table.
func (db *Database) String() string {
	names := make([]string, 0, len(db.Rels))
	for n := range db.Rels {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		r := db.Rels[n]
		out += "U_" + n + "(D; " + joinStrings(r.schema, ", ") + ")\n"
		rows := make([]string, 0, len(r.tuples))
		for _, t := range r.tuples {
			rows = append(rows, "  "+t.D.Format(db.Vars)+"  "+t.Row.String())
		}
		sort.Strings(rows)
		for _, row := range rows {
			out += row + "\n"
		}
	}
	out += "W:\n" + db.Vars.String()
	return out
}
