package urel

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/vars"
)

// relFingerprint renders a relation's exact content AND insertion order —
// the bit-identity contract of the partitioned operators is that the
// merged output equals the sequential output tuple for tuple, not just as
// a set.
func relFingerprint(r *Relation) string {
	var b strings.Builder
	for _, t := range r.Tuples() {
		b.WriteString(t.D.Key())
		b.WriteString("||")
		b.WriteString(t.Row.Key())
		b.WriteByte('\n')
	}
	return b.String()
}

func lineageFingerprint(groups []TupleConf) string {
	var b strings.Builder
	for _, g := range groups {
		b.WriteString(g.Row.Key())
		for _, a := range g.F {
			b.WriteString("|")
			b.WriteString(a.Key())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// execDB builds two joinable mid-size U-relations with overlapping D
// columns and deliberate duplicate rows (so dedup and grouping paths both
// fire).
func execDB() (*Relation, *Relation, *vars.Table) {
	rng := rand.New(rand.NewSource(77))
	tab := vars.NewTable()
	nv := 24
	for i := 0; i < nv; i++ {
		tab.Add("v"+strconv.Itoa(i), []float64{0.5, 0.5}, nil)
	}
	mk := func(schema rel.Schema, n, keys int) *Relation {
		r := NewRelation(schema)
		for i := 0; i < n; i++ {
			d := vars.MustAssignment(vars.Binding{
				Var: vars.Var(rng.Intn(nv)),
				Alt: int32(rng.Intn(2)),
			})
			row := make(rel.Tuple, len(schema))
			row[0] = rel.Int(int64(rng.Intn(keys)))
			for j := 1; j < len(row); j++ {
				row[j] = rel.Int(int64(rng.Intn(8))) // few values → duplicates
			}
			r.Add(d, row)
		}
		return r
	}
	a := mk(rel.NewSchema("K", "A"), 9000, 800)
	b := mk(rel.NewSchema("K", "B"), 7000, 800)
	return a, b, tab
}

// TestExecWorkersBitIdentical is the exact-algebra mirror of the sampler's
// worker-count invariant: every partitioned operator produces output
// byte-identical (content and order) to the sequential package-level path
// at workers 1, 4 and 8.
func TestExecWorkersBitIdentical(t *testing.T) {
	a, b, _ := execDB()
	pred := expr.Ge(expr.A("A"), expr.CInt(3))
	targets := []expr.Target{expr.Keep("K"), expr.As("S", expr.Add(expr.A("A"), expr.A("B")))}

	// Product crosses every pair, so cross small prefixes of the inputs
	// (still spanning several partition ranges on the probe side).
	prodA, prodB := prefixRel(a, 9000), renameRel(prefixRel(b, 40), "K2", "B2")

	wantJoin := relFingerprint(Join(a, b))
	joined := Join(a, b)
	wantSel := relFingerprint(Select(joined, pred))
	wantProj := relFingerprint(Project(joined, targets))
	wantLin := lineageFingerprint(Lineage(joined))

	aw, _ := Product(prodA, prodB)
	wantProd := relFingerprint(aw)

	for _, workers := range []int{1, 4, 8} {
		x := NewExec(sched.New(workers), NewCounters())
		if got := relFingerprint(x.Join(a, b)); got != wantJoin {
			t.Errorf("workers=%d: Join output differs from sequential", workers)
		}
		if got := relFingerprint(x.Select(joined, pred)); got != wantSel {
			t.Errorf("workers=%d: Select output differs from sequential", workers)
		}
		if got := relFingerprint(x.Project(joined, targets)); got != wantProj {
			t.Errorf("workers=%d: Project output differs from sequential", workers)
		}
		if got := lineageFingerprint(x.Lineage(joined)); got != wantLin {
			t.Errorf("workers=%d: Lineage output differs from sequential", workers)
		}
		p, err := x.Product(prodA, prodB)
		if err != nil {
			t.Fatal(err)
		}
		if got := relFingerprint(p); got != wantProd {
			t.Errorf("workers=%d: Product output differs from sequential", workers)
		}
	}
}

// prefixRel copies the first n (D, row) pairs of r.
func prefixRel(r *Relation, n int) *Relation {
	out := NewRelation(r.Schema())
	for i, t := range r.Tuples() {
		if i == n {
			break
		}
		out.Add(t.D, t.Row)
	}
	return out
}

// renameRel copies r under fresh attribute names (so Product's disjointness
// check passes).
func renameRel(r *Relation, names ...string) *Relation {
	out := NewRelation(rel.NewSchema(names...))
	for _, t := range r.Tuples() {
		out.Add(t.D, t.Row)
	}
	return out
}

// TestLineageSeqMatchesLineage checks the streaming iterator yields the
// exact groups of the materializing call, in order, and honours early
// termination.
func TestLineageSeqMatchesLineage(t *testing.T) {
	a, b, _ := execDB()
	j := Join(a, b)
	want := Lineage(j)
	var got []TupleConf
	for tc := range LineageSeq(j) {
		got = append(got, tc)
	}
	if lineageFingerprint(got) != lineageFingerprint(want) {
		t.Fatal("LineageSeq groups differ from Lineage")
	}
	n := 0
	for range LineageSeq(j) {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early break iterated %d groups, want 3", n)
	}
}

// TestExecCounters sanity-checks the per-operator statistics: calls and
// tuple counts must reflect the work done.
func TestExecCounters(t *testing.T) {
	a, b, _ := execDB()
	ctrs := NewCounters()
	x := NewExec(sched.New(4), ctrs)
	out := x.Join(a, b)
	x.Lineage(out)
	stats := ctrs.Snapshot()
	js, ok := stats["join"]
	if !ok || js.Calls != 1 {
		t.Fatalf("join stats missing or wrong: %+v", stats)
	}
	if js.TuplesIn != int64(a.Len()+b.Len()) || js.TuplesOut != int64(out.Len()) {
		t.Errorf("join tuple counts: %+v, want in=%d out=%d", js, a.Len()+b.Len(), out.Len())
	}
	if js.Bytes <= 0 {
		t.Errorf("join bytes estimate not positive: %+v", js)
	}
	if ls := stats["lineage"]; ls.Calls != 1 || ls.TuplesIn != int64(out.Len()) {
		t.Errorf("lineage stats: %+v, want 1 call over %d tuples", ls, out.Len())
	}
}

// TestHashedDedupSemantics pins the hash-index change: numeric values that
// are Compare-equal across the int/float divide still dedup together, and
// genuinely distinct pairs stay distinct.
func TestHashedDedupSemantics(t *testing.T) {
	r := NewRelation(rel.NewSchema("A"))
	if !r.Add(nil, rel.Tuple{rel.Int(1)}) {
		t.Fatal("first insert rejected")
	}
	if r.Add(nil, rel.Tuple{rel.Float(1)}) {
		t.Error("⟨1.0⟩ did not dedup against ⟨1⟩")
	}
	tab := vars.NewTable()
	v := tab.Add("x", []float64{0.5, 0.5}, nil)
	if !r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 1}), rel.Tuple{rel.Int(1)}) {
		t.Error("distinct D column treated as duplicate")
	}
	if r.Len() != 2 {
		t.Fatalf("relation has %d pairs, want 2", r.Len())
	}
}
