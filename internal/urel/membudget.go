package urel

import (
	"fmt"
	"sync/atomic"
)

// MemLimitError reports a tripped memory budget. Evaluators that own a
// MemBudget surface it between operators (callers typically translate it
// into their own typed limit error).
type MemLimitError struct {
	Limit int64
	Used  int64
}

// Error implements the error interface.
func (e *MemLimitError) Error() string {
	return fmt.Sprintf("urel: memory limit exceeded: ~%d bytes materialized > %d", e.Used, e.Limit)
}

// MemBudget bounds the bytes an evaluation materializes, using the same
// running footprint estimate the operator statistics report (value and
// condition payloads plus per-tuple bookkeeping — an estimate of bytes
// built, cumulative across operators and evaluation passes, not an
// allocator measurement or a peak-RSS bound).
//
// Enforcement is cooperative and two-layered: every operator adds its
// output's estimated footprint when it records statistics, and the
// partitioned operators with multiplicative blow-up potential (join,
// product) additionally probe the budget with their in-flight range-local
// bytes, stopping production mid-range once it trips. A tripped budget
// un-trips only through Release (bytes leaving memory for a spill file);
// without spilling, the evaluator turns the trip into a typed limit error
// between operators, and whatever partial output the aborted operator
// produced is discarded with the evaluation. With spilling enabled the
// limit is a high-water mark for the live set, not a hard bound — see
// Exec.WithSpill.
//
// A MemBudget is safe for concurrent use (operators record from pool
// workers). All methods are nil-receiver safe, so call sites need no
// budget-configured check.
type MemBudget struct {
	limit   int64
	used    atomic.Int64
	tripped atomic.Bool
}

// NewMemBudget returns a budget of limit estimated bytes; limit <= 0
// returns nil (no budget — every method on a nil budget is a no-op).
func NewMemBudget(limit int64) *MemBudget {
	if limit <= 0 {
		return nil
	}
	return &MemBudget{limit: limit}
}

// Add records n estimated bytes as materialized, tripping the budget when
// the running total exceeds the limit.
func (b *MemBudget) Add(n int64) {
	if b == nil {
		return
	}
	if b.used.Add(n) > b.limit {
		b.tripped.Store(true)
	}
}

// Probe reports whether the budget is (or would be) exhausted with
// inflight additional bytes on top of the recorded total, tripping it if
// so. Operators call it with range-local byte counts to stop producing
// output before the overshoot is ever recorded.
func (b *MemBudget) Probe(inflight int64) bool {
	if b == nil {
		return false
	}
	if b.tripped.Load() {
		return true
	}
	if b.used.Load()+inflight > b.limit {
		b.tripped.Store(true)
	}
	return b.tripped.Load()
}

// Release subtracts n estimated bytes — a spilled relation's footprint
// leaving memory — and clears the tripped flag when the total is back
// under the limit, so an evaluation that sheds enough weight to disk
// continues instead of aborting.
func (b *MemBudget) Release(n int64) {
	if b == nil {
		return
	}
	if b.used.Add(-n) <= b.limit {
		b.tripped.Store(false)
	}
}

// untrip clears the tripped flag unconditionally: under out-of-core
// execution (Exec.WithSpill) the budget decides residency, never aborts,
// even when one operator's working set alone exceeds the limit.
func (b *MemBudget) untrip() {
	if b != nil {
		b.tripped.Store(false)
	}
}

// Exceeded reports whether the budget has tripped.
func (b *MemBudget) Exceeded() bool { return b != nil && b.tripped.Load() }

// Err returns a *MemLimitError once the budget has tripped, nil before.
func (b *MemBudget) Err() error {
	if !b.Exceeded() {
		return nil
	}
	return &MemLimitError{Limit: b.limit, Used: b.Used()}
}

// Limit returns the configured byte limit (0 for a nil budget).
func (b *MemBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used returns the recorded byte total (0 for a nil budget).
func (b *MemBudget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}
