package urel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"

	"repro/internal/rel"
	"repro/internal/vars"
)

// Spill manages one evaluation's spill directory: when an Exec runs with
// both a memory budget and a Spill attached, intermediate relations whose
// combined footprint exceeds the budget are written to temp files and
// dropped from memory, then transparently rehydrated when a later operator
// needs them. The budget then acts as a high-water mark for the live set
// instead of a hard abort — see docs/STORAGE.md "Spill files".
//
// Spill files are private to the evaluation (row-oriented, unversioned —
// the columnar pdbstore format in internal/store is the durable one) and
// the whole directory is removed by Close. A relation's file is written at
// most once: stored tuples are immutable, so re-spilling a rehydrated
// relation just drops its in-memory state again.
//
// I/O errors are sticky: the first failure is recorded and reported by
// Err, operators keep going (possibly with empty inputs), and the
// evaluator aborts the evaluation at the next operator boundary — results
// are discarded, never silently wrong.
type Spill struct {
	dir     string
	seq     int
	written atomic.Int64
	files   int
	err     error
}

// NewSpill creates a fresh spill directory under parent ("" selects the
// system temp directory).
func NewSpill(parent string) (*Spill, error) {
	dir, err := os.MkdirTemp(parent, "pdb-spill-*")
	if err != nil {
		return nil, fmt.Errorf("urel: creating spill directory: %w", err)
	}
	return &Spill{dir: dir}, nil
}

// Dir returns the spill directory path.
func (s *Spill) Dir() string { return s.dir }

// Bytes returns the total bytes written to spill files so far.
func (s *Spill) Bytes() int64 { return s.written.Load() }

// Files returns the number of spill files created so far.
func (s *Spill) Files() int { return s.files }

// Err returns the first spill I/O failure, nil before any.
func (s *Spill) Err() error { return s.err }

func (s *Spill) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Close removes the spill directory and every file in it.
func (s *Spill) Close() error { return os.RemoveAll(s.dir) }

// spillState is a Relation's connection to its spill file.
type spillState struct {
	sp      *Spill
	path    string
	n       int  // pair count in the file
	written bool // file holds the relation's pairs
}

// Spilled reports whether the relation's tuples currently live on disk.
func (r *Relation) Spilled() bool { return r.spilled }

// mustResident guards the direct accessors: reading a spilled relation's
// tuples is a sequencing bug (the Exec hydrates inputs before every
// operator), and returning empty data would silently corrupt results.
func (r *Relation) mustResident(op string) {
	if r.spilled {
		panic("urel: " + op + " on a spilled relation (operator access must go through Exec, which rehydrates inputs)")
	}
}

// spillOut writes r's pairs to its spill file (first spill only — tuples
// are immutable) and drops the in-memory tuple storage. The footprint
// estimate r.bytes survives for budget re-accounting on hydrate. On I/O
// failure the relation stays resident and the error is sticky on s.
func (s *Spill) spillOut(r *Relation) {
	if r.spilled || s.err != nil {
		return
	}
	if r.sp == nil {
		s.seq++
		s.files++
		r.sp = &spillState{sp: s, path: fmt.Sprintf("%s/rel-%06d.spill", s.dir, s.seq)}
	}
	if !r.sp.written {
		n, err := writePairs(r.sp.path, r)
		if err != nil {
			s.fail(fmt.Errorf("urel: spilling relation: %w", err))
			return
		}
		r.sp.written = true
		r.sp.n = len(r.tuples)
		s.written.Add(n)
	}
	r.tuples, r.hashes, r.next, r.index = nil, nil, nil, nil
	r.spilled = true
}

// hydrate reloads a spilled relation from its file, rebuilding the tuple
// list, stored hashes, and dedup index in the original insertion order —
// the rebuilt relation is indistinguishable from one that never spilled,
// which is what keeps spilled evaluations bit-identical to in-memory ones.
func (r *Relation) hydrate() error {
	if !r.spilled {
		return nil
	}
	f, err := os.Open(r.sp.path)
	if err != nil {
		return fmt.Errorf("urel: rehydrating relation: %w", err)
	}
	defer f.Close()
	r.index = make(map[uint64]int32, r.sp.n)
	r.tuples = make([]UTuple, 0, r.sp.n)
	r.hashes = make([]uint64, 0, r.sp.n)
	r.next = make([]int32, 0, r.sp.n)
	r.bytes = 0
	br := bufio.NewReaderSize(f, 1<<16)
	for i := 0; i < r.sp.n; i++ {
		h, d, row, err := readPair(br, len(r.schema))
		if err != nil {
			return fmt.Errorf("urel: rehydrating relation: %w", err)
		}
		r.addPair(h, d, row, false)
	}
	r.spilled = false
	return nil
}

// writePairs streams r's (hash, D, row) pairs to path, returning the bytes
// written.
func writePairs(path string, r *Relation) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var scratch [binary.MaxVarintLen64]byte
	n := int64(0)
	put := func(b []byte) error {
		n += int64(len(b))
		_, err := bw.Write(b)
		return err
	}
	putUvarint := func(v uint64) error {
		return put(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	for i, t := range r.tuples {
		binary.LittleEndian.PutUint64(scratch[:8], r.hashes[i])
		if err := put(scratch[:8]); err != nil {
			f.Close()
			return n, err
		}
		if err := putUvarint(uint64(len(t.D))); err != nil {
			f.Close()
			return n, err
		}
		for _, b := range t.D {
			if err := putUvarint(uint64(uint32(b.Var))); err != nil {
				f.Close()
				return n, err
			}
			if err := putUvarint(uint64(uint32(b.Alt))); err != nil {
				f.Close()
				return n, err
			}
		}
		for _, v := range t.Row {
			if err := writeValue(put, putUvarint, scratch[:], v); err != nil {
				f.Close()
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}

// Spill-file value tags (internal; distinct from the pdbstore wire tags,
// which are a versioned on-disk contract — these files never outlive the
// evaluation that wrote them).
const (
	spNull = iota
	spBool0
	spBool1
	spInt
	spFloat
	spString
)

func writeValue(put func([]byte) error, putUvarint func(uint64) error, scratch []byte, v rel.Value) error {
	switch v.Kind() {
	case rel.NullKind:
		scratch[0] = spNull
		return put(scratch[:1])
	case rel.BoolKind:
		tag := byte(spBool0)
		if v.AsBool() {
			tag = spBool1
		}
		scratch[0] = tag
		return put(scratch[:1])
	case rel.IntKind:
		scratch[0] = spInt
		if err := put(scratch[:1]); err != nil {
			return err
		}
		return put(scratch[:binary.PutVarint(scratch, v.AsInt())])
	case rel.FloatKind:
		scratch[0] = spFloat
		binary.LittleEndian.PutUint64(scratch[1:9], math.Float64bits(v.AsFloat()))
		return put(scratch[:9])
	default:
		scratch[0] = spString
		if err := put(scratch[:1]); err != nil {
			return err
		}
		s := v.AsString()
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		return put([]byte(s))
	}
}

// readPair decodes one (hash, D, row) record.
func readPair(br *bufio.Reader, arity int) (uint64, vars.Assignment, rel.Tuple, error) {
	var hb [8]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return 0, nil, nil, err
	}
	h := binary.LittleEndian.Uint64(hb[:])
	nd, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, nil, err
	}
	var d vars.Assignment
	if nd > 0 {
		d = make(vars.Assignment, nd)
		for i := range d {
			vv, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, nil, nil, err
			}
			av, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, nil, nil, err
			}
			d[i] = vars.Binding{Var: vars.Var(uint32(vv)), Alt: int32(uint32(av))}
		}
	}
	row := make(rel.Tuple, arity)
	for i := range row {
		v, err := readValue(br)
		if err != nil {
			return 0, nil, nil, err
		}
		row[i] = v
	}
	return h, d, row, nil
}

func readValue(br *bufio.Reader) (rel.Value, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return rel.Value{}, err
	}
	switch tag {
	case spNull:
		return rel.Null(), nil
	case spBool0:
		return rel.Bool(false), nil
	case spBool1:
		return rel.Bool(true), nil
	case spInt:
		i, err := binary.ReadVarint(br)
		if err != nil {
			return rel.Value{}, err
		}
		return rel.Int(i), nil
	case spFloat:
		var fb [8]byte
		if _, err := io.ReadFull(br, fb[:]); err != nil {
			return rel.Value{}, err
		}
		return rel.Float(math.Float64frombits(binary.LittleEndian.Uint64(fb[:]))), nil
	case spString:
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return rel.Value{}, err
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return rel.Value{}, err
		}
		return rel.String(string(buf)), nil
	default:
		return rel.Value{}, fmt.Errorf("corrupt spill record: tag %d", tag)
	}
}
