package urel

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/vars"
)

// benchRelation builds an n-tuple U-relation over nv binary variables
// with random single-binding D columns.
func benchRelation(rng *rand.Rand, schema rel.Schema, n int, tab *vars.Table, nv int) *Relation {
	base := tab.Len()
	for i := 0; i < nv; i++ {
		tab.Add("b"+strconv.Itoa(base+i), []float64{0.5, 0.5}, nil)
	}
	r := NewRelation(schema)
	for i := 0; i < n; i++ {
		d := vars.MustAssignment(vars.Binding{
			Var: vars.Var(base + rng.Intn(nv)),
			Alt: int32(rng.Intn(2)),
		})
		row := make(rel.Tuple, len(schema))
		for j := range row {
			row[j] = rel.Int(int64(rng.Intn(16)))
		}
		r.Add(d, row)
	}
	return r
}

func BenchmarkURelJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := vars.NewTable()
	l := benchRelation(rng, rel.NewSchema("A", "B"), 256, tab, 32)
	r := benchRelation(rng, rel.NewSchema("B", "C"), 256, tab, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(l, r)
	}
}

func BenchmarkURelProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := vars.NewTable()
	l := benchRelation(rng, rel.NewSchema("A"), 64, tab, 16)
	r := benchRelation(rng, rel.NewSchema("B"), 64, tab, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Product(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkURelSelectProject(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tab := vars.NewTable()
	r := benchRelation(rng, rel.NewSchema("A", "B"), 1024, tab, 64)
	pred := expr.Ge(expr.A("A"), expr.CInt(8))
	targets := []expr.Target{expr.As("S", expr.Add(expr.A("A"), expr.A("B")))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Project(Select(r, pred), targets)
	}
}

func BenchmarkRepairKey(b *testing.B) {
	rows := make([]rel.Tuple, 0, 512)
	for i := 0; i < 512; i++ {
		rows = append(rows, rel.Tuple{
			rel.Int(int64(i % 64)), // 64 key groups of 8 alternatives
			rel.Int(int64(i)),
			rel.Float(1 + float64(i%7)),
		})
	}
	base := rel.FromRows(rel.NewSchema("K", "V", "W"), rows...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := vars.NewTable()
		if _, err := RepairKey(FromComplete(base), []string{"K"}, "W", tab, "rk"); err != nil {
			b.Fatal(err)
		}
	}
}

// largeRelation builds an n-tuple U-relation whose join attribute (the
// first schema column) takes values in [0, keys), so an equi-join of two
// such relations has ~n²/keys matching pairs. D columns are single-binding
// assignments over nv binary variables.
func largeRelation(rng *rand.Rand, schema rel.Schema, n, keys int, tab *vars.Table, nv int) *Relation {
	base := tab.Len()
	for i := 0; i < nv; i++ {
		tab.Add("L"+strconv.Itoa(base+i), []float64{0.5, 0.5}, nil)
	}
	r := NewRelation(schema)
	for i := 0; i < n; i++ {
		d := vars.MustAssignment(vars.Binding{
			Var: vars.Var(base + rng.Intn(nv)),
			Alt: int32(rng.Intn(2)),
		})
		row := make(rel.Tuple, len(schema))
		row[0] = rel.Int(int64(rng.Intn(keys)))
		for j := 1; j < len(row); j++ {
			row[j] = rel.Int(int64(i*len(row) + j)) // distinct fillers: no dedup collapse
		}
		r.Add(d, row)
	}
	return r
}

// BenchmarkJoinLarge joins two 100k-tuple U-relations on one shared
// attribute with ~100k matching pairs — the exact-algebra hot path the
// partitioned hash join targets. Tracked by CI's benchstat gate on both
// sec/op and allocs/op.
func BenchmarkJoinLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	tab := vars.NewTable()
	l := largeRelation(rng, rel.NewSchema("K", "A1", "A2"), 100_000, 100_000, tab, 64)
	r := largeRelation(rng, rel.NewSchema("K", "B1", "B2"), 100_000, 100_000, tab, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(l, r)
	}
}

// BenchmarkProductWide crosses a 512-tuple and a 256-tuple wide (8-column)
// relation: ~131k output tuples of 16 columns each, stressing per-pair
// assignment union and row construction.
func BenchmarkProductWide(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	tab := vars.NewTable()
	schemaA := rel.NewSchema("A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7")
	schemaB := rel.NewSchema("B0", "B1", "B2", "B3", "B4", "B5", "B6", "B7")
	l := largeRelation(rng, schemaA, 512, 512, tab, 32)
	r := largeRelation(rng, schemaB, 256, 256, tab, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Product(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLineageGroup groups a 200k-tuple U-relation with ~20k distinct
// data tuples (10 clauses per tuple on average) — the conf/σ̂ lineage
// grouping path.
func BenchmarkLineageGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	tab := vars.NewTable()
	nv := 128
	for i := 0; i < nv; i++ {
		tab.Add("g"+strconv.Itoa(i), []float64{0.5, 0.5}, nil)
	}
	r := NewRelation(rel.NewSchema("ID", "V"))
	for i := 0; i < 200_000; i++ {
		d := vars.MustAssignment(vars.Binding{
			Var: vars.Var(rng.Intn(nv)),
			Alt: int32(rng.Intn(2)),
		})
		row := rel.Tuple{rel.Int(int64(i % 20_000)), rel.Int(int64(i % 16))}
		r.Add(d, row)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lineage(r)
	}
}

func BenchmarkConfExact(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tab := vars.NewTable()
	r := benchRelation(rng, rel.NewSchema("A"), 128, tab, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConfExact(r, tab, "P"); err != nil {
			b.Fatal(err)
		}
	}
}
