package urel

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/vars"
)

// benchRelation builds an n-tuple U-relation over nv binary variables
// with random single-binding D columns.
func benchRelation(rng *rand.Rand, schema rel.Schema, n int, tab *vars.Table, nv int) *Relation {
	base := tab.Len()
	for i := 0; i < nv; i++ {
		tab.Add("b"+strconv.Itoa(base+i), []float64{0.5, 0.5}, nil)
	}
	r := NewRelation(schema)
	for i := 0; i < n; i++ {
		d := vars.MustAssignment(vars.Binding{
			Var: vars.Var(base + rng.Intn(nv)),
			Alt: int32(rng.Intn(2)),
		})
		row := make(rel.Tuple, len(schema))
		for j := range row {
			row[j] = rel.Int(int64(rng.Intn(16)))
		}
		r.Add(d, row)
	}
	return r
}

func BenchmarkURelJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := vars.NewTable()
	l := benchRelation(rng, rel.NewSchema("A", "B"), 256, tab, 32)
	r := benchRelation(rng, rel.NewSchema("B", "C"), 256, tab, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(l, r)
	}
}

func BenchmarkURelProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := vars.NewTable()
	l := benchRelation(rng, rel.NewSchema("A"), 64, tab, 16)
	r := benchRelation(rng, rel.NewSchema("B"), 64, tab, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Product(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkURelSelectProject(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tab := vars.NewTable()
	r := benchRelation(rng, rel.NewSchema("A", "B"), 1024, tab, 64)
	pred := expr.Ge(expr.A("A"), expr.CInt(8))
	targets := []expr.Target{expr.As("S", expr.Add(expr.A("A"), expr.A("B")))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Project(Select(r, pred), targets)
	}
}

func BenchmarkRepairKey(b *testing.B) {
	rows := make([]rel.Tuple, 0, 512)
	for i := 0; i < 512; i++ {
		rows = append(rows, rel.Tuple{
			rel.Int(int64(i % 64)), // 64 key groups of 8 alternatives
			rel.Int(int64(i)),
			rel.Float(1 + float64(i%7)),
		})
	}
	base := rel.FromRows(rel.NewSchema("K", "V", "W"), rows...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := vars.NewTable()
		if _, err := RepairKey(FromComplete(base), []string{"K"}, "W", tab, "rk"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfExact(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tab := vars.NewTable()
	r := benchRelation(rng, rel.NewSchema("A"), 128, tab, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConfExact(r, tab, "P"); err != nil {
			b.Fatal(err)
		}
	}
}
