package urel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/rel"
	"repro/internal/vars"
)

func altRow(specs ...AttrAlternatives) []AttrAlternatives { return specs }

func twoWay(a, b rel.Value, p float64) AttrAlternatives {
	return AttrAlternatives{Values: []rel.Value{a, b}, Probs: []float64{p, 1 - p}}
}

func TestVerticalDecompositionBasic(t *testing.T) {
	tab := vars.NewTable()
	schema := rel.NewSchema("Name", "City")
	rows := [][]AttrAlternatives{
		altRow(twoWay(rel.String("Ann"), rel.String("Anna"), 0.7), Certain(rel.String("NYC"))),
		altRow(Certain(rel.String("Bob")), twoWay(rel.String("LA"), rel.String("SF"), 0.4)),
	}
	vd, err := BuildAttributeUncertainty(tab, schema, rows, "TID", "u")
	if err != nil {
		t.Fatal(err)
	}
	// Sum of alternatives: (2+1) + (1+2) = 6 U-tuples.
	if vd.Size() != 6 {
		t.Errorf("Size = %d, want 6", vd.Size())
	}
	joined := vd.Joined()
	// Product of alternatives: 2·1 + 1·2 = 4 joined U-tuples.
	if joined.Len() != 4 {
		t.Errorf("Joined len = %d, want 4", joined.Len())
	}
	conf, err := ConfExact(joined, tab, "P")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Ann|NYC":  0.7,
		"Anna|NYC": 0.3,
		"Bob|LA":   0.4,
		"Bob|SF":   0.6,
	}
	for _, tp := range conf.Tuples() {
		key := conf.Value(tp, "Name").AsString() + "|" + conf.Value(tp, "City").AsString()
		if math.Abs(conf.Value(tp, "P").AsFloat()-want[key]) > 1e-12 {
			t.Errorf("conf(%s) = %v, want %v", key, conf.Value(tp, "P").AsFloat(), want[key])
		}
	}
}

func TestVerticalValidation(t *testing.T) {
	tab := vars.NewTable()
	schema := rel.NewSchema("A")
	if _, err := BuildAttributeUncertainty(tab, schema, [][]AttrAlternatives{{}}, "TID", "u"); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := BuildAttributeUncertainty(tab, schema, nil, "A", "u"); err == nil {
		t.Error("TID collision must fail")
	}
	bad := [][]AttrAlternatives{altRow(AttrAlternatives{Values: []rel.Value{rel.Int(1)}, Probs: []float64{0.5, 0.5}})}
	if _, err := BuildAttributeUncertainty(tab, schema, bad, "TID", "u2"); err == nil {
		t.Error("malformed alternatives must fail")
	}
	if _, err := FlatEncoding(tab, schema, [][]AttrAlternatives{{}}, "f"); err == nil {
		t.Error("flat arity mismatch must fail")
	}
}

// The decomposition represents the same distribution as the flat encoding
// while staying exponentially smaller: with k independently 2-way
// uncertain attributes, vertical size is 2k per row, flat size is 2^k.
func TestVerticalSuccinctnessAndEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 6
	schema := make(rel.Schema, k)
	for j := range schema {
		schema[j] = "A" + string(rune('0'+j))
	}
	row := make([]AttrAlternatives, k)
	for j := range row {
		p := 0.2 + 0.6*rng.Float64()
		row[j] = twoWay(rel.Int(int64(2*j)), rel.Int(int64(2*j+1)), p)
	}
	rows := [][]AttrAlternatives{row}

	vtab := vars.NewTable()
	vd, err := BuildAttributeUncertainty(vtab, rel.NewSchema(schema...), rows, "TID", "v")
	if err != nil {
		t.Fatal(err)
	}
	ftab := vars.NewTable()
	flat, err := FlatEncoding(ftab, rel.NewSchema(schema...), rows, "f")
	if err != nil {
		t.Fatal(err)
	}
	if vd.Size() != 2*k {
		t.Errorf("vertical size = %d, want %d", vd.Size(), 2*k)
	}
	if flat.Len() != 1<<k {
		t.Errorf("flat size = %d, want %d", flat.Len(), 1<<k)
	}

	// Same distribution: every possible tuple has equal confidence.
	confV, err := ConfExact(vd.Joined(), vtab, "P")
	if err != nil {
		t.Fatal(err)
	}
	confF, err := ConfExact(flat, ftab, "P")
	if err != nil {
		t.Fatal(err)
	}
	if confV.Len() != confF.Len() {
		t.Fatalf("possible-tuple counts differ: %d vs %d", confV.Len(), confF.Len())
	}
	for _, tp := range confV.Tuples() {
		stored, ok := confF.Lookup(tp)
		if !ok {
			// Confidence columns may differ numerically; match on data.
			data := tp[:len(tp)-1]
			found := false
			for _, ft := range confF.Tuples() {
				if ft[:len(ft)-1].Equal(data) {
					stored, found = ft, true
					break
				}
			}
			if !found {
				t.Fatalf("tuple %v missing in flat encoding", data)
			}
		}
		pv := tp[len(tp)-1].AsFloat()
		pf := stored[len(stored)-1].AsFloat()
		if math.Abs(pv-pf) > 1e-9 {
			t.Errorf("confidence mismatch for %v: %v vs %v", tp[:len(tp)-1], pv, pf)
		}
	}
}
