package urel

import (
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/dnf"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/vars"
)

// Exec evaluates the U-relational operators with a fixed degree of
// parallelism and optional per-operator statistics. The package-level
// operator functions delegate to a sequential Exec; evaluators that own a
// sched.Pool build one Exec per evaluation and route every operator
// through it.
//
// Determinism invariant (the exact-algebra mirror of the sampler's): every
// partitioned operator splits its probe/grouping input into fixed-size
// ranges whose boundaries depend only on the input length — never on the
// worker count — and merges per-range outputs in range order. The merged
// relation is therefore bit-identical for any Workers value, and identical
// to the classic sequential nested-loop order.
type Exec struct {
	pool *sched.Pool
	ctrs *Counters
	mem  *MemBudget
	// spill, when set together with mem, switches the budget from a hard
	// abort to out-of-core execution: see WithSpill.
	spill *Spill
	// reg tracks this evaluation's spill-eligible intermediates (every
	// operator output produced under spill mode) in production order — the
	// order manage sheds them in when the budget is over its limit.
	reg []*Relation
}

// NewExec returns an Exec over the pool (nil selects a one-worker pool)
// recording operator statistics into ctrs (nil disables recording).
func NewExec(pool *sched.Pool, ctrs *Counters) *Exec {
	if pool == nil {
		pool = sched.New(1)
	}
	return &Exec{pool: pool, ctrs: ctrs}
}

// WithBudget attaches a memory budget: every operator charges its output's
// estimated footprint against it, and the partitioned blow-up operators
// (join, product) stop producing mid-range once it trips. Returns x for
// chaining; a nil budget disables the checks.
func (x *Exec) WithBudget(b *MemBudget) *Exec {
	x.mem = b
	return x
}

// WithSpill attaches a spill manager, turning the memory budget into
// out-of-core execution instead of a hard limit: operators always produce
// their complete output (the mid-range early stops are disabled — a
// truncated output that later continued would be silently wrong), and
// after each operator the Exec sheds intermediate relations to spill
// files, oldest first, until the live charged set is back under the
// budget. Spilled inputs rehydrate transparently when a later operator
// needs them, and a rehydrated relation is bit-identical to one that
// never spilled, so results match the in-memory evaluation exactly.
//
// The budget is then a high-water mark, not a bound: the working set of
// any single operator (its inputs plus its output) stays resident
// regardless of the limit. Spill I/O failures are sticky on the manager;
// evaluators check Err at each operator boundary and abort, so a failed
// spill never yields partial results. Callers driving an Exec concurrently
// (parallel plan branches) must serialize under spill — the shed registry
// is not synchronized.
func (x *Exec) WithSpill(s *Spill) *Exec {
	x.spill = s
	return x
}

// Err reports the evaluation's first spill I/O failure (nil without a
// spill manager or before any failure). Evaluators check it at operator
// boundaries, next to the memory budget.
func (x *Exec) Err() error {
	if x.spill == nil {
		return nil
	}
	return x.spill.Err()
}

// outOfCore reports whether spill-backed execution is active (it needs
// both the shed target — a budget — and somewhere to shed to).
func (x *Exec) outOfCore() bool { return x.spill != nil && x.mem != nil }

// probeStop is the operators' mid-range budget probe: under out-of-core
// execution it never stops production (outputs must be complete — the
// budget overshoot is resolved by shedding afterwards), otherwise it is
// MemBudget.Probe.
func (x *Exec) probeStop(inflight int64) bool {
	if x.outOfCore() {
		return false
	}
	return x.mem.Probe(inflight)
}

// ensure rehydrates any spilled inputs before an operator touches their
// tuples, re-charging their footprint against the budget. Hydration
// failures are sticky on the spill manager (the operator then sees an
// empty input; the evaluator aborts on Err before the bogus result is
// used).
func (x *Exec) ensure(rs ...*Relation) {
	for _, r := range rs {
		if r == nil || !r.spilled {
			continue
		}
		if err := r.hydrate(); err != nil {
			x.spill.fail(err)
			continue
		}
		x.mem.Add(r.bytes)
	}
}

// Ensure is the exported form of ensure for evaluation drivers: final
// results and relations read outside the Exec's own operators must be
// resident before their tuples are touched.
func (x *Exec) Ensure(rs ...*Relation) { x.ensure(rs...) }

// produced registers out as spill-eligible and sheds intermediates while
// the budget is over its limit, keeping the current operator's relations
// (its output and inputs — the caller reads them right after) resident.
// No-op outside out-of-core mode.
func (x *Exec) produced(out *Relation, ins ...*Relation) {
	if !x.outOfCore() {
		return
	}
	if out != nil {
		x.reg = append(x.reg, out)
	}
	x.manage(out, ins)
}

// manage sheds registered intermediates, oldest first, until the charged
// live set is back under the budget, then clears the tripped flag: under
// out-of-core execution the budget never aborts the evaluation, it only
// decides what lives in memory.
func (x *Exec) manage(out *Relation, ins []*Relation) {
	pinned := func(r *Relation) bool {
		if r == out {
			return true
		}
		for _, in := range ins {
			if r == in {
				return true
			}
		}
		return false
	}
	for _, r := range x.reg {
		if x.mem.Used() <= x.mem.Limit() {
			break
		}
		if r.spilled || pinned(r) {
			continue
		}
		x.spill.spillOut(r)
		if !r.spilled {
			break // write failed (sticky on the manager); stop shedding
		}
		x.mem.Release(r.bytes)
	}
	x.mem.untrip()
}

// seqExec backs the package-level operator functions: one worker, no
// statistics.
var seqExec = &Exec{pool: sched.New(1)}

// rangeTuples is the partition granularity of the parallel operators:
// probe/grouping inputs are split into ranges of this many tuples. The
// value is a constant of the data layout, not of the worker count, so
// partition boundaries — and hence merged output order — are identical no
// matter how many workers run the ranges.
const rangeTuples = 4096

func numRanges(n int) int { return (n + rangeTuples - 1) / rangeTuples }

// forRanges fans fn out over the fixed ranges of [0, n). With one worker
// the ranges run in order on the calling goroutine.
func (x *Exec) forRanges(n int, fn func(rg, lo, hi int)) {
	nr := numRanges(n)
	if nr == 0 {
		return
	}
	// fn never fails and the context is never cancelled here: operator
	// granularity cancellation is the evaluator's job.
	_ = x.pool.ForEach(nr, func(rg int) error {
		lo := rg * rangeTuples
		hi := lo + rangeTuples
		if hi > n {
			hi = n
		}
		fn(rg, lo, hi)
		return nil
	})
}

// Estimated per-tuple memory footprint, used for the Bytes counters.
const (
	valueBytes   = int64(unsafe.Sizeof(rel.Value{}))
	bindingBytes = int64(unsafe.Sizeof(vars.Binding{}))
	// Two slice headers (row, D) plus the hash/index bookkeeping.
	pairOverheadBytes = 2*24 + 12
	// One clause of a lineage group: an Assignment slice header (the
	// bindings themselves are shared with the relation).
	clauseHeaderBytes = 24
)

func pairBytes(d vars.Assignment, row rel.Tuple) int64 {
	return int64(len(row))*valueBytes + int64(len(d))*bindingBytes + pairOverheadBytes
}

// record adds one operator application to the statistics (no-op without a
// collector) and charges its output footprint against the memory budget.
func (x *Exec) record(op string, tuplesIn, tuplesOut, bytes int64) {
	x.mem.Add(bytes)
	if x.ctrs == nil {
		return
	}
	c := x.ctrs.cell(op)
	c.calls.Add(1)
	c.in.Add(tuplesIn)
	c.out.Add(tuplesOut)
	c.bytes.Add(bytes)
}

// relBytes reports the relation's footprint estimate, maintained
// incrementally on insert — O(1), so always-on statistics cost no extra
// output pass.
func (x *Exec) relBytes(r *Relation) int64 { return r.bytes }

// Select implements σ_φ: a single pass reusing the input's stored pair
// hashes, so surviving tuples are re-indexed without hashing or cloning.
func (x *Exec) Select(r *Relation, pred expr.Pred) *Relation {
	x.ensure(r)
	out := NewRelation(r.schema)
	for i, t := range r.tuples {
		if pred.Holds(expr.Env{Schema: r.schema, Tuple: t.Row}) {
			out.addPair(r.hashes[i], t.D, t.Row, false)
		}
	}
	x.record("select", int64(len(r.tuples)), int64(out.Len()), x.relBytes(out))
	x.produced(out, r)
	return out
}

// Project implements π with expression targets. Output rows are built
// once and handed to the relation without a defensive clone.
func (x *Exec) Project(r *Relation, targets []expr.Target) *Relation {
	x.ensure(r)
	schema := make(rel.Schema, len(targets))
	for i, tg := range targets {
		schema[i] = tg.As
	}
	out := NewRelation(rel.NewSchema(schema...))
	for _, t := range r.tuples {
		env := expr.Env{Schema: r.schema, Tuple: t.Row}
		row := make(rel.Tuple, len(targets))
		for i, tg := range targets {
			row[i] = tg.Expr.Eval(env)
		}
		out.addPair(utHash(t.D, row), t.D, row, false)
	}
	x.record("project", int64(len(r.tuples)), int64(out.Len()), x.relBytes(out))
	x.produced(out, r)
	return out
}

// pairOut is one constructed output pair of a partitioned binary operator,
// carrying its precomputed dedup hash to the merge phase.
type pairOut struct {
	h   uint64
	d   vars.Assignment
	row rel.Tuple
}

// mergeRanges folds per-range outputs into out in range order — the
// deterministic merge making partitioned results worker-count-independent.
func (r *Relation) mergeRanges(outs [][]pairOut) {
	for _, buf := range outs {
		for _, p := range buf {
			r.addPair(p.h, p.d, p.row, false)
		}
	}
}

// Product implements [[R × S]] with the pair enumeration partitioned
// across the pool: each fixed-size range of R's tuples is crossed with all
// of S by one worker, and per-range outputs merge in range order.
func (x *Exec) Product(a, b *Relation) (*Relation, error) {
	for _, attr := range b.schema {
		if a.schema.Has(attr) {
			return nil, fmt.Errorf("urel: product schemas share attribute %q; rename first", attr)
		}
	}
	x.ensure(a, b)
	schema := append(a.schema.Clone(), b.schema...)
	out := NewRelation(rel.NewSchema(schema...))
	la := len(a.schema)
	outs := make([][]pairOut, numRanges(len(a.tuples)))
	x.forRanges(len(a.tuples), func(rg, lo, hi int) {
		var buf []pairOut
		var localBytes int64
		// Cooperative memory limit: probed once per probe tuple AND every
		// 1024 emitted pairs (a single probe tuple's fan-out is unbounded,
		// so per-tuple probes alone could materialize a whole inner
		// relation between checks). Once the budget trips — possibly on
		// another worker's range — stop enumerating; the evaluation aborts
		// between operators and the partial output is discarded.
		for i := lo; i < hi && !x.probeStop(localBytes); i++ {
			ta := a.tuples[i]
			for _, tb := range b.tuples {
				d, ok := ta.D.Union(tb.D)
				if !ok {
					continue // inconsistent worlds never co-occur
				}
				row := make(rel.Tuple, la+len(tb.Row))
				copy(row, ta.Row)
				copy(row[la:], tb.Row)
				buf = append(buf, pairOut{h: utHash(d, row), d: d, row: row})
				localBytes += pairBytes(d, row)
				if len(buf)&0x3ff == 0 && x.probeStop(localBytes) {
					break
				}
			}
		}
		outs[rg] = buf
	})
	out.mergeRanges(outs)
	x.record("product", int64(len(a.tuples)+len(b.tuples)), int64(out.Len()), x.relBytes(out))
	x.produced(out, a, b)
	return out, nil
}

// Join implements the natural join R ⋈ S as a partitioned hash join: the
// build side's join-column hashes are computed in parallel and chained
// into buckets in insertion order; the probe side is scanned in fixed
// ranges, each worker emitting its range's output pairs; ranges merge in
// order. Bucket candidates filtered by the 64-bit join-key hash are
// confirmed by value equality on the join columns.
func (x *Exec) Join(a, b *Relation) *Relation {
	x.ensure(a, b)
	common := a.schema.Common(b.schema)
	var bExtra []string
	for _, attr := range b.schema {
		if !a.schema.Has(attr) {
			bExtra = append(bExtra, attr)
		}
	}
	schema := append(a.schema.Clone(), bExtra...)
	out := NewRelation(rel.NewSchema(schema...))

	aIdx := make([]int, len(common))
	bIdx := make([]int, len(common))
	for i, c := range common {
		aIdx[i] = a.schema.Index(c)
		bIdx[i] = b.schema.Index(c)
	}
	bExtraIdx := make([]int, len(bExtra))
	for i, c := range bExtra {
		bExtraIdx[i] = b.schema.Index(c)
	}

	// Build phase: hash S's join columns in parallel; chain buckets so
	// traversal visits S in insertion order (reverse construction).
	bh := make([]uint64, len(b.tuples))
	x.forRanges(len(b.tuples), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			bh[i] = b.tuples[i].Row.HashAt(bIdx)
		}
	})
	bHead := make(map[uint64]int32, len(b.tuples))
	bNext := make([]int32, len(b.tuples))
	for i := len(b.tuples) - 1; i >= 0; i-- {
		if head, ok := bHead[bh[i]]; ok {
			bNext[i] = head
		} else {
			bNext[i] = -1
		}
		bHead[bh[i]] = int32(i)
	}

	// Probe phase: fixed ranges of R, merged in range order.
	la := len(a.schema)
	outs := make([][]pairOut, numRanges(len(a.tuples)))
	x.forRanges(len(a.tuples), func(rg, lo, hi int) {
		var buf []pairOut
		var localBytes int64
		// Cooperative memory limit, probed per probe tuple and per 1024
		// emitted pairs (a skewed key's chain is unbounded); see Product.
		for i := lo; i < hi && !x.probeStop(localBytes); i++ {
			ta := a.tuples[i]
			head, ok := bHead[ta.Row.HashAt(aIdx)]
			if !ok {
				continue
			}
			for j := head; j >= 0; j = bNext[j] {
				tb := b.tuples[j]
				if !ta.Row.EqualAt(aIdx, tb.Row, bIdx) {
					continue
				}
				d, ok := ta.D.Union(tb.D)
				if !ok {
					continue
				}
				row := make(rel.Tuple, la+len(bExtraIdx))
				copy(row, ta.Row)
				for k, jj := range bExtraIdx {
					row[la+k] = tb.Row[jj]
				}
				buf = append(buf, pairOut{h: utHash(d, row), d: d, row: row})
				localBytes += pairBytes(d, row)
				if len(buf)&0x3ff == 0 && x.probeStop(localBytes) {
					break
				}
			}
		}
		outs[rg] = buf
	})
	out.mergeRanges(outs)
	x.record("join", int64(len(a.tuples)+len(b.tuples)), int64(out.Len()), x.relBytes(out))
	x.produced(out, a, b)
	return out
}

// Union implements [[R ∪ S]], reusing both inputs' stored hashes.
func (x *Exec) Union(a, b *Relation) (*Relation, error) {
	if !a.schema.Equal(b.schema) {
		return nil, fmt.Errorf("urel: union schema mismatch %v vs %v", a.schema, b.schema)
	}
	x.ensure(a, b)
	out := a.Clone()
	for i, t := range b.tuples {
		out.addPair(b.hashes[i], t.D, t.Row, false)
	}
	x.record("union", int64(len(a.tuples)+len(b.tuples)), int64(out.Len()), x.relBytes(out))
	x.produced(out, a, b)
	return out, nil
}

// DiffComplete implements −c over complete relations. Both sides carry
// empty D columns, so their stored pair hashes are pure row hashes and the
// membership probes reuse them unchanged.
func (x *Exec) DiffComplete(a, b *Relation) (*Relation, error) {
	x.ensure(a, b)
	if !a.IsComplete() || !b.IsComplete() {
		return nil, fmt.Errorf("urel: -c requires complete relations")
	}
	if !a.schema.Equal(b.schema) {
		return nil, fmt.Errorf("urel: difference schema mismatch %v vs %v", a.schema, b.schema)
	}
	out := NewRelation(a.schema)
	for i, t := range a.tuples {
		if b.find(a.hashes[i], t.D, t.Row) < 0 {
			out.addPair(a.hashes[i], nil, t.Row, false)
		}
	}
	x.record("diffc", int64(len(a.tuples)+len(b.tuples)), int64(out.Len()), x.relBytes(out))
	x.produced(out, a, b)
	return out, nil
}

// Poss implements poss(R): row-level dedup through the hashed index, with
// output rows shared with the (immutable) input.
func (x *Exec) Poss(r *Relation) *rel.Relation {
	x.ensure(r)
	out := rel.NewRelation(r.schema)
	for _, t := range r.tuples {
		out.AddOwned(t.Row)
	}
	x.record("poss", int64(len(r.tuples)), int64(out.Len()), int64(out.Len())*pairOverheadBytes)
	x.produced(nil, r)
	return out
}

// lineageGrouper is the one chained-hash grouping structure behind every
// lineage path (single-pass, per-range local, and merge): groups keyed by
// 64-bit row hash with equality confirmation, in first-appearance order.
// Keeping a single implementation is what guarantees the three paths stay
// in lock-step — the worker-count bit-identity invariant depends on them
// producing identical output.
type lineageGrouper struct {
	head   map[uint64]int32
	next   []int32
	groups []TupleConf
	hashes []uint64
	bytes  int64 // running footprint estimate (clause headers + per-group overhead)
}

func newLineageGrouper(sizeHint int) *lineageGrouper {
	return &lineageGrouper{head: make(map[uint64]int32, sizeHint)}
}

// locate returns the group position for (h, row) (or -1) together with
// the chain head, so callers probe and link with a single index lookup.
func (g *lineageGrouper) locate(h uint64, row rel.Tuple) (gi, head int32, chained bool) {
	head, chained = g.head[h]
	if chained {
		for j := head; j >= 0; j = g.next[j] {
			if g.groups[j].Row.Equal(row) {
				return j, head, true
			}
		}
	}
	return -1, head, chained
}

// insert creates a new group for (h, row) in first-appearance order,
// taking ownership of f. The caller has already established (via locate)
// that the group is absent and passes the chain head along.
func (g *lineageGrouper) insert(h uint64, head int32, chained bool, row rel.Tuple, f dnf.F) {
	pos := int32(len(g.groups))
	if chained {
		g.next = append(g.next, head)
	} else {
		g.next = append(g.next, -1)
	}
	g.head[h] = pos
	g.groups = append(g.groups, TupleConf{Row: row, F: f})
	g.hashes = append(g.hashes, h)
	g.bytes += pairOverheadBytes + int64(len(f))*clauseHeaderBytes
}

// add appends the clauses to (h, row)'s group, creating it when absent.
func (g *lineageGrouper) add(h uint64, row rel.Tuple, f dnf.F) {
	gi, head, chained := g.locate(h, row)
	if gi >= 0 {
		g.groups[gi].F = append(g.groups[gi].F, f...)
		g.bytes += int64(len(f)) * clauseHeaderBytes
		return
	}
	g.insert(h, head, chained, row, f)
}

// addClause is add for a single clause, avoiding a slice header per tuple
// on the append path.
func (g *lineageGrouper) addClause(h uint64, row rel.Tuple, d vars.Assignment) {
	gi, head, chained := g.locate(h, row)
	if gi >= 0 {
		g.groups[gi].F = append(g.groups[gi].F, d)
		g.bytes += clauseHeaderBytes
		return
	}
	g.insert(h, head, chained, row, dnf.F{d})
}

// lineage is the grouping core of Lineage/LineageSeq/ConfExact/CertExact:
// each fixed range of the input groups locally (via lineageGrouper), and
// the local groups merge in range order, so both group order (first
// appearance) and each group's clause order (input order) match the
// sequential scan for any worker count. Rows are shared with the input,
// clause lists hold the input's assignments — no copies.
func (x *Exec) lineage(r *Relation) ([]TupleConf, int64) {
	x.ensure(r)
	n := len(r.tuples)
	if n == 0 {
		return nil, 0
	}
	// One worker (or one range): group in a single pass. The partitioned
	// path below runs the same grouper per range and re-runs it to merge,
	// producing the same first-appearance order and per-group clause
	// order, so the choice of strategy is invisible in the output — it
	// only avoids the local/merge copy when no parallelism is available
	// to pay for it.
	if x.pool.Workers() == 1 || numRanges(n) == 1 {
		g := newLineageGrouper(n)
		for _, t := range r.tuples {
			g.addClause(t.Row.Hash(), t.Row, t.D)
		}
		return g.groups, g.bytes
	}
	locals := make([]*lineageGrouper, numRanges(n))
	x.forRanges(n, func(rg, lo, hi int) {
		g := newLineageGrouper(hi - lo)
		for i := lo; i < hi; i++ {
			t := r.tuples[i]
			g.addClause(t.Row.Hash(), t.Row, t.D)
		}
		locals[rg] = g
	})
	// Deterministic merge: ranges in order, local groups in local order.
	merged := newLineageGrouper(n)
	for _, l := range locals {
		for gi, grp := range l.groups {
			merged.add(l.hashes[gi], grp.Row, grp.F)
		}
	}
	return merged.groups, merged.bytes
}

// Lineage groups the relation by data tuple and returns each possible
// tuple's clause set, in first-appearance order.
func (x *Exec) Lineage(r *Relation) []TupleConf {
	groups, bytes := x.lineage(r)
	x.record("lineage", int64(len(r.tuples)), int64(len(groups)), bytes)
	x.produced(nil, r)
	return groups
}

// LineageSeq streams the lineage groups of Lineage in the same order. The
// grouping work happens on first iteration; consumers that need only one
// pass (conf estimation, exact confidence) avoid retaining a second
// materialized []TupleConf alongside their own per-tuple state.
func (x *Exec) LineageSeq(r *Relation) iter.Seq[TupleConf] {
	return func(yield func(TupleConf) bool) {
		groups, bytes := x.lineage(r)
		x.record("lineage", int64(len(r.tuples)), int64(len(groups)), bytes)
		x.produced(nil, r)
		for _, tc := range groups {
			if !yield(tc) {
				return
			}
		}
	}
}

// ConfExact implements conf with exact probabilities; the per-group
// #P-hard dnf.Confidence computations fan out across the pool (group
// costs vary wildly, so the pool's work-stealing cursor load-balances).
func (x *Exec) ConfExact(r *Relation, table *vars.Table, pcol string) (*rel.Relation, error) {
	if r.schema.Has(pcol) {
		return nil, fmt.Errorf("urel: conf column %q already in schema %v", pcol, r.schema)
	}
	groups, _ := x.lineage(r)
	probs := make([]float64, len(groups))
	_ = x.pool.ForEach(len(groups), func(i int) error {
		probs[i] = dnf.Confidence(groups[i].F, table)
		return nil
	})
	out := rel.NewRelation(rel.NewSchema(append(r.schema.Clone(), pcol)...))
	for i, tc := range groups {
		row := make(rel.Tuple, len(tc.Row)+1)
		copy(row, tc.Row)
		row[len(tc.Row)] = rel.Float(probs[i])
		out.AddOwned(row)
	}
	// Conf materializes a fresh full-width row per group (input columns
	// plus the probability), so the estimate counts the whole row payload.
	x.record("conf", int64(len(r.tuples)), int64(out.Len()),
		int64(out.Len())*(int64(len(out.Schema()))*valueBytes+pairOverheadBytes))
	x.produced(nil, r)
	return out, nil
}

// CertExact implements cert(R) via exact confidences, parallel per group.
func (x *Exec) CertExact(r *Relation, table *vars.Table) *rel.Relation {
	groups, _ := x.lineage(r)
	keep := make([]bool, len(groups))
	_ = x.pool.ForEach(len(groups), func(i int) error {
		keep[i] = dnf.Confidence(groups[i].F, table) >= 1-1e-12
		return nil
	})
	out := rel.NewRelation(r.schema)
	for i, tc := range groups {
		if keep[i] {
			out.AddOwned(tc.Row)
		}
	}
	x.record("cert", int64(len(r.tuples)), int64(out.Len()), int64(out.Len())*pairOverheadBytes)
	x.produced(nil, r)
	return out
}

// RepairKey implements repair-key (see the package-level wrapper for the
// full contract). Group and alternative lookup go through hashed chain
// indexes over the key/residual columns; the display strings the fresh
// variable names need are built once per group and per alternative, never
// per tuple.
func (x *Exec) RepairKey(r *Relation, key []string, weight string, table *vars.Table, prefix string) (*Relation, error) {
	x.ensure(r)
	keyIdx := make([]int, len(key))
	for i, a := range key {
		j := r.schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("urel: repair-key attribute %q not in schema %v", a, r.schema)
		}
		keyIdx[i] = j
	}
	wIdx := r.schema.Index(weight)
	if wIdx < 0 {
		return nil, fmt.Errorf("urel: repair-key weight %q not in schema %v", weight, r.schema)
	}
	// Residual attributes: (sch(R) − Ā) − B, the Dom of the fresh variable.
	var resIdx []int
	for j := range r.schema {
		if j == wIdx {
			continue
		}
		isKey := false
		for _, k := range keyIdx {
			if j == k {
				isKey = true
				break
			}
		}
		if !isKey {
			resIdx = append(resIdx, j)
		}
	}

	type alt struct {
		weight float64
		name   string
		repr   int // first input tuple of this alternative (equality witness)
	}
	type group struct {
		display string
		repr    int // first input tuple of this group (equality witness)
		alts    []alt
		altHead map[uint64]int32
		altNext []int32
		total   float64
		v       vars.Var
	}
	gHead := make(map[uint64]int32)
	var gNext []int32
	var orderedGroups []*group
	// tupleAlt[i] is the alternative index of input tuple i in its group.
	tupleAlt := make([]int, len(r.tuples))
	tupleGroup := make([]*group, len(r.tuples))

	for i, t := range r.tuples {
		gh := t.Row.HashAt(keyIdx)
		var g *group
		if hd, ok := gHead[gh]; ok {
			for j := hd; j >= 0; j = gNext[j] {
				cand := orderedGroups[j]
				if t.Row.EqualAt(keyIdx, r.tuples[cand.repr].Row, keyIdx) {
					g = cand
					break
				}
			}
		}
		if g == nil {
			g = &group{display: displayKey(t.Row, keyIdx), repr: i, altHead: make(map[uint64]int32)}
			pos := int32(len(orderedGroups))
			if hd, ok := gHead[gh]; ok {
				gNext = append(gNext, hd)
			} else {
				gNext = append(gNext, -1)
			}
			gHead[gh] = pos
			orderedGroups = append(orderedGroups, g)
		}
		w := t.Row[wIdx]
		if !w.IsNumeric() || w.AsFloat() <= 0 {
			return nil, fmt.Errorf("urel: repair-key weight %v is not a positive number", w)
		}
		rh := t.Row.HashAt(resIdx)
		ai := -1
		if hd, ok := g.altHead[rh]; ok {
			for j := hd; j >= 0; j = g.altNext[j] {
				if t.Row.EqualAt(resIdx, r.tuples[g.alts[j].repr].Row, resIdx) {
					ai = int(j)
					break
				}
			}
		}
		if ai >= 0 {
			if g.alts[ai].weight != w.AsFloat() {
				return nil, fmt.Errorf("urel: repair-key group %s has conflicting weights for one alternative", g.display)
			}
			tupleAlt[i] = ai
		} else {
			ai = len(g.alts)
			if hd, ok := g.altHead[rh]; ok {
				g.altNext = append(g.altNext, hd)
			} else {
				g.altNext = append(g.altNext, -1)
			}
			g.altHead[rh] = int32(ai)
			g.alts = append(g.alts, alt{weight: w.AsFloat(), name: displayKey(t.Row, resIdx), repr: i})
			tupleAlt[i] = ai
		}
		tupleGroup[i] = g
	}
	for _, g := range orderedGroups {
		g.total = 0
		for _, a := range g.alts {
			g.total += a.weight
		}
	}

	// Register one fresh variable per group.
	for _, g := range orderedGroups {
		probs := make([]float64, len(g.alts))
		names := make([]string, len(g.alts))
		for i, a := range g.alts {
			probs[i] = a.weight / g.total
			names[i] = a.name
		}
		name := prefix
		if g.display != "" {
			name = prefix + "[" + g.display + "]"
		}
		g.v = table.Add(name, probs, names)
	}

	out := NewRelation(r.schema)
	for i, t := range r.tuples {
		g := tupleGroup[i]
		d := t.D.With(g.v, int32(tupleAlt[i]))
		out.addPair(utHash(d, t.Row), d, t.Row, false)
	}
	x.record("repairkey", int64(len(r.tuples)), int64(out.Len()), x.relBytes(out))
	x.produced(out, r)
	return out, nil
}

// OpStats aggregates one operator's work across an evaluation: number of
// applications, input and output tuple counts, and an estimate of the
// bytes materialized for output tuples (value/assignment payloads plus
// per-pair bookkeeping; an estimate, not an allocator measurement).
type OpStats struct {
	Calls     int64
	TuplesIn  int64
	TuplesOut int64
	Bytes     int64
}

// StatsMap maps operator names (join, product, select, project, union,
// diffc, repairkey, lineage, conf, cert, poss) to their aggregated stats.
type StatsMap map[string]OpStats

// Add folds another snapshot into m (for aggregating across passes).
func (m StatsMap) Add(o StatsMap) {
	for op, s := range o {
		t := m[op]
		t.Calls += s.Calls
		t.TuplesIn += s.TuplesIn
		t.TuplesOut += s.TuplesOut
		t.Bytes += s.Bytes
		m[op] = t
	}
}

// Counters is a concurrency-safe operator-statistics collector shared by
// all Execs of one evaluation (partitioned operators record from pool
// workers).
type Counters struct {
	mu sync.Mutex
	m  map[string]*opCell
}

type opCell struct {
	calls, in, out, bytes atomic.Int64
}

// NewCounters returns an empty collector.
func NewCounters() *Counters { return &Counters{m: make(map[string]*opCell)} }

func (c *Counters) cell(op string) *opCell {
	c.mu.Lock()
	cell, ok := c.m[op]
	if !ok {
		cell = &opCell{}
		c.m[op] = cell
	}
	c.mu.Unlock()
	return cell
}

// Snapshot returns the current aggregated statistics.
func (c *Counters) Snapshot() StatsMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(StatsMap, len(c.m))
	for op, cell := range c.m {
		out[op] = OpStats{
			Calls:     cell.calls.Load(),
			TuplesIn:  cell.in.Load(),
			TuplesOut: cell.out.Load(),
			Bytes:     cell.bytes.Load(),
		}
	}
	return out
}
