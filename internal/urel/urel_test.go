package urel

import (
	"math"
	"testing"

	"repro/internal/dnf"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/vars"
)

func completeRel(schema rel.Schema, rows ...rel.Tuple) *Relation {
	return FromComplete(rel.FromRows(schema, rows...))
}

func TestFromCompleteAndPoss(t *testing.T) {
	r := completeRel(rel.NewSchema("A", "B"),
		rel.Tuple{rel.Int(1), rel.String("x")},
		rel.Tuple{rel.Int(2), rel.String("y")},
	)
	if !r.IsComplete() {
		t.Error("lifted complete relation should be complete")
	}
	p := Poss(r)
	if p.Len() != 2 {
		t.Errorf("poss len = %d", p.Len())
	}
}

func TestSelectProject(t *testing.T) {
	r := completeRel(rel.NewSchema("A", "B"),
		rel.Tuple{rel.Int(1), rel.Int(10)},
		rel.Tuple{rel.Int(2), rel.Int(20)},
	)
	s := Select(r, expr.Gt(expr.A("A"), expr.CInt(1)))
	if s.Len() != 1 || !rel.Equal(s.Tuples()[0].Row[0], rel.Int(2)) {
		t.Errorf("select result wrong: %v", s.Tuples())
	}
	// Arithmetic projection: A+B -> C (the paper's ρ_{A+B→C} example).
	p := Project(r, []expr.Target{expr.As("C", expr.Add(expr.A("A"), expr.A("B")))})
	if p.Len() != 2 {
		t.Errorf("project len = %d", p.Len())
	}
	if !Poss(p).Contains(rel.Tuple{rel.Int(11)}) || !Poss(p).Contains(rel.Tuple{rel.Int(22)}) {
		t.Errorf("arithmetic projection wrong: %v", Poss(p))
	}
}

func TestProductConsistency(t *testing.T) {
	tab := vars.NewTable()
	x := tab.Add("x", []float64{0.5, 0.5}, nil)

	a := NewRelation(rel.NewSchema("A"))
	a.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(1)})
	b := NewRelation(rel.NewSchema("B"))
	b.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 1}), rel.Tuple{rel.Int(2)})
	b.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(3)})

	p, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Only the consistent pair (x=0, x=0) survives.
	if p.Len() != 1 {
		t.Fatalf("product len = %d, want 1", p.Len())
	}
	if !p.Tuples()[0].Row.Equal(rel.Tuple{rel.Int(1), rel.Int(3)}) {
		t.Errorf("product tuple = %v", p.Tuples()[0].Row)
	}
	if _, err := Product(a, a); err == nil {
		t.Error("product with shared attribute names must fail")
	}
}

func TestJoinNatural(t *testing.T) {
	a := completeRel(rel.NewSchema("A", "B"),
		rel.Tuple{rel.Int(1), rel.String("x")},
		rel.Tuple{rel.Int(2), rel.String("y")},
	)
	b := completeRel(rel.NewSchema("B", "C"),
		rel.Tuple{rel.String("x"), rel.Float(0.5)},
	)
	j := Join(a, b)
	if j.Len() != 1 {
		t.Fatalf("join len = %d", j.Len())
	}
	want := rel.Tuple{rel.Int(1), rel.String("x"), rel.Float(0.5)}
	if !j.Tuples()[0].Row.Equal(want) {
		t.Errorf("join tuple = %v, want %v", j.Tuples()[0].Row, want)
	}
	if !j.Schema().Equal(rel.NewSchema("A", "B", "C")) {
		t.Errorf("join schema = %v", j.Schema())
	}
}

func TestUnionDiff(t *testing.T) {
	a := completeRel(rel.NewSchema("A"), rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)})
	b := completeRel(rel.NewSchema("A"), rel.Tuple{rel.Int(2)}, rel.Tuple{rel.Int(3)})
	u, err := Union(a, b)
	if err != nil || u.Len() != 3 {
		t.Fatalf("union: %v len=%d", err, u.Len())
	}
	d, err := DiffComplete(a, b)
	if err != nil || d.Len() != 1 {
		t.Fatalf("diff: %v len=%d", err, d.Len())
	}
	if !Poss(d).Contains(rel.Tuple{rel.Int(1)}) {
		t.Error("diff content wrong")
	}
	tab := vars.NewTable()
	x := tab.Add("x", []float64{0.5, 0.5}, nil)
	c := NewRelation(rel.NewSchema("A"))
	c.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(1)})
	if _, err := DiffComplete(c, b); err == nil {
		t.Error("-c on uncertain relation must fail")
	}
}

func TestRepairKeyCoinExample(t *testing.T) {
	// Example 2.2: R := π_CoinType(repair-key_∅@Count(Coins)).
	tab := vars.NewTable()
	coins := completeRel(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(2)},
		rel.Tuple{rel.String("2headed"), rel.Int(1)},
	)
	rk, err := RepairKey(coins, nil, "Count", tab, "c")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("repair-key should create 1 variable, got %d", tab.Len())
	}
	v := vars.Var(0)
	if tab.DomSize(v) != 2 {
		t.Fatalf("variable should have 2 alternatives")
	}
	// Probabilities 2/3, 1/3 in insertion order (fair first).
	if math.Abs(tab.Prob(v, 0)-2.0/3) > 1e-12 || math.Abs(tab.Prob(v, 1)-1.0/3) > 1e-12 {
		t.Errorf("probs = %v, %v", tab.Prob(v, 0), tab.Prob(v, 1))
	}
	r := Project(rk, []expr.Target{expr.Keep("CoinType")})
	// Confidence of each tuple.
	conf, err := ConfExact(r, tab, "P")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range conf.Tuples() {
		ct := conf.Value(tp, "CoinType").AsString()
		p := conf.Value(tp, "P").AsFloat()
		want := 2.0 / 3
		if ct == "2headed" {
			want = 1.0 / 3
		}
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("conf(%s) = %v, want %v", ct, p, want)
		}
	}
}

func TestRepairKeyGrouped(t *testing.T) {
	// repair-key with a nonempty key: one variable per key group.
	tab := vars.NewTable()
	faces := completeRel(rel.NewSchema("CoinType", "Face", "FProb"),
		rel.Tuple{rel.String("fair"), rel.String("H"), rel.Float(0.5)},
		rel.Tuple{rel.String("fair"), rel.String("T"), rel.Float(0.5)},
		rel.Tuple{rel.String("2headed"), rel.String("H"), rel.Float(1)},
	)
	rk, err := RepairKey(faces, []string{"CoinType"}, "FProb", tab, "f")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("want 2 variables (one per group), got %d", tab.Len())
	}
	if rk.Len() != 3 {
		t.Errorf("repair-key output should keep all 3 tuples, got %d", rk.Len())
	}
	// The fair group's variable has two alternatives at 0.5 each; the
	// 2headed group's variable is deterministic.
	fairVar, ok := tab.Lookup("f[fair]")
	if !ok {
		t.Fatal("missing variable f[fair]")
	}
	if tab.DomSize(fairVar) != 2 || math.Abs(tab.Prob(fairVar, 0)-0.5) > 1e-12 {
		t.Error("fair group distribution wrong")
	}
	hVar, ok := tab.Lookup("f[2headed]")
	if !ok {
		t.Fatal("missing variable f[2headed]")
	}
	if tab.DomSize(hVar) != 1 {
		t.Error("2headed group should be deterministic")
	}
}

func TestRepairKeyValidation(t *testing.T) {
	tab := vars.NewTable()
	bad := completeRel(rel.NewSchema("A", "W"),
		rel.Tuple{rel.String("a"), rel.Int(0)},
	)
	if _, err := RepairKey(bad, nil, "W", tab, "x"); err == nil {
		t.Error("zero weight must be rejected")
	}
	neg := completeRel(rel.NewSchema("A", "W"),
		rel.Tuple{rel.String("a"), rel.Int(-1)},
	)
	if _, err := RepairKey(neg, nil, "W", tab, "y"); err == nil {
		t.Error("negative weight must be rejected")
	}
	str := completeRel(rel.NewSchema("A", "W"),
		rel.Tuple{rel.String("a"), rel.String("w")},
	)
	if _, err := RepairKey(str, nil, "W", tab, "z"); err == nil {
		t.Error("non-numeric weight must be rejected")
	}
	r := completeRel(rel.NewSchema("A", "W"), rel.Tuple{rel.String("a"), rel.Int(1)})
	if _, err := RepairKey(r, []string{"missing"}, "W", tab, "k"); err == nil {
		t.Error("missing key attribute must be rejected")
	}
	if _, err := RepairKey(r, nil, "missing", tab, "k2"); err == nil {
		t.Error("missing weight attribute must be rejected")
	}
	// Conflicting weights for one (Var, Dom) pair.
	tabc := vars.NewTable()
	x := tabc.Add("x", []float64{0.5, 0.5}, nil)
	confl := NewRelation(rel.NewSchema("A", "W"))
	confl.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.String("a"), rel.Int(1)})
	confl.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 1}), rel.Tuple{rel.String("a"), rel.Int(2)})
	if _, err := RepairKey(confl, nil, "W", tabc, "c"); err == nil {
		t.Error("conflicting alternative weights must be rejected")
	}
}

func TestConfExact(t *testing.T) {
	tab := vars.NewTable()
	x := tab.Add("x", []float64{0.3, 0.7}, nil)
	y := tab.Add("y", []float64{0.4, 0.6}, nil)
	r := NewRelation(rel.NewSchema("A"))
	// Tuple 1 present when x=0 or y=0; tuple 2 always present.
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(1)})
	r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(1)})
	r.Add(nil, rel.Tuple{rel.Int(2)})

	conf, err := ConfExact(r, tab, "P")
	if err != nil {
		t.Fatal(err)
	}
	if conf.Len() != 2 {
		t.Fatalf("conf len = %d", conf.Len())
	}
	for _, tp := range conf.Tuples() {
		a := conf.Value(tp, "A").AsInt()
		p := conf.Value(tp, "P").AsFloat()
		want := 1.0
		if a == 1 {
			want = 1 - 0.7*0.6
		}
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("conf(%d) = %v, want %v", a, p, want)
		}
	}
	if _, err := ConfExact(r, tab, "A"); err == nil {
		t.Error("conf column colliding with schema must fail")
	}
}

func TestCertExact(t *testing.T) {
	tab := vars.NewTable()
	x := tab.Add("x", []float64{0.3, 0.7}, nil)
	r := NewRelation(rel.NewSchema("A"))
	r.Add(nil, rel.Tuple{rel.Int(1)})
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(2)})
	// Tuple 3 covered by both alternatives: certain.
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(3)})
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 1}), rel.Tuple{rel.Int(3)})

	c := CertExact(r, tab)
	if c.Len() != 2 {
		t.Fatalf("cert len = %d, want 2", c.Len())
	}
	if !c.Contains(rel.Tuple{rel.Int(1)}) || !c.Contains(rel.Tuple{rel.Int(3)}) {
		t.Error("cert content wrong")
	}
}

func TestLineage(t *testing.T) {
	tab := vars.NewTable()
	x := tab.Add("x", []float64{0.5, 0.5}, nil)
	_ = tab
	r := NewRelation(rel.NewSchema("A"))
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(1)})
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 1}), rel.Tuple{rel.Int(1)})
	r.Add(nil, rel.Tuple{rel.Int(2)})
	lin := Lineage(r)
	if len(lin) != 2 {
		t.Fatalf("lineage groups = %d", len(lin))
	}
	if len(lin[0].F) != 2 || len(lin[1].F) != 1 {
		t.Errorf("lineage clause counts wrong: %d, %d", len(lin[0].F), len(lin[1].F))
	}
	if dnf.Confidence(lin[0].F, tab) != 1 {
		t.Error("tuple 1 should be certain")
	}
}

func TestDatabaseCloneIsolation(t *testing.T) {
	db := NewDatabase()
	db.AddComplete("R", rel.FromRows(rel.NewSchema("A", "W"),
		rel.Tuple{rel.Int(1), rel.Int(1)},
		rel.Tuple{rel.Int(2), rel.Int(1)},
	))
	cl := db.Clone()
	if _, err := RepairKey(cl.Rels["R"], nil, "W", cl.Vars, "rk"); err != nil {
		t.Fatal(err)
	}
	if db.Vars.Len() != 0 {
		t.Error("clone's repair-key mutated the original variable table")
	}
	if !db.Complete["R"] {
		t.Error("completeness flag lost")
	}
}

func TestDedupAddUTuple(t *testing.T) {
	tab := vars.NewTable()
	x := tab.Add("x", []float64{0.5, 0.5}, nil)
	r := NewRelation(rel.NewSchema("A"))
	d := vars.MustAssignment(vars.Binding{Var: x, Alt: 0})
	if !r.Add(d, rel.Tuple{rel.Int(1)}) {
		t.Error("first add should succeed")
	}
	if r.Add(d, rel.Tuple{rel.Int(1)}) {
		t.Error("duplicate (D, tuple) should collapse")
	}
	if !r.Add(nil, rel.Tuple{rel.Int(1)}) {
		t.Error("same tuple under different D is a distinct U-tuple")
	}
}
