package urel

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/vars"
)

// spillDB builds a small relation covering every value kind, empty and
// multi-binding condition columns, and duplicate rows (dedup-index paths).
func spillDB() *Relation {
	r := NewRelation(rel.NewSchema("K", "S", "F", "B", "N"))
	d2 := vars.MustAssignment(
		vars.Binding{Var: 1, Alt: 0},
		vars.Binding{Var: 7, Alt: 3},
	)
	rows := []struct {
		d   vars.Assignment
		row rel.Tuple
	}{
		{nil, rel.Tuple{rel.Int(-42), rel.String("alpha"), rel.Float(0.125), rel.Bool(true), rel.Null()}},
		{d2, rel.Tuple{rel.Int(1 << 40), rel.String(""), rel.Float(-1e300), rel.Bool(false), rel.Null()}},
		{vars.MustAssignment(vars.Binding{Var: 3, Alt: 1}), rel.Tuple{rel.Int(0), rel.String("β-utf8"), rel.Float(0), rel.Bool(true), rel.Int(9)}},
		// Exact duplicate of the first pair: exercises the dedup index
		// rebuild on hydrate.
		{nil, rel.Tuple{rel.Int(-42), rel.String("alpha"), rel.Float(0.125), rel.Bool(true), rel.Null()}},
	}
	for _, p := range rows {
		r.Add(p.d, p.row)
	}
	return r
}

func TestSpillRoundTrip(t *testing.T) {
	sp, err := NewSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	r := spillDB()
	want := relFingerprint(r)
	wantLen, wantBytes := r.Len(), r.bytes

	sp.spillOut(r)
	if !r.Spilled() {
		t.Fatal("relation not spilled")
	}
	if r.tuples != nil || r.index != nil {
		t.Fatal("spilled relation retains in-memory tuple storage")
	}
	if r.Len() != wantLen {
		t.Fatalf("Len on spilled relation = %d, want %d", r.Len(), wantLen)
	}
	if sp.Files() != 1 || sp.Bytes() <= 0 {
		t.Fatalf("spill accounting: files=%d bytes=%d", sp.Files(), sp.Bytes())
	}

	if err := r.hydrate(); err != nil {
		t.Fatal(err)
	}
	if got := relFingerprint(r); got != want {
		t.Errorf("hydrated relation differs from original:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if r.bytes != wantBytes {
		t.Errorf("hydrated footprint = %d, want %d", r.bytes, wantBytes)
	}

	// Dedup index must be rebuilt: re-adding an existing pair is a no-op.
	r.Add(nil, rel.Tuple{rel.Int(-42), rel.String("alpha"), rel.Float(0.125), rel.Bool(true), rel.Null()})
	if r.Len() != wantLen {
		t.Errorf("dedup index lost on hydrate: Len=%d after duplicate Add, want %d", r.Len(), wantLen)
	}

	// Second spill of an already-written relation reuses the file.
	sp.spillOut(r)
	if sp.Files() != 1 {
		t.Errorf("re-spill created a new file: files=%d", sp.Files())
	}
	if err := r.hydrate(); err != nil {
		t.Fatal(err)
	}
	if got := relFingerprint(r); got != want {
		t.Error("second hydrate differs from original")
	}
}

func TestSpilledAccessPanics(t *testing.T) {
	sp, err := NewSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	r := spillDB()
	sp.spillOut(r)
	defer func() {
		if recover() == nil {
			t.Fatal("Tuples() on a spilled relation did not panic")
		}
	}()
	r.Tuples()
}

// TestSpillExecParity is the out-of-core bit-identity contract: the same
// operator pipeline run with a budget small enough to force heavy spilling
// produces output byte-identical (content and order) to the unbudgeted
// in-memory run, at several worker counts.
func TestSpillExecParity(t *testing.T) {
	a, b, _ := execDB()
	pred := expr.Ge(expr.A("A"), expr.CInt(3))
	targets := []expr.Target{expr.Keep("K"), expr.As("S", expr.Add(expr.A("A"), expr.A("B")))}

	run := func(x *Exec) (string, string, string, string) {
		j := x.Join(a, b)
		s := x.Select(j, pred)
		p := x.Project(j, targets)
		u, err := x.Union(s, x.Select(j, pred))
		if err != nil {
			t.Fatal(err)
		}
		lin := lineageFingerprint(x.Lineage(u))
		x.Ensure(s, p, u)
		if err := x.Err(); err != nil {
			t.Fatalf("spill error: %v", err)
		}
		return relFingerprint(s), relFingerprint(p), relFingerprint(u), lin
	}

	base := NewExec(sched.New(4), NewCounters())
	wantS, wantP, wantU, wantLin := run(base)

	for _, workers := range []int{1, 4, 8} {
		sp, err := NewSpill(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		x := NewExec(sched.New(workers), NewCounters()).
			WithBudget(NewMemBudget(1 << 15)).
			WithSpill(sp)
		gotS, gotP, gotU, gotLin := run(x)
		if sp.Files() == 0 || sp.Bytes() == 0 {
			t.Fatalf("workers=%d: budget of 32KiB never spilled (files=%d)", workers, sp.Files())
		}
		if gotS != wantS {
			t.Errorf("workers=%d: spilled Select differs from in-memory run", workers)
		}
		if gotP != wantP {
			t.Errorf("workers=%d: spilled Project differs from in-memory run", workers)
		}
		if gotU != wantU {
			t.Errorf("workers=%d: spilled Union differs from in-memory run", workers)
		}
		if gotLin != wantLin {
			t.Errorf("workers=%d: spilled Lineage differs from in-memory run", workers)
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpillRepairKeyParity covers the remaining registered operator plus
// DiffComplete under spilling.
func TestSpillRepairKeyParity(t *testing.T) {
	base0 := rel.NewRelation(rel.NewSchema("K", "W"))
	for i := 0; i < 4000; i++ {
		base0.Add(rel.Tuple{rel.Int(int64(i % 700)), rel.Int(int64(i%7 + 1))})
	}
	comp := FromComplete(base0)

	run := func(x *Exec) (string, string) {
		tab := vars.NewTable()
		rk, err := x.RepairKey(comp, []string{"K"}, "W", tab, "w")
		if err != nil {
			t.Fatal(err)
		}
		half := NewRelation(comp.schema)
		for i, t := range comp.tuples[:comp.Len()/2] {
			half.addPair(comp.hashes[i], t.D, t.Row, false)
		}
		d, err := x.DiffComplete(comp, half)
		if err != nil {
			t.Fatal(err)
		}
		x.Ensure(rk, d)
		if err := x.Err(); err != nil {
			t.Fatalf("spill error: %v", err)
		}
		return relFingerprint(rk), relFingerprint(d)
	}

	base := NewExec(sched.New(4), NewCounters())
	wantRK, wantD := run(base)

	sp, err := NewSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	x := NewExec(sched.New(4), NewCounters()).
		WithBudget(NewMemBudget(1 << 14)).
		WithSpill(sp)
	gotRK, gotD := run(x)
	if sp.Files() == 0 {
		t.Fatal("budget of 16KiB never spilled")
	}
	if gotRK != wantRK {
		t.Error("spilled RepairKey differs from in-memory run")
	}
	if gotD != wantD {
		t.Error("spilled DiffComplete differs from in-memory run")
	}
}
