package urel

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/vars"
)

// WorldSpec is one possible world handed to FromWorldSet: a probability
// and the named relations of the world.
type WorldSpec struct {
	P    float64
	Rels map[string]*rel.Relation
}

// FromWorldSet constructs a U-relational database representing exactly the
// given weighted set of possible worlds — the constructive direction of
// Theorem 3.1 (U-relational databases are a complete representation
// system). A single world-selector variable w with one alternative per
// world is introduced; a tuple appearing in worlds S gets one U-tuple
// ⟨{w=i}, t⟩ per i ∈ S, except that tuples present in every world are
// stored once with the empty assignment (so relations equal across all
// worlds come out complete).
//
// Relations named in complete are additionally marked complete by
// definition (c(R) = 1); they must in fact agree across worlds.
func FromWorldSet(worlds []WorldSpec, complete map[string]bool) (*Database, error) {
	if len(worlds) == 0 {
		return nil, fmt.Errorf("urel: empty world set")
	}
	sum := 0.0
	for i, w := range worlds {
		if w.P <= 0 {
			return nil, fmt.Errorf("urel: world %d has non-positive probability %v", i, w.P)
		}
		sum += w.P
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return nil, fmt.Errorf("urel: world probabilities sum to %v, want 1", sum)
	}

	db := NewDatabase()
	var selector vars.Var
	haveSelector := false
	if len(worlds) > 1 {
		probs := make([]float64, len(worlds))
		for i, w := range worlds {
			probs[i] = w.P / sum
		}
		selector = db.Vars.Add("w", probs, nil)
		haveSelector = true
	}

	ref := worlds[0].Rels
	for name, r0 := range ref {
		out := NewRelation(r0.Schema())
		// Collect, per tuple, the set of worlds containing it.
		type occurrence struct {
			row     rel.Tuple
			inWorld []bool
			count   int
		}
		occ := map[string]*occurrence{}
		var order []string
		for i, w := range worlds {
			r, ok := w.Rels[name]
			if !ok {
				return nil, fmt.Errorf("urel: world %d lacks relation %q", i, name)
			}
			if !r.Schema().Equal(r0.Schema()) {
				return nil, fmt.Errorf("urel: relation %q schema differs across worlds", name)
			}
			for _, t := range r.Tuples() {
				k := t.Key()
				o, seen := occ[k]
				if !seen {
					o = &occurrence{row: t.Clone(), inWorld: make([]bool, len(worlds))}
					occ[k] = o
					order = append(order, k)
				}
				if !o.inWorld[i] {
					o.inWorld[i] = true
					o.count++
				}
			}
		}
		for _, k := range order {
			o := occ[k]
			if o.count == len(worlds) || !haveSelector {
				out.Add(nil, o.row)
				continue
			}
			for i, in := range o.inWorld {
				if in {
					out.Add(vars.MustAssignment(vars.Binding{Var: selector, Alt: int32(i)}), o.row)
				}
			}
		}
		isComplete := complete[name]
		if isComplete {
			if !out.IsComplete() {
				return nil, fmt.Errorf("urel: relation %q marked complete but differs across worlds", name)
			}
		}
		db.AddURelation(name, out, isComplete)
	}
	return db, nil
}
