package algebra

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// randDB builds a small random U-relational database with two uncertain
// relations R(A,B), S(B,C) and a complete weighted relation K(A,W).
func randDB(rng *rand.Rand) *urel.Database {
	db := urel.NewDatabase()
	nv := 2 + rng.Intn(3)
	for i := 0; i < nv; i++ {
		p := 0.2 + 0.6*rng.Float64()
		db.Vars.Add("v"+strconv.Itoa(i), []float64{p, 1 - p}, nil)
	}
	randAssign := func() vars.Assignment {
		var bs []vars.Binding
		for v := 0; v < nv; v++ {
			if rng.Intn(3) == 0 {
				bs = append(bs, vars.Binding{Var: vars.Var(v), Alt: int32(rng.Intn(2))})
			}
		}
		a, _ := vars.NewAssignment(bs...)
		return a
	}
	r := urel.NewRelation(rel.NewSchema("A", "B"))
	for i := 0; i < 2+rng.Intn(4); i++ {
		r.Add(randAssign(), rel.Tuple{rel.Int(int64(rng.Intn(3))), rel.Int(int64(rng.Intn(3)))})
	}
	s := urel.NewRelation(rel.NewSchema("B", "C"))
	for i := 0; i < 2+rng.Intn(4); i++ {
		s.Add(randAssign(), rel.Tuple{rel.Int(int64(rng.Intn(3))), rel.Int(int64(rng.Intn(3)))})
	}
	k := rel.NewRelation(rel.NewSchema("A", "W"))
	for i := 0; i < 2+rng.Intn(3); i++ {
		k.Add(rel.Tuple{rel.Int(int64(rng.Intn(2))), rel.Float(0.2 + rng.Float64())})
	}
	db.AddURelation("R", r, false)
	db.AddURelation("S", s, false)
	db.AddComplete("K", k)
	return db
}

// randQuery builds a random positive UA query over the random database.
func randQuery(rng *rand.Rand, depth int) Query {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return Base{Name: "R"}
		case 1:
			return Base{Name: "S"}
		default:
			return Project{
				In:      RepairKey{In: Base{Name: "K"}, Key: nil, Weight: "W"},
				Targets: []expr.Target{expr.Keep("A")},
			}
		}
	}
	switch rng.Intn(6) {
	case 0:
		in := randQuery(rng, depth-1)
		return Select{In: in, Pred: expr.Le(expr.A("B"), expr.CInt(int64(rng.Intn(3))))}
	case 1:
		in := randQuery(rng, depth-1)
		return Project{In: in, Targets: []expr.Target{expr.Keep("B")}}
	case 2:
		return Join{L: randQuery(rng, depth-1), R: Base{Name: "S"}}
	case 3:
		l := randQuery(rng, depth-1)
		return Union{L: l, R: l}
	case 4:
		return Join{L: Base{Name: "R"}, R: randQuery(rng, depth-1)}
	default:
		in := randQuery(rng, depth-1)
		return Select{In: in, Pred: expr.Ge(expr.Add(expr.A("B"), expr.CInt(0)), expr.CInt(1))}
	}
}

// normalizeQuery wraps plans so both branches have compatible schemas for
// Union/Join: we restrict to plans that keep attribute B available by
// construction above (projections to B, joins on B). A plan whose schemas
// clash is skipped.
func evalBothWays(t *testing.T, db *urel.Database, q Query) (uconf, wconf *rel.Relation, skip bool) {
	t.Helper()
	ev := NewURelEvaluator(db)
	res, err := ev.Eval(Conf{In: q, As: "P"})
	if err != nil {
		return nil, nil, true // schema clash etc.: skip this random plan
	}
	wev, err := NewWorldsEvaluatorFromURel(db, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := wev.EvalConf(q, "P")
	if err != nil {
		t.Fatalf("worlds evaluator failed where urel succeeded: %v (q=%s)", err, q)
	}
	return urel.Poss(res.Rel), wc, false
}

// TestEvaluatorsAgreeOnRandomPlans is the central equivalence check: for
// random positive UA[conf, repair-key] plans, the U-relational evaluator
// and the possible-worlds reference produce identical confidence tables.
func TestEvaluatorsAgreeOnRandomPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		db := randDB(rng)
		q := randQuery(rng, 1+rng.Intn(2))
		uconf, wconf, skip := evalBothWays(t, db, q)
		if skip {
			continue
		}
		checked++
		if uconf.Len() != wconf.Len() {
			t.Fatalf("trial %d: result sizes differ: urel %d vs worlds %d\nq=%s\nurel:\n%s\nworlds:\n%s",
				trial, uconf.Len(), wconf.Len(), q, uconf, wconf)
		}
		for _, tp := range uconf.Tuples() {
			stored, ok := wconf.Lookup(findMatch(wconf, tp))
			if !ok {
				t.Fatalf("trial %d: tuple %v missing in worlds result (q=%s)", trial, tp, q)
			}
			pu := tp[len(tp)-1].AsFloat()
			pw := stored[len(stored)-1].AsFloat()
			if math.Abs(pu-pw) > 1e-9 {
				t.Fatalf("trial %d: confidence mismatch for %v: urel %v vs worlds %v (q=%s)", trial, tp, pu, pw, q)
			}
		}
	}
	if checked < 25 {
		t.Fatalf("too few valid random plans: %d", checked)
	}
}

// findMatch finds in wconf a tuple whose data columns (all but last) equal
// tp's, tolerating confidence differences which are checked separately.
func findMatch(wconf *rel.Relation, tp rel.Tuple) rel.Tuple {
	for _, cand := range wconf.Tuples() {
		if cand[:len(cand)-1].Equal(tp[:len(tp)-1]) {
			return cand
		}
	}
	return nil
}

// σ̂ with exact confidences must agree across the two evaluators as well.
func TestApproxSelectExactAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	for trial := 0; trial < 25; trial++ {
		db := randDB(rng)
		thresh := 0.2 + 0.6*rng.Float64()
		q := ApproxSelect{
			In:   Base{Name: "R"},
			Args: []ConfArg{{Attrs: []string{"A"}}},
			Pred: predapprox.Linear([]float64{1}, thresh),
		}
		ev := NewURelEvaluator(db)
		ur, err := ev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		wev, err := NewWorldsEvaluatorFromURel(db, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		wdb, name, err := wev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		wr := wdb.Worlds[0].Rels[name]
		up := urel.Poss(ur.Rel)
		if up.Len() != wr.Len() {
			t.Fatalf("trial %d: σ̂ sizes differ: %d vs %d", trial, up.Len(), wr.Len())
		}
		for _, tp := range up.Tuples() {
			if m := findMatch(wr, tp); m == nil {
				t.Fatalf("trial %d: σ̂ tuple %v missing in worlds result", trial, tp)
			}
		}
	}
}

// Two-argument σ̂ (a conditional-probability predicate, Example 6.1
// shape): conf[A]/conf[∅] ≤ c.
func TestApproxSelectConditional(t *testing.T) {
	db := coinDB()
	_, _, qT, _ := coinQueries()
	// σ̂_{conf[CoinType]/conf[∅] ≤ 0.5}(T): selects coin types whose
	// posterior is ≤ 1/2 — only "fair" (posterior 1/3).
	q := ApproxSelect{
		In:   qT,
		Args: []ConfArg{{Attrs: []string{"CoinType"}}, {Attrs: nil}},
		// P1/P2 ≤ 0.5 ⟺ P1 − 0.5·P2 ≤ 0 ⟺ −P1 + 0.5·P2 ≥ 0.
		Pred: predapprox.Linear([]float64{-1, 0.5}, 0),
	}
	ev := NewURelEvaluator(db)
	res, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	out := urel.Poss(res.Rel)
	if out.Len() != 1 {
		t.Fatalf("σ̂ selected %d tuples, want 1:\n%s", out.Len(), out)
	}
	row := out.Tuples()[0]
	if out.Value(row, "CoinType").AsString() != "fair" {
		t.Errorf("selected %v, want fair", row)
	}
	p1 := out.Value(row, "P1").AsFloat()
	p2 := out.Value(row, "P2").AsFloat()
	if math.Abs(p1-1.0/6) > 1e-9 || math.Abs(p2-0.5) > 1e-9 {
		t.Errorf("P1=%v (want 1/6), P2=%v (want 1/2)", p1, p2)
	}
}
