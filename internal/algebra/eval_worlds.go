package algebra

import (
	"fmt"
	"strconv"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/worlds"
)

// WorldsEvaluator evaluates UA queries directly on the nonsuccinct
// possible-worlds representation — the definitional semantics of
// Section 2. It is the reference oracle the U-relational evaluator is
// cross-checked against.
type WorldsEvaluator struct {
	db      *worlds.Database
	nextTmp int
}

// NewWorldsEvaluator returns an evaluator over db (the database itself is
// never mutated; operations build extended copies).
func NewWorldsEvaluator(db *worlds.Database) *WorldsEvaluator {
	return &WorldsEvaluator{db: db}
}

// NewWorldsEvaluatorFromURel expands a U-relational database into explicit
// worlds first; limit caps the world count.
func NewWorldsEvaluatorFromURel(db *urel.Database, limit int64) (*WorldsEvaluator, error) {
	w, err := worlds.Expand(db, limit)
	if err != nil {
		return nil, err
	}
	return &WorldsEvaluator{db: w}, nil
}

// Eval evaluates the query. The result is returned as the final
// possible-worlds database (for inspection of the full distribution) plus
// the name of the result relation within it.
func (e *WorldsEvaluator) Eval(q Query) (*worlds.Database, string, error) {
	if err := Validate(q); err != nil {
		return nil, "", err
	}
	return e.eval(e.db, q)
}

// EvalConf evaluates the query and aggregates the result relation's
// confidence across worlds — the most common use in cross-checks.
func (e *WorldsEvaluator) EvalConf(q Query, pcol string) (*rel.Relation, error) {
	db, name, err := e.Eval(q)
	if err != nil {
		return nil, err
	}
	return db.Conf(name, pcol), nil
}

func (e *WorldsEvaluator) fresh() string {
	e.nextTmp++
	return "_t" + strconv.Itoa(e.nextTmp)
}

func (e *WorldsEvaluator) eval(db *worlds.Database, q Query) (*worlds.Database, string, error) {
	switch n := q.(type) {
	case Base:
		if _, ok := db.Worlds[0].Rels[n.Name]; !ok {
			return nil, "", fmt.Errorf("algebra: unknown relation %q", n.Name)
		}
		return db, n.Name, nil

	case Select:
		db, in, err := e.eval(db, n.In)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		return db.Map(out, func(w worlds.World) *rel.Relation {
			return worlds.SelectWorldwise(w.Rels[in], n.Pred)
		}), out, nil

	case Project:
		db, in, err := e.eval(db, n.In)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		return db.Map(out, func(w worlds.World) *rel.Relation {
			return worlds.ProjectWorldwise(w.Rels[in], n.Targets)
		}), out, nil

	case Product:
		db, l, r, err := e.evalPair(db, n.L, n.R)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		var perr error
		res := db.Map(out, func(w worlds.World) *rel.Relation {
			p, err := worlds.ProductWorldwise(w.Rels[l], w.Rels[r])
			if err != nil {
				perr = err
				return rel.NewRelation(rel.NewSchema())
			}
			return p
		})
		if perr != nil {
			return nil, "", perr
		}
		return res, out, nil

	case Join:
		db, l, r, err := e.evalPair(db, n.L, n.R)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		return db.Map(out, func(w worlds.World) *rel.Relation {
			return worlds.JoinWorldwise(w.Rels[l], w.Rels[r])
		}), out, nil

	case Union:
		db, l, r, err := e.evalPair(db, n.L, n.R)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		var uerr error
		res := db.Map(out, func(w worlds.World) *rel.Relation {
			u, err := worlds.UnionWorldwise(w.Rels[l], w.Rels[r])
			if err != nil {
				uerr = err
				return rel.NewRelation(rel.NewSchema())
			}
			return u
		})
		if uerr != nil {
			return nil, "", uerr
		}
		return res, out, nil

	case DiffC:
		db, l, r, err := e.evalPair(db, n.L, n.R)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		var derr error
		res := db.Map(out, func(w worlds.World) *rel.Relation {
			d, err := worlds.DiffWorldwise(w.Rels[l], w.Rels[r])
			if err != nil {
				derr = err
				return rel.NewRelation(rel.NewSchema())
			}
			return d
		})
		if derr != nil {
			return nil, "", derr
		}
		return res, out, nil

	case RepairKey:
		db, in, err := e.eval(db, n.In)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		res, err := db.RepairKey(out, in, n.Key, n.Weight)
		if err != nil {
			return nil, "", err
		}
		return res, out, nil

	case Conf:
		db, in, err := e.eval(db, n.In)
		if err != nil {
			return nil, "", err
		}
		confRel := db.Conf(in, n.PCol())
		out := e.fresh()
		res := db.Map(out, func(worlds.World) *rel.Relation { return confRel.Clone() })
		res.Complete[out] = true
		return res, out, nil

	case Poss:
		db, in, err := e.eval(db, n.In)
		if err != nil {
			return nil, "", err
		}
		possRel := db.Poss(in)
		out := e.fresh()
		res := db.Map(out, func(worlds.World) *rel.Relation { return possRel.Clone() })
		res.Complete[out] = true
		return res, out, nil

	case Cert:
		db, in, err := e.eval(db, n.In)
		if err != nil {
			return nil, "", err
		}
		conf := db.Conf(in, "_P")
		schema := conf.Schema()
		certRel := rel.NewRelation(schema[:len(schema)-1].Clone())
		for _, t := range conf.Tuples() {
			if t[len(t)-1].AsFloat() >= 1-1e-9 {
				certRel.Add(t[:len(t)-1])
			}
		}
		out := e.fresh()
		res := db.Map(out, func(worlds.World) *rel.Relation { return certRel.Clone() })
		res.Complete[out] = true
		return res, out, nil

	case Let:
		db1, defName, err := e.eval(db, n.Def)
		if err != nil {
			return nil, "", err
		}
		db2 := db1.Map(n.Name, func(w worlds.World) *rel.Relation {
			return w.Rels[defName].Clone()
		})
		db2.Complete[n.Name] = db1.Complete[defName]
		return e.eval(db2, n.In)

	case ApproxSelect:
		db, in, err := e.eval(db, n.In)
		if err != nil {
			return nil, "", err
		}
		// Compose σ̂ from its definition with exact world-wise conf.
		confRels := make([]*rel.Relation, len(n.Args))
		for i, a := range n.Args {
			targets := keepTargets(a.Attrs)
			proj := e.fresh()
			db = db.Map(proj, func(w worlds.World) *rel.Relation {
				return worlds.ProjectWorldwise(w.Rels[in], targets)
			})
			confRels[i] = db.Conf(proj, PColName(i))
		}
		sel, err := JoinAndFilter(confRels, n)
		if err != nil {
			return nil, "", err
		}
		out := e.fresh()
		res := db.Map(out, func(worlds.World) *rel.Relation { return sel.Clone() })
		res.Complete[out] = true
		return res, out, nil

	default:
		return nil, "", fmt.Errorf("algebra: unknown query node %T", q)
	}
}

func (e *WorldsEvaluator) evalPair(db *worlds.Database, l, r Query) (*worlds.Database, string, string, error) {
	db1, ln, err := e.eval(db, l)
	if err != nil {
		return nil, "", "", err
	}
	db2, rn, err := e.eval(db1, r)
	if err != nil {
		return nil, "", "", err
	}
	return db2, ln, rn, nil
}

func keepTargets(attrs []string) []expr.Target {
	out := make([]expr.Target, len(attrs))
	for i, a := range attrs {
		out[i] = expr.Keep(a)
	}
	return out
}
