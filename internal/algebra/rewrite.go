package algebra

import (
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
)

// This file implements the query rewriting of Theorem 4.4: confidences of
// conjunctions φ ∧ ψ where ψ is a (generalized) equality-generating
// dependency are expressible in positive UA[conf] as
//
//	Pr[φ ∧ ψ] = Pr[φ] − Pr[φ ∧ ¬ψ],
//
// because ¬ψ is existential. The rewriting is the paper's
//
//	ρ_{P1−P2→P}(ρ_{P→P1}(conf(φ)) ⋈ ρ_{P→P2}(conf(φ ∧ ¬ψ))),
//
// generalized to grouped confidences: the two conf relations join
// naturally on the group attributes.

// ConfMinus builds the positive-UA expression for Pr[φ] − Pr[φ∧¬ψ] per
// group: conf(φ) and conf(φ∧¬ψ) are joined on their shared attributes and
// the probability difference is exposed as column pcol. Groups of φ with
// no matching φ∧¬ψ tuple would be dropped by the join, so callers must
// ensure negWitness covers all groups (use EnsureCovered) or accept inner
// join semantics.
func ConfMinus(phi, phiAndNotPsi Query, pcol string) Query {
	confPhi := Conf{In: phi, As: "_P1"}
	confNeg := Conf{In: phiAndNotPsi, As: "_P2"}
	return Project{
		In: Join{L: confPhi, R: confNeg},
		Targets: []expr.Target{
			// Keep the group attributes implicitly via the join schema:
			// the caller projects afterwards; here we compute only P.
			As(pcol, expr.Sub(expr.A("_P1"), expr.A("_P2"))),
		},
	}
}

// ConfMinusGrouped is ConfMinus keeping the named group attributes in the
// output alongside the difference column.
func ConfMinusGrouped(phi, phiAndNotPsi Query, group []string, pcol string) Query {
	confPhi := Conf{In: phi, As: "_P1"}
	confNeg := Conf{In: phiAndNotPsi, As: "_P2"}
	targets := make([]expr.Target, 0, len(group)+1)
	for _, g := range group {
		targets = append(targets, expr.Keep(g))
	}
	targets = append(targets, As(pcol, expr.Sub(expr.A("_P1"), expr.A("_P2"))))
	return Project{
		In:      Join{L: confPhi, R: confNeg},
		Targets: targets,
	}
}

// As is a small alias so rewrite code reads like the paper's ρ notation.
func As(name string, e expr.Expr) expr.Target { return expr.As(name, e) }

// EGDViolation builds the existential query φ ∧ ¬ψ for the functional
// dependency ψ: ∀ key is unique in rel — its negation is the existential
// "two tuples agree on Key but differ on some attribute of Differ". The
// result has schema group (projected from the left copy), so it can feed
// ConfMinusGrouped. rel must be the name of a base relation; copies are
// renamed apart internally.
//
// This is the workhorse for conditional probabilities of the form
// Pr[φ | no key violation], the paper's motivating case for Theorem 4.4.
func EGDViolation(relName string, key []string, differ []string, group []string) Query {
	// Left copy keeps original names; right copy is renamed with suffix.
	rightTargets := make([]expr.Target, 0, len(key)+len(differ))
	for _, k := range key {
		rightTargets = append(rightTargets, expr.As(k+"_r", expr.A(k)))
	}
	for _, d := range differ {
		rightTargets = append(rightTargets, expr.As(d+"_r", expr.A(d)))
	}
	right := Project{In: Base{Name: relName}, Targets: rightTargets}

	// Join condition: keys equal, some differ attribute different.
	var keyEq []expr.Pred
	for _, k := range key {
		keyEq = append(keyEq, expr.Eq(expr.A(k), expr.A(k+"_r")))
	}
	var anyDiff []expr.Pred
	for _, d := range differ {
		anyDiff = append(anyDiff, expr.Ne(expr.A(d), expr.A(d+"_r")))
	}
	cond := expr.AndOf(append(keyEq, expr.OrOf(anyDiff...))...)

	prod := Product{L: Base{Name: relName}, R: right}
	sel := Select{In: prod, Pred: cond}
	targets := make([]expr.Target, len(group))
	for i, g := range group {
		targets[i] = expr.Keep(g)
	}
	return Project{In: sel, Targets: targets}
}

// ConjunctionWithEGD describes Pr[φ ∧ ψ] where φ is an existential
// (positive UA) query and ψ is the egd "no two tuples of relName agree on
// Key but differ on Differ" (a functional dependency). Theorem 4.4:
// Pr[φ ∧ ψ] = Pr[φ] − Pr[φ ∧ ¬ψ] with ¬ψ existential.
type ConjunctionWithEGD struct {
	// Phi is the existential part; its schema must contain Group.
	Phi Query
	// RelName, Key, Differ define the functional dependency ψ.
	RelName string
	Key     []string
	Differ  []string
	// Group is the grouping of the confidence computation (the schema of
	// the conf inputs).
	Group []string
}

// NegWitness returns the existential query φ ∧ ¬ψ: φ joined with the
// violation witness. The join correlates φ and ¬ψ through the shared
// random variables of the underlying probabilistic relations, which is
// exactly what the conjunction's probability requires.
func (c ConjunctionWithEGD) NegWitness() Query {
	violation := EGDViolation(c.RelName, c.Key, c.Differ, nil)
	// A zero-attribute violation witness joins as a semijoin filter (its
	// only effect is through the D columns). With group attributes it
	// joins naturally.
	return Join{L: c.Phi, R: violation}
}

// EvalConfConjunctionEGD computes the Theorem 4.4 difference exactly on
// the evaluator's database, with outer-difference semantics: groups of φ
// with no possible violation get Pr[φ ∧ ¬ψ] = 0, so their conjunction
// probability is Pr[φ]. The result is a complete relation with schema
// Group ∪ {pcol}.
func (e *URelEvaluator) EvalConfConjunctionEGD(c ConjunctionWithEGD, pcol string) (URelResult, error) {
	phiGrouped := Project{In: c.Phi, Targets: keepAll(c.Group)}
	confPhi, err := e.Eval(Conf{In: phiGrouped, As: pcol})
	if err != nil {
		return URelResult{}, err
	}
	negGrouped := Project{In: c.NegWitness(), Targets: keepAll(c.Group)}
	confNeg, err := e.Eval(Conf{In: negGrouped, As: pcol})
	if err != nil {
		return URelResult{}, err
	}
	// Outer difference on the group attributes: missing ¬ψ groups mean 0.
	negByGroup := make(map[string]float64, confNeg.Rel.Len())
	pIdx := confNeg.Rel.Schema().Index(pcol)
	for _, ut := range confNeg.Rel.Tuples() {
		negByGroup[ut.Row[:pIdx].Key()] = ut.Row[pIdx].AsFloat()
	}
	result := cloneSchemaRelation(confPhi.Rel)
	pIdxPhi := confPhi.Rel.Schema().Index(pcol)
	for _, ut := range confPhi.Rel.Tuples() {
		row := ut.Row.Clone()
		p := row[pIdxPhi].AsFloat() - negByGroup[row[:pIdxPhi].Key()]
		if p < 0 {
			p = 0 // numeric guard; Pr[φ] ≥ Pr[φ∧¬ψ] always
		}
		row[pIdxPhi] = floatValue(p)
		result.Add(nil, row)
	}
	return URelResult{Rel: result, Complete: true}, nil
}

func keepAll(attrs []string) []expr.Target {
	out := make([]expr.Target, len(attrs))
	for i, a := range attrs {
		out[i] = expr.Keep(a)
	}
	return out
}

// cloneSchemaRelation returns an empty U-relation with r's schema.
func cloneSchemaRelation(r *urel.Relation) *urel.Relation {
	return urel.NewRelation(r.Schema())
}

func floatValue(f float64) rel.Value { return rel.Float(f) }
