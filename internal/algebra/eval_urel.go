package algebra

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/urel"
)

// URelResult is the outcome of exact evaluation on a U-relational
// database: the result U-relation (complete relations are U-relations with
// empty D columns) and the completeness flag c(result). Ops carries the
// evaluation's per-operator statistics; it is set only on the result of a
// top-level Eval/EvalContext call, never on intermediate results.
type URelResult struct {
	Rel      *urel.Relation
	Complete bool
	Ops      urel.StatsMap
	// SpilledBytes and SpillFiles report out-of-core activity (WithSpill):
	// total bytes written to spill files and the number of spill files
	// created. Zero without spilling. Like Ops, set only on top-level
	// results.
	SpilledBytes int64
	SpillFiles   int
}

// URelEvaluator evaluates UA queries exactly on a U-relational database:
// positive relational algebra by the parsimonious translation, conf by
// exact #P computation (dnf), σ̂ by its defining composition with exact
// confidences. The evaluator works on a clone of the database, so
// repair-key never mutates the caller's variable table.
//
// A pool-backed evaluator (NewParallelURelEvaluator) runs the partitioned
// operator implementations across its workers and evaluates independent
// plan branches concurrently; results are bit-identical to the sequential
// evaluator for any worker count (the urel.Exec determinism invariant).
type URelEvaluator struct {
	db     *urel.Database
	nextRK int
	pool   *sched.Pool
	ctrs   *urel.Counters
	exec   *urel.Exec
	// branchSem bounds concurrent branch pairs: sched.Pool is a per-call
	// fan-out width, not a shared semaphore, so without a gate a bushy
	// plan of d safe binary operators could run up to 2^d branches, each
	// fanning its operators out pool-wide. Tokens are acquired
	// non-blockingly — a pair that finds none runs sequentially.
	branchSem chan struct{}
	// ctx, when non-nil, is checked at every operator so a cancelled
	// evaluation aborts between nodes with ctx.Err().
	ctx context.Context
	// mem, when non-nil, bounds the evaluation's materialized bytes (see
	// WithBudget); checked next to ctx at every operator.
	mem *urel.MemBudget
	// spill, when non-nil alongside mem, turns the budget into a
	// high-water mark: over-budget intermediates move to spill files
	// instead of aborting the evaluation (see WithSpill).
	spill *urel.Spill
}

// NewURelEvaluator clones db and returns a sequential evaluator over the
// clone.
func NewURelEvaluator(db *urel.Database) *URelEvaluator {
	return NewParallelURelEvaluator(db, nil)
}

// NewParallelURelEvaluator clones db and returns an evaluator whose
// operators (and independent plan branches) run across pool's workers.
// A nil pool selects one worker — the sequential reference path.
func NewParallelURelEvaluator(db *urel.Database, pool *sched.Pool) *URelEvaluator {
	if pool == nil {
		pool = sched.New(1)
	}
	ctrs := urel.NewCounters()
	return &URelEvaluator{
		db:        db.Clone(),
		pool:      pool,
		ctrs:      ctrs,
		exec:      urel.NewExec(pool, ctrs),
		branchSem: make(chan struct{}, pool.Workers()),
	}
}

// DB exposes the evaluator's (cloned) database; repair-key applications
// grow its variable table.
func (e *URelEvaluator) DB() *urel.Database { return e.db }

// WithBudget bounds the evaluation's materialized bytes: every operator
// charges its output's estimated footprint, the partitioned blow-up
// operators stop producing mid-range once the budget trips, and the
// evaluation aborts with a *urel.MemLimitError at the next operator
// boundary. Returns e for chaining; a nil budget disables the checks.
func (e *URelEvaluator) WithBudget(b *urel.MemBudget) *URelEvaluator {
	e.mem = b
	return e
}

// WithSpill attaches a spill manager for out-of-core execution: combined
// with WithBudget, intermediate relations whose footprint pushes the
// budget over its limit are shed to spill files and transparently reloaded
// when a later operator needs them, so the evaluation completes instead of
// aborting with a memory-limit error. Results are bit-identical to an
// unspilled run. Spilled evaluation disables concurrent branch evaluation
// (the residency bookkeeping is single-threaded); operators themselves
// still run across the pool's workers. The caller owns s's lifecycle
// (Close removes the directory). A nil s disables spilling.
func (e *URelEvaluator) WithSpill(s *urel.Spill) *URelEvaluator {
	e.spill = s
	return e
}

// Eval evaluates the query and returns the result relation.
func (e *URelEvaluator) Eval(q Query) (URelResult, error) {
	return e.EvalContext(context.Background(), q)
}

// EvalContext evaluates the query with cooperative cancellation: ctx is
// checked before every operator, so a cancelled or expired context aborts
// the evaluation between nodes and returns ctx.Err(). Exact confidence
// computation on one operator's lineage is not interruptible — the check
// granularity is the plan node.
func (e *URelEvaluator) EvalContext(ctx context.Context, q Query) (URelResult, error) {
	if err := Validate(q); err != nil {
		return URelResult{}, err
	}
	// Fresh statistics per evaluation, so URelResult.Ops reports this
	// call's work even when the evaluator is reused for several queries.
	e.ctrs = urel.NewCounters()
	e.exec = urel.NewExec(e.pool, e.ctrs).WithBudget(e.mem).WithSpill(e.spill)
	e.ctx = ctx
	res, err := e.eval(q)
	if err != nil {
		return res, err
	}
	// The final result may itself have been shed while later operators ran;
	// callers read it directly, so bring it home and surface any I/O
	// failure from doing so.
	e.exec.Ensure(res.Rel)
	if err := e.exec.Err(); err != nil {
		return URelResult{}, err
	}
	res.Ops = e.ctrs.Snapshot()
	if e.spill != nil {
		res.SpilledBytes = e.spill.Bytes()
		res.SpillFiles = e.spill.Files()
	}
	return res, nil
}

// eval evaluates one plan node, bracketing it with the cooperative
// checks: cancellation before the node runs, and the memory limit after —
// a budget tripped mid-operator must surface before the parent operator
// (an exact conf's #P computation, say) consumes the partial output.
func (e *URelEvaluator) eval(q Query) (URelResult, error) {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return URelResult{}, err
		}
	}
	res, err := e.evalNode(q)
	if err != nil {
		return URelResult{}, err
	}
	if err := e.exec.Err(); err != nil {
		// A spill I/O failure means some operator saw incomplete inputs;
		// the whole evaluation is abandoned, never silently wrong.
		return URelResult{}, err
	}
	// Under out-of-core execution the budget is a residency high-water
	// mark, not an abort condition — only spill I/O failures end the run.
	if e.spill == nil {
		if err := e.mem.Err(); err != nil {
			return URelResult{}, err
		}
	}
	return res, nil
}

func (e *URelEvaluator) evalNode(q Query) (URelResult, error) {
	switch n := q.(type) {
	case Base:
		r, ok := e.db.Rels[n.Name]
		if !ok {
			return URelResult{}, fmt.Errorf("algebra: unknown relation %q", n.Name)
		}
		return URelResult{Rel: r, Complete: e.db.Complete[n.Name]}, nil

	case Select:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: e.exec.Select(in.Rel, n.Pred), Complete: in.Complete}, nil

	case Project:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: e.exec.Project(in.Rel, n.Targets), Complete: in.Complete}, nil

	case Product:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		p, err := e.exec.Product(l.Rel, r.Rel)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: p, Complete: l.Complete && r.Complete}, nil

	case Join:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: e.exec.Join(l.Rel, r.Rel), Complete: l.Complete && r.Complete}, nil

	case Union:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		u, err := e.exec.Union(l.Rel, r.Rel)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: u, Complete: l.Complete && r.Complete}, nil

	case DiffC:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		if !l.Complete || !r.Complete {
			return URelResult{}, fmt.Errorf("algebra: −c requires inputs complete by c")
		}
		d, err := e.exec.DiffComplete(l.Rel, r.Rel)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: d, Complete: true}, nil

	case RepairKey:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		e.nextRK++
		prefix := "rk" + strconv.Itoa(e.nextRK)
		rk, err := e.exec.RepairKey(in.Rel, n.Key, n.Weight, e.db.Vars, prefix)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: rk, Complete: false}, nil

	case Conf:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		c, err := e.exec.ConfExact(in.Rel, e.db.Vars, n.PCol())
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(c), Complete: true}, nil

	case Poss:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(e.exec.Poss(in.Rel)), Complete: true}, nil

	case Cert:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(e.exec.CertExact(in.Rel, e.db.Vars)), Complete: true}, nil

	case Let:
		def, err := e.eval(n.Def)
		if err != nil {
			return URelResult{}, err
		}
		oldRel, hadRel := e.db.Rels[n.Name]
		oldC := e.db.Complete[n.Name]
		e.db.Rels[n.Name] = def.Rel
		e.db.Complete[n.Name] = def.Complete
		res, err := e.eval(n.In)
		if hadRel {
			e.db.Rels[n.Name] = oldRel
			e.db.Complete[n.Name] = oldC
		} else {
			delete(e.db.Rels, n.Name)
			delete(e.db.Complete, n.Name)
		}
		return res, err

	case ApproxSelect:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		out, err := e.approxSelectExact(in.Rel, n)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(out), Complete: true}, nil

	default:
		return URelResult{}, fmt.Errorf("algebra: unknown query node %T", q)
	}
}

// evalPair evaluates the two inputs of a binary operator. When the pool
// has more than one worker, a branch token is available, and both
// branches are effect-free — no RepairKey (mutates the shared variable
// table and the rk counter) and no Let (rebinds a name in the shared
// database) — the branches evaluate concurrently; otherwise strictly
// left-then-right. Concurrent branches change only wall-clock time: each
// branch's own operators are deterministic, the branches share no mutable
// state, and error priority (left first) matches the sequential path.
// Cancellation stays at node granularity — every eval call checks the
// evaluator's context.
func (e *URelEvaluator) evalPair(l, r Query) (URelResult, URelResult, error) {
	// Out-of-core execution forces sequential branches: the Exec's
	// spill-residency bookkeeping assumes one operator at a time.
	if e.spill == nil && e.pool.Workers() > 1 && branchSafe(l) && branchSafe(r) {
		select {
		case e.branchSem <- struct{}{}:
			defer func() { <-e.branchSem }()
			ctx := e.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			var res [2]URelResult
			qs := [2]Query{l, r}
			err := e.pool.ForEachCtx(ctx, 2, func(i int) error {
				out, err := e.eval(qs[i])
				res[i] = out
				return err
			})
			if err != nil {
				return URelResult{}, URelResult{}, err
			}
			return res[0], res[1], nil
		default:
			// No token free: enough branch pairs are already in flight to
			// keep the pool busy — fall through to sequential evaluation.
		}
	}
	lr, err := e.eval(l)
	if err != nil {
		return URelResult{}, URelResult{}, err
	}
	rr, err := e.eval(r)
	if err != nil {
		return URelResult{}, URelResult{}, err
	}
	return lr, rr, nil
}

// branchSafe reports whether a plan branch can run concurrently with a
// sibling: it must not contain RepairKey (which registers variables in
// the shared table and consumes the evaluator's deterministic rk counter)
// or Let (which temporarily rebinds a relation name in the shared
// database).
func branchSafe(q Query) bool {
	safe := true
	Walk(q, func(n Query) {
		switch n.(type) {
		case RepairKey, Let:
			safe = false
		}
	})
	return safe
}

// approxSelectExact evaluates σ̂ by its defining composition with exact
// confidence computation: this is the Q (as opposed to Q∼) semantics of
// Section 6.
func (e *URelEvaluator) approxSelectExact(in *urel.Relation, n ApproxSelect) (*rel.Relation, error) {
	confRels, err := BuildConfArgs(e.exec, in, n.Args, func(r *urel.Relation, pcol string) (*rel.Relation, error) {
		return e.exec.ConfExact(r, e.db.Vars, pcol)
	})
	if err != nil {
		return nil, err
	}
	return JoinAndFilter(confRels, n)
}

// BuildConfArgs computes, for each conf[Āᵢ] argument, the confidence
// relation ρ_{P→Pi}(conf(π_{Āᵢ}(in))) using the supplied conf
// implementation (exact or approximate), with the projections routed
// through x (nil selects a sequential Exec).
func BuildConfArgs(x *urel.Exec, in *urel.Relation, args []ConfArg, conf func(*urel.Relation, string) (*rel.Relation, error)) ([]*rel.Relation, error) {
	if x == nil {
		x = urel.NewExec(nil, nil)
	}
	out := make([]*rel.Relation, len(args))
	for i, a := range args {
		targets := make([]expr.Target, len(a.Attrs))
		for j, attr := range a.Attrs {
			if !in.Schema().Has(attr) {
				return nil, fmt.Errorf("algebra: σ̂ conf attribute %q not in schema %v", attr, in.Schema())
			}
			targets[j] = expr.Keep(attr)
		}
		proj := x.Project(in, targets)
		c, err := conf(proj, PColName(i))
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// PColName returns the confidence column name for σ̂ argument i: P1, P2, …
func PColName(i int) string { return "P" + strconv.Itoa(i+1) }

// JoinAndFilter joins the per-argument confidence relations naturally and
// keeps the rows satisfying the σ̂ predicate over (P1,…,Pk).
func JoinAndFilter(confRels []*rel.Relation, n ApproxSelect) (*rel.Relation, error) {
	joined := urel.FromComplete(confRels[0])
	for _, c := range confRels[1:] {
		joined = urel.Join(joined, urel.FromComplete(c))
	}
	schema := joined.Schema()
	pIdx := make([]int, len(n.Args))
	for i := range n.Args {
		pIdx[i] = schema.Index(PColName(i))
		if pIdx[i] < 0 {
			return nil, fmt.Errorf("algebra: internal: missing conf column %s", PColName(i))
		}
	}
	out := rel.NewRelation(schema)
	x := make([]float64, len(n.Args))
	for _, ut := range joined.Tuples() {
		for i, j := range pIdx {
			x[i] = ut.Row[j].AsFloat()
		}
		if n.Pred.Eval(x) {
			out.Add(ut.Row)
		}
	}
	return out, nil
}
