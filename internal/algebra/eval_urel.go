package algebra

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
)

// URelResult is the outcome of exact evaluation on a U-relational
// database: the result U-relation (complete relations are U-relations with
// empty D columns) and the completeness flag c(result).
type URelResult struct {
	Rel      *urel.Relation
	Complete bool
}

// URelEvaluator evaluates UA queries exactly on a U-relational database:
// positive relational algebra by the parsimonious translation, conf by
// exact #P computation (dnf), σ̂ by its defining composition with exact
// confidences. The evaluator works on a clone of the database, so
// repair-key never mutates the caller's variable table.
type URelEvaluator struct {
	db     *urel.Database
	nextRK int
	// ctx, when non-nil, is checked at every operator so a cancelled
	// evaluation aborts between nodes with ctx.Err().
	ctx context.Context
}

// NewURelEvaluator clones db and returns an evaluator over the clone.
func NewURelEvaluator(db *urel.Database) *URelEvaluator {
	return &URelEvaluator{db: db.Clone()}
}

// DB exposes the evaluator's (cloned) database; repair-key applications
// grow its variable table.
func (e *URelEvaluator) DB() *urel.Database { return e.db }

// Eval evaluates the query and returns the result relation.
func (e *URelEvaluator) Eval(q Query) (URelResult, error) {
	return e.EvalContext(context.Background(), q)
}

// EvalContext evaluates the query with cooperative cancellation: ctx is
// checked before every operator, so a cancelled or expired context aborts
// the evaluation between nodes and returns ctx.Err(). Exact confidence
// computation on one operator's lineage is not interruptible — the check
// granularity is the plan node.
func (e *URelEvaluator) EvalContext(ctx context.Context, q Query) (URelResult, error) {
	if err := Validate(q); err != nil {
		return URelResult{}, err
	}
	e.ctx = ctx
	return e.eval(q)
}

func (e *URelEvaluator) eval(q Query) (URelResult, error) {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return URelResult{}, err
		}
	}
	switch n := q.(type) {
	case Base:
		r, ok := e.db.Rels[n.Name]
		if !ok {
			return URelResult{}, fmt.Errorf("algebra: unknown relation %q", n.Name)
		}
		return URelResult{Rel: r, Complete: e.db.Complete[n.Name]}, nil

	case Select:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.Select(in.Rel, n.Pred), Complete: in.Complete}, nil

	case Project:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.Project(in.Rel, n.Targets), Complete: in.Complete}, nil

	case Product:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		p, err := urel.Product(l.Rel, r.Rel)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: p, Complete: l.Complete && r.Complete}, nil

	case Join:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.Join(l.Rel, r.Rel), Complete: l.Complete && r.Complete}, nil

	case Union:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		u, err := urel.Union(l.Rel, r.Rel)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: u, Complete: l.Complete && r.Complete}, nil

	case DiffC:
		l, r, err := e.evalPair(n.L, n.R)
		if err != nil {
			return URelResult{}, err
		}
		if !l.Complete || !r.Complete {
			return URelResult{}, fmt.Errorf("algebra: −c requires inputs complete by c")
		}
		d, err := urel.DiffComplete(l.Rel, r.Rel)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: d, Complete: true}, nil

	case RepairKey:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		e.nextRK++
		prefix := "rk" + strconv.Itoa(e.nextRK)
		rk, err := urel.RepairKey(in.Rel, n.Key, n.Weight, e.db.Vars, prefix)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: rk, Complete: false}, nil

	case Conf:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		c, err := urel.ConfExact(in.Rel, e.db.Vars, n.PCol())
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(c), Complete: true}, nil

	case Poss:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(urel.Poss(in.Rel)), Complete: true}, nil

	case Cert:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(urel.CertExact(in.Rel, e.db.Vars)), Complete: true}, nil

	case Let:
		def, err := e.eval(n.Def)
		if err != nil {
			return URelResult{}, err
		}
		oldRel, hadRel := e.db.Rels[n.Name]
		oldC := e.db.Complete[n.Name]
		e.db.Rels[n.Name] = def.Rel
		e.db.Complete[n.Name] = def.Complete
		res, err := e.eval(n.In)
		if hadRel {
			e.db.Rels[n.Name] = oldRel
			e.db.Complete[n.Name] = oldC
		} else {
			delete(e.db.Rels, n.Name)
			delete(e.db.Complete, n.Name)
		}
		return res, err

	case ApproxSelect:
		in, err := e.eval(n.In)
		if err != nil {
			return URelResult{}, err
		}
		out, err := e.approxSelectExact(in.Rel, n)
		if err != nil {
			return URelResult{}, err
		}
		return URelResult{Rel: urel.FromComplete(out), Complete: true}, nil

	default:
		return URelResult{}, fmt.Errorf("algebra: unknown query node %T", q)
	}
}

func (e *URelEvaluator) evalPair(l, r Query) (URelResult, URelResult, error) {
	lr, err := e.eval(l)
	if err != nil {
		return URelResult{}, URelResult{}, err
	}
	rr, err := e.eval(r)
	if err != nil {
		return URelResult{}, URelResult{}, err
	}
	return lr, rr, nil
}

// approxSelectExact evaluates σ̂ by its defining composition with exact
// confidence computation: this is the Q (as opposed to Q∼) semantics of
// Section 6.
func (e *URelEvaluator) approxSelectExact(in *urel.Relation, n ApproxSelect) (*rel.Relation, error) {
	confRels, err := BuildConfArgs(in, n.Args, func(r *urel.Relation, pcol string) (*rel.Relation, error) {
		return urel.ConfExact(r, e.db.Vars, pcol)
	})
	if err != nil {
		return nil, err
	}
	return JoinAndFilter(confRels, n)
}

// BuildConfArgs computes, for each conf[Āᵢ] argument, the confidence
// relation ρ_{P→Pi}(conf(π_{Āᵢ}(in))) using the supplied conf
// implementation (exact or approximate).
func BuildConfArgs(in *urel.Relation, args []ConfArg, conf func(*urel.Relation, string) (*rel.Relation, error)) ([]*rel.Relation, error) {
	out := make([]*rel.Relation, len(args))
	for i, a := range args {
		targets := make([]expr.Target, len(a.Attrs))
		for j, attr := range a.Attrs {
			if !in.Schema().Has(attr) {
				return nil, fmt.Errorf("algebra: σ̂ conf attribute %q not in schema %v", attr, in.Schema())
			}
			targets[j] = expr.Keep(attr)
		}
		proj := urel.Project(in, targets)
		c, err := conf(proj, PColName(i))
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// PColName returns the confidence column name for σ̂ argument i: P1, P2, …
func PColName(i int) string { return "P" + strconv.Itoa(i+1) }

// JoinAndFilter joins the per-argument confidence relations naturally and
// keeps the rows satisfying the σ̂ predicate over (P1,…,Pk).
func JoinAndFilter(confRels []*rel.Relation, n ApproxSelect) (*rel.Relation, error) {
	joined := urel.FromComplete(confRels[0])
	for _, c := range confRels[1:] {
		joined = urel.Join(joined, urel.FromComplete(c))
	}
	schema := joined.Schema()
	pIdx := make([]int, len(n.Args))
	for i := range n.Args {
		pIdx[i] = schema.Index(PColName(i))
		if pIdx[i] < 0 {
			return nil, fmt.Errorf("algebra: internal: missing conf column %s", PColName(i))
		}
	}
	out := rel.NewRelation(schema)
	x := make([]float64, len(n.Args))
	for _, ut := range joined.Tuples() {
		for i, j := range pIdx {
			x[i] = ut.Row[j].AsFloat()
		}
		if n.Pred.Eval(x) {
			out.Add(ut.Row)
		}
	}
	return out, nil
}
