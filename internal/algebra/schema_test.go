package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
)

func inferDB() *urel.Database {
	db := urel.NewDatabase()
	db.AddComplete("R", rel.FromRows(rel.NewSchema("A", "B"),
		rel.Tuple{rel.Int(1), rel.Int(2)}))
	db.AddComplete("S", rel.FromRows(rel.NewSchema("B", "C"),
		rel.Tuple{rel.Int(2), rel.Int(3)}))
	db.AddComplete("R2", rel.FromRows(rel.NewSchema("A", "B"),
		rel.Tuple{rel.Int(9), rel.Int(9)}))
	return db
}

func TestInferSchemaPositive(t *testing.T) {
	db := inferDB()
	cases := []struct {
		q    Query
		want rel.Schema
	}{
		{Base{Name: "R"}, rel.NewSchema("A", "B")},
		{Select{In: Base{Name: "R"}, Pred: expr.Gt(expr.A("A"), expr.CInt(0))}, rel.NewSchema("A", "B")},
		{Project{In: Base{Name: "R"}, Targets: []expr.Target{expr.As("X", expr.Add(expr.A("A"), expr.A("B")))}}, rel.NewSchema("X")},
		{Product{L: Base{Name: "R"}, R: Project{In: Base{Name: "S"}, Targets: []expr.Target{expr.Keep("C")}}}, rel.NewSchema("A", "B", "C")},
		{Join{L: Base{Name: "R"}, R: Base{Name: "S"}}, rel.NewSchema("A", "B", "C")},
		{Union{L: Base{Name: "R"}, R: Base{Name: "R2"}}, rel.NewSchema("A", "B")},
		{DiffC{L: Base{Name: "R"}, R: Base{Name: "R2"}}, rel.NewSchema("A", "B")},
		{RepairKey{In: Base{Name: "R"}, Key: []string{"A"}, Weight: "B"}, rel.NewSchema("A", "B")},
		{Conf{In: Base{Name: "R"}}, rel.NewSchema("A", "B", "P")},
		{Poss{In: Base{Name: "R"}}, rel.NewSchema("A", "B")},
		{Cert{In: Base{Name: "R"}}, rel.NewSchema("A", "B")},
		{ApproxSelect{In: Base{Name: "R"}, Args: []ConfArg{{Attrs: []string{"A"}}, {Attrs: nil}},
			Pred: predapprox.Linear([]float64{1, -1}, 0)}, rel.NewSchema("A", "P1", "P2")},
		{Let{Name: "V", Def: Conf{In: Base{Name: "R"}}, In: Project{In: Base{Name: "V"},
			Targets: []expr.Target{expr.Keep("P")}}}, rel.NewSchema("P")},
	}
	for _, c := range cases {
		got, err := InferSchema(c.q, db)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: schema %v, want %v", c.q, got, c.want)
		}
	}
}

func TestInferSchemaErrors(t *testing.T) {
	db := inferDB()
	cases := []Query{
		Base{Name: "nope"},
		Select{In: Base{Name: "R"}, Pred: expr.Gt(expr.A("Z"), expr.CInt(0))},
		Project{In: Base{Name: "R"}, Targets: []expr.Target{expr.Keep("Z")}},
		Project{In: Base{Name: "R"}, Targets: []expr.Target{expr.Keep("A"), expr.As("A", expr.A("B"))}},
		Product{L: Base{Name: "R"}, R: Base{Name: "R2"}}, // shared attrs
		Union{L: Base{Name: "R"}, R: Base{Name: "S"}},
		DiffC{L: Base{Name: "R"}, R: Base{Name: "S"}},
		RepairKey{In: Base{Name: "R"}, Key: []string{"Z"}, Weight: "B"},
		RepairKey{In: Base{Name: "R"}, Weight: "Z"},
		Conf{In: Base{Name: "R"}, As: "A"}, // collision
		ApproxSelect{In: Base{Name: "R"}, Args: []ConfArg{{Attrs: []string{"Z"}}},
			Pred: predapprox.Linear([]float64{1}, 0)},
		Let{Name: "V", Def: Base{Name: "nope"}, In: Base{Name: "V"}},
	}
	for _, q := range cases {
		if _, err := InferSchema(q, db); err == nil {
			t.Errorf("%s: expected schema error", q)
		}
	}
}

// Inference must agree with actual evaluation on every plan the coin
// example exercises.
func TestInferSchemaMatchesEvaluation(t *testing.T) {
	db := coinDB()
	_, qS, qT, qU := coinQueries()
	for _, q := range []Query{qS, qT, qU, Conf{In: qT}} {
		want, err := InferSchema(q, db)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		res, err := NewURelEvaluator(db).Eval(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !res.Rel.Schema().Equal(want) {
			t.Errorf("%s: inferred %v, evaluated %v", q, want, res.Rel.Schema())
		}
	}
}

// Property: on every random plan the evaluators accept, the statically
// inferred schema equals the evaluated relation's schema — and when
// inference rejects a plan, evaluation must reject it too.
func TestInferSchemaAgreesOnRandomPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	agreed := 0
	for trial := 0; trial < 200; trial++ {
		db := randDB(rng)
		q := randQuery(rng, 1+rng.Intn(3))
		inferred, inferErr := InferSchema(q, db)
		res, evalErr := NewURelEvaluator(db).Eval(q)
		switch {
		case inferErr == nil && evalErr == nil:
			agreed++
			if !res.Rel.Schema().Equal(inferred) {
				t.Fatalf("trial %d: inferred %v, evaluated %v (q=%s)", trial, inferred, res.Rel.Schema(), q)
			}
		case inferErr == nil && evalErr != nil:
			// Data-dependent failures (e.g. conflicting repair-key
			// weights for one alternative) are invisible to static
			// inference and acceptable; schema-class failures are not.
			if !strings.Contains(evalErr.Error(), "conflicting weights") {
				t.Fatalf("trial %d: inference accepted a plan evaluation rejects: %v (q=%s)", trial, evalErr, q)
			}
		}
	}
	if agreed < 80 {
		t.Fatalf("too few valid plans: %d", agreed)
	}
}

func TestExplain(t *testing.T) {
	db := coinDB()
	_, _, _, qU := coinQueries()
	out := Explain(qU, db)
	for _, want := range []string{"let R", "repair-key", "conf → P1", ":: (CoinType, P)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Bare tree without a database.
	bare := Explain(qU, nil)
	if strings.Contains(bare, "::") {
		t.Error("bare Explain should not annotate schemas")
	}
}

func TestAttrsOfTargets(t *testing.T) {
	ts := []expr.Target{expr.Keep("A"), expr.As("X", expr.Add(expr.A("B"), expr.A("C")))}
	got := attrsOfTargets(ts)
	if len(got) != 3 {
		t.Errorf("attrs = %v", got)
	}
}
