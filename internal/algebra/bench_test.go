package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/workload"
)

func BenchmarkURelEvaluatorCoinExample(b *testing.B) {
	db := coinDB()
	_, _, _, u := coinQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewURelEvaluator(db).Eval(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldsEvaluatorCoinExample(b *testing.B) {
	db := coinDB()
	_, _, _, u := coinQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := NewWorldsEvaluatorFromURel(db, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ev.Eval(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactApproxSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := workload.MultiClause(rng, "R", 16, 4, 4, 2)
	q := ApproxSelect{
		In:   Base{Name: "R"},
		Args: []ConfArg{{Attrs: []string{"ID"}}},
		Pred: predapprox.Linear([]float64{1}, 0.5),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewURelEvaluator(db).Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairKeyEval(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := workload.DirtyCustomers(rng, 64, 4)
	q := Conf{In: Project{
		In:      RepairKey{In: Base{Name: "Candidates"}, Key: []string{"Cluster"}, Weight: "Weight"},
		Targets: []expr.Target{expr.Keep("Cluster"), expr.Keep("Name")},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewURelEvaluator(db).Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}
