// Package algebra defines the query AST for the paper's uncertainty
// algebra UA[conf, repair-key, σ̂] (Definitions 2.1 and 6.2/Section 6) and
// two exact evaluators: one over the nonsuccinct possible-worlds model
// (the reference semantics of Section 2) and one over U-relational
// databases (the parsimonious translation of Section 3). The approximate
// evaluator with error bounds lives in internal/core.
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/predapprox"
)

// Query is a node of a UA query plan.
type Query interface {
	String() string
	// Children returns the sub-queries, for plan traversal.
	Children() []Query
}

// Base references a named database relation.
type Base struct{ Name string }

// Select is the world-wise selection σ_φ.
type Select struct {
	In   Query
	Pred expr.Pred
}

// Project is the generalized projection/renaming π/ρ with arithmetic
// targets (the paper allows arithmetic in the arguments of π and ρ).
type Project struct {
	In      Query
	Targets []expr.Target
}

// Product is the world-wise cross product ×; attribute names must be
// disjoint.
type Product struct{ L, R Query }

// Join is the world-wise natural join ⋈.
type Join struct{ L, R Query }

// Union is the world-wise union ∪; schemas must match.
type Union struct{ L, R Query }

// DiffC is −c: difference applied to relations that are complete by c.
type DiffC struct{ L, R Query }

// RepairKey is repair-key_Key@Weight, the uncertainty-introducing
// operation.
type RepairKey struct {
	In     Query
	Key    []string
	Weight string
}

// Conf is the confidence operation; its output is a complete relation with
// the extra column As (default "P").
type Conf struct {
	In Query
	As string
}

// PCol returns the conf column name.
func (c Conf) PCol() string {
	if c.As == "" {
		return "P"
	}
	return c.As
}

// Poss computes the possible tuples: π_sch(R)(conf(R)).
type Poss struct{ In Query }

// Cert computes the certain tuples: π_sch(R)(σ_{P=1}(conf(R))).
type Cert struct{ In Query }

// ConfArg is one conf[Ā] term of an approximate selection: the confidence
// of the input projected onto Attrs. An empty Attrs list is conf[∅], the
// probability that the input is nonempty.
type ConfArg struct{ Attrs []string }

// ApproxSelect is the σ̂ operator of Section 6:
//
//	σ̂_{φ(conf[Ā₁],…,conf[Ā_k])}(R) :=
//	  σ_{φ(P1,…,Pk)}(ρ_{P→P1}(conf(π_{Ā₁}(R))) ⋈ … ⋈ ρ_{P→Pk}(conf(π_{Ā_k}(R))))
//
// Its output schema is the union of the Āᵢ (in order of first appearance)
// followed by the confidence columns P1,…,Pk; it is complete but, under
// approximate evaluation, unreliable.
type ApproxSelect struct {
	In   Query
	Args []ConfArg
	Pred predapprox.Pred
}

// Let binds the result of Def to Name for the evaluation of In, so that a
// subquery with uncertainty-introducing operations (repair-key) is
// evaluated once and shared — the "R := …; S := …" style of the paper's
// Example 2.2. Without Let, each occurrence of a subtree is an independent
// evaluation with fresh random variables.
type Let struct {
	Name string
	Def  Query
	In   Query
}

// Children implementations.

// Children returns no children.
func (Base) Children() []Query { return nil }

// Children returns the input.
func (q Select) Children() []Query { return []Query{q.In} }

// Children returns the input.
func (q Project) Children() []Query { return []Query{q.In} }

// Children returns both inputs.
func (q Product) Children() []Query { return []Query{q.L, q.R} }

// Children returns both inputs.
func (q Join) Children() []Query { return []Query{q.L, q.R} }

// Children returns both inputs.
func (q Union) Children() []Query { return []Query{q.L, q.R} }

// Children returns both inputs.
func (q DiffC) Children() []Query { return []Query{q.L, q.R} }

// Children returns the input.
func (q RepairKey) Children() []Query { return []Query{q.In} }

// Children returns the input.
func (q Conf) Children() []Query { return []Query{q.In} }

// Children returns the input.
func (q Poss) Children() []Query { return []Query{q.In} }

// Children returns the input.
func (q Cert) Children() []Query { return []Query{q.In} }

// Children returns the input.
func (q ApproxSelect) Children() []Query { return []Query{q.In} }

// Children returns the definition and the body.
func (q Let) Children() []Query { return []Query{q.Def, q.In} }

// String renderings.

func (q Base) String() string   { return q.Name }
func (q Select) String() string { return fmt.Sprintf("σ[%s](%s)", q.Pred, q.In) }

func (q Project) String() string {
	parts := make([]string, len(q.Targets))
	for i, t := range q.Targets {
		if a, ok := t.Expr.(expr.Attr); ok && a.Name == t.As {
			parts[i] = t.As
		} else {
			parts[i] = fmt.Sprintf("%s→%s", t.Expr, t.As)
		}
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(parts, ","), q.In)
}

func (q Product) String() string { return fmt.Sprintf("(%s × %s)", q.L, q.R) }
func (q Join) String() string    { return fmt.Sprintf("(%s ⋈ %s)", q.L, q.R) }
func (q Union) String() string   { return fmt.Sprintf("(%s ∪ %s)", q.L, q.R) }
func (q DiffC) String() string   { return fmt.Sprintf("(%s −c %s)", q.L, q.R) }

func (q RepairKey) String() string {
	return fmt.Sprintf("repair-key[%s@%s](%s)", strings.Join(q.Key, ","), q.Weight, q.In)
}

func (q Conf) String() string { return fmt.Sprintf("conf→%s(%s)", q.PCol(), q.In) }
func (q Poss) String() string { return fmt.Sprintf("poss(%s)", q.In) }
func (q Cert) String() string { return fmt.Sprintf("cert(%s)", q.In) }

func (q Let) String() string { return fmt.Sprintf("let %s := %s in %s", q.Name, q.Def, q.In) }

func (q ApproxSelect) String() string {
	args := make([]string, len(q.Args))
	for i, a := range q.Args {
		args[i] = "conf[" + strings.Join(a.Attrs, ",") + "]"
	}
	return fmt.Sprintf("σ̂[%s over %s](%s)", q.Pred, strings.Join(args, ","), q.In)
}

// Walk visits q and all descendants in preorder.
func Walk(q Query, fn func(Query)) {
	fn(q)
	for _, c := range q.Children() {
		Walk(c, fn)
	}
}

// HasApproxSelect reports whether the plan contains a σ̂ operator.
func HasApproxSelect(q Query) bool {
	found := false
	Walk(q, func(n Query) {
		if _, ok := n.(ApproxSelect); ok {
			found = true
		}
	})
	return found
}

// Validate performs static checks the evaluators rely on: repair-key must
// not appear above an approximate selection (footnote 3 of the paper), and
// σ̂ argument lists must match the predicate arity.
func Validate(q Query) error {
	switch n := q.(type) {
	case RepairKey:
		if HasApproxSelect(n.In) {
			return fmt.Errorf("algebra: repair-key above σ̂ is not supported (paper footnote 3)")
		}
	case ApproxSelect:
		if n.Pred.Arity() > len(n.Args) {
			return fmt.Errorf("algebra: σ̂ predicate arity %d exceeds %d conf arguments", n.Pred.Arity(), len(n.Args))
		}
		if len(n.Args) == 0 {
			return fmt.Errorf("algebra: σ̂ needs at least one conf argument")
		}
	}
	for _, c := range q.Children() {
		if err := Validate(c); err != nil {
			return err
		}
	}
	return nil
}
