package algebra

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
	"repro/internal/worlds"
)

// fdHolds reports whether the functional dependency K → V holds in r.
func fdHolds(r *rel.Relation) bool {
	seen := map[string]string{}
	for _, t := range r.Tuples() {
		k := t[0].Key()
		v := t[1].Key()
		if prev, ok := seen[k]; ok && prev != v {
			return false
		}
		seen[k] = v
	}
	return true
}

// TestTheorem44ConjunctionWithEGD validates the rewriting
// Pr[φ ∧ ψ] = Pr[φ] − Pr[φ ∧ ¬ψ] against direct possible-worlds
// evaluation, for φ = ∃ tuple with V = 1 and ψ = the FD K → V over a
// random tuple-independent relation.
func TestTheorem44ConjunctionWithEGD(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 40; trial++ {
		// Random tuple-independent R(K, V) with small domains so FD
		// violations are common.
		db := urel.NewDatabase()
		r := urel.NewRelation(rel.NewSchema("K", "V"))
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			p := 0.2 + 0.6*rng.Float64()
			v := db.Vars.Add("t"+strconv.Itoa(i), []float64{p, 1 - p}, nil)
			r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{
				rel.Int(int64(rng.Intn(2))),
				rel.Int(int64(rng.Intn(2))),
			})
		}
		db.AddURelation("R", r, false)

		phi := Select{In: Base{Name: "R"}, Pred: expr.Eq(expr.A("V"), expr.CInt(1))}
		c := ConjunctionWithEGD{
			Phi:     phi,
			RelName: "R",
			Key:     []string{"K"},
			Differ:  []string{"V"},
			Group:   nil, // Boolean query: one probability
		}
		ev := NewURelEvaluator(db)
		res, err := ev.EvalConfConjunctionEGD(c, "P")
		if err != nil {
			t.Fatal(err)
		}
		got := 0.0
		if res.Rel.Len() == 1 {
			got = res.Rel.Tuples()[0].Row[0].AsFloat()
		} else if res.Rel.Len() > 1 {
			t.Fatalf("trial %d: Boolean conjunction gave %d rows", trial, res.Rel.Len())
		}

		// Ground truth by world enumeration.
		wdb, err := worlds.Expand(db, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, w := range wdb.Worlds {
			rw := w.Rels["R"]
			phiHolds := false
			for _, tp := range rw.Tuples() {
				if rel.Equal(tp[1], rel.Int(1)) {
					phiHolds = true
					break
				}
			}
			if phiHolds && fdHolds(rw) {
				want += w.P
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Pr[φ∧ψ] = %v, worlds say %v", trial, got, want)
		}
	}
}

// Grouped variant: per-K probability that K has a V=1 tuple AND no FD
// violation anywhere.
func TestTheorem44Grouped(t *testing.T) {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("K", "V"))
	add := func(name string, p float64, k, v int64) {
		va := db.Vars.Add(name, []float64{p, 1 - p}, nil)
		r.Add(vars.MustAssignment(vars.Binding{Var: va, Alt: 0}), rel.Tuple{rel.Int(k), rel.Int(v)})
	}
	add("a", 0.5, 0, 1) // key 0, value 1
	add("b", 0.5, 0, 0) // key 0, value 0 — violates FD with a
	add("c", 0.8, 1, 1) // key 1, value 1 — never conflicts
	db.AddURelation("R", r, false)

	phi := Select{In: Base{Name: "R"}, Pred: expr.Eq(expr.A("V"), expr.CInt(1))}
	c := ConjunctionWithEGD{Phi: phi, RelName: "R", Key: []string{"K"}, Differ: []string{"V"}, Group: []string{"K"}}
	ev := NewURelEvaluator(db)
	res, err := ev.EvalConfConjunctionEGD(c, "P")
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth per group by enumeration.
	wdb, err := worlds.Expand(db, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{}
	for _, w := range wdb.Worlds {
		rw := w.Rels["R"]
		if !fdHolds(rw) {
			continue
		}
		for _, tp := range rw.Tuples() {
			if rel.Equal(tp[1], rel.Int(1)) {
				want[tp[0].AsInt()] += w.P
			}
		}
	}
	out := urel.Poss(res.Rel)
	if out.Len() != len(want) {
		t.Fatalf("groups = %d, want %d\n%s", out.Len(), len(want), out)
	}
	for _, tp := range out.Tuples() {
		k := out.Value(tp, "K").AsInt()
		p := out.Value(tp, "P").AsFloat()
		if math.Abs(p-want[k]) > 1e-9 {
			t.Errorf("group %d: Pr = %v, want %v", k, p, want[k])
		}
	}
}

// ConfMinus (ungrouped) exposes just the probability difference.
func TestConfMinusUngrouped(t *testing.T) {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("K"))
	x := db.Vars.Add("x", []float64{0.6, 0.4}, nil)
	y := db.Vars.Add("y", []float64{0.5, 0.5}, nil)
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(0)})
	r.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(1)})
	db.AddURelation("R", r, false)

	// φ = π∅(R) nonempty; φ∧witness = π∅ of the x-tuple only.
	phi := Project{In: Base{Name: "R"}, Targets: nil}
	sub := Project{In: Select{In: Base{Name: "R"}, Pred: expr.Eq(expr.A("K"), expr.CInt(0))}}
	q := ConfMinus(phi, sub, "P")
	res, err := NewURelEvaluator(db).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	// Pr[R nonempty] = 1 − 0.4·0.5 = 0.8; Pr[x-tuple] = 0.6; diff 0.2.
	out := urel.Poss(res.Rel)
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	if got := out.Value(out.Tuples()[0], "P").AsFloat(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("P = %v, want 0.2", got)
	}
}

// ConfMinusGrouped as a pure rewrite (inner-join semantics) agrees with
// the evaluator-level outer difference when every group has a possible
// violation.
func TestConfMinusGroupedRewrite(t *testing.T) {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("K", "V"))
	add := func(name string, p float64, k, v int64) {
		va := db.Vars.Add(name, []float64{p, 1 - p}, nil)
		r.Add(vars.MustAssignment(vars.Binding{Var: va, Alt: 0}), rel.Tuple{rel.Int(k), rel.Int(v)})
	}
	add("a", 0.5, 0, 1)
	add("b", 0.4, 0, 0)
	db.AddURelation("R", r, false)

	phi := Project{
		In:      Select{In: Base{Name: "R"}, Pred: expr.Eq(expr.A("V"), expr.CInt(1))},
		Targets: []expr.Target{expr.Keep("K")},
	}
	neg := Project{
		In: Join{
			L: Select{In: Base{Name: "R"}, Pred: expr.Eq(expr.A("V"), expr.CInt(1))},
			R: EGDViolation("R", []string{"K"}, []string{"V"}, nil),
		},
		Targets: []expr.Target{expr.Keep("K")},
	}
	q := ConfMinusGrouped(phi, neg, []string{"K"}, "P")
	ev := NewURelEvaluator(db)
	res, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	// Pr[φ] = 0.5; Pr[φ ∧ ¬ψ] = Pr[a ∧ b] = 0.2; difference 0.3.
	out := urel.Poss(res.Rel)
	if out.Len() != 1 {
		t.Fatalf("rows = %d:\n%s", out.Len(), out)
	}
	if got := out.Value(out.Tuples()[0], "P").AsFloat(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("P = %v, want 0.3", got)
	}
}
