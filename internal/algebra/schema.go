package algebra

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
)

// InferSchema statically computes the output schema of a query against a
// database's relation schemas, reporting the same classes of errors
// evaluation would hit (unknown relations or attributes, schema
// mismatches, name collisions) without running anything. The CLI uses it
// to reject malformed programs early; tests use it to pin the schema
// semantics of every operator.
func InferSchema(q Query, db *urel.Database) (rel.Schema, error) {
	env := make(map[string]rel.Schema, len(db.Rels))
	for name, r := range db.Rels {
		env[name] = r.Schema()
	}
	return inferSchema(q, env)
}

func inferSchema(q Query, env map[string]rel.Schema) (rel.Schema, error) {
	switch n := q.(type) {
	case Base:
		s, ok := env[n.Name]
		if !ok {
			return nil, fmt.Errorf("algebra: unknown relation %q", n.Name)
		}
		return s, nil

	case Select:
		s, err := inferSchema(n.In, env)
		if err != nil {
			return nil, err
		}
		for _, a := range n.Pred.Attrs(nil) {
			if !s.Has(a) {
				return nil, fmt.Errorf("algebra: selection attribute %q not in schema %v", a, s)
			}
		}
		return s, nil

	case Project:
		s, err := inferSchema(n.In, env)
		if err != nil {
			return nil, err
		}
		out := make([]string, 0, len(n.Targets))
		seen := map[string]bool{}
		for _, tg := range n.Targets {
			for _, a := range tg.Expr.Attrs(nil) {
				if !s.Has(a) {
					return nil, fmt.Errorf("algebra: projection attribute %q not in schema %v", a, s)
				}
			}
			if seen[tg.As] {
				return nil, fmt.Errorf("algebra: duplicate projection target %q", tg.As)
			}
			seen[tg.As] = true
			out = append(out, tg.As)
		}
		return rel.NewSchema(out...), nil

	case Product:
		l, r, err := inferPair(n.L, n.R, env)
		if err != nil {
			return nil, err
		}
		for _, a := range r {
			if l.Has(a) {
				return nil, fmt.Errorf("algebra: product schemas share attribute %q; rename first", a)
			}
		}
		return rel.NewSchema(append(l.Clone(), r...)...), nil

	case Join:
		l, r, err := inferPair(n.L, n.R, env)
		if err != nil {
			return nil, err
		}
		out := l.Clone()
		for _, a := range r {
			if !l.Has(a) {
				out = append(out, a)
			}
		}
		return rel.NewSchema(out...), nil

	case Union:
		l, r, err := inferPair(n.L, n.R, env)
		if err != nil {
			return nil, err
		}
		if !l.Equal(r) {
			return nil, fmt.Errorf("algebra: union schema mismatch %v vs %v", l, r)
		}
		return l, nil

	case DiffC:
		l, r, err := inferPair(n.L, n.R, env)
		if err != nil {
			return nil, err
		}
		if !l.Equal(r) {
			return nil, fmt.Errorf("algebra: difference schema mismatch %v vs %v", l, r)
		}
		return l, nil

	case RepairKey:
		s, err := inferSchema(n.In, env)
		if err != nil {
			return nil, err
		}
		for _, a := range n.Key {
			if !s.Has(a) {
				return nil, fmt.Errorf("algebra: repair-key attribute %q not in schema %v", a, s)
			}
		}
		if !s.Has(n.Weight) {
			return nil, fmt.Errorf("algebra: repair-key weight %q not in schema %v", n.Weight, s)
		}
		return s, nil

	case Conf:
		s, err := inferSchema(n.In, env)
		if err != nil {
			return nil, err
		}
		if s.Has(n.PCol()) {
			return nil, fmt.Errorf("algebra: conf column %q already in schema %v", n.PCol(), s)
		}
		return rel.NewSchema(append(s.Clone(), n.PCol())...), nil

	case Poss, Cert:
		return inferSchema(q.Children()[0], env)

	case ApproxSelect:
		s, err := inferSchema(n.In, env)
		if err != nil {
			return nil, err
		}
		var out []string
		seen := map[string]bool{}
		for _, arg := range n.Args {
			for _, a := range arg.Attrs {
				if !s.Has(a) {
					return nil, fmt.Errorf("algebra: σ̂ conf attribute %q not in schema %v", a, s)
				}
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
		}
		for i := range n.Args {
			out = append(out, PColName(i))
		}
		return rel.NewSchema(out...), nil

	case Let:
		def, err := inferSchema(n.Def, env)
		if err != nil {
			return nil, err
		}
		old, had := env[n.Name]
		env[n.Name] = def
		res, err := inferSchema(n.In, env)
		if had {
			env[n.Name] = old
		} else {
			delete(env, n.Name)
		}
		return res, err

	default:
		return nil, fmt.Errorf("algebra: unknown query node %T", q)
	}
}

func inferPair(l, r Query, env map[string]rel.Schema) (rel.Schema, rel.Schema, error) {
	ls, err := inferSchema(l, env)
	if err != nil {
		return nil, nil, err
	}
	rs, err := inferSchema(r, env)
	if err != nil {
		return nil, nil, err
	}
	return ls, rs, nil
}

// Explain renders the plan as an indented tree, annotating each node with
// its inferred schema when a database is supplied (nil db renders the bare
// tree).
func Explain(q Query, db *urel.Database) string {
	var env map[string]rel.Schema
	if db != nil {
		env = make(map[string]rel.Schema, len(db.Rels))
		for name, r := range db.Rels {
			env[name] = r.Schema()
		}
	}
	out := ""
	var rec func(q Query, depth int)
	rec = func(q Query, depth int) {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		label := nodeLabel(q)
		if env != nil {
			if s, err := inferSchema(q, env); err == nil {
				label += "  :: " + schemaString(s)
			}
		}
		out += indent + label + "\n"
		if l, ok := q.(Let); ok {
			out += indent + "  def " + l.Name + ":\n"
			rec(l.Def, depth+2)
			// Bind for the body rendering.
			if env != nil {
				if s, err := inferSchema(l.Def, env); err == nil {
					old, had := env[l.Name]
					env[l.Name] = s
					out += indent + "  in:\n"
					rec(l.In, depth+2)
					if had {
						env[l.Name] = old
					} else {
						delete(env, l.Name)
					}
					return
				}
			}
			out += indent + "  in:\n"
			rec(l.In, depth+2)
			return
		}
		for _, c := range q.Children() {
			rec(c, depth+1)
		}
	}
	rec(q, 0)
	return out
}

func nodeLabel(q Query) string {
	switch n := q.(type) {
	case Base:
		return "base " + n.Name
	case Select:
		return "select [" + n.Pred.String() + "]"
	case Project:
		return "project"
	case Product:
		return "product"
	case Join:
		return "join"
	case Union:
		return "union"
	case DiffC:
		return "diff-c"
	case RepairKey:
		return fmt.Sprintf("repair-key [%v @ %s]", n.Key, n.Weight)
	case Conf:
		return "conf → " + n.PCol()
	case Poss:
		return "poss"
	case Cert:
		return "cert"
	case ApproxSelect:
		return "σ̂ [" + n.Pred.String() + "]"
	case Let:
		return "let " + n.Name
	default:
		return fmt.Sprintf("%T", q)
	}
}

func schemaString(s rel.Schema) string {
	out := "("
	for i, a := range s {
		if i > 0 {
			out += ", "
		}
		out += a
	}
	return out + ")"
}

// attrsOfTargets is a helper for static checks on projection targets.
func attrsOfTargets(targets []expr.Target) []string {
	var out []string
	for _, tg := range targets {
		out = tg.Expr.Attrs(out)
	}
	return out
}
