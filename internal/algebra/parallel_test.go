package algebra

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/sched"
	"repro/internal/urel"
	"repro/internal/vars"
)

// parallelDB builds a database big enough that the partitioned operators
// actually split work: two uncertain relations sharing variables and a
// weighted complete relation for repair-key.
func parallelDB() *urel.Database {
	rng := rand.New(rand.NewSource(4242))
	db := urel.NewDatabase()
	nv := 16
	for i := 0; i < nv; i++ {
		p := 0.2 + 0.6*rng.Float64()
		db.Vars.Add("w"+strconv.Itoa(i), []float64{p, 1 - p}, nil)
	}
	mk := func(schema rel.Schema, n, keys int) *urel.Relation {
		r := urel.NewRelation(schema)
		for i := 0; i < n; i++ {
			d := vars.MustAssignment(vars.Binding{
				Var: vars.Var(rng.Intn(nv)),
				Alt: int32(rng.Intn(2)),
			})
			row := make(rel.Tuple, len(schema))
			row[0] = rel.Int(int64(rng.Intn(keys)))
			for j := 1; j < len(row); j++ {
				row[j] = rel.Int(int64(rng.Intn(6)))
			}
			r.Add(d, row)
		}
		return r
	}
	db.AddURelation("R", mk(rel.NewSchema("K", "A"), 900, 30), false)
	db.AddURelation("S", mk(rel.NewSchema("K", "B"), 700, 30), false)
	k := rel.NewRelation(rel.NewSchema("G", "W"))
	for i := 0; i < 200; i++ {
		k.Add(rel.Tuple{rel.Int(int64(i % 25)), rel.Float(1 + float64(i%5))})
	}
	db.AddComplete("T", k)
	return db
}

// exactFingerprint renders an exact result's full content and order,
// with float columns pinned to their exact bit patterns.
func exactFingerprint(res URelResult) string {
	var b strings.Builder
	for _, t := range res.Rel.Tuples() {
		b.WriteString(t.D.Key())
		b.WriteString("||")
		for i, v := range t.Row {
			if i > 0 {
				b.WriteByte('|')
			}
			if v.Kind() == rel.FloatKind {
				b.WriteString(strconv.FormatUint(math.Float64bits(v.AsFloat()), 16))
			} else {
				b.WriteString(v.Key())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// parallelPlans are exact UA plans covering every partitioned code path:
// hash join, product (via disjoint schemas), union, selection, projection,
// repair-key (sequentialized branches), exact conf, and σ̂ with a
// two-argument predicate.
func parallelPlans() map[string]Query {
	joinRS := Join{L: Base{Name: "R"}, R: Base{Name: "S"}}
	return map[string]Query{
		"conf-join": Conf{In: joinRS, As: "P"},
		"conf-union-select": Conf{
			In: Union{
				L: Select{In: joinRS, Pred: expr.Ge(expr.A("A"), expr.CInt(2))},
				R: Select{In: joinRS, Pred: expr.Le(expr.A("B"), expr.CInt(3))},
			},
			As: "P",
		},
		"conf-project-repairkey": Conf{
			In: Join{
				L: Project{In: joinRS, Targets: []expr.Target{expr.Keep("K"), expr.Keep("A")}},
				R: Project{
					In:      RepairKey{In: Base{Name: "T"}, Key: []string{"G"}, Weight: "W"},
					Targets: []expr.Target{expr.As("K", expr.A("G"))},
				},
			},
			As: "P",
		},
		"shat-two-args": ApproxSelect{
			In:   joinRS,
			Args: []ConfArg{{Attrs: []string{"A"}}, {Attrs: nil}},
			Pred: predapprox.Linear([]float64{1, -0.2}, 0.1),
		},
	}
}

// TestExactWorkersBitIdentical is the exact-algebra mirror of the
// sampler's TestWorkersBitIdentical: partitioned operators, parallel exact
// confidence, and concurrent branch evaluation at workers 1, 4 and 8 must
// produce results byte-identical — including float bit patterns of conf
// and σ̂ columns and tuple order — to the sequential evaluator.
func TestExactWorkersBitIdentical(t *testing.T) {
	db := parallelDB()
	for name, q := range parallelPlans() {
		seqRes, err := NewURelEvaluator(db).Eval(q)
		if err != nil {
			t.Fatalf("%s: sequential eval: %v", name, err)
		}
		want := exactFingerprint(seqRes)
		if seqRes.Rel.Len() == 0 {
			t.Fatalf("%s: degenerate plan (empty result)", name)
		}
		for _, workers := range []int{1, 4, 8} {
			res, err := NewParallelURelEvaluator(db, sched.New(workers)).Eval(q)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if got := exactFingerprint(res); got != want {
				t.Errorf("%s workers=%d: result differs from sequential path", name, workers)
			}
			if len(res.Ops) == 0 {
				t.Errorf("%s workers=%d: no operator stats on top-level result", name, workers)
			}
		}
	}
}

// TestOpsPerEvaluation pins that a reused evaluator reports each
// evaluation's own operator statistics, not a running total.
func TestOpsPerEvaluation(t *testing.T) {
	db := parallelDB()
	ev := NewURelEvaluator(db)
	q := Join{L: Base{Name: "R"}, R: Base{Name: "S"}}
	r1, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ops["join"].Calls != 1 || r2.Ops["join"].Calls != 1 {
		t.Errorf("reused evaluator accumulated stats: first %+v, second %+v",
			r1.Ops["join"], r2.Ops["join"])
	}
	if r1.Ops["join"] != r2.Ops["join"] {
		t.Errorf("identical evaluations report different stats: %+v vs %+v",
			r1.Ops["join"], r2.Ops["join"])
	}
}

// TestBranchSafety pins the concurrency guard: repair-key and let make a
// branch unsafe, pure operator trees are safe.
func TestBranchSafety(t *testing.T) {
	pure := Join{L: Base{Name: "R"}, R: Base{Name: "S"}}
	if !branchSafe(pure) {
		t.Error("pure operator tree reported unsafe")
	}
	if branchSafe(RepairKey{In: Base{Name: "T"}, Weight: "W"}) {
		t.Error("repair-key branch reported safe")
	}
	if branchSafe(Let{Name: "X", Def: Base{Name: "R"}, In: Base{Name: "X"}}) {
		t.Error("let branch reported safe")
	}
	if branchSafe(Select{In: RepairKey{In: Base{Name: "T"}, Weight: "W"}, Pred: expr.Ge(expr.A("G"), expr.CInt(0))}) {
		t.Error("nested repair-key branch reported safe")
	}
}
