package algebra

import (
	"math"
	"testing"

	"repro/internal/expr"
	"repro/internal/predapprox"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/worlds"
)

// coinDB builds the complete database of Example 2.2.
func coinDB() *urel.Database {
	db := urel.NewDatabase()
	db.AddComplete("Coins", rel.FromRows(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(2)},
		rel.Tuple{rel.String("2headed"), rel.Int(1)},
	))
	db.AddComplete("Faces", rel.FromRows(rel.NewSchema("CoinType", "Face", "FProb"),
		rel.Tuple{rel.String("fair"), rel.String("H"), rel.Float(0.5)},
		rel.Tuple{rel.String("fair"), rel.String("T"), rel.Float(0.5)},
		rel.Tuple{rel.String("2headed"), rel.String("H"), rel.Float(1)},
	))
	db.AddComplete("Tosses", rel.FromRows(rel.NewSchema("Toss"),
		rel.Tuple{rel.Int(1)},
		rel.Tuple{rel.Int(2)},
	))
	return db
}

// coinQueries returns the queries R, S, T, U of Example 2.2, with R, S, T
// bound once via Let exactly as the paper's R := …, S := …, T := … style.
func coinQueries() (r, s, t, u Query) {
	// R := π_CoinType(repair-key_∅@Count(Coins))
	rDef := Project{
		In:      RepairKey{In: Base{Name: "Coins"}, Weight: "Count"},
		Targets: []expr.Target{expr.Keep("CoinType")},
	}
	// S := π_{CoinType,Toss,Face}(repair-key_{CoinType,Toss}@FProb(Faces × Tosses))
	sDef := Project{
		In: RepairKey{
			In:     Product{L: Base{Name: "Faces"}, R: Base{Name: "Tosses"}},
			Key:    []string{"CoinType", "Toss"},
			Weight: "FProb",
		},
		Targets: []expr.Target{expr.Keep("CoinType"), expr.Keep("Toss"), expr.Keep("Face")},
	}
	// T := R ⋈ π_CoinType(σ_{Toss=1∧Face=H}(S)) ⋈ π_CoinType(σ_{Toss=2∧Face=H}(S))
	headsAt := func(toss int64) Query {
		return Project{
			In: Select{
				In: Base{Name: "S"},
				Pred: expr.AndOf(
					expr.Eq(expr.A("Toss"), expr.CInt(toss)),
					expr.Eq(expr.A("Face"), expr.CStr("H")),
				),
			},
			Targets: []expr.Target{expr.Keep("CoinType")},
		}
	}
	tDef := Join{L: Join{L: Base{Name: "R"}, R: headsAt(1)}, R: headsAt(2)}
	// U := π_{CoinType, P1/P2→P}(ρ_{P→P1}(conf(T)) × ρ_{P→P2}(conf(π_∅(T))))
	uDef := Project{
		In: Product{
			L: Conf{In: Base{Name: "T"}, As: "P1"},
			R: Conf{In: Project{In: Base{Name: "T"}, Targets: nil}, As: "P2"},
		},
		Targets: []expr.Target{
			expr.Keep("CoinType"),
			expr.As("P", expr.Div(expr.A("P1"), expr.A("P2"))),
		},
	}
	withBindings := func(body Query) Query {
		return Let{Name: "R", Def: rDef, In: Let{Name: "S", Def: sDef, In: Let{Name: "T", Def: tDef, In: body}}}
	}
	r = rDef
	s = Let{Name: "R", Def: rDef, In: sDef}
	t = withBindings(Base{Name: "T"})
	u = withBindings(uDef)
	return r, s, t, u
}

// TestExample22Golden reproduces the full coin-tossing example: the prior
// 2/3 and the posterior table U with P(fair|HH) = 1/3, P(2headed|HH) = 2/3.
func TestExample22Golden(t *testing.T) {
	db := coinDB()
	qR, _, qT, qU := coinQueries()

	ev := NewURelEvaluator(db)
	// Prior: conf(R).
	prior, err := ev.Eval(Conf{In: qR})
	if err != nil {
		t.Fatal(err)
	}
	checkP := func(r *urel.Relation, keyAttr, key string, pcol string, want float64) {
		t.Helper()
		for _, ut := range r.Tuples() {
			if r.Schema().Index(keyAttr) >= 0 && ut.Row[r.Schema().Index(keyAttr)].AsString() == key {
				got := ut.Row[r.Schema().Index(pcol)].AsFloat()
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("%s=%s: P=%v, want %v", keyAttr, key, got, want)
				}
				return
			}
		}
		t.Errorf("missing tuple %s=%s", keyAttr, key)
	}
	checkP(prior.Rel, "CoinType", "fair", "P", 2.0/3)
	checkP(prior.Rel, "CoinType", "2headed", "P", 1.0/3)

	// conf(T): joint probabilities 1/6 and 1/3 (Figure 1(b)).
	confT, err := ev.Eval(Conf{In: qT})
	if err != nil {
		t.Fatal(err)
	}
	checkP(confT.Rel, "CoinType", "fair", "P", 1.0/6)
	checkP(confT.Rel, "CoinType", "2headed", "P", 1.0/3)

	// U: the posterior.
	u, err := ev.Eval(qU)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Complete {
		t.Error("U should be complete")
	}
	checkP(u.Rel, "CoinType", "fair", "P", 1.0/3)
	checkP(u.Rel, "CoinType", "2headed", "P", 2.0/3)
}

// The same example must produce identical results under the
// possible-worlds reference semantics, including the eight-world count.
func TestExample22WorldsAgree(t *testing.T) {
	db := coinDB()
	_, qS, qT, qU := coinQueries()

	wev, err := NewWorldsEvaluatorFromURel(db, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	// After S the database has 2 (coin) × 2 × 2 (tosses) = 8 relevant
	// worlds.
	wdb, name, err := wev.Eval(qS)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(wdb.Normalize().Worlds); n != 8 {
		t.Errorf("worlds after S = %d, want 8", n)
	}
	_ = name

	wev2, err := NewWorldsEvaluatorFromURel(db, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	confT, err := wev2.EvalConf(qT, "P")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range confT.Tuples() {
		ct := confT.Value(tp, "CoinType").AsString()
		p := confT.Value(tp, "P").AsFloat()
		want := 1.0 / 6
		if ct == "2headed" {
			want = 1.0 / 3
		}
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("worlds conf(T)[%s] = %v, want %v", ct, p, want)
		}
	}

	// The final posterior through the worlds engine.
	wev3, err := NewWorldsEvaluatorFromURel(db, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	udb, uname, err := wev3.Eval(qU)
	if err != nil {
		t.Fatal(err)
	}
	uRel := udb.Worlds[0].Rels[uname]
	for _, tp := range uRel.Tuples() {
		ct := uRel.Value(tp, "CoinType").AsString()
		p := uRel.Value(tp, "P").AsFloat()
		want := 1.0 / 3
		if ct == "2headed" {
			want = 2.0 / 3
		}
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("worlds U[%s] = %v, want %v", ct, p, want)
		}
	}
}

func TestPossAndCert(t *testing.T) {
	db := coinDB()
	qR, _, _, _ := coinQueries()
	ev := NewURelEvaluator(db)
	poss, err := ev.Eval(Poss{In: qR})
	if err != nil {
		t.Fatal(err)
	}
	if poss.Rel.Len() != 2 || !poss.Complete {
		t.Errorf("poss(R): len=%d complete=%v", poss.Rel.Len(), poss.Complete)
	}
	cert, err := ev.Eval(Cert{In: qR})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Rel.Len() != 0 {
		t.Errorf("cert(R) should be empty, got %d", cert.Rel.Len())
	}
	// Certain tuples of a complete base relation: everything.
	certBase, err := ev.Eval(Cert{In: Base{Name: "Coins"}})
	if err != nil {
		t.Fatal(err)
	}
	if certBase.Rel.Len() != 2 {
		t.Errorf("cert(Coins) = %d tuples, want 2", certBase.Rel.Len())
	}
}

func TestUnionDiffEval(t *testing.T) {
	db := urel.NewDatabase()
	db.AddComplete("A", rel.FromRows(rel.NewSchema("X"), rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)}))
	db.AddComplete("B", rel.FromRows(rel.NewSchema("X"), rel.Tuple{rel.Int(2)}))
	ev := NewURelEvaluator(db)
	u, err := ev.Eval(Union{L: Base{Name: "A"}, R: Base{Name: "B"}})
	if err != nil || u.Rel.Len() != 2 {
		t.Errorf("union: %v, len=%d", err, u.Rel.Len())
	}
	d, err := ev.Eval(DiffC{L: Base{Name: "A"}, R: Base{Name: "B"}})
	if err != nil || d.Rel.Len() != 1 {
		t.Errorf("diff: %v", err)
	}
	// −c on an uncertain input must fail.
	rk := RepairKey{In: Base{Name: "A"}, Weight: "X"}
	if _, err := ev.Eval(DiffC{L: rk, R: Base{Name: "B"}}); err == nil {
		t.Error("−c over uncertain relation must fail")
	}
}

func TestValidateRules(t *testing.T) {
	phi := predapprox.Linear([]float64{1}, 0.5)
	asel := ApproxSelect{In: Base{Name: "A"}, Args: []ConfArg{{Attrs: []string{"X"}}}, Pred: phi}
	bad := RepairKey{In: asel, Weight: "P1"}
	if err := Validate(bad); err == nil {
		t.Error("repair-key above σ̂ must be rejected")
	}
	noArgs := ApproxSelect{In: Base{Name: "A"}, Pred: phi}
	if err := Validate(noArgs); err == nil {
		t.Error("σ̂ without conf args must be rejected")
	}
	arity := ApproxSelect{In: Base{Name: "A"}, Args: []ConfArg{{Attrs: []string{"X"}}},
		Pred: predapprox.Linear([]float64{1, -1}, 0)}
	if err := Validate(arity); err == nil {
		t.Error("σ̂ arity mismatch must be rejected")
	}
}

func TestUnknownRelation(t *testing.T) {
	ev := NewURelEvaluator(urel.NewDatabase())
	if _, err := ev.Eval(Base{Name: "nope"}); err == nil {
		t.Error("unknown relation must error")
	}
	wev := NewWorldsEvaluator(mustExpand(t, coinDB()))
	if _, _, err := wev.Eval(Base{Name: "nope"}); err == nil {
		t.Error("unknown relation must error (worlds)")
	}
}

func mustExpand(t *testing.T, db *urel.Database) *worlds.Database {
	t.Helper()
	w, err := NewWorldsEvaluatorFromURel(db, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return w.db
}
