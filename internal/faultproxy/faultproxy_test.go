package faultproxy

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// frameBackend accepts connections and immediately writes `frames`
// length-prefixed frames of the given body, then holds the connection
// open — enough protocol shape for the frame-aware fault paths.
func frameBackend(t *testing.T, frames int, body []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
				for i := 0; i < frames; i++ {
					if _, err := c.Write(append(hdr[:], body...)); err != nil {
						return
					}
				}
				// Hold open until the peer goes away.
				io.Copy(io.Discard, c)
				c.Close()
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, backend string, script Script) *Proxy {
	t.Helper()
	p := New(backend, script, 42)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func readAll(t *testing.T, addr string, timeout time.Duration) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		// A reset can race the connect itself on loopback; to the
		// client that is the same refusal.
		return nil
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(timeout))
	data, _ := io.ReadAll(conn)
	return data
}

func TestPassRelaysFrames(t *testing.T) {
	backend := frameBackend(t, 2, []byte("hello"))
	p := startProxy(t, backend, Script{})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 18) // two 9-byte frames
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("reading through pass proxy: %v", err)
	}
	if string(buf[4:9]) != "hello" {
		t.Errorf("frame body corrupted: %q", buf)
	}
	if st := p.Stats(); st.Conns != 1 || st.BytesDown == 0 {
		t.Errorf("stats = %+v, want 1 conn with downstream bytes", st)
	}
}

func TestRefuseClosesImmediately(t *testing.T) {
	backend := frameBackend(t, 1, []byte("hello"))
	p := startProxy(t, backend, Script{Default: Policy{Action: Refuse}})
	if data := readAll(t, p.Addr(), time.Second); len(data) != 0 {
		t.Errorf("refused connection delivered %d bytes", len(data))
	}
	if st := p.Stats(); st.Refused != 1 {
		t.Errorf("stats = %+v, want 1 refused", st)
	}
}

// SHALL: truncate forwards exactly CutFrames complete frames, then cuts
// the next one mid-frame — deterministically, per the script.
func TestTruncateCutsAfterScriptedFrames(t *testing.T) {
	backend := frameBackend(t, 3, []byte("abcdef"))
	// The latency spaces the frames out so the client has consumed frame
	// 1 before the reset lands (an RST discards unread buffered bytes).
	p := startProxy(t, backend, Script{
		Default: Policy{Action: Truncate, CutFrames: 1, CutBytes: 3, Latency: 50 * time.Millisecond},
	})
	data := readAll(t, p.Addr(), 2*time.Second)
	// One complete 10-byte frame, plus up to 3 leaked bytes of the next
	// (the reset may destroy the leak in flight, never the read frame).
	if len(data) < 10 || len(data) > 13 {
		t.Fatalf("received %d bytes, want 10–13 (one frame + cut leak)", len(data))
	}
	if st := p.Stats(); st.Cut != 1 {
		t.Errorf("stats = %+v, want 1 cut", st)
	}
}

func TestBlackholeNeverAnswers(t *testing.T) {
	backend := frameBackend(t, 1, []byte("hello"))
	p := startProxy(t, backend, Script{Default: Policy{Action: Blackhole}})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("ping"))
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("blackholed connection answered")
	}
	if st := p.Stats(); st.Blackholed != 1 {
		t.Errorf("stats = %+v, want 1 blackholed", st)
	}
}

// SHALL: SetDown(true) refuses new connections and resets live ones;
// SetDown(false) restores service — the reversible process-kill.
func TestSetDownAndRecovery(t *testing.T) {
	backend := frameBackend(t, 1, []byte("hello"))
	p := startProxy(t, backend, Script{})
	// Live connection, then kill.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame := make([]byte, 9)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(conn, frame); err != nil {
		t.Fatalf("pre-down read: %v", err)
	}
	p.SetDown(true)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if extra, _ := io.ReadAll(conn); len(extra) != 0 {
		t.Errorf("reset connection delivered %d more bytes", len(extra))
	}
	if data := readAll(t, p.Addr(), time.Second); len(data) != 0 {
		t.Errorf("down proxy delivered %d bytes", len(data))
	}
	p.SetDown(false)
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(conn2, frame); err != nil {
		t.Fatalf("post-recovery read: %v", err)
	}
	if st := p.Stats(); st.DownRefused == 0 {
		t.Errorf("stats = %+v, want down-refused connections", st)
	}
}

func TestParsePolicy(t *testing.T) {
	pol, err := ParsePolicy("truncate,frames=2,bytes=7")
	if err != nil {
		t.Fatal(err)
	}
	if pol.Action != Truncate || pol.CutFrames != 2 || pol.CutBytes != 7 {
		t.Errorf("parsed %+v", pol)
	}
	pol, err = ParsePolicy("delay,latency=300ms")
	if err != nil {
		t.Fatal(err)
	}
	if pol.Action != Pass || pol.Latency != 300*time.Millisecond {
		t.Errorf("parsed %+v", pol)
	}
	for _, bad := range []string{"", "explode", "pass,latency=soon", "truncate,frames=x", "pass,unknown=1"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}
