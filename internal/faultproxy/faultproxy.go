// Package faultproxy is a deterministic fault-injecting TCP proxy for
// chaos testing the cluster layer. It fronts one backend and applies a
// scripted policy per accepted connection (connections are numbered from
// 1 in accept order): pass traffic through, refuse outright, blackhole
// (swallow bytes, never answer), delay responses, or truncate a response
// mid-frame and reset — the classic "shard died mid-query" failure.
//
// The proxy understands the cluster wire format just enough to be
// frame-aware on the backend→client path: every message is a 4-byte
// big-endian length prefix followed by that many bytes. Frame awareness
// is what makes "kill after the handshake, during the first sample
// response" a deterministic, scriptable event instead of a race.
//
// All injected randomness (latency jitter, cut positions) derives from a
// per-connection PRNG seeded by (proxy seed, connection number), so a
// scenario replays identically under one seed regardless of goroutine
// interleaving.
package faultproxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Action selects what a policy does to its connection.
type Action int

const (
	// Pass relays traffic unmodified (still subject to Latency).
	Pass Action = iota
	// Refuse closes the client connection immediately on accept.
	Refuse
	// Blackhole accepts and swallows client bytes but never answers —
	// the client's deadline, not the proxy, ends the connection.
	Blackhole
	// Truncate relays CutFrames complete backend frames, then leaks
	// CutBytes bytes of the next frame and resets the connection.
	Truncate
)

// actionNames renders actions for flag parsing and stats.
var actionNames = map[string]Action{
	"pass": Pass, "refuse": Refuse, "blackhole": Blackhole, "truncate": Truncate,
}

// Policy is the scripted behaviour of one connection.
type Policy struct {
	Action Action
	// Latency is injected before each backend→client frame (with ±20%
	// seeded jitter), modelling a slow shard. Zero = no delay.
	Latency time.Duration
	// CutFrames is how many complete backend frames to relay before a
	// Truncate cuts. 1 = let the handshake ack through, kill the first
	// sample response mid-frame.
	CutFrames int
	// CutBytes is how many bytes of the doomed frame to leak before the
	// reset; negative picks a seeded random position inside the frame.
	CutBytes int
}

// Script maps connection numbers (1-based, accept order) to policies;
// unlisted connections get Default.
type Script struct {
	Conns   map[int]Policy
	Default Policy
}

// Stats counts what the proxy did.
type Stats struct {
	Conns       int64 // connections accepted
	Refused     int64 // refused by policy or down state
	Blackholed  int64
	Cut         int64 // truncated mid-frame
	BytesUp     int64 // client → backend
	BytesDown   int64 // backend → client
	DownRefused int64 // refused because SetDown(true)
}

// Proxy is one fault-injecting listener in front of one backend.
type Proxy struct {
	backend string
	script  Script
	seed    int64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	down   bool
	closed bool

	connSeq     atomic.Int64
	refused     atomic.Int64
	blackholed  atomic.Int64
	cut         atomic.Int64
	bytesUp     atomic.Int64
	bytesDown   atomic.Int64
	downRefused atomic.Int64

	wg sync.WaitGroup
}

// New builds a proxy for the backend; call Start to begin listening.
func New(backend string, script Script, seed int64) *Proxy {
	return &Proxy{backend: backend, script: script, seed: seed, conns: map[net.Conn]bool{}}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the
// background until Close.
func (p *Proxy) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return errors.New("faultproxy: proxy is closed")
	}
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// SetDown toggles hard-down: while down, new connections are refused and
// every live connection is reset — the whole process-kill failure mode,
// reversible for re-admission scenarios.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	if down {
		for c := range p.conns {
			reset(c)
		}
	}
	p.mu.Unlock()
}

// Down reports the current down state.
func (p *Proxy) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// Close stops the listener and kills every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.wg.Wait()
	return nil
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:       p.connSeq.Load(),
		Refused:     p.refused.Load(),
		Blackholed:  p.blackholed.Load(),
		Cut:         p.cut.Load(),
		BytesUp:     p.bytesUp.Load(),
		BytesDown:   p.bytesDown.Load(),
		DownRefused: p.downRefused.Load(),
	}
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n := int(p.connSeq.Add(1))
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		if p.down {
			p.downRefused.Add(1)
			p.refused.Add(1)
			p.mu.Unlock()
			reset(conn)
			continue
		}
		pol, ok := p.script.Conns[n]
		if !ok {
			pol = p.script.Default
		}
		if pol.Action == Refuse {
			p.refused.Add(1)
			p.mu.Unlock()
			reset(conn)
			continue
		}
		p.conns[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn, n, pol)
		}()
	}
}

// track-removal + close for a finished connection.
func (p *Proxy) drop(conn net.Conn) {
	conn.Close()
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

func (p *Proxy) serve(conn net.Conn, n int, pol Policy) {
	defer p.drop(conn)
	rng := rand.New(rand.NewSource(p.seed ^ int64(uint64(n)*0x9e3779b97f4a7c15)))
	if pol.Action == Blackhole {
		p.blackholed.Add(1)
		nr, _ := io.Copy(io.Discard, conn)
		p.bytesUp.Add(nr)
		return
	}
	up, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	defer up.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		nr, _ := io.Copy(up, conn)
		p.bytesUp.Add(nr)
		// Client went away or was cut: stop the backend read too.
		up.Close()
	}()
	p.relayDown(conn, up, pol, rng)
	conn.Close()
	up.Close()
	wg.Wait()
}

// errCut marks a deliberate mid-frame cut.
var errCut = errors.New("faultproxy: cut")

// relayDown forwards backend frames to the client, applying latency and
// the truncate policy. Frame = 4-byte big-endian length + that many
// bytes, matching the cluster protocol.
func (p *Proxy) relayDown(dst, src net.Conn, pol Policy, rng *rand.Rand) {
	frames := 0
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > 1<<28 {
			return // corrupt upstream; give up
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(src, body); err != nil {
			return
		}
		if pol.Latency > 0 {
			// ±20% seeded jitter keeps replays deterministic per seed.
			jitter := time.Duration(rng.Int63n(int64(pol.Latency)*2/5+1)) - pol.Latency/5
			time.Sleep(pol.Latency + jitter)
		}
		full := append(hdr[:], body...)
		if pol.Action == Truncate && frames >= pol.CutFrames {
			cut := pol.CutBytes
			if cut < 0 || cut >= len(full) {
				cut = rng.Intn(len(full))
			}
			nw, _ := dst.Write(full[:cut])
			p.bytesDown.Add(int64(nw))
			p.cut.Add(1)
			reset(dst)
			return
		}
		nw, err := dst.Write(full)
		p.bytesDown.Add(int64(nw))
		if err != nil {
			return
		}
		frames++
	}
}

// reset closes a TCP connection with an RST instead of a FIN, the way a
// killed process's kernel does.
func reset(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	conn.Close()
}

// ParsePolicy parses a policy spec for the CLI:
//
//	ACTION[,latency=DUR][,frames=N][,bytes=N]
//
// e.g. "truncate,frames=1,bytes=3" or "delay,latency=300ms" (delay is an
// alias for pass with latency).
func ParsePolicy(s string) (Policy, error) {
	var pol Policy
	pol.CutBytes = -1
	fields := splitComma(s)
	if len(fields) == 0 {
		return pol, errors.New("faultproxy: empty policy")
	}
	name := fields[0]
	if name == "delay" {
		name = "pass"
	}
	act, ok := actionNames[name]
	if !ok {
		return pol, fmt.Errorf("faultproxy: unknown action %q", fields[0])
	}
	pol.Action = act
	for _, f := range fields[1:] {
		k, v, ok := cutEq(f)
		if !ok {
			return pol, fmt.Errorf("faultproxy: malformed policy field %q", f)
		}
		switch k {
		case "latency":
			d, err := time.ParseDuration(v)
			if err != nil {
				return pol, fmt.Errorf("faultproxy: latency: %w", err)
			}
			pol.Latency = d
		case "frames":
			n, err := parseInt(v)
			if err != nil {
				return pol, fmt.Errorf("faultproxy: frames: %w", err)
			}
			pol.CutFrames = n
		case "bytes":
			n, err := parseInt(v)
			if err != nil {
				return pol, fmt.Errorf("faultproxy: bytes: %w", err)
			}
			pol.CutBytes = n
		default:
			return pol, fmt.Errorf("faultproxy: unknown policy field %q", k)
		}
	}
	return pol, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func cutEq(s string) (k, v string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

func parseInt(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, errors.New("empty number")
	}
	neg := false
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("bad number %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}
