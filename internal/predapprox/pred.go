// Package predapprox implements Section 5 of the paper: deciding
// predicates over approximable values with bounded error probability.
//
// A predicate φ(x₁,…,x_k) is a Boolean combination of atomic conditions
// over k approximable slots. Two atom families are supported, matching the
// paper's two main results:
//
//   - linear inequalities Σ aᵢ·xᵢ ≥ b, whose maximal homogeneous orthotope
//     radius ε has a closed form (Theorem 5.2);
//   - general algebraic inequalities f(x₁,…,x_k) ≥ 0 built from +,−,·,/
//     with every slot occurring at most once, for which corner-point
//     agreement implies orthotope homogeneity (Theorem 5.5) and ε is
//     maximized by binary search.
//
// The central quantity is the margin ε of a point p̂: the largest ε such
// that all points of the orthotope
//
//	[p̂₁/(1+ε), p̂₁/(1−ε)] × … × [p̂_k/(1+ε), p̂_k/(1−ε)]
//
// agree with p̂ on φ. Lemma 5.1 then bounds the probability of deciding φ
// incorrectly by Σᵢ δᵢ(ε) (or 1−Π(1−δᵢ(ε)) under independence).
//
// A note on Theorem 5.2's closed form: the paper prescribes the larger
// root of the quadratic b·ε² − β·ε + (α−b) = 0. The worst corner value
// W(ε) = Σ aᵢp̂ᵢ/(1+sgn(aᵢp̂ᵢ)ε) is strictly decreasing on [0,1), so the
// genuine touching point is the unique root of W(ε) = b in [0,1): for
// b < 0 that is indeed the larger root, but for b > 0 it is the smaller
// one (the larger root is an artifact of multiplying by (1−ε), which
// vanishes at ε = 1). We select the root lying in [0,1) and validate the
// choice against brute-force orthotope scans (experiment E6).
package predapprox

import (
	"fmt"
	"math"
	"strings"
)

// EpsMax is the supremum of admissible ε values: Lemma 5.1 requires
// −1 < ε < 1, and Remark 5.3 instructs choosing a value close to but
// smaller than 1 when the formulas yield ε ≥ 1.
const EpsMax = 1 - 1e-9

// Pred is a predicate over k approximable slots.
type Pred interface {
	// Eval decides the predicate at point x.
	Eval(x []float64) bool
	// Margin returns the largest ε ∈ [0, EpsMax] such that the closed
	// orthotope [xᵢ/(1+ε), xᵢ/(1−ε)] is homogeneous with respect to the
	// predicate's value at x. A zero margin means x is (numerically) on a
	// decision boundary.
	Margin(x []float64) float64
	// Arity returns the number of slots the predicate is defined over.
	Arity() int
	String() string
}

// LinAtom is the linear inequality Σ Coef[i]·x_i ≥ B (or > B when Strict).
type LinAtom struct {
	Coef   []float64
	B      float64
	Strict bool
}

// Linear builds Σ coef·x ≥ b.
func Linear(coef []float64, b float64) LinAtom { return LinAtom{Coef: coef, B: b} }

// Eval decides the inequality.
func (a LinAtom) Eval(x []float64) bool {
	s := 0.0
	for i, c := range a.Coef {
		s += c * x[i]
	}
	if a.Strict {
		return s > a.B
	}
	return s >= a.B
}

// Arity returns the number of slots.
func (a LinAtom) Arity() int { return len(a.Coef) }

func (a LinAtom) String() string {
	parts := make([]string, 0, len(a.Coef))
	for i, c := range a.Coef {
		if c == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%g*x%d", c, i))
	}
	if len(parts) == 0 {
		parts = append(parts, "0")
	}
	op := ">="
	if a.Strict {
		op = ">"
	}
	return fmt.Sprintf("%s %s %g", strings.Join(parts, " + "), op, a.B)
}

// negated returns the complementary atom: ¬(Σa·x ≥ b) = Σ(−a)·x > −b.
func (a LinAtom) negated() LinAtom {
	neg := make([]float64, len(a.Coef))
	for i, c := range a.Coef {
		neg[i] = -c
	}
	return LinAtom{Coef: neg, B: -a.B, Strict: !a.Strict}
}

// Margin implements the closed form of Theorem 5.2 (with the root
// selection discussed in the package comment). For a point where the atom
// is false, the margin of the complementary atom is computed instead, as
// the algorithm of Figure 3 does via its φ/¬φ switch.
func (a LinAtom) Margin(x []float64) float64 {
	atom := a
	if !a.Eval(x) {
		atom = a.negated()
	}
	return atom.satisfiedMargin(x)
}

// satisfiedMargin computes the Theorem 5.2 ε for a point satisfying the
// atom (in the ≥ reading; strictness does not change the geometry).
func (a LinAtom) satisfiedMargin(x []float64) float64 {
	// A = Σ positive aᵢxᵢ terms, C = Σ negative terms; α = A+C, β = A−C.
	A, C := 0.0, 0.0
	for i, c := range a.Coef {
		t := c * x[i]
		if t > 0 {
			A += t
		} else {
			C += t
		}
	}
	alpha, beta := A+C, A-C
	b := a.B
	if alpha < b {
		// Boundary case with Strict: x satisfies > B only when alpha > b,
		// so alpha < b cannot happen for a satisfied atom; alpha == b is
		// handled below. Defensive zero.
		return 0
	}
	if alpha == b {
		return 0 // on the hyperplane (Remark 5.3)
	}
	if beta == 0 {
		// Σ aᵢxᵢ is identically zero over the orthotope: constant truth.
		return EpsMax
	}
	if b == 0 {
		return clampEps(alpha / beta)
	}
	disc := beta*beta - 4*b*(alpha-b)
	if disc < 0 {
		// Cannot happen (paper: β² − 4b(α−b) = β² − α² + (α−2b)² ≥ 0);
		// defensive.
		return EpsMax
	}
	sq := math.Sqrt(disc)
	// Roots of b·ε² − β·ε + (α−b) = 0. The worst-corner value W(ε) is
	// strictly decreasing on [0,1) with W(0) = α ≥ b, so the genuine
	// touching point is the smallest root inside (0,1); roots outside
	// mean the orthotope never reaches the hyperplane (margin EpsMax).
	r1 := (beta - sq) / (2 * b)
	r2 := (beta + sq) / (2 * b)
	eps := math.Inf(1)
	for _, r := range []float64{r1, r2} {
		if r > 0 && r < 1 && r < eps {
			eps = r
		}
	}
	if math.IsInf(eps, 1) {
		return EpsMax
	}
	return clampEps(eps)
}

func clampEps(e float64) float64 {
	if e < 0 {
		return 0
	}
	if e > EpsMax {
		return EpsMax
	}
	return e
}

// And is a conjunction.
type And struct{ Kids []Pred }

// Or is a disjunction.
type Or struct{ Kids []Pred }

// Not is a negation.
type Not struct{ Kid Pred }

// Eval decides the conjunction.
func (a And) Eval(x []float64) bool {
	for _, k := range a.Kids {
		if !k.Eval(x) {
			return false
		}
	}
	return true
}

// Eval decides the disjunction.
func (o Or) Eval(x []float64) bool {
	for _, k := range o.Kids {
		if k.Eval(x) {
			return true
		}
	}
	return false
}

// Eval decides the negation.
func (n Not) Eval(x []float64) bool { return !n.Kid.Eval(x) }

// Arity returns the max arity of the children.
func (a And) Arity() int { return maxArity(a.Kids) }

// Arity returns the max arity of the children.
func (o Or) Arity() int { return maxArity(o.Kids) }

// Arity returns the child's arity.
func (n Not) Arity() int { return n.Kid.Arity() }

func maxArity(kids []Pred) int {
	m := 0
	for _, k := range kids {
		if a := k.Arity(); a > m {
			m = a
		}
	}
	return m
}

func (a And) String() string { return joinKids(a.Kids, " ∧ ") }
func (o Or) String() string  { return joinKids(o.Kids, " ∨ ") }
func (n Not) String() string { return "¬(" + n.Kid.String() + ")" }

func joinKids(kids []Pred, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Margin of a conjunction: if all children are true, the orthotope must
// keep every child true (min over children, the paper's ε_{φ∧ψ} rule); if
// some child is false, keeping any single false child false keeps the
// conjunction false (max over false children).
func (a And) Margin(x []float64) float64 {
	allTrue := true
	for _, k := range a.Kids {
		if !k.Eval(x) {
			allTrue = false
			break
		}
	}
	if allTrue {
		m := EpsMax
		for _, k := range a.Kids {
			if km := k.Margin(x); km < m {
				m = km
			}
		}
		return m
	}
	m := 0.0
	for _, k := range a.Kids {
		if !k.Eval(x) {
			if km := k.Margin(x); km > m {
				m = km
			}
		}
	}
	return m
}

// Margin of a disjunction: dual to And (the paper's ε_{φ∨ψ} = max rule
// applies when some disjunct is true; when all are false every disjunct
// must stay false, hence min).
func (o Or) Margin(x []float64) float64 {
	anyTrue := false
	for _, k := range o.Kids {
		if k.Eval(x) {
			anyTrue = true
			break
		}
	}
	if anyTrue {
		m := 0.0
		for _, k := range o.Kids {
			if k.Eval(x) {
				if km := k.Margin(x); km > m {
					m = km
				}
			}
		}
		return m
	}
	m := EpsMax
	for _, k := range o.Kids {
		if km := k.Margin(x); km < m {
			m = km
		}
	}
	return m
}

// Margin of a negation equals the child's margin: the homogeneous
// orthotope is the same set.
func (n Not) Margin(x []float64) float64 { return n.Kid.Margin(x) }

// AndOf builds a conjunction.
func AndOf(kids ...Pred) Pred { return And{Kids: kids} }

// OrOf builds a disjunction.
func OrOf(kids ...Pred) Pred { return Or{Kids: kids} }

// NotOf builds a negation.
func NotOf(kid Pred) Pred { return Not{Kid: kid} }

// BruteForceMargin estimates the true homogeneity radius by scanning a
// dense grid of orthotope boundary points for disagreement with the
// center; it is the test oracle for Margin implementations (experiments
// E6/E7). It returns a value within `step` of the true margin for
// predicates whose decision boundary is not pathologically thin.
func BruteForceMargin(p Pred, x []float64, step float64, grid int) float64 {
	want := p.Eval(x)
	lo, hi := 0.0, 0.0
	for e := step; e < EpsMax; e += step {
		if orthotopeHomogeneous(p, x, e, grid, want) {
			hi = e
		} else {
			break
		}
		lo = hi
	}
	return lo
}

// OrthotopeHomogeneous samples a grid over the orthotope of radius eps
// around x and reports whether every sampled point agrees with the
// predicate's value at x. It is the validation oracle used by experiments
// E6/E7 to check that computed margins certify genuinely homogeneous
// orthotopes.
func OrthotopeHomogeneous(p Pred, x []float64, eps float64, grid int) bool {
	return orthotopeHomogeneous(p, x, eps, grid, p.Eval(x))
}

// orthotopeHomogeneous samples a grid over the orthotope of radius eps and
// reports whether all sampled points agree with want.
func orthotopeHomogeneous(p Pred, x []float64, eps float64, grid int, want bool) bool {
	k := len(x)
	pt := make([]float64, k)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			return p.Eval(pt) == want
		}
		lo := x[i] / (1 + eps)
		hi := x[i] / (1 - eps)
		if lo > hi {
			lo, hi = hi, lo
		}
		for g := 0; g <= grid; g++ {
			pt[i] = lo + (hi-lo)*float64(g)/float64(grid)
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}
