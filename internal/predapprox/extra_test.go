package predapprox

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStrictAtomSemantics(t *testing.T) {
	ge := LinAtom{Coef: []float64{1}, B: 0.5}
	gt := LinAtom{Coef: []float64{1}, B: 0.5, Strict: true}
	if !ge.Eval([]float64{0.5}) {
		t.Error("x ≥ 0.5 at 0.5 should hold")
	}
	if gt.Eval([]float64{0.5}) {
		t.Error("x > 0.5 at 0.5 should not hold")
	}
	// Negation flips strictness: ¬(x ≥ b) = −x > −b.
	neg := ge.negated()
	if !neg.Strict {
		t.Error("negating ≥ must give >")
	}
	if neg.Eval([]float64{0.5}) {
		t.Error("¬(0.5 ≥ 0.5) must be false")
	}
	if !neg.Eval([]float64{0.4}) {
		t.Error("¬(0.4 ≥ 0.5) must be true")
	}
	// Double negation restores semantics everywhere.
	dd := neg.negated()
	for _, x := range []float64{0.2, 0.5, 0.9} {
		if dd.Eval([]float64{x}) != ge.Eval([]float64{x}) {
			t.Errorf("double negation differs at %v", x)
		}
	}
}

// Margins of strict and non-strict atoms coincide (the boundary has
// measure zero; singularity detection covers it).
func TestStrictMarginSameGeometry(t *testing.T) {
	ge := LinAtom{Coef: []float64{1, -2}, B: 0.1}
	gt := LinAtom{Coef: []float64{1, -2}, B: 0.1, Strict: true}
	for _, p := range [][]float64{{0.9, 0.2}, {0.3, 0.4}, {0.5, 0.1}} {
		if math.Abs(ge.Margin(p)-gt.Margin(p)) > 1e-12 {
			t.Errorf("strict margin differs at %v", p)
		}
	}
}

// Property: the linear margin is scale-invariant in the coefficients
// (multiplying (a, b) by λ > 0 leaves the geometry unchanged).
func TestLinearMarginScaleInvariant(t *testing.T) {
	f := func(a1, a2 int8, b int8, lam uint8, x1, x2 uint8) bool {
		lambda := 0.5 + float64(lam%40)/10
		coef := []float64{float64(a1) / 16, float64(a2) / 16}
		bb := float64(b) / 32
		p := []float64{0.1 + float64(x1%80)/100, 0.1 + float64(x2%80)/100}
		m1 := Linear(coef, bb).Margin(p)
		m2 := Linear([]float64{coef[0] * lambda, coef[1] * lambda}, bb*lambda).Margin(p)
		return math.Abs(m1-m2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: margins shrink (weakly) as the point approaches the boundary
// along a ray for the atom x ≥ b.
func TestMarginMonotoneInDistance(t *testing.T) {
	phi := Linear([]float64{1}, 0.5)
	last := math.Inf(1)
	for _, x := range []float64{0.95, 0.85, 0.75, 0.65, 0.55} {
		m := phi.Margin([]float64{x})
		if m > last+1e-12 {
			t.Errorf("margin increased approaching the boundary: %v at %v", m, x)
		}
		last = m
	}
}

func TestDecideIndependentOption(t *testing.T) {
	phi := Linear([]float64{1, -1}, 0)
	// Two exact values: both options agree and give zero bounds.
	for _, ind := range []bool{false, true} {
		d, err := Decide(phi, []Approximable{Exact(0.8), Exact(0.2)},
			Options{Eps0: 0.05, Delta: 0.1, Independent: ind})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Value || d.ErrorBound != 0 {
			t.Errorf("independent=%v: %+v", ind, d)
		}
	}
}

// A custom Approximable whose Delta never shrinks: the round cap must
// terminate Decide anyway.
type stubborn struct{ v float64 }

func (s stubborn) Step()                     {}
func (s stubborn) Estimate() float64         { return s.v }
func (s stubborn) Delta(eps float64) float64 { return 0.9 }

func TestDecideTerminatesOnStubbornApproximable(t *testing.T) {
	phi := Linear([]float64{1}, 0.5)
	d, err := Decide(phi, []Approximable{stubborn{v: 0.9}}, Options{Eps0: 0.1, Delta: 0.05, MaxRounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rounds != 25 {
		t.Errorf("rounds = %d, want the cap 25", d.Rounds)
	}
	if d.ErrorBound < 0.05 {
		t.Error("stubborn approximable cannot reach δ; bound must reflect that")
	}
	if !d.Value {
		t.Error("decision should follow the estimate")
	}
}

func TestArityAndStrings(t *testing.T) {
	a := Linear([]float64{1, 2}, 0.5)
	or := OrOf(a, NotOf(a))
	and := AndOf(a, a)
	if or.Arity() != 2 || and.Arity() != 2 {
		t.Error("arity propagation wrong")
	}
	for _, p := range []Pred{a, or, and, NotOf(a)} {
		if p.String() == "" {
			t.Error("empty String()")
		}
	}
	zero := Linear(nil, 0)
	if zero.String() == "" {
		t.Error("degenerate atom should still render")
	}
}

// Fuzz-ish: Margin never panics and stays in [0, EpsMax] for random
// predicates and points, including degenerate coefficients.
func TestMarginTotalAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(3)
		coef := make([]float64, k)
		for i := range coef {
			switch rng.Intn(4) {
			case 0:
				coef[i] = 0
			default:
				coef[i] = rng.Float64()*8 - 4
			}
		}
		phi := Linear(coef, rng.Float64()*2-1)
		p := make([]float64, k)
		for i := range p {
			if rng.Intn(8) == 0 {
				p[i] = 0
			} else {
				p[i] = rng.Float64()
			}
		}
		m := phi.Margin(p)
		if math.IsNaN(m) || m < 0 || m > EpsMax {
			t.Fatalf("margin out of range: %v for %s at %v", m, phi, p)
		}
	}
}
