package predapprox

import (
	"fmt"
	"math"
)

// Approximable is an incrementally refinable (ε,δ)-approximation of one
// value, the abstraction the algorithm of Figure 3 iterates over. A
// karpluby.Estimator is the canonical implementation; exact database
// constants are wrapped by Exact.
type Approximable interface {
	// Step runs one more round of refinement (for Karp–Luby, |F_i|
	// estimator trials, matching the inner loop of Figure 3).
	Step()
	// Estimate returns the current approximation p̂ᵢ.
	Estimate() float64
	// Delta returns the current error bound δᵢ(ε): an upper bound on
	// Pr[|pᵢ − p̂ᵢ| ≥ ε·pᵢ] given the refinement done so far.
	Delta(eps float64) float64
}

// Bounded is an optional extension of Approximable for estimators that
// can produce two-sided confidence intervals (karpluby.Estimator via
// Chernoff inversion, karpluby.Stratified via empirical-Bernstein
// widths). DecideThreshold uses it to stop refining as soon as the whole
// interval clears the decision threshold.
type Bounded interface {
	// Bounds returns lo ≤ p ≤ hi with probability ≥ 1−delta.
	Bounds(delta float64) (lo, hi float64)
}

// Exact wraps a value known exactly (δᵢ ≡ 0); the paper: "exact attribute
// values from the database can be viewed as constants".
type Exact float64

// Step does nothing.
func (Exact) Step() {}

// Estimate returns the exact value.
func (e Exact) Estimate() float64 { return float64(e) }

// Delta returns 0: exact values carry no error.
func (Exact) Delta(float64) float64 { return 0 }

// Bounds returns the degenerate interval [v, v].
func (e Exact) Bounds(float64) (float64, float64) { return float64(e), float64(e) }

// Decision is the outcome of the predicate-approximation algorithm.
type Decision struct {
	// Value is the decided truth value φ(p̂₁,…,p̂_k).
	Value bool
	// ErrorBound is min(0.5, Σᵢ δᵢ(ε)), the bound the algorithm outputs.
	ErrorBound float64
	// Epsilon is the final ε = max(ε₀, ε_ψ(p̂)) used.
	Epsilon float64
	// Rounds is the number of outer-loop iterations executed.
	Rounds int
	// Estimates are the final p̂ᵢ values.
	Estimates []float64
	// HitEpsilonFloor records that the final ε was clamped at ε₀, i.e.
	// the point may be (near) an ε₀-singularity and the decision relies
	// on the non-singularity assumption of Theorem 5.8.
	HitEpsilonFloor bool
	// EarlySettled counts the approximable values the loop marked settled
	// (δᵢ(ε₀)·k ≤ δ): from the round after settling they are no longer
	// refined, since their contribution to the stopping rule is already
	// below its even share for every ε ≥ ε₀ the loop may use.
	EarlySettled int
}

// Options configures Decide.
type Options struct {
	// Eps0 is ε₀ > 0, the smallest ε the approximation goes for
	// (Section 5); points within ε₀ of a decision boundary are
	// singularities and cannot be decided reliably.
	Eps0 float64
	// Delta is the target error probability δ.
	Delta float64
	// MaxRounds caps the outer loop as a safety net; 0 means the
	// theoretical bound ⌈3·log(2k/δ)/ε₀²⌉ plus slack. Theorem 5.8
	// guarantees termination by then because δᵢ(max(ε₀, ·)) → 0.
	MaxRounds int
	// Independent selects the product form 1−Π(1−δᵢ) of Lemma 5.1 for
	// combining per-value errors (valid when the approximations are
	// independently distributed, as repeated Karp–Luby runs are) instead
	// of the union bound Σδᵢ.
	Independent bool
}

// maxRounds returns the effective round cap.
func (o Options) maxRounds(k int) int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	// l = ⌈3·log(2k/δ)/ε₀²⌉ rounds suffice: then δ'(ε₀, l) ≤ δ/k.
	l := int(math.Ceil(3 * math.Log(2*float64(k)/o.Delta) / (o.Eps0 * o.Eps0)))
	return l + 2
}

// combine merges per-value error bounds per Lemma 5.1.
func (o Options) combine(deltas []float64) float64 {
	if o.Independent {
		q := 1.0
		for _, d := range deltas {
			q *= 1 - math.Min(d, 1)
		}
		return 1 - q
	}
	s := 0.0
	for _, d := range deltas {
		s += d
	}
	return s
}

// Decide runs the predicate-approximation algorithm of Figure 3: refine
// all approximable values one batch per round, compute the margin
// ε_ψ(p̂₁,…,p̂_k) of the currently decided branch ψ ∈ {φ, ¬φ}, clamp it
// below by ε₀, and stop as soon as the combined error bound drops to δ.
//
// If (p₁,…,p_k) is not an ε₀-singularity, the returned decision is
// correct with probability ≥ 1−δ (Theorem 5.8).
func Decide(pred Pred, apx []Approximable, opts Options) (Decision, error) {
	if opts.Eps0 <= 0 || opts.Eps0 >= 1 {
		return Decision{}, fmt.Errorf("predapprox: ε₀ must be in (0,1), got %v", opts.Eps0)
	}
	if opts.Delta <= 0 || opts.Delta >= 1 {
		return Decision{}, fmt.Errorf("predapprox: δ must be in (0,1), got %v", opts.Delta)
	}
	k := len(apx)
	if pred.Arity() > k {
		return Decision{}, fmt.Errorf("predapprox: predicate arity %d exceeds %d approximable values", pred.Arity(), k)
	}
	est := make([]float64, k)
	deltas := make([]float64, k)
	maxRounds := opts.maxRounds(k)

	// settled[i] marks values whose bound can no longer dominate the
	// stopping rule: once δᵢ(ε₀) ≤ δ/k, value i's contribution stays
	// below its even share of the budget for every ε ≥ ε₀ the loop may
	// use (Delta is non-increasing in ε), so refining it further only
	// burns trials the other values need. Skipping its Step keeps the
	// loop sound — its last estimate and bound remain valid — and
	// focuses every subsequent round on the unsettled values.
	settled := make([]bool, k)
	nSettled := 0

	var d Decision
	for round := 1; ; round++ {
		for i, a := range apx {
			if !settled[i] {
				a.Step()
			}
			est[i] = a.Estimate()
		}
		// Margin already computes ε for φ when φ(p̂) holds and for ¬φ
		// otherwise (the atoms negate themselves), i.e. ε_ψ(p̂).
		margin := pred.Margin(est)
		eps := math.Max(opts.Eps0, margin)
		for i, a := range apx {
			deltas[i] = a.Delta(eps)
			if !settled[i] && a.Delta(opts.Eps0)*float64(k) <= opts.Delta {
				settled[i] = true
				nSettled++
			}
		}
		bound := opts.combine(deltas)
		d = Decision{
			Value:           pred.Eval(est),
			ErrorBound:      math.Min(0.5, bound),
			Epsilon:         eps,
			Rounds:          round,
			Estimates:       append([]float64(nil), est...),
			HitEpsilonFloor: margin < opts.Eps0,
			EarlySettled:    nSettled,
		}
		if bound <= opts.Delta {
			return d, nil
		}
		if round >= maxRounds {
			// Theoretical round bound reached: δᵢ(ε₀) ≤ δ/k must hold now
			// for Karp–Luby approximables; for custom Approximables whose
			// Delta does not shrink we stop rather than loop forever.
			return d, nil
		}
	}
}

// DecideNaive is the non-adaptive baseline sketched before Theorem 5.8:
// refine every value for the full ⌈3·log(2k/δ)/ε₀²⌉ rounds up front, then
// decide once. Used by experiment E3 to measure the speedup of Figure 3.
func DecideNaive(pred Pred, apx []Approximable, opts Options) (Decision, error) {
	if opts.Eps0 <= 0 || opts.Eps0 >= 1 {
		return Decision{}, fmt.Errorf("predapprox: ε₀ must be in (0,1), got %v", opts.Eps0)
	}
	k := len(apx)
	rounds := int(math.Ceil(3 * math.Log(2*float64(k)/opts.Delta) / (opts.Eps0 * opts.Eps0)))
	est := make([]float64, k)
	deltas := make([]float64, k)
	for r := 0; r < rounds; r++ {
		for _, a := range apx {
			a.Step()
		}
	}
	for i, a := range apx {
		est[i] = a.Estimate()
	}
	margin := pred.Margin(est)
	eps := math.Max(opts.Eps0, margin)
	for i, a := range apx {
		deltas[i] = a.Delta(eps)
	}
	return Decision{
		Value:           pred.Eval(est),
		ErrorBound:      math.Min(0.5, opts.combine(deltas)),
		Epsilon:         eps,
		Rounds:          rounds,
		Estimates:       append([]float64(nil), est...),
		HitEpsilonFloor: margin < opts.Eps0,
	}, nil
}

// ThresholdDecision is the outcome of DecideThreshold.
type ThresholdDecision struct {
	// Value is the decided comparison p > tau (meaningful when Decided).
	Value bool
	// Decided reports whether the interval separated from the threshold
	// before the round cap; when false, Value is the best guess p̂ > tau.
	Decided bool
	// Rounds is the number of refinement rounds executed.
	Rounds int
	// Lo, Hi are the final confidence interval and Estimate the final p̂.
	Lo, Hi, Estimate float64
}

// DecideThreshold refines a single Bounded approximable value only until
// its confidence interval clears the threshold tau from either side:
// lo > tau decides p > tau, hi < tau decides p ≤ tau, each holding with
// probability ≥ 1−delta. This is the early-stopping primitive behind
// threshold and top-k queries — a tuple whose confidence is far from tau
// stops after a handful of rounds instead of converging to full (ε,δ)
// accuracy. maxRounds caps the loop for values too close to tau to
// separate (a threshold singularity); 0 selects 64 rounds.
func DecideThreshold(a interface {
	Approximable
	Bounded
}, tau, delta float64, maxRounds int) (ThresholdDecision, error) {
	if tau <= 0 || tau >= 1 {
		return ThresholdDecision{}, fmt.Errorf("predapprox: threshold must be in (0,1), got %v", tau)
	}
	if delta <= 0 || delta >= 1 {
		return ThresholdDecision{}, fmt.Errorf("predapprox: δ must be in (0,1), got %v", delta)
	}
	if maxRounds <= 0 {
		maxRounds = 64
	}
	var d ThresholdDecision
	for round := 1; ; round++ {
		a.Step()
		lo, hi := a.Bounds(delta)
		d = ThresholdDecision{
			Value:    a.Estimate() > tau,
			Rounds:   round,
			Lo:       lo,
			Hi:       hi,
			Estimate: a.Estimate(),
		}
		switch {
		case lo > tau:
			d.Value, d.Decided = true, true
			return d, nil
		case hi < tau:
			d.Value, d.Decided = false, true
			return d, nil
		}
		if round >= maxRounds {
			return d, nil
		}
	}
}

// IsSingular conservatively decides whether p is an ε₀-singularity
// (Definition 5.6): whether some point x with |pᵢ−xᵢ| ≤ ε₀·pᵢ for all i
// disagrees with p on φ. The check relates the additive ε₀-box to the
// multiplicative margin orthotope: the box [pᵢ(1−ε₀), pᵢ(1+ε₀)] is
// contained in the orthotope [pᵢ/(1+ε), pᵢ/(1−ε)] iff ε ≥ ε₀/(1−ε₀)
// (for the lower end 1/(1+ε) ≤ 1−ε₀ also needs ε ≥ ε₀/(1−ε₀)). Since
// Margin is a sound (possibly conservative) homogeneity radius,
// Margin(p) ≥ ε₀/(1−ε₀) proves p is not an ε₀-singularity; the converse
// direction is exact for single atoms, whose Margin is exact.
func IsSingular(pred Pred, p []float64, eps0 float64) bool {
	need := eps0 / (1 - eps0)
	return pred.Margin(p) < need
}

// IsSingularBruteForce checks Definition 5.6 directly on a dense grid of
// the additive ε₀-box; the test oracle for IsSingular.
func IsSingularBruteForce(pred Pred, p []float64, eps0 float64, grid int) bool {
	want := pred.Eval(p)
	k := len(p)
	pt := make([]float64, k)
	var rec func(i int) bool // returns true if a disagreeing point exists
	rec = func(i int) bool {
		if i == k {
			return pred.Eval(pt) != want
		}
		lo, hi := p[i]*(1-eps0), p[i]*(1+eps0)
		for g := 0; g <= grid; g++ {
			pt[i] = lo + (hi-lo)*float64(g)/float64(grid)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}
