package predapprox

import (
	"math/rand"
	"testing"

	"repro/internal/vars"
)

// DecideThreshold must separate quickly when the true value is far from
// the threshold, and report the correct side. Seed 10's fixture has a
// moderate exact confidence (≈ 0.59), so thresholds at ±50% relative
// distance sit well outside the 64-round Chernoff convergence margin.
func TestDecideThresholdSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tab := vars.NewTable()
	est, exact := makeEstimator(rng, tab, 4)
	if exact < 0.3 || exact > 0.7 {
		t.Fatalf("fixture drifted: exact = %v, want a moderate value in [0.3, 0.7]", exact)
	}
	for _, tau := range []float64{exact * 0.5, exact * 1.5} {
		if d, err := DecideThreshold(est, tau, 0.05, 0); err != nil {
			t.Fatal(err)
		} else {
			if !d.Decided {
				t.Errorf("τ=%v: interval never separated (exact %v, final [%v,%v])", tau, exact, d.Lo, d.Hi)
				continue
			}
			if d.Value != (exact > tau) {
				t.Errorf("τ=%v: decided %v, exact %v", tau, d.Value, exact)
			}
			if d.Rounds >= 64 {
				t.Errorf("τ=%v: wide margin took %d rounds", tau, d.Rounds)
			}
		}
	}
}

// A value pinned exactly on the threshold can never separate: the loop
// must give up at the round cap with Decided == false.
func TestDecideThresholdSingularity(t *testing.T) {
	d, err := DecideThreshold(Exact(0.5), 0.5, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Decided {
		t.Errorf("point mass on τ decided: %+v", d)
	}
	if d.Rounds != 8 {
		t.Errorf("gave up after %d rounds, cap was 8", d.Rounds)
	}
}

func TestDecideThresholdValidation(t *testing.T) {
	for _, c := range []struct{ tau, delta float64 }{
		{0, 0.05}, {1, 0.05}, {-0.3, 0.05}, {0.5, 0}, {0.5, 1},
	} {
		if _, err := DecideThreshold(Exact(0.4), c.tau, c.delta, 0); err == nil {
			t.Errorf("DecideThreshold(τ=%v, δ=%v) should be rejected", c.tau, c.delta)
		}
	}
}

// Exact values have zero-width bounds, so any off-threshold exact value
// decides in one round.
func TestDecideThresholdExactImmediate(t *testing.T) {
	d, err := DecideThreshold(Exact(0.9), 0.5, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Decided || !d.Value || d.Rounds != 1 {
		t.Errorf("exact 0.9 vs τ=0.5: %+v", d)
	}
}

// When one conf term converges faster than another — here an exact value
// (zero error from round 1) against a live estimator on a tight margin —
// the loop must settle the finished term early and keep refining only
// the live one, reporting the count in EarlySettled.
func TestDecideEarlySettledSkipsConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tab := vars.NewTable()
	est, exact := makeEstimator(rng, tab, 4)
	// Compare the estimator against an exact value a few percent below its
	// own confidence: the margin stays near the ε₀ floor, so the loop runs
	// several rounds after the exact term has settled.
	phi := Linear([]float64{1, -1}, 0) // p₁ ≥ p₂
	d, err := Decide(phi, []Approximable{est, Exact(exact * 0.97)}, Options{Eps0: 0.05, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if d.EarlySettled < 1 {
		t.Errorf("EarlySettled = %d, want ≥ 1 (the exact term settles in round 1)", d.EarlySettled)
	}
	if d.Rounds < 2 {
		t.Errorf("loop stopped after %d rounds; the live estimator should have kept refining", d.Rounds)
	}
}
