package predapprox

import (
	"math"
	"math/rand"
	"testing"
)

// TestExample54Golden reproduces Example 5.4 / Figure 2 exactly:
// φ(x₁,x₂) = (x₁/x₂ ≥ 1/2), linearized 2x₁ − x₂ ≥ 0 (equivalently
// x₁ − ½x₂ ≥ 0), at p̂ = (1/2, 1/2): ε = 1/3, maximal orthotope
// [3/8, 3/4]², touching the hyperplane at (3/8, 3/4).
func TestExample54Golden(t *testing.T) {
	phi := RatioAtom(0, 1, 0.5, 2)
	p := []float64{0.5, 0.5}
	if !phi.Eval(p) {
		t.Fatal("φ(p̂) should hold")
	}
	eps := phi.Margin(p)
	if math.Abs(eps-1.0/3) > 1e-12 {
		t.Fatalf("ε = %v, want 1/3", eps)
	}
	lo, hi := p[0]/(1+eps), p[0]/(1-eps)
	if math.Abs(lo-3.0/8) > 1e-12 || math.Abs(hi-3.0/4) > 1e-12 {
		t.Errorf("orthotope = [%v, %v], want [3/8, 3/4]", lo, hi)
	}
	// Touch point (p̂₁/(1+ε), p̂₂/(1−ε)) = (3/8, 3/4) lies on 2x₁ = x₂.
	x1, x2 := p[0]/(1+eps), p[1]/(1-eps)
	if math.Abs(2*x1-x2) > 1e-12 {
		t.Errorf("touch point (%v, %v) not on hyperplane", x1, x2)
	}
}

// The b > 0 root-selection case documented in the package comment: the
// paper's "larger root" would give ε = 1 here; the genuine margin is 1/4.
func TestTheorem52RootSelectionPositiveB(t *testing.T) {
	phi := Linear([]float64{1}, 0.4) // x₁ ≥ 0.4
	p := []float64{0.5}
	eps := phi.Margin(p)
	if math.Abs(eps-0.25) > 1e-12 {
		t.Fatalf("ε = %v, want 0.25 (smaller root)", eps)
	}
	// Verify: at ε the orthotope touches the boundary.
	if lo := p[0] / (1 + eps); math.Abs(lo-0.4) > 1e-12 {
		t.Errorf("lower end %v should be 0.4", lo)
	}
}

func TestTheorem52NegativeB(t *testing.T) {
	// x₁ ≤ 0.4 at 0.3, i.e. −x₁ ≥ −0.4: margin until 0.3/(1−ε) = 0.4.
	phi := Linear([]float64{-1}, -0.4)
	p := []float64{0.3}
	eps := phi.Margin(p)
	if math.Abs(eps-0.25) > 1e-12 {
		t.Fatalf("ε = %v, want 0.25", eps)
	}
}

func TestMarginOnHyperplaneIsZero(t *testing.T) {
	phi := Linear([]float64{1, -1}, 0) // x₁ ≥ x₂
	if eps := phi.Margin([]float64{0.5, 0.5}); eps != 0 {
		t.Errorf("on-hyperplane margin = %v, want 0 (Remark 5.3)", eps)
	}
}

func TestMarginFalsePointUsesNegation(t *testing.T) {
	phi := Linear([]float64{1}, 0.8) // x₁ ≥ 0.8
	p := []float64{0.4}              // false
	if phi.Eval(p) {
		t.Fatal("should be false")
	}
	// ¬φ: −x₁ > −0.8; margin until 0.4/(1−ε) = 0.8 → ε = 0.5.
	eps := phi.Margin(p)
	if math.Abs(eps-0.5) > 1e-12 {
		t.Errorf("margin of false point = %v, want 0.5", eps)
	}
}

func TestDegenerateConstantAtom(t *testing.T) {
	phi := Linear([]float64{0, 0}, -1) // 0 ≥ −1: always true
	eps := phi.Margin([]float64{0.5, 0.5})
	if eps < EpsMax {
		t.Errorf("constant predicate margin = %v, want EpsMax", eps)
	}
	psi := Linear([]float64{1}, 0) // x₁ ≥ 0, true for any positive x
	if eps := psi.Margin([]float64{0.7}); eps < EpsMax {
		t.Errorf("x≥0 at positive x margin = %v, want EpsMax", eps)
	}
}

// Theorem 5.2 closed form vs brute-force orthotope scan on random linear
// atoms (experiment E6's core assertion).
func TestLinearMarginMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(3)
		coef := make([]float64, k)
		for i := range coef {
			coef[i] = math.Round((rng.Float64()*4-2)*10) / 10
		}
		b := math.Round((rng.Float64()*1.2-0.6)*10) / 10
		phi := Linear(coef, b)
		p := make([]float64, k)
		for i := range p {
			p[i] = 0.1 + 0.8*rng.Float64()
		}
		got := phi.Margin(p)
		bf := BruteForceMargin(phi, p, 0.004, 6)
		// Brute force underestimates by up to one step; the closed form
		// must lie within [bf, bf + 2 steps] when not clamped.
		if got < bf-0.005 || (got < EpsMax-1e-6 && got > bf+0.012) {
			t.Fatalf("trial %d: closed-form ε=%v vs brute-force %v (φ=%s, p=%v)", trial, got, bf, phi, p)
		}
	}
}

// Boolean combinations: the composed margin must be sound — the orthotope
// it certifies must actually be homogeneous.
func TestCompositeMarginSound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		k := 2
		mkAtom := func() Pred {
			coef := make([]float64, k)
			for i := range coef {
				coef[i] = rng.Float64()*4 - 2
			}
			return Linear(coef, rng.Float64()*1.2-0.6)
		}
		var phi Pred
		switch rng.Intn(4) {
		case 0:
			phi = AndOf(mkAtom(), mkAtom())
		case 1:
			phi = OrOf(mkAtom(), mkAtom())
		case 2:
			phi = NotOf(AndOf(mkAtom(), mkAtom()))
		default:
			phi = OrOf(AndOf(mkAtom(), mkAtom()), mkAtom())
		}
		p := []float64{0.1 + 0.8*rng.Float64(), 0.1 + 0.8*rng.Float64()}
		m := phi.Margin(p)
		if m <= 1e-9 {
			continue
		}
		probe := m * 0.98
		if !orthotopeHomogeneous(phi, p, probe, 8, phi.Eval(p)) {
			t.Fatalf("trial %d: margin %v not homogeneous for %s at %v", trial, m, phi, p)
		}
	}
}

func TestPaperInductiveRulesOnSatisfiedBranch(t *testing.T) {
	// When both conjuncts are true, ε_{φ∧ψ} = min; when some disjunct is
	// true, ε_{φ∨ψ} = max over true disjuncts (the paper's rules).
	a := Linear([]float64{1}, 0.2) // margin at 0.5: 0.5/(1+ε)=0.2 → ε=1.5 → clamp... compute below
	b := Linear([]float64{1}, 0.4) // margin at 0.5: 0.25
	p := []float64{0.5}
	ma, mb := a.Margin(p), b.Margin(p)
	if got := AndOf(a, b).Margin(p); got != math.Min(ma, mb) {
		t.Errorf("And margin %v != min(%v, %v)", got, ma, mb)
	}
	if got := OrOf(a, b).Margin(p); got != math.Max(ma, mb) {
		t.Errorf("Or margin %v != max(%v, %v)", got, ma, mb)
	}
}

func TestNotMarginEqualsChild(t *testing.T) {
	a := Linear([]float64{1}, 0.4)
	p := []float64{0.5}
	if NotOf(a).Margin(p) != a.Margin(p) {
		t.Error("negation must preserve the homogeneous orthotope")
	}
	if NotOf(a).Eval(p) == a.Eval(p) {
		t.Error("negation must flip the value")
	}
}

func TestAndOrFalseBranches(t *testing.T) {
	// And with one false child: margin = max over false children.
	tr := Linear([]float64{1}, 0.1)  // true at 0.5, wide margin
	fa := Linear([]float64{1}, 0.8)  // false at 0.5, margin 0.375: 0.5/(1−ε)=0.8 → ε=0.375
	fb := Linear([]float64{1}, 0.55) // false at 0.5, margin: 0.5/(1−ε)=0.55 → ε≈0.0909
	p := []float64{0.5}
	and := AndOf(tr, fa, fb)
	if and.Eval(p) {
		t.Fatal("conjunction should be false")
	}
	want := fa.Margin(p)
	if got := and.Margin(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("And false-branch margin = %v, want %v", got, want)
	}
	// Or with all children false: margin = min over children.
	or := OrOf(fa, fb)
	want = math.Min(fa.Margin(p), fb.Margin(p))
	if got := or.Margin(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("Or all-false margin = %v, want %v", got, want)
	}
}

func TestRatioAtom(t *testing.T) {
	// x0/x1 ≥ 2 at (0.8, 0.2): 0.8 − 2·0.2 = 0.4 ≥ 0 true.
	phi := RatioAtom(0, 1, 2, 2)
	if !phi.Eval([]float64{0.8, 0.2}) {
		t.Error("ratio atom eval wrong")
	}
	if phi.Eval([]float64{0.2, 0.8}) {
		t.Error("ratio atom eval wrong (false case)")
	}
}
