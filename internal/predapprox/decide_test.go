package predapprox

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/vars"
)

func TestDecideExactValues(t *testing.T) {
	phi := Linear([]float64{1, -1}, 0) // x₀ ≥ x₁
	d, err := Decide(phi, []Approximable{Exact(0.7), Exact(0.3)}, Options{Eps0: 0.01, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Value || d.ErrorBound != 0 || d.Rounds != 1 {
		t.Errorf("exact decision = %+v", d)
	}
	d2, err := Decide(phi, []Approximable{Exact(0.2), Exact(0.9)}, Options{Eps0: 0.01, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Value {
		t.Error("false predicate decided true")
	}
}

func TestDecideValidation(t *testing.T) {
	phi := Linear([]float64{1}, 0.5)
	if _, err := Decide(phi, []Approximable{Exact(0.7)}, Options{Eps0: 0, Delta: 0.05}); err == nil {
		t.Error("ε₀=0 must be rejected")
	}
	if _, err := Decide(phi, []Approximable{Exact(0.7)}, Options{Eps0: 0.1, Delta: 0}); err == nil {
		t.Error("δ=0 must be rejected")
	}
	if _, err := Decide(Linear([]float64{1, 1}, 0.5), []Approximable{Exact(0.7)}, Options{Eps0: 0.1, Delta: 0.1}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
}

// makeEstimator builds a Karp–Luby estimator whose true confidence is
// known, for a random DNF over fresh variables in tab.
func makeEstimator(rng *rand.Rand, tab *vars.Table, nClauses int) (*karpluby.Estimator, float64) {
	base := tab.Len()
	nv := 3
	for i := 0; i < nv; i++ {
		p := 0.2 + 0.6*rng.Float64()
		tab.Add(estName(base, i), []float64{p, 1 - p}, nil)
	}
	var f dnf.F
	for c := 0; c < nClauses; c++ {
		var bs []vars.Binding
		nl := 1 + rng.Intn(2)
		for l := 0; l < nl; l++ {
			bs = append(bs, vars.Binding{Var: vars.Var(base + rng.Intn(nv)), Alt: int32(rng.Intn(2))})
		}
		if a, err := vars.NewAssignment(bs...); err == nil {
			f = append(f, a)
		}
	}
	if len(f) == 0 {
		f = dnf.F{vars.MustAssignment(vars.Binding{Var: vars.Var(base), Alt: 0})}
	}
	exact := dnf.Confidence(f, tab)
	est, err := karpluby.NewEstimator(f, tab, rng)
	if err != nil {
		panic(err)
	}
	return est, exact
}

func estName(base, i int) string {
	return "e" + string(rune('0'+base%10)) + string(rune('a'+i)) + string(rune('0'+base/10%10)) + string(rune('0'+base/100%10))
}

// Theorem 5.8: on non-singular inputs, the decision error rate is ≤ δ.
func TestDecideErrorRateWithinDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const eps0, delta = 0.05, 0.1
	runs, wrong, decided := 0, 0, 0
	for trial := 0; trial < 120; trial++ {
		tab := vars.NewTable()
		e1, p1 := makeEstimator(rng, tab, 3)
		e2, p2 := makeEstimator(rng, tab, 3)
		phi := Linear([]float64{1, -1}, 0) // p₁ ≥ p₂
		truth := phi.Eval([]float64{p1, p2})
		// Skip singular instances (true values too close to the
		// boundary); Theorem 5.8 only covers non-singular points.
		if IsSingular(phi, []float64{p1, p2}, 2*eps0) {
			continue
		}
		d, err := Decide(phi, []Approximable{e1, e2}, Options{Eps0: eps0, Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		runs++
		decided++
		if d.Value != truth {
			wrong++
		}
	}
	if decided < 30 {
		t.Fatalf("too few non-singular instances: %d", decided)
	}
	if frac := float64(wrong) / float64(runs); frac > delta {
		t.Errorf("error rate %v exceeds δ=%v (%d/%d)", frac, delta, wrong, runs)
	}
}

// The adaptive algorithm should terminate in far fewer rounds than the
// naive bound when the margin is comfortable.
func TestDecideAdaptiveFasterThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tab := vars.NewTable()
	// A clause set with a confidently high probability vs a low constant:
	// wide margin, so the adaptive loop stops early.
	e1, p1 := makeEstimator(rng, tab, 4)
	if p1 < 0.3 {
		t.Skip("unlucky instance") // deterministic seed: will not happen
	}
	phi := Linear([]float64{1}, 0.05) // p₁ ≥ 0.05 — very wide margin
	opts := Options{Eps0: 0.02, Delta: 0.05}
	d, err := Decide(phi, []Approximable{e1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	naiveRounds := int(math.Ceil(3 * math.Log(2/opts.Delta) / (opts.Eps0 * opts.Eps0)))
	if d.Rounds >= naiveRounds {
		t.Errorf("adaptive used %d rounds, naive bound is %d", d.Rounds, naiveRounds)
	}
	if !d.Value {
		t.Error("decision should be true")
	}
	if d.ErrorBound > opts.Delta {
		t.Errorf("error bound %v > δ", d.ErrorBound)
	}
}

func TestDecideNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tab := vars.NewTable()
	e1, p1 := makeEstimator(rng, tab, 3)
	phi := Linear([]float64{1}, 0.5)
	opts := Options{Eps0: 0.1, Delta: 0.1}
	d, err := DecideNaive(phi, []Approximable{e1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := int(math.Ceil(3 * math.Log(2/opts.Delta) / 0.01))
	if d.Rounds != wantRounds {
		t.Errorf("naive rounds = %d, want %d", d.Rounds, wantRounds)
	}
	if !IsSingular(phi, []float64{p1}, 0.15) && d.Value != phi.Eval([]float64{p1}) {
		t.Error("naive decision wrong on comfortable instance")
	}
	if _, err := DecideNaive(phi, []Approximable{e1}, Options{Eps0: 0, Delta: 0.1}); err == nil {
		t.Error("ε₀=0 must be rejected")
	}
}

// Example 5.7: the tuple-certainty test conf = 1 can never be decided
// positively; p exactly on a boundary is an ε₀-singularity for every ε₀.
func TestCertaintyTestIsSingular(t *testing.T) {
	phi := Linear([]float64{1}, 1) // x ≥ 1
	for _, eps0 := range []float64{0.001, 0.01, 0.1} {
		if !IsSingular(phi, []float64{1}, eps0) {
			t.Errorf("p=1 must be an ε₀=%v singularity for conf=1", eps0)
		}
	}
	// But p = 0.9 is detectably below 1 for small ε₀.
	if IsSingular(phi, []float64{0.9}, 0.01) {
		t.Error("p=0.9 should not be a 0.01-singularity for x ≥ 1")
	}
}

func TestIsSingularMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(2)
		coef := make([]float64, k)
		for i := range coef {
			coef[i] = rng.Float64()*4 - 2
		}
		phi := Linear(coef, rng.Float64()-0.5)
		p := make([]float64, k)
		for i := range p {
			p[i] = 0.1 + 0.8*rng.Float64()
		}
		eps0 := 0.02 + 0.1*rng.Float64()
		got := IsSingular(phi, p, eps0)
		bf := IsSingularBruteForce(phi, p, eps0, 24)
		// IsSingular is conservative: it may report singular when the
		// brute force says safe (margin box is slightly larger than the
		// additive box), but must never claim safety for a genuine
		// singularity.
		if bf && !got {
			t.Fatalf("trial %d: missed singularity (φ=%s, p=%v, ε₀=%v)", trial, phi, p, eps0)
		}
	}
}

func TestHitEpsilonFloorFlagged(t *testing.T) {
	// A point exactly on the boundary: margin 0, so the final ε is ε₀ and
	// the decision is flagged.
	phi := Linear([]float64{1}, 0.5)
	d, err := Decide(phi, []Approximable{Exact(0.5)}, Options{Eps0: 0.05, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !d.HitEpsilonFloor {
		t.Error("boundary decision must be flagged as ε₀-clamped")
	}
	// Exact values have δ≡0, so it still terminates with a zero bound.
	if d.ErrorBound != 0 {
		t.Errorf("exact bound = %v", d.ErrorBound)
	}
}

func TestIndependentCombination(t *testing.T) {
	// 1 − Π(1−δᵢ) ≤ Σδᵢ: the independent bound is tighter.
	opts := Options{Independent: true}
	union := Options{}
	deltas := []float64{0.1, 0.2, 0.05}
	di := opts.combine(deltas)
	du := union.combine(deltas)
	if di >= du {
		t.Errorf("independent bound %v should beat union bound %v", di, du)
	}
	want := 1 - 0.9*0.8*0.95
	if math.Abs(di-want) > 1e-12 {
		t.Errorf("independent combine = %v, want %v", di, want)
	}
}

func TestDecideTerminatesAtSingularity(t *testing.T) {
	// True value exactly on the boundary: the margin never stabilizes
	// above ε₀, but the round cap guarantees termination with δᵢ(ε₀)
	// small (case 2 of the Theorem 5.8 proof).
	rng := rand.New(rand.NewSource(3))
	tab := vars.NewTable()
	tab.Add("x", []float64{0.5, 0.5}, nil)
	f := dnf.F{vars.MustAssignment(vars.Binding{Var: 0, Alt: 0})}
	est, err := karpluby.NewEstimator(f, tab, rng)
	if err != nil {
		t.Fatal(err)
	}
	phi := Linear([]float64{1}, 0.5) // p = 0.5 exactly on boundary
	d, err := Decide(phi, []Approximable{est}, Options{Eps0: 0.1, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rounds <= 0 {
		t.Error("no rounds executed")
	}
	// Single-clause estimator is exact (p̂ = M), so the margin is 0 every
	// round and ε stays clamped at ε₀.
	if !d.HitEpsilonFloor {
		t.Error("singular instance not flagged")
	}
	if d.ErrorBound > 0.05 {
		t.Errorf("bound %v should reach δ via δ(ε₀) decay", d.ErrorBound)
	}
}
