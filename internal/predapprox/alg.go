package predapprox

import (
	"fmt"
	"math"
)

// AExpr is an algebraic expression over slots, built from constants, slot
// references, and +, −, ·, / — the expression language of Theorem 5.5.
type AExpr interface {
	Eval(x []float64) float64
	// countSlots increments counts[i] for every occurrence of slot i.
	countSlots(counts []int)
	String() string
}

// Slot references approximable value xᵢ.
type Slot int

// Eval returns x[s].
func (s Slot) Eval(x []float64) float64 { return x[s] }

func (s Slot) countSlots(counts []int) { counts[s]++ }

func (s Slot) String() string { return fmt.Sprintf("x%d", int(s)) }

// Num is a numeric constant.
type Num float64

// Eval returns the constant.
func (n Num) Eval([]float64) float64 { return float64(n) }

func (n Num) countSlots([]int) {}

func (n Num) String() string { return fmt.Sprintf("%g", float64(n)) }

// BinOp is one of the four arithmetic operations.
type BinOp uint8

// The operations of Theorem 5.5.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
)

// Bin is a binary arithmetic node.
type Bin struct {
	Op   BinOp
	L, R AExpr
}

// Eval applies the operation. Division by zero yields ±Inf/NaN, which the
// comparison treats as falsifying; such points sit on singularities anyway.
func (b Bin) Eval(x []float64) float64 {
	l, r := b.L.Eval(x), b.R.Eval(x)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		return l / r
	default:
		return math.NaN()
	}
}

func (b Bin) countSlots(counts []int) {
	b.L.countSlots(counts)
	b.R.countSlots(counts)
}

func (b Bin) String() string {
	op := map[BinOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"}[b.Op]
	return "(" + b.L.String() + " " + op + " " + b.R.String() + ")"
}

// Add builds l+r.
func Add(l, r AExpr) AExpr { return Bin{Op: OpAdd, L: l, R: r} }

// Sub builds l−r.
func Sub(l, r AExpr) AExpr { return Bin{Op: OpSub, L: l, R: r} }

// Mul builds l·r.
func Mul(l, r AExpr) AExpr { return Bin{Op: OpMul, L: l, R: r} }

// Div builds l/r.
func Div(l, r AExpr) AExpr { return Bin{Op: OpDiv, L: l, R: r} }

// AlgAtom is the predicate f(x₁,…,x_k) ≥ 0 of Theorem 5.5. Every slot
// must occur at most once in F for the corner-point criterion to be sound;
// NewAlgAtom enforces this. The paper notes this is only a small loss:
// re-approximating a value gives an independent copy for a second
// occurrence.
type AlgAtom struct {
	F     AExpr
	arity int
	slots []int // slots that actually occur (each exactly once)
}

// NewAlgAtom validates the single-occurrence restriction and returns the
// atom. arity is the total slot count of the surrounding predicate.
func NewAlgAtom(f AExpr, arity int) (AlgAtom, error) {
	counts := make([]int, arity)
	f.countSlots(counts)
	var slots []int
	for i, c := range counts {
		if c > 1 {
			return AlgAtom{}, fmt.Errorf("predapprox: slot x%d occurs %d times; Theorem 5.5 requires single occurrence", i, c)
		}
		if c == 1 {
			slots = append(slots, i)
		}
	}
	return AlgAtom{F: f, arity: arity, slots: slots}, nil
}

// MustAlgAtom is NewAlgAtom, panicking on violation; for statically known
// predicates.
func MustAlgAtom(f AExpr, arity int) AlgAtom {
	a, err := NewAlgAtom(f, arity)
	if err != nil {
		panic(err)
	}
	return a
}

// Eval decides f(x) ≥ 0.
func (a AlgAtom) Eval(x []float64) bool { return a.F.Eval(x) >= 0 }

// Arity returns the slot count.
func (a AlgAtom) Arity() int { return a.arity }

func (a AlgAtom) String() string { return a.F.String() + " >= 0" }

// Margin maximizes ε by binary search (the procedure following Theorem
// 5.5): a candidate ε qualifies iff all 2^k corner points of the orthotope
// agree with the center, which by the theorem implies the whole orthotope
// agrees. Monotonicity in ε (smaller orthotopes are contained in larger
// homogeneous ones) makes binary search exact up to tolerance.
func (a AlgAtom) Margin(x []float64) float64 {
	want := a.Eval(x)
	if !a.cornersAgree(x, 0) { // degenerate: center itself ambiguous
		return 0
	}
	lo, hi := 0.0, EpsMax
	if a.cornersAgreeAt(x, hi, want) {
		return hi
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if a.cornersAgreeAt(x, mid, want) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func (a AlgAtom) cornersAgree(x []float64, eps float64) bool {
	return a.cornersAgreeAt(x, eps, a.Eval(x))
}

// cornersAgreeAt checks all 2^|slots| corners of the radius-eps orthotope.
func (a AlgAtom) cornersAgreeAt(x []float64, eps float64, want bool) bool {
	k := len(a.slots)
	pt := append([]float64(nil), x...)
	for mask := 0; mask < 1<<k; mask++ {
		for j, s := range a.slots {
			if mask&(1<<j) != 0 {
				pt[s] = x[s] / (1 + eps)
			} else {
				pt[s] = x[s] / (1 - eps)
			}
		}
		v := a.F.Eval(pt)
		if math.IsNaN(v) {
			return false // division blew up inside the orthotope
		}
		if (v >= 0) != want {
			return false
		}
	}
	return true
}

// RatioAtom builds the paper's running example φ(x₁,x₂) = (x₁/x₂ ≥ c) in
// its linearized form x₁ − c·x₂ ≥ 0 (Example 5.4).
func RatioAtom(num, den int, c float64, arity int) LinAtom {
	coef := make([]float64, arity)
	coef[num] = 1
	coef[den] = -c
	return Linear(coef, 0)
}
