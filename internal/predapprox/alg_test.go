package predapprox

import (
	"math"
	"math/rand"
	"testing"
)

func TestAlgAtomSingleOccurrence(t *testing.T) {
	// x0 + x0 violates the restriction.
	if _, err := NewAlgAtom(Add(Slot(0), Slot(0)), 1); err == nil {
		t.Error("double occurrence must be rejected")
	}
	if _, err := NewAlgAtom(Sub(Mul(Slot(0), Slot(1)), Num(0.1)), 2); err != nil {
		t.Errorf("single occurrence rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAlgAtom should panic on violation")
		}
	}()
	MustAlgAtom(Mul(Slot(0), Slot(0)), 1)
}

func TestAlgAtomEval(t *testing.T) {
	// x0·x1 − 0.1 ≥ 0.
	a := MustAlgAtom(Sub(Mul(Slot(0), Slot(1)), Num(0.1)), 2)
	if !a.Eval([]float64{0.5, 0.5}) {
		t.Error("0.25 − 0.1 ≥ 0 should hold")
	}
	if a.Eval([]float64{0.1, 0.5}) {
		t.Error("0.05 − 0.1 ≥ 0 should fail")
	}
	if a.Arity() != 2 {
		t.Error("arity wrong")
	}
}

func TestAlgAtomMarginMatchesLinear(t *testing.T) {
	// f = x0 − 0.4 is the linear atom x0 ≥ 0.4: margins must agree.
	alg := MustAlgAtom(Sub(Slot(0), Num(0.4)), 1)
	lin := Linear([]float64{1}, 0.4)
	for _, p := range [][]float64{{0.5}, {0.9}, {0.3}, {0.41}} {
		ma, ml := alg.Margin(p), lin.Margin(p)
		if math.Abs(ma-ml) > 1e-9 {
			t.Errorf("p=%v: alg margin %v vs linear %v", p, ma, ml)
		}
	}
}

func TestAlgAtomRatioMatchesExample54(t *testing.T) {
	// x0/x1 − 1/2 ≥ 0 at (1/2, 1/2): ε = 1/3 like the linearized form.
	alg := MustAlgAtom(Sub(Div(Slot(0), Slot(1)), Num(0.5)), 2)
	eps := alg.Margin([]float64{0.5, 0.5})
	if math.Abs(eps-1.0/3) > 1e-9 {
		t.Errorf("ratio-form ε = %v, want 1/3", eps)
	}
}

// Theorem 5.5: corner agreement implies orthotope homogeneity. The margin
// from corner-check binary search must certify a genuinely homogeneous
// orthotope (validated against dense grid scans, experiment E7).
func TestAlgAtomCornerCriterionSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	exprs := []func() (AExpr, int){
		func() (AExpr, int) { return Sub(Mul(Slot(0), Slot(1)), Num(0.05+0.3*rng.Float64())), 2 },
		func() (AExpr, int) { return Sub(Div(Slot(0), Slot(1)), Num(0.3+rng.Float64())), 2 },
		func() (AExpr, int) {
			return Sub(Add(Mul(Slot(0), Slot(1)), Slot(2)), Num(0.2+0.5*rng.Float64())), 3
		},
		func() (AExpr, int) { return Sub(Slot(0), Mul(Num(0.5+rng.Float64()), Slot(1))), 2 },
	}
	for trial := 0; trial < 120; trial++ {
		f, k := exprs[rng.Intn(len(exprs))]()
		atom, err := NewAlgAtom(f, k)
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, k)
		for i := range p {
			p[i] = 0.15 + 0.7*rng.Float64()
		}
		m := atom.Margin(p)
		if m <= 1e-6 {
			continue
		}
		probe := math.Min(m*0.98, m-1e-9)
		if !orthotopeHomogeneous(atom, p, probe, 7, atom.Eval(p)) {
			t.Fatalf("trial %d: margin %v not homogeneous for %s at %v", trial, m, atom, p)
		}
	}
}

// Binary-search maximality: slightly beyond the margin some corner must
// disagree (the margin is not needlessly small).
func TestAlgAtomMarginMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 80; trial++ {
		c := 0.05 + 0.3*rng.Float64()
		atom := MustAlgAtom(Sub(Mul(Slot(0), Slot(1)), Num(c)), 2)
		p := []float64{0.2 + 0.6*rng.Float64(), 0.2 + 0.6*rng.Float64()}
		m := atom.Margin(p)
		if m >= EpsMax-1e-9 || m <= 1e-9 {
			continue
		}
		beyond := math.Min(m*1.05+1e-6, EpsMax)
		if atom.cornersAgreeAt(p, beyond, atom.Eval(p)) {
			t.Fatalf("trial %d: margin %v not maximal (corners still agree at %v)", trial, m, beyond)
		}
	}
}

func TestAExprString(t *testing.T) {
	f := Sub(Div(Slot(0), Slot(1)), Num(0.5))
	if f.String() != "((x0 / x1) - 0.5)" {
		t.Errorf("String = %q", f.String())
	}
}

func TestDivisionByZeroInsideOrthotope(t *testing.T) {
	// f = 1/(x0 − 0.5): at p near 0.5 the orthotope contains the pole;
	// the margin must shrink accordingly rather than blow up.
	atom := MustAlgAtom(Div(Num(1), Sub(Slot(0), Num(0.5))), 1)
	m := atom.Margin([]float64{0.6})
	// Pole at x=0.5: orthotope lower end 0.6/(1+ε) hits 0.5 at ε=0.2.
	if m > 0.2+1e-6 {
		t.Errorf("margin %v crosses the pole at ε=0.2", m)
	}
}
