package predapprox

import (
	"math/rand"
	"testing"

	"repro/internal/dnf"
	"repro/internal/karpluby"
	"repro/internal/vars"
)

func BenchmarkLinearMargin(b *testing.B) {
	phi := Linear([]float64{1.5, -2, 0.3}, 0.1)
	p := []float64{0.4, 0.2, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi.Margin(p)
	}
}

func BenchmarkAlgebraicMargin(b *testing.B) {
	atom := MustAlgAtom(Sub(Div(Slot(0), Slot(1)), Num(0.5)), 2)
	p := []float64{0.6, 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atom.Margin(p)
	}
}

func BenchmarkCompositeMargin(b *testing.B) {
	phi := OrOf(
		AndOf(Linear([]float64{1, 0}, 0.3), Linear([]float64{0, 1}, 0.2)),
		NotOf(Linear([]float64{1, -1}, 0)),
	)
	p := []float64{0.5, 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi.Margin(p)
	}
}

func BenchmarkDecideWideMargin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := vars.NewTable()
	tab.Add("x", []float64{0.45, 0.55}, nil)
	tab.Add("y", []float64{0.45, 0.55}, nil)
	f := dnf.F{
		vars.MustAssignment(vars.Binding{Var: 0, Alt: 0}),
		vars.MustAssignment(vars.Binding{Var: 1, Alt: 0}),
	}
	phi := Linear([]float64{1}, 0.1) // p ≈ 0.70 ≫ 0.1: very wide margin
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := karpluby.NewEstimator(f, tab, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decide(phi, []Approximable{est}, Options{Eps0: 0.05, Delta: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
