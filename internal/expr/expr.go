// Package expr implements scalar expressions and selection predicates over
// tuples, as allowed by the paper's algebra: "Boolean combinations of
// atomic conditions ... and arithmetic expressions in atomic conditions
// and in the arguments of π and ρ" (Section 2).
//
// An Expr evaluates to a rel.Value against a (schema, tuple) pair; a Pred
// evaluates to a bool. Predicates support negation-normal-form rewriting,
// which the predicate-approximation layer relies on.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/rel"
)

// Env gives an expression access to the attributes of the tuple under
// evaluation.
type Env struct {
	Schema rel.Schema
	Tuple  rel.Tuple
}

// Lookup returns the value of attribute a, or NULL if absent.
func (e Env) Lookup(a string) rel.Value {
	if i := e.Schema.Index(a); i >= 0 {
		return e.Tuple[i]
	}
	return rel.Null()
}

// Expr is a scalar expression.
type Expr interface {
	Eval(env Env) rel.Value
	String() string
	// Attrs appends the attribute names the expression mentions.
	Attrs(dst []string) []string
}

// Const is a literal value.
type Const struct{ V rel.Value }

// Eval returns the literal.
func (c Const) Eval(Env) rel.Value { return c.V }

func (c Const) String() string {
	if c.V.Kind() == rel.StringKind {
		return fmt.Sprintf("%q", c.V.AsString())
	}
	return c.V.String()
}

// Attrs returns dst unchanged: constants mention no attributes.
func (c Const) Attrs(dst []string) []string { return dst }

// Attr references a named attribute of the input tuple.
type Attr struct{ Name string }

// Eval returns the attribute's value.
func (a Attr) Eval(env Env) rel.Value { return env.Lookup(a.Name) }

func (a Attr) String() string { return a.Name }

// Attrs appends the attribute name.
func (a Attr) Attrs(dst []string) []string { return append(dst, a.Name) }

// ArithOp enumerates binary arithmetic operators.
type ArithOp uint8

// The arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return "?"
	}
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval applies the operator with numeric promotion.
func (a Arith) Eval(env Env) rel.Value {
	l, r := a.L.Eval(env), a.R.Eval(env)
	switch a.Op {
	case OpAdd:
		return rel.Add(l, r)
	case OpSub:
		return rel.Sub(l, r)
	case OpMul:
		return rel.Mul(l, r)
	case OpDiv:
		return rel.Div(l, r)
	default:
		return rel.Null()
	}
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// Attrs appends the attributes of both operands.
func (a Arith) Attrs(dst []string) []string { return a.R.Attrs(a.L.Attrs(dst)) }

// Convenience constructors.

// C wraps a value as a constant expression.
func C(v rel.Value) Expr { return Const{V: v} }

// CInt is a shorthand integer constant.
func CInt(i int64) Expr { return Const{V: rel.Int(i)} }

// CFloat is a shorthand float constant.
func CFloat(f float64) Expr { return Const{V: rel.Float(f)} }

// CStr is a shorthand string constant.
func CStr(s string) Expr { return Const{V: rel.String(s)} }

// A references an attribute.
func A(name string) Expr { return Attr{Name: name} }

// Add builds L+R.
func Add(l, r Expr) Expr { return Arith{Op: OpAdd, L: l, R: r} }

// Sub builds L-R.
func Sub(l, r Expr) Expr { return Arith{Op: OpSub, L: l, R: r} }

// Mul builds L*R.
func Mul(l, r Expr) Expr { return Arith{Op: OpMul, L: l, R: r} }

// Div builds L/R.
func Div(l, r Expr) Expr { return Arith{Op: OpDiv, L: l, R: r} }

// CmpOp enumerates comparison operators for atomic conditions.
type CmpOp uint8

// The comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the complementary comparison (¬(a<b) ≡ a>=b etc.).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	default:
		return op
	}
}

// Apply evaluates the comparison on two values. Comparisons involving
// NULL are false (so NULL from a failed arithmetic op never selects).
func (op CmpOp) Apply(l, r rel.Value) bool {
	if l.IsNull() || r.IsNull() {
		return false
	}
	c := rel.Compare(l, r)
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// Pred is a selection predicate over a tuple.
type Pred interface {
	Holds(env Env) bool
	String() string
	Attrs(dst []string) []string
}

// Cmp is an atomic condition comparing two arithmetic expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Holds evaluates the comparison.
func (c Cmp) Holds(env Env) bool { return c.Op.Apply(c.L.Eval(env), c.R.Eval(env)) }

func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// Attrs appends attributes of both sides.
func (c Cmp) Attrs(dst []string) []string { return c.R.Attrs(c.L.Attrs(dst)) }

// And is a conjunction of predicates.
type And struct{ Kids []Pred }

// Holds reports whether all conjuncts hold; the empty conjunction is true.
func (a And) Holds(env Env) bool {
	for _, k := range a.Kids {
		if !k.Holds(env) {
			return false
		}
	}
	return true
}

func (a And) String() string { return joinPreds(a.Kids, " and ") }

// Attrs appends the attributes of all conjuncts.
func (a And) Attrs(dst []string) []string {
	for _, k := range a.Kids {
		dst = k.Attrs(dst)
	}
	return dst
}

// Or is a disjunction of predicates.
type Or struct{ Kids []Pred }

// Holds reports whether any disjunct holds; the empty disjunction is
// false.
func (o Or) Holds(env Env) bool {
	for _, k := range o.Kids {
		if k.Holds(env) {
			return true
		}
	}
	return false
}

func (o Or) String() string { return joinPreds(o.Kids, " or ") }

// Attrs appends the attributes of all disjuncts.
func (o Or) Attrs(dst []string) []string {
	for _, k := range o.Kids {
		dst = k.Attrs(dst)
	}
	return dst
}

// Not negates a predicate.
type Not struct{ Kid Pred }

// Holds negates the child.
func (n Not) Holds(env Env) bool { return !n.Kid.Holds(env) }

func (n Not) String() string { return fmt.Sprintf("not (%s)", n.Kid) }

// Attrs appends the child's attributes.
func (n Not) Attrs(dst []string) []string { return n.Kid.Attrs(dst) }

// True is the always-true predicate.
type True struct{}

// Holds returns true.
func (True) Holds(Env) bool { return true }

func (True) String() string { return "true" }

// Attrs returns dst unchanged.
func (True) Attrs(dst []string) []string { return dst }

// False is the always-false predicate.
type False struct{}

// Holds returns false.
func (False) Holds(Env) bool { return false }

func (False) String() string { return "false" }

// Attrs returns dst unchanged.
func (False) Attrs(dst []string) []string { return dst }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Convenience predicate constructors.

// Eq builds L = R.
func Eq(l, r Expr) Pred { return Cmp{Op: CmpEq, L: l, R: r} }

// Ne builds L <> R.
func Ne(l, r Expr) Pred { return Cmp{Op: CmpNe, L: l, R: r} }

// Lt builds L < R.
func Lt(l, r Expr) Pred { return Cmp{Op: CmpLt, L: l, R: r} }

// Le builds L <= R.
func Le(l, r Expr) Pred { return Cmp{Op: CmpLe, L: l, R: r} }

// Gt builds L > R.
func Gt(l, r Expr) Pred { return Cmp{Op: CmpGt, L: l, R: r} }

// Ge builds L >= R.
func Ge(l, r Expr) Pred { return Cmp{Op: CmpGe, L: l, R: r} }

// AndOf builds a conjunction.
func AndOf(kids ...Pred) Pred { return And{Kids: kids} }

// OrOf builds a disjunction.
func OrOf(kids ...Pred) Pred { return Or{Kids: kids} }

// NotOf builds a negation.
func NotOf(kid Pred) Pred { return Not{Kid: kid} }

// NNF rewrites a predicate into negation normal form: negations are pushed
// through De Morgan's laws and into the atomic comparisons, exactly the
// rewriting described before Theorem 5.5 ("¬(f(·) < g(·)) rewrites into
// f(·) ≥ g(·)").
func NNF(p Pred) Pred { return nnf(p, false) }

func nnf(p Pred, neg bool) Pred {
	switch q := p.(type) {
	case Not:
		return nnf(q.Kid, !neg)
	case And:
		kids := make([]Pred, len(q.Kids))
		for i, k := range q.Kids {
			kids[i] = nnf(k, neg)
		}
		if neg {
			return Or{Kids: kids}
		}
		return And{Kids: kids}
	case Or:
		kids := make([]Pred, len(q.Kids))
		for i, k := range q.Kids {
			kids[i] = nnf(k, neg)
		}
		if neg {
			return And{Kids: kids}
		}
		return Or{Kids: kids}
	case Cmp:
		if neg {
			return Cmp{Op: q.Op.Negate(), L: q.L, R: q.R}
		}
		return q
	case True:
		if neg {
			return False{}
		}
		return q
	case False:
		if neg {
			return True{}
		}
		return q
	default:
		if neg {
			return Not{Kid: p}
		}
		return p
	}
}

// Target is a projection/renaming target: expression Expr named As. A bare
// attribute copy is Target{As: "A", Expr: A("A")}; the paper's
// ρ_{P1/P2→P} is Target{As: "P", Expr: Div(A("P1"), A("P2"))}.
type Target struct {
	As   string
	Expr Expr
}

// Keep builds a target that copies attribute a unchanged.
func Keep(a string) Target { return Target{As: a, Expr: A(a)} }

// KeepAll builds identity targets for every attribute of the schema.
func KeepAll(s rel.Schema) []Target {
	out := make([]Target, len(s))
	for i, a := range s {
		out[i] = Keep(a)
	}
	return out
}

// As names an expression as an output attribute.
func As(name string, e Expr) Target { return Target{As: name, Expr: e} }
