package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

func env(schema rel.Schema, vals ...rel.Value) Env {
	return Env{Schema: schema, Tuple: rel.Tuple(vals)}
}

func TestExprEval(t *testing.T) {
	e := env(rel.NewSchema("A", "B"), rel.Int(6), rel.Float(1.5))
	cases := []struct {
		e    Expr
		want rel.Value
	}{
		{CInt(3), rel.Int(3)},
		{A("A"), rel.Int(6)},
		{A("B"), rel.Float(1.5)},
		{A("missing"), rel.Null()},
		{Add(A("A"), CInt(1)), rel.Int(7)},
		{Sub(A("A"), A("B")), rel.Float(4.5)},
		{Mul(A("A"), CInt(2)), rel.Int(12)},
		{Div(A("A"), CInt(4)), rel.Float(1.5)},
		{Div(A("A"), CInt(0)), rel.Null()},
	}
	for _, c := range cases {
		got := c.e.Eval(e)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && !rel.Equal(got, c.want)) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCmpOps(t *testing.T) {
	e := env(rel.NewSchema("X"), rel.Int(5))
	cases := []struct {
		p    Pred
		want bool
	}{
		{Eq(A("X"), CInt(5)), true},
		{Eq(A("X"), CFloat(5.0)), true},
		{Ne(A("X"), CInt(5)), false},
		{Lt(A("X"), CInt(6)), true},
		{Le(A("X"), CInt(5)), true},
		{Gt(A("X"), CInt(5)), false},
		{Ge(A("X"), CInt(5)), true},
		{Eq(A("X"), CStr("5")), false}, // cross-kind comparison is not equal
	}
	for _, c := range cases {
		if got := c.p.Holds(e); got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNullComparesFalse(t *testing.T) {
	e := env(rel.NewSchema("X"), rel.Int(1))
	p := Eq(A("missing"), A("missing"))
	if p.Holds(e) {
		t.Error("NULL = NULL must be false in selections")
	}
	q := Ne(A("missing"), CInt(0))
	if q.Holds(e) {
		t.Error("NULL <> 0 must be false in selections")
	}
}

func TestBooleanCombinators(t *testing.T) {
	e := env(rel.NewSchema("X"), rel.Int(5))
	tr := Eq(A("X"), CInt(5))
	fa := Eq(A("X"), CInt(6))
	if !AndOf(tr, tr).Holds(e) || AndOf(tr, fa).Holds(e) {
		t.Error("And broken")
	}
	if !OrOf(fa, tr).Holds(e) || OrOf(fa, fa).Holds(e) {
		t.Error("Or broken")
	}
	if NotOf(tr).Holds(e) || !NotOf(fa).Holds(e) {
		t.Error("Not broken")
	}
	if !AndOf().Holds(e) {
		t.Error("empty And should be true")
	}
	if OrOf().Holds(e) {
		t.Error("empty Or should be false")
	}
	if !(True{}).Holds(e) || (False{}).Holds(e) {
		t.Error("True/False broken")
	}
}

func TestNegateOp(t *testing.T) {
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %v changed it", op)
		}
		// Semantics: for non-null values op and Negate(op) partition.
		l, r := rel.Int(3), rel.Int(4)
		if op.Apply(l, r) == op.Negate().Apply(l, r) {
			t.Errorf("%v and its negation agree", op)
		}
	}
}

// randomPred builds a random predicate tree over attributes X, Y.
func randomPred(rng *rand.Rand, depth int) Pred {
	if depth == 0 || rng.Intn(3) == 0 {
		ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
		l := Expr(A("X"))
		if rng.Intn(2) == 0 {
			l = Add(A("X"), A("Y"))
		}
		return Cmp{Op: ops[rng.Intn(len(ops))], L: l, R: CInt(int64(rng.Intn(7) - 3))}
	}
	switch rng.Intn(3) {
	case 0:
		return And{Kids: []Pred{randomPred(rng, depth-1), randomPred(rng, depth-1)}}
	case 1:
		return Or{Kids: []Pred{randomPred(rng, depth-1), randomPred(rng, depth-1)}}
	default:
		return Not{Kid: randomPred(rng, depth-1)}
	}
}

// hasNot reports whether a predicate tree contains a Not above an atom.
func hasNot(p Pred) bool {
	switch q := p.(type) {
	case Not:
		return true
	case And:
		for _, k := range q.Kids {
			if hasNot(k) {
				return true
			}
		}
	case Or:
		for _, k := range q.Kids {
			if hasNot(k) {
				return true
			}
		}
	}
	return false
}

// Property: NNF preserves semantics and eliminates Not nodes.
func TestNNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := rel.NewSchema("X", "Y")
	for trial := 0; trial < 500; trial++ {
		p := randomPred(rng, 4)
		n := NNF(p)
		if hasNot(n) {
			t.Fatalf("NNF(%s) = %s still contains Not", p, n)
		}
		for x := -3; x <= 3; x++ {
			for y := -3; y <= 3; y++ {
				e := env(schema, rel.Int(int64(x)), rel.Int(int64(y)))
				if p.Holds(e) != n.Holds(e) {
					t.Fatalf("NNF changed semantics of %s at (%d,%d): nnf=%s", p, x, y, n)
				}
			}
		}
	}
}

func TestAttrs(t *testing.T) {
	p := AndOf(Gt(Add(A("A"), A("B")), CInt(0)), NotOf(Eq(A("C"), CStr("x"))))
	got := p.Attrs(nil)
	want := map[string]bool{"A": true, "B": true, "C": true}
	if len(got) != 3 {
		t.Fatalf("Attrs = %v", got)
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected attr %q", a)
		}
	}
}

func TestTargets(t *testing.T) {
	e := env(rel.NewSchema("P1", "P2"), rel.Float(0.5), rel.Float(0.25))
	tg := As("P", Div(A("P1"), A("P2")))
	if tg.As != "P" {
		t.Error("target name wrong")
	}
	if got := tg.Expr.Eval(e); !rel.Equal(got, rel.Float(2)) {
		t.Errorf("P1/P2 = %v", got)
	}
	all := KeepAll(rel.NewSchema("A", "B"))
	if len(all) != 2 || all[0].As != "A" || all[1].As != "B" {
		t.Errorf("KeepAll = %v", all)
	}
}

// Property check using testing/quick: comparisons are total on ints.
func TestCmpTotality(t *testing.T) {
	f := func(a, b int64) bool {
		l, r := rel.Int(a), rel.Int(b)
		eq := CmpEq.Apply(l, r)
		lt := CmpLt.Apply(l, r)
		gt := CmpGt.Apply(l, r)
		// Exactly one of eq/lt/gt holds.
		n := 0
		for _, v := range []bool{eq, lt, gt} {
			if v {
				n++
			}
		}
		return n == 1 && CmpLe.Apply(l, r) == (eq || lt) && CmpGe.Apply(l, r) == (eq || gt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
