// Package conformance checks the estimation engine's statistical
// contract empirically: for every workload in a fixed corpus and a sweep
// of seeds, the approximate confidence of each result tuple must land
// within the relative (ε, δ) budget of the exact oracle's value. A
// conforming engine violates the per-tuple bound on at most a δ fraction
// of checks (the Karp–Luby analysis is conservative, so observed
// coverage is normally far higher). The quick form of the suite runs in
// the ordinary test sweep; the exhaustive form is built behind the
// "conformance" tag (make conformance).
package conformance

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/workload"
)

// Case is one workload instance: a database and a confidence query whose
// exact answer is tractable enough to serve as the oracle.
type Case struct {
	Name  string
	DB    *urel.Database
	Query algebra.Query
}

// Corpus builds the workload corpus for one instance seed. The cases
// span the estimator's regimes: entangled random DNF (hard components
// that must be sampled), independent multi-tuple DNF, repair-key lineage
// from the coin-bag and data-cleaning scenarios (exactly factorable),
// and tuple-independent sensor streams.
func Corpus(seed int64) []Case {
	rng := rand.New(rand.NewSource(seed))
	return []Case{
		{
			Name:  "randomdnf/tight",
			DB:    tightDNFDB(rng),
			Query: algebra.Conf{In: algebra.Base{Name: "R"}},
		},
		{
			Name:  "randomdnf/wide",
			DB:    workload.MultiClause(rng, "R", 4, 4, 10, 3),
			Query: algebra.Conf{In: algebra.Base{Name: "R"}},
		},
		{
			Name:  "coinbag",
			DB:    workload.CoinBag{FairCount: 2, BiasedCount: 1, Bias: 0.9, Tosses: 3}.Database(),
			Query: coinConfQuery(3),
		},
		{
			Name: "dirty",
			DB:   workload.DirtyCustomers(rng, 5, 3),
			Query: algebra.Conf{In: algebra.Project{
				In:      algebra.RepairKey{In: algebra.Base{Name: "Candidates"}, Key: []string{"Cluster"}, Weight: "Weight"},
				Targets: []expr.Target{expr.Keep("Cluster"), expr.Keep("Name")},
			}},
		},
		{
			Name: "sensors",
			DB:   workload.SensorReadings(rng, 4, 6),
			Query: algebra.Conf{In: algebra.Project{
				In:      algebra.Base{Name: "Readings"},
				Targets: []expr.Target{expr.Keep("Sensor")},
			}},
		},
	}
}

// tightDNFDB wraps one entangled 12-clause DNF over 6 shared variables
// as a single-tuple relation R(ID): one connected component too large
// for the exact-factoring limits, so conf(R) must genuinely sample.
func tightDNFDB(rng *rand.Rand) *urel.Database {
	db := urel.NewDatabase()
	f := workload.RandomDNF(rng, db.Vars, 6, 12, 3)
	r := urel.NewRelation(rel.NewSchema("ID"))
	for _, a := range f {
		r.Add(a, rel.Tuple{rel.Int(0)})
	}
	db.AddURelation("R", r, false)
	return db
}

// coinConfQuery builds conf(T) for the generalized coin bag: T joins the
// repaired coin choice with the "heads at toss i" observations, so each
// CoinType's lineage is the conjunction of repair-key alternatives —
// the paper's Example 2.2 shape with a parametric toss count.
func coinConfQuery(tosses int64) algebra.Query {
	rDef := algebra.Project{
		In:      algebra.RepairKey{In: algebra.Base{Name: "Coins"}, Weight: "Count"},
		Targets: []expr.Target{expr.Keep("CoinType")},
	}
	sDef := algebra.Project{
		In: algebra.RepairKey{
			In:     algebra.Product{L: algebra.Base{Name: "Faces"}, R: algebra.Base{Name: "Tosses"}},
			Key:    []string{"CoinType", "Toss"},
			Weight: "FProb",
		},
		Targets: []expr.Target{expr.Keep("CoinType"), expr.Keep("Toss"), expr.Keep("Face")},
	}
	headsAt := func(toss int64) algebra.Query {
		return algebra.Project{
			In: algebra.Select{
				In: algebra.Base{Name: "S"},
				Pred: expr.AndOf(
					expr.Eq(expr.A("Toss"), expr.CInt(toss)),
					expr.Eq(expr.A("Face"), expr.CStr("H")),
				),
			},
			Targets: []expr.Target{expr.Keep("CoinType")},
		}
	}
	var tDef algebra.Query = algebra.Base{Name: "R"}
	for i := int64(1); i <= tosses; i++ {
		tDef = algebra.Join{L: tDef, R: headsAt(i)}
	}
	return algebra.Let{Name: "R", Def: rDef,
		In: algebra.Let{Name: "S", Def: sDef,
			In: algebra.Let{Name: "T", Def: tDef,
				In: algebra.Conf{In: algebra.Base{Name: "T"}}}}}
}

// Options configures a conformance sweep.
type Options struct {
	Eps   float64 // relative confidence error budget (default 0.1)
	Delta float64 // per-tuple failure budget (default 0.1)
	Runs  int     // independent (corpus instance, estimator seed) runs (default 8)
	// Strata > 0 routes estimation through the stratified path
	// (core.Options.Strata); 0 exercises the flat estimator.
	Strata  int
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	if o.Delta == 0 {
		o.Delta = 0.1
	}
	if o.Runs == 0 {
		o.Runs = 8
	}
	return o
}

// Violation is one per-tuple bound failure: the approximate confidence
// landed outside want·(1 ± ε). Seed reproduces it exactly.
type Violation struct {
	Case      string
	Seed      int64
	Tuple     string
	Got, Want float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s seed=%d tuple=%s: got %v, want %v", v.Case, v.Seed, v.Tuple, v.Got, v.Want)
}

// Report aggregates a sweep: every (case, seed, tuple) check and the
// violations among them.
type Report struct {
	Checks     int
	Sampled    int64 // trials drawn across the sweep — 0 means nothing exercised sampling
	Violations []Violation
}

// Coverage returns the empirical fraction of checks inside the bound.
// The engine conforms when Coverage ≥ 1 − δ.
func (r Report) Coverage() float64 {
	if r.Checks == 0 {
		return 1
	}
	return 1 - float64(len(r.Violations))/float64(r.Checks)
}

// Run sweeps the corpus: Runs independent corpus instances, each
// evaluated exactly (the oracle) and approximately under a distinct
// estimator seed, every output tuple checked against the relative (ε, δ)
// bound. Deterministic given baseSeed and opt.
func Run(baseSeed int64, opt Options) (Report, error) {
	opt = opt.withDefaults()
	var rep Report
	for run := 0; run < opt.Runs; run++ {
		seed := baseSeed + int64(run)*1_000_003
		for _, c := range Corpus(seed) {
			exact, err := algebra.NewURelEvaluator(c.DB).Eval(c.Query)
			if err != nil {
				return rep, fmt.Errorf("%s: exact oracle: %w", c.Name, err)
			}
			eng := core.NewEngine(c.DB, core.Options{
				Eps0: 0.05, Delta: 0.05,
				ConfEps: opt.Eps, ConfDelta: opt.Delta,
				Seed: seed, Strata: opt.Strata, Workers: opt.Workers,
			})
			approx, err := eng.EvalApprox(c.Query)
			if err != nil {
				return rep, fmt.Errorf("%s: estimation: %w", c.Name, err)
			}
			rep.Sampled += approx.Stats.EstimatorTrials
			want := confByKey(urel.Poss(exact.Rel), "P")
			got := confByKey(urel.Poss(approx.Rel), "P")
			for key, w := range want {
				rep.Checks++
				g, ok := got[key]
				if !ok || absf(g-w) > opt.Eps*w+1e-12 {
					rep.Violations = append(rep.Violations, Violation{
						Case: c.Name, Seed: seed, Tuple: key, Got: g, Want: w,
					})
				}
			}
			for key := range got {
				if _, ok := want[key]; !ok {
					rep.Checks++
					rep.Violations = append(rep.Violations, Violation{
						Case: c.Name, Seed: seed, Tuple: key, Got: got[key],
					})
				}
			}
		}
	}
	return rep, nil
}

// confByKey indexes a complete conf relation by its non-P columns.
func confByKey(r *rel.Relation, pcol string) map[string]float64 {
	pi := r.Schema().Index(pcol)
	out := make(map[string]float64, r.Len())
	for _, tp := range r.Tuples() {
		var sb strings.Builder
		for i, v := range tp {
			if i == pi {
				continue
			}
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		out[sb.String()] = tp[pi].AsFloat()
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
