//go:build conformance

package conformance

import "testing"

// Exhaustive conformance sweep (make conformance): many seeds, a tighter
// budget, and both estimation paths at several worker counts. Excluded
// from the ordinary test run by the build tag purely for time.
func TestConformanceLong(t *testing.T) {
	for name, opt := range map[string]Options{
		"flat/tight":        {Eps: 0.05, Delta: 0.05, Runs: 60},
		"stratified/tight":  {Eps: 0.05, Delta: 0.05, Runs: 60, Strata: 8},
		"stratified/wide":   {Eps: 0.2, Delta: 0.2, Runs: 60, Strata: 4},
		"stratified/par":    {Eps: 0.1, Delta: 0.1, Runs: 40, Strata: 8, Workers: 8},
		"stratified/serial": {Eps: 0.1, Delta: 0.1, Runs: 40, Strata: 8, Workers: 1},
	} {
		opt := opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(1009, opt)
			if err != nil {
				t.Fatal(err)
			}
			cov := rep.Coverage()
			t.Logf("%s: %d checks, %d violations, coverage %.4f, %d trials sampled",
				name, rep.Checks, len(rep.Violations), cov, rep.Sampled)
			if cov < 1-opt.Delta {
				t.Errorf("empirical coverage %.4f < 1-δ = %.4f", cov, 1-opt.Delta)
				for _, v := range rep.Violations {
					t.Logf("violation: %s", v)
				}
			}
		})
	}
}

// Worker counts must not change results: the parallel and serial sweeps
// above run the same seeds, so their violation sets must agree exactly.
func TestConformanceWorkerParity(t *testing.T) {
	a, err := Run(31, Options{Eps: 0.1, Delta: 0.1, Runs: 10, Strata: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(31, Options{Eps: 0.1, Delta: 0.1, Runs: 10, Strata: 8, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checks != b.Checks || a.Sampled != b.Sampled || len(a.Violations) != len(b.Violations) {
		t.Errorf("worker count changed the sweep: 1 worker %+v, 8 workers %+v", a, b)
	}
}
