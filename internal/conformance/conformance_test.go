package conformance

import "testing"

// Quick conformance sweep, part of the ordinary test run: a handful of
// seeds through the full corpus on both estimation paths. The exhaustive
// sweep lives behind the "conformance" build tag (make conformance).
func TestConformanceQuick(t *testing.T) {
	for name, opt := range map[string]Options{
		"flat":       {Eps: 0.1, Delta: 0.1, Runs: 6},
		"stratified": {Eps: 0.1, Delta: 0.1, Runs: 6, Strata: 8},
	} {
		t.Run(name, func(t *testing.T) {
			rep, err := Run(42, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Checks == 0 {
				t.Fatal("sweep checked nothing")
			}
			if rep.Sampled == 0 {
				t.Error("no case exercised the sampling path")
			}
			if cov := rep.Coverage(); cov < 1-opt.Delta {
				t.Errorf("empirical coverage %.4f < 1-δ = %.4f over %d checks", cov, 1-opt.Delta, rep.Checks)
				for _, v := range rep.Violations {
					t.Logf("violation: %s", v)
				}
			}
		})
	}
}

// The sweep must be a pure function of its seed — otherwise a reported
// offending seed could not be replayed.
func TestConformanceDeterministic(t *testing.T) {
	opt := Options{Eps: 0.1, Delta: 0.1, Runs: 2, Strata: 4}
	a, err := Run(7, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checks != b.Checks || a.Sampled != b.Sampled || len(a.Violations) != len(b.Violations) {
		t.Errorf("two identical sweeps diverged: %+v vs %+v", a, b)
	}
}

// Every corpus case must have a tractable exact oracle and a non-empty
// answer; the corpus itself is deterministic per seed.
func TestCorpusShapes(t *testing.T) {
	cases := Corpus(3)
	if len(cases) < 4 {
		t.Fatalf("corpus has %d cases", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
	}
}
