package worlds

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

func oneWorldDB(rels map[string]*rel.Relation, complete map[string]bool) *Database {
	return &Database{Worlds: []World{{P: 1, Rels: rels}}, Complete: complete}
}

func TestValidate(t *testing.T) {
	r := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(1)})
	db := oneWorldDB(map[string]*rel.Relation{"R": r}, map[string]bool{"R": true})
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// Weights not summing to 1.
	bad := &Database{Worlds: []World{{P: 0.5, Rels: map[string]*rel.Relation{"R": r}}}}
	if err := bad.Validate(); err == nil {
		t.Error("weight sum violation not detected")
	}
	// Complete relation differing across worlds.
	r2 := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(2)})
	bad2 := &Database{
		Worlds: []World{
			{P: 0.5, Rels: map[string]*rel.Relation{"R": r}},
			{P: 0.5, Rels: map[string]*rel.Relation{"R": r2}},
		},
		Complete: map[string]bool{"R": true},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("complete-relation violation not detected")
	}
	bad2.Complete = map[string]bool{}
	if err := bad2.Validate(); err != nil {
		t.Errorf("non-complete differing relations should be fine: %v", err)
	}
}

// Example 2.2 end to end on the worlds engine: the eight possible worlds
// and the conditional probability 1/3 vs 2/3.
func TestCoinExampleWorldwise(t *testing.T) {
	coins := rel.FromRows(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(2)},
		rel.Tuple{rel.String("2headed"), rel.Int(1)},
	)
	db := oneWorldDB(map[string]*rel.Relation{"Coins": coins}, map[string]bool{"Coins": true})

	// R := π_CoinType(repair-key_∅@Count(Coins))
	db, err := db.RepairKey("RK", "Coins", nil, "Count")
	if err != nil {
		t.Fatal(err)
	}
	db = db.Map("R", func(w World) *rel.Relation {
		return ProjectWorldwise(w.Rels["RK"], []expr.Target{expr.Keep("CoinType")})
	})
	if len(db.Worlds) != 2 {
		t.Fatalf("worlds after coin choice = %d, want 2", len(db.Worlds))
	}
	pr := db.TupleConfidence("R", rel.Tuple{rel.String("fair")})
	if math.Abs(pr-2.0/3) > 1e-12 {
		t.Errorf("P(fair) = %v, want 2/3", pr)
	}
}

func TestConfAndPoss(t *testing.T) {
	rA := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(1)})
	rB := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)})
	db := &Database{Worlds: []World{
		{P: 0.25, Rels: map[string]*rel.Relation{"R": rA}},
		{P: 0.75, Rels: map[string]*rel.Relation{"R": rB}},
	}}
	conf := db.Conf("R", "P")
	if conf.Len() != 2 {
		t.Fatalf("conf len = %d", conf.Len())
	}
	for _, tp := range conf.Tuples() {
		a := conf.Value(tp, "A").AsInt()
		p := conf.Value(tp, "P").AsFloat()
		want := 1.0
		if a == 2 {
			want = 0.75
		}
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("conf(%d) = %v, want %v", a, p, want)
		}
	}
	if db.Poss("R").Len() != 2 {
		t.Error("poss wrong")
	}
}

func TestNormalizeMergesEqualWorlds(t *testing.T) {
	r := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(1)})
	db := &Database{Worlds: []World{
		{P: 0.25, Rels: map[string]*rel.Relation{"R": r}},
		{P: 0.75, Rels: map[string]*rel.Relation{"R": r.Clone()}},
	}}
	n := db.Normalize()
	if len(n.Worlds) != 1 {
		t.Fatalf("normalize left %d worlds", len(n.Worlds))
	}
	if math.Abs(n.Worlds[0].P-1) > 1e-12 {
		t.Errorf("merged weight = %v", n.Worlds[0].P)
	}
}

func TestExpandRoundTrip(t *testing.T) {
	// Build a U-relational DB, expand to worlds, check tuple confidences
	// agree with exact dnf computation through urel.ConfExact.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		udb := urel.NewDatabase()
		nv := 1 + rng.Intn(4)
		for i := 0; i < nv; i++ {
			p := 0.1 + 0.8*rng.Float64()
			udb.Vars.Add(varName(i), []float64{p, 1 - p}, nil)
		}
		r := urel.NewRelation(rel.NewSchema("A"))
		nt := 1 + rng.Intn(5)
		for i := 0; i < nt; i++ {
			var bs []vars.Binding
			for v := 0; v < nv; v++ {
				if rng.Intn(2) == 0 {
					bs = append(bs, vars.Binding{Var: vars.Var(v), Alt: int32(rng.Intn(2))})
				}
			}
			a, _ := vars.NewAssignment(bs...)
			r.Add(a, rel.Tuple{rel.Int(int64(rng.Intn(3)))})
		}
		udb.AddURelation("R", r, false)

		wdb, err := Expand(udb, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		if err := wdb.Validate(); err != nil {
			t.Fatalf("expanded database invalid: %v", err)
		}
		confU, err := urel.ConfExact(r, udb.Vars, "P")
		if err != nil {
			t.Fatal(err)
		}
		confW := wdb.Conf("R", "P")
		for _, tp := range confU.Tuples() {
			a := confU.Value(tp, "A")
			pu := confU.Value(tp, "P").AsFloat()
			pw := wdb.TupleConfidence("R", rel.Tuple{a})
			if math.Abs(pu-pw) > 1e-9 {
				t.Fatalf("trial %d: conf mismatch for %v: urel %v vs worlds %v", trial, a, pu, pw)
			}
		}
		// Same number of possible tuples both ways (modulo zero-confidence
		// tuples, which cannot occur since assignments have positive
		// weight).
		if confU.Len() != confW.Len() {
			t.Fatalf("poss size mismatch: %d vs %d", confU.Len(), confW.Len())
		}
	}
}

func varName(i int) string { return "w" + string(rune('a'+i)) }

func TestWorldwiseOpsMatchURel(t *testing.T) {
	// σ, π, ⋈, ∪ on a U-relational DB must commute with expansion.
	tab := vars.NewTable()
	x := tab.Add("x", []float64{0.4, 0.6}, nil)
	y := tab.Add("y", []float64{0.5, 0.5}, nil)

	r := urel.NewRelation(rel.NewSchema("A", "B"))
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(1), rel.Int(10)})
	r.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 1}), rel.Tuple{rel.Int(2), rel.Int(20)})
	r.Add(nil, rel.Tuple{rel.Int(3), rel.Int(30)})

	s := urel.NewRelation(rel.NewSchema("B", "C"))
	s.Add(vars.MustAssignment(vars.Binding{Var: y, Alt: 0}), rel.Tuple{rel.Int(10), rel.String("u")})
	s.Add(vars.MustAssignment(vars.Binding{Var: x, Alt: 0}), rel.Tuple{rel.Int(30), rel.String("v")})

	udb := urel.NewDatabase()
	udb.Vars = tab
	udb.AddURelation("R", r, false)
	udb.AddURelation("S", s, false)

	// U-relational: J := R ⋈ S, then conf.
	j := urel.Join(r, s)
	confU, err := urel.ConfExact(j, tab, "P")
	if err != nil {
		t.Fatal(err)
	}

	// Worlds: expand, join world-wise, conf.
	wdb, err := Expand(udb, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	wj := wdb.Map("J", func(w World) *rel.Relation {
		return JoinWorldwise(w.Rels["R"], w.Rels["S"])
	})
	confW := wj.Conf("J", "P")

	if confU.Len() != confW.Len() {
		t.Fatalf("join conf sizes differ: %d vs %d\nU:\n%s\nW:\n%s", confU.Len(), confW.Len(), confU, confW)
	}
	for _, tp := range confU.Tuples() {
		row := tp[:len(tp)-1]
		pu := confU.Value(tp, "P").AsFloat()
		pw := wj.TupleConfidence("J", row)
		if math.Abs(pu-pw) > 1e-9 {
			t.Errorf("join conf mismatch for %v: %v vs %v", row, pu, pw)
		}
	}
}

func TestWorldwiseHelpers(t *testing.T) {
	a := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)})
	b := rel.FromRows(rel.NewSchema("B"), rel.Tuple{rel.Int(3)})
	p, err := ProductWorldwise(a, b)
	if err != nil || p.Len() != 2 {
		t.Fatalf("product: %v len=%d", err, p.Len())
	}
	if _, err := ProductWorldwise(a, a); err == nil {
		t.Error("shared attrs must fail")
	}
	s := SelectWorldwise(a, expr.Gt(expr.A("A"), expr.CInt(1)))
	if s.Len() != 1 {
		t.Error("select wrong")
	}
	c := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(2)})
	u, err := UnionWorldwise(a, c)
	if err != nil || u.Len() != 2 {
		t.Error("union wrong")
	}
	d, err := DiffWorldwise(a, c)
	if err != nil || d.Len() != 1 {
		t.Error("diff wrong")
	}
	if _, err := UnionWorldwise(a, b); err == nil {
		t.Error("union schema mismatch must fail")
	}
	if _, err := DiffWorldwise(a, b); err == nil {
		t.Error("diff schema mismatch must fail")
	}
}

func TestRepairKeyWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		rows := make([]rel.Tuple, 0, 6)
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			rows = append(rows, rel.Tuple{
				rel.Int(int64(rng.Intn(2))), // key
				rel.Int(int64(i)),           // payload
				rel.Float(0.1 + rng.Float64()),
			})
		}
		r := rel.FromRows(rel.NewSchema("K", "V", "W"), rows...)
		db := oneWorldDB(map[string]*rel.Relation{"R": r}, map[string]bool{"R": true})
		out, err := db.RepairKey("S", "R", []string{"K"}, "W")
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("repair-key output invalid: %v", err)
		}
		// Every repair respects the key: one tuple per key group.
		for _, w := range out.Worlds {
			seen := map[string]bool{}
			for _, tp := range w.Rels["S"].Tuples() {
				k := tp[0].Key()
				if seen[k] {
					t.Fatal("repair violates key constraint")
				}
				seen[k] = true
			}
		}
	}
}
